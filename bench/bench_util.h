// Shared helpers for the bench mains: banner printing and scale reporting.
#pragma once

#include <cstdio>

#include "exp/common.h"

namespace numfabric::bench {

inline exp::Scale announce(const char* figure, const char* description) {
  const exp::Scale scale = exp::scale_from_env();
  std::printf("=== %s — %s ===\n", figure, description);
  std::printf("scale: %s%s\n\n", scale.label,
              scale.full ? "" : "  (set NUMFABRIC_FULL=1 for paper scale)");
  return scale;
}

}  // namespace numfabric::bench
