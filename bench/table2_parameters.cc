// Table 2: default parameter settings — rendered from the live config
// structs so the printed table cannot drift from the code.
#include <cstdio>

#include "exp/config.h"

int main() {
  std::printf("=== Table 2 — Default parameter settings in simulations ===\n\n");
  std::printf("%s\n", numfabric::exp::table2_text().c_str());
  return 0;
}
