// Fig. 8: multipath resource pooling — total throughput vs number of
// sub-flows and the per-flow throughput rank plot, with and without the
// pooling (aggregate) utility.
//
// Paper result: with pooling, total throughput approaches the full
// bisection as sub-flows increase to 8 and per-flow allocations are nearly
// uniform; without pooling, throughput is lower and the distribution is
// skewed.
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=resource-pooling
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce("Figure 8",
                             "resource pooling via multipath sub-flows");
  return numfabric::app::run_cli({"--scenario=resource-pooling", "seed=2"});
}
