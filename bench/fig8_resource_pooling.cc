// Fig. 8: multipath resource pooling — total throughput vs number of
// sub-flows (a) and per-flow throughput rank plot (b), with and without the
// pooling (aggregate) utility.
//
// Paper result: with pooling, total throughput approaches the full
// bisection as sub-flows increase to 8, and per-flow allocations are nearly
// uniform; without pooling, throughput is lower and the distribution is
// skewed.
#include <cstdio>

#include "bench_util.h"
#include "exp/pooling_experiment.h"

using namespace numfabric;

namespace {

exp::PoolingResult run_mode(bool pooling, const exp::Scale& scale) {
  exp::PoolingOptions options;
  options.topology.hosts_per_leaf = scale.pooling_hosts_per_leaf;
  options.topology.num_leaves = scale.pooling_leaves;
  options.topology.num_spines = scale.pooling_spines;
  // Fig. 8 uses an all-10G fabric (8 leaves x 16 spines at full scale).
  options.topology.spine_rate_bps = 10e9;
  options.resource_pooling = pooling;
  options.subflow_counts =
      scale.full ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}
                 : std::vector<int>{1, 2, 4, 8};
  options.warmup = scale.warmup;
  options.measure = scale.measure;
  options.seed = 2;
  return exp::run_pooling_experiment(options);
}

}  // namespace

int main() {
  const exp::Scale scale =
      bench::announce("Figure 8", "resource pooling via multipath sub-flows");

  const exp::PoolingResult pooled = run_mode(true, scale);
  const exp::PoolingResult unpooled = run_mode(false, scale);

  std::printf("(a) total throughput, %% of optimal:\n");
  std::printf("  %9s %18s %18s\n", "subflows", "resource pooling",
              "no resource pooling");
  for (std::size_t i = 0; i < pooled.rows.size(); ++i) {
    std::printf("  %9d %17.1f%% %17.1f%%\n", pooled.rows[i].subflows,
                100 * pooled.rows[i].total_throughput_fraction,
                100 * unpooled.rows[i].total_throughput_fraction);
  }

  std::printf("\n(b) per-flow throughput (%% of optimal), ranked, at max "
              "subflows (plus 1-subflow reference):\n");
  const auto& pooled_best = pooled.rows.back();
  const auto& unpooled_best = unpooled.rows.back();
  const auto& single = pooled.rows.front();
  std::printf("  %6s %12s %12s %12s\n", "rank", "pooling", "no pooling",
              "1 sub-flow");
  const std::size_t n = pooled_best.per_flow_fraction.size();
  for (std::size_t r = 0; r < n; r += (n > 16 ? n / 16 : 1)) {
    std::printf("  %6zu %11.1f%% %11.1f%% %11.1f%%\n", r,
                100 * pooled_best.per_flow_fraction[r],
                100 * unpooled_best.per_flow_fraction[r],
                100 * single.per_flow_fraction[r]);
  }
  std::printf("  %6s %11.1f%% %11.1f%% %11.1f%%\n", "max",
              100 * pooled_best.per_flow_fraction.back(),
              100 * unpooled_best.per_flow_fraction.back(),
              100 * single.per_flow_fraction.back());
  return 0;
}
