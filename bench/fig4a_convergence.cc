// Fig. 4(a): CDF of convergence times in the semi-dynamic scenario —
// NUMFabric vs DGD vs RCP*.
//
// Paper result: NUMFabric converges in 335 us at the median (~2.3x faster
// than DGD/RCP*) and 495 us at the 95th percentile (~2.7x faster).
#include <cstdio>

#include "bench_util.h"
#include "exp/semi_dynamic.h"
#include "stats/summary.h"

using namespace numfabric;

int main() {
  const exp::Scale scale =
      bench::announce("Figure 4(a)", "convergence time CDF, semi-dynamic scenario");

  exp::SemiDynamicResult results[3];
  const transport::Scheme schemes[3] = {transport::Scheme::kNumFabric,
                                        transport::Scheme::kDgd,
                                        transport::Scheme::kRcpStar};
  for (int s = 0; s < 3; ++s) {
    exp::SemiDynamicOptions options;
    options.scheme = schemes[s];
    options.topology.hosts_per_leaf = scale.hosts_per_leaf;
    options.topology.num_leaves = scale.leaves;
    options.topology.num_spines = scale.spines;
    options.num_paths = scale.num_paths;
    options.initial_active = scale.initial_active;
    options.flows_per_event = scale.flows_per_event;
    options.num_events = scale.num_events;
    options.min_active = scale.min_active;
    options.max_active = scale.max_active;
    options.convergence.timeout = scale.convergence_timeout;
    options.seed = 1;
    results[s] = exp::run_semi_dynamic(options);
    std::printf("%-10s events: %d measured, %d converged, %llu sim events, "
                "%llu drops\n",
                transport::scheme_name(schemes[s]), results[s].events_measured,
                results[s].events_converged,
                static_cast<unsigned long long>(results[s].sim_events),
                static_cast<unsigned long long>(results[s].total_queue_drops));
  }

  std::printf("\n%-10s %10s %10s %10s\n", "scheme", "median(us)", "p95(us)",
              "conv.rate");
  double median[3] = {0, 0, 0};
  for (int s = 0; s < 3; ++s) {
    const auto& times = results[s].convergence_times_us;
    if (times.empty()) {
      std::printf("%-10s %10s %10s %9.0f%%\n", transport::scheme_name(schemes[s]),
                  "-", "-", 0.0);
      continue;
    }
    median[s] = stats::percentile(times, 50);
    std::printf("%-10s %10.0f %10.0f %9.0f%%\n", transport::scheme_name(schemes[s]),
                median[s], stats::percentile(times, 95),
                100.0 * results[s].events_converged / results[s].events_measured);
  }
  if (median[0] > 0 && median[1] > 0 && median[2] > 0) {
    std::printf("\nNUMFabric speedup at median: %.1fx vs DGD, %.1fx vs RCP*\n",
                median[1] / median[0], median[2] / median[0]);
    std::printf("(paper: ~2.3x at median, ~2.7x at p95)\n");
  }

  std::printf("\nCDF (convergence time us -> fraction of events):\n");
  for (int s = 0; s < 3; ++s) {
    if (results[s].convergence_times_us.empty()) continue;
    std::printf("%s:\n", transport::scheme_name(schemes[s]));
    for (const auto& [value, fraction] :
         stats::cdf(results[s].convergence_times_us, 11)) {
      std::printf("  %8.0f us  %.2f\n", value, fraction);
    }
  }
  return 0;
}
