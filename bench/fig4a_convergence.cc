// Fig. 4(a): CDF of convergence times in the semi-dynamic scenario —
// NUMFabric vs DGD vs RCP*.
//
// Paper result: NUMFabric converges in 335 us at the median (~2.3x faster
// than DGD/RCP*) and 495 us at the 95th percentile (~2.7x faster).
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=convergence transports=numfabric,dgd,rcp
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce("Figure 4(a)",
                             "convergence time CDF, semi-dynamic scenario");
  return numfabric::app::run_cli(
      {"--scenario=convergence", "transports=numfabric,dgd,rcp", "seed=1"});
}
