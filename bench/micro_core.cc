// Micro-benchmarks (google-benchmark) of the substrate primitives that bound
// simulation scale: event queue ops, WFQ enqueue/dequeue, the NUM oracle and
// the water-filler.  These are the "how fast can the simulator go" numbers
// quoted in README.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "exp/traffic_experiment.h"
#include "flowsim/flow_sim_engine.h"
#include "flowsim/virtual_fabric.h"
#include "net/drop_tail_queue.h"
#include "net/fabric_graph.h"
#include "net/link.h"
#include "net/node.h"
#include "net/routing.h"
#include "net/topology.h"
#include "net/wfq_queue.h"
#include "num/num_solver.h"
#include "num/utility.h"
#include "num/waterfill.h"
#include "num/xwi_fluid.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "transport/control_plane.h"
#include "workload/scenarios.h"
#include "workload/size_distribution.h"

namespace {

using namespace numfabric;

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue queue;
  sim::TimeNs t = 0;
  int sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) queue.push(t += 7, [&sink] { ++sink; });
    while (!queue.empty()) queue.pop().action();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_EventQueueCancelChurn(benchmark::State& state) {
  // The transports' dominant cancellation shape: every ACK pushes the RTO
  // timer out, i.e. cancel-the-old + push-a-new far-future event, and only
  // the last survivor of a burst ever fires.
  sim::EventQueue queue;
  sim::TimeNs t = 0;
  int sink = 0;
  for (auto _ : state) {
    sim::EventId pending = sim::kNoEvent;
    for (int i = 0; i < 64; ++i) {
      if (pending != sim::kNoEvent) queue.cancel(pending);
      pending = queue.push(t + 1'000'000, [&sink] { ++sink; });
      ++t;
    }
    while (!queue.empty()) queue.pop().action();
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_EventQueueCancelChurn);

void BM_SimulatorSelfScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 4096;
    std::function<void()> tick = [&] {
      if (--remaining > 0) sim.schedule_in(10, tick);
    };
    sim.schedule_in(10, tick);
    sim.run();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_SimulatorSelfScheduling);

void BM_WfqEnqueueDequeue(benchmark::State& state) {
  const int num_flows = static_cast<int>(state.range(0));
  net::WfqQueue queue(1 << 30);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < num_flows; ++i) {
      net::Packet p;
      p.flow = static_cast<net::FlowId>(i);
      p.type = net::PacketType::kData;
      p.size = 1500;
      p.seq = seq++;
      p.virtual_packet_len = 1500.0 / (1.0 + i);
      queue.enqueue(std::move(p));
    }
    for (int i = 0; i < num_flows; ++i) benchmark::DoNotOptimize(queue.dequeue());
  }
  state.SetItemsProcessed(state.iterations() * num_flows * 2);
}
BENCHMARK(BM_WfqEnqueueDequeue)->Arg(16)->Arg(256);

void BM_WfqFlowChurn(benchmark::State& state) {
  // Short flows arriving and dying at a high rate: every burst is 32
  // brand-new flows of two packets each.  The second packet pushes each
  // flow's finish tag ahead of the virtual clock, so the clock advances and
  // earlier flows' state becomes idle — exactly the churn
  // garbage_collect_idle_flows exists for.  Per-flow scheduler state
  // accumulates to the GC interval's high-water mark, then gets swept.
  net::WfqQueue queue(1 << 30);
  std::uint64_t seq = 0;
  net::FlowId next_flow = 1;
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) {
      const net::FlowId flow = next_flow++;
      for (int k = 0; k < 2; ++k) {
        net::Packet p;
        p.flow = flow;
        p.type = net::PacketType::kData;
        p.size = 1500;
        p.seq = seq++;
        p.virtual_packet_len = 1500.0;
        queue.enqueue(std::move(p));
      }
    }
    for (int i = 0; i < 64; ++i) benchmark::DoNotOptimize(queue.dequeue());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 2);
}
BENCHMARK(BM_WfqFlowChurn);

num::NumProblem make_problem(int flows, int links, sim::Rng& rng,
                             std::vector<std::unique_ptr<num::AlphaFairUtility>>& store) {
  num::NumProblem problem;
  problem.capacities.resize(static_cast<std::size_t>(links));
  for (auto& c : problem.capacities) c = rng.uniform(1'000.0, 40'000.0);
  for (int i = 0; i < flows; ++i) {
    store.push_back(std::make_unique<num::AlphaFairUtility>(1.0));
    problem.utilities.push_back(store.back().get());
    std::vector<int> path;
    const int hops = static_cast<int>(rng.uniform_int(2, 4));
    for (int h = 0; h < hops; ++h) {
      const int link = static_cast<int>(rng.index(static_cast<std::size_t>(links)));
      if (std::find(path.begin(), path.end(), link) == path.end()) {
        path.push_back(link);
      }
    }
    problem.flow_links.push_back(std::move(path));
  }
  return problem;
}

void BM_NumSolver(benchmark::State& state) {
  sim::Rng rng(1);
  std::vector<std::unique_ptr<num::AlphaFairUtility>> store;
  const auto problem = make_problem(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)) / 3 + 2, rng,
                                    store);
  // Compile once, cold-solve per iteration (reset() drops the warm start but
  // keeps the buffers) — the measured loop is pure solver arithmetic.
  const num::CsrProblem csr = num::CsrProblem::compile(problem);
  num::NumWorkspace workspace;
  std::int64_t sweeps = 0;
  for (auto _ : state) {
    workspace.reset();
    sweeps += num::solve(csr, workspace).sweeps;
    benchmark::DoNotOptimize(workspace.rates().data());
  }
  state.SetItemsProcessed(sweeps);  // Gauss-Seidel sweeps/sec
}
BENCHMARK(BM_NumSolver)->Arg(50)->Arg(400);

// Wave-parallel execution of the same solve.  The conflict-graph width caps
// usable parallelism, so this uses a sparser problem (links == flows) whose
// wave layers are wide enough to chunk; results are bit-identical to serial
// for every thread count (locked by CsrSolverTest).
void BM_NumSolverParallel(benchmark::State& state) {
  sim::Rng rng(1);
  std::vector<std::unique_ptr<num::AlphaFairUtility>> store;
  const auto problem = make_problem(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(0)), rng, store);
  const num::CsrProblem csr = num::CsrProblem::compile(problem);
  num::NumWorkspace workspace;
  num::NumSolverOptions options;
  options.policy =
      num::ExecutionPolicy::parallel(static_cast<int>(state.range(1)));
  std::int64_t sweeps = 0;
  for (auto _ : state) {
    workspace.reset();
    sweeps += num::solve(csr, workspace, options).sweeps;
    benchmark::DoNotOptimize(workspace.rates().data());
  }
  state.SetItemsProcessed(sweeps);  // Gauss-Seidel sweeps/sec
}
BENCHMARK(BM_NumSolverParallel)
    ->Args({400, 1})
    ->Args({400, 2})
    ->Args({400, 8});

void BM_Waterfill(benchmark::State& state) {
  sim::Rng rng(2);
  std::vector<std::unique_ptr<num::AlphaFairUtility>> store;
  const auto num_problem = make_problem(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(0)) / 3 + 2,
                                        rng, store);
  num::WaterfillProblem problem;
  problem.flow_links = num_problem.flow_links;
  problem.capacities = num_problem.capacities;
  problem.weights.assign(num_problem.utilities.size(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::weighted_max_min(problem));
  }
  // flow allocations/sec
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Waterfill)->Arg(50)->Arg(400);

void BM_XwiFluid(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<std::unique_ptr<num::AlphaFairUtility>> store;
  const auto problem = make_problem(100, 30, rng, store);
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const num::XwiFluidResult result = num::xwi_fluid_solve(problem);
    iterations += result.iterations;
    benchmark::DoNotOptimize(result.rates.data());
  }
  state.SetItemsProcessed(iterations);  // xWI price iterations/sec
}
BENCHMARK(BM_XwiFluid);

// A topology of `num_links` xWI-controlled links (as host pairs) wired into
// one batched ControlPlane.
struct ControlPlaneRig {
  sim::Simulator sim;
  net::Topology topo{sim};
  std::unique_ptr<transport::ControlPlane> plane;

  explicit ControlPlaneRig(int num_links) {
    for (int i = 0; i < num_links / 2; ++i) {
      net::Host* a = topo.add_host("a");
      net::Host* b = topo.add_host("b");
      topo.connect(a, b, 10e9, sim::micros(1), [] {
        return std::make_unique<net::DropTailQueue>(1'000'000);
      });
    }
    plane = transport::ControlPlane::attach(
        sim, transport::ControlPlane::Params{}, topo);
  }
};

// Price-tick cost vs link count: one synchronized 30 us interval advances
// all links' xWI price state.  Batched: ONE timer event plus a sweep of the
// SoA arrays in slot order.  before_ns tracks the legacy encoding (one
// XwiLinkAgent timer event + virtual on_update + reschedule per link per
// interval) recorded on the pre-refactor tree.
void BM_ControlPlaneTick(benchmark::State& state) {
  const int num_links = static_cast<int>(state.range(0));
  ControlPlaneRig rig(num_links);
  for (auto _ : state) {
    rig.sim.run_until(rig.sim.now() + sim::micros(30));
  }
  state.SetItemsProcessed(state.iterations() * num_links);
}
BENCHMARK(BM_ControlPlaneTick)->Arg(16)->Arg(128)->Arg(1024);

// Data-path hook + tick churn: a saturated 10G link forwards 64-packet data
// bursts while the 30 us price tick runs.  Exercises the per-packet
// enqueue/dequeue hook (batched: index-addressed SoA writes; legacy
// before_ns: two virtual calls per packet) together with the tick machinery.
void BM_PriceTickChurn(benchmark::State& state) {
  ControlPlaneRig rig(2);
  net::Link* link = rig.topo.links()[0].get();
  std::uint64_t seq = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      net::Packet p;
      p.flow = 1;
      p.type = net::PacketType::kData;
      p.size = 1500;
      p.seq = seq++;
      p.normalized_residual = 0.01;
      link->send(std::move(p));
    }
    // 64 * 1500 B at 10 Gbps = 76.8 us of serialization: drain past it.
    rig.sim.run_until(rig.sim.now() + sim::micros(80));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_PriceTickChurn);

// The fluid-FCT oracle's dominant cost: re-solving the NUM problem after a
// small active-set change.  Exactly the oracle's production shape now: the
// departure is a set_active row patch on the compiled problem, the re-solve
// warm-starts from the base optimum in a reused workspace (allocation-free).
// before_ns tracks the legacy path — rebuild the NumProblem minus one flow,
// cold restart at 1.0 everywhere, allocate everything per solve.
void BM_NumSolverWarmStart(benchmark::State& state) {
  sim::Rng rng(7);
  std::vector<std::unique_ptr<num::AlphaFairUtility>> store;
  const auto base = make_problem(static_cast<int>(state.range(0)),
                                 static_cast<int>(state.range(0)) / 3 + 2, rng,
                                 store);
  num::CsrProblem csr = num::CsrProblem::compile(base);
  num::NumWorkspace workspace;
  const num::SolveStats base_stats = num::solve(csr, workspace);
  benchmark::DoNotOptimize(base_stats.sweeps);
  const std::vector<double> base_prices(workspace.prices().begin(),
                                        workspace.prices().end());
  num::NumSolverOptions options;
  std::size_t drop = 0;
  std::int64_t sweeps = 0;
  for (auto _ : state) {
    // One flow leaves; the rest of the problem (and its prices) barely move.
    csr.set_active(drop, false);
    options.initial_prices = base_prices;
    sweeps += num::solve(csr, workspace, options).sweeps;
    benchmark::DoNotOptimize(workspace.rates().data());
    csr.set_active(drop, true);
    drop = (drop + 1) % csr.num_flows();
  }
  state.SetItemsProcessed(sweeps);  // Gauss-Seidel sweeps/sec
}
BENCHMARK(BM_NumSolverWarmStart)->Arg(50)->Arg(400);

// One grid epoch of the flow-fluid engine at 10^3 / 10^5 concurrent flows:
// a warm NUM re-solve on the virtual leaf-spine plus an O(active) analytic
// advance of remaining bytes.  The flow set is compiled once outside the
// timed loop; reset() replays the identical workload whenever a run drains,
// so the loop meters steady-state per-epoch cost — the number that bounds
// mega-fct wall time.
void BM_FlowSimEpoch(benchmark::State& state) {
  const int num_flows = static_cast<int>(state.range(0));
  const flowsim::VirtualLeafSpine fabric{.hosts_per_leaf = 32,
                                         .leaves = 32,
                                         .spines = 8,
                                         .host_rate = 10e3,
                                         .leaf_spine_rate = 40e3};
  static num::AlphaFairUtility utility(1.0);
  sim::Rng rng(11);
  const auto draws = workload::batch_index_flows(
      fabric.hosts(), num_flows, workload::websearch_distribution(), rng);
  std::vector<flowsim::FlowSimFlow> flows(draws.size());
  for (std::size_t i = 0; i < draws.size(); ++i) {
    flows[i] = {0.0, static_cast<double>(draws[i].size_bytes),
                fabric.path(draws[i].src, draws[i].dst, i + 1), &utility};
  }
  flowsim::FlowSimOptions options;
  options.resolve_interval_seconds = 1e-3;
  // Match the mega-fct scenario's solver configuration (grid-quantized FCTs
  // don't benefit from tighter prices — see MegaFctOptions::solver_tolerance).
  options.solver.tolerance = 1e-5;
  options.solver.incremental = true;
  flowsim::FlowSimEngine engine(std::move(flows), fabric.capacities(), options);
  std::int64_t epochs = 0;
  for (auto _ : state) {
    if (engine.finished()) engine.reset();
    engine.step();
    ++epochs;
  }
  state.SetItemsProcessed(epochs);  // epochs/sec
}
BENCHMARK(BM_FlowSimEpoch)->Arg(1000)->Arg(100000);

// Same steady-state epoch cost on a jellyfish: the path table comes from
// k-shortest-paths over the random regular graph (VirtualFabric::from_graph)
// instead of the closed-form leaf-spine enumeration, but the per-epoch work
// must stay the same shape — warm re-solve + O(active) advance.
void BM_FlowSimEpochJellyfish(benchmark::State& state) {
  const int num_flows = static_cast<int>(state.range(0));
  net::JellyfishOptions jf;
  jf.switches = 64;
  jf.ports = 8;
  jf.hosts = 1024;
  jf.seed = 5;
  jf.host_rate_bps = 10e9;
  jf.switch_rate_bps = 40e9;
  const flowsim::VirtualFabric fabric =
      flowsim::VirtualFabric::from_graph(net::make_jellyfish(jf), 8);
  static num::AlphaFairUtility utility(1.0);
  sim::Rng rng(11);
  const auto draws = workload::batch_index_flows(
      fabric.hosts(), num_flows, workload::websearch_distribution(), rng);
  std::vector<flowsim::FlowSimFlow> flows(draws.size());
  for (std::size_t i = 0; i < draws.size(); ++i) {
    flows[i] = {0.0, static_cast<double>(draws[i].size_bytes),
                fabric.path(draws[i].src, draws[i].dst, i + 1), &utility};
  }
  flowsim::FlowSimOptions options;
  options.resolve_interval_seconds = 1e-3;
  options.solver.tolerance = 1e-5;
  options.solver.incremental = true;
  flowsim::FlowSimEngine engine(std::move(flows), fabric.capacities(),
                                options);
  std::int64_t epochs = 0;
  for (auto _ : state) {
    if (engine.finished()) engine.reset();
    engine.step();
    ++epochs;
  }
  state.SetItemsProcessed(epochs);  // epochs/sec
}
BENCHMARK(BM_FlowSimEpochJellyfish)->Arg(1000)->Arg(100000);

// Churn-shaped epoch: a steady ~2k-flow active sliver drawn from a much
// larger compiled flow set (10^5 / 10^6 flows), with ~8 arrivals and ~8
// departures per 1 ms epoch.  This is the mega-fct steady state: per-epoch
// cost should track the churn (the handful of flows entering and leaving),
// not the compiled history sitting inactive in the CSR rows.
void BM_FlowSimChurnEpoch(benchmark::State& state) {
  const int num_flows = static_cast<int>(state.range(0));
  const flowsim::VirtualLeafSpine fabric{.hosts_per_leaf = 32,
                                         .leaves = 32,
                                         .spines = 8,
                                         .host_rate = 10e3,
                                         .leaf_spine_rate = 40e3};
  static num::AlphaFairUtility utility(1.0);
  const int kSliver = 2048;    // concurrently-active steady state
  const double kGap = 125e-6;  // one arrival per 125 us ~ 8 per epoch
  const double kBytes = 1.5e8;  // ~250 epochs of life at fair share
  sim::Rng rng(13);
  std::vector<flowsim::FlowSimFlow> flows(num_flows);
  for (int i = 0; i < num_flows; ++i) {
    const int src = static_cast<int>(rng.uniform_int(0, fabric.hosts() - 1));
    int dst = static_cast<int>(rng.uniform_int(0, fabric.hosts() - 2));
    if (dst >= src) ++dst;
    // The initial sliver arrives at t=0 with sizes staggered so departures
    // trickle from the first epoch on; later flows arrive one per 125 us at
    // full size, replacing the departed.
    const bool initial = i < kSliver;
    const double arrival = initial ? 0.0 : kGap * (i - kSliver + 1);
    const double bytes = initial ? kBytes * (i + 1) / kSliver : kBytes;
    flows[i] = {arrival, bytes, fabric.path(src, dst, i + 1), &utility};
  }
  flowsim::FlowSimOptions options;
  options.resolve_interval_seconds = 1e-3;
  options.solver.tolerance = 1e-5;
  options.solver.incremental = true;  // the mega-fct default at this scale
  flowsim::FlowSimEngine engine(std::move(flows), fabric.capacities(),
                                options);
  for (int i = 0; i < 16; ++i) engine.step();  // establish the sliver, warm
  std::int64_t epochs = 0;
  for (auto _ : state) {
    if (engine.finished()) engine.reset();
    engine.step();
    ++epochs;
  }
  state.SetItemsProcessed(epochs);  // epochs/sec
}
BENCHMARK(BM_FlowSimChurnEpoch)->Arg(100000)->Arg(1000000);

// Yen's k-shortest-paths over a jellyfish, the routing cost the fabric zoo
// adds: one ordered host pair per iteration, cycling sources so the metered
// mix covers distinct pair distances rather than one cached pair.
void BM_KShortestPaths(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const net::FabricGraph graph = net::make_jellyfish(
      {.switches = 64, .ports = 8, .hosts = 128, .seed = 5});
  const int first_host = 64;  // switches precede hosts
  const int dst = first_host + 127;
  int src = first_host;
  std::int64_t pairs = 0;
  for (auto _ : state) {
    const auto paths = net::k_shortest_paths(graph, src, dst, k);
    benchmark::DoNotOptimize(paths.size());
    if (++src == dst) src = first_host;
    ++pairs;
  }
  state.SetItemsProcessed(pairs);  // pairs/sec
}
BENCHMARK(BM_KShortestPaths)->Arg(4)->Arg(16);

// The sharded parallel engine end to end: one permutation rate-mode
// experiment (4-leaf/16-host fabric, 3 ms simulated) per iteration at
// --shards = 1 / 2 / 4.  Items = simulator events, so items_per_second is
// whole-engine event throughput including setup, barriers and the rank
// merge.  On a single-core host the sharded legs are expected to be slower
// than Arg(1) — windowed execution and worker handoffs buy nothing without
// parallel hardware; the recorded numbers document that cost honestly.
// Measured as whole-process cpu time + wall throughput: the default
// main-thread-only cpu clock would miss the worker threads entirely and
// make the sharded legs look several times faster than serial.
void BM_ShardedFabric(benchmark::State& state) {
  exp::TrafficOptions options;
  options.topology.hosts_per_leaf = 4;
  options.topology.num_leaves = 4;
  options.topology.num_spines = 2;
  options.pattern = exp::TrafficPattern::kPermutation;
  options.warmup = sim::millis(1);
  options.measure = sim::millis(2);
  options.seed = 3;
  options.shards = static_cast<int>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const exp::TrafficResult result = exp::run_traffic_experiment(options);
    events += result.sim_events;
    benchmark::DoNotOptimize(result.total_goodput_bps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));  // events/sec
}
BENCHMARK(BM_ShardedFabric)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
