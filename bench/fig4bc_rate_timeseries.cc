// Fig. 4(b,c): the rate of a typical DCTCP flow vs a typical NUMFabric flow
// across network events, measured with the 80 us EWMA filter.
//
// Paper result: the DCTCP flow's rate is so noisy at 100 us scales that it
// never settles within 10% of its expected rate; the NUMFabric flow locks
// onto each new optimal rate shortly after every event.
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=rate-timeseries --transport=dctcp
//   numfabric_run --scenario=rate-timeseries --transport=numfabric
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce("Figure 4(b,c)",
                             "rate of a typical DCTCP vs NUMFabric flow");
  for (const char* transport : {"--transport=dctcp", "--transport=numfabric"}) {
    const int status = numfabric::app::run_cli(
        {"--scenario=rate-timeseries", transport, "seed=7"});
    if (status != 0) return status;
  }
  return 0;
}
