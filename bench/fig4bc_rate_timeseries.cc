// Fig. 4(b,c): the rate of a typical DCTCP flow vs a typical NUMFabric flow
// across network events, measured with the 80 us EWMA filter.
//
// Paper result: the DCTCP flow's rate is so noisy at 100 us scales that it
// never settles within 10% of its expected rate; the NUMFabric flow locks
// onto each new optimal rate shortly after every event.
#include <cstdio>

#include "bench_util.h"
#include "exp/semi_dynamic.h"

using namespace numfabric;

namespace {

exp::SemiDynamicResult run_trace(transport::Scheme scheme, const exp::Scale& scale) {
  exp::SemiDynamicOptions options;
  options.scheme = scheme;
  options.topology.hosts_per_leaf = scale.hosts_per_leaf;
  options.topology.num_leaves = scale.leaves;
  options.topology.num_spines = scale.spines;
  options.num_paths = scale.num_paths / 2;
  options.initial_active = scale.initial_active / 2;
  options.flows_per_event = scale.flows_per_event / 2;
  options.num_events = 8;
  options.min_active = scale.min_active / 2;
  options.max_active = scale.max_active / 2;
  options.record_trace = true;
  options.trace_sample_interval = sim::micros(20);
  // Fixed event schedule so both schemes see events at the same times
  // (DCTCP would otherwise hit the convergence timeout on every event).
  options.fixed_event_interval = sim::millis(4);
  options.use_maxmin_targets = scheme == transport::Scheme::kDctcp;
  options.seed = 7;
  return exp::run_semi_dynamic(options);
}

void print_trace(const char* name, const exp::SemiDynamicResult& result) {
  std::printf("\n--- %s flow rate trace (time ms, rate Gbps) ---\n", name);
  // Print every 10th sample to keep the output readable.
  for (std::size_t i = 0; i < result.trace.size(); i += 10) {
    std::printf("%7.2f  %6.3f\n", result.trace[i].first,
                result.trace[i].second / 1e9);
  }
  std::printf("expected rate steps (time ms, rate Gbps):\n");
  for (const auto& [at_ms, rate] : result.expected_steps) {
    std::printf("  %7.2f  %6.3f\n", at_ms, rate / 1e9);
  }
}

}  // namespace

int main() {
  const exp::Scale scale = bench::announce(
      "Figure 4(b,c)", "rate of a typical DCTCP vs NUMFabric flow");
  const auto dctcp = run_trace(transport::Scheme::kDctcp, scale);
  const auto numfabric = run_trace(transport::Scheme::kNumFabric, scale);
  print_trace("DCTCP (Fig. 4b)", dctcp);
  print_trace("NUMFabric (Fig. 4c)", numfabric);
  return 0;
}
