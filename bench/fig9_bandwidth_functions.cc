// Fig. 9: two flows with the Fig. 2 bandwidth functions share a bottleneck
// whose capacity sweeps 5..35 Gbps; measured throughput vs the BwE
// water-filling expectation.
//
// Paper result: NUMFabric's allocation is almost identical to the expected
// allocation at all link capacities.
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=bwfunc-sweep
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce("Figure 9",
                             "bandwidth-function allocation vs link capacity");
  return numfabric::app::run_cli({"--scenario=bwfunc-sweep"});
}
