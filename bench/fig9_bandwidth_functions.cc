// Fig. 9: two flows with the Fig. 2 bandwidth functions share a bottleneck
// whose capacity sweeps 5..35 Gbps; measured throughput vs the BwE
// water-filling expectation.
//
// Paper result: NUMFabric's allocation is almost identical to the expected
// allocation at all link capacities.
#include <cstdio>

#include "bench_util.h"
#include "exp/bwfunc_experiment.h"

using namespace numfabric;

int main() {
  const exp::Scale scale = bench::announce(
      "Figure 9", "bandwidth-function allocation vs link capacity");

  exp::BwFuncSweepOptions options;
  options.warmup = scale.warmup;
  options.measure = scale.measure;
  const auto result = exp::run_bwfunc_sweep(options);

  std::printf("%10s %12s %12s %12s %12s\n", "C (Gbps)", "flow1 meas",
              "flow1 expect", "flow2 meas", "flow2 expect");
  for (const auto& row : result.rows) {
    std::printf("%10.0f %12.2f %12.2f %12.2f %12.2f\n", row.capacity_gbps,
                row.flow1_gbps, row.expected1_gbps, row.flow2_gbps,
                row.expected2_gbps);
  }
  std::printf("\n(expected = BwE fair-share water-filling of the Fig. 2 "
              "functions; Fig. 2's worked examples: C=10 -> (10, 0), "
              "C=25 -> (15, 10))\n");
  return 0;
}
