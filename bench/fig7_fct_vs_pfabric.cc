// Fig. 7: flow completion times — NUMFabric with the FCT-minimizing utility
// vs pFabric, web-search workload, load swept 0.2..0.8.
//
// Paper result: NUMFabric's average normalized FCT is within 4-20% of
// pFabric across loads (pFabric stays the specialist winner; NUMFabric gets
// close while remaining policy-flexible).
#include <cstdio>

#include "bench_util.h"
#include "exp/fct_experiment.h"

using namespace numfabric;

int main() {
  const exp::Scale scale = bench::announce(
      "Figure 7", "normalized FCT vs load: NUMFabric (FCT utility) vs pFabric");

  exp::FctExperimentOptions options;
  options.topology.hosts_per_leaf = scale.hosts_per_leaf;
  options.topology.num_leaves = scale.leaves;
  options.topology.num_spines = scale.spines;
  options.loads = scale.full ? std::vector<double>{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
                             : std::vector<double>{0.2, 0.4, 0.6, 0.8};
  options.flow_count = scale.dynamic_flow_count;
  options.seed = 5;
  const auto result = exp::run_fct_experiment(options);

  std::printf("%6s %22s %22s %8s\n", "load", "NUMFabric FCT/ideal",
              "pFabric FCT/ideal", "ratio");
  for (const auto& row : result.rows) {
    std::printf("%6.2f %22.2f %22.2f %8.2f\n", row.load,
                row.numfabric_mean_norm_fct, row.pfabric_mean_norm_fct,
                row.numfabric_mean_norm_fct /
                    (row.pfabric_mean_norm_fct > 0 ? row.pfabric_mean_norm_fct
                                                   : 1.0));
  }
  std::printf("\ncompleted flows per load (NUMFabric / pFabric):\n");
  for (const auto& row : result.rows) {
    std::printf("  %.2f: %d+%d unfinished / %d+%d unfinished\n", row.load,
                row.numfabric_completed, row.numfabric_incomplete,
                row.pfabric_completed, row.pfabric_incomplete);
  }
  std::printf("\n(paper: NUMFabric within 4-20%% of pFabric)\n");
  return 0;
}
