// Fig. 7: flow completion times — NUMFabric with the FCT-minimizing utility
// vs pFabric, web-search workload, load swept 0.2..0.8.
//
// Paper result: NUMFabric's average normalized FCT is within 4-20% of
// pFabric across loads (pFabric stays the specialist winner; NUMFabric gets
// close while remaining policy-flexible).
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=fct-vs-pfabric
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce(
      "Figure 7", "normalized FCT vs load: NUMFabric (FCT utility) vs pFabric");
  return numfabric::app::run_cli({"--scenario=fct-vs-pfabric", "seed=5"});
}
