// Ablation (§8): replace exact STFQ with "a small set of queues with
// different weights" (quantized DRR bands) and measure the impact on
// convergence in the semi-dynamic scenario.
//
// Weight quantization directly caps the achievable allocation precision: a
// grid with ratio r between bands mis-serves flows by up to ~r, so coarse
// bands cannot settle within the paper's 10% convergence margin at all.  We
// report both the strict 10% margin and a looser 25% margin to show where
// each quantization level lands.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "exp/semi_dynamic.h"
#include "net/routing.h"
#include "net/topology.h"
#include "num/utility.h"
#include "stats/summary.h"
#include "transport/receiver.h"

using namespace numfabric;

namespace {

/// Mechanism fidelity: two flows with 1:3 weighted utilities on a dumbbell;
/// prints the realized split (ideal 2.5 / 7.5 Gbps).
void weighted_split(int bands) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options;
  fabric_options.scheme = transport::Scheme::kNumFabric;
  fabric_options.discrete_wfq_bands = bands;
  fabric_options.numfabric.min_weight = 10.0;
  fabric_options.numfabric.max_weight = 1e5;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::Dumbbell dumbbell = net::build_dumbbell(
      topo, 2, 40e9, 10e9, sim::micros(2), fabric.queue_factory());
  fabric.attach_agents(topo);
  num::AlphaFairUtility weight1(1.0, 1.0), weight3(1.0, 3.0);
  std::vector<transport::Flow*> flows;
  for (int i = 0; i < 2; ++i) {
    transport::FlowSpec spec;
    spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
    spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
    spec.size_bytes = 0;
    spec.utility = i == 0 ? &weight1 : &weight3;
    spec.path = net::all_shortest_paths(topo, spec.src, spec.dst).front();
    flows.push_back(fabric.add_flow(std::move(spec)));
  }
  sim.run_until(sim::millis(8));
  std::printf("  %-6s -> %.2f / %.2f Gbps\n",
              bands == 0 ? "exact" : std::to_string(bands).c_str(),
              flows[0]->receiver().rate_bps() / 1e9,
              flows[1]->receiver().rate_bps() / 1e9);
}

struct Row {
  double median_us = -1;
  double converged = 0;
};

Row run(int bands, double margin, const exp::Scale& scale) {
  exp::SemiDynamicOptions options;
  options.scheme = transport::Scheme::kNumFabric;
  options.topology.hosts_per_leaf = scale.hosts_per_leaf;
  options.topology.num_leaves = scale.leaves;
  options.topology.num_spines = scale.spines;
  options.num_paths = scale.num_paths / 2;
  options.initial_active = scale.initial_active / 2;
  options.flows_per_event = scale.flows_per_event / 2;
  options.num_events = scale.full ? 20 : 3;
  options.min_active = scale.min_active / 2;
  options.max_active = scale.max_active / 2;
  options.convergence.timeout = scale.convergence_timeout;
  options.convergence.margin = margin;
  options.fabric.discrete_wfq_bands = bands;
  // Band the operational weight range (10 Mbps .. 100 Gbps) rather than the
  // full numeric guard range; the guard range would waste bands on weights
  // no flow ever uses.
  options.fabric.numfabric.min_weight = 10.0;
  options.fabric.numfabric.max_weight = 1e5;
  options.seed = 31;
  const auto result = exp::run_semi_dynamic(options);
  Row row;
  row.converged = result.events_measured > 0
                      ? static_cast<double>(result.events_converged) /
                            result.events_measured
                      : 0.0;
  if (!result.convergence_times_us.empty()) {
    row.median_us = stats::percentile(result.convergence_times_us, 50);
  }
  return row;
}

void print_cell(const Row& row) {
  if (row.median_us < 0) {
    std::printf(" %10s %9.0f%%", "-", 100 * row.converged);
  } else {
    std::printf(" %10.0f %9.0f%%", row.median_us, 100 * row.converged);
  }
}

}  // namespace

int main() {
  const exp::Scale scale = bench::announce(
      "Ablation", "exact STFQ vs discrete multi-queue WFQ approximation");

  std::printf("Mechanism check: 1:3 weighted split on a dumbbell "
              "(ideal 2.50 / 7.50):\n");
  for (int bands : {0, 16, 64}) weighted_split(bands);

  std::printf("\nSemi-dynamic convergence (the paper's §6.1 criterion):\n");
  std::printf("%8s | %10s %10s | %10s %10s\n", "bands", "med(10%)", "conv",
              "med(25%)", "conv");
  for (int bands : {0, 16, 64}) {
    const std::string label = bands == 0 ? "exact" : std::to_string(bands);
    std::printf("%8s |", label.c_str());
    print_cell(run(bands, 0.10, scale));
    std::printf(" |");
    print_cell(run(bands, 0.25, scale));
    std::printf("\n");
  }
  std::printf(
      "\n(The banded scheduler realizes weighted sharing faithfully in the\n"
      " controlled two-flow case, but weight quantization — grid ratio\n"
      " ~1.85/1.35/1.16 at 16/32/64 bands — plus flows hopping between\n"
      " adjacent bands as prices move keeps the large dynamic scenario from\n"
      " holding 95%% of flows inside tight margins for 5 ms.  Exact STFQ\n"
      " (bands = 'exact') is what NUMFabric's convergence results need —\n"
      " quantifying the cost of the simpler switch design suggested in §8.)\n");
  return 0;
}
