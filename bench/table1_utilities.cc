// Table 1: utility functions for several allocation policies.
//
// For each row of Table 1 this bench solves a small NUM instance with the
// corresponding utility (via the exact oracle and the fluid xWI iteration)
// and prints the resulting allocation next to the closed-form expectation,
// demonstrating that the utility encodes the intended policy.
#include <cstdio>
#include <memory>
#include <vector>

#include "num/bandwidth_function.h"
#include "num/bwe_waterfill.h"
#include "num/csr_problem.h"
#include "num/num_solver.h"
#include "num/utility.h"
#include "num/xwi_fluid.h"

namespace {

using namespace numfabric::num;

// Oracle rates via the compiled CSR path (the solve_num(NumProblem) adapter
// is kept only as a compatibility shim for external callers).
std::vector<double> oracle_rates(const NumProblem& problem) {
  const CsrProblem csr = CsrProblem::compile(problem);
  NumWorkspace workspace;
  solve(csr, workspace, {});
  return {workspace.rates().begin(), workspace.rates().end()};
}

void print_row(const char* label, const std::vector<double>& rates,
               const char* expectation) {
  std::printf("  %-38s [", label);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%s%7.1f", i ? ", " : "", rates[i]);
  }
  std::printf(" ] Mbps   expected: %s\n", expectation);
}

void alpha_fairness() {
  std::printf("Row 1 — flexible alpha-fairness (2 flows over links A+B vs B):\n");
  // Parking lot with capacities 9/9: proportional fairness (alpha=1) gives
  // the 2-hop flow C/3; max-min (alpha->inf) gives C/2; alpha=0.5 favors
  // throughput (2-hop flow gets less).
  for (double alpha : {0.5, 1.0, 2.0, 8.0}) {
    AlphaFairUtility u(alpha);
    NumProblem problem;
    problem.utilities = {&u, &u, &u};
    problem.flow_links = {{0, 1}, {0}, {1}};
    problem.capacities = {9000, 9000};
    const auto rates = oracle_rates(problem);
    char label[64];
    std::snprintf(label, sizeof(label), "alpha = %.1f", alpha);
    print_row(label, rates,
              alpha == 1.0 ? "(3000, 6000, 6000) for alpha=1"
                           : "long flow rises with alpha");
  }
}

void weighted_alpha_fairness() {
  std::printf("\nRow 2 — weighted alpha-fairness (weights 1:3 on one link):\n");
  AlphaFairUtility u1(1.0, 1.0), u3(1.0, 3.0);
  NumProblem problem;
  problem.utilities = {&u1, &u3};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {10'000};
  const auto rates = oracle_rates(problem);
  print_row("weights (1, 3)", rates, "(2500, 7500)");
}

void fct_minimization() {
  std::printf("\nRow 3 — minimize FCT (weight 1/size, eps = 0.125):\n");
  // Two flows, sizes 100 KB vs 10 MB, one 10G link: the small flow gets
  // almost everything (Shortest-Flow-First behavior).
  const auto small = make_fct_utility(100e3);
  const auto large = make_fct_utility(10e6);
  NumProblem problem;
  problem.utilities = {small.get(), large.get()};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {10'000};
  const auto rates = oracle_rates(problem);
  print_row("sizes (100 KB, 10 MB)", rates,
            "small flow takes nearly the whole link");
}

void resource_pooling() {
  std::printf("\nRow 4 — resource pooling (aggregate utility; fluid model):\n");
  // Two parallel 10G paths; flow A has sub-flows on both, flow B only on
  // path 2.  Pooling: aggregate proportional fairness gives A 10 + 5 and
  // B 5 (A's aggregate 15000); without pooling (per-sub-flow fairness) the
  // allocation on path 2 is also 5000/5000 — but A's aggregate utility is
  // what changes.  Here we print the pooled optimum from the NUM oracle on
  // sub-flow variables (aggregate log utility is optimized when B gets half
  // of path 2).
  // Fluid check with aggregate handled analytically: A = 15000, B = 5000.
  AlphaFairUtility u(1.0);
  NumProblem problem;  // per-subflow proportional fairness, for contrast
  problem.utilities = {&u, &u, &u};
  problem.flow_links = {{0}, {1}, {1}};
  problem.capacities = {10'000, 10'000};
  const auto rates = oracle_rates(problem);
  std::vector<double> aggregates = {rates[0] + rates[1],
                                    rates[2]};
  print_row("no pooling: (A, B) aggregates", aggregates,
            "(15000, 5000) — equals pooling here");
  std::printf("    (Fig. 8 exercises the packet-level pooling heuristic; the fluid\n"
              "     aggregate optimum for this topology is A=15000, B=5000.)\n");
}

void bandwidth_functions() {
  std::printf("\nRow 5 — bandwidth functions (Fig. 2 pair, alpha = 5):\n");
  const BandwidthFunction b1 = fig2_flow1();
  const BandwidthFunction b2 = fig2_flow2();
  BandwidthFunctionUtility u1(b1, 5.0), u2(b2, 5.0);
  for (double capacity : {10'000.0, 25'000.0}) {
    NumProblem problem;
    problem.utilities = {&u1, &u2};
    problem.flow_links = {{0}, {0}};
    problem.capacities = {capacity};
    const auto rates = oracle_rates(problem);

    BweProblem bwe;
    bwe.functions = {&b1, &b2};
    bwe.flow_links = {{0}, {0}};
    bwe.capacities = {capacity};
    const auto expected = bwe_waterfill(bwe);
    char label[64], expect[64];
    std::snprintf(label, sizeof(label), "C = %.0f Gbps (NUM, alpha=5)",
                  capacity / 1000);
    std::snprintf(expect, sizeof(expect), "water-fill (%.0f, %.0f)",
                  expected.rates[0], expected.rates[1]);
    print_row(label, rates, expect);
  }
}

void xwi_agreement() {
  std::printf("\nCross-check — fluid xWI reaches the same optimum (alpha = 1):\n");
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u, &u};
  problem.flow_links = {{0, 1}, {0}, {1}};
  problem.capacities = {9000, 9000};
  const auto oracle = oracle_rates(problem);
  const auto xwi = xwi_fluid_solve(problem);
  print_row("oracle", oracle, "(3000, 6000, 6000)");
  print_row("xWI fixed point", xwi.rates, "same");
  std::printf("  xWI iterations to fixed point: %d\n", xwi.iterations);
}

}  // namespace

int main() {
  std::printf("=== Table 1 — utility functions for allocation policies ===\n\n");
  alpha_fairness();
  weighted_alpha_fairness();
  fct_minimization();
  resource_pooling();
  bandwidth_functions();
  xwi_agreement();
  return 0;
}
