// Fig. 6: NUMFabric parameter sensitivity — median convergence time as a
// function of (a) the Swift delay slack dt, (b) the xWI price update
// interval, and (c) the fairness parameter alpha (at 1x and 2x-slowed
// control loops).
//
// Paper results: dt too small (~3 us) fails to converge, dt too large is
// slow; convergence time grows with the price update interval; extreme
// alphas need the 2x slowdown to converge reliably.
//
// Thin wrapper over the scenario registry; each panel is one parallel sweep:
//   numfabric_run --scenario=sensitivity --sweep dt_us=3,6,12,18,24 --jobs=0
#include <cstdio>
#include <string>
#include <vector>

#include "app/driver.h"
#include "bench_util.h"

namespace {

int run_panel(const char* title, const std::vector<std::string>& args) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::string> full_args = {"--scenario=sensitivity", "--jobs=0"};
  full_args.insert(full_args.end(), args.begin(), args.end());
  return numfabric::app::run_cli(full_args);
}

}  // namespace

int main() {
  numfabric::bench::announce("Figure 6", "NUMFabric parameter sensitivity");
  int rc = 0;
  rc |= run_panel("(a) sensitivity to dt", {"--sweep", "dt_us=3,6,12,18,24"});
  rc |= run_panel("(b) sensitivity to price update interval",
                  {"--sweep", "interval_us=30,50,80,128"});
  rc |= run_panel("(c) sensitivity to alpha (1x and 2x slowdown)",
                  {"--sweep", "alpha=0.25,0.5,1,2,4", "--sweep",
                   "slowdown=1,2"});
  return rc;
}
