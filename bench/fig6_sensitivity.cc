// Fig. 6: NUMFabric parameter sensitivity — median convergence time as a
// function of (a) the Swift delay slack dt, (b) the xWI price update
// interval, and (c) the fairness parameter alpha (at 1x and 2x-slowed
// control loops).
//
// Paper results: dt too small (~3 us) fails to converge, dt too large is
// slow; convergence time grows with the price update interval; extreme
// alphas need the 2x slowdown to converge reliably.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/semi_dynamic.h"
#include "stats/summary.h"

using namespace numfabric;

namespace {

exp::SemiDynamicOptions base_options(const exp::Scale& scale) {
  exp::SemiDynamicOptions options;
  options.scheme = transport::Scheme::kNumFabric;
  options.topology.hosts_per_leaf = scale.hosts_per_leaf;
  options.topology.num_leaves = scale.leaves;
  options.topology.num_spines = scale.spines;
  // Sensitivity sweeps rerun the scenario many times; use fewer events per
  // point than Fig. 4a.
  options.num_paths = scale.num_paths / 4;
  options.initial_active = scale.initial_active / 4;
  options.flows_per_event = scale.flows_per_event / 4;
  options.num_events = scale.full ? 30 : 4;
  options.min_active = scale.min_active / 4;
  options.max_active = scale.max_active / 4;
  options.convergence.timeout = scale.convergence_timeout;
  options.seed = 21;
  return options;
}

struct Point {
  double x = 0;
  double median_us = 0;
  double converged_fraction = 0;
};

Point run_point(double x, const exp::SemiDynamicOptions& options) {
  const auto result = exp::run_semi_dynamic(options);
  Point point;
  point.x = x;
  point.converged_fraction =
      result.events_measured > 0
          ? static_cast<double>(result.events_converged) / result.events_measured
          : 0.0;
  point.median_us = result.convergence_times_us.empty()
                        ? -1
                        : stats::percentile(result.convergence_times_us, 50);
  return point;
}

void print_points(const char* title, const char* x_name,
                  const std::vector<Point>& points) {
  std::printf("\n--- %s ---\n", title);
  std::printf("  %-14s %12s %10s\n", x_name, "median (us)", "converged");
  for (const Point& point : points) {
    if (point.median_us < 0) {
      std::printf("  %-14.3g %12s %9.0f%%\n", point.x, "-",
                  100 * point.converged_fraction);
    } else {
      std::printf("  %-14.3g %12.0f %9.0f%%\n", point.x, point.median_us,
                  100 * point.converged_fraction);
    }
  }
}

}  // namespace

int main() {
  const exp::Scale scale =
      bench::announce("Figure 6", "NUMFabric parameter sensitivity");

  {  // (a) dt slack.
    std::vector<Point> points;
    for (double dt_us : {3.0, 6.0, 12.0, 18.0, 24.0}) {
      exp::SemiDynamicOptions options = base_options(scale);
      options.fabric.numfabric.dt_slack =
          static_cast<sim::TimeNs>(dt_us * sim::kMicrosecond);
      points.push_back(run_point(dt_us, options));
    }
    print_points("(a) sensitivity to dt", "dt (us)", points);
  }

  {  // (b) price update interval.
    std::vector<Point> points;
    for (double interval_us : {30.0, 50.0, 80.0, 128.0}) {
      exp::SemiDynamicOptions options = base_options(scale);
      options.fabric.numfabric.price_update_interval =
          static_cast<sim::TimeNs>(interval_us * sim::kMicrosecond);
      points.push_back(run_point(interval_us, options));
    }
    print_points("(b) sensitivity to price update interval", "interval (us)",
                 points);
  }

  {  // (c) alpha, at 1x and 2x slowdown.
    for (double slowdown : {1.0, 2.0}) {
      std::vector<Point> points;
      for (double alpha : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        exp::SemiDynamicOptions options = base_options(scale);
        options.alpha = alpha;
        options.fabric.numfabric =
            options.fabric.numfabric.slowed_down(slowdown);
        points.push_back(run_point(alpha, options));
      }
      char title[80];
      std::snprintf(title, sizeof(title), "(c) sensitivity to alpha (%.0fx)",
                    slowdown);
      print_points(title, "alpha", points);
    }
  }
  return 0;
}
