// Fig. 10: bandwidth functions composed with resource pooling.  Two flows,
// each with a private link (5 / 3 Gbps) plus a sub-flow over a shared middle
// link whose capacity steps 5 -> 17 Gbps mid-run.
//
// Paper result: aggregate allocations move (10, 3) -> (15, 10) Gbps shortly
// after the capacity change.
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=bwfunc-pooling
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce("Figure 10",
                             "bandwidth functions + resource pooling");
  return numfabric::app::run_cli({"--scenario=bwfunc-pooling"});
}
