// Fig. 10: bandwidth functions composed with resource pooling.  Two flows,
// each with a private link (5 / 3 Gbps) plus a sub-flow over a shared middle
// link whose capacity steps 5 -> 17 Gbps mid-run.
//
// Paper result: aggregate allocations move (10, 3) -> (15, 10) Gbps shortly
// after the capacity change.
#include <cstdio>

#include "bench_util.h"
#include "exp/bwfunc_experiment.h"

using namespace numfabric;

int main() {
  bench::announce("Figure 10", "bandwidth functions + resource pooling");

  exp::BwFuncPoolingOptions options;
  const auto result = exp::run_bwfunc_pooling(options);

  std::printf("steady-state aggregates (Gbps):\n");
  std::printf("  %-22s %10s %10s\n", "phase", "flow1", "flow2");
  std::printf("  %-22s %10.2f %10.2f   (expected %.0f, %.0f)\n", "middle = 5 Gbps",
              result.flow1_before_gbps, result.flow2_before_gbps,
              result.expected1_before_gbps, result.expected2_before_gbps);
  std::printf("  %-22s %10.2f %10.2f   (expected %.0f, %.0f)\n", "middle = 17 Gbps",
              result.flow1_after_gbps, result.flow2_after_gbps,
              result.expected1_after_gbps, result.expected2_after_gbps);

  std::printf("\ntime series (ms, flow1 Gbps, flow2 Gbps), every 5th sample:\n");
  for (std::size_t i = 0; i < result.series.size(); i += 5) {
    const auto& [at_ms, f1, f2] = result.series[i];
    std::printf("  %7.2f  %6.2f  %6.2f\n", at_ms, f1 / 1e9, f2 / 1e9);
  }
  return 0;
}
