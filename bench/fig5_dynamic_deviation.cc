// Fig. 5: normalized deviation from ideal (fluid-oracle) rates under
// dynamic Poisson workloads, per BDP-relative flow-size bin.
//
// Paper result: NUMFabric's median deviation is ~0 for all bins above a few
// BDPs; DGD and RCP* are negatively biased (slow convergence leaves
// bandwidth unclaimed), worst for small flows.
//
// Thin wrapper over the scenario registry; equivalent to
//   numfabric_run --scenario=dynamic-deviation workload=websearch \
//                 transports=numfabric,dgd,rcp
// followed by the same with workload=enterprise.
#include "app/driver.h"
#include "bench_util.h"

int main() {
  numfabric::bench::announce(
      "Figure 5", "deviation from ideal rates, dynamic workloads");
  for (const char* workload :
       {"workload=websearch", "workload=enterprise"}) {
    const int status = numfabric::app::run_cli(
        {"--scenario=dynamic-deviation", workload,
         "transports=numfabric,dgd,rcp", "seed=11"});
    if (status != 0) return status;
  }
  return 0;
}
