// Fig. 5: normalized deviation from ideal (fluid-oracle) rates under
// dynamic Poisson workloads, per BDP-relative flow-size bin.
//
// Paper result: NUMFabric's median deviation is ~0 for all bins above a few
// BDPs; DGD and RCP* are negatively biased (slow convergence leaves
// bandwidth unclaimed), worst for small flows.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "exp/dynamic_workload.h"
#include "stats/summary.h"

using namespace numfabric;

namespace {

void run_workload(const char* name, const workload::SizeDistribution& sizes,
                  const exp::Scale& scale) {
  std::printf("\n--- %s workload (load 0.6) ---\n", name);
  const transport::Scheme schemes[3] = {transport::Scheme::kNumFabric,
                                        transport::Scheme::kDgd,
                                        transport::Scheme::kRcpStar};
  for (const transport::Scheme scheme : schemes) {
    exp::DynamicWorkloadOptions options;
    options.scheme = scheme;
    options.topology.hosts_per_leaf = scale.hosts_per_leaf;
    options.topology.num_leaves = scale.leaves;
    options.topology.num_spines = scale.spines;
    options.sizes = &sizes;
    options.load = 0.6;
    options.flow_count = scale.dynamic_flow_count;
    options.seed = 11;
    const auto result = exp::run_dynamic_workload(options);

    // Deviation per bin.
    std::vector<std::vector<double>> bins(5);
    for (const auto& flow : result.flows) {
      const int bin = exp::bdp_bin(static_cast<double>(flow.size_bytes),
                                   result.bdp_bytes);
      if (bin < 0) continue;
      bins[static_cast<std::size_t>(bin)].push_back(
          (flow.rate_bps - flow.ideal_rate_bps) / flow.ideal_rate_bps);
    }
    std::printf("%-10s (BDP = %.0f KB, %zu flows done, %d unfinished)\n",
                transport::scheme_name(scheme), result.bdp_bytes / 1e3,
                result.flows.size(), result.incomplete);
    std::printf("  %-10s %8s %8s %8s %8s %8s %6s\n", "bin(BDPs)", "whisk-", "p25",
                "median", "p75", "whisk+", "n");
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b].empty()) {
        std::printf("  %-10s %8s\n", exp::kBdpBinLabels[b], "(empty)");
        continue;
      }
      const stats::BoxPlot box = stats::box_plot(bins[b]);
      std::printf("  %-10s %+8.2f %+8.2f %+8.2f %+8.2f %+8.2f %6zu\n",
                  exp::kBdpBinLabels[b], box.whisker_low, box.p25, box.p50,
                  box.p75, box.whisker_high, bins[b].size());
    }
  }
}

}  // namespace

int main() {
  const exp::Scale scale = bench::announce(
      "Figure 5", "deviation from ideal rates, dynamic workloads");
  run_workload("web search [Fig. 5a]", workload::websearch_distribution(), scale);
  run_workload("enterprise [Fig. 5b]", workload::enterprise_distribution(), scale);
  return 0;
}
