#!/usr/bin/env python3
"""Render Fig. 6 / Fig. 7 style plots straight from one merged sweep CSV.

The sweep engine already merges every grid point into one table set; these
plots are just projections of those tables:

    fig6  <csv>   sensitivity table: convergence time vs the swept control
                  parameter (whichever of dt_us / interval_us / alpha / eta /
                  beta / slowdown the sweep varied) — one point per grid row.
                  Produce the CSV with e.g.
                    numfabric_run --scenario=sensitivity --sweep eta=2:10:2

    fig7  <csv>   fct_sweep table: mean (solid) and p99 (dashed) normalized
                  FCT vs load, one series per transport when the sweep
                  crossed transport=..., e.g.
                    numfabric_run --scenario=websearch-fct \\
                        --sweep load=0.2:0.8:0.2 --sweep transport=numfabric,pfabric

    topology <csv>  fct table of a traffic-family FCT run swept across
                  fabrics: mean and p99 FCT (us) per topology, one bar group
                  per swept topology value (split per fidelity when the sweep
                  crossed fidelity=...), replicate sweeps (seed / jf_seed)
                  averaged.  Produce the CSV with e.g.
                    numfabric_run --scenario=permutation flow_kb=64 \\
                        --sweep "topology=16x8x4, jellyfish:12,4,32" \\
                        --sweep fidelity=packet,flow

Headless by construction (matplotlib Agg backend); --check parses and
validates the CSV without rendering, so CI can gate the data shape even
where matplotlib is absent.  Exit codes: 0 ok, 2 bad input, 3 matplotlib
missing (and --check not given).
"""
import argparse
import csv
import sys

# Categorical palette (validated, colorblind-safe adjacent order); color
# follows the transport identity, never its position in this run's series
# list, so the same scheme keeps the same hue across plots and filters.
SERIES_COLORS = {
    "numfabric": "#2a78d6",  # blue
    "pfabric": "#eb6834",    # orange
    "dctcp": "#1baf7a",      # aqua
    "rcp": "#eda100",        # yellow
    "dgd": "#e87ba4",        # magenta
}
# Transport tokens parse_scheme accepts beyond the canonical five.
SERIES_ALIASES = {"rcp*": "rcp", "rcpstar": "rcp"}
# Remaining validated palette slots for series with no reserved hue.
FALLBACK_COLORS = ["#008300", "#4a3aa7", "#e34948"]
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#e3e2de"

SENSITIVITY_KNOBS = ["dt_us", "interval_us", "alpha", "eta", "beta", "slowdown"]


def parse_tables(path):
    """Parses the metric CSV format: '# scalar,k,v' lines and '# table,NAME'
    sections (header row, then data rows).  Returns (scalars, tables) as
    ({name: value}, {name: list-of-dicts})."""
    scalars = {}
    tables = {}
    current = None
    header = None
    with open(path, newline="") as fp:
        for row in csv.reader(fp):
            if not row:
                continue
            if row[0].startswith("#"):
                marker = row[0].lstrip("# ").strip()
                if marker == "table" and len(row) >= 2:
                    current = row[1]
                    header = None
                    tables[current] = []
                else:
                    current = None
                    if marker == "scalar" and len(row) >= 3:
                        scalars[row[1]] = row[2]
                continue
            if current is None:
                continue
            if header is None:
                header = row
                continue
            tables[current].append(dict(zip(header, row)))
    return scalars, tables


def default_transport(scalars, tables):
    """Series name for runs whose sweep did not cross transport=: the run
    scalar for single runs, the sweep_scalars 'transport' value when it is
    unique across grid points, else a neutral label."""
    if "transport" in scalars:
        return scalars["transport"]
    values = {
        r["value"]
        for r in tables.get("sweep_scalars", [])
        if r.get("name") == "transport"
    }
    if len(values) == 1:
        return values.pop()
    return ""  # unknown: label measures without a transport prefix


def to_float(value):
    try:
        return float(value)
    except ValueError:
        return None


def aggregate(points):
    """Averages replicate grid points (e.g. a crossed seed sweep): [(x, y...)]
    -> sorted [(x, mean_y...)]."""
    groups = {}
    for x, *ys in points:
        groups.setdefault(x, []).append(ys)
    merged = []
    for x in sorted(groups):
        cols = zip(*groups[x])
        merged.append((x, *(sum(c) / len(c) for c in cols)))
    return merged


def require_table(tables, name, path):
    if name not in tables or not tables[name]:
        print(
            f"error: no '{name}' table in {path} (is this the right scenario's "
            f"sweep output?)  Tables present: {', '.join(sorted(tables)) or 'none'}",
            file=sys.stderr,
        )
        sys.exit(2)
    return tables[name]


def load_matplotlib(check_only):
    if check_only:
        return None
    try:
        import matplotlib

        matplotlib.use("Agg")  # headless: never touch a display
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        print(
            "error: matplotlib is not installed; install python3-matplotlib "
            "or use --check to validate the CSV without rendering",
            file=sys.stderr,
        )
        sys.exit(3)


def style_axes(ax):
    ax.set_facecolor(SURFACE)
    ax.grid(True, color=GRID, linewidth=0.8)
    ax.set_axisbelow(True)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color(TEXT_SECONDARY)
    ax.tick_params(colors=TEXT_SECONDARY, labelsize=9)


def finish(plt, fig, out):
    fig.savefig(out, dpi=144, facecolor=SURFACE, bbox_inches="tight")
    plt.close(fig)
    print(f"wrote {out}")


def plot_fig6(path, out, check_only):
    _, tables = parse_tables(path)
    rows = require_table(tables, "sensitivity", path)
    # The swept knob: the declared control parameter whose column actually
    # varies across grid rows (exactly one for a Fig. 6 panel).
    varying = [
        k
        for k in SENSITIVITY_KNOBS
        if k in rows[0] and len({r[k] for r in rows}) > 1
    ]
    knob = varying[0] if varying else SENSITIVITY_KNOBS[0]
    if len(varying) > 1:
        print(
            f"note: several knobs vary ({', '.join(varying)}); plotting "
            f"against '{knob}'",
            file=sys.stderr,
        )
    points = aggregate(
        (to_float(r[knob]), to_float(r["median_us"]), to_float(r["p95_us"]))
        for r in rows
    )
    print(
        f"fig6: {len(points)} sensitivity points, x={knob}, "
        f"median_us in [{min(p[1] for p in points):.6g}, "
        f"{max(p[1] for p in points):.6g}]"
    )
    plt = load_matplotlib(check_only)
    if plt is None:
        return
    fig, ax = plt.subplots(figsize=(5.4, 3.4))
    xs = [p[0] for p in points]
    ax.plot(xs, [p[1] for p in points], color=SERIES_COLORS["numfabric"],
            linewidth=2, marker="o", markersize=5, label="median")
    ax.plot(xs, [p[2] for p in points], color=SERIES_COLORS["numfabric"],
            linewidth=2, linestyle="--", marker="o", markersize=5,
            markerfacecolor=SURFACE, label="p95")
    style_axes(ax)
    ax.set_xlabel(knob, color=TEXT_SECONDARY, fontsize=10)
    ax.set_ylabel("convergence time (us)", color=TEXT_SECONDARY, fontsize=10)
    ax.set_ylim(bottom=0)
    ax.set_title(f"Convergence time vs {knob} (Fig. 6)", color=TEXT_PRIMARY,
                 fontsize=11, loc="left")
    ax.legend(frameon=False, fontsize=9, labelcolor=TEXT_SECONDARY)
    finish(plt, fig, out)


def plot_fig7(path, out, check_only):
    scalars, tables = parse_tables(path)
    rows = require_table(tables, "fct_sweep", path)
    fallback_series = default_transport(scalars, tables)
    by_transport = {}
    for r in rows:
        series = r.get("transport", fallback_series)
        series = SERIES_ALIASES.get(series, series)
        by_transport.setdefault(series, []).append(
            (to_float(r["load"]), to_float(r["mean_norm_fct"]),
             to_float(r["p99_norm_fct"]))
        )
    for series in by_transport:
        by_transport[series] = aggregate(by_transport[series])
    for series, points in sorted(by_transport.items()):
        print(
            f"fig7: {series or '(transport not recorded)'}: {len(points)} "
            f"load points, mean_norm_fct in "
            f"[{min(p[1] for p in points):.6g}, {max(p[1] for p in points):.6g}]"
        )
    plt = load_matplotlib(check_only)
    if plt is None:
        return
    fig, ax = plt.subplots(figsize=(5.4, 3.4))
    fallback = iter(FALLBACK_COLORS)
    for series, points in sorted(by_transport.items()):
        color = SERIES_COLORS.get(series) or next(fallback, None)
        if color is None:
            print(
                f"error: more unrecognized series than palette slots "
                f"(at '{series}'); facet the sweep into separate plots",
                file=sys.stderr,
            )
            sys.exit(2)
        xs = [p[0] for p in points]
        prefix = f"{series} " if series else ""
        ax.plot(xs, [p[1] for p in points], color=color, linewidth=2,
                marker="o", markersize=5, label=f"{prefix}mean")
        ax.plot(xs, [p[2] for p in points], color=color, linewidth=2,
                linestyle="--", marker="o", markersize=5,
                markerfacecolor=SURFACE, label=f"{prefix}p99")
    style_axes(ax)
    ax.set_xlabel("load", color=TEXT_SECONDARY, fontsize=10)
    ax.set_ylabel("normalized FCT", color=TEXT_SECONDARY, fontsize=10)
    ax.set_ylim(bottom=0)
    ax.set_title("Normalized FCT vs load (Fig. 7)", color=TEXT_PRIMARY,
                 fontsize=11, loc="left")
    ax.legend(frameon=False, fontsize=9, labelcolor=TEXT_SECONDARY)
    finish(plt, fig, out)


def topology_color(label):
    """Hue follows the fabric family, not the grid position: all jellyfish
    bars share one color, all Clos (HxLxS) bars another."""
    return "#4a3aa7" if label.startswith("jellyfish") else "#2a78d6"


def plot_topology(path, out, check_only):
    _, tables = parse_tables(path)
    rows = require_table(tables, "fct", path)
    if "topology" not in rows[0]:
        print(
            f"error: 'fct' table in {path} has no 'topology' column — sweep "
            f"the run across topology=... so the comparison has groups",
            file=sys.stderr,
        )
        sys.exit(2)
    # One bar group per (topology, fidelity); fidelity folds into the label
    # only when the sweep actually crossed it.  Everything else that varied
    # (seed, jf_seed, ...) is a replicate and averages.
    split_fidelity = (
        "fidelity" in rows[0] and len({r["fidelity"] for r in rows}) > 1
    )
    groups = {}
    for r in rows:
        mean_us, p99_us = to_float(r["mean_us"]), to_float(r["p99_us"])
        if mean_us is None or p99_us is None:
            print(
                f"error: non-numeric mean_us/p99_us in {path} (incomplete "
                f"run?)",
                file=sys.stderr,
            )
            sys.exit(2)
        label = r["topology"]
        if split_fidelity:
            label += f" [{r['fidelity']}]"
        groups.setdefault(label, []).append((mean_us, p99_us))
    labels = sorted(groups)
    means = [sum(g[0] for g in groups[l]) / len(groups[l]) for l in labels]
    p99s = [sum(g[1] for g in groups[l]) / len(groups[l]) for l in labels]
    for label, mean_us, p99_us in zip(labels, means, p99s):
        print(
            f"topology: {label}: {len(groups[label])} run(s), "
            f"mean_us={mean_us:.6g}, p99_us={p99_us:.6g}"
        )
    plt = load_matplotlib(check_only)
    if plt is None:
        return
    fig, ax = plt.subplots(figsize=(1.2 + 1.6 * len(labels), 3.6))
    xs = range(len(labels))
    width = 0.38
    ax.bar([x - width / 2 for x in xs], means, width,
           color=[topology_color(l) for l in labels], label="mean")
    ax.bar([x + width / 2 for x in xs], p99s, width,
           color=[topology_color(l) for l in labels], alpha=0.45,
           hatch="//", label="p99")
    style_axes(ax)
    ax.set_xticks(list(xs))
    ax.set_xticklabels(labels, fontsize=8, color=TEXT_SECONDARY,
                       rotation=15, ha="right")
    ax.set_ylabel("FCT (us)", color=TEXT_SECONDARY, fontsize=10)
    ax.set_ylim(bottom=0)
    ax.set_title("FCT by topology (mean solid, p99 hatched)",
                 color=TEXT_PRIMARY, fontsize=11, loc="left")
    ax.legend(frameon=False, fontsize=9, labelcolor=TEXT_SECONDARY)
    finish(plt, fig, out)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("figure", choices=["fig6", "fig7", "topology"],
                        help="which figure to render")
    parser.add_argument("csv", help="merged sweep CSV from numfabric_run")
    parser.add_argument("-o", "--out", default=None,
                        help="output image (default <figure>.png)")
    parser.add_argument("--check", action="store_true",
                        help="parse and validate only; no matplotlib needed")
    args = parser.parse_args()
    out = args.out or f"{args.figure}.png"
    if args.figure == "fig6":
        plot_fig6(args.csv, out, args.check)
    elif args.figure == "fig7":
        plot_fig7(args.csv, out, args.check)
    else:
        plot_topology(args.csv, out, args.check)


if __name__ == "__main__":
    main()
