#!/usr/bin/env python3
"""Record bench/micro_core results into the checked-in BENCH_core.json.

Runs the micro_core binary several times (separate processes) and records
each benchmark's minimum cpu time — the noise-robust estimator of what the
code can do on an otherwise idle machine; medians of a single process run
drift with background load:

    scripts/bench_record.py <micro_core-binary> <BENCH_core.json>
    scripts/bench_record.py <micro_core-binary> <BENCH_core.json> --update-before

By default only the "after_ns" numbers (the current implementation) are
rewritten; "before_ns" (the tracked pre-refactor baseline a change is judged
against) is only touched with --update-before, which is how a future
substrate rework re-baselines: first --update-before on the old tree, then a
plain run on the new one.  For a fair before/after pair, record both on the
same machine in the same sitting.

CMake exposes this as the `bench_record` target.
"""
import argparse
import json
import subprocess
import sys
from datetime import date


def run_benchmarks(binary, min_time, runs, bench_filter=None):
    mins = {}
    for _ in range(runs):
        cmd = [
            binary,
            "--benchmark_format=json",
            f"--benchmark_min_time={min_time}",
        ]
        if bench_filter:
            cmd.append(f"--benchmark_filter={bench_filter}")
        out = subprocess.run(cmd, check=True, capture_output=True, text=True)
        for bench in json.loads(out.stdout)["benchmarks"]:
            name = bench["run_name"]
            record = mins.get(name)
            if record is None or bench["cpu_time"] < record["cpu_ns"]:
                mins[name] = {
                    "cpu_ns": round(bench["cpu_time"], 1),
                    "items_per_second": round(bench.get("items_per_second", 0.0), 3),
                }
    return mins


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the micro_core benchmark binary")
    parser.add_argument("baseline", help="path to BENCH_core.json")
    parser.add_argument(
        "--update-before",
        action="store_true",
        help="record into before_ns (re-baseline) instead of after_ns",
    )
    parser.add_argument("--min-time", default="0.25")
    parser.add_argument("--runs", type=int, default=5,
                        help="process repetitions; the minimum is recorded")
    parser.add_argument("--filter", default=None,
                        help="--benchmark_filter regex; only matching "
                             "benchmarks are run and re-recorded")
    args = parser.parse_args()

    try:
        with open(args.baseline) as fp:
            baseline = json.load(fp)
    except FileNotFoundError:
        baseline = {"benchmarks": {}}

    field = "before_ns" if args.update_before else "after_ns"
    mins = run_benchmarks(args.binary, args.min_time, args.runs, args.filter)
    benches = baseline.setdefault("benchmarks", {})
    for name, result in sorted(mins.items()):
        entry = benches.setdefault(name, {})
        entry[field] = result["cpu_ns"]
        entry["items_per_second"] = result["items_per_second"]
        if entry.get("before_ns") and entry.get("after_ns"):
            entry["speedup"] = round(entry["before_ns"] / entry["after_ns"], 2)
    baseline["unit"] = "ns (cpu time)"
    baseline["method"] = (
        f"per-benchmark minimum cpu time over {args.runs} process runs of "
        f"bench/micro_core (--benchmark_min_time={args.min_time}) on an "
        "otherwise idle machine; record before/after in the same sitting "
        "(scripts/bench_record.py)"
    )
    baseline["recorded"] = str(date.today())

    with open(args.baseline, "w") as fp:
        json.dump(baseline, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"recorded {field} for {len(mins)} benchmarks into {args.baseline}")


if __name__ == "__main__":
    sys.exit(main())
