#!/usr/bin/env python3
"""Perf-smoke gate: fail if micro_core regresses against BENCH_core.json.

Runs the benchmark binary once and compares each benchmark's cpu time to the
recorded after_ns baseline; anything slower than --factor (default 2.0 —
deliberately tolerant, CI runners are noisy) fails the check.  Benchmarks
that record a throughput (items_per_second, e.g. solver sweeps/sec or
links-swept/sec) are gated on it too: fresh throughput below
recorded / factor fails.  Entries recorded with items_per_second == 0
predate throughput reporting and are skipped for that half of the gate:

    scripts/bench_check.py <micro_core-binary> <BENCH_core.json> \
        [--factor 2.0] [--results results.json]

Benchmarks present in the binary but not in the baseline are reported and
skipped (record them with scripts/bench_record.py).  CMake exposes this as
the `bench_check` target; CI runs it in the perf-smoke job and uploads
--results as an artifact.
"""
import argparse
import json
import subprocess
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="path to the micro_core benchmark binary")
    parser.add_argument("baseline", help="path to BENCH_core.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="fail when cpu time exceeds factor * after_ns")
    parser.add_argument("--min-time", default="0.1")
    parser.add_argument("--results", help="write the fresh run's JSON here")
    parser.add_argument(
        "--anchor",
        help="benchmark name used to normalize machine speed: every ratio is "
        "divided by this benchmark's fresh/baseline ratio, so a uniformly "
        "slower machine (CI runner vs the recording host) does not trip the "
        "gate.  Pick one the change under test does not touch "
        "(e.g. BM_NumSolver/50).")
    args = parser.parse_args()

    with open(args.baseline) as fp:
        baseline = json.load(fp)["benchmarks"]

    cmd = [
        args.binary,
        "--benchmark_format=json",
        f"--benchmark_min_time={args.min_time}",
    ]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True)
    if args.results:
        with open(args.results, "w") as fp:
            fp.write(out.stdout)
    report = json.loads(out.stdout)

    fresh_times = {b["run_name"]: b["cpu_time"] for b in report["benchmarks"]}
    fresh_items = {b["run_name"]: b.get("items_per_second", 0.0)
                   for b in report["benchmarks"]}
    scale = 1.0
    if args.anchor:
        anchor_recorded = baseline.get(args.anchor, {}).get("after_ns")
        anchor_fresh = fresh_times.get(args.anchor)
        if not anchor_recorded or not anchor_fresh:
            print(f"anchor {args.anchor} missing from baseline or fresh run",
                  file=sys.stderr)
            return 1
        scale = anchor_fresh / anchor_recorded
        print(f"machine-speed scale via {args.anchor}: {scale:.2f}x\n")

    failures = []
    print(f"{'benchmark':35s} {'baseline':>12s} {'fresh':>12s} {'ratio':>7s}")
    for name, fresh in fresh_times.items():
        recorded = baseline.get(name, {}).get("after_ns")
        if recorded is None:
            print(f"{name:35s} {'(unrecorded)':>12s} {fresh:12.1f}")
            continue
        ratio = fresh / recorded / scale
        verdict = "FAIL" if ratio > args.factor else "ok"
        print(f"{name:35s} {recorded:12.1f} {fresh:12.1f} {ratio:6.2f}x {verdict}")
        if ratio > args.factor:
            failures.append(name)
        # Throughput half of the gate: fresh items/sec (machine-normalized)
        # must stay within factor of the recorded rate.
        recorded_ips = baseline.get(name, {}).get("items_per_second") or 0
        ips = fresh_items.get(name) or 0
        if recorded_ips and ips:
            ips_ratio = recorded_ips / ips / scale
            if ips_ratio > args.factor:
                print(f"{name:35s} throughput {ips:.0f}/s vs recorded "
                      f"{recorded_ips}/s ({ips_ratio:.2f}x slow) FAIL")
                failures.append(f"{name} (items/sec)")

    if failures:
        print(f"\nperf regression (> {args.factor}x) in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nall benchmarks within {args.factor}x of the recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
