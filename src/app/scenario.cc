#include "app/scenario.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace numfabric::app {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty()) {
    throw std::invalid_argument("scenario with empty name");
  }
  if (!scenario.run) {
    throw std::invalid_argument("scenario " + scenario.name +
                                ": missing run function");
  }
  const auto [it, inserted] =
      scenarios_.emplace(scenario.name, std::move(scenario));
  if (!inserted) {
    throw std::invalid_argument("duplicate scenario name: " + it->first);
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = scenarios_.find(name);
  return it == scenarios_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& [name, scenario] : scenarios_) out.push_back(&scenario);
  return out;  // map iteration order is already name order
}

transport::Scheme parse_scheme(const std::string& name) {
  std::string token = name;
  std::transform(token.begin(), token.end(), token.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (token == "numfabric") return transport::Scheme::kNumFabric;
  if (token == "dctcp") return transport::Scheme::kDctcp;
  if (token == "pfabric") return transport::Scheme::kPFabric;
  if (token == "rcp" || token == "rcp*" || token == "rcpstar") {
    return transport::Scheme::kRcpStar;
  }
  if (token == "dgd") return transport::Scheme::kDgd;
  throw std::invalid_argument(
      "unknown transport '" + name +
      "' (expected numfabric, dctcp, pfabric, rcp or dgd)");
}

std::string scheme_token(transport::Scheme scheme) {
  switch (scheme) {
    case transport::Scheme::kNumFabric: return "numfabric";
    case transport::Scheme::kDgd: return "dgd";
    case transport::Scheme::kRcpStar: return "rcp";
    case transport::Scheme::kDctcp: return "dctcp";
    case transport::Scheme::kPFabric: return "pfabric";
  }
  return "?";
}

}  // namespace numfabric::app
