// The numfabric_run command-line driver, reusable from the bench figure
// wrappers (they synthesize an argument vector and call run_cli).
//
//   numfabric_run --list
//   numfabric_run --describe=incast
//   numfabric_run --scenario=incast --transport=numfabric fanin=32
//   numfabric_run --scenario=convergence transports=numfabric,dgd,rcp \
//                 --format=json --output=conv.json
//   numfabric_run --scenario=permutation --config=sweep.conf
//
// Global flags: --scenario, --transport (default numfabric), --config,
// --format=csv|json (default csv), --output=FILE (default stdout), --list,
// --describe, --help, --full (same as NUMFABRIC_FULL=1).  Everything else
// must be a key=value parameter declared by the selected scenario.
#pragma once

#include <string>
#include <vector>

namespace numfabric::app {

/// Runs the CLI; returns the process exit code.  Registers the built-in
/// scenarios, so callers don't have to.
int run_cli(const std::vector<std::string>& args);
int run_cli(int argc, char** argv);

}  // namespace numfabric::app
