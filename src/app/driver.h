// The numfabric_run command-line driver, reusable from the bench figure
// wrappers (they synthesize an argument vector and call run_cli).
//
//   numfabric_run --list
//   numfabric_run --describe=incast
//   numfabric_run --scenario=incast --transport=numfabric fanin=32
//   numfabric_run --scenario=convergence transports=numfabric,dgd,rcp \
//                 --format=json --output=conv.json
//   numfabric_run --scenario=permutation --config=sweep.conf
//   numfabric_run --scenario=websearch-fct --sweep load=0.2,0.4,0.6,0.8 \
//                 --jobs=4
//
// Global flags: --scenario, --transport (default numfabric), --config,
// --format=csv|json (default csv), --output=FILE (default stdout), --list,
// --describe, --help, --full (same as NUMFABRIC_FULL=1).  Everything else
// must be a key=value parameter declared by the selected scenario.
//
// Sweep mode: each `--sweep key=a,b,c` / `--sweep key=lo:hi:step` flag
// sweeps one declared parameter; multiple flags form a cross-product grid.
// The runs execute on `--jobs=N` threads (0 = all cores) and merge into one
// table set with the swept keys as leading columns (see app/sweep.h).
// `--vary-seed` gives run i the seed <base seed> + i.
#pragma once

#include <string>
#include <vector>

namespace numfabric::app {

/// Runs the CLI; returns the process exit code.  Registers the built-in
/// scenarios, so callers don't have to.
int run_cli(const std::vector<std::string>& args);
int run_cli(int argc, char** argv);

}  // namespace numfabric::app
