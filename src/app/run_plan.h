// Sweep grid expansion: `--sweep key=a,b,c` / `--sweep key=lo:hi:step`
// tokens parse into SweepSpecs, and a list of specs expands into a RunPlan —
// the cross-product of swept values, one RunSpec per independent run.
//
// The plan is pure data: it fixes the run order (first spec outermost) and
// the per-run parameter assignments before anything executes, so the sweep
// engine can fan runs out across threads and still merge results in a
// deterministic, thread-count-independent order.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace numfabric::app {

/// One swept parameter and its expanded value list, in declaration order.
struct SweepSpec {
  std::string key;
  std::vector<std::string> values;
};

/// Parses a --sweep argument: `key=a,b,c` (comma list, values kept verbatim)
/// or `key=lo:hi:step` (inclusive numeric range, step > 0; a value is a
/// range only when every ':'-part is numeric).  Tagged list values carry
/// their own commas: after an item containing ':', purely numeric items
/// extend it instead of starting a new one, so
/// `topology=4x2x2, jellyfish:8,3,16` is two values.  Throws
/// std::invalid_argument on a missing '=', empty key, empty value list or a
/// malformed range.
SweepSpec parse_sweep_spec(const std::string& token);

/// One run of the plan: its index (row order in merged tables) and the
/// swept key=value assignments, in spec order.
struct RunSpec {
  int index = 0;
  std::vector<std::pair<std::string, std::string>> assignments;
};

class RunPlan {
 public:
  /// Cross-product expansion; the first spec varies slowest.  Throws
  /// std::invalid_argument on duplicate keys or an empty spec list entry.
  static RunPlan expand(const std::vector<SweepSpec>& specs);

  /// Swept keys in declaration order (the merged tables' leading columns).
  const std::vector<std::string>& keys() const { return keys_; }
  const std::vector<RunSpec>& runs() const { return runs_; }
  bool empty() const { return runs_.empty(); }
  std::size_t size() const { return runs_.size(); }

 private:
  std::vector<std::string> keys_;
  std::vector<RunSpec> runs_;
};

}  // namespace numfabric::app
