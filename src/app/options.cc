#include "app/options.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/parse.h"

namespace numfabric::app {
namespace {

using util::trim;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

Options Options::from_tokens(const std::vector<std::string>& tokens) {
  Options options;
  for (const std::string& raw : tokens) {
    std::string token = raw;
    if (token.rfind("--", 0) == 0) token = token.substr(2);
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      if (token.empty()) {
        throw std::invalid_argument("empty option token: '" + raw + "'");
      }
      options.set(token, "true");
      continue;
    }
    const std::string key = trim(token.substr(0, eq));
    if (key.empty()) {
      throw std::invalid_argument("option with empty key: '" + raw + "'");
    }
    options.set(key, trim(token.substr(eq + 1)));
  }
  return options;
}

Options Options::from_config_text(const std::string& text) {
  Options options;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("config line " + std::to_string(line_number) +
                                  ": expected key = value, got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      throw std::invalid_argument("config line " + std::to_string(line_number) +
                                  ": empty key");
    }
    options.set(key, trim(line.substr(eq + 1)));
  }
  return options;
}

Options Options::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read config file: " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return from_config_text(text.str());
}

void Options::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Options::has(const std::string& key) const {
  return values_.count(key) > 0;
}

void Options::merge(const Options& other) {
  for (const auto& [key, value] : other.values_) values_[key] = value;
}

std::string Options::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto value = util::parse_double(it->second);
  if (!value) {
    throw std::invalid_argument("option " + key + ": '" + it->second +
                                "' is not a number");
  }
  return *value;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const auto value = util::parse_int(it->second);
  if (!value) {
    throw std::invalid_argument("option " + key + ": '" + it->second +
                                "' is not an integer");
  }
  return *value;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string value = lower(it->second);
  if (value == "true" || value == "1" || value == "yes" || value == "on") {
    return true;
  }
  if (value == "false" || value == "0" || value == "no" || value == "off") {
    return false;
  }
  throw std::invalid_argument("option " + key + ": '" + it->second +
                              "' is not a boolean");
}

std::vector<std::string> Options::get_list(
    const std::string& key, const std::vector<std::string>& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<std::string> items;
  std::istringstream in(it->second);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

std::vector<double> Options::get_double_list(
    const std::string& key, const std::vector<double>& fallback) const {
  if (!has(key)) return fallback;
  std::vector<double> out;
  for (const std::string& item : get_list(key, {})) {
    const auto value = util::parse_double(item);
    if (!value) {
      throw std::invalid_argument("option " + key + ": '" + item +
                                  "' is not a number");
    }
    out.push_back(*value);
  }
  return out;
}

std::vector<int> Options::get_int_list(const std::string& key,
                                       const std::vector<int>& fallback) const {
  if (!has(key)) return fallback;
  std::vector<int> out;
  for (const std::string& item : get_list(key, {})) {
    const auto value = util::parse_int(item);
    if (!value) {
      throw std::invalid_argument("option " + key + ": '" + item +
                                  "' is not an integer");
    }
    out.push_back(static_cast<int>(*value));
  }
  return out;
}

std::string Options::to_config_text() const {
  std::ostringstream out;
  for (const auto& [key, value] : values_) out << key << " = " << value << "\n";
  return out.str();
}

}  // namespace numfabric::app
