#include "app/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace numfabric::app {
namespace {

std::string format_number(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Integers print without a decimal point; everything else with enough
  // digits to round-trip typical metric magnitudes.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

std::string escape_json(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricValue::csv() const {
  if (!is_text_) return format_number(number_);
  std::string out = text_;
  std::replace(out.begin(), out.end(), ',', ';');
  return out;
}

std::string MetricValue::json() const {
  if (is_text_) return "\"" + escape_json(text_) + "\"";
  if (std::isnan(number_) || std::isinf(number_)) {
    return "\"" + format_number(number_) + "\"";  // JSON has no nan/inf
  }
  return format_number(number_);
}

MetricTable::MetricTable(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("metric table " + name_ + ": no columns");
  }
}

void MetricTable::add_row(std::vector<MetricValue> row) {
  if (row.size() != columns_.size()) {
    throw std::invalid_argument(
        "metric table " + name_ + ": row has " + std::to_string(row.size()) +
        " cells, expected " + std::to_string(columns_.size()));
  }
  rows_.push_back(std::move(row));
}

MetricTable& MetricWriter::table(const std::string& name,
                                 const std::vector<std::string>& columns) {
  for (const auto& existing : tables_) {
    if (existing->name() == name) {
      if (existing->columns() != columns) {
        throw std::invalid_argument("metric table " + name +
                                    ": redefined with different columns");
      }
      return *existing;
    }
  }
  tables_.push_back(std::make_unique<MetricTable>(name, columns));
  return *tables_.back();
}

void MetricWriter::scalar(const std::string& name, MetricValue value) {
  scalars_.emplace_back(name, std::move(value));
}

void MetricWriter::write_csv(std::ostream& out) const {
  for (const auto& [name, value] : scalars_) {
    out << "# scalar," << name << "," << value.csv() << "\n";
  }
  for (const auto& table : tables_) {
    out << "# table," << table->name() << "\n";
    for (std::size_t c = 0; c < table->columns().size(); ++c) {
      out << (c ? "," : "") << table->columns()[c];
    }
    out << "\n";
    for (const auto& row : table->rows()) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        out << (c ? "," : "") << row[c].csv();
      }
      out << "\n";
    }
  }
}

void MetricWriter::write_json(std::ostream& out) const {
  out << "{\n  \"scalars\": {";
  for (std::size_t i = 0; i < scalars_.size(); ++i) {
    out << (i ? ", " : "") << "\"" << escape_json(scalars_[i].first)
        << "\": " << scalars_[i].second.json();
  }
  out << "},\n  \"tables\": [";
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const MetricTable& table = *tables_[t];
    out << (t ? ",\n" : "\n") << "    {\"name\": \""
        << escape_json(table.name()) << "\", \"columns\": [";
    for (std::size_t c = 0; c < table.columns().size(); ++c) {
      out << (c ? ", " : "") << "\"" << escape_json(table.columns()[c]) << "\"";
    }
    out << "], \"rows\": [";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      out << (r ? ", " : "") << "[";
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        out << (c ? ", " : "") << row[c].json();
      }
      out << "]";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace numfabric::app
