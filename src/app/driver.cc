#include "app/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>

#include "app/perf.h"
#include "app/run_plan.h"
#include "app/scenario.h"
#include "app/sweep.h"
#include "app/worker_pool.h"
#include "util/parse.h"

namespace numfabric::app {
namespace {

void print_usage(std::FILE* out) {
  std::fputs(
      "usage: numfabric_run --scenario=<name> [--transport=<scheme>] "
      "[key=value ...]\n"
      "       numfabric_run --scenario=<name> --sweep key=a,b,c "
      "[--sweep key=lo:hi:step ...] [--jobs=N]\n"
      "       numfabric_run --list | --describe=<name> | --help\n"
      "\n"
      "global flags:\n"
      "  --scenario=<name>     scenario to run (see --list)\n"
      "  --transport=<scheme>  numfabric | dctcp | pfabric | rcp | dgd "
      "(default numfabric)\n"
      "  --config=<file>       key = value lines layered under CLI params\n"
      "  --format=csv|json     metric output format (default csv)\n"
      "  --output=<file>       write metrics here instead of stdout\n"
      "  --sweep key=<values>  sweep a declared parameter over a comma list\n"
      "                        (a,b,c) or inclusive range (lo:hi:step);\n"
      "                        repeat for a cross-product grid\n"
      "  --jobs=<N>            parallel sweep runs (default 1; 0 = all cores)\n"
      "  --solver-threads=<N>  NUM oracle solve threads (default 1; 0 = all\n"
      "                        cores; results are bit-identical for any N)\n"
      "  --control-threads=<N> control-plane sweep threads (default 1; 0 = all\n"
      "                        cores; results are bit-identical for any N)\n"
      "  --shards=<N>          parallel engine shards for sharded-capable\n"
      "                        scenarios (default 1 = serial; 0 = one shard\n"
      "                        per leaf, capped at cores; output is\n"
      "                        bit-identical for any N)\n"
      "  --solver-stats        add per-run oracle cost scalars to sweep\n"
      "                        output (solver_solves/sweeps/relaxations/\n"
      "                        wall_us)\n"
      "  --vary-seed           per-run seed = base seed + run index\n"
      "  --full                paper-scale runs (same as NUMFABRIC_FULL=1)\n"
      "  --list                list registered scenarios (the fidelity column\n"
      "                        shows which take fidelity=flow, the shards\n"
      "                        column which take --shards=N)\n"
      "  --describe=<name>     show a scenario's parameter schema\n",
      out);
}

/// Which substrates a scenario runs on, read off its declared schema: no
/// `fidelity` knob means packet-only, a knob defaulting to "flow" means the
/// packet substrate cannot express it (mega-fct), anything else does both.
const char* fidelity_support(const Scenario& scenario) {
  for (const ParamSpec& param : scenario.params) {
    if (param.key == "fidelity") {
      return param.default_value == "flow" ? "flow" : "packet|flow";
    }
  }
  return "packet";
}

void print_list() {
  std::printf("%-18s %-10s %-11s %-6s %s\n", "scenario", "figure", "fidelity",
              "shards", "description");
  for (const Scenario* scenario : ScenarioRegistry::global().list()) {
    std::printf("%-18s %-10s %-11s %-6s %s\n", scenario->name.c_str(),
                scenario->figure.empty() ? "-" : scenario->figure.c_str(),
                fidelity_support(*scenario),
                scenario->supports_shards ? "yes" : "-",
                scenario->description.c_str());
  }
}

int print_describe(const std::string& name) {
  const Scenario* scenario = ScenarioRegistry::global().find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }
  std::printf("%s — %s\n", scenario->name.c_str(),
              scenario->description.c_str());
  if (!scenario->figure.empty()) {
    std::printf("reproduces: %s\n", scenario->figure.c_str());
  }
  std::printf("\n%-20s %-16s %s\n", "parameter", "default", "help");
  for (const ParamSpec& param : scenario->params) {
    std::printf("%-20s %-16s %s\n", param.key.c_str(),
                param.default_value.c_str(), param.help.c_str());
  }
  return 0;
}

bool env_full_scale() {
  const char* env = std::getenv("NUMFABRIC_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

int run_cli(const std::vector<std::string>& args) {
  register_builtin_scenarios();

  std::string scenario_name, config_path, format = "csv", output_path;
  std::string transport = "numfabric";
  bool full = env_full_scale();
  bool vary_seed = false;
  int jobs = 1;
  int solver_threads = 1;
  int control_threads = 1;
  int shards = 1;
  bool solver_stats = false;
  std::vector<std::string> sweep_tokens;
  std::vector<std::string> param_tokens;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--list") {
      print_list();
      return 0;
    } else if (arg.rfind("--describe=", 0) == 0) {
      return print_describe(value_of("--describe="));
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario_name = value_of("--scenario=");
    } else if (arg.rfind("--transport=", 0) == 0) {
      transport = value_of("--transport=");
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = value_of("--config=");
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value_of("--format=");
    } else if (arg.rfind("--output=", 0) == 0) {
      output_path = value_of("--output=");
    } else if (arg.rfind("--sweep=", 0) == 0) {
      sweep_tokens.push_back(value_of("--sweep="));
    } else if (arg == "--sweep") {
      if (i + 1 >= args.size()) {
        std::fputs("--sweep needs a key=values argument\n", stderr);
        return 2;
      }
      sweep_tokens.push_back(args[++i]);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      const auto value = util::parse_int(value_of("--jobs="));
      if (!value || *value < 0 || *value > 4096) {
        std::fprintf(stderr, "bad --jobs value '%s' (expected 0..4096)\n",
                     arg.c_str());
        return 2;
      }
      jobs = static_cast<int>(*value);
    } else if (arg.rfind("--solver-threads=", 0) == 0) {
      const auto value = util::parse_int(value_of("--solver-threads="));
      if (!value || *value < 0 || *value > 4096) {
        std::fprintf(stderr,
                     "bad --solver-threads value '%s' (expected 0..4096)\n",
                     arg.c_str());
        return 2;
      }
      solver_threads = static_cast<int>(*value);
    } else if (arg.rfind("--control-threads=", 0) == 0) {
      const auto value = util::parse_int(value_of("--control-threads="));
      if (!value || *value < 0 || *value > 4096) {
        std::fprintf(stderr,
                     "bad --control-threads value '%s' (expected 0..4096)\n",
                     arg.c_str());
        return 2;
      }
      control_threads = static_cast<int>(*value);
    } else if (arg.rfind("--shards=", 0) == 0) {
      const auto value = util::parse_int(value_of("--shards="));
      if (!value || *value < 0 || *value > 4096) {
        std::fprintf(stderr, "bad --shards value '%s' (expected 0..4096)\n",
                     arg.c_str());
        return 2;
      }
      shards = static_cast<int>(*value);
    } else if (arg == "--solver-stats") {
      solver_stats = true;
    } else if (arg == "--vary-seed") {
      vary_seed = true;
    } else if (arg == "--full") {
      full = true;
    } else {
      param_tokens.push_back(arg);
    }
  }

  if (format != "csv" && format != "json") {
    std::fprintf(stderr, "unknown --format '%s' (expected csv or json)\n",
                 format.c_str());
    return 2;
  }
  if (scenario_name.empty()) {
    print_usage(stderr);
    return 2;
  }
  const Scenario* scenario = ScenarioRegistry::global().find(scenario_name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenario_name.c_str());
    return 2;
  }
  if (shards != 1 && !scenario->supports_shards) {
    std::fprintf(stderr,
                 "scenario %s does not run on the sharded engine; drop "
                 "--shards (sharded-capable: see README)\n",
                 scenario_name.c_str());
    return 2;
  }
  // --shards threads inside --jobs workers multiply; oversubscribing a small
  // machine silently serializes both, so say so up front.  shards == 1 is
  // the serial engine — plain --jobs oversubscription stays silent, as ever.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned effective_shards =
      shards == 0 ? hw : static_cast<unsigned>(shards);
  const unsigned effective_jobs =
      static_cast<unsigned>(WorkerPool::resolve_jobs(jobs));
  if (effective_shards > 1 && effective_jobs * effective_shards > hw) {
    std::fprintf(stderr,
                 "warning: --jobs=%u x --shards=%u worker threads "
                 "oversubscribe %u hardware threads; results stay "
                 "bit-identical but wall time will suffer\n",
                 effective_jobs, effective_shards, hw);
  }

  try {
    Options options;
    if (!config_path.empty()) options.merge(Options::from_file(config_path));
    options.merge(Options::from_tokens(param_tokens));

    // Reject keys the scenario does not declare: typos fail loudly instead
    // of silently running defaults.
    std::set<std::string> declared;
    for (const ParamSpec& param : scenario->params) declared.insert(param.key);
    for (const auto& [key, value] : options.values()) {
      if (declared.count(key) == 0) {
        // `fidelity` gets a pointed message: the knob exists, this scenario
        // just has no flow-fluid model (a generic "unknown parameter" would
        // read like a typo).
        if (key == "fidelity") {
          std::fprintf(stderr,
                       "scenario %s is packet-only: it has no flow-fluid "
                       "model, so fidelity= does not apply "
                       "(--list shows each scenario's fidelity support)\n",
                       scenario->name.c_str());
          return 2;
        }
        std::fprintf(stderr,
                     "scenario %s does not take parameter '%s' "
                     "(see --describe=%s)\n",
                     scenario->name.c_str(), key.c_str(),
                     scenario->name.c_str());
        return 2;
      }
    }

    // Sweep flags are usage errors when malformed, so validate them (and
    // expand the grid) before anything runs.
    RunPlan plan;
    if (!sweep_tokens.empty()) {
      std::vector<SweepSpec> specs;
      try {
        for (const std::string& token : sweep_tokens) {
          specs.push_back(parse_sweep_spec(token));
        }
        plan = RunPlan::expand(specs);
      } catch (const std::exception& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return 2;
      }
      for (const SweepSpec& spec : specs) {
        if (declared.count(spec.key) == 0) {
          if (spec.key == "fidelity") {
            std::fprintf(stderr,
                         "scenario %s is packet-only: it has no flow-fluid "
                         "model, so fidelity= cannot be swept "
                         "(--list shows each scenario's fidelity support)\n",
                         scenario->name.c_str());
            return 2;
          }
          std::fprintf(stderr,
                       "scenario %s does not take swept parameter '%s' "
                       "(see --describe=%s)\n",
                       scenario->name.c_str(), spec.key.c_str(),
                       scenario->name.c_str());
          return 2;
        }
        if (options.has(spec.key)) {
          std::fprintf(stderr,
                       "parameter '%s' is both fixed (%s=%s) and swept\n",
                       spec.key.c_str(), spec.key.c_str(),
                       options.get(spec.key, "").c_str());
          return 2;
        }
        if (vary_seed && spec.key == "seed") {
          std::fputs(
              "--vary-seed would override the swept seed values; sweep "
              "seed= or use --vary-seed, not both\n",
              stderr);
          return 2;
        }
      }
    } else if (vary_seed) {
      std::fputs("--vary-seed only applies to --sweep runs\n", stderr);
      return 2;
    }

    MetricWriter metrics;
    metrics.scalar("scenario", scenario->name);
    int exit_code = 0;
    if (sweep_tokens.empty()) {
      RunContext ctx{options, parse_scheme(transport), metrics, full,
                     WorkerPool::resolve_jobs(solver_threads),
                     WorkerPool::resolve_jobs(control_threads), shards};
      const PerfSnapshot perf_snapshot;
      const auto wall_start = std::chrono::steady_clock::now();
      scenario->run(ctx);
      const double wall_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - wall_start)
                                 .count();
      const sim::SubstrateStats delta = perf_snapshot.delta();
      record_perf(metrics, delta);
      metrics.scalar("wall_ms", wall_ms);
      metrics.scalar("events_per_sec",
                     wall_ms > 0 ? static_cast<double>(delta.events_fired) *
                                       1000.0 / wall_ms
                                 : 0.0);
      // Oracle cost for this run point (satellite of the perf table; kept
      // out of record_perf so the scenario golden hashes stay stable).
      metrics.scalar("solver_threads", ctx.solver_threads);
      metrics.scalar("solver_solves", delta.solver_solves);
      metrics.scalar("solver_sweeps", delta.solver_sweeps);
      metrics.scalar("solver_relaxations", delta.solver_relaxations);
      metrics.scalar("solver_wall_us",
                     static_cast<double>(delta.solver_wall_ns) / 1000.0);
    } else {
      SweepRequest request;
      request.scenario = scenario;
      request.base_options = options;
      request.plan = std::move(plan);
      request.scheme = parse_scheme(transport);
      request.full_scale = full;
      request.jobs = WorkerPool::resolve_jobs(jobs);
      request.solver_threads = WorkerPool::resolve_jobs(solver_threads);
      request.control_threads = WorkerPool::resolve_jobs(control_threads);
      request.shards = shards;
      request.report_solver_stats = solver_stats;
      request.vary_seed = vary_seed;
      const SweepResult result = run_sweep(request, metrics);
      for (const SweepRunStatus& status : result.statuses) {
        if (!status.ok) {
          std::fprintf(stderr, "sweep run %d failed: %s\n", status.index,
                       status.error.c_str());
        }
      }
      if (result.failed > 0) exit_code = 1;
    }

    std::ofstream file;
    if (!output_path.empty()) {
      file.open(output_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
        return 1;
      }
    }
    std::ostream& out = output_path.empty() ? std::cout : file;
    if (format == "json") {
      metrics.write_json(out);
    } else {
      metrics.write_csv(out);
    }
    return exit_code;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

int run_cli(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_cli(args);
}

}  // namespace numfabric::app
