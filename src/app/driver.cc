#include "app/driver.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <stdexcept>

#include "app/scenario.h"

namespace numfabric::app {
namespace {

void print_usage(std::FILE* out) {
  std::fputs(
      "usage: numfabric_run --scenario=<name> [--transport=<scheme>] "
      "[key=value ...]\n"
      "       numfabric_run --list | --describe=<name> | --help\n"
      "\n"
      "global flags:\n"
      "  --scenario=<name>     scenario to run (see --list)\n"
      "  --transport=<scheme>  numfabric | dctcp | pfabric | rcp | dgd "
      "(default numfabric)\n"
      "  --config=<file>       key = value lines layered under CLI params\n"
      "  --format=csv|json     metric output format (default csv)\n"
      "  --output=<file>       write metrics here instead of stdout\n"
      "  --full                paper-scale runs (same as NUMFABRIC_FULL=1)\n"
      "  --list                list registered scenarios\n"
      "  --describe=<name>     show a scenario's parameter schema\n",
      out);
}

void print_list() {
  std::printf("%-18s %-10s %s\n", "scenario", "figure", "description");
  for (const Scenario* scenario : ScenarioRegistry::global().list()) {
    std::printf("%-18s %-10s %s\n", scenario->name.c_str(),
                scenario->figure.empty() ? "-" : scenario->figure.c_str(),
                scenario->description.c_str());
  }
}

int print_describe(const std::string& name) {
  const Scenario* scenario = ScenarioRegistry::global().find(name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }
  std::printf("%s — %s\n", scenario->name.c_str(),
              scenario->description.c_str());
  if (!scenario->figure.empty()) {
    std::printf("reproduces: %s\n", scenario->figure.c_str());
  }
  std::printf("\n%-20s %-16s %s\n", "parameter", "default", "help");
  for (const ParamSpec& param : scenario->params) {
    std::printf("%-20s %-16s %s\n", param.key.c_str(),
                param.default_value.c_str(), param.help.c_str());
  }
  return 0;
}

bool env_full_scale() {
  const char* env = std::getenv("NUMFABRIC_FULL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

}  // namespace

int run_cli(const std::vector<std::string>& args) {
  register_builtin_scenarios();

  std::string scenario_name, config_path, format = "csv", output_path;
  std::string transport = "numfabric";
  bool full = env_full_scale();
  std::vector<std::string> param_tokens;

  for (const std::string& arg : args) {
    const auto value_of = [&arg](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--list") {
      print_list();
      return 0;
    } else if (arg.rfind("--describe=", 0) == 0) {
      return print_describe(value_of("--describe="));
    } else if (arg.rfind("--scenario=", 0) == 0) {
      scenario_name = value_of("--scenario=");
    } else if (arg.rfind("--transport=", 0) == 0) {
      transport = value_of("--transport=");
    } else if (arg.rfind("--config=", 0) == 0) {
      config_path = value_of("--config=");
    } else if (arg.rfind("--format=", 0) == 0) {
      format = value_of("--format=");
    } else if (arg.rfind("--output=", 0) == 0) {
      output_path = value_of("--output=");
    } else if (arg == "--full") {
      full = true;
    } else {
      param_tokens.push_back(arg);
    }
  }

  if (format != "csv" && format != "json") {
    std::fprintf(stderr, "unknown --format '%s' (expected csv or json)\n",
                 format.c_str());
    return 2;
  }
  if (scenario_name.empty()) {
    print_usage(stderr);
    return 2;
  }
  const Scenario* scenario = ScenarioRegistry::global().find(scenario_name);
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenario_name.c_str());
    return 2;
  }

  try {
    Options options;
    if (!config_path.empty()) options.merge(Options::from_file(config_path));
    options.merge(Options::from_tokens(param_tokens));

    // Reject keys the scenario does not declare: typos fail loudly instead
    // of silently running defaults.
    std::set<std::string> declared;
    for (const ParamSpec& param : scenario->params) declared.insert(param.key);
    for (const auto& [key, value] : options.values()) {
      if (declared.count(key) == 0) {
        std::fprintf(stderr,
                     "scenario %s does not take parameter '%s' "
                     "(see --describe=%s)\n",
                     scenario->name.c_str(), key.c_str(),
                     scenario->name.c_str());
        return 2;
      }
    }

    MetricWriter metrics;
    RunContext ctx{options, parse_scheme(transport), metrics, full};
    metrics.scalar("scenario", scenario->name);
    scenario->run(ctx);

    std::ofstream file;
    if (!output_path.empty()) {
      file.open(output_path);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n", output_path.c_str());
        return 1;
      }
    }
    std::ostream& out = output_path.empty() ? std::cout : file;
    if (format == "json") {
      metrics.write_json(out);
    } else {
      metrics.write_csv(out);
    }
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}

int run_cli(int argc, char** argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return run_cli(args);
}

}  // namespace numfabric::app
