// Scenario registry: the seam between experiment code and every driver.
//
// A Scenario bundles a name, a one-line description, a declared parameter
// schema and a run function.  Scenarios register into a ScenarioRegistry
// (usually the process-global one) and are then reachable uniformly from the
// numfabric_run CLI, the bench/fig* figure wrappers and the test suite:
//
//   app::register_builtin_scenarios();
//   const app::Scenario* s = app::ScenarioRegistry::global().find("incast");
//   app::MetricWriter metrics;
//   app::RunContext ctx{resolved_options, transport::Scheme::kNumFabric,
//                       metrics};
//   s->run(ctx);
//   metrics.write_csv(std::cout);
//
// Every scenario accepts the cross-cutting `transport` switch (parsed by the
// driver into RunContext::scheme) plus its declared key=value parameters.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "app/metrics.h"
#include "app/options.h"
#include "transport/flow.h"

namespace numfabric::app {

/// One declared parameter: the scenario's config schema is the list of these.
struct ParamSpec {
  std::string key;
  std::string default_value;
  std::string help;
};

struct RunContext {
  /// Resolved options: declared defaults, then config file, then CLI flags.
  const Options& options;
  /// The --transport switch, already parsed.
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  MetricWriter& metrics;
  /// True under NUMFABRIC_FULL=1: scenarios scale to paper size.
  bool full_scale = false;
  /// --solver-threads: wave-parallel NUM oracle solves (bit-identical to 1).
  int solver_threads = 1;
  /// --control-threads: chunked parallel control-plane sweeps (bit-identical
  /// to 1).
  int control_threads = 1;
  /// --shards: parallel engine shards (1 = serial; 0 = one per leaf, capped
  /// at cores; bit-identical to serial).  Only consulted by scenarios with
  /// supports_shards; the driver rejects the flag elsewhere.
  int shards = 1;
};

struct Scenario {
  std::string name;
  std::string description;
  /// Paper figure/table this reproduces ("" for exploratory scenarios).
  std::string figure;
  std::vector<ParamSpec> params;
  std::function<void(RunContext&)> run;
  /// True when the scenario's packet path runs on the sharded engine
  /// (RunContext::shards); the driver rejects --shards != 1 elsewhere
  /// rather than silently running serial.
  bool supports_shards = false;
};

class ScenarioRegistry {
 public:
  /// The process-global registry the CLI and figure wrappers use.
  static ScenarioRegistry& global();

  /// Registers a scenario.  Throws std::invalid_argument on an empty name,
  /// a missing run function or a duplicate name.
  void add(Scenario scenario);

  /// nullptr when unknown.
  const Scenario* find(const std::string& name) const;

  /// All scenarios ordered by name.
  std::vector<const Scenario*> list() const;

  std::size_t size() const { return scenarios_.size(); }
  bool empty() const { return scenarios_.empty(); }

 private:
  // Keyed by name; map nodes are stable, so find() pointers stay valid as
  // more scenarios register.
  std::map<std::string, Scenario> scenarios_;
};

/// Parses a --transport value ("numfabric", "dctcp", "pfabric", "rcp",
/// "dgd"; case-insensitive, "rcp*" accepted).  Throws std::invalid_argument
/// on anything else.
transport::Scheme parse_scheme(const std::string& name);

/// Lower-case CLI token for a scheme (inverse of parse_scheme).
std::string scheme_token(transport::Scheme scheme);

/// Registers the built-in scenarios (ported figure experiments + the
/// incast / permutation / shuffle / FCT-sweep traffic families) into the
/// global registry.  Idempotent.
void register_builtin_scenarios();

}  // namespace numfabric::app
