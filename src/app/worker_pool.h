// Compatibility alias: WorkerPool moved to src/util so the NUM solver's
// parallel execution policy (num/) can reuse it without depending on app/.
// The sweep engine and driver keep their historical app::WorkerPool spelling.
#pragma once

#include "util/worker_pool.h"

namespace numfabric::app {

using WorkerPool = util::WorkerPool;

}  // namespace numfabric::app
