// Entry point of the unified experiment driver.  All logic lives in
// app/driver.cc so the bench figure wrappers and tests share it.
#include "app/driver.h"

int main(int argc, char** argv) {
  return numfabric::app::run_cli(argc, argv);
}
