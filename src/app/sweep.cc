#include "app/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>

#include "app/perf.h"
#include "app/worker_pool.h"
#include "util/parse.h"

namespace numfabric::app {
namespace {

/// Swept tokens that parse fully as numbers become numeric cells (so "0.4"
/// merges as the number 0.4); anything else stays text.
MetricValue sweep_cell(const std::string& token) {
  const auto value = util::parse_double(token);
  return value ? MetricValue(*value) : MetricValue(token);
}

std::string seed_default(const Scenario& scenario) {
  for (const ParamSpec& param : scenario.params) {
    if (param.key == "seed") return param.default_value;
  }
  return "";
}

}  // namespace

SweepResult run_sweep(const SweepRequest& request, MetricWriter& merged) {
  if (request.scenario == nullptr) {
    throw std::invalid_argument("run_sweep: no scenario");
  }
  const Scenario& scenario = *request.scenario;
  if (request.plan.empty()) {
    throw std::invalid_argument("run_sweep: empty plan");
  }
  std::int64_t base_seed = 0;
  if (request.vary_seed) {
    for (const std::string& key : request.plan.keys()) {
      if (key == "seed") {
        throw std::invalid_argument(
            "--vary-seed: seed is already swept; derived seeds would "
            "silently override the swept values");
      }
    }
    const std::string fallback = seed_default(scenario);
    if (fallback.empty() && !request.base_options.has("seed")) {
      throw std::invalid_argument("--vary-seed: scenario " + scenario.name +
                                  " has no seed parameter");
    }
    base_seed = request.base_options.get_int(
        "seed", fallback.empty() ? 0 : std::stoll(fallback));
  }

  const std::vector<RunSpec>& runs = request.plan.runs();
  std::vector<MetricWriter> buffers(runs.size());
  SweepResult result;
  result.statuses.resize(runs.size());

  WorkerPool pool(request.jobs);
  pool.parallel_for(static_cast<int>(runs.size()), [&](int i) {
    const RunSpec& run = runs[static_cast<std::size_t>(i)];
    SweepRunStatus& status = result.statuses[static_cast<std::size_t>(i)];
    status.index = run.index;
    status.assignments = run.assignments;

    Options options = request.base_options;
    for (const auto& [key, value] : run.assignments) options.set(key, value);
    if (request.vary_seed) {
      options.set("seed", std::to_string(base_seed + run.index));
    }

    const auto start = std::chrono::steady_clock::now();
    try {
      RunContext ctx{options, request.scheme,
                     buffers[static_cast<std::size_t>(i)], request.full_scale,
                     request.solver_threads, request.control_threads,
                     request.shards};
      // Counters are thread-local and this run executes entirely on this
      // worker, so the delta isolates the run's substrate activity.
      const PerfSnapshot perf_snapshot;
      scenario.run(ctx);
      const sim::SubstrateStats delta = perf_snapshot.delta();
      record_perf(buffers[static_cast<std::size_t>(i)], delta);
      if (request.report_solver_stats) {
        MetricWriter& buffer = buffers[static_cast<std::size_t>(i)];
        buffer.scalar("solver_threads", request.solver_threads);
        buffer.scalar("solver_solves", delta.solver_solves);
        buffer.scalar("solver_sweeps", delta.solver_sweeps);
        buffer.scalar("solver_relaxations", delta.solver_relaxations);
        buffer.scalar("solver_wall_us",
                      static_cast<double>(delta.solver_wall_ns) / 1000.0);
      }
      status.ok = true;
    } catch (const std::exception& error) {
      status.error = error.what();
    } catch (...) {
      status.error = "unknown error";
    }
    status.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  });

  // Merge in plan order — deterministic regardless of completion order.
  const std::vector<std::string>& keys = request.plan.keys();
  std::vector<std::string> status_columns = {"run"};
  status_columns.insert(status_columns.end(), keys.begin(), keys.end());
  status_columns.push_back("status");
  status_columns.push_back("wall_ms");
  MetricTable& run_table = merged.table("sweep_runs", status_columns);
  for (const SweepRunStatus& status : result.statuses) {
    std::vector<MetricValue> row = {status.index};
    for (const auto& [key, value] : status.assignments) {
      row.push_back(sweep_cell(value));
    }
    row.push_back(status.ok ? std::string("ok") : "error: " + status.error);
    row.push_back(status.wall_ms);
    run_table.add_row(std::move(row));
    if (!status.ok) ++result.failed;
  }

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const MetricWriter& buffer = buffers[i];
    std::vector<MetricValue> prefix;
    for (const auto& [key, value] : runs[i].assignments) {
      prefix.push_back(sweep_cell(value));
    }

    if (!buffer.scalars().empty()) {
      std::vector<std::string> columns(keys);
      columns.push_back("name");
      columns.push_back("value");
      MetricTable& scalars = merged.table("sweep_scalars", columns);
      for (const auto& [name, value] : buffer.scalars()) {
        std::vector<MetricValue> row = prefix;
        row.push_back(name);
        row.push_back(value);
        scalars.add_row(std::move(row));
      }
    }
    for (const auto& table : buffer.tables()) {
      // Prepend only the swept keys the table doesn't already carry as a
      // column (e.g. fct_sweep has its own `load`, which in a `load` sweep
      // holds exactly the swept value) — a duplicated column name would
      // break name-based CSV/JSON consumers.
      std::vector<std::string> columns;
      std::vector<MetricValue> table_prefix;
      for (std::size_t k = 0; k < keys.size(); ++k) {
        if (std::find(table->columns().begin(), table->columns().end(),
                      keys[k]) != table->columns().end()) {
          continue;
        }
        columns.push_back(keys[k]);
        table_prefix.push_back(prefix[k]);
      }
      columns.insert(columns.end(), table->columns().begin(),
                     table->columns().end());
      MetricTable& out = merged.table(table->name(), columns);
      for (const auto& in_row : table->rows()) {
        std::vector<MetricValue> row = table_prefix;
        row.insert(row.end(), in_row.begin(), in_row.end());
        out.add_row(std::move(row));
      }
    }
  }
  return result;
}

}  // namespace numfabric::app
