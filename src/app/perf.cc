#include "app/perf.h"

namespace numfabric::app {

void record_perf(MetricWriter& metrics, const sim::SubstrateStats& delta) {
  MetricTable& table = metrics.table("perf", {"counter", "value"});
  const auto row = [&table](const char* name, std::uint64_t value) {
    table.add_row({name, value});
  };
  row("events_scheduled", delta.events_scheduled);
  row("events_fired", delta.events_fired);
  row("events_cancelled", delta.events_cancelled);
  row("packets_forwarded", delta.packets_forwarded);
  row("bytes_forwarded", delta.bytes_forwarded);
  row("packets_dropped", delta.packets_dropped);
  row("control_ticks", delta.control_ticks);
  row("links_swept", delta.links_swept);
  row("flowsim_epochs", delta.flowsim_epochs);
  row("flowsim_resolves", delta.flowsim_resolves);
  // Only present when the incremental solver path ran: every golden-hashed
  // scenario runs with incremental OFF, where the counter is 0 and the table
  // stays byte-identical to the pre-incremental format.
  if (delta.solver_relaxations != 0) {
    row("solver_relaxations", delta.solver_relaxations);
  }
  row("allocs_callable_spill", delta.allocs_callable_spill);
  row("allocs_event_queue", delta.allocs_event_queue);
  row("allocs_packet_pool", delta.allocs_packet_pool);
  row("allocs_flow_table", delta.allocs_flow_table);
  row("allocs_queue", delta.allocs_queue);
  row("allocs_total", delta.allocs_total());
}

}  // namespace numfabric::app
