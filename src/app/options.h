// Lightweight key=value option store for the scenario driver.
//
// Options come from two layers, the later overriding the earlier: a config
// file (`--config=FILE`, one `key = value` per line, '#' comments) and
// command-line tokens (`--key=value`, `key=value`, or a bare `--flag`
// meaning `flag=true`).  Values stay strings until a typed getter parses
// them, so the store itself has no schema; scenarios declare their schema as
// ParamSpec lists (scenario.h) — the driver rejects keys no scenario
// declares, and the run functions supply defaults for absent keys (defaults
// can depend on quick-vs-full scale, so they are resolved at run time, not
// stored here).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace numfabric::app {

class Options {
 public:
  Options() = default;

  /// Parses command-line style tokens.  Accepts "--key=value", "key=value"
  /// and bare "--flag" (stored as flag=true).  Throws std::invalid_argument
  /// on malformed tokens (empty key, no '=' in a non-flag token).
  static Options from_tokens(const std::vector<std::string>& tokens);

  /// Parses a config file: one `key = value` per line, blank lines and
  /// '#' comments ignored.  Throws std::runtime_error if the file cannot be
  /// read, std::invalid_argument on malformed lines.
  static Options from_file(const std::string& path);

  /// Parses config-file syntax from a string (exposed for tests).
  static Options from_config_text(const std::string& text);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  /// Overlays `other` on top of this (other wins on conflicts).
  void merge(const Options& other);

  // Typed getters; return `fallback` when the key is absent and throw
  // std::invalid_argument when the value does not parse.
  std::string get(const std::string& key, const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Comma-separated list; empty value -> empty list.
  std::vector<std::string> get_list(const std::string& key,
                                    const std::vector<std::string>& fallback) const;
  /// Comma-separated numeric lists, validated item by item (trailing junk in
  /// any element throws, same strictness as the scalar getters).
  std::vector<double> get_double_list(const std::string& key,
                                      const std::vector<double>& fallback) const;
  std::vector<int> get_int_list(const std::string& key,
                                const std::vector<int>& fallback) const;

  const std::map<std::string, std::string>& values() const { return values_; }

  /// Serializes as config-file text; from_config_text(to_config_text())
  /// round-trips exactly.
  std::string to_config_text() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace numfabric::app
