#include "app/run_plan.h"

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/parse.h"

namespace numfabric::app {
namespace {

using util::trim;

double parse_number(const std::string& token, const std::string& what) {
  const auto value = util::parse_double(token);
  if (!value) {
    throw std::invalid_argument("sweep " + what + ": '" + token +
                                "' is not a number");
  }
  return *value;
}

// Shortest clean rendering of a range point, so `0.2:0.8:0.2` expands to the
// same tokens a user would type by hand ("0.4", not "0.4000000000000001").
std::string format_value(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::ostringstream out;
    out << static_cast<long long>(value);
    return out.str();
  }
  std::ostringstream out;
  out.precision(10);
  out << value;
  return out.str();
}

bool is_number(const std::string& token) {
  if (token.empty()) return false;
  std::istringstream in(token);
  double parsed = 0;
  in >> parsed;
  return !in.fail() && in.eof();
}

/// True when every ':'-separated part is numeric — the only shape that is a
/// range request.  Values whose parts carry text (`jellyfish:8,3,16`) are
/// list items that happen to contain a colon, not malformed ranges.
bool is_numeric_range(const std::string& value) {
  std::istringstream in(value);
  std::string part;
  while (std::getline(in, part, ':')) {
    if (!is_number(trim(part))) return false;
  }
  return true;
}

std::vector<std::string> expand_range(const std::string& spec,
                                      const std::string& key) {
  std::vector<std::string> parts;
  std::istringstream in(spec);
  std::string part;
  while (std::getline(in, part, ':')) parts.push_back(trim(part));
  if (parts.size() != 3) {
    throw std::invalid_argument("sweep " + key +
                                ": range must be lo:hi:step, got '" + spec +
                                "'");
  }
  const double lo = parse_number(parts[0], key);
  const double hi = parse_number(parts[1], key);
  const double step = parse_number(parts[2], key);
  if (step <= 0) {
    throw std::invalid_argument("sweep " + key + ": step must be > 0, got '" +
                                parts[2] + "'");
  }
  if (hi < lo) {
    throw std::invalid_argument("sweep " + key + ": range is empty (" +
                                parts[1] + " < " + parts[0] + ")");
  }
  // Inclusive endpoint; the epsilon absorbs float drift in (hi-lo)/step
  // (e.g. (0.8-0.2)/0.2 == 2.9999999999999996 must still yield 4 points).
  const int count = static_cast<int>(std::floor((hi - lo) / step + 1e-6)) + 1;
  std::vector<std::string> values;
  values.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    values.push_back(format_value(lo + static_cast<double>(i) * step));
  }
  return values;
}

}  // namespace

SweepSpec parse_sweep_spec(const std::string& token) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) {
    throw std::invalid_argument("sweep spec '" + token +
                                "': expected key=a,b,c or key=lo:hi:step");
  }
  SweepSpec spec;
  spec.key = trim(token.substr(0, eq));
  if (spec.key.empty()) {
    throw std::invalid_argument("sweep spec '" + token + "': empty key");
  }
  const std::string value = trim(token.substr(eq + 1));
  if (value.find(':') != std::string::npos && is_numeric_range(value)) {
    spec.values = expand_range(value, spec.key);
    return spec;
  }
  std::istringstream in(value);
  std::string item;
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (item.empty()) continue;
    // Tagged tokens like `jellyfish:8,3,16` carry their own commas: a
    // purely numeric item continues the preceding tagged value rather than
    // starting a new one, so `topology=4x2x2, jellyfish:8,3,16` is two
    // values, not four.
    if (!spec.values.empty() &&
        spec.values.back().find(':') != std::string::npos &&
        is_number(item)) {
      spec.values.back() += "," + item;
    } else {
      spec.values.push_back(item);
    }
  }
  if (spec.values.empty()) {
    throw std::invalid_argument("sweep " + spec.key + ": no values");
  }
  return spec;
}

RunPlan RunPlan::expand(const std::vector<SweepSpec>& specs) {
  RunPlan plan;
  std::set<std::string> seen;
  for (const SweepSpec& spec : specs) {
    if (spec.values.empty()) {
      throw std::invalid_argument("sweep " + spec.key + ": no values");
    }
    if (!seen.insert(spec.key).second) {
      throw std::invalid_argument("duplicate sweep key '" + spec.key + "'");
    }
    plan.keys_.push_back(spec.key);
  }

  std::size_t total = specs.empty() ? 0 : 1;
  for (const SweepSpec& spec : specs) total *= spec.values.size();
  plan.runs_.reserve(total);
  // Odometer over the value indices; the first spec is the slowest digit, so
  // runs come out in nested-loop order.
  std::vector<std::size_t> digits(specs.size(), 0);
  for (std::size_t run = 0; run < total; ++run) {
    RunSpec item;
    item.index = static_cast<int>(run);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      item.assignments.emplace_back(specs[s].key, specs[s].values[digits[s]]);
    }
    plan.runs_.push_back(std::move(item));
    for (std::size_t s = specs.size(); s-- > 0;) {
      if (++digits[s] < specs[s].values.size()) break;
      digits[s] = 0;
    }
  }
  return plan;
}

}  // namespace numfabric::app
