// The sweep engine: executes a RunPlan of independent scenario runs on a
// WorkerPool and merges the per-run metrics into one table set.
//
// Isolation: every run builds its own Options (base + that run's swept
// assignments), its own MetricWriter buffer and — inside the scenario — its
// own Simulator, so runs share nothing mutable and the fan-out is safe.
// Merging happens after all runs complete, in plan order, which makes the
// merged output independent of the thread count: `--jobs=1` and `--jobs=8`
// produce identical tables.
//
// Merged layout:
//  * `sweep_runs` table (first): run index, the swept keys, status
//    ("ok" or the error message) and per-run wall time.  Wall time is the
//    only nondeterministic column, quarantined here so the data tables
//    stay reproducible.
//  * every table a run emitted, renamed nothing, with the swept keys
//    prepended as leading columns (spec order; keys the table already
//    carries as a column are not duplicated) and rows appended in plan
//    order;
//  * every scalar a run emitted, folded into a `sweep_scalars` table
//    (swept keys, scalar name, value) — per-run scalars would otherwise
//    collide.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "app/metrics.h"
#include "app/options.h"
#include "app/run_plan.h"
#include "app/scenario.h"

namespace numfabric::app {

struct SweepRequest {
  const Scenario* scenario = nullptr;
  /// Fixed (non-swept) parameters; swept keys must not appear here.
  Options base_options;
  RunPlan plan;
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  bool full_scale = false;
  /// Worker threads (already resolved; >= 1).
  int jobs = 1;
  /// Per-run NUM oracle / control-plane threads (RunContext::solver_threads
  /// and ::control_threads; results are bit-identical for any value).
  int solver_threads = 1;
  int control_threads = 1;
  /// Per-run engine shards (RunContext::shards; passed through unresolved so
  /// 0 keeps its "one per leaf, capped at cores" meaning inside the run).
  int shards = 1;
  /// Emit per-run solver cost scalars (solver_solves / solver_sweeps /
  /// solver_wall_us) into sweep_scalars.  Off by default: solver_wall_us is
  /// nondeterministic, and the default keeps merged sweep output — which the
  /// golden determinism tests hash — byte-stable.
  bool report_solver_stats = false;
  /// Derive each run's seed as <base seed> + <plan index>.  Requires the
  /// scenario to declare a `seed` parameter.  Off by default so a sweep row
  /// is bit-identical to the equivalent single run.
  bool vary_seed = false;
};

struct SweepRunStatus {
  int index = 0;
  std::vector<std::pair<std::string, std::string>> assignments;
  bool ok = false;
  std::string error;  // empty when ok
  double wall_ms = 0;
};

struct SweepResult {
  std::vector<SweepRunStatus> statuses;  // plan order
  int failed = 0;
};

/// Runs the plan and fills `merged`.  Throws std::invalid_argument on a
/// malformed request (null scenario, empty plan, vary_seed without a seed
/// parameter); per-run scenario errors do not throw — they land in the
/// status table and the run contributes no data rows.
SweepResult run_sweep(const SweepRequest& request, MetricWriter& merged);

}  // namespace numfabric::app
