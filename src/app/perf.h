// Substrate perf reporting: turns SubstrateStats deltas into the `perf`
// metric table every numfabric_run / sweep invocation emits.
//
// Usage (one scenario run, on the thread that runs it):
//   PerfSnapshot snapshot;
//   scenario.run(ctx);
//   record_perf(metrics, snapshot.delta());
//
// The table contains only deterministic counters (event/packet counts and
// substrate allocation counts), so merged sweep output stays byte-identical
// across --jobs settings.  Wall-clock throughput is reported separately by
// the driver as top-level scalars (wall_ms, events_per_sec), which golden
// tests normalize away.
#pragma once

#include "app/metrics.h"
#include "sim/substrate_stats.h"

namespace numfabric::app {

/// Captures the calling thread's substrate counters at construction.
class PerfSnapshot {
 public:
  PerfSnapshot() : start_(sim::substrate_stats()) {}

  /// Counters accumulated on this thread since construction.
  sim::SubstrateStats delta() const { return sim::substrate_stats() - start_; }

 private:
  sim::SubstrateStats start_;
};

/// Appends the counters to the writer's `perf` table ({counter, value} rows,
/// fixed order).
void record_perf(MetricWriter& metrics, const sim::SubstrateStats& delta);

}  // namespace numfabric::app
