// The built-in scenario catalog: the paper's figure experiments ported onto
// the registry, plus the traffic families the evaluation implies but the
// seed lacked (incast, permutation, all-to-all shuffle, FCT sweeps over the
// web-search and data-mining traces).
//
// Conventions shared by every scenario:
//  * the driver's --transport switch arrives as RunContext::scheme;
//    comparative scenarios additionally take `transports=` (comma list) and
//    default it to that single scheme;
//  * quick-scale defaults come from exp::Scale and inflate to paper scale
//    under NUMFABRIC_FULL=1 (RunContext::full_scale);
//  * results go through MetricWriter only — the driver decides CSV vs JSON.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/scenario.h"
#include "exp/bwfunc_experiment.h"
#include "exp/common.h"
#include "exp/contention_experiment.h"
#include "exp/dynamic_workload.h"
#include "exp/fct_experiment.h"
#include "exp/flow_fidelity.h"
#include "exp/pooling_experiment.h"
#include "exp/semi_dynamic.h"
#include "exp/trace_replay.h"
#include "exp/traffic_experiment.h"
#include "stats/summary.h"
#include "workload/size_distribution.h"
#include "workload/trace.h"

namespace numfabric::app {
namespace {

sim::TimeNs ms_time(double ms) {
  return static_cast<sim::TimeNs>(ms * 1e6);
}

exp::Scale scale_for(const RunContext& ctx) {
  return ctx.full_scale ? exp::full_scale() : exp::quick_scale();
}

// ---------------------------------------------------------------------------
// Parameter presets (`preset=classic|modern`).
//
// classic is the paper's 2016 testbed: 10G hosts, 40G spines, 2 us hops,
// 1500 B packets.  modern is a 2020s fabric: 400G hosts, 1600G spines,
// 50 ns hops (sub-us RTTs) and 4 KB jumbo-ish packets.  The preset only
// moves *defaults* — any explicit knob (host_gbps=, core_delay_us=, ...)
// still wins — so classic runs are byte-identical to pre-preset output.
// ---------------------------------------------------------------------------

enum class Preset { kClassic, kModern };

struct PresetDefaults {
  double host_gbps;
  double spine_gbps;
  double delay_us;
  std::uint32_t packet_bytes;
};

Preset preset_param(const RunContext& ctx) {
  const std::string token = ctx.options.get("preset", "classic");
  if (token == "classic") return Preset::kClassic;
  if (token == "modern") return Preset::kModern;
  throw std::invalid_argument("unknown preset '" + token +
                              "' (expected classic or modern)");
}

PresetDefaults preset_defaults(Preset preset) {
  if (preset == Preset::kModern) return {400.0, 1600.0, 0.05, 4096};
  return {10.0, 40.0, 2.0, 1500};
}

/// Pushes the preset's packet size into every scheme config (and scales the
/// DCTCP marking threshold with it, keeping the paper's 65-packet K).  No-op
/// for classic: 1500 B is already every config's default.
void apply_preset_packets(Preset preset, transport::FabricOptions& fabric) {
  if (preset == Preset::kClassic) return;
  const std::uint32_t bytes = preset_defaults(preset).packet_bytes;
  fabric.numfabric.packet_bytes = bytes;
  fabric.dgd.packet_bytes = bytes;
  fabric.rcp.packet_bytes = bytes;
  fabric.dctcp.packet_bytes = bytes;
  fabric.dctcp.ecn_threshold_bytes = 65 * static_cast<std::size_t>(bytes);
  fabric.pfabric.packet_bytes = bytes;
}

/// Applies the cross-cutting --control-threads / --solver-threads knobs to an
/// experiment options struct.  Every fabric-backed struct embeds a
/// FabricOptions; the ones that run the NUM oracle also take solver_threads.
/// Both knobs are bit-identity-preserving, so they never appear in a
/// scenario's declared parameter schema.
template <typename ExpOptions>
void apply_thread_context(const RunContext& ctx, ExpOptions& options) {
  options.fabric.control_threads = ctx.control_threads;
  apply_preset_packets(preset_param(ctx), options.fabric);
  if constexpr (requires { options.solver_threads; }) {
    options.solver_threads = ctx.solver_threads;
  }
  // --shards (also bit-identity-preserving) reaches the experiments whose
  // options declare the knob; the driver already rejected the flag for
  // scenarios that don't.
  if constexpr (requires { options.shards; }) {
    options.shards = ctx.shards;
  }
}

/// Appends per-shard engine counters to the `perf` table.  Serial runs have
/// no shard_perf rows, so shards=1 output is byte-identical to the
/// pre-sharding format (and the existing golden hashes).  blocked_us is
/// worker cv-wait wall time — nondeterministic, stripped (like wall_ms)
/// wherever sharded output is golden-compared.
void emit_shard_perf(RunContext& ctx,
                     const std::vector<sim::ShardPerf>& shard_perf) {
  if (shard_perf.empty()) return;
  MetricTable& table = ctx.metrics.table("perf", {"counter", "value"});
  for (std::size_t k = 0; k < shard_perf.size(); ++k) {
    const std::string prefix = "shard" + std::to_string(k) + "_";
    table.add_row({prefix + "events", shard_perf[k].events});
    table.add_row({prefix + "merged_msgs", shard_perf[k].merged_msgs});
    table.add_row({prefix + "null_windows", shard_perf[k].null_steps});
    table.add_row({prefix + "blocked_us",
                   static_cast<double>(shard_perf[k].blocked_ns) / 1000.0});
  }
}

/// Resolves the fabric: the optional `topology=HxLxS` shape token, the three
/// explicit counts, per-tier rates and delays, then the `oversub=` re-rating
/// (which derives the spine rate from host demand, overriding spine_gbps).
net::LeafSpineOptions leaf_spine_options(const RunContext& ctx,
                                         const exp::Scale& scale) {
  const PresetDefaults preset = preset_defaults(preset_param(ctx));
  int hosts_per_leaf = scale.hosts_per_leaf;
  int leaves = scale.leaves;
  int spines = scale.spines;
  const std::string shape = ctx.options.get("topology", "");
  if (!shape.empty()) {
    for (const char* key : {"hosts_per_leaf", "leaves", "spines"}) {
      if (ctx.options.has(key)) {
        throw std::invalid_argument("topology= already fixes " +
                                    std::string(key) + "; drop one of the two");
      }
    }
    char trailing = 0;
    if (std::sscanf(shape.c_str(), "%dx%dx%d%c", &hosts_per_leaf, &leaves,
                    &spines, &trailing) != 3 ||
        hosts_per_leaf < 1 || leaves < 1 || spines < 1) {
      throw std::invalid_argument("bad topology '" + shape +
                                  "' (expected HxLxS, e.g. 16x8x4)");
    }
  }
  net::LeafSpineOptions topo;
  topo.hosts_per_leaf = static_cast<int>(
      ctx.options.get_int("hosts_per_leaf", hosts_per_leaf));
  topo.num_leaves = static_cast<int>(ctx.options.get_int("leaves", leaves));
  topo.num_spines = static_cast<int>(ctx.options.get_int("spines", spines));
  topo.host_rate_bps =
      ctx.options.get_double("host_gbps", preset.host_gbps) * 1e9;
  topo.spine_rate_bps =
      ctx.options.get_double("spine_gbps", preset.spine_gbps) * 1e9;
  topo.link_delay =
      static_cast<sim::TimeNs>(preset.delay_us * sim::kMicrosecond);
  topo.core_link_delay = static_cast<sim::TimeNs>(
      ctx.options.get_double("core_delay_us", sim::to_micros(topo.link_delay)) *
      sim::kMicrosecond);
  const double oversub = ctx.options.get_double("oversub", 0.0);
  if (oversub < 0) {
    throw std::invalid_argument("oversub must be >= 0 (0 = keep spine_gbps)");
  }
  if (oversub > 0) topo = topo.with_oversubscription(oversub);
  return topo;
}

// ---------------------------------------------------------------------------
// Fabric choice: leaf-spine (the default) or jellyfish.
//
// `topology=jellyfish:S,r,H` — S switches of port-count r wired as a random
// regular graph (deterministic from jf_seed), H hosts round-robined across
// the switches, routed over the k_paths shortest paths per switch pair.
// Shape grammar is one sweepable token so `--sweep "topology=16x8x4,
// jellyfish:12,4,32"` fans a scenario across both fabric families.
// ---------------------------------------------------------------------------

struct FabricChoice {
  net::LeafSpineOptions leaf_spine;
  std::optional<net::JellyfishOptions> jellyfish;
  int k_paths = 8;
  int hosts = 0;  // total hosts on either fabric
};

FabricChoice fabric_choice(const RunContext& ctx, const exp::Scale& scale) {
  FabricChoice choice;
  const std::string shape = ctx.options.get("topology", "");
  if (shape.rfind("jellyfish:", 0) == 0) {
    const PresetDefaults preset = preset_defaults(preset_param(ctx));
    for (const char* key : {"hosts_per_leaf", "leaves", "spines", "oversub"}) {
      if (ctx.options.has(key)) {
        throw std::invalid_argument("topology=jellyfish:... has no " +
                                    std::string(key) + "; drop it");
      }
    }
    net::JellyfishOptions jf;
    char trailing = 0;
    if (std::sscanf(shape.c_str(), "jellyfish:%d,%d,%d%c", &jf.switches,
                    &jf.ports, &jf.hosts, &trailing) != 3 ||
        jf.switches < 1 || jf.ports < 1 || jf.hosts < 1) {
      throw std::invalid_argument(
          "bad topology '" + shape +
          "' (expected jellyfish:switches,ports,hosts, e.g. jellyfish:12,4,24)");
    }
    jf.seed = static_cast<std::uint64_t>(ctx.options.get_int("jf_seed", 1));
    jf.host_rate_bps =
        ctx.options.get_double("host_gbps", preset.host_gbps) * 1e9;
    jf.switch_rate_bps =
        ctx.options.get_double("spine_gbps", preset.spine_gbps) * 1e9;
    jf.link_delay = static_cast<sim::TimeNs>(
        ctx.options.get_double("core_delay_us", preset.delay_us) *
        sim::kMicrosecond);
    const std::int64_t k = ctx.options.get_int("k_paths", 8);
    if (k < 1) throw std::invalid_argument("k_paths must be >= 1");
    choice.k_paths = static_cast<int>(k);
    choice.hosts = jf.hosts;
    choice.jellyfish = jf;
    return choice;
  }
  choice.leaf_spine = leaf_spine_options(ctx, scale);
  choice.hosts = choice.leaf_spine.hosts_per_leaf * choice.leaf_spine.num_leaves;
  return choice;
}

std::vector<ParamSpec> topology_params(bool with_jellyfish = false) {
  std::vector<ParamSpec> params = {
      {"topology", "",
       "fabric shape HxLxS (hosts_per_leaf x leaves x spines), e.g. 16x8x4; "
       "one sweepable token, conflicts with the three explicit keys"},
      {"hosts_per_leaf", "8", "hosts per leaf switch (full scale: 16)"},
      {"leaves", "4", "number of leaf switches (full scale: 8)"},
      {"spines", "2", "number of spine switches (full scale: 4)"},
      {"host_gbps", "10", "host NIC rate (preset=modern default: 400)"},
      {"spine_gbps", "40",
       "leaf-to-spine / switch-to-switch link rate (preset=modern: 1600)"},
      {"oversub", "0",
       "core oversubscription ratio; > 0 re-rates spine links to "
       "hosts_per_leaf*host_gbps/(spines*oversub), overriding spine_gbps"},
      {"core_delay_us", "2",
       "leaf-spine propagation delay (edge links track the preset; "
       "preset=modern: 0.05)"},
      {"preset", "classic",
       "parameter preset: classic (10G/40G, 2 us hops, 1500 B packets) or "
       "modern (400G/1600G, 50 ns hops, 4 KB packets); explicit knobs win"},
  };
  if (with_jellyfish) {
    params[0] = {
        "topology", "",
        "fabric shape: HxLxS leaf-spine (e.g. 16x8x4) or "
        "jellyfish:switches,ports,hosts (random regular graph, e.g. "
        "jellyfish:12,4,24); one sweepable token; jellyfish has no "
        "leaf/spine cut, so it runs serial only (--shards=1)"};
    params.push_back({"jf_seed", "1",
                      "jellyfish only: random-regular-graph wiring seed"});
    params.push_back({"k_paths", "8",
                      "jellyfish only: k-shortest paths per switch pair"});
  }
  return params;
}

std::vector<ParamSpec> merge_params(std::vector<ParamSpec> a,
                                    std::vector<ParamSpec> b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

/// Effective scheme for single-transport scenarios: the sweepable
/// `transport=` parameter when set, else the driver's --transport switch.
transport::Scheme scheme_for(const RunContext& ctx) {
  const std::string token = ctx.options.get("transport", "");
  return token.empty() ? ctx.scheme : parse_scheme(token);
}

ParamSpec transport_param() {
  return {"transport", "<--transport>",
          "scheme for this run (sweepable; overrides --transport)"};
}

std::vector<transport::Scheme> transports_param(const RunContext& ctx) {
  std::vector<transport::Scheme> schemes;
  for (const std::string& token :
       ctx.options.get_list("transports", {scheme_token(ctx.scheme)})) {
    schemes.push_back(parse_scheme(token));
  }
  return schemes;
}

double percentile_or_nan(const std::vector<double>& samples, double p) {
  return samples.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : stats::percentile(samples, p);
}

/// KB-sized knobs become unsigned byte counts; a negative value would wrap
/// to an absurd size, so reject it here.
std::uint64_t kb_to_bytes(const RunContext& ctx, const std::string& key,
                          std::int64_t fallback_kb) {
  const std::int64_t kb = ctx.options.get_int(key, fallback_kb);
  if (kb < 0) {
    throw std::invalid_argument(key + " must be >= 0 (got " +
                                std::to_string(kb) + ")");
  }
  return static_cast<std::uint64_t>(kb) * 1000;
}

// ---------------------------------------------------------------------------
// Simulation fidelity (`fidelity=packet|flow`).
//
// Scenarios that declare fidelity_params() can swap the packet substrate for
// the flow-fluid engine (src/flowsim/): same workload draw, same paths, same
// output tables, but epochs + warm NUM re-solves instead of packet events.
// Scenarios without the declaration are packet-only; the driver rejects
// `fidelity=` there with a pointed error (see driver.cc).
// ---------------------------------------------------------------------------

enum class Fidelity { kPacket, kFlow };

Fidelity fidelity_param(const RunContext& ctx) {
  const std::string token = ctx.options.get("fidelity", "packet");
  if (token == "packet") return Fidelity::kPacket;
  if (token == "flow") return Fidelity::kFlow;
  throw std::invalid_argument("unknown fidelity '" + token +
                              "' (expected packet or flow)");
}

double resolve_interval_param(const RunContext& ctx, double default_us) {
  const double us = ctx.options.get_double("resolve_us", default_us);
  if (us < 0) {
    throw std::invalid_argument(
        "resolve_us must be >= 0 (0 = exact event-driven mode)");
  }
  return us * 1e-6;
}

/// `incremental=on|off`: the solver's worklist re-solve path.  ON by default
/// for flow fidelity (per-epoch cost tracks churn, not compiled history);
/// anything that golden-hashes output must pass off — incremental solves
/// converge to the same tolerance but are not bit-identical to full ones.
bool incremental_param(const RunContext& ctx) {
  const std::string token = ctx.options.get("incremental", "on");
  if (token == "on") return true;
  if (token == "off") return false;
  throw std::invalid_argument("unknown incremental '" + token +
                              "' (expected on or off)");
}

/// The flow-fluid engine assigns every flow its NUM-optimal rate, which
/// models the NUM-solving transports.  Window/loss protocols (DCTCP,
/// pFabric) have no flow-fluid model — running them would silently report
/// oracle numbers under their name, so fail loudly instead.
void require_flow_capable_scheme(transport::Scheme scheme) {
  if (scheme != transport::Scheme::kNumFabric &&
      scheme != transport::Scheme::kDgd) {
    throw std::invalid_argument(
        "fidelity=flow models NUM-optimal rates; transport '" +
        scheme_token(scheme) +
        "' has no flow-fluid model (supported: numfabric, dgd)");
  }
}

std::vector<ParamSpec> fidelity_params() {
  return {{"fidelity", "packet",
           "packet | flow: packet-level substrate or the flow-fluid engine "
           "(NUM-optimal rates, no queueing; see src/flowsim/README.md)"},
          {"resolve_us", "0",
           "fidelity=flow: epoch-grid re-solve period in us (0 = exact "
           "event-driven re-solve at every arrival/departure)"},
          {"incremental", "on",
           "fidelity=flow: on | off — incremental (worklist) NUM re-solves; "
           "same tolerance as full solves but not bit-identical"}};
}

// ---------------------------------------------------------------------------
// convergence (Fig. 4a): semi-dynamic convergence-time CDF.
// ---------------------------------------------------------------------------

void run_convergence(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  MetricTable& summary = ctx.metrics.table(
      "convergence",
      {"transport", "events_measured", "events_converged", "median_us",
       "p95_us", "sim_events", "queue_drops"});
  MetricTable& cdf = ctx.metrics.table("convergence_cdf",
                                       {"transport", "time_us", "fraction"});

  for (const transport::Scheme scheme : transports_param(ctx)) {
    exp::SemiDynamicOptions options;
    apply_thread_context(ctx, options);
    options.scheme = scheme;
    options.topology = leaf_spine_options(ctx, scale);
    options.num_paths =
        static_cast<int>(ctx.options.get_int("paths", scale.num_paths));
    options.initial_active = static_cast<int>(
        ctx.options.get_int("initial_active", scale.initial_active));
    options.flows_per_event = static_cast<int>(
        ctx.options.get_int("flows_per_event", scale.flows_per_event));
    options.num_events =
        static_cast<int>(ctx.options.get_int("events", scale.num_events));
    options.min_active =
        static_cast<int>(ctx.options.get_int("min_active", scale.min_active));
    options.max_active =
        static_cast<int>(ctx.options.get_int("max_active", scale.max_active));
    options.convergence.timeout = ms_time(ctx.options.get_double(
        "timeout_ms", sim::to_seconds(scale.convergence_timeout) * 1e3));
    options.alpha = ctx.options.get_double("alpha", 1.0);
    options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 1));
    const exp::SemiDynamicResult result = exp::run_semi_dynamic(options);

    const std::string name = scheme_token(scheme);
    summary.add_row({name, result.events_measured, result.events_converged,
                     percentile_or_nan(result.convergence_times_us, 50),
                     percentile_or_nan(result.convergence_times_us, 95),
                     result.sim_events, result.total_queue_drops});
    if (!result.convergence_times_us.empty()) {
      for (const auto& [value, fraction] :
           stats::cdf(result.convergence_times_us, 21)) {
        cdf.add_row({name, value, fraction});
      }
    }
    emit_shard_perf(ctx, result.shard_perf);
  }
}

// ---------------------------------------------------------------------------
// rate-timeseries (Fig. 4b,c): one tracked flow across network events.
// ---------------------------------------------------------------------------

void run_rate_timeseries(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::SemiDynamicOptions options;
  apply_thread_context(ctx, options);
  options.scheme = ctx.scheme;
  options.topology = leaf_spine_options(ctx, scale);
  options.num_paths =
      static_cast<int>(ctx.options.get_int("paths", scale.num_paths / 2));
  options.initial_active = static_cast<int>(
      ctx.options.get_int("initial_active", scale.initial_active / 2));
  options.flows_per_event = static_cast<int>(
      ctx.options.get_int("flows_per_event", scale.flows_per_event / 2));
  options.num_events = static_cast<int>(ctx.options.get_int("events", 8));
  options.min_active =
      static_cast<int>(ctx.options.get_int("min_active", scale.min_active / 2));
  options.max_active =
      static_cast<int>(ctx.options.get_int("max_active", scale.max_active / 2));
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.record_trace = true;
  options.trace_sample_interval =
      sim::micros(ctx.options.get_int("sample_us", 20));
  // A fixed event schedule keeps schemes comparable (DCTCP never converges
  // at these time scales, so convergence-gated events would stall).
  options.fixed_event_interval =
      ms_time(ctx.options.get_double("event_interval_ms", 4));
  options.use_maxmin_targets = ctx.scheme == transport::Scheme::kDctcp;
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 7));
  const exp::SemiDynamicResult result = exp::run_semi_dynamic(options);

  ctx.metrics.scalar("transport", scheme_token(ctx.scheme));
  ctx.metrics.scalar("sim_events", result.sim_events);
  MetricTable& trace = ctx.metrics.table("trace", {"time_ms", "rate_bps"});
  for (const auto& [at_ms, rate] : result.trace) trace.add_row({at_ms, rate});
  MetricTable& expected =
      ctx.metrics.table("expected_steps", {"time_ms", "rate_bps"});
  for (const auto& [at_ms, rate] : result.expected_steps) {
    expected.add_row({at_ms, rate});
  }
  emit_shard_perf(ctx, result.shard_perf);
}

// ---------------------------------------------------------------------------
// dynamic-deviation (Fig. 5): deviation from fluid-oracle rates by size bin.
// ---------------------------------------------------------------------------

const workload::SizeDistribution& distribution_param(const RunContext& ctx,
                                                     const std::string& fallback) {
  const std::string name = ctx.options.get("workload", fallback);
  if (name == "websearch") return workload::websearch_distribution();
  if (name == "enterprise") return workload::enterprise_distribution();
  // Full-scale runs use the uncapped 1 GB tail (ROADMAP fidelity note).
  if (name == "datamining") {
    return workload::datamining_distribution(ctx.full_scale);
  }
  throw std::invalid_argument(
      "unknown workload '" + name +
      "' (expected websearch, enterprise or datamining)");
}

void run_dynamic_deviation(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  MetricTable& table = ctx.metrics.table(
      "deviation", {"transport", "bin_bdps", "count", "whisker_low", "p25",
                    "median", "p75", "whisker_high"});
  MetricTable& totals = ctx.metrics.table(
      "flows", {"transport", "completed", "incomplete", "bdp_kb"});

  for (const transport::Scheme scheme : transports_param(ctx)) {
    exp::DynamicWorkloadOptions options;
    apply_thread_context(ctx, options);
    options.scheme = scheme;
    options.topology = leaf_spine_options(ctx, scale);
    options.sizes = &distribution_param(ctx, "websearch");
    options.load = ctx.options.get_double("load", 0.6);
    options.flow_count = static_cast<int>(
        ctx.options.get_int("flows", scale.dynamic_flow_count));
    options.alpha = ctx.options.get_double("alpha", 1.0);
    options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 11));
    options.horizon =
        ms_time(ctx.options.get_double("horizon_ms", 20'000));
    const exp::DynamicWorkloadResult result = exp::run_dynamic_workload(options);

    const std::string name = scheme_token(scheme);
    totals.add_row({name, static_cast<std::int64_t>(result.flows.size()),
                    result.incomplete, result.bdp_bytes / 1e3});
    std::vector<std::vector<double>> bins(5);
    for (const auto& flow : result.flows) {
      const int bin = exp::bdp_bin(static_cast<double>(flow.size_bytes),
                                   result.bdp_bytes);
      if (bin < 0) continue;
      bins[static_cast<std::size_t>(bin)].push_back(
          (flow.rate_bps - flow.ideal_rate_bps) / flow.ideal_rate_bps);
    }
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b].empty()) continue;
      const stats::BoxPlot box = stats::box_plot(bins[b]);
      table.add_row({name, exp::kBdpBinLabels[b],
                     static_cast<std::int64_t>(bins[b].size()), box.whisker_low,
                     box.p25, box.p50, box.p75, box.whisker_high});
    }
  }
}

// ---------------------------------------------------------------------------
// fct-vs-pfabric (Fig. 7): NUMFabric's FCT-min utility against pFabric.
// ---------------------------------------------------------------------------

// A `load=` single point overrides the `loads=` list — the sweep engine
// sweeps scalars, so `--sweep load=0.2,0.4` fans the list out run-per-run.
std::vector<double> loads_param(const RunContext& ctx,
                                const std::vector<double>& fallback) {
  if (ctx.options.has("load")) {
    return {ctx.options.get_double("load", 0)};
  }
  return ctx.options.get_double_list("loads", fallback);
}

void run_fct_vs_pfabric(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::FctExperimentOptions options;
  apply_thread_context(ctx, options);
  options.topology = leaf_spine_options(ctx, scale);
  options.loads = loads_param(
      ctx, ctx.full_scale
               ? std::vector<double>{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
               : std::vector<double>{0.2, 0.4, 0.6, 0.8});
  options.flow_count = static_cast<int>(
      ctx.options.get_int("flows", scale.dynamic_flow_count));
  options.epsilon = ctx.options.get_double("epsilon", 0.125);
  options.slowdown = ctx.options.get_double("slowdown", 2.0);
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 5));
  const exp::FctExperimentResult result = exp::run_fct_experiment(options);

  MetricTable& table = ctx.metrics.table(
      "fct", {"load", "numfabric_mean_norm_fct", "pfabric_mean_norm_fct",
              "ratio", "numfabric_completed", "pfabric_completed",
              "numfabric_incomplete", "pfabric_incomplete"});
  for (const auto& row : result.rows) {
    table.add_row({row.load, row.numfabric_mean_norm_fct,
                   row.pfabric_mean_norm_fct,
                   row.pfabric_mean_norm_fct > 0
                       ? row.numfabric_mean_norm_fct / row.pfabric_mean_norm_fct
                       : std::numeric_limits<double>::quiet_NaN(),
                   row.numfabric_completed, row.pfabric_completed,
                   row.numfabric_incomplete, row.pfabric_incomplete});
  }
}

// ---------------------------------------------------------------------------
// resource-pooling (Fig. 8): multipath sub-flows with/without pooling.
// ---------------------------------------------------------------------------

void run_resource_pooling(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::PoolingOptions options;
  apply_thread_context(ctx, options);
  options.topology.hosts_per_leaf = static_cast<int>(
      ctx.options.get_int("hosts_per_leaf", scale.pooling_hosts_per_leaf));
  options.topology.num_leaves = static_cast<int>(
      ctx.options.get_int("leaves", scale.pooling_leaves));
  options.topology.num_spines = static_cast<int>(
      ctx.options.get_int("spines", scale.pooling_spines));
  options.topology.spine_rate_bps =
      ctx.options.get_double("spine_gbps", 10.0) * 1e9;  // Fig. 8: all-10G
  options.subflow_counts = ctx.options.get_int_list(
      "subflows", ctx.full_scale ? std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}
                                 : std::vector<int>{1, 2, 4, 8});
  options.warmup = ms_time(ctx.options.get_double(
      "warmup_ms", sim::to_seconds(scale.warmup) * 1e3));
  options.measure = ms_time(ctx.options.get_double(
      "measure_ms", sim::to_seconds(scale.measure) * 1e3));
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 2));

  MetricTable& totals = ctx.metrics.table(
      "throughput", {"mode", "subflows", "fraction_of_optimal"});
  MetricTable& ranks = ctx.metrics.table(
      "per_flow_rank", {"mode", "subflows", "rank", "fraction_of_nic"});
  for (const bool pooling : {true, false}) {
    options.resource_pooling = pooling;
    const exp::PoolingResult result = exp::run_pooling_experiment(options);
    const std::string mode = pooling ? "pooling" : "no-pooling";
    for (const auto& row : result.rows) {
      totals.add_row({mode, row.subflows, row.total_throughput_fraction});
      for (std::size_t r = 0; r < row.per_flow_fraction.size(); ++r) {
        ranks.add_row({mode, row.subflows, static_cast<std::int64_t>(r),
                       row.per_flow_fraction[r]});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// bwfunc-sweep (Fig. 9) and bwfunc-pooling (Fig. 10).
// ---------------------------------------------------------------------------

void run_bwfunc_sweep(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::BwFuncSweepOptions options;
  options.capacities_gbps = ctx.options.get_double_list(
      "capacities_gbps", {5, 10, 15, 20, 25, 30, 35});
  options.alpha = ctx.options.get_double("alpha", 5.0);
  options.slowdown = ctx.options.get_double("slowdown", 4.0);
  // Measurement windows track exp::Scale (quick 8/12 ms, full 10/20 ms),
  // matching the seed fig9 bench.
  options.warmup = ms_time(ctx.options.get_double(
      "warmup_ms", sim::to_seconds(scale.warmup) * 1e3));
  options.measure = ms_time(ctx.options.get_double(
      "measure_ms", sim::to_seconds(scale.measure) * 1e3));
  const exp::BwFuncSweepResult result = exp::run_bwfunc_sweep(options);

  MetricTable& table = ctx.metrics.table(
      "bwfunc", {"capacity_gbps", "flow1_gbps", "flow2_gbps",
                 "expected1_gbps", "expected2_gbps"});
  for (const auto& row : result.rows) {
    table.add_row({row.capacity_gbps, row.flow1_gbps, row.flow2_gbps,
                   row.expected1_gbps, row.expected2_gbps});
  }
}

void run_bwfunc_pooling(RunContext& ctx) {
  exp::BwFuncPoolingOptions options;
  options.alpha = ctx.options.get_double("alpha", 5.0);
  options.slowdown = ctx.options.get_double("slowdown", 4.0);
  options.middle_before_gbps = ctx.options.get_double("middle_before_gbps", 5);
  options.middle_after_gbps = ctx.options.get_double("middle_after_gbps", 17);
  options.switch_time = ms_time(ctx.options.get_double("switch_ms", 10));
  options.end_time = ms_time(ctx.options.get_double("end_ms", 20));
  const exp::BwFuncPoolingResult result = exp::run_bwfunc_pooling(options);

  MetricTable& phases = ctx.metrics.table(
      "phases", {"phase", "flow1_gbps", "flow2_gbps", "expected1_gbps",
                 "expected2_gbps"});
  phases.add_row({"before", result.flow1_before_gbps, result.flow2_before_gbps,
                  result.expected1_before_gbps, result.expected2_before_gbps});
  phases.add_row({"after", result.flow1_after_gbps, result.flow2_after_gbps,
                  result.expected1_after_gbps, result.expected2_after_gbps});
  MetricTable& series = ctx.metrics.table(
      "series", {"time_ms", "flow1_bps", "flow2_bps"});
  for (const auto& [at_ms, f1, f2] : result.series) {
    series.add_row({at_ms, f1, f2});
  }
}

// ---------------------------------------------------------------------------
// Traffic families: incast / permutation / shuffle.
// ---------------------------------------------------------------------------

void emit_fct_table(RunContext& ctx, int completed, int incomplete,
                    std::vector<double> fct_us) {
  MetricTable& fct = ctx.metrics.table(
      "fct", {"completed", "incomplete", "min_us", "mean_us", "p50_us",
              "p95_us", "p99_us", "max_us"});
  std::sort(fct_us.begin(), fct_us.end());
  fct.add_row({completed, incomplete,
               fct_us.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : fct_us.front(),
               fct_us.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : stats::mean(fct_us),
               percentile_or_nan(fct_us, 50), percentile_or_nan(fct_us, 95),
               percentile_or_nan(fct_us, 99),
               fct_us.empty() ? std::numeric_limits<double>::quiet_NaN()
                              : fct_us.back()});
}

void emit_traffic_result(RunContext& ctx, transport::Scheme scheme,
                         const exp::TrafficResult& result) {
  ctx.metrics.scalar("transport", scheme_token(scheme));
  ctx.metrics.scalar("flow_count", result.flow_count);
  ctx.metrics.scalar("sim_events", result.sim_events);
  ctx.metrics.scalar("queue_drops", result.queue_drops);

  if (!result.flow_rates_bps.empty()) {
    MetricTable& summary = ctx.metrics.table(
        "throughput", {"total_gbps", "optimal_gbps", "fraction", "jain_index",
                       "min_flow_mbps", "median_flow_mbps", "max_flow_mbps"});
    std::vector<double> rates = result.flow_rates_bps;
    std::sort(rates.begin(), rates.end());
    summary.add_row({result.total_goodput_bps / 1e9, result.optimal_bps / 1e9,
                     result.total_goodput_bps / result.optimal_bps,
                     result.jain_index, rates.front() / 1e6,
                     stats::percentile(rates, 50) / 1e6, rates.back() / 1e6});
    MetricTable& flows = ctx.metrics.table("flow_rates", {"rank", "rate_mbps"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
      flows.add_row({static_cast<std::int64_t>(i), rates[i] / 1e6});
    }
  }
  if (result.completed + result.incomplete > 0) {
    emit_fct_table(ctx, result.completed, result.incomplete, result.fct_us);
  }
  emit_shard_perf(ctx, result.shard_perf);
}

void run_traffic(RunContext& ctx, exp::TrafficPattern pattern,
                 std::int64_t default_flow_kb) {
  const exp::Scale scale = scale_for(ctx);
  exp::TrafficOptions options;
  apply_thread_context(ctx, options);
  options.scheme = scheme_for(ctx);
  const FabricChoice fab = fabric_choice(ctx, scale);
  options.topology = fab.leaf_spine;
  options.jellyfish = fab.jellyfish;
  options.k_paths = fab.k_paths;
  options.core_buffer_bytes =
      static_cast<std::size_t>(kb_to_bytes(ctx, "core_buffer_kb", 0));
  options.pattern = pattern;
  options.incast_fanin = static_cast<int>(
      ctx.options.get_int("fanin", std::min(16, fab.hosts - 1)));
  options.flow_size_bytes = kb_to_bytes(ctx, "flow_kb", default_flow_kb);
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.warmup = ms_time(ctx.options.get_double(
      "warmup_ms", sim::to_seconds(scale.warmup) * 1e3));
  options.measure = ms_time(ctx.options.get_double(
      "measure_ms", sim::to_seconds(scale.measure) * 1e3));
  options.horizon = ms_time(ctx.options.get_double("horizon_ms", 5'000));
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 1));
  if (fidelity_param(ctx) == Fidelity::kFlow) {
    require_flow_capable_scheme(options.scheme);
    emit_traffic_result(
        ctx, options.scheme,
        exp::run_traffic_experiment_flow(options,
                                         resolve_interval_param(ctx, 0),
                                         ctx.solver_threads,
                                         incremental_param(ctx)));
    return;
  }
  emit_traffic_result(ctx, options.scheme, exp::run_traffic_experiment(options));
}

// ---------------------------------------------------------------------------
// FCT sweeps over a measured trace (web-search / data-mining).
// ---------------------------------------------------------------------------

void run_fct_sweep(RunContext& ctx, const std::string& default_workload) {
  const exp::Scale scale = scale_for(ctx);
  MetricTable& table = ctx.metrics.table(
      "fct_sweep", {"load", "completed", "incomplete", "mean_norm_fct",
                    "p50_norm_fct", "p95_norm_fct", "p99_norm_fct"});
  MetricTable& bins = ctx.metrics.table(
      "fct_by_size", {"load", "bin_bdps", "count", "mean_norm_fct"});

  const Fidelity fidelity = fidelity_param(ctx);
  const std::vector<double> loads = loads_param(ctx, {0.2, 0.4, 0.6, 0.8});
  for (const double load : loads) {
    exp::DynamicWorkloadOptions options;
    apply_thread_context(ctx, options);
    options.scheme = scheme_for(ctx);
    const FabricChoice fab = fabric_choice(ctx, scale);
    options.topology = fab.leaf_spine;
    options.jellyfish = fab.jellyfish;
    options.k_paths = fab.k_paths;
    options.sizes = &distribution_param(ctx, default_workload);
    options.load = load;
    options.flow_count = static_cast<int>(
        ctx.options.get_int("flows", scale.dynamic_flow_count / 2));
    options.alpha = ctx.options.get_double("alpha", 1.0);
    options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 13));
    options.horizon = ms_time(ctx.options.get_double("horizon_ms", 20'000));
    if (fidelity == Fidelity::kFlow) require_flow_capable_scheme(options.scheme);
    const exp::DynamicWorkloadResult result =
        fidelity == Fidelity::kFlow
            ? exp::run_dynamic_workload_flow(options,
                                             resolve_interval_param(ctx, 0),
                                             incremental_param(ctx))
            : exp::run_dynamic_workload(options);

    // Normalized FCT = measured FCT / oracle-ideal FCT = ideal_rate / rate.
    std::vector<double> norms;
    std::vector<std::vector<double>> by_bin(5);
    for (const auto& flow : result.flows) {
      const double norm = flow.ideal_rate_bps / flow.rate_bps;
      norms.push_back(norm);
      const int bin = exp::bdp_bin(static_cast<double>(flow.size_bytes),
                                   result.bdp_bytes);
      if (bin >= 0) by_bin[static_cast<std::size_t>(bin)].push_back(norm);
    }
    table.add_row({load, static_cast<std::int64_t>(result.flows.size()),
                   result.incomplete,
                   norms.empty() ? std::numeric_limits<double>::quiet_NaN()
                                 : stats::mean(norms),
                   percentile_or_nan(norms, 50), percentile_or_nan(norms, 95),
                   percentile_or_nan(norms, 99)});
    for (std::size_t b = 0; b < by_bin.size(); ++b) {
      if (by_bin[b].empty()) continue;
      bins.add_row({load, exp::kBdpBinLabels[b],
                    static_cast<std::int64_t>(by_bin[b].size()),
                    stats::mean(by_bin[b])});
    }
  }
}

// ---------------------------------------------------------------------------
// Oversubscribed-fabric family: oversub-fabric and background-burst.
// ---------------------------------------------------------------------------

void run_oversub_fabric_scenario(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::OversubFabricOptions options;
  apply_thread_context(ctx, options);
  options.scheme = scheme_for(ctx);
  options.topology = leaf_spine_options(ctx, scale);
  options.core_buffer_bytes =
      static_cast<std::size_t>(kb_to_bytes(ctx, "core_buffer_kb", 0));
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.shuffle_flow_bytes = kb_to_bytes(ctx, "shuffle_kb", 50);
  options.warmup = ms_time(ctx.options.get_double("warmup_ms", 2));
  options.measure = ms_time(ctx.options.get_double("measure_ms", 4));
  options.horizon = ms_time(ctx.options.get_double("horizon_ms", 200));
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 1));
  const exp::OversubFabricResult result = exp::run_oversub_fabric(options);

  ctx.metrics.scalar("transport", scheme_token(options.scheme));
  ctx.metrics.scalar("oversubscription", result.oversubscription);
  ctx.metrics.scalar("sim_events", result.sim_events);
  ctx.metrics.scalar("queue_drops", result.queue_drops);

  MetricTable& summary = ctx.metrics.table(
      "core_summary", {"oversub_ratio", "core_links", "util_mean", "util_min",
                       "util_max", "price_convergence_us"});
  summary.add_row({result.oversubscription,
                   static_cast<std::int64_t>(result.core_links.size()),
                   result.core_util_mean, result.core_util_min,
                   result.core_util_max, result.price_convergence_us});

  MetricTable& per_link =
      ctx.metrics.table("core_utilization", {"link", "utilization", "price"});
  for (const auto& stats : result.core_links) {
    per_link.add_row({stats.name, stats.utilization, stats.price});
  }

  MetricTable& background =
      ctx.metrics.table("background", {"flows", "goodput_gbps", "jain_index"});
  background.add_row({result.background_flows,
                      result.background_goodput_bps / 1e9,
                      result.background_jain});

  emit_fct_table(ctx, result.shuffle_completed, result.shuffle_incomplete,
                 result.shuffle_fct_us);
  emit_shard_perf(ctx, result.shard_perf);
}

void run_background_burst_scenario(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::BackgroundBurstOptions options;
  apply_thread_context(ctx, options);
  options.scheme = scheme_for(ctx);
  options.topology = leaf_spine_options(ctx, scale);
  options.core_buffer_bytes =
      static_cast<std::size_t>(kb_to_bytes(ctx, "core_buffer_kb", 0));
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.background_load = ctx.options.get_double("background_load", 0.5);
  options.burst_fanin = static_cast<int>(ctx.options.get_int("fanin", 8));
  options.burst_bytes = kb_to_bytes(ctx, "burst_kb", 20);
  options.burst_interval =
      ms_time(ctx.options.get_double("burst_interval_ms", 1));
  options.num_bursts = static_cast<int>(ctx.options.get_int("bursts", 4));
  options.warmup = ms_time(ctx.options.get_double("warmup_ms", 2));
  options.horizon = ms_time(ctx.options.get_double("horizon_ms", 500));
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 1));
  const exp::BackgroundBurstResult result = exp::run_background_burst(options);

  ctx.metrics.scalar("transport", scheme_token(options.scheme));
  ctx.metrics.scalar("oversubscription", result.oversubscription);
  ctx.metrics.scalar("sim_events", result.sim_events);
  ctx.metrics.scalar("queue_drops", result.queue_drops);

  MetricTable& bursts = ctx.metrics.table(
      "bursts", {"burst", "start_ms", "completed", "incomplete", "fct_p50_us",
                 "fct_max_us", "background_during_gbps",
                 "background_quiet_gbps", "throughput_ratio"});
  for (const auto& stats : result.bursts) {
    bursts.add_row({stats.index, stats.start_ms, stats.completed,
                    stats.incomplete, stats.fct_p50_us, stats.fct_max_us,
                    stats.background_during_bps / 1e9,
                    stats.background_quiet_bps / 1e9,
                    stats.background_quiet_bps > 0
                        ? stats.background_during_bps /
                              stats.background_quiet_bps
                        : std::numeric_limits<double>::quiet_NaN()});
  }

  MetricTable& summary = ctx.metrics.table(
      "burst_summary",
      {"bursts", "flows", "completed", "incomplete", "fct_p50_us", "fct_p99_us",
       "fct_max_us", "background_flows", "background_goodput_gbps"});
  std::vector<double> fcts = result.burst_fct_us;
  std::sort(fcts.begin(), fcts.end());
  summary.add_row({static_cast<std::int64_t>(result.bursts.size()),
                   result.burst_flows, result.burst_completed,
                   result.burst_incomplete, percentile_or_nan(fcts, 50),
                   percentile_or_nan(fcts, 99),
                   fcts.empty() ? std::numeric_limits<double>::quiet_NaN()
                                : fcts.back(),
                   result.background_flows,
                   result.background_goodput_bps / 1e9});
  emit_shard_perf(ctx, result.shard_perf);
}

// ---------------------------------------------------------------------------
// sensitivity (Fig. 6): one semi-dynamic point at explicit NUMFabric control
// parameters.  One run = one grid point; the Fig. 6 panels are `--sweep`
// grids over dt_us / interval_us / alpha x slowdown (see bench/fig6).
// ---------------------------------------------------------------------------

void run_sensitivity(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::SemiDynamicOptions options;
  apply_thread_context(ctx, options);
  options.scheme = ctx.scheme;
  options.topology = leaf_spine_options(ctx, scale);
  // Sensitivity grids rerun the scenario at many points; defaults are a
  // quarter of the convergence scenario's population (the seed fig6 setup).
  options.num_paths =
      static_cast<int>(ctx.options.get_int("paths", scale.num_paths / 4));
  options.initial_active = static_cast<int>(
      ctx.options.get_int("initial_active", scale.initial_active / 4));
  options.flows_per_event = static_cast<int>(
      ctx.options.get_int("flows_per_event", scale.flows_per_event / 4));
  options.num_events = static_cast<int>(
      ctx.options.get_int("events", ctx.full_scale ? 30 : 4));
  options.min_active =
      static_cast<int>(ctx.options.get_int("min_active", scale.min_active / 4));
  options.max_active =
      static_cast<int>(ctx.options.get_int("max_active", scale.max_active / 4));
  options.convergence.timeout = ms_time(ctx.options.get_double(
      "timeout_ms", sim::to_seconds(scale.convergence_timeout) * 1e3));
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 21));

  transport::NumFabricConfig& config = options.fabric.numfabric;
  const double dt_us =
      ctx.options.get_double("dt_us", sim::to_micros(config.dt_slack));
  config.dt_slack = static_cast<sim::TimeNs>(dt_us * sim::kMicrosecond);
  const double interval_us = ctx.options.get_double(
      "interval_us", sim::to_micros(config.price_update_interval));
  config.price_update_interval =
      static_cast<sim::TimeNs>(interval_us * sim::kMicrosecond);
  config.eta = ctx.options.get_double("eta", config.eta);
  config.beta = ctx.options.get_double("beta", config.beta);
  const double slowdown = ctx.options.get_double("slowdown", 1.0);
  config = config.slowed_down(slowdown);

  const exp::SemiDynamicResult result = exp::run_semi_dynamic(options);
  MetricTable& table = ctx.metrics.table(
      "sensitivity",
      {"dt_us", "interval_us", "alpha", "eta", "beta", "slowdown",
       "events_measured", "events_converged", "converged_fraction",
       "median_us", "p95_us"});
  table.add_row(
      {dt_us, interval_us, options.alpha, config.eta, config.beta, slowdown,
       result.events_measured, result.events_converged,
       result.events_measured > 0
           ? static_cast<double>(result.events_converged) /
                 result.events_measured
           : 0.0,
       percentile_or_nan(result.convergence_times_us, 50),
       percentile_or_nan(result.convergence_times_us, 95)});
  emit_shard_perf(ctx, result.shard_perf);
}

// ---------------------------------------------------------------------------
// trace-replay: external workload trace in, FCT metrics out.
// ---------------------------------------------------------------------------

void run_trace_replay_scenario(RunContext& ctx) {
  const exp::Scale scale = scale_for(ctx);
  exp::TraceReplayOptions options;
  apply_thread_context(ctx, options);
  options.scheme = ctx.scheme;
  options.topology = leaf_spine_options(ctx, scale);
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.horizon = ms_time(ctx.options.get_double("horizon_ms", 20'000));
  const std::string path = ctx.options.get("trace", "");
  options.trace =
      path.empty() ? workload::example_trace() : workload::load_trace_csv(path);
  const Fidelity fidelity = fidelity_param(ctx);
  if (fidelity == Fidelity::kFlow) require_flow_capable_scheme(options.scheme);
  const exp::TraceReplayResult result =
      fidelity == Fidelity::kFlow
          ? exp::run_trace_replay_flow(options, resolve_interval_param(ctx, 0),
                                       ctx.solver_threads,
                                       incremental_param(ctx))
          : exp::run_trace_replay(options);

  ctx.metrics.scalar("transport", scheme_token(ctx.scheme));
  ctx.metrics.scalar("trace", path.empty() ? "<builtin>" : path);
  ctx.metrics.scalar("sim_events", result.sim_events);

  std::vector<double> fcts;
  for (const auto& flow : result.flows) {
    if (flow.completed) fcts.push_back(flow.fct_seconds * 1e6);
  }
  std::sort(fcts.begin(), fcts.end());
  MetricTable& fct = ctx.metrics.table(
      "fct", {"completed", "incomplete", "min_us", "mean_us", "p50_us",
              "p95_us", "p99_us", "max_us"});
  fct.add_row({result.completed, result.incomplete,
               fcts.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : fcts.front(),
               fcts.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : stats::mean(fcts),
               percentile_or_nan(fcts, 50), percentile_or_nan(fcts, 95),
               percentile_or_nan(fcts, 99),
               fcts.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : fcts.back()});
  MetricTable& flows = ctx.metrics.table(
      "flows",
      {"src", "dst", "size_bytes", "arrival_ms", "completed", "fct_us"});
  for (const auto& flow : result.flows) {
    flows.add_row({flow.src, flow.dst,
                   static_cast<std::int64_t>(flow.size_bytes),
                   flow.arrival_seconds * 1e3, flow.completed ? 1 : 0,
                   flow.completed ? flow.fct_seconds * 1e6
                                  : std::numeric_limits<double>::quiet_NaN()});
  }
}

// ---------------------------------------------------------------------------
// mega-fct: >= 10^5 concurrent flows through the flow-fluid engine on a
// virtual (index-arithmetic) leaf-spine.  Flow-fidelity only by construction:
// the packet substrate cannot represent this scale.
// ---------------------------------------------------------------------------

void run_mega_fct_scenario(RunContext& ctx) {
  // Unlike the dual-fidelity scenarios this one *defaults* to flow (matching
  // its declared ParamSpec default); only an explicit fidelity=packet lands
  // in the rejection below.
  if (ctx.options.get("fidelity", "flow") != "flow") {
    throw std::invalid_argument(
        "mega-fct is flow-fidelity only (a packet run at 10^5+ concurrent "
        "flows is the problem this scenario exists to avoid); drop "
        "fidelity=packet");
  }
  require_flow_capable_scheme(scheme_for(ctx));

  exp::MegaFctOptions options;
  const PresetDefaults preset = preset_defaults(preset_param(ctx));
  const std::string shape = ctx.options.get("topology", "32x32x8");
  if (shape.rfind("jellyfish:", 0) == 0) {
    net::JellyfishOptions jf;
    char trailing = 0;
    if (std::sscanf(shape.c_str(), "jellyfish:%d,%d,%d%c", &jf.switches,
                    &jf.ports, &jf.hosts, &trailing) != 3 ||
        jf.switches < 1 || jf.ports < 1 || jf.hosts < 1) {
      throw std::invalid_argument(
          "bad topology '" + shape +
          "' (expected jellyfish:switches,ports,hosts or HxLxS)");
    }
    jf.seed = static_cast<std::uint64_t>(ctx.options.get_int("jf_seed", 1));
    jf.host_rate_bps =
        ctx.options.get_double("host_gbps", preset.host_gbps) * 1e9;
    jf.switch_rate_bps =
        ctx.options.get_double("spine_gbps", preset.spine_gbps) * 1e9;
    options.jellyfish = jf;
    const std::int64_t k = ctx.options.get_int("k_paths", 8);
    if (k < 1) throw std::invalid_argument("k_paths must be >= 1");
    options.k_paths = static_cast<int>(k);
  } else {
    char trailing = 0;
    if (std::sscanf(shape.c_str(), "%dx%dx%d%c", &options.fabric.hosts_per_leaf,
                    &options.fabric.leaves, &options.fabric.spines,
                    &trailing) != 3 ||
        options.fabric.hosts_per_leaf < 1 || options.fabric.leaves < 1 ||
        options.fabric.spines < 1) {
      throw std::invalid_argument("bad topology '" + shape +
                                  "' (expected HxLxS, e.g. 32x32x8)");
    }
  }
  // Gbps knobs -> the engine's Mbps rate units.
  options.fabric.host_rate =
      ctx.options.get_double("host_gbps", preset.host_gbps) * 1e3;
  options.fabric.leaf_spine_rate =
      ctx.options.get_double("spine_gbps", preset.spine_gbps) * 1e3;
  options.concurrent =
      static_cast<int>(ctx.options.get_int("concurrent", 100'000));
  options.sizes = &distribution_param(ctx, "websearch");
  options.alpha = ctx.options.get_double("alpha", 1.0);
  options.resolve_interval_seconds = resolve_interval_param(ctx, 1000);
  options.horizon_seconds = ctx.options.get_double("horizon_s", 30.0);
  options.solver_tolerance = ctx.options.get_double("tolerance", 1e-5);
  options.solver_threads = ctx.solver_threads;
  options.incremental = incremental_param(ctx);
  options.seed = static_cast<std::uint64_t>(ctx.options.get_int("seed", 1));
  const exp::MegaFctResult result = exp::run_mega_fct(options);

  ctx.metrics.scalar("transport", scheme_token(scheme_for(ctx)));
  ctx.metrics.scalar("hosts", result.hosts);
  ctx.metrics.scalar("links", result.links);
  ctx.metrics.scalar("flow_count", options.concurrent);
  ctx.metrics.scalar("peak_active",
                     static_cast<std::int64_t>(result.sim.peak_active));
  ctx.metrics.scalar("epochs", result.sim.epochs);
  ctx.metrics.scalar("resolves", result.sim.resolves);
  ctx.metrics.scalar("solver_sweeps", result.sim.solver_sweeps);
  ctx.metrics.scalar("solver_relaxations", result.sim.solver_relaxations);
  ctx.metrics.scalar("end_ms", result.sim.end_seconds * 1e3);

  std::vector<double> fct_us;
  fct_us.reserve(result.sim.fct_seconds.size());
  for (const double fct : result.sim.fct_seconds) {
    if (fct >= 0) fct_us.push_back(fct * 1e6);
  }
  emit_fct_table(ctx, result.sim.completed, result.sim.incomplete,
                 std::move(fct_us));
}

// ---------------------------------------------------------------------------
// Registration.
// ---------------------------------------------------------------------------

std::vector<ParamSpec> semi_dynamic_params() {
  return merge_params(
      topology_params(),
      {{"paths", "240", "random host-pair paths (full scale: 1000)"},
       {"initial_active", "100", "flows active before the first event"},
       {"flows_per_event", "25", "flows started/stopped per network event"},
       {"events", "8", "measured network events (full scale: 100)"},
       {"min_active", "75", "lower bound on concurrently active flows"},
       {"max_active", "125", "upper bound on concurrently active flows"},
       {"alpha", "1", "alpha-fairness of the NUM objective"},
       {"seed", "1", "workload RNG seed"}});
}

}  // namespace

void register_builtin_scenarios() {
  ScenarioRegistry& registry = ScenarioRegistry::global();
  if (!registry.empty()) return;  // idempotent

  registry.add(Scenario{
      .name = "convergence",
      .description = "semi-dynamic convergence-time CDF across transports",
      .figure = "Fig. 4a",
      .params = merge_params(semi_dynamic_params(),
                             {{"timeout_ms", "20",
                               "per-event convergence verdict timeout"},
                              {"transports", "<--transport>",
                               "comma list of schemes to compare"}}),
      .run = run_convergence,
      .supports_shards = true});

  registry.add(Scenario{
      .name = "rate-timeseries",
      .description = "rate trace of one tracked flow across network events",
      .figure = "Fig. 4b,c",
      // Defaults are half the convergence scenario's population (the seed
      // fig4bc setup) and must match run_rate_timeseries' fallbacks.
      .params = merge_params(
          topology_params(),
          {{"paths", "120", "random host-pair paths (full scale: 500)"},
           {"initial_active", "50", "flows active before the first event"},
           {"flows_per_event", "12", "flows started/stopped per network event"},
           {"events", "8", "network events to trace"},
           {"min_active", "37", "lower bound on concurrently active flows"},
           {"max_active", "62", "upper bound on concurrently active flows"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"seed", "7", "workload RNG seed"},
           {"sample_us", "20", "trace sample interval"},
           {"event_interval_ms", "4", "fixed gap between network events"}}),
      .run = run_rate_timeseries,
      .supports_shards = true});

  registry.add(Scenario{
      .name = "dynamic-deviation",
      .description =
          "deviation from fluid-oracle rates under Poisson arrivals, by "
          "BDP-relative size bin",
      .figure = "Fig. 5",
      .params = merge_params(
          topology_params(),
          {{"workload", "websearch", "websearch | enterprise | datamining"},
           {"load", "0.6", "offered load, fraction of host NIC capacity"},
           {"flows", "1200", "number of Poisson arrivals"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"horizon_ms", "20000", "hard stop for stragglers"},
           {"seed", "11", "workload RNG seed"},
           {"transports", "<--transport>",
            "comma list of schemes to compare"}}),
      .run = run_dynamic_deviation});

  registry.add(Scenario{
      .name = "fct-vs-pfabric",
      .description =
          "mean normalized FCT vs load: FCT-min utility against pFabric "
          "(web-search trace)",
      .figure = "Fig. 7",
      .params = merge_params(
          topology_params(),
          {{"loads", "0.2,0.4,0.6,0.8", "offered loads to sweep"},
           {"load", "", "single offered load (overrides loads)"},
           {"flows", "1200", "Poisson arrivals per load"},
           {"epsilon", "0.125", "FCT-utility exponent (Table 1 row 3)"},
           {"slowdown", "2", "control-loop slowdown (§6.2)"},
           {"seed", "5", "workload RNG seed"}}),
      .run = run_fct_vs_pfabric});

  registry.add(Scenario{
      .name = "resource-pooling",
      .description =
          "multipath sub-flows with and without the pooling (aggregate) "
          "utility on an all-10G leaf-spine",
      .figure = "Fig. 8",
      .params = {{"hosts_per_leaf", "8", "hosts per leaf (full scale: 16)"},
                 {"leaves", "4", "leaf switches (full scale: 8)"},
                 {"spines", "8", "spine switches (full scale: 16)"},
                 {"spine_gbps", "10", "spine link rate (Fig. 8: all-10G)"},
                 {"subflows", "1,2,4,8", "sub-flow counts to sweep"},
                 {"warmup_ms", "8", "settling time before measurement"},
                 {"measure_ms", "12", "goodput measurement window"},
                 {"seed", "2", "permutation RNG seed"}},
      .run = run_resource_pooling});

  registry.add(Scenario{
      .name = "bwfunc-sweep",
      .description =
          "bandwidth-function utilities vs the BwE water-filling allocation "
          "over a capacity sweep",
      .figure = "Fig. 9",
      .params = {{"capacities_gbps", "5,10,15,20,25,30,35",
                  "bottleneck capacities to sweep"},
                 {"alpha", "5", "derived-utility steepness (§6.3)"},
                 {"slowdown", "4", "control-loop slowdown for extreme alphas"},
                 {"warmup_ms", "8", "settling time (full scale: 10)"},
                 {"measure_ms", "12", "measurement window (full scale: 20)"}},
      .run = run_bwfunc_sweep});

  registry.add(Scenario{
      .name = "bwfunc-pooling",
      .description =
          "bandwidth functions composed with resource pooling; middle link "
          "steps 5 -> 17 Gbps mid-run",
      .figure = "Fig. 10",
      .params = {{"alpha", "5", "derived-utility steepness"},
                 {"slowdown", "4", "control-loop slowdown"},
                 {"middle_before_gbps", "5", "middle link rate before the step"},
                 {"middle_after_gbps", "17", "middle link rate after the step"},
                 {"switch_ms", "10", "when the middle link steps"},
                 {"end_ms", "20", "end of the run"}},
      .run = run_bwfunc_pooling});

  registry.add(Scenario{
      .name = "incast",
      .description =
          "synchronized fan-in burst: `fanin` senders to one receiver "
          "(FCT mode; flow_kb=0 for long-running rate mode)",
      .figure = "",
      .params = merge_params(
          merge_params(topology_params(true), fidelity_params()),
          {transport_param(),
           {"core_buffer_kb", "0", "core per-port buffer KB (0 = edge buffer)"},
           {"fanin", "16", "concurrent senders"},
           {"flow_kb", "64", "KB per sender (0 = long-running)"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"warmup_ms", "8", "rate mode: settling time"},
           {"measure_ms", "12", "rate mode: measurement window"},
           {"horizon_ms", "5000", "FCT mode: hard stop"},
           {"seed", "1", "sender/receiver selection seed"}}),
      .run = [](RunContext& ctx) {
        run_traffic(ctx, exp::TrafficPattern::kIncast, 64);
      },
      .supports_shards = true});

  registry.add(Scenario{
      .name = "permutation",
      .description =
          "random perfect-matching traffic, long-running flows: throughput "
          "fraction and Jain fairness",
      .figure = "",
      .params = merge_params(
          merge_params(topology_params(true), fidelity_params()),
          {transport_param(),
           {"core_buffer_kb", "0", "core per-port buffer KB (0 = edge buffer)"},
           {"flow_kb", "0", "KB per flow (0 = long-running)"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"warmup_ms", "8", "settling time"},
           {"measure_ms", "12", "measurement window"},
           {"horizon_ms", "5000", "FCT mode: hard stop"},
           {"seed", "1", "matching RNG seed"}}),
      .run = [](RunContext& ctx) {
        run_traffic(ctx, exp::TrafficPattern::kPermutation, 0);
      },
      .supports_shards = true});

  registry.add(Scenario{
      .name = "shuffle",
      .description =
          "all-to-all shuffle wave: every host pair transfers flow_kb, "
          "completion times reported",
      .figure = "",
      .params = merge_params(
          merge_params(topology_params(true), fidelity_params()),
          {transport_param(),
           {"core_buffer_kb", "0", "core per-port buffer KB (0 = edge buffer)"},
           {"flow_kb", "250", "KB per host pair (0 = long-running)"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"warmup_ms", "8", "rate mode: settling time"},
           {"measure_ms", "12", "rate mode: measurement window"},
           {"horizon_ms", "5000", "hard stop"},
           {"seed", "1", "RNG seed"}}),
      .run = [](RunContext& ctx) {
        run_traffic(ctx, exp::TrafficPattern::kAllToAll, 250);
      },
      .supports_shards = true});

  registry.add(Scenario{
      .name = "websearch-fct",
      .description =
          "normalized-FCT sweep over loads, web-search flow sizes, any "
          "transport",
      .figure = "",
      .params = merge_params(
          merge_params(topology_params(true), fidelity_params()),
          {transport_param(),
           {"workload", "websearch", "websearch | enterprise | datamining"},
           {"loads", "0.2,0.4,0.6,0.8", "offered loads to sweep"},
           {"load", "", "single offered load (overrides loads)"},
           {"flows", "600", "Poisson arrivals per load"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"horizon_ms", "20000", "hard stop for stragglers"},
           {"seed", "13", "workload RNG seed"}}),
      .run = [](RunContext& ctx) { run_fct_sweep(ctx, "websearch"); }});

  registry.add(Scenario{
      .name = "datamining-fct",
      .description =
          "normalized-FCT sweep over loads, data-mining (VL2-style) flow "
          "sizes, any transport",
      .figure = "",
      .params = merge_params(
          merge_params(topology_params(true), fidelity_params()),
          {transport_param(),
           {"workload", "datamining", "websearch | enterprise | datamining"},
           {"loads", "0.2,0.4,0.6,0.8", "offered loads to sweep"},
           {"load", "", "single offered load (overrides loads)"},
           {"flows", "600", "Poisson arrivals per load"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"horizon_ms", "20000", "hard stop for stragglers"},
           {"seed", "13", "workload RNG seed"}}),
      .run = [](RunContext& ctx) { run_fct_sweep(ctx, "datamining"); }});

  registry.add(Scenario{
      .name = "oversub-fabric",
      .description =
          "permutation background + all-to-all shuffle wave on a contended "
          "core: core-link utilization, xWI price re-convergence, wave FCTs",
      .figure = "",
      .params = merge_params(
          topology_params(),
          {transport_param(),
           {"core_buffer_kb", "0", "core per-port buffer KB (0 = edge buffer)"},
           {"shuffle_kb", "50", "KB per host pair in the shuffle wave"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"warmup_ms", "2", "background settling time; the wave starts here"},
           {"measure_ms", "4", "utilization / goodput window after the wave"},
           {"horizon_ms", "200", "hard stop for wave stragglers"},
           {"seed", "1", "workload RNG seed"}}),
      .run = run_oversub_fabric_scenario,
      .supports_shards = true});

  registry.add(Scenario{
      .name = "background-burst",
      .description =
          "long-running background flows plus periodic synchronized incast "
          "bursts: burst FCTs vs background-throughput interference",
      .figure = "",
      .params = merge_params(
          topology_params(),
          {transport_param(),
           {"core_buffer_kb", "0", "core per-port buffer KB (0 = edge buffer)"},
           {"background_load", "0.5",
            "fraction of the host permutation kept as background flows"},
           {"fanin", "8", "concurrent senders per burst"},
           {"burst_kb", "20", "KB per sender per burst"},
           {"burst_interval_ms", "1", "gap between synchronized bursts"},
           {"bursts", "4", "number of bursts"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"warmup_ms", "2",
            "background settling time (>= burst_interval_ms / 2)"},
           {"horizon_ms", "500", "hard stop for burst stragglers"},
           {"seed", "1", "workload RNG seed"}}),
      .run = run_background_burst_scenario,
      .supports_shards = true});

  registry.add(Scenario{
      .name = "sensitivity",
      .description =
          "one semi-dynamic convergence point at explicit NUMFabric control "
          "parameters (grid it with --sweep)",
      .figure = "Fig. 6",
      .params = merge_params(
          topology_params(),
          {{"paths", "60", "random host-pair paths (1/4 of convergence)"},
           {"initial_active", "25", "flows active before the first event"},
           {"flows_per_event", "6", "flows started/stopped per network event"},
           {"events", "4", "measured network events (full scale: 30)"},
           {"min_active", "18", "lower bound on concurrently active flows"},
           {"max_active", "31", "upper bound on concurrently active flows"},
           {"timeout_ms", "20", "per-event convergence verdict timeout"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"dt_us", "6", "Swift delay slack d_t (Table 2: 6 us)"},
           {"interval_us", "30", "xWI price update interval (Table 2: 30 us)"},
           {"eta", "5", "xWI under-utilization gain (Eq. 10)"},
           {"beta", "0.5", "xWI price averaging factor (Eq. 11)"},
           {"slowdown", "1", "control-loop slowdown factor (§6.2)"},
           {"seed", "21", "workload RNG seed"}}),
      .run = run_sensitivity,
      .supports_shards = true});

  registry.add(Scenario{
      .name = "trace-replay",
      .description =
          "replay an external arrival/size/src/dst trace CSV and report "
          "flow completion times",
      .figure = "",
      .params = merge_params(
          merge_params(topology_params(), fidelity_params()),
          {{"trace", "",
            "trace CSV path (arrival_s,size_bytes,src,dst); empty = built-in "
            "demo trace"},
           {"alpha", "1", "alpha-fairness of the NUM objective"},
           {"horizon_ms", "20000", "hard stop for stragglers"}}),
      .run = run_trace_replay_scenario});

  registry.add(Scenario{
      .name = "mega-fct",
      .description =
          "10^5-10^6 concurrent flows through the flow-fluid engine on a "
          "virtual leaf-spine (flow fidelity only)",
      .figure = "",
      .params = {{"fidelity", "flow",
                  "flow (this scenario has no packet mode; fidelity=packet "
                  "is rejected)"},
                 {"resolve_us", "1000",
                  "epoch-grid re-solve period in us (must be > 0 at this "
                  "scale)"},
                 {"incremental", "on",
                  "on | off — incremental (worklist) NUM re-solves; same "
                  "tolerance as full solves but not bit-identical"},
                 {"topology", "32x32x8",
                  "virtual fabric shape: HxLxS (hosts_per_leaf x leaves x "
                  "spines) or jellyfish:switches,ports,hosts"},
                 {"host_gbps", "10",
                  "host NIC rate (preset=modern default: 400)"},
                 {"spine_gbps", "40",
                  "leaf-to-spine / switch-to-switch link rate "
                  "(preset=modern: 1600)"},
                 {"preset", "classic",
                  "parameter preset: classic or modern (see topology "
                  "scenarios)"},
                 {"jf_seed", "1",
                  "jellyfish only: random-regular-graph wiring seed"},
                 {"k_paths", "8",
                  "jellyfish only: k-shortest paths per switch pair"},
                 {"concurrent", "100000", "concurrent flows, all at t = 0"},
                 {"workload", "websearch",
                  "websearch | enterprise | datamining"},
                 {"alpha", "1", "alpha-fairness of the NUM objective"},
                 {"horizon_s", "30", "simulated-time hard stop"},
                 {"tolerance", "1e-5",
                  "solver price tolerance (grid FCTs are quantized to "
                  "resolve_us, so 1e-8 precision only buys sweeps)"},
                 {"transport", "<--transport>",
                  "scheme label for the run (numfabric or dgd)"},
                 {"seed", "1", "workload RNG seed"}},
      .run = run_mega_fct_scenario});
}

}  // namespace numfabric::app
