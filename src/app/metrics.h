// Structured metric emission for scenarios: named tables plus run-level
// scalars, serializable as CSV (one block per table) or a single JSON
// document.  Built to pair with stats/summary.h — scenarios typically push
// raw samples through stats::percentile/mean/cdf and record the summaries
// here.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace numfabric::app {

/// One table cell: numeric (default) or text.  Numbers serialize unquoted in
/// JSON and with shortest round-trip formatting in both formats.
class MetricValue {
 public:
  MetricValue(double value) : number_(value) {}          // NOLINT(google-explicit-constructor)
  MetricValue(int value) : number_(value) {}             // NOLINT(google-explicit-constructor)
  MetricValue(std::int64_t value)                        // NOLINT(google-explicit-constructor)
      : number_(static_cast<double>(value)) {}
  MetricValue(std::uint64_t value)                       // NOLINT(google-explicit-constructor)
      : number_(static_cast<double>(value)) {}
  MetricValue(std::string value)                         // NOLINT(google-explicit-constructor)
      : text_(std::move(value)), is_text_(true) {}
  MetricValue(const char* value) : text_(value), is_text_(true) {}  // NOLINT

  bool is_text() const { return is_text_; }
  double number() const { return number_; }
  const std::string& text() const { return text_; }

  /// CSV rendering (no quoting; commas in text are replaced by ';').
  std::string csv() const;
  /// JSON rendering (quoted + escaped for text, bare number otherwise).
  std::string json() const;

 private:
  double number_ = 0;
  std::string text_;
  bool is_text_ = false;
};

class MetricTable {
 public:
  MetricTable(std::string name, std::vector<std::string> columns);

  /// Appends a row; throws std::invalid_argument on column-count mismatch.
  void add_row(std::vector<MetricValue> row);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<MetricValue>>& rows() const { return rows_; }

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<std::vector<MetricValue>> rows_;
};

/// Collects everything one scenario run emits.
class MetricWriter {
 public:
  /// Creates (or returns the existing) table with this name.  A returned
  /// reference stays valid for the writer's lifetime.  Throws if an existing
  /// table's columns differ.
  MetricTable& table(const std::string& name,
                     const std::vector<std::string>& columns);

  /// Run-level scalar (e.g. sim_events, total_drops).
  void scalar(const std::string& name, MetricValue value);

  const std::vector<std::unique_ptr<MetricTable>>& tables() const {
    return tables_;
  }
  const std::vector<std::pair<std::string, MetricValue>>& scalars() const {
    return scalars_;
  }

  /// CSV: `# scalar,<name>,<value>` lines, then per table a `# table,<name>`
  /// marker, a header row and data rows.
  void write_csv(std::ostream& out) const;
  /// One JSON object: {"scalars": {...}, "tables": [{name, columns, rows}]}.
  void write_json(std::ostream& out) const;

 private:
  // Heap nodes so table references stay stable as more tables are added.
  std::vector<std::unique_ptr<MetricTable>> tables_;
  std::vector<std::pair<std::string, MetricValue>> scalars_;
};

}  // namespace numfabric::app
