#include "workload/size_distribution.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace numfabric::workload {

SizeDistribution::SizeDistribution(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("SizeDistribution: need at least 2 points");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].size_bytes <= points_[i - 1].size_bytes ||
        points_[i].cdf <= points_[i - 1].cdf) {
      throw std::invalid_argument("SizeDistribution: points must increase");
    }
  }
  if (points_.front().cdf < 0 || std::abs(points_.back().cdf - 1.0) > 1e-9) {
    throw std::invalid_argument("SizeDistribution: cdf must end at 1");
  }
  // Mean via fine quantile integration (trapezoid over u).
  const int steps = 20'000;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double u = (static_cast<double>(i) + 0.5) / steps;
    sum += quantile(u);
  }
  mean_bytes_ = sum / steps;
}

double SizeDistribution::quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  if (u <= points_.front().cdf) return points_.front().size_bytes;
  auto it = std::lower_bound(points_.begin(), points_.end(), u,
                             [](const Point& p, double v) { return p.cdf < v; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (u - lo.cdf) / (hi.cdf - lo.cdf);
  // Log-linear interpolation in size (sizes span 5 orders of magnitude).
  return std::exp(std::log(lo.size_bytes) +
                  t * (std::log(hi.size_bytes) - std::log(lo.size_bytes)));
}

std::uint64_t SizeDistribution::sample(sim::Rng& rng) const {
  const double size = quantile(rng.uniform());
  return static_cast<std::uint64_t>(std::max(size, 1.0));
}

double SizeDistribution::mean_bytes() const { return mean_bytes_; }

const SizeDistribution& websearch_distribution() {
  // ~53% of flows below 100 KB; 30% above 1 MB carrying ~95% of bytes.
  static const SizeDistribution dist(
      "websearch", {
                       {6'000, 0.00},
                       {10'000, 0.15},
                       {20'000, 0.20},
                       {30'000, 0.30},
                       {50'000, 0.40},
                       {80'000, 0.53},
                       {200'000, 0.60},
                       {1'000'000, 0.70},
                       {2'000'000, 0.80},
                       {5'000'000, 0.90},
                       {10'000'000, 0.97},
                       {30'000'000, 1.00},
                   });
  return dist;
}

const SizeDistribution& enterprise_distribution() {
  // 95% of flows below 10 KB; ~70% are 1-2 packets; a thin multi-MB tail
  // still carries a large share of bytes (heavy-tailed, §6.1).
  static const SizeDistribution dist(
      "enterprise", {
                        {1'000, 0.00},
                        {1'500, 0.40},
                        {3'000, 0.70},
                        {6'000, 0.90},
                        {10'000, 0.95},
                        {100'000, 0.97},
                        {1'000'000, 0.99},
                        {10'000'000, 1.00},
                    });
  return dist;
}

const SizeDistribution& datamining_distribution(bool full_tail) {
  // ~80% of flows under 10 KB; the byte volume concentrates in a sparse
  // 100 MB+ tail (the classic VL2 data-mining shape).  The tail is capped at
  // 300 MB to keep quick-scale sweeps bounded; full-tail runs carry it out
  // to VL2's 1 GB maximum.
  static const SizeDistribution capped(
      "datamining", {
                        {300, 0.00},
                        {1'000, 0.50},
                        {2'000, 0.60},
                        {10'000, 0.80},
                        {100'000, 0.85},
                        {1'000'000, 0.90},
                        {10'000'000, 0.95},
                        {100'000'000, 0.98},
                        {300'000'000, 1.00},
                    });
  static const SizeDistribution full(
      "datamining-full", {
                             {300, 0.00},
                             {1'000, 0.50},
                             {2'000, 0.60},
                             {10'000, 0.80},
                             {100'000, 0.85},
                             {1'000'000, 0.90},
                             {10'000'000, 0.95},
                             {100'000'000, 0.98},
                             {300'000'000, 0.995},
                             {1'000'000'000, 1.00},
                         });
  return full_tail ? full : capped;
}

}  // namespace numfabric::workload
