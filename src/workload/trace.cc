#include "workload/trace.h"

#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/parse.h"

namespace numfabric::workload {
namespace {

using util::trim;

[[noreturn]] void fail(const std::string& source, int line,
                       const std::string& reason) {
  throw std::invalid_argument(source + ":" + std::to_string(line) + ": " +
                              reason);
}

double parse_double_field(const std::string& token, const std::string& source,
                          int line, const char* field) {
  const auto value = util::parse_double(token);
  if (!value) {
    fail(source, line,
         std::string(field) + " '" + token + "' is not a number");
  }
  return *value;
}

std::int64_t parse_int_field(const std::string& token,
                             const std::string& source, int line,
                             const char* field) {
  const auto value = util::parse_int(token);
  if (!value) {
    fail(source, line,
         std::string(field) + " '" + token + "' is not an integer");
  }
  return *value;
}

int parse_host_field(const std::string& token, const std::string& source,
                     int line, const char* field) {
  const std::int64_t value = parse_int_field(token, source, line, field);
  // Narrowing past int would wrap and silently replay the wrong hosts;
  // reject here so the topology-bounds check downstream stays meaningful.
  if (value < 0 || value > std::numeric_limits<int>::max()) {
    fail(source, line,
         std::string(field) + " '" + token + "' is out of host-index range");
  }
  return static_cast<int>(value);
}

bool looks_numeric(const std::string& token) {
  if (token.empty()) return false;
  const char c = token[0];
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
         c == '.';
}

}  // namespace

std::vector<TraceFlow> parse_trace_csv(std::istream& in,
                                       const std::string& source_name) {
  std::vector<TraceFlow> flows;
  std::string line;
  int line_number = 0;
  bool saw_data = false;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    if (trim(line).empty()) continue;

    std::vector<std::string> fields;
    std::istringstream row(line);
    std::string field;
    while (std::getline(row, field, ',')) fields.push_back(trim(field));

    // One optional header row, recognized by a non-numeric first field.
    if (!saw_data && !fields.empty() && !looks_numeric(fields[0])) continue;
    saw_data = true;

    if (fields.size() != 4) {
      fail(source_name, line_number,
           "expected 4 fields (arrival_s,size_bytes,src,dst), got " +
               std::to_string(fields.size()));
    }
    TraceFlow flow;
    flow.arrival_seconds =
        parse_double_field(fields[0], source_name, line_number, "arrival_s");
    if (flow.arrival_seconds < 0) {
      fail(source_name, line_number, "negative arrival time");
    }
    const std::int64_t size =
        parse_int_field(fields[1], source_name, line_number, "size_bytes");
    if (size <= 0) {
      fail(source_name, line_number, "size_bytes must be positive");
    }
    flow.size_bytes = static_cast<std::uint64_t>(size);
    flow.src = parse_host_field(fields[2], source_name, line_number, "src");
    flow.dst = parse_host_field(fields[3], source_name, line_number, "dst");
    if (flow.src == flow.dst) {
      fail(source_name, line_number,
           "src == dst (" + std::to_string(flow.src) + ")");
    }
    flows.push_back(flow);
  }
  return flows;
}

std::vector<TraceFlow> load_trace_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read trace file: " + path);
  return parse_trace_csv(in, path);
}

const std::vector<TraceFlow>& example_trace() {
  // Keep in sync with examples/example_trace.csv: a short incast-plus-
  // crosstraffic pattern on 4 hosts — enough to exercise FCT reporting
  // without a file dependency.
  static const std::vector<TraceFlow> trace = [] {
    std::istringstream csv(
        "arrival_s,size_bytes,src,dst\n"
        "0.0000,20000,0,3\n"
        "0.0000,20000,1,3\n"
        "0.0000,20000,2,3\n"
        "0.0002,150000,0,1\n"
        "0.0004,50000,2,0\n"
        "0.0006,1000000,1,2\n"
        "0.0008,20000,3,0\n"
        "0.0010,80000,3,1\n"
        "0.0012,40000,0,2\n"
        "0.0014,500000,2,1\n"
        "0.0016,30000,1,0\n"
        "0.0018,250000,3,2\n");
    return parse_trace_csv(csv, "<builtin>");
  }();
  return trace;
}

}  // namespace numfabric::workload
