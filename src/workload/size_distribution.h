// Empirical flow-size distributions for the dynamic workloads (§6.1).
//
// The paper samples flow sizes from measurements of a web-search cluster [3]
// and a large enterprise [4].  The raw traces are not public; these are
// synthetic piecewise CDFs matching the descriptive statistics the paper
// quotes (web search: ~50% of flows < 100 KB while 95% of bytes come from
// the 30% of flows > 1 MB; enterprise: 95% of flows < 10 KB and ~70% of
// flows are 1-2 packets).  See DESIGN.md §1.
//
// Sampling interpolates log-linearly in size between CDF breakpoints, which
// reproduces the heavy-tail shape the experiments depend on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.h"

namespace numfabric::workload {

class SizeDistribution {
 public:
  struct Point {
    double size_bytes;
    double cdf;  // P(size <= size_bytes)
  };

  /// Breakpoints must have increasing sizes and increasing cdf ending at 1.
  SizeDistribution(std::string name, std::vector<Point> points);

  /// Inverse-transform sample.
  std::uint64_t sample(sim::Rng& rng) const;

  /// Quantile (u in [0,1]) — exposed for deterministic tests.
  double quantile(double u) const;

  /// Mean flow size, integrated numerically from the CDF.
  double mean_bytes() const;

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<Point> points_;
  double mean_bytes_;
};

/// Web-search workload [3]: heavy-tailed, bytes dominated by multi-MB flows.
const SizeDistribution& websearch_distribution();

/// Enterprise workload [4]: even more skewed; most flows are 1-2 packets.
const SizeDistribution& enterprise_distribution();

/// Data-mining workload (VL2-style, as used by the pFabric evaluation):
/// ~80% of flows under 10 KB while nearly all bytes ride a multi-100MB
/// tail.  Not in the paper's §6 but the standard third datacenter trace for
/// FCT sweeps.  The default tail is capped at 300 MB so quick-scale sweeps
/// stay bounded; `full_tail` (NUMFABRIC_FULL=1 runs) extends it to the
/// VL2-reported 1 GB maximum.
const SizeDistribution& datamining_distribution(bool full_tail = false);

}  // namespace numfabric::workload
