// Traffic scenario generators (§6): random host pairings for the
// semi-dynamic scenario, Poisson arrivals for the dynamic workloads and the
// permutation matrix for the resource-pooling experiment.
#pragma once

#include <cstdint>
#include <vector>

#include "net/node.h"
#include "sim/random.h"
#include "sim/time.h"
#include "workload/size_distribution.h"

namespace numfabric::workload {

struct HostPair {
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
};

/// `count` random ordered pairs of distinct hosts (the semi-dynamic
/// scenario's 1000 random flow paths).
std::vector<HostPair> random_pairs(const std::vector<net::Host*>& hosts,
                                   int count, sim::Rng& rng);

/// The MPTCP-style permutation of Fig. 8: hosts[i] sends to
/// hosts[i + n/2] for i < n/2 (servers 1-64 each send to one server among
/// 65-128), after a random shuffle of the host list.
std::vector<HostPair> permutation_pairs(const std::vector<net::Host*>& hosts,
                                        sim::Rng& rng);

/// Incast: `fanin` distinct random senders all transmitting to one random
/// receiver (the partition/aggregate pattern).  Requires
/// fanin < hosts.size().
std::vector<HostPair> incast_pairs(const std::vector<net::Host*>& hosts,
                                   int fanin, sim::Rng& rng);

/// All-to-all shuffle: every ordered pair of distinct hosts, in a
/// deterministic order (n * (n-1) pairs).
std::vector<HostPair> all_to_all_pairs(const std::vector<net::Host*>& hosts);

struct ArrivedFlow {
  sim::TimeNs arrival = 0;
  std::uint64_t size_bytes = 0;
  HostPair pair;
};

/// Poisson flow arrivals at target `load` (fraction of aggregate host NIC
/// capacity), sizes from `sizes`, random distinct src/dst pairs.
///
/// lambda = load * num_hosts * nic_rate / (8 * mean_size): the paper's "flows
/// arrive as a Poisson process of different rates to simulate different load
/// levels".
std::vector<ArrivedFlow> poisson_flows(const std::vector<net::Host*>& hosts,
                                       double nic_rate_bps, double load,
                                       const SizeDistribution& sizes,
                                       int flow_count, sim::Rng& rng);

/// Host-object-free flow record for fabrics that exist only as index
/// arithmetic (flowsim::VirtualLeafSpine — no net::Host to point at).
struct IndexFlow {
  std::uint64_t size_bytes = 0;
  int src = 0;
  int dst = 0;
};

/// `count` flows over hosts [0, num_hosts): sizes from `sizes`, uniformly
/// random distinct src/dst (same draw sequence as random_pairs).  All flows
/// are concurrent — this is the mega-fct batch, not an arrival process.
std::vector<IndexFlow> batch_index_flows(int num_hosts, int count,
                                         const SizeDistribution& sizes,
                                         sim::Rng& rng);

}  // namespace numfabric::workload
