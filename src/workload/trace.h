// External workload traces: a CSV of flow arrivals (arrival time, size,
// source host, destination host) parsed into TraceFlow records for the
// trace-replay experiment.
//
// Format: one flow per line, `arrival_s,size_bytes,src,dst`.  Blank lines
// and '#' comments are ignored; an optional header line is recognized by a
// non-numeric first field.  Malformed rows fail with a line-numbered error
// ("<source>:<line>: <reason>") instead of being skipped, so a corrupted
// trace never silently replays a subset.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace numfabric::workload {

struct TraceFlow {
  double arrival_seconds = 0;
  std::uint64_t size_bytes = 0;
  int src = 0;
  int dst = 0;
};

/// Parses trace CSV from a stream.  `source_name` labels errors (a path or
/// "<builtin>").  Throws std::invalid_argument with the offending line
/// number on malformed rows: wrong field count, non-numeric fields, negative
/// arrival, zero size, negative host index or src == dst.
std::vector<TraceFlow> parse_trace_csv(std::istream& in,
                                       const std::string& source_name);

/// Loads a trace from a file.  Throws std::runtime_error when the file
/// cannot be read, std::invalid_argument on malformed content.
std::vector<TraceFlow> load_trace_csv(const std::string& path);

/// A small built-in demo trace (12 flows among hosts 0-3) used when the
/// trace-replay scenario is run without a trace= file.  Matches
/// examples/example_trace.csv.
const std::vector<TraceFlow>& example_trace();

}  // namespace numfabric::workload
