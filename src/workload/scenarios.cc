#include "workload/scenarios.h"

#include <stdexcept>

namespace numfabric::workload {

std::vector<HostPair> random_pairs(const std::vector<net::Host*>& hosts,
                                   int count, sim::Rng& rng) {
  if (hosts.size() < 2) throw std::invalid_argument("random_pairs: need >= 2 hosts");
  std::vector<HostPair> pairs;
  pairs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::size_t a = rng.index(hosts.size());
    std::size_t b = rng.index(hosts.size() - 1);
    if (b >= a) ++b;  // uniform over hosts != a
    pairs.push_back(HostPair{hosts[a], hosts[b]});
  }
  return pairs;
}

std::vector<HostPair> permutation_pairs(const std::vector<net::Host*>& hosts,
                                        sim::Rng& rng) {
  if (hosts.size() < 2 || hosts.size() % 2 != 0) {
    throw std::invalid_argument("permutation_pairs: need an even host count");
  }
  const std::vector<std::size_t> order = rng.permutation(hosts.size());
  const std::size_t half = hosts.size() / 2;
  std::vector<HostPair> pairs;
  pairs.reserve(half);
  for (std::size_t i = 0; i < half; ++i) {
    pairs.push_back(HostPair{hosts[order[i]], hosts[order[i + half]]});
  }
  return pairs;
}

std::vector<HostPair> incast_pairs(const std::vector<net::Host*>& hosts,
                                   int fanin, sim::Rng& rng) {
  if (fanin < 1 || static_cast<std::size_t>(fanin) >= hosts.size()) {
    throw std::invalid_argument(
        "incast_pairs: fanin must be in [1, hosts-1]");
  }
  const std::vector<std::size_t> order = rng.permutation(hosts.size());
  net::Host* receiver = hosts[order[0]];
  std::vector<HostPair> pairs;
  pairs.reserve(static_cast<std::size_t>(fanin));
  for (int i = 0; i < fanin; ++i) {
    pairs.push_back(HostPair{hosts[order[static_cast<std::size_t>(i) + 1]],
                             receiver});
  }
  return pairs;
}

std::vector<HostPair> all_to_all_pairs(const std::vector<net::Host*>& hosts) {
  if (hosts.size() < 2) {
    throw std::invalid_argument("all_to_all_pairs: need >= 2 hosts");
  }
  std::vector<HostPair> pairs;
  pairs.reserve(hosts.size() * (hosts.size() - 1));
  for (net::Host* src : hosts) {
    for (net::Host* dst : hosts) {
      if (src != dst) pairs.push_back(HostPair{src, dst});
    }
  }
  return pairs;
}

std::vector<ArrivedFlow> poisson_flows(const std::vector<net::Host*>& hosts,
                                       double nic_rate_bps, double load,
                                       const SizeDistribution& sizes,
                                       int flow_count, sim::Rng& rng) {
  if (!(0 < load && load < 1.0)) {
    throw std::invalid_argument("poisson_flows: load must be in (0, 1)");
  }
  const double aggregate_bps = nic_rate_bps * static_cast<double>(hosts.size());
  const double lambda = load * aggregate_bps / (8.0 * sizes.mean_bytes());
  const double mean_gap_seconds = 1.0 / lambda;

  std::vector<ArrivedFlow> flows;
  flows.reserve(static_cast<std::size_t>(flow_count));
  double now_seconds = 0.0;
  for (int i = 0; i < flow_count; ++i) {
    now_seconds += rng.exponential(mean_gap_seconds);
    ArrivedFlow flow;
    flow.arrival = static_cast<sim::TimeNs>(now_seconds * sim::kSecond);
    flow.size_bytes = sizes.sample(rng);
    flow.pair = random_pairs(hosts, 1, rng).front();
    flows.push_back(flow);
  }
  return flows;
}

std::vector<IndexFlow> batch_index_flows(int num_hosts, int count,
                                         const SizeDistribution& sizes,
                                         sim::Rng& rng) {
  if (num_hosts < 2) {
    throw std::invalid_argument("batch_index_flows: need >= 2 hosts");
  }
  std::vector<IndexFlow> flows;
  flows.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    IndexFlow flow;
    flow.size_bytes = sizes.sample(rng);
    flow.src = static_cast<int>(rng.index(static_cast<std::size_t>(num_hosts)));
    std::size_t b = rng.index(static_cast<std::size_t>(num_hosts) - 1);
    if (b >= static_cast<std::size_t>(flow.src)) ++b;  // uniform over != src
    flow.dst = static_cast<int>(b);
    flows.push_back(flow);
  }
  return flows;
}

}  // namespace numfabric::workload
