// Thread-local counters for the simulation substrate's hot path.
//
// Every component of the allocation-free substrate (event queue, link
// forwarding, packet rings, dense flow tables) increments these as it works.
// They serve two purposes: the `perf` metric table every numfabric_run /
// sweep invocation emits, and the zero-allocation guarantee — the `allocs_*`
// counters tick only when a substrate container actually touches the heap
// (SBO spill, vector growth, table rehash), so a steady-state window with
// zero alloc deltas is a measured fact, not an assumption.
//
// Counters are thread-local because the sweep engine runs one scenario per
// worker thread: a snapshot/delta pair taken on the run's own thread isolates
// that run's counts without threading a stats object through every
// constructor in sim/, net/ and transport/.
#pragma once

#include <cstdint>

namespace numfabric::sim {

struct SubstrateStats {
  // Event queue.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_fired = 0;
  std::uint64_t events_cancelled = 0;

  // Link forwarding.
  std::uint64_t packets_forwarded = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t packets_dropped = 0;

  // Batched control plane (transport::ControlPlane): synchronized price
  // sweeps and the per-link updates they performed.  links_swept /
  // control_ticks == fabric link count; one tick per interval regardless of
  // fabric size is the batching invariant.
  std::uint64_t control_ticks = 0;
  std::uint64_t links_swept = 0;

  // Heap allocations performed by substrate containers.  Zero deltas across
  // a steady-state window == allocation-free forwarding.
  std::uint64_t allocs_callable_spill = 0;  // InlineEvent captures > SBO
  std::uint64_t allocs_event_queue = 0;     // event heap/slot vector growth
  std::uint64_t allocs_packet_pool = 0;     // packet ring / pool growth
  std::uint64_t allocs_flow_table = 0;      // dense flow-table rehash
  std::uint64_t allocs_queue = 0;           // queue-internal vector growth

  // NUM solver (num::solve): solve invocations, Gauss-Seidel sweeps run and
  // wall time spent inside them.  allocs_solver_workspace ticks only when a
  // NumWorkspace buffer actually grows — a warm re-solve with a zero delta is
  // the measured allocation-free guarantee.  It is deliberately NOT part of
  // allocs_total(): that sum feeds the perf metric table (and through it the
  // scenario golden hashes), which tracks the simulation substrate, not the
  // oracle.
  std::uint64_t solver_solves = 0;
  std::uint64_t solver_sweeps = 0;
  /// Worklist pops by the incremental path (NumSolverOptions::incremental);
  /// stays 0 for full solves, so the perf table only grows a row when the
  /// incremental path actually ran (golden hashes with incremental OFF are
  /// untouched).
  std::uint64_t solver_relaxations = 0;
  std::uint64_t solver_wall_ns = 0;
  std::uint64_t allocs_solver_workspace = 0;

  // Flow-fluid engine (flowsim::FlowSimEngine): epochs advanced (arrival
  // admissions, departures, periodic re-solve ticks) and NUM re-solves
  // performed.  Deterministic, so they live in the perf metric table; a
  // packet-fidelity run reports both as 0.
  std::uint64_t flowsim_epochs = 0;
  std::uint64_t flowsim_resolves = 0;

  std::uint64_t allocs_total() const {
    return allocs_callable_spill + allocs_event_queue + allocs_packet_pool +
           allocs_flow_table + allocs_queue;
  }

  /// Per-field subtraction (for snapshot/delta reporting).
  SubstrateStats operator-(const SubstrateStats& rhs) const;

  /// Per-field accumulation (the sharded engine folds worker-thread deltas
  /// into the coordinator's thread-local counters).
  SubstrateStats& operator+=(const SubstrateStats& rhs);
};

/// This thread's counters.  Components increment them directly; reporting
/// code snapshots before a run and subtracts after.
SubstrateStats& substrate_stats();

}  // namespace numfabric::sim
