#include "sim/simulator.h"

#include <utility>

namespace numfabric::sim {

EventId Simulator::schedule_in(TimeNs delay, std::function<void()> action) {
  if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
  return queue_.push(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(TimeNs at, std::function<void()> action) {
  if (at < now_) throw std::invalid_argument("Simulator: schedule in the past");
  return queue_.push(at, std::move(action));
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    auto [at, action] = queue_.pop();
    now_ = at;
    ++events_executed_;
    action();
  }
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= until) {
    auto [at, action] = queue_.pop();
    now_ = at;
    ++events_executed_;
    action();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace numfabric::sim
