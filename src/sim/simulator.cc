#include "sim/simulator.h"

namespace numfabric::sim {

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    EventQueue::Fired fired = queue_.pop();
    now_ = fired.at;
    ++events_executed_;
    fired.action();
  }
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= until) {
    EventQueue::Fired fired = queue_.pop();
    now_ = fired.at;
    ++events_executed_;
    fired.action();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace numfabric::sim
