#include "sim/simulator.h"

namespace numfabric::sim {

void Simulator::run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    EventQueue::Fired fired = queue_.pop();
    now_ = fired.at;
    ++*rank_counter_;
    ++events_executed_;
    fired.action();
  }
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= until) {
    EventQueue::Fired fired = queue_.pop();
    now_ = fired.at;
    ++*rank_counter_;
    ++events_executed_;
    fired.action();
  }
  if (!stopped_ && now_ < until) now_ = until;
}

void Simulator::run_to_key(const OrderKey& bound) {
  while (!queue_.empty() && queue_.next_key() < bound) {
    EventQueue::Fired fired = queue_.pop();
    now_ = fired.at;
    ++events_executed_;
    if (deferred_ranks_) {
      // The event's rank is assigned at the next barrier merge; until then
      // its pushes carry a provisional rank encoding its local index.
      window_log_.push_back(OrderKey{fired.at, fired.rank, fired.seq});
      exec_rank_field_ = kProvisionalRankBase + local_exec_count_++;
      in_shard_event_ = true;
      fired.action();
      in_shard_event_ = false;
    } else {
      ++*rank_counter_;
      fired.action();
    }
  }
}

void Simulator::run_one() {
  EventQueue::Fired fired = queue_.pop();
  now_ = fired.at;
  ++*rank_counter_;
  ++events_executed_;
  fired.action();
}

void Simulator::finalize_window(std::vector<std::uint64_t>&& ranks) {
  assert(ranks.size() == window_log_.size());
  last_ranks_.swap(ranks);  // the old buffer goes back to the caller's slot
  last_base_ = log_base_;
  for (const EventId id : provisional_) {
    std::uint64_t* rank = queue_.rank_of(id);
    if (rank != nullptr && *rank >= kProvisionalRankBase) {
      *rank = resolve_rank(*rank);
    }
  }
  provisional_.clear();
  window_log_.clear();
  log_base_ = local_exec_count_;
}

}  // namespace numfabric::sim
