// A cancellable priority queue of timed events.
//
// Events are totally ordered by OrderKey = (fire time, rank, sequence): the
// rank is the global execution rank of the event that pushed them and the
// sequence breaks ties among pushes of one rank in push order.  For a single
// serial simulator the rank is monotone non-decreasing in the sequence
// number, so the order degenerates to the classic (time, FIFO) tie-break and
// is independent of heap internals.  The sharded engine
// (sharded_simulator.h) reproduces the same total order across N per-shard
// queues by pushing with *provisional* ranks during parallel windows and
// finalizing them to exact global ranks at each barrier — see
// src/sim/README.md for the argument.
//
// Layout: an indexed 4-ary min-heap of 32-byte POD entries over a slab of
// slots holding the callables in small-buffer inline storage (InlineEvent —
// no std::function, no per-event heap allocation).  Each slot carries a
// generation counter and its current heap position: EventIds pack
// (generation, slot), so a stale handle — the event already fired, was
// cancelled, or the slot was reused — fails the generation check and
// cancel() is a safe no-op, while a live handle cancels eagerly in O(log4 n)
// via the back-pointer.  No tombstones accumulate and there is no hash-set
// of live ids to maintain per push/pop.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/inline_event.h"
#include "sim/substrate_stats.h"
#include "sim/time.h"
#include "util/dary_heap.h"

namespace numfabric::sim {

/// Handle returned by `push`, usable with `cancel`.  Opaque; packs the
/// target slot and its generation at scheduling time.
using EventId = std::uint64_t;

/// Never returned by `push`; the conventional "no event pending" sentinel.
inline constexpr EventId kNoEvent = 0;

/// Rank fields at or above this base are provisional: they encode the
/// pushing event's local execution index on its shard (base + index) until
/// the next engine barrier finalizes them to exact global ranks.  Real ranks
/// stay far below the base, so a provisional key orders after every
/// finalized key at the same instant — exactly where the serial order puts
/// it, because the provisional push's pusher executed inside the current
/// window and therefore outranks every already-finalized pusher.
inline constexpr std::uint64_t kProvisionalRankBase = std::uint64_t{1} << 63;

/// Total execution order of events, compared lexicographically:
///   1. `at`   — fire time;
///   2. `rank` — global execution rank of the pushing event (0 for pushes
///      made before any event ran, i.e. during setup);
///   3. `seq`  — push order within one rank (FIFO tie-break).
struct OrderKey {
  TimeNs at = 0;
  std::uint64_t rank = 0;
  std::uint64_t seq = 0;

  friend bool operator<(const OrderKey& a, const OrderKey& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.seq < b.seq;
  }

  /// The infimum of all keys with fire time `at`: every event firing
  /// strictly before `at` orders below it, every event at `at` or later
  /// orders at or above it.  Used as an exclusive window bound.
  static OrderKey floor_of(TimeNs at) { return OrderKey{at, 0, 0}; }
};

class EventQueue {
 public:
  /// Schedules `action` at absolute time `at` with an explicit order key.
  /// Returns a handle that can be passed to `cancel` as long as the event
  /// has not fired.
  template <typename F>
  EventId push(TimeNs at, std::uint64_t rank, std::uint64_t seq, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.action = InlineEvent(std::forward<F>(action));
    if (heap_.size() == heap_.capacity()) {
      ++substrate_stats().allocs_event_queue;
    }
    heap_.push_back(Entry{at, rank, seq, slot});
    sift_up(heap_.size() - 1);
    ++substrate_stats().events_scheduled;
    return make_id(slot, s.generation);
  }

  /// Schedules `action` at absolute time `at` with rank 0 and the queue's
  /// own sequence counter — the historical (time, FIFO) order for direct
  /// EventQueue users.
  template <typename F>
  EventId push(TimeNs at, F&& action) {
    return push(at, /*rank=*/0, take_seq(), std::forward<F>(action));
  }

  /// Consumes the next sequence number.  The Simulator draws one per push;
  /// cross-shard message posts draw one too, so a message carries the same
  /// (rank, seq) the equivalent local push would have had.
  std::uint64_t take_seq() { return next_seq_++; }

  /// Cancels a pending event.  Cancelling an already-fired (or already
  /// cancelled) event is a harmless no-op: the handle's generation no longer
  /// matches the slot's.
  void cancel(EventId id);

  /// Mutable pointer to a pending event's rank field, or nullptr if the
  /// handle is stale.  Used by the barrier finalization to rewrite
  /// provisional ranks in place: the caller guarantees the rewrite preserves
  /// the relative order of every pair of entries (global ranks are assigned
  /// monotone in local push order), so the heap property is untouched and no
  /// re-sift is needed.
  std::uint64_t* rank_of(EventId id);

  /// True if no runnable event remains.
  bool empty() const { return heap_.empty(); }

  /// Number of runnable events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest runnable event.  Precondition: !empty().
  TimeNs next_time() const {
    assert(!heap_.empty());
    return heap_.front().at;
  }

  /// Full order key of the earliest runnable event.  Precondition: !empty().
  OrderKey next_key() const {
    assert(!heap_.empty());
    const Entry& e = heap_.front();
    return OrderKey{e.at, e.rank, e.seq};
  }

  struct Fired {
    TimeNs at;
    std::uint64_t rank;
    std::uint64_t seq;
    InlineEvent action;
  };

  /// Pops and returns the earliest runnable event.  Precondition: !empty().
  Fired pop();

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t rank;  // pusher's global execution rank (or provisional)
    std::uint64_t seq;   // push order within the rank; final tie-break
    std::uint32_t slot;  // index into slots_
  };
  struct Slot {
    InlineEvent action;
    std::uint32_t generation = 1;  // bumped on fire/cancel; never 0
    std::uint32_t heap_pos = 0;    // current index in heap_
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  // A functor type (not a function pointer) so the sift loops inline it.
  struct Before {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.seq < b.seq;
    }
  };

  /// on_move hook for the heap primitives: keeps each slot's heap
  /// back-pointer in sync as entries change position.
  auto track_position() {
    return [this](const Entry& e, std::size_t pos) {
      slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
    };
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Removes the entry at heap position `pos`, restoring the heap property.
  void remove_entry(std::size_t pos);

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace numfabric::sim
