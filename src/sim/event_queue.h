// A cancellable priority queue of timed events.
//
// Events that fire at the same instant run in the order they were scheduled
// (FIFO tie-break via a monotonically increasing sequence number); this makes
// simulations reproducible independent of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace numfabric::sim {

/// Handle returned by `push`, usable with `cancel`.
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `action` at absolute time `at`.  Returns a handle that can be
  /// passed to `cancel` as long as the event has not fired.
  EventId push(TimeNs at, std::function<void()> action);

  /// Cancels a pending event.  Cancelling an already-fired (or already
  /// cancelled) event is a harmless no-op.
  void cancel(EventId id);

  /// True if no runnable (non-cancelled) event remains.
  bool empty() const { return live_.empty(); }

  /// Number of runnable events.
  std::size_t size() const { return live_.size(); }

  /// Time of the earliest runnable event.  Precondition: !empty().
  TimeNs next_time();

  /// Pops and returns the earliest runnable event (time, action).
  /// Precondition: !empty().
  std::pair<TimeNs, std::function<void()>> pop();

 private:
  struct Entry {
    TimeNs at;
    EventId id;
    std::function<void()> action;
  };
  // Comparator inverted so the std:: heap algorithms yield a min-heap on
  // (time, id).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void drop_cancelled_head();

  std::vector<Entry> heap_;             // std::push_heap / std::pop_heap
  std::unordered_set<EventId> live_;    // scheduled and not cancelled/fired
  EventId next_id_ = 1;
};

}  // namespace numfabric::sim
