// A cancellable priority queue of timed events.
//
// Events that fire at the same instant run in the order they were scheduled
// (FIFO tie-break via a monotonically increasing sequence number); this makes
// simulations reproducible independent of heap internals.
//
// Layout: an indexed 4-ary min-heap of 24-byte POD entries (time, sequence,
// slot) over a slab of slots holding the callables in small-buffer inline
// storage (InlineEvent — no std::function, no per-event heap allocation).
// Each slot carries a generation counter and its current heap position:
// EventIds pack (generation, slot), so a stale handle — the event already
// fired, was cancelled, or the slot was reused — fails the generation check
// and cancel() is a safe no-op, while a live handle cancels eagerly in
// O(log4 n) via the back-pointer.  No tombstones accumulate and there is no
// hash-set of live ids to maintain per push/pop.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/inline_event.h"
#include "sim/substrate_stats.h"
#include "sim/time.h"
#include "util/dary_heap.h"

namespace numfabric::sim {

/// Handle returned by `push`, usable with `cancel`.  Opaque; packs the
/// target slot and its generation at scheduling time.
using EventId = std::uint64_t;

/// Never returned by `push`; the conventional "no event pending" sentinel.
inline constexpr EventId kNoEvent = 0;

class EventQueue {
 public:
  /// Schedules `action` at absolute time `at`.  Returns a handle that can be
  /// passed to `cancel` as long as the event has not fired.
  template <typename F>
  EventId push(TimeNs at, F&& action) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.action = InlineEvent(std::forward<F>(action));
    if (heap_.size() == heap_.capacity()) {
      ++substrate_stats().allocs_event_queue;
    }
    heap_.push_back(Entry{at, next_seq_++, slot});
    sift_up(heap_.size() - 1);
    ++substrate_stats().events_scheduled;
    return make_id(slot, s.generation);
  }

  /// Cancels a pending event.  Cancelling an already-fired (or already
  /// cancelled) event is a harmless no-op: the handle's generation no longer
  /// matches the slot's.
  void cancel(EventId id);

  /// True if no runnable event remains.
  bool empty() const { return heap_.empty(); }

  /// Number of runnable events.
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest runnable event.  Precondition: !empty().
  TimeNs next_time() const {
    assert(!heap_.empty());
    return heap_.front().at;
  }

  struct Fired {
    TimeNs at;
    InlineEvent action;
  };

  /// Pops and returns the earliest runnable event.  Precondition: !empty().
  Fired pop();

 private:
  struct Entry {
    TimeNs at;
    std::uint64_t seq;   // push order; breaks equal-time ties FIFO
    std::uint32_t slot;  // index into slots_
  };
  struct Slot {
    InlineEvent action;
    std::uint32_t generation = 1;  // bumped on fire/cancel; never 0
    std::uint32_t heap_pos = 0;    // current index in heap_
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  // A functor type (not a function pointer) so the sift loops inline it.
  struct Before {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at < b.at;
      return a.seq < b.seq;
    }
  };

  /// on_move hook for the heap primitives: keeps each slot's heap
  /// back-pointer in sync as entries change position.
  auto track_position() {
    return [this](const Entry& e, std::size_t pos) {
      slots_[e.slot].heap_pos = static_cast<std::uint32_t>(pos);
    };
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  /// Removes the entry at heap position `pos`, restoring the heap property.
  void remove_entry(std::size_t pos);

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace numfabric::sim
