// Simulation time.
//
// The whole simulator runs on a single integer nanosecond clock.  An integer
// clock keeps event ordering exact and runs deterministic across platforms
// (doubles would accumulate rounding in the +=tx_time chains of a link
// serializer).  Nanosecond resolution is fine-grained enough for the paper's
// setting: a 1500 B packet takes 1200 ns on a 10 Gbps link and 300 ns on a
// 40 Gbps link.
#pragma once

#include <cstdint>

namespace numfabric::sim {

/// Absolute simulation time or a duration, in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNanosecond = 1;
inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

/// Named constructors so call sites read `micros(16)` instead of `16'000`.
constexpr TimeNs nanos(std::int64_t n) { return n; }
constexpr TimeNs micros(std::int64_t n) { return n * kMicrosecond; }
constexpr TimeNs millis(std::int64_t n) { return n * kMillisecond; }
constexpr TimeNs seconds(std::int64_t n) { return n * kSecond; }

/// Conversions to floating-point seconds (for reporting and rate math).
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) / kSecond; }
constexpr double to_micros(TimeNs t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_millis(TimeNs t) { return static_cast<double>(t) / kMillisecond; }

/// Duration of `bytes` serialized at `rate_bps`, rounded up to a whole ns.
constexpr TimeNs transmission_time(std::int64_t bytes, double rate_bps) {
  const double ns = static_cast<double>(bytes) * 8.0 * 1e9 / rate_bps;
  return static_cast<TimeNs>(ns + 0.5);
}

}  // namespace numfabric::sim
