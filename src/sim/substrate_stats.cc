#include "sim/substrate_stats.h"

namespace numfabric::sim {

SubstrateStats SubstrateStats::operator-(const SubstrateStats& rhs) const {
  SubstrateStats out;
  out.events_scheduled = events_scheduled - rhs.events_scheduled;
  out.events_fired = events_fired - rhs.events_fired;
  out.events_cancelled = events_cancelled - rhs.events_cancelled;
  out.packets_forwarded = packets_forwarded - rhs.packets_forwarded;
  out.bytes_forwarded = bytes_forwarded - rhs.bytes_forwarded;
  out.packets_dropped = packets_dropped - rhs.packets_dropped;
  out.control_ticks = control_ticks - rhs.control_ticks;
  out.links_swept = links_swept - rhs.links_swept;
  out.allocs_callable_spill = allocs_callable_spill - rhs.allocs_callable_spill;
  out.allocs_event_queue = allocs_event_queue - rhs.allocs_event_queue;
  out.allocs_packet_pool = allocs_packet_pool - rhs.allocs_packet_pool;
  out.allocs_flow_table = allocs_flow_table - rhs.allocs_flow_table;
  out.allocs_queue = allocs_queue - rhs.allocs_queue;
  out.solver_solves = solver_solves - rhs.solver_solves;
  out.solver_sweeps = solver_sweeps - rhs.solver_sweeps;
  out.solver_relaxations = solver_relaxations - rhs.solver_relaxations;
  out.solver_wall_ns = solver_wall_ns - rhs.solver_wall_ns;
  out.allocs_solver_workspace =
      allocs_solver_workspace - rhs.allocs_solver_workspace;
  out.flowsim_epochs = flowsim_epochs - rhs.flowsim_epochs;
  out.flowsim_resolves = flowsim_resolves - rhs.flowsim_resolves;
  return out;
}

SubstrateStats& SubstrateStats::operator+=(const SubstrateStats& rhs) {
  events_scheduled += rhs.events_scheduled;
  events_fired += rhs.events_fired;
  events_cancelled += rhs.events_cancelled;
  packets_forwarded += rhs.packets_forwarded;
  bytes_forwarded += rhs.bytes_forwarded;
  packets_dropped += rhs.packets_dropped;
  control_ticks += rhs.control_ticks;
  links_swept += rhs.links_swept;
  allocs_callable_spill += rhs.allocs_callable_spill;
  allocs_event_queue += rhs.allocs_event_queue;
  allocs_packet_pool += rhs.allocs_packet_pool;
  allocs_flow_table += rhs.allocs_flow_table;
  allocs_queue += rhs.allocs_queue;
  solver_solves += rhs.solver_solves;
  solver_sweeps += rhs.solver_sweeps;
  solver_relaxations += rhs.solver_relaxations;
  solver_wall_ns += rhs.solver_wall_ns;
  allocs_solver_workspace += rhs.allocs_solver_workspace;
  flowsim_epochs += rhs.flowsim_epochs;
  flowsim_resolves += rhs.flowsim_resolves;
  return *this;
}

SubstrateStats& substrate_stats() {
  thread_local SubstrateStats stats;
  return stats;
}

}  // namespace numfabric::sim
