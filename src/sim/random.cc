#include "sim/random.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace numfabric::sim {

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: empty range");
  return static_cast<std::size_t>(
      std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_));
}

}  // namespace numfabric::sim
