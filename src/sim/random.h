// Deterministic randomness for workloads and scenarios.
//
// One seeded engine per scenario keeps experiments reproducible; helpers
// cover the distributions the workloads need (uniform, exponential for
// Poisson processes, permutations for traffic matrices).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace numfabric::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean);

  /// A uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Picks an index in [0, n) uniformly.  Precondition: n > 0.
  std::size_t index(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace numfabric::sim
