// The discrete-event simulator facade: a clock plus an event queue.
//
// This replaces ns-3 used by the paper.  All network components hold a
// reference to one Simulator and drive themselves by scheduling callbacks.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace numfabric::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `action` to run `delay` from now.  Negative delays are an
  /// error (they would rewind the clock).
  EventId schedule_in(TimeNs delay, std::function<void()> action);

  /// Schedules `action` at the absolute time `at` (must be >= now()).
  EventId schedule_at(TimeNs at, std::function<void()> action);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= `until`, then sets the clock to `until`.
  void run_until(TimeNs until);

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for perf reporting).
  std::uint64_t events_executed() const { return events_executed_; }

  bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace numfabric::sim
