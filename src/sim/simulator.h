// The discrete-event simulator facade: a clock plus an event queue.
//
// This replaces ns-3 used by the paper.  All network components hold a
// reference to one Simulator and drive themselves by scheduling callbacks.
// The schedule API is typed: any callable (lambda, std::function, function
// object) is stored directly in the event queue's inline small-buffer slots,
// so scheduling never heap-allocates for captures up to
// InlineEvent::kInlineBytes.
//
// Every push carries the OrderKey (fire time, rank of the pushing event,
// sequence) from event_queue.h.  A standalone Simulator assigns ranks
// inline: the global execution counter increments as each event fires, and
// pushes stamp the current value — monotone in push order, hence
// order-identical to the historical (time, FIFO) queue.
//
// A Simulator also serves as one logical process of the sharded parallel
// engine (sharded_simulator.h).  In that role the engine drives it through
// the hooks below: run_to_key() executes a bounded window, deferred-rank
// mode pushes with provisional ranks that the engine finalizes to exact
// global ranks at each barrier, and advance_to() keeps the shard clock in
// step.  None of this changes serial behavior — the deferred machinery is
// dead weight behind one branch unless the engine enables it.
#pragma once

#include <cassert>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace numfabric::sim {

/// The (rank, seq) half of an OrderKey, as one push would have consumed it.
struct PushKey {
  std::uint64_t rank;
  std::uint64_t seq;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `action` to run `delay` from now.  Negative delays are an
  /// error (they would rewind the clock).
  template <typename F>
  EventId schedule_in(TimeNs delay, F&& action) {
    if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
    return push(now_ + delay, std::forward<F>(action));
  }

  /// Schedules `action` at the absolute time `at` (must be >= now()).
  template <typename F>
  EventId schedule_at(TimeNs at, F&& action) {
    if (at < now_) throw std::invalid_argument("Simulator: schedule in the past");
    return push(at, std::forward<F>(action));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= `until`, then sets the clock to `until`.
  void run_until(TimeNs until);

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for perf reporting).
  std::uint64_t events_executed() const { return events_executed_; }

  bool pending() const { return !queue_.empty(); }

  // --- sharded-engine hooks (see sharded_simulator.h) ----------------------
  // Used only when this Simulator is one logical process (or the global
  // stream) of a ShardedSimulator.  Standalone users never need these.

  /// Schedules with an explicit order key — how merged cross-shard messages
  /// re-enter a shard queue carrying their serial-equivalent key.
  template <typename F>
  EventId schedule_keyed(TimeNs at, std::uint64_t rank, std::uint64_t seq,
                         F&& action) {
    ++keyed_pushes_;
    return queue_.push(at, rank, seq, std::forward<F>(action));
  }

  /// Executes events in key order while key < `bound` (exclusive).
  void run_to_key(const OrderKey& bound);

  /// Pops and executes exactly one event (the global stream's barrier
  /// events run one at a time, interleaved with shard windows).
  /// Precondition: pending().
  void run_one();

  /// Advances the clock to `t` if it is ahead (never rewinds).
  void advance_to(TimeNs t) {
    if (t > now_) now_ = t;
  }

  /// Key of the earliest pending event; false when the queue is empty.
  bool peek_next_key(OrderKey& key) const {
    if (queue_.empty()) return false;
    key = queue_.next_key();
    return true;
  }

  /// Fire time of the earliest pending event.  Precondition: pending().
  TimeNs next_time() const { return queue_.next_time(); }

  bool stopped() const { return stopped_; }
  void clear_stopped() { stopped_ = false; }

  /// Points this simulator at a shared global execution-rank counter.  The
  /// engine installs one counter on every member simulator, so ranks are
  /// unique across the whole engine and monotone in serial execution order.
  void set_rank_counter(std::uint64_t* counter) { rank_counter_ = counter; }

  /// Points this simulator at the engine's shared sequence counter, used by
  /// every push made outside a shard window (setup, global-stream events,
  /// code running between runs).  All such pushes happen on the coordinator
  /// thread; drawing them from one counter orders a single rank's pushes
  /// across member queues exactly as one serial queue would have.
  void set_shared_seq(std::uint64_t* counter) { shared_seq_ = counter; }

  /// Deferred-rank mode (shard simulators only): events executed via
  /// run_to_key() push with provisional ranks encoding the pusher's local
  /// execution index, the window's executed keys are logged for the barrier
  /// merge, and finalize_window() rewrites the survivors with exact ranks.
  void set_deferred_ranks(bool deferred) { deferred_ranks_ = deferred; }

  /// Keys of the events executed since the last finalize, in local
  /// execution order.  Coordinator-only, workers quiesced.
  const std::vector<OrderKey>& window_log() const { return window_log_; }

  /// Local execution index of window_log()[0].
  std::uint64_t window_log_base() const { return log_base_; }

  /// Installs the global execution ranks for this window's events (parallel
  /// array to window_log(), assigned by the engine's barrier merge),
  /// rewrites every surviving provisional push in place, and opens the next
  /// window.  The rewrite maps provisional fields — monotone in local push
  /// order — to ranks that are monotone in the same order, so no pair of
  /// entries swaps and the heap needs no re-sift.
  void finalize_window(std::vector<std::uint64_t>&& ranks);

  /// Resolves a rank field recorded during the last finalized window (the
  /// router resolves message keys with this at merge time).
  std::uint64_t resolve_rank(std::uint64_t rank_field) const {
    if (rank_field < kProvisionalRankBase) return rank_field;
    const std::uint64_t idx = rank_field - kProvisionalRankBase;
    assert(idx >= last_base_ && idx - last_base_ < last_ranks_.size());
    return last_ranks_[idx - last_base_];
  }

  /// Number of schedule_keyed() pushes (the per-shard merged-message
  /// counter in the perf table).
  std::uint64_t keyed_pushes() const { return keyed_pushes_; }

  /// Consumes the (rank, seq) pair the next schedule_in/schedule_at call
  /// would use.  Links posting cross-shard messages draw it so the message
  /// carries the same key an ordinary push would have consumed.
  PushKey consume_push_key() { return PushKey{push_rank(), push_seq()}; }

 private:
  template <typename F>
  EventId push(TimeNs at, F&& action) {
    const std::uint64_t rank = push_rank();
    const EventId id = queue_.push(at, rank, push_seq(), std::forward<F>(action));
    if (rank >= kProvisionalRankBase) provisional_.push_back(id);
    return id;
  }

  std::uint64_t push_rank() const {
    return in_shard_event_ ? exec_rank_field_ : *rank_counter_;
  }
  std::uint64_t push_seq() {
    if (shared_seq_ != nullptr && !in_shard_event_) return (*shared_seq_)++;
    return queue_.take_seq();
  }

  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t own_rank_counter_ = 0;
  std::uint64_t* rank_counter_ = &own_rank_counter_;
  std::uint64_t* shared_seq_ = nullptr;
  std::uint64_t keyed_pushes_ = 0;

  // Deferred-rank state (engine-driven shard simulators only).
  bool deferred_ranks_ = false;
  bool in_shard_event_ = false;
  std::uint64_t exec_rank_field_ = 0;   // provisional rank while executing
  std::uint64_t local_exec_count_ = 0;  // events executed in deferred mode
  std::uint64_t log_base_ = 0;          // local index of window_log_[0]
  std::vector<OrderKey> window_log_;    // keys executed this window
  std::vector<EventId> provisional_;    // provisional pushes this window
  std::vector<std::uint64_t> last_ranks_;  // ranks of the last window
  std::uint64_t last_base_ = 0;            // local index of last_ranks_[0]
};

}  // namespace numfabric::sim
