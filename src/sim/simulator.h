// The discrete-event simulator facade: a clock plus an event queue.
//
// This replaces ns-3 used by the paper.  All network components hold a
// reference to one Simulator and drive themselves by scheduling callbacks.
// The schedule API is typed: any callable (lambda, std::function, function
// object) is stored directly in the event queue's inline small-buffer slots,
// so scheduling never heap-allocates for captures up to
// InlineEvent::kInlineBytes.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace numfabric::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  TimeNs now() const { return now_; }

  /// Schedules `action` to run `delay` from now.  Negative delays are an
  /// error (they would rewind the clock).
  template <typename F>
  EventId schedule_in(TimeNs delay, F&& action) {
    if (delay < 0) throw std::invalid_argument("Simulator: negative delay");
    return queue_.push(now_ + delay, std::forward<F>(action));
  }

  /// Schedules `action` at the absolute time `at` (must be >= now()).
  template <typename F>
  EventId schedule_at(TimeNs at, F&& action) {
    if (at < now_) throw std::invalid_argument("Simulator: schedule in the past");
    return queue_.push(at, std::forward<F>(action));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= `until`, then sets the clock to `until`.
  void run_until(TimeNs until);

  /// Makes `run`/`run_until` return after the current event completes.
  void stop() { stopped_ = true; }

  /// Number of events executed so far (for perf reporting).
  std::uint64_t events_executed() const { return events_executed_; }

  bool pending() const { return !queue_.empty(); }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace numfabric::sim
