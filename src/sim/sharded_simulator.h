// Conservative parallel discrete-event engine: N shard Simulators on worker
// threads plus one global stream on the caller's thread, bit-identical to a
// single serial Simulator.
//
// Each shard is a logical process owning a disjoint slice of the network
// (one or more leaves with their hosts and edge links; see
// net/shard_plan.h).  Cross-shard interactions are timestamped messages
// that, by construction, arrive at least `lookahead` after the event that
// sent them (every cross-shard path crosses a core link, whose propagation
// delay lower-bounds the gap).  The engine runs barrier-synchronized
// windows:
//
//   1. merge   — barrier hooks drain every cross-shard channel into the
//                destination shards' queues (coordinator thread, in a fixed
//                deterministic order);
//   2. bound   — with all channels empty, let `base` be the earliest
//                pending fire time anywhere (shards or global stream).  Any
//                message a future event can still produce fires at
//                >= base + lookahead, so every event with
//                key < floor_of(base + lookahead) is causally closed;
//   3. window  — workers run their shards up to that bound in parallel,
//                then quiesce.  The event at `base` always executes, so the
//                engine makes progress whenever lookahead > 0 (the classic
//                Chandy–Misra–Bryant argument; with every LP adjacent to
//                every other through the core, per-neighbor null messages
//                collapse to this one shared horizon).
//
// Global-stream events (control-plane ticks on the PeriodicTick grid, flow
// arrivals, experiment samplers) act as barriers of their own: when the
// global queue holds the minimal key, the window bound shrinks to it, the
// workers quiesce short of it, and the coordinator executes exactly that
// one event before opening the next window.
//
// Determinism: every event carries an OrderKey (fire, rank of the pushing
// event, seq) — see event_queue.h.  Shard events push with provisional
// ranks during windows; after each superstep the coordinator merges the
// per-shard logs of just-executed events in exact serial order, assigns
// global execution ranks from the engine-wide counter, and finalizes the
// surviving pushes and in-flight messages in place.  Global-stream events
// are ranked inline as they run.  The result is the same total order one
// serial queue realizes, so --shards=1 and --shards=N produce
// byte-identical output — see src/sim/README.md for the full argument.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "sim/substrate_stats.h"
#include "sim/time.h"

namespace numfabric::sim {

/// Per-shard progress counters for the perf table.  events / merged_msgs /
/// null_steps are deterministic; blocked_ns is wall time and is not.
struct ShardPerf {
  std::uint64_t events = 0;       // events executed on this shard
  std::uint64_t merged_msgs = 0;  // cross-shard messages merged into it
  std::uint64_t null_steps = 0;   // windows that executed zero local events
  std::uint64_t blocked_ns = 0;   // worker wall time blocked at barriers
};

class ShardedSimulator {
 public:
  /// `shards` <= 1 is the passthrough mode: one serial Simulator, no
  /// threads, behavior identical to using that Simulator directly.
  explicit ShardedSimulator(int shards);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  bool sharded() const { return num_shards_ > 1; }
  int num_shards() const { return num_shards_; }

  /// The global stream: control-plane grid, flow arrivals, samplers.
  /// In passthrough mode this is the one and only simulator.
  Simulator& global() { return global_; }
  const Simulator& global() const { return global_; }

  /// Shard k's simulator.  Precondition: sharded() and 0 <= k < num_shards.
  Simulator& shard(int k) { return *shards_[static_cast<std::size_t>(k)]; }

  /// Minimum cross-shard delay; must be > 0 before the first run when
  /// sharded.  (net/shard_plan.h derives it from the core-link delay.)
  void set_lookahead(TimeNs lookahead) { lookahead_ = lookahead; }
  TimeNs lookahead() const { return lookahead_; }

  /// Registers a hook run on the coordinator thread at every barrier, with
  /// all workers quiesced.  The shard router drains its channels here;
  /// the fabric drains deferred cross-shard maintenance.
  void add_barrier_hook(std::function<void()> hook);

  // --- serial-compatible facade -------------------------------------------

  TimeNs now() const { return global_.now(); }

  template <typename F>
  EventId schedule_in(TimeNs delay, F&& action) {
    return global_.schedule_in(delay, std::forward<F>(action));
  }

  template <typename F>
  EventId schedule_at(TimeNs at, F&& action) {
    return global_.schedule_at(at, std::forward<F>(action));
  }

  void cancel(EventId id) { global_.cancel(id); }

  /// Runs until every queue and channel drains, or stop() is called.
  void run();

  /// Runs events with time <= `until`, then sets every clock to `until`.
  void run_until(TimeNs until);

  /// Makes run/run_until return at the next barrier.  Callable from global
  /// events (samplers) and between runs; shard events must not call it.
  void stop();

  /// True while any queue holds a runnable event.
  bool pending() const;

  /// Total events executed across the global stream and all shards.
  std::uint64_t events_executed() const;

  /// Per-shard counters; empty in passthrough mode.
  const std::vector<ShardPerf>& shard_perf() const { return perf_; }

 private:
  static constexpr TimeNs kNever = std::numeric_limits<TimeNs>::max();

  void drive(TimeNs until, bool drain);
  /// Runs one parallel window: all workers execute events with
  /// key < `bound`, then advance their clocks to at least `clock_to`.
  void superstep(const OrderKey& bound, TimeNs clock_to);
  /// Merges the per-shard logs of the window just executed in serial key
  /// order, assigns global execution ranks, and finalizes every surviving
  /// provisional push.  Coordinator thread, workers quiesced.
  void finalize_window();
  void worker_main(int k);
  void fold_worker_stats();

  struct WorkerState {
    SubstrateStats published;  // worker TLS totals, copied under mu_
    SubstrateStats folded;     // portion already folded into the caller TLS
    std::uint64_t blocked_ns = 0;
  };

  const int num_shards_;
  TimeNs lookahead_ = 0;
  Simulator global_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  std::vector<std::function<void()>> barrier_hooks_;
  /// Global execution-rank counter shared by every member simulator: the
  /// global stream increments it inline as its events run; shard windows
  /// draw their ranks from it in the barrier merge.
  std::uint64_t rank_counter_ = 0;
  /// Shared sequence counter for coordinator-side pushes (setup, global
  /// events, code between runs) — see Simulator::set_shared_seq.
  std::uint64_t shared_seq_ = 0;
  bool stop_requested_ = false;
  std::vector<ShardPerf> perf_;
  std::vector<std::uint64_t> window_before_;  // scratch: events before window
  // finalize_window scratch, reused across barriers.
  std::vector<std::vector<std::uint64_t>> ranks_scratch_;
  std::vector<std::size_t> merge_pos_;
  std::vector<OrderKey> merge_head_;

  // Worker synchronization.  All shared control state lives under mu_; the
  // cv_work_/cv_done_ edges give the happens-before that publishes shard
  // simulator state between workers and the coordinator.
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int done_ = 0;
  OrderKey bound_{};
  TimeNs clock_to_ = 0;
  bool quit_ = false;
  std::vector<WorkerState> workers_;
  std::vector<std::thread> threads_;
};

}  // namespace numfabric::sim
