// One synchronized periodic event on the global grid of interval multiples.
//
// The paper's control plane (Fig. 3, §5) assumes PTP-grade clock sync: every
// switch recomputes prices at the same instants t = k * T.  PeriodicTick is
// that grid as a reusable primitive: arm() schedules the first fire at the
// next multiple of `interval` strictly after now, and after each callback the
// tick re-arms itself for the following multiple.  One PeriodicTick can drive
// an arbitrary amount of per-interval work (see transport::ControlPlane), so
// the event queue carries one control event per interval regardless of how
// many links the fabric has.
//
// Ordering contract: the next fire is pushed AFTER the callback returns, so
// relative to other events at the same grid timestamp the tick keeps the
// FIFO position its reschedule earned on the previous tick — exactly the
// behavior of the self-rescheduling per-link agent events it replaces.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>

#include "sim/simulator.h"

namespace numfabric::sim {

class PeriodicTick {
 public:
  PeriodicTick() = default;
  PeriodicTick(const PeriodicTick&) = delete;
  PeriodicTick& operator=(const PeriodicTick&) = delete;

  /// Cancels the pending fire (the owner outliving its Simulator is an error
  /// on the owner's side; everything in this codebase declares the Simulator
  /// first).
  ~PeriodicTick() { cancel(); }

  /// Starts ticking: `callback` first runs at the smallest grid point
  /// k * interval strictly after sim.now(), then every interval.  Re-arming
  /// an armed tick cancels the pending fire first — the grid restarts from
  /// the new interval.  Throws std::invalid_argument on interval <= 0.
  void arm(Simulator& sim, TimeNs interval, std::function<void()> callback) {
    if (interval <= 0) {
      throw std::invalid_argument("PeriodicTick: interval must be > 0");
    }
    cancel();
    sim_ = &sim;
    interval_ = interval;
    callback_ = std::move(callback);
    armed_ = true;
    schedule_next();
  }

  /// Stops ticking.  Safe to call when idle and from inside the callback;
  /// the tick can be re-armed afterwards.
  void cancel() {
    if (sim_ != nullptr && pending_ != kNoEvent) sim_->cancel(pending_);
    pending_ = kNoEvent;
    armed_ = false;
  }

  bool armed() const { return armed_; }
  TimeNs interval() const { return interval_; }

  /// Number of times the callback has run since construction.
  std::uint64_t ticks() const { return ticks_; }

 private:
  void fire() {
    pending_ = kNoEvent;
    ++ticks_;
    // Run from a local so an in-callback arm() (which overwrites callback_)
    // cannot destroy the callable while it is executing.
    std::function<void()> active = std::move(callback_);
    active();
    if (!callback_) callback_ = std::move(active);  // no re-arm: restore
    // The callback may have cancelled (armed_ dropped: stay stopped) or
    // re-armed (a fresh event is already pending); only the plain case
    // reschedules.
    if (armed_ && pending_ == kNoEvent) schedule_next();
  }

  void schedule_next() {
    const TimeNs next = (sim_->now() / interval_ + 1) * interval_;
    pending_ = sim_->schedule_at(next, [this] { fire(); });
  }

  Simulator* sim_ = nullptr;
  TimeNs interval_ = 0;
  std::function<void()> callback_;
  EventId pending_ = kNoEvent;
  bool armed_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace numfabric::sim
