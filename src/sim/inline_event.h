// A move-only `void()` callable with small-buffer inline storage.
//
// `std::function` heap-allocates any capture larger than its ~16-byte SBO
// and drags virtual dispatch through every heap sift.  Event callbacks in
// this simulator capture at most a few pointers/refs (`[this]`,
// `[this, flow]`, a handful of `&` refs in experiment samplers), so a
// 48-byte inline buffer holds every hot-path callable with zero heap
// traffic.  Oversized or throwing-move captures still work — they spill to
// a single heap allocation, counted in SubstrateStats::allocs_callable_spill
// so benchmarks and tests can prove the hot path never spills.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "sim/substrate_stats.h"

namespace numfabric::sim {

class InlineEvent {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  InlineEvent() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  InlineEvent(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kHeapOps<Fn>;
      ++substrate_stats().allocs_callable_spill;
    }
  }

  InlineEvent(InlineEvent&& other) noexcept { move_from(other); }
  InlineEvent& operator=(InlineEvent&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct `dst` from the object in `src`, then destroy `src`.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* p) { (*as<Fn>(p))(); },
      [](void* dst, void* src) {
        Fn* from = as<Fn>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* p) { as<Fn>(p)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](void* p) { (**as<Fn*>(p))(); },
      // The stored pointer is trivially destructible; copying it moves
      // ownership.
      [](void* dst, void* src) { ::new (dst) Fn*(*as<Fn*>(src)); },
      [](void* p) { delete *as<Fn*>(p); }};

  void move_from(InlineEvent& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace numfabric::sim
