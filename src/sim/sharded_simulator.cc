#include "sim/sharded_simulator.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace numfabric::sim {
namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardedSimulator::ShardedSimulator(int shards)
    : num_shards_(std::max(1, shards)) {
  if (!sharded()) return;
  // One rank counter and one coordinator-side sequence counter across every
  // member simulator: single-threaded phases (setup, global events, code
  // between runs) get globally ordered keys, exactly the order one serial
  // queue would have assigned, and shard windows draw their ranks from the
  // same counter at each barrier merge.
  global_.set_rank_counter(&rank_counter_);
  global_.set_shared_seq(&shared_seq_);
  shards_.reserve(static_cast<std::size_t>(num_shards_));
  for (int k = 0; k < num_shards_; ++k) {
    auto sim = std::make_unique<Simulator>();
    sim->set_rank_counter(&rank_counter_);
    sim->set_shared_seq(&shared_seq_);
    sim->set_deferred_ranks(true);
    shards_.push_back(std::move(sim));
  }
  perf_.resize(static_cast<std::size_t>(num_shards_));
  window_before_.resize(static_cast<std::size_t>(num_shards_));
  ranks_scratch_.resize(static_cast<std::size_t>(num_shards_));
  merge_pos_.resize(static_cast<std::size_t>(num_shards_));
  merge_head_.resize(static_cast<std::size_t>(num_shards_));
  workers_.resize(static_cast<std::size_t>(num_shards_));
  threads_.reserve(static_cast<std::size_t>(num_shards_));
  for (int k = 0; k < num_shards_; ++k) {
    threads_.emplace_back([this, k] { worker_main(k); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (threads_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedSimulator::add_barrier_hook(std::function<void()> hook) {
  barrier_hooks_.push_back(std::move(hook));
}

void ShardedSimulator::stop() {
  stop_requested_ = true;
  global_.stop();
}

bool ShardedSimulator::pending() const {
  if (global_.pending()) return true;
  for (const auto& shard : shards_) {
    if (shard->pending()) return true;
  }
  return false;
}

std::uint64_t ShardedSimulator::events_executed() const {
  std::uint64_t total = global_.events_executed();
  for (const auto& shard : shards_) total += shard->events_executed();
  return total;
}

void ShardedSimulator::run() {
  if (!sharded()) {
    global_.run();
    return;
  }
  drive(kNever, /*drain=*/true);
}

void ShardedSimulator::run_until(TimeNs until) {
  if (!sharded()) {
    global_.run_until(until);
    return;
  }
  drive(until, /*drain=*/false);
}

void ShardedSimulator::drive(TimeNs until, bool drain) {
  if (lookahead_ <= 0) {
    throw std::logic_error(
        "ShardedSimulator: set_lookahead(>0) required before running");
  }
  stop_requested_ = false;
  global_.clear_stopped();

  for (;;) {
    // Barrier: workers quiesced; merge every cross-shard channel so the
    // horizon computed below is causally complete.
    for (const auto& hook : barrier_hooks_) hook();
    if (stop_requested_ || global_.stopped()) break;

    OrderKey gkey{};
    const bool has_global = global_.peek_next_key(gkey);
    TimeNs base = has_global ? gkey.at : kNever;
    for (const auto& shard : shards_) {
      if (shard->pending()) base = std::min(base, shard->next_time());
    }
    if (base == kNever) break;               // everything drained
    if (!drain && base > until) break;       // nothing left at or before until

    // Conservative window (channels are empty): any message a still-pending
    // event can produce fires at >= base + lookahead, so every key below
    // that floor is safe.  The event at `base` is always inside the window:
    // progress is guaranteed for lookahead > 0.
    OrderKey bound = OrderKey::floor_of(base + lookahead_);
    TimeNs clock_to = 0;  // plain windows leave shard clocks on their events
    if (!drain) {
      const OrderKey after_until = OrderKey::floor_of(until + 1);
      if (after_until < bound) bound = after_until;
    }
    // A minimal-key global event is itself the barrier: run shards short of
    // it, advance their clocks to its instant (its callbacks may schedule
    // relative delays into shard queues), then execute exactly that event.
    const bool exec_global = has_global && gkey < bound;
    if (exec_global) {
      bound = gkey;
      clock_to = gkey.at;
    }

    superstep(bound, clock_to);
    // Rank this window's events before the global event runs: its rank (and
    // the keys of everything it pushes) must come after theirs.
    finalize_window();

    if (exec_global) global_.run_one();
  }

  // Align clocks the way one serial simulator would have left them.  After
  // stop() the serial contract leaves the clock on the stopping event (a
  // global-stream sampler), which global_.now() already is.
  if (!stop_requested_ && !global_.stopped()) {
    if (drain) {
      TimeNs last = global_.now();
      for (const auto& shard : shards_) last = std::max(last, shard->now());
      global_.advance_to(last);
    } else {
      global_.advance_to(until);
      for (auto& shard : shards_) shard->advance_to(until);
    }
  }
  fold_worker_stats();
}

void ShardedSimulator::superstep(const OrderKey& bound, TimeNs clock_to) {
  for (int k = 0; k < num_shards_; ++k) {
    window_before_[static_cast<std::size_t>(k)] =
        shards_[static_cast<std::size_t>(k)]->events_executed();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    bound_ = bound;
    clock_to_ = clock_to;
    done_ = 0;
    ++epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return done_ == num_shards_; });
  }
  for (int k = 0; k < num_shards_; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    const std::uint64_t executed = shards_[idx]->events_executed();
    ShardPerf& perf = perf_[idx];
    if (executed == window_before_[idx]) ++perf.null_steps;
    perf.events = executed;
    perf.merged_msgs = shards_[idx]->keyed_pushes();
  }
}

void ShardedSimulator::finalize_window() {
  // Each shard's window log lists the keys it executed, in local execution
  // order — which is serial order restricted to that shard.  A k-way merge
  // over the logs therefore visits the window's events in exact serial
  // order; each visit assigns the next global rank.  A logged key may still
  // be provisional (the event was pushed and consumed inside this window):
  // its pusher sits earlier in the same log — strictly smaller key, hence
  // already merged and ranked — so heads always resolve.
  const auto resolve_head = [&](int k) -> bool {
    auto& shard = *shards_[static_cast<std::size_t>(k)];
    const auto& log = shard.window_log();
    const std::size_t pos = merge_pos_[static_cast<std::size_t>(k)];
    if (pos == log.size()) return false;
    OrderKey key = log[pos];
    if (key.rank >= kProvisionalRankBase) {
      const std::uint64_t idx =
          key.rank - kProvisionalRankBase - shard.window_log_base();
      key.rank = ranks_scratch_[static_cast<std::size_t>(k)][idx];
    }
    merge_head_[static_cast<std::size_t>(k)] = key;
    return true;
  };

  std::size_t remaining = 0;
  for (int k = 0; k < num_shards_; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    merge_pos_[idx] = 0;
    ranks_scratch_[idx].resize(shards_[idx]->window_log().size());
    remaining += shards_[idx]->window_log().size();
    resolve_head(k);
  }
  while (remaining > 0) {
    int best = -1;
    for (int k = 0; k < num_shards_; ++k) {
      const auto idx = static_cast<std::size_t>(k);
      if (merge_pos_[idx] == shards_[idx]->window_log().size()) continue;
      if (best < 0 ||
          merge_head_[idx] < merge_head_[static_cast<std::size_t>(best)]) {
        best = k;
      }
    }
    const auto bidx = static_cast<std::size_t>(best);
    ranks_scratch_[bidx][merge_pos_[bidx]++] = ++rank_counter_;
    resolve_head(best);
    --remaining;
  }
  for (int k = 0; k < num_shards_; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    // finalize_window swaps buffers, handing the old rank vector back into
    // the scratch slot so no allocation recurs at steady state.
    shards_[idx]->finalize_window(std::move(ranks_scratch_[idx]));
  }
}

void ShardedSimulator::worker_main(int k) {
  const auto idx = static_cast<std::size_t>(k);
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const std::uint64_t wait_start = steady_ns();
    cv_work_.wait(lock, [&] { return quit_ || epoch_ != seen_epoch; });
    workers_[idx].blocked_ns += steady_ns() - wait_start;
    if (quit_) return;
    seen_epoch = epoch_;
    const OrderKey bound = bound_;
    const TimeNs clock_to = clock_to_;
    lock.unlock();

    Simulator& sim = *shards_[idx];
    sim.run_to_key(bound);
    sim.advance_to(clock_to);

    lock.lock();
    workers_[idx].published = substrate_stats();
    if (++done_ == num_shards_) cv_done_.notify_one();
  }
}

void ShardedSimulator::fold_worker_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int k = 0; k < num_shards_; ++k) {
    const auto idx = static_cast<std::size_t>(k);
    WorkerState& w = workers_[idx];
    substrate_stats() += w.published - w.folded;
    w.folded = w.published;
    perf_[idx].blocked_ns = w.blocked_ns;
  }
}

}  // namespace numfabric::sim
