#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace numfabric::sim {

EventId EventQueue::push(TimeNs at, std::function<void()> action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{at, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  live_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  // A cancelled entry stays in the heap as a tombstone (absent from live_)
  // and is skipped lazily when it reaches the head.
  live_.erase(id);
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && live_.find(heap_.front().id) == live_.end()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

TimeNs EventQueue::next_time() {
  drop_cancelled_head();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::pair<TimeNs, std::function<void()>> EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  live_.erase(entry.id);
  return {entry.at, std::move(entry.action)};
}

}  // namespace numfabric::sim
