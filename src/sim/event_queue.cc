#include "sim/event_queue.h"

#include <utility>

namespace numfabric::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  if (slots_.size() == slots_.capacity()) {
    ++substrate_stats().allocs_event_queue;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.action.reset();
  if (++s.generation == 0) s.generation = 1;  // keep handles != kNoEvent
  if (free_slots_.size() == free_slots_.capacity()) {
    ++substrate_stats().allocs_event_queue;
  }
  free_slots_.push_back(slot);
}

void EventQueue::sift_up(std::size_t pos) {
  util::dary_sift_up(heap_, pos, Before{}, track_position());
}

void EventQueue::sift_down(std::size_t pos) {
  util::dary_sift_down(heap_, pos, Before{}, track_position());
}

void EventQueue::remove_entry(std::size_t pos) {
  const std::size_t last = heap_.size() - 1;
  if (pos == last) {
    heap_.pop_back();
    return;
  }
  heap_[pos] = heap_[last];
  slots_[heap_[pos].slot].heap_pos = static_cast<std::uint32_t>(pos);
  heap_.pop_back();
  // The migrated element may violate the property in either direction.
  sift_down(pos);
  sift_up(pos);
}

void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return;  // already fired, already cancelled, or never scheduled
  }
  remove_entry(slots_[slot].heap_pos);
  release_slot(slot);
  ++substrate_stats().events_cancelled;
}

std::uint64_t* EventQueue::rank_of(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || slots_[slot].generation != generation) {
    return nullptr;  // already fired or cancelled
  }
  return &heap_[slots_[slot].heap_pos].rank;
}

EventQueue::Fired EventQueue::pop() {
  assert(!heap_.empty());
  const Entry root = heap_.front();
  Fired fired{root.at, root.rank, root.seq, std::move(slots_[root.slot].action)};
  util::dary_pop_root(heap_, Before{}, track_position());
  release_slot(root.slot);
  ++substrate_stats().events_fired;
  return fired;
}

}  // namespace numfabric::sim
