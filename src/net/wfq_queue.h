// Weighted fair queueing via Start-Time Fair Queueing (STFQ).
//
// This is the switch scheduler NUMFabric's Swift layer relies on (§4.1, §5).
// Following the paper's hardware sketch (Eq. 12–13):
//
//   S(p_i^k) = max(V, F(p_i^{k-1}))
//   F(p_i^k) = S(p_i^k) + L(p_i^k) / w_i
//
// packets are served in ascending order of virtual start time S, and V is the
// virtual start time of the packet currently in service.  Crucially, the
// switch never learns w_i: the sender ships L/w pre-divided in the
// `virtual_packet_len` header field, which lets weights change on a
// packet-by-packet basis — the property xWI depends on.
//
// Control packets carry virtual_packet_len == 0, so they consume no virtual
// time (S == F) and effectively ride for free, as in the paper.
//
// Storage: packets live in a free-list pool; the 4-ary min-heap orders
// 24-byte {start, seq, slot} PODs, so heap sifts never move whole Packets.
// Per-flow finish tags live in a DenseFlowTable instead of an
// unordered_map.  Steady-state enqueue/dequeue performs zero allocations.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <vector>

#include "net/flow_table.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "util/dary_heap.h"

namespace numfabric::net {

class WfqQueue : public Queue {
 public:
  explicit WfqQueue(std::size_t capacity_bytes) : Queue(capacity_bytes) {}

  // Definitions are inline (bottom of this header): when the concrete type
  // is known — the micro-benchmarks, scheme-specialized drain loops — the
  // compiler can inline the whole hot path instead of a virtual call.
  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;

  /// Current virtual time (exposed for tests).
  double virtual_time() const { return virtual_time_; }

  /// Number of flows with scheduler state (exposed for GC tests).
  std::size_t tracked_flows() const { return last_finish_.size(); }

 private:
  // 16-byte heap node holding one packed sort key.  Virtual start tags are
  // non-negative, so the IEEE-754 bit pattern of `start` orders exactly like
  // the double itself; below it sit the arrival sequence and the pool slot
  // ((seq << kSlotBits) | slot).  Sequences are unique, so ordering by the
  // single 128-bit key equals lexicographic (start, seq) — STFQ order with
  // the deterministic FIFO tie-break — in one integer compare per sift step
  // instead of a two-stage float-then-int compare.
  static constexpr unsigned kSlotBits = PacketPool::kSlotBits;
  struct Entry {
    unsigned __int128 key;

    static Entry make(double start, std::uint64_t seq, std::uint32_t slot) {
      std::uint64_t start_bits;
      static_assert(sizeof(start_bits) == sizeof(start));
      std::memcpy(&start_bits, &start, sizeof(start));
      return Entry{(static_cast<unsigned __int128>(start_bits) << 64) |
                   (seq << kSlotBits) | slot};
    }
    double start() const {
      const auto bits = static_cast<std::uint64_t>(key >> 64);
      double s;
      std::memcpy(&s, &bits, sizeof(s));
      return s;
    }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & ((1u << kSlotBits) - 1);
    }
  };

  // A functor type (not a function pointer) so the sift loops inline it.
  struct Before {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key < b.key;
    }
  };

  void repair_heap();
  void garbage_collect_idle_flows();

  std::vector<Entry> heap_;  // 4-ary min-heap on (start, seq)
  PacketPool pool_;          // packet storage behind the heap's slot indices
  DenseFlowTable<double> last_finish_;   // F(p_i^{k-1}) per flow
  double virtual_time_ = 0.0;
  std::uint64_t arrival_seq_ = 0;
  std::uint64_t pops_since_gc_ = 0;
  std::size_t pending_ = 0;  // raw appends since the last heap repair
};


// How often (in dequeues) to sweep scheduler state of idle flows.  A flow
// whose last finish tag is behind the virtual clock would get S = V anyway,
// so dropping its entry does not change the schedule.
inline constexpr std::uint64_t kWfqGcInterval = 4096;

inline bool WfqQueue::enqueue(Packet&& p) {
  if (would_overflow(p)) {
    account_drop();
    return false;
  }
  // V only grows and start tags are >= 0, so a flow without a tracked tag
  // (default 0.0) gets S = V exactly as if its entry had been dropped by GC.
  double& finish = last_finish_[p.flow];
  const double start = std::max(virtual_time_, finish);
  finish = start + p.virtual_packet_len;
  account_push(p);
  const std::uint32_t slot = pool_.acquire(std::move(p));
  if (heap_.size() == heap_.capacity()) {
    ++sim::substrate_stats().allocs_queue;
  }
  // Deferred sift: the entry is appended raw and the heap repaired at the
  // next dequeue.  Legal because the sort key is a strict total order
  // (sequences are unique), so the pop sequence — and therefore every
  // scheduling decision — is identical for any valid heap arrangement.
  // Bursty arrivals (incast waves hitting a port between drains) then pay
  // one O(burst) Floyd heapify instead of burst * log(n) sift-ups.
  heap_.push_back(Entry::make(start, arrival_seq_++, slot));
  ++pending_;
  return true;
}

inline std::optional<Packet> WfqQueue::dequeue() {
  if (heap_.empty()) return std::nullopt;
  if (pending_ > 0) repair_heap();
  const Entry entry = heap_.front();
  // Pull the served packet's cache lines in while the sift below runs; the
  // 128-byte copy out of the pool is the tail of this function.
  __builtin_prefetch(&pool_[entry.slot()]);
  __builtin_prefetch(reinterpret_cast<const char*>(&pool_[entry.slot()]) + 64);
  util::dary_pop_root(heap_, Before{},
                      [](const auto&, std::size_t) {});
  virtual_time_ = entry.start();  // V = start tag of packet entering service
  account_pop(pool_[entry.slot()]);
  if (++pops_since_gc_ >= kWfqGcInterval) {
    pops_since_gc_ = 0;
    garbage_collect_idle_flows();
  }
  // Move straight from the pool slot into the return value — one packet
  // copy, not two — and only then release the slot (the free-list link
  // overwrites the packet's first bytes).
  std::optional<Packet> out(std::move(pool_[entry.slot()]));
  pool_.release(entry.slot());
  return out;
}

}  // namespace numfabric::net
