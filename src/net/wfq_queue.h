// Weighted fair queueing via Start-Time Fair Queueing (STFQ).
//
// This is the switch scheduler NUMFabric's Swift layer relies on (§4.1, §5).
// Following the paper's hardware sketch (Eq. 12–13):
//
//   S(p_i^k) = max(V, F(p_i^{k-1}))
//   F(p_i^k) = S(p_i^k) + L(p_i^k) / w_i
//
// packets are served in ascending order of virtual start time S, and V is the
// virtual start time of the packet currently in service.  Crucially, the
// switch never learns w_i: the sender ships L/w pre-divided in the
// `virtual_packet_len` header field, which lets weights change on a
// packet-by-packet basis — the property xWI depends on.
//
// Control packets carry virtual_packet_len == 0, so they consume no virtual
// time (S == F) and effectively ride for free, as in the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/queue.h"

namespace numfabric::net {

class WfqQueue : public Queue {
 public:
  explicit WfqQueue(std::size_t capacity_bytes) : Queue(capacity_bytes) {}

  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;

  /// Current virtual time (exposed for tests).
  double virtual_time() const { return virtual_time_; }

  /// Number of flows with scheduler state (exposed for GC tests).
  std::size_t tracked_flows() const { return last_finish_.size(); }

 private:
  struct Entry {
    double start;       // virtual start time S
    std::uint64_t seq;  // arrival order; breaks ties deterministically
    Packet packet;
  };
  // Inverted so the std:: heap algorithms yield a min-heap on (start, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.start != b.start) return a.start > b.start;
      return a.seq > b.seq;
    }
  };

  void garbage_collect_idle_flows();

  std::vector<Entry> heap_;  // std::push_heap / std::pop_heap
  std::unordered_map<FlowId, double> last_finish_;  // F(p_i^{k-1}) per flow
  double virtual_time_ = 0.0;
  std::uint64_t arrival_seq_ = 0;
  std::uint64_t pops_since_gc_ = 0;
};

}  // namespace numfabric::net
