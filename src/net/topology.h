// Topology: owns nodes and links, provides builders for the paper's setups.
//
// Evaluation topologies (§6):
//  * leaf-spine, 128 hosts / 8 leaves / 4 spines, 10G edge + 40G core,
//    16 us base RTT, 1 MB per-port buffers (Fig. 4-6);
//  * leaf-spine, 128 hosts / 8 leaves / 16 spines, all-10G (Fig. 8);
//  * single bottleneck link with variable capacity (Fig. 9);
//  * the three-link topology of Fig. 10;
// plus dumbbell and parking-lot used by tests.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric_graph.h"
#include "net/link.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace numfabric::net {

/// Builds the queue for one link direction; lets the transport scheme choose
/// the scheduler (WFQ for NUMFabric, FIFO+ECN for DCTCP, ...).
using QueueFactory = std::function<std::unique_ptr<Queue>()>;

/// A convenient default: FIFO with the paper's 1 MB per-port buffer.
QueueFactory drop_tail_factory(std::size_t capacity_bytes = 1'000'000);

/// The object view of a FabricGraph after Topology::materialize: every vector
/// is indexed by the *graph's* numbering (`links[l]` is graph link l, which is
/// also its dense position in Topology::links()).
struct MaterializedFabric {
  std::vector<Node*> nodes;
  std::vector<Link*> links;
  std::vector<Host*> hosts;        // graph host order
  std::vector<Switch*> switches;   // graph switch order
};

class Topology {
 public:
  explicit Topology(sim::Simulator& sim) : sim_(sim) {}

  Host* add_host(std::string name);
  Switch* add_switch(std::string name);

  /// Connects a and b with a full-duplex cable (two unidirectional links that
  /// know each other as twins).  Returns {a->b, b->a}.
  std::pair<Link*, Link*> connect(Node* a, Node* b, double rate_bps,
                                  sim::TimeNs delay, const QueueFactory& make_queue);

  /// Instantiates Node/Link/Queue objects for `graph`: nodes in graph order,
  /// then one connect() per cable in cable order (graph link id == index in
  /// links()).  `make_queue` builds queues for edge cables (those touching a
  /// host); `make_core_queue`, when non-null, builds switch-switch queues
  /// instead — per-tier buffer sizing.
  MaterializedFabric materialize(const FabricGraph& graph,
                                 const QueueFactory& make_queue,
                                 const QueueFactory& make_core_queue = nullptr);

  sim::Simulator& sim() { return sim_; }

  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }
  const std::vector<Host*>& hosts() const { return hosts_; }
  const std::vector<Switch*>& switches() const { return switches_; }

  /// Outgoing links of a node (for path enumeration).
  const std::vector<Link*>& outgoing(const Node* node) const;

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Host*> hosts_;
  std::vector<Switch*> switches_;
  std::unordered_map<const Node*, std::vector<Link*>> adjacency_;
  NodeId next_node_id_ = 0;
};

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

// LeafSpineOptions (and the other graph builders) live in net/fabric_graph.h;
// this header re-exports them via its include for the object-topology layer.

struct LeafSpine {
  /// The data-first description the fabric was materialized from, and the
  /// graph-indexed object view (shard planning, path tables).
  FabricGraph graph;
  MaterializedFabric mat;

  std::vector<Host*> hosts;
  std::vector<Switch*> leaves;
  std::vector<Switch*> spines;
  /// Every leaf-spine link, both directions, in creation order (leaf-major,
  /// uplink before downlink) — the contended tier for utilization metrics.
  std::vector<Link*> core_links;

  /// Base (zero-load) RTT between two hosts under different leaves,
  /// including serialization of one data packet + one ACK per store-and-
  /// forward hop, each at that hop's own rate.
  sim::TimeNs cross_leaf_rtt = 0;
};

/// Builds the fabric: make_leaf_spine(options) + materialize.  `make_queue`
/// creates edge (host-leaf) queues; `make_core_queue`, when non-null, creates
/// the leaf-spine queues instead — per-tier buffer sizing for contended
/// cores.  Throws std::invalid_argument on non-positive counts or rates.
LeafSpine build_leaf_spine(Topology& topo, const LeafSpineOptions& options,
                           const QueueFactory& make_queue,
                           const QueueFactory& make_core_queue = nullptr);

struct Dumbbell {
  std::vector<Host*> senders;
  std::vector<Host*> receivers;
  Switch* left = nullptr;
  Switch* right = nullptr;
  Link* bottleneck = nullptr;  // left -> right
};

/// N senders and N receivers sharing one bottleneck of `bottleneck_bps`.
/// Edge links run at `edge_bps` (set it >= N * bottleneck to make the middle
/// link the only bottleneck).
Dumbbell build_dumbbell(Topology& topo, int n, double edge_bps,
                        double bottleneck_bps, sim::TimeNs delay,
                        const QueueFactory& make_queue);

struct ParkingLot {
  std::vector<Host*> hosts;        // host[i] attaches to switch[i]
  std::vector<Switch*> switches;   // chain of n+1 switches
  std::vector<Link*> backbone;     // switch[i] -> switch[i+1]
};

/// Chain of `n` backbone links; the classic multi-bottleneck fairness
/// topology (one long flow vs n one-hop flows).
ParkingLot build_parking_lot(Topology& topo, int n, double rate_bps,
                             sim::TimeNs delay, const QueueFactory& make_queue);

struct Fig10Topology {
  Host* src1 = nullptr;
  Host* src2 = nullptr;
  Host* dst1 = nullptr;
  Host* dst2 = nullptr;
  Link* top = nullptr;     // 5 Gbps, usable only by flow 1
  Link* middle = nullptr;  // X Gbps, shared
  Link* bottom = nullptr;  // 3 Gbps, usable only by flow 2
  Switch* in = nullptr;
  Switch* out = nullptr;
};

/// The Fig. 10 topology: two ingress/egress switches joined by three parallel
/// links (5 / X / 3 Gbps).  Flow 1 may use {top, middle}, flow 2 {bottom,
/// middle}; the experiment constructs those paths explicitly.
Fig10Topology build_fig10(Topology& topo, double middle_rate_bps,
                          sim::TimeNs delay, const QueueFactory& make_queue,
                          double edge_rate_bps = 100e9);

}  // namespace numfabric::net
