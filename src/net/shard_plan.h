// Leaf-sharding of a leaf-spine fabric for the parallel engine.
//
// Partition: leaf L (its switch, its hosts, and every link whose source is
// one of them) lives on shard L * S / num_leaves — contiguous leaf-major
// blocks, so stream ranks follow the leaf-major order in which serial setup
// enumerates hosts and flows.  Spine s lives on shard s % S.  A link belongs
// to the shard of its SOURCE node (its transmitter and queue are that
// shard's state); the only cross-shard hops are therefore leaf->spine and
// spine->leaf deliveries, both across a core link — which makes the core
// propagation delay the engine's conservative lookahead.
//
// ShardRouter carries those deliveries: the source link posts a timestamped
// message into a per-(src,dst) channel carrying the (rank, seq) key the
// serial push would have had (a provisional rank if the posting event ran
// inside a window; the engine finalizes it before the message is drained).
// The engine's barrier merge drains every channel in a fixed (dst-major,
// src-minor, FIFO) order into the destination shard's queue via
// Simulator::schedule_keyed — insertion order is immaterial for correctness
// since keys are total, but a fixed order keeps the walk deterministic.
// Channels are mutex-guarded but phase-separated: sources post during
// windows, the coordinator drains at barriers, so the locks are uncontended
// and exist for the memory ordering.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"
#include "sim/sharded_simulator.h"
#include "sim/time.h"

namespace numfabric::net {

struct ShardPlan {
  int shards = 1;
  /// Minimum delay of any cross-shard link (the core propagation delay).
  sim::TimeNs lookahead = 0;
  std::unordered_map<const Node*, int> node_shard;

  int shard_of(const Node* node) const;
};

/// Resolves a --shards request: 0 means "one shard per leaf, capped at the
/// machine's core count"; any request is clamped to [1, num_leaves].
int resolve_shard_count(int requested, int num_leaves);

/// Why the planner cannot derive a partition from `graph` — empty when it
/// can.  A partition needs a leaf/spine cut: hosts single-homed to tier-1
/// switches, a non-empty tier-2, and no cables inside either switch tier.
/// Non-Clos fabrics (jellyfish) fail with an explanation naming the obstacle
/// so drivers can reject --shards=N loudly instead of assuming leaf-spine
/// structure.
std::string shard_partition_obstacle(const FabricGraph& graph);

/// Derives the shard plan from graph structure: tier-1 switches in insertion
/// order form leaf-major blocks (switch l on shard l * shards / num_tier1),
/// their hosts follow them, tier-2 switches go round-robin, and the
/// lookahead is the minimum tier-1<->tier-2 cable delay (the cut the
/// conservative engine synchronizes across).  Throws std::invalid_argument
/// with the shard_partition_obstacle() text when no partition exists, or
/// when shards is outside [1, num_tier1].
ShardPlan build_shard_plan(const FabricGraph& graph,
                           const MaterializedFabric& mat, int shards);

/// Assigns every node of `fabric` to a shard (leaf-major blocks; spines
/// round-robin) and derives the lookahead from the core-link delay.
/// Equivalent to build_shard_plan on the fabric's graph.
ShardPlan build_leaf_shard_plan(const LeafSpine& fabric,
                                const LeafSpineOptions& options, int shards);

/// Cross-shard packet delivery channels (see file comment).
class ShardRouter {
 public:
  ShardRouter(sim::ShardedSimulator& engine);
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Posts a delivery that fires at `fire` on `dst_shard`, carrying the
  /// (rank, seq) key the serial push would have had (see
  /// Simulator::consume_push_key).  Called by source links during windows
  /// (and by flow-start sends on the coordinator, with all workers
  /// quiesced).
  void post(int src_shard, int dst_shard, sim::TimeNs fire, sim::PushKey key,
            Node* dst, Packet&& packet);

 private:
  struct Message {
    sim::TimeNs fire;
    sim::PushKey key;
    int src_shard;
    Node* dst;
    Packet packet;
  };
  struct Channel {
    std::mutex mu;
    std::vector<Message> fifo;
  };
  /// Parked packets per destination shard; the merged delivery event
  /// captures only (router, shard, slot, node) and stays inline in the
  /// event queue's small-buffer slot.
  struct Slab {
    std::vector<Packet> packets;
    std::vector<std::uint32_t> free;
  };

  /// Barrier hook: drains every channel into the destination queues in a
  /// fixed deterministic order.  Runs on the coordinator, workers quiesced.
  void merge();
  void deliver(int dst_shard, std::uint32_t slot, Node* dst);
  Channel& channel(int src, int dst) {
    return *channels_[static_cast<std::size_t>(src * shards_ + dst)];
  }

  sim::ShardedSimulator& engine_;
  const int shards_;
  std::vector<std::unique_ptr<Channel>> channels_;  // [src * shards_ + dst]
  std::vector<Slab> slabs_;                         // per destination shard
};

/// Rebinds every link of `topo` onto its shard's simulator and routes
/// cross-shard deliveries through `router`.  Must run after the fabric is
/// built and before any traffic.  Throws std::logic_error if a cross-shard
/// link is shorter than the plan's lookahead (the conservative bound would
/// be unsound).
void apply_shard_plan(Topology& topo, const ShardPlan& plan,
                      sim::ShardedSimulator& engine, ShardRouter& router);

}  // namespace numfabric::net
