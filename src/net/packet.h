// The simulated packet.
//
// One value type carries the union of all header fields used by the schemes
// under study (NUMFabric §5, DGD §3, RCP* §6, DCTCP, pFabric).  In a real
// deployment each scheme defines its own transport option; in the simulator
// a flat struct keeps the hot path allocation-free and the code simple.
// Fields not used by the active scheme stay at their defaults.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace numfabric::net {

class Link;

/// Identifies a flow (for multipath objectives, a sub-flow).
using FlowId = std::uint64_t;

/// A source route: the ordered list of links a packet traverses from the
/// sender's NIC to the receiver.  Flows own their Path objects; packets point
/// at them.  See DESIGN.md §5 on source routing vs per-hop ECMP.
struct Path {
  std::vector<Link*> links;

  std::size_t hops() const { return links.size(); }
};

enum class PacketType : std::uint8_t {
  kData,  // carries payload bytes
  kAck,   // control: acknowledgment with echoed feedback
};

// Fields are laid out widest-first (8-byte, then 4-byte, then 1-byte) so the
// struct packs into exactly two cache lines (128 bytes, vs 168 naturally
// ordered) — packets are copied into and out of queue pools and in-flight
// rings on every hop, so the copy width is hot-path cost.
struct Packet {
  FlowId flow = 0;
  std::uint64_t seq = 0;       // data: offset of first payload byte
  const Path* path = nullptr;  // route of THIS packet (ACKs use reverse path)

  // --- NUMFabric header fields (§5) ------------------------------------
  // L(p)/w: the packet length divided by the flow's Swift weight.  Written
  // by the sender, consumed by WFQ switches (Eq. 13).  Zero on control
  // packets.
  double virtual_packet_len = 0.0;
  // Sum of link prices accumulated along the path (xWI).
  double path_price = 0.0;
  // (U'(x) - path price) / path length, written by the sender; switches take
  // the min over flows (Eq. 9 / Fig. 3).
  double normalized_residual = 0.0;

  // --- DGD / RCP* shared accumulator ------------------------------------
  // DGD: sum of link prices.  RCP*: sum of R_l^-alpha (Eq. 16).
  double path_feedback = 0.0;

  // --- pFabric -----------------------------------------------------------
  // Remaining flow size at send time; smaller = more urgent.
  double priority = 0.0;

  // --- ACK-echoed feedback -------------------------------------------------
  std::uint64_t ack_seq = 0;               // cumulative bytes received in order
  sim::TimeNs echo_inter_packet_time = 0;  // receiver-measured gap (Swift)
  double echo_path_price = 0.0;
  double echo_path_feedback = 0.0;

  sim::TimeNs sent_time = 0;  // stamped by the sender (RTT estimation)

  std::uint32_t size = 0;  // bytes on the wire (payload + header)
  std::uint32_t hop = 0;   // index into path->links of the link last used
  // Number of links traversed (|L(i)|).
  std::uint32_t path_len = 0;
  std::uint32_t acked_bytes = 0;  // bytes covered by the acked packet
  std::uint32_t echo_path_len = 0;

  PacketType type = PacketType::kData;

  // --- ECN (DCTCP) --------------------------------------------------------
  bool ecn_capable = false;
  bool ecn_marked = false;
  bool echo_ecn = false;

  bool is_data() const { return type == PacketType::kData; }
};

/// Default wire sizes used throughout the reproduction.
inline constexpr std::uint32_t kDataPacketBytes = 1500;
inline constexpr std::uint32_t kAckPacketBytes = 40;
inline constexpr std::uint32_t kMaxPayloadBytes = kDataPacketBytes - 40;

}  // namespace numfabric::net
