// A unidirectional link: queue + serializer + propagation delay.
//
// Store-and-forward: a packet occupies the transmitter for size*8/rate, then
// arrives at the peer node `delay` later.  Per-link protocol state (xWI
// prices, DGD prices, RCP* fair-share rates) hangs off the link as a
// LinkAgent, mirroring how the paper attaches per-egress-port computation to
// switches (Fig. 3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/packet.h"
#include "net/queue.h"
#include "sim/simulator.h"
#include "util/ring_buffer.h"

namespace numfabric::net {

class Node;
class ShardRouter;

/// Per-link hook for scheme-specific state machines.  This is the legacy
/// object-per-link encoding (one virtual agent, one timer event per link);
/// production fabrics wire links into the batched transport::ControlPlane
/// via attach_control() instead, and the agent classes remain as reference
/// implementations the parity tests compare the batched sweep against.
class LinkAgent {
 public:
  virtual ~LinkAgent() = default;

  /// Called before the packet is offered to the queue.
  virtual void on_enqueue(const Packet& packet) { (void)packet; }

  /// Called when the packet begins serialization (may stamp header fields).
  virtual void on_dequeue(Packet& packet) { (void)packet; }
};

/// What the inline control-plane hooks do on this link's hot path (which
/// observation the data path records and which packet field the per-link
/// stamp accumulates into).  See transport::ControlPlane.
enum class ControlStamp : std::uint8_t {
  kNone,
  /// xWI: track the min normalized residual over DATA enqueues; stamp the
  /// link price into path_price (and bump path_len) on DATA dequeue.
  kXwiPrice,
  /// DGD / RCP*: accumulate the per-link value into path_feedback on DATA
  /// dequeue (DGD: the price; RCP*: R^-alpha, precomputed per tick).
  kFeedback,
};

/// Dense per-link control-plane state, indexed by each link's slot id.  The
/// owning transport::ControlPlane sizes the arrays once at attach time (they
/// never move afterwards); links write observations straight into them from
/// the forwarding hot path — an index-addressed store, no virtual dispatch —
/// and the single batched tick sweeps them in slot order.
struct LinkControlArrays {
  const double* stamp = nullptr;         // per-DATA-packet price / feedback
  double* min_residual = nullptr;        // xWI: min over DATA enqueues
  std::uint8_t* saw_residual = nullptr;  // xWI: any finite residual seen
  std::uint64_t* bytes_serviced = nullptr;
};

class Link {
 public:
  Link(sim::Simulator& sim, std::string name, double rate_bps,
       sim::TimeNs delay, std::unique_ptr<Queue> queue, Node* dst);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Offers a packet to this link's queue and starts transmitting if idle.
  void send(Packet&& packet);

  const std::string& name() const { return name_; }
  double rate_bps() const { return rate_bps_; }

  /// Changes the link speed at runtime (Fig. 10 varies a link's capacity
  /// mid-experiment).  Applies from the next serialized packet on; a packet
  /// already in flight finishes at the old rate.
  void set_rate_bps(double rate_bps);
  sim::TimeNs delay() const { return delay_; }
  Node* dst() const { return dst_; }
  Queue& queue() { return *queue_; }
  const Queue& queue() const { return *queue_; }

  /// The opposite-direction link of the same cable (set by Topology).
  Link* twin() const { return twin_; }
  void set_twin(Link* twin) { twin_ = twin; }

  void set_agent(std::unique_ptr<LinkAgent> agent) { agent_ = std::move(agent); }
  LinkAgent* agent() const { return agent_.get(); }

  /// Wires this link into a batched control plane: the forwarding hot path
  /// reads/writes `arrays` at index `slot` according to `mode`.  The caller
  /// guarantees the arrays outlive the link's last forwarded packet and stay
  /// at a fixed address.  Pass kNone/nullptr to detach.
  void attach_control(ControlStamp mode, const LinkControlArrays* arrays,
                      std::uint32_t slot) {
    control_mode_ = mode;
    control_ = mode == ControlStamp::kNone ? nullptr : arrays;
    control_slot_ = slot;
  }
  bool has_control_slot() const { return control_mode_ != ControlStamp::kNone; }
  std::uint32_t control_slot() const { return control_slot_; }

  /// Total bytes serialized since construction (for utilization metrics).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  // --- sharded-engine wiring (see net/shard_plan.h) ------------------------

  /// Moves this link onto another event stream (its owning shard's
  /// simulator).  Must happen before any packet is offered.
  void rebind_sim(sim::Simulator& sim) { sim_ = &sim; }

  /// Marks the link's destination node as living on a different shard:
  /// deliveries are posted to `router` as timestamped cross-shard messages
  /// instead of being scheduled locally.  The serialization-finish event
  /// stays local (the transmitter is shard-owned state).
  void set_cross_shard(ShardRouter* router, int src_shard, int dst_shard) {
    cross_router_ = router;
    cross_src_shard_ = src_shard;
    cross_dst_shard_ = dst_shard;
  }

 private:
  void try_start_tx();
  void deliver_front();

  sim::Simulator* sim_;
  std::string name_;
  double rate_bps_;
  sim::TimeNs delay_;
  std::unique_ptr<Queue> queue_;
  Node* dst_;
  Link* twin_ = nullptr;
  std::unique_ptr<LinkAgent> agent_;
  // Batched control plane wiring (see attach_control).
  const LinkControlArrays* control_ = nullptr;
  std::uint32_t control_slot_ = 0;
  ControlStamp control_mode_ = ControlStamp::kNone;
  bool busy_ = false;
  std::uint64_t bytes_sent_ = 0;
  // Cross-shard delivery (null for serial runs and intra-shard links).
  ShardRouter* cross_router_ = nullptr;
  int cross_src_shard_ = 0;
  int cross_dst_shard_ = 0;
  // Packets serialized but not yet delivered, in transmit order.  Delivery
  // times are (serialization finish + constant delay) and finishes are
  // strictly increasing, so deliveries pop FIFO.  Keeping the packet here —
  // rather than captured by value in the delivery closure — is what makes
  // per-packet forwarding allocation-free: the delivery event captures only
  // `this`, and the ring's slots are reused.
  util::RingBuffer<Packet> inflight_;
};

}  // namespace numfabric::net
