#include "net/shard_plan.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/node.h"
#include "sim/substrate_stats.h"

namespace numfabric::net {

int ShardPlan::shard_of(const Node* node) const {
  const auto it = node_shard.find(node);
  if (it == node_shard.end()) {
    throw std::logic_error("ShardPlan: node not in plan: " + node->name());
  }
  return it->second;
}

int resolve_shard_count(int requested, int num_leaves) {
  if (requested == 0) {
    const int cores =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    requested = cores;
  }
  return std::clamp(requested, 1, std::max(1, num_leaves));
}

ShardPlan build_leaf_shard_plan(const LeafSpine& fabric,
                                const LeafSpineOptions& options, int shards) {
  const int num_leaves = static_cast<int>(fabric.leaves.size());
  if (shards < 1 || shards > num_leaves) {
    throw std::invalid_argument("build_leaf_shard_plan: shards out of range");
  }
  ShardPlan plan;
  plan.shards = shards;
  plan.lookahead = options.effective_core_delay();
  for (int l = 0; l < num_leaves; ++l) {
    plan.node_shard[fabric.leaves[static_cast<std::size_t>(l)]] =
        l * shards / num_leaves;
  }
  for (std::size_t h = 0; h < fabric.hosts.size(); ++h) {
    const int leaf = static_cast<int>(h) / options.hosts_per_leaf;
    plan.node_shard[fabric.hosts[h]] = leaf * shards / num_leaves;
  }
  for (std::size_t s = 0; s < fabric.spines.size(); ++s) {
    plan.node_shard[fabric.spines[s]] = static_cast<int>(s) % shards;
  }
  return plan;
}

ShardRouter::ShardRouter(sim::ShardedSimulator& engine)
    : engine_(engine), shards_(engine.num_shards()) {
  channels_.reserve(static_cast<std::size_t>(shards_ * shards_));
  for (int i = 0; i < shards_ * shards_; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  slabs_.resize(static_cast<std::size_t>(shards_));
  engine_.add_barrier_hook([this] { merge(); });
}

void ShardRouter::post(int src_shard, int dst_shard, sim::TimeNs fire,
                       sim::PushKey key, Node* dst, Packet&& packet) {
  Channel& ch = channel(src_shard, dst_shard);
  std::lock_guard<std::mutex> lock(ch.mu);
  if (ch.fifo.size() == ch.fifo.capacity()) {
    ++sim::substrate_stats().allocs_packet_pool;
  }
  ch.fifo.push_back(Message{fire, key, src_shard, dst, std::move(packet)});
}

void ShardRouter::merge() {
  for (int dst = 0; dst < shards_; ++dst) {
    sim::Simulator& dsim = engine_.shard(dst);
    Slab& slab = slabs_[static_cast<std::size_t>(dst)];
    for (int src = 0; src < shards_; ++src) {
      if (src == dst) continue;
      Channel& ch = channel(src, dst);
      std::lock_guard<std::mutex> lock(ch.mu);
      for (Message& m : ch.fifo) {
        std::uint32_t slot;
        if (!slab.free.empty()) {
          slot = slab.free.back();
          slab.free.pop_back();
        } else {
          if (slab.packets.size() == slab.packets.capacity()) {
            ++sim::substrate_stats().allocs_packet_pool;
          }
          slot = static_cast<std::uint32_t>(slab.packets.size());
          slab.packets.emplace_back();
        }
        slab.packets[slot] = std::move(m.packet);
        // A message posted inside the last window carries a provisional
        // rank; the source shard finalized it at the barrier just taken.
        const std::uint64_t rank =
            engine_.shard(m.src_shard).resolve_rank(m.key.rank);
        dsim.schedule_keyed(m.fire, rank, m.key.seq,
                            [this, dst, slot, node = m.dst] {
                              deliver(dst, slot, node);
                            });
      }
      ch.fifo.clear();
    }
  }
}

void ShardRouter::deliver(int dst_shard, std::uint32_t slot, Node* dst) {
  Slab& slab = slabs_[static_cast<std::size_t>(dst_shard)];
  Packet packet = std::move(slab.packets[slot]);
  if (slab.free.size() == slab.free.capacity()) {
    ++sim::substrate_stats().allocs_packet_pool;
  }
  slab.free.push_back(slot);
  dst->receive(std::move(packet));
}

void apply_shard_plan(Topology& topo, const ShardPlan& plan,
                      sim::ShardedSimulator& engine, ShardRouter& router) {
  const auto bind_node = [&](const Node* node) {
    const int src_shard = plan.shard_of(node);
    for (Link* link : topo.outgoing(node)) {
      link->rebind_sim(engine.shard(src_shard));
      const int dst_shard = plan.shard_of(link->dst());
      if (dst_shard == src_shard) continue;
      if (link->delay() < plan.lookahead) {
        throw std::logic_error(
            "apply_shard_plan: cross-shard link shorter than lookahead: " +
            link->name());
      }
      link->set_cross_shard(&router, src_shard, dst_shard);
    }
  };
  for (const Host* host : topo.hosts()) bind_node(host);
  for (const Switch* sw : topo.switches()) bind_node(sw);
}

}  // namespace numfabric::net
