#include "net/shard_plan.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "net/node.h"
#include "sim/substrate_stats.h"

namespace numfabric::net {

int ShardPlan::shard_of(const Node* node) const {
  const auto it = node_shard.find(node);
  if (it == node_shard.end()) {
    throw std::logic_error("ShardPlan: node not in plan: " + node->name());
  }
  return it->second;
}

int resolve_shard_count(int requested, int num_leaves) {
  if (requested == 0) {
    const int cores =
        std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
    requested = cores;
  }
  return std::clamp(requested, 1, std::max(1, num_leaves));
}

std::string shard_partition_obstacle(const FabricGraph& graph) {
  bool has_tier2 = false;
  bool has_switch_cable = false;
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == GraphNodeKind::kSwitch && node.tier >= 2) {
      has_tier2 = true;
    }
  }
  for (const GraphCable& cable : graph.cables()) {
    const GraphNode& a = graph.nodes()[static_cast<std::size_t>(cable.a)];
    const GraphNode& b = graph.nodes()[static_cast<std::size_t>(cable.b)];
    if (a.kind == GraphNodeKind::kHost && b.kind == GraphNodeKind::kHost) {
      return "hosts '" + a.name + "' and '" + b.name +
             "' are cabled directly; the planner partitions hosts by their "
             "leaf switch";
    }
    if (a.kind == GraphNodeKind::kSwitch && b.kind == GraphNodeKind::kSwitch) {
      has_switch_cable = true;
      if (a.tier == b.tier) {
        return "switches '" + a.name + "' and '" + b.name +
               "' are cabled inside tier " + std::to_string(a.tier) +
               "; there is no leaf/spine cut to place shard boundaries on "
               "(random-graph fabrics like jellyfish run on the serial "
               "engine only — use --shards=1)";
      }
    }
    if ((a.kind == GraphNodeKind::kHost && b.tier >= 2) ||
        (b.kind == GraphNodeKind::kHost && a.tier >= 2)) {
      const GraphNode& host = a.kind == GraphNodeKind::kHost ? a : b;
      return "host '" + host.name +
             "' attaches to a tier-2 (spine) switch; hosts must hang off "
             "tier-1 leaves for a leaf partition to exist";
    }
  }
  for (int n = 0; n < graph.num_nodes(); ++n) {
    const GraphNode& node = graph.nodes()[static_cast<std::size_t>(n)];
    if (node.kind != GraphNodeKind::kHost) continue;
    if (graph.outgoing(n).size() != 1) {
      return "host '" + node.name + "' has " +
             std::to_string(graph.outgoing(n).size()) +
             " cables; the planner needs single-homed hosts";
    }
  }
  if (has_switch_cable && !has_tier2) {
    return "every switch sits in one tier; there is no leaf/spine cut to "
           "place shard boundaries on (use --shards=1)";
  }
  return {};
}

ShardPlan build_shard_plan(const FabricGraph& graph,
                           const MaterializedFabric& mat, int shards) {
  const std::string obstacle = shard_partition_obstacle(graph);
  if (!obstacle.empty()) {
    throw std::invalid_argument("build_shard_plan: " + obstacle);
  }
  // Leaf index of every tier-1 switch, in insertion order — the same
  // leaf-major blocks the serial setup enumerates.
  std::vector<int> leaf_index(static_cast<std::size_t>(graph.num_nodes()), -1);
  int num_leaves = 0;
  int num_spines = 0;
  ShardPlan plan;
  plan.shards = shards;
  for (int n = 0; n < graph.num_nodes(); ++n) {
    const GraphNode& node = graph.nodes()[static_cast<std::size_t>(n)];
    if (node.kind == GraphNodeKind::kSwitch && node.tier == 1) {
      leaf_index[static_cast<std::size_t>(n)] = num_leaves++;
    }
  }
  if (shards < 1 || shards > num_leaves) {
    throw std::invalid_argument("build_shard_plan: shards out of range");
  }
  plan.lookahead = 0;
  bool saw_cut_cable = false;
  for (const GraphCable& cable : graph.cables()) {
    const GraphNode& a = graph.nodes()[static_cast<std::size_t>(cable.a)];
    const GraphNode& b = graph.nodes()[static_cast<std::size_t>(cable.b)];
    if (a.kind != GraphNodeKind::kSwitch || b.kind != GraphNodeKind::kSwitch) {
      continue;
    }
    if (!saw_cut_cable || cable.delay < plan.lookahead) {
      plan.lookahead = cable.delay;
    }
    saw_cut_cable = true;
  }
  for (int n = 0; n < graph.num_nodes(); ++n) {
    const GraphNode& node = graph.nodes()[static_cast<std::size_t>(n)];
    Node* obj = mat.nodes[static_cast<std::size_t>(n)];
    if (node.kind == GraphNodeKind::kHost) {
      const int leaf_node = graph.link_dst(graph.host_uplink(n));
      plan.node_shard[obj] =
          leaf_index[static_cast<std::size_t>(leaf_node)] * shards / num_leaves;
    } else if (node.tier == 1) {
      plan.node_shard[obj] =
          leaf_index[static_cast<std::size_t>(n)] * shards / num_leaves;
    } else {
      plan.node_shard[obj] = num_spines++ % shards;
    }
  }
  return plan;
}

ShardPlan build_leaf_shard_plan(const LeafSpine& fabric,
                                const LeafSpineOptions& options, int shards) {
  (void)options;
  return build_shard_plan(fabric.graph, fabric.mat, shards);
}

ShardRouter::ShardRouter(sim::ShardedSimulator& engine)
    : engine_(engine), shards_(engine.num_shards()) {
  channels_.reserve(static_cast<std::size_t>(shards_ * shards_));
  for (int i = 0; i < shards_ * shards_; ++i) {
    channels_.push_back(std::make_unique<Channel>());
  }
  slabs_.resize(static_cast<std::size_t>(shards_));
  engine_.add_barrier_hook([this] { merge(); });
}

void ShardRouter::post(int src_shard, int dst_shard, sim::TimeNs fire,
                       sim::PushKey key, Node* dst, Packet&& packet) {
  Channel& ch = channel(src_shard, dst_shard);
  std::lock_guard<std::mutex> lock(ch.mu);
  if (ch.fifo.size() == ch.fifo.capacity()) {
    ++sim::substrate_stats().allocs_packet_pool;
  }
  ch.fifo.push_back(Message{fire, key, src_shard, dst, std::move(packet)});
}

void ShardRouter::merge() {
  for (int dst = 0; dst < shards_; ++dst) {
    sim::Simulator& dsim = engine_.shard(dst);
    Slab& slab = slabs_[static_cast<std::size_t>(dst)];
    for (int src = 0; src < shards_; ++src) {
      if (src == dst) continue;
      Channel& ch = channel(src, dst);
      std::lock_guard<std::mutex> lock(ch.mu);
      for (Message& m : ch.fifo) {
        std::uint32_t slot;
        if (!slab.free.empty()) {
          slot = slab.free.back();
          slab.free.pop_back();
        } else {
          if (slab.packets.size() == slab.packets.capacity()) {
            ++sim::substrate_stats().allocs_packet_pool;
          }
          slot = static_cast<std::uint32_t>(slab.packets.size());
          slab.packets.emplace_back();
        }
        slab.packets[slot] = std::move(m.packet);
        // A message posted inside the last window carries a provisional
        // rank; the source shard finalized it at the barrier just taken.
        const std::uint64_t rank =
            engine_.shard(m.src_shard).resolve_rank(m.key.rank);
        dsim.schedule_keyed(m.fire, rank, m.key.seq,
                            [this, dst, slot, node = m.dst] {
                              deliver(dst, slot, node);
                            });
      }
      ch.fifo.clear();
    }
  }
}

void ShardRouter::deliver(int dst_shard, std::uint32_t slot, Node* dst) {
  Slab& slab = slabs_[static_cast<std::size_t>(dst_shard)];
  Packet packet = std::move(slab.packets[slot]);
  if (slab.free.size() == slab.free.capacity()) {
    ++sim::substrate_stats().allocs_packet_pool;
  }
  slab.free.push_back(slot);
  dst->receive(std::move(packet));
}

void apply_shard_plan(Topology& topo, const ShardPlan& plan,
                      sim::ShardedSimulator& engine, ShardRouter& router) {
  const auto bind_node = [&](const Node* node) {
    const int src_shard = plan.shard_of(node);
    for (Link* link : topo.outgoing(node)) {
      link->rebind_sim(engine.shard(src_shard));
      const int dst_shard = plan.shard_of(link->dst());
      if (dst_shard == src_shard) continue;
      if (link->delay() < plan.lookahead) {
        throw std::logic_error(
            "apply_shard_plan: cross-shard link shorter than lookahead: " +
            link->name());
      }
      link->set_cross_shard(&router, src_shard, dst_shard);
    }
  };
  for (const Host* host : topo.hosts()) bind_node(host);
  for (const Switch* sw : topo.switches()) bind_node(sw);
}

}  // namespace numfabric::net
