// pFabric switch queue: priority scheduling + priority dropping.
//
// Packets carry `priority` = the flow's remaining size at send time (smaller
// is more urgent).  Service: find the packet with the minimum priority, then
// dequeue the *earliest* queued packet of that packet's flow — pFabric's
// trick to keep per-flow delivery in order.  Drop: when full, evict the
// packet with the maximum priority (the incoming packet itself if it is the
// least urgent).
//
// Scans are linear; pFabric queues are intentionally tiny (a couple of BDPs)
// so this matches the reference implementation's complexity argument.  The
// scan walks a flat vector of 32-byte {priority, flow, seq, slot} entries in
// arrival order (replacing the former std::list, which allocated a node per
// packet); packets themselves sit in a free-list pool and never move during
// scans or mid-queue eviction.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet_pool.h"
#include "net/queue.h"

namespace numfabric::net {

class PFabricQueue : public Queue {
 public:
  explicit PFabricQueue(std::size_t capacity_bytes) : Queue(capacity_bytes) {}

  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;

 private:
  struct Entry {
    double priority;
    FlowId flow;
    std::uint64_t seq;   // arrival order
    std::uint32_t slot;  // index into pool_
    bool data;
  };

  std::vector<Entry> entries_;  // arrival order; erase preserves it
  PacketPool pool_;
  std::uint64_t arrival_seq_ = 0;
};

}  // namespace numfabric::net
