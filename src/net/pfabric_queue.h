// pFabric switch queue: priority scheduling + priority dropping.
//
// Packets carry `priority` = the flow's remaining size at send time (smaller
// is more urgent).  Service: find the packet with the minimum priority, then
// dequeue the *earliest* queued packet of that packet's flow — pFabric's
// trick to keep per-flow delivery in order.  Drop: when full, evict the
// packet with the maximum priority (the incoming packet itself if it is the
// least urgent).
//
// Scans are linear; pFabric queues are intentionally tiny (a couple of BDPs)
// so this matches the reference implementation's complexity argument.
#pragma once

#include <cstdint>
#include <list>

#include "net/queue.h"

namespace numfabric::net {

class PFabricQueue : public Queue {
 public:
  explicit PFabricQueue(std::size_t capacity_bytes) : Queue(capacity_bytes) {}

  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;

 private:
  struct Entry {
    std::uint64_t seq;  // arrival order
    Packet packet;
  };
  std::list<Entry> packets_;
  std::uint64_t arrival_seq_ = 0;
};

}  // namespace numfabric::net
