#include "net/wfq_queue.h"

#include <algorithm>
#include <utility>

#include "util/dary_heap.h"

namespace numfabric::net {
namespace {
constexpr auto kNoMove = [](const auto&, std::size_t) {};
}  // namespace

void WfqQueue::repair_heap() {
  const std::size_t n = heap_.size();
  if (pending_ * 4 >= n) {
    util::dary_make_heap(heap_, Before{}, kNoMove);
  } else {
    for (std::size_t i = n - pending_; i < n; ++i) {
      util::dary_sift_up(heap_, i, Before{}, kNoMove);
    }
  }
  pending_ = 0;
}

void WfqQueue::garbage_collect_idle_flows() {
  last_finish_.retain_if(
      [this](FlowId, double finish) { return finish > virtual_time_; });
}

}  // namespace numfabric::net
