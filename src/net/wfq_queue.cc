#include "net/wfq_queue.h"

#include <algorithm>
#include <utility>

namespace numfabric::net {
namespace {
// How often (in dequeues) to sweep scheduler state of idle flows.  A flow
// whose last finish tag is behind the virtual clock would get S = V anyway,
// so dropping its entry does not change the schedule.
constexpr std::uint64_t kGcInterval = 4096;
}  // namespace

bool WfqQueue::enqueue(Packet&& p) {
  if (would_overflow(p)) {
    account_drop();
    return false;
  }
  double start = virtual_time_;
  if (auto it = last_finish_.find(p.flow); it != last_finish_.end()) {
    start = std::max(start, it->second);
  }
  const double finish = start + p.virtual_packet_len;
  last_finish_[p.flow] = finish;
  account_push(p);
  heap_.push_back(Entry{start, arrival_seq_++, std::move(p)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return true;
}

std::optional<Packet> WfqQueue::dequeue() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  virtual_time_ = entry.start;  // V = start tag of packet entering service
  account_pop(entry.packet);
  if (++pops_since_gc_ >= kGcInterval) {
    pops_since_gc_ = 0;
    garbage_collect_idle_flows();
  }
  return std::move(entry.packet);
}

void WfqQueue::garbage_collect_idle_flows() {
  for (auto it = last_finish_.begin(); it != last_finish_.end();) {
    if (it->second <= virtual_time_) {
      it = last_finish_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace numfabric::net
