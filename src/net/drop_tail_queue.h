// FIFO tail-drop queue, with optional DCTCP-style ECN marking.
//
// Backing store is a reusable ring rather than a deque, so steady-state
// forwarding allocates nothing once the ring has grown to the backlog's
// high-water mark.
#pragma once

#include "net/queue.h"
#include "util/ring_buffer.h"

namespace numfabric::net {

class DropTailQueue : public Queue {
 public:
  /// `ecn_threshold_bytes` == 0 disables marking.  With marking enabled, a
  /// packet arriving to a backlog >= threshold gets its CE bit set if it is
  /// ECN-capable — DCTCP's instantaneous single-threshold marking.
  explicit DropTailQueue(std::size_t capacity_bytes,
                         std::size_t ecn_threshold_bytes = 0)
      : Queue(capacity_bytes), ecn_threshold_bytes_(ecn_threshold_bytes) {}

  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;

 private:
  util::RingBuffer<Packet> fifo_;
  std::size_t ecn_threshold_bytes_;
};

}  // namespace numfabric::net
