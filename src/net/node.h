// Nodes: switches forward along the packet's source route; hosts terminate
// flows and dispatch packets to the transport endpoint registered for the
// flow id.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/packet.h"

namespace numfabric::net {

using NodeId = std::uint32_t;

class Node {
 public:
  Node(NodeId id, std::string name) : id_(id), name_(std::move(name)) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called by a Link when a packet arrives at this node.
  virtual void receive(Packet&& packet) = 0;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

 private:
  NodeId id_;
  std::string name_;
};

class Switch : public Node {
 public:
  using Node::Node;

  /// Forwards along the packet's path: the packet arrived over
  /// path->links[hop]; it leaves over path->links[hop + 1].
  void receive(Packet&& packet) override;
};

class Host : public Node {
 public:
  using Node::Node;

  using PacketHandler = std::function<void(Packet&&)>;

  /// Dispatches to the handler registered for packet.flow.  Packets for
  /// unknown flows (e.g. late ACKs after a flow finished) are counted and
  /// discarded.
  void receive(Packet&& packet) override;

  void register_flow(FlowId flow, PacketHandler handler);
  void unregister_flow(FlowId flow);

  std::uint64_t stray_packets() const { return stray_packets_; }

 private:
  std::unordered_map<FlowId, PacketHandler> handlers_;
  std::uint64_t stray_packets_ = 0;
};

}  // namespace numfabric::net
