#include "net/fabric_graph.h"

#include <algorithm>
#include <queue>
#include <set>
#include <stdexcept>
#include <utility>

#include "net/packet.h"

namespace numfabric::net {

namespace {

/// SplitMix64 + Lemire fixed-point reduction: the repo's deterministic RNG
/// idiom (std::uniform_int_distribution is not specified by the standard and
/// differs across libstdc++/libc++, so it must never feed wiring decisions).
struct SplitMix64 {
  std::uint64_t state;

  explicit SplitMix64(std::uint64_t seed) : state(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform index in [0, n) without modulo bias.
  std::size_t pick(std::size_t n) {
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }
};

}  // namespace

int FabricGraph::add_host(std::string name) {
  nodes_.push_back({GraphNodeKind::kHost, std::move(name), /*tier=*/0});
  ++num_hosts_;
  adjacency_dirty_ = true;
  return num_nodes() - 1;
}

int FabricGraph::add_switch(std::string name, int tier) {
  nodes_.push_back({GraphNodeKind::kSwitch, std::move(name), tier});
  adjacency_dirty_ = true;
  return num_nodes() - 1;
}

int FabricGraph::add_cable(int a, int b, double rate_bps, sim::TimeNs delay) {
  if (a < 0 || a >= num_nodes() || b < 0 || b >= num_nodes()) {
    throw std::invalid_argument("FabricGraph::add_cable: unknown node");
  }
  if (a == b) {
    throw std::invalid_argument("FabricGraph::add_cable: self-cable");
  }
  if (!(rate_bps > 0)) {
    throw std::invalid_argument("FabricGraph::add_cable: rate must be positive");
  }
  if (delay < 0) {
    throw std::invalid_argument("FabricGraph::add_cable: negative delay");
  }
  cables_.push_back({a, b, rate_bps, delay});
  adjacency_dirty_ = true;
  return num_cables() - 1;
}

void FabricGraph::build_adjacency() const {
  adj_offsets_.assign(static_cast<std::size_t>(num_nodes()) + 1, 0);
  for (const GraphCable& c : cables_) {
    ++adj_offsets_[static_cast<std::size_t>(c.a) + 1];
    ++adj_offsets_[static_cast<std::size_t>(c.b) + 1];
  }
  for (std::size_t n = 1; n < adj_offsets_.size(); ++n) {
    adj_offsets_[n] += adj_offsets_[n - 1];
  }
  adj_links_.assign(static_cast<std::size_t>(num_links()), -1);
  std::vector<int> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
  for (int c = 0; c < num_cables(); ++c) {
    const GraphCable& cable = cables_[static_cast<std::size_t>(c)];
    adj_links_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cable.a)]++)] = 2 * c;
    adj_links_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(cable.b)]++)] = 2 * c + 1;
  }
  adjacency_dirty_ = false;
}

std::span<const int> FabricGraph::outgoing(int node) const {
  if (node < 0 || node >= num_nodes()) {
    throw std::invalid_argument("FabricGraph::outgoing: unknown node");
  }
  if (adjacency_dirty_) build_adjacency();
  const auto begin = static_cast<std::size_t>(adj_offsets_[static_cast<std::size_t>(node)]);
  const auto end = static_cast<std::size_t>(adj_offsets_[static_cast<std::size_t>(node) + 1]);
  return {adj_links_.data() + begin, end - begin};
}

int FabricGraph::host_uplink(int host) const {
  if (host < 0 || host >= num_nodes() ||
      nodes_[static_cast<std::size_t>(host)].kind != GraphNodeKind::kHost) {
    throw std::logic_error("FabricGraph::host_uplink: node is not a host");
  }
  const std::span<const int> out = outgoing(host);
  if (out.size() != 1) {
    throw std::logic_error("FabricGraph::host_uplink: host '" +
                           nodes_[static_cast<std::size_t>(host)].name +
                           "' does not have exactly one cable");
  }
  return out[0];
}

// ---------------------------------------------------------------------------
// Leaf-spine
// ---------------------------------------------------------------------------

LeafSpineOptions LeafSpineOptions::with_oversubscription(double ratio) const {
  if (!(ratio > 0)) {
    throw std::invalid_argument(
        "with_oversubscription: ratio must be positive");
  }
  LeafSpineOptions derived = *this;
  derived.spine_rate_bps =
      (hosts_per_leaf * host_rate_bps) / (num_spines * ratio);
  return derived;
}

FabricGraph make_leaf_spine(const LeafSpineOptions& options) {
  if (options.hosts_per_leaf < 1 || options.num_leaves < 1 ||
      options.num_spines < 1) {
    throw std::invalid_argument(
        "build_leaf_spine: hosts_per_leaf, num_leaves and num_spines must "
        "all be >= 1");
  }
  if (!(options.host_rate_bps > 0) || !(options.spine_rate_bps > 0)) {
    throw std::invalid_argument(
        "build_leaf_spine: link rates must be positive");
  }
  const sim::TimeNs core_delay = options.effective_core_delay();
  FabricGraph graph;
  std::vector<int> leaves;
  std::vector<int> spines;
  for (int l = 0; l < options.num_leaves; ++l) {
    leaves.push_back(graph.add_switch("leaf" + std::to_string(l), /*tier=*/1));
  }
  for (int s = 0; s < options.num_spines; ++s) {
    spines.push_back(graph.add_switch("spine" + std::to_string(s), /*tier=*/2));
  }
  for (int l = 0; l < options.num_leaves; ++l) {
    for (int h = 0; h < options.hosts_per_leaf; ++h) {
      const int host =
          graph.add_host("h" + std::to_string(l * options.hosts_per_leaf + h));
      graph.add_cable(host, leaves[static_cast<std::size_t>(l)],
                      options.host_rate_bps, options.link_delay);
    }
  }
  for (int leaf : leaves) {
    for (int spine : spines) {
      graph.add_cable(leaf, spine, options.spine_rate_bps, core_delay);
    }
  }
  return graph;
}

sim::TimeNs leaf_spine_cross_rtt(const LeafSpineOptions& options) {
  // A cross-leaf data packet crosses 4 links each way: two edge hops at the
  // host rate and two core hops at the spine rate.  Each store-and-forward
  // hop pays its own serialization, so asymmetric tiers (40 G core over a
  // 10 G edge) reproduce the paper's base RTT exactly instead of
  // over-charging the core hops at the slower edge rate.
  const auto hop = [](sim::TimeNs delay, std::uint32_t bytes, double rate_bps) {
    return delay + sim::transmission_time(bytes, rate_bps);
  };
  const sim::TimeNs core_delay = options.effective_core_delay();
  const sim::TimeNs edge_one_way =
      hop(options.link_delay, kDataPacketBytes, options.host_rate_bps) +
      hop(options.link_delay, kAckPacketBytes, options.host_rate_bps);
  const sim::TimeNs core_one_way =
      hop(core_delay, kDataPacketBytes, options.spine_rate_bps) +
      hop(core_delay, kAckPacketBytes, options.spine_rate_bps);
  return 2 * (edge_one_way + core_one_way);
}

// ---------------------------------------------------------------------------
// Jellyfish
// ---------------------------------------------------------------------------

namespace {

/// Random r-regular graph over S switches via the Jellyfish incremental
/// construction: repeatedly join a uniformly random pair of non-adjacent
/// switches with free ports; when blocked, repair by breaking an existing
/// edge so the leftover ports can be absorbed (the paper's edge-swap step).
/// The edge set lives in a std::set so iteration — and therefore the cable
/// emission order — is deterministic.
std::vector<std::pair<int, int>> random_regular_edges(int switches, int degree,
                                                      SplitMix64& rng) {
  std::set<std::pair<int, int>> edges;
  std::vector<int> free_ports(static_cast<std::size_t>(switches), degree);
  const auto adjacent = [&edges](int u, int v) {
    return edges.count({std::min(u, v), std::max(u, v)}) != 0;
  };
  const auto add_edge = [&](int u, int v) {
    edges.insert({std::min(u, v), std::max(u, v)});
    --free_ports[static_cast<std::size_t>(u)];
    --free_ports[static_cast<std::size_t>(v)];
  };
  while (true) {
    std::vector<std::pair<int, int>> candidates;
    for (int u = 0; u < switches; ++u) {
      if (free_ports[static_cast<std::size_t>(u)] == 0) continue;
      for (int v = u + 1; v < switches; ++v) {
        if (free_ports[static_cast<std::size_t>(v)] == 0) continue;
        if (!adjacent(u, v)) candidates.push_back({u, v});
      }
    }
    if (!candidates.empty()) {
      const auto [u, v] = candidates[rng.pick(candidates.size())];
      add_edge(u, v);
      continue;
    }
    int total_free = 0;
    for (int f : free_ports) total_free += f;
    if (total_free <= 1) break;  // fully wired (odd leftover port unusable)
    // Blocked: every pair of switches with free ports is already adjacent.
    // Repair 1: a switch u with >= 2 free ports absorbs an existing edge
    // (x, y) — remove it, add (u, x) and (u, y).
    bool repaired = false;
    for (int u = 0; u < switches && !repaired; ++u) {
      if (free_ports[static_cast<std::size_t>(u)] < 2) continue;
      std::vector<std::pair<int, int>> eligible;
      for (const auto& e : edges) {
        if (e.first == u || e.second == u) continue;
        if (adjacent(u, e.first) || adjacent(u, e.second)) continue;
        eligible.push_back(e);
      }
      if (eligible.empty()) continue;
      const auto e = eligible[rng.pick(eligible.size())];
      edges.erase(e);
      ++free_ports[static_cast<std::size_t>(e.first)];
      ++free_ports[static_cast<std::size_t>(e.second)];
      add_edge(u, e.first);
      add_edge(u, e.second);
      repaired = true;
    }
    if (repaired) continue;
    // Repair 2: two (necessarily adjacent) switches u, v each with one free
    // port split an existing disjoint edge (x, y) into (u, x) and (v, y).
    for (int u = 0; u < switches && !repaired; ++u) {
      if (free_ports[static_cast<std::size_t>(u)] == 0) continue;
      for (int v = 0; v < switches && !repaired; ++v) {
        if (v == u || free_ports[static_cast<std::size_t>(v)] == 0) continue;
        std::vector<std::pair<int, int>> eligible;
        for (const auto& e : edges) {
          if (e.first == u || e.second == u || e.first == v || e.second == v) {
            continue;
          }
          if (!adjacent(u, e.first) && !adjacent(v, e.second)) {
            eligible.push_back(e);
          }
        }
        if (eligible.empty()) continue;
        const auto e = eligible[rng.pick(eligible.size())];
        edges.erase(e);
        ++free_ports[static_cast<std::size_t>(e.first)];
        ++free_ports[static_cast<std::size_t>(e.second)];
        add_edge(u, e.first);
        add_edge(v, e.second);
        repaired = true;
      }
    }
    if (!repaired) break;  // tiny graphs can wedge one port short of regular
  }
  return {edges.begin(), edges.end()};
}

bool switches_connected(const FabricGraph& graph) {
  const int nodes = graph.num_nodes();
  std::vector<char> seen(static_cast<std::size_t>(nodes), 0);
  int start = -1;
  for (int n = 0; n < nodes; ++n) {
    if (graph.nodes()[static_cast<std::size_t>(n)].kind == GraphNodeKind::kSwitch) {
      start = n;
      break;
    }
  }
  if (start < 0) return false;
  std::vector<int> stack{start};
  seen[static_cast<std::size_t>(start)] = 1;
  int visited = 0;
  while (!stack.empty()) {
    const int at = stack.back();
    stack.pop_back();
    ++visited;
    for (int link : graph.outgoing(at)) {
      const int next = graph.link_dst(link);
      if (graph.nodes()[static_cast<std::size_t>(next)].kind != GraphNodeKind::kSwitch) {
        continue;
      }
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = 1;
        stack.push_back(next);
      }
    }
  }
  return visited == graph.num_switches();
}

}  // namespace

FabricGraph make_jellyfish(const JellyfishOptions& options) {
  if (options.switches < 3) {
    throw std::invalid_argument("make_jellyfish: need at least 3 switches");
  }
  if (options.ports < 2 || options.ports >= options.switches) {
    throw std::invalid_argument(
        "make_jellyfish: ports (switch degree) must be in [2, switches)");
  }
  if (options.hosts < 2) {
    throw std::invalid_argument("make_jellyfish: need at least 2 hosts");
  }
  if (!(options.host_rate_bps > 0) || !(options.switch_rate_bps > 0)) {
    throw std::invalid_argument("make_jellyfish: link rates must be positive");
  }
  FabricGraph graph;
  std::vector<int> switches;
  for (int s = 0; s < options.switches; ++s) {
    switches.push_back(graph.add_switch("sw" + std::to_string(s), /*tier=*/1));
  }
  for (int h = 0; h < options.hosts; ++h) {
    const int host = graph.add_host("h" + std::to_string(h));
    graph.add_cable(host, switches[static_cast<std::size_t>(h % options.switches)],
                    options.host_rate_bps, options.link_delay);
  }
  SplitMix64 rng(options.seed);
  for (const auto& [u, v] : random_regular_edges(options.switches, options.ports, rng)) {
    graph.add_cable(switches[static_cast<std::size_t>(u)],
                    switches[static_cast<std::size_t>(v)],
                    options.switch_rate_bps, options.link_delay);
  }
  if (!switches_connected(graph)) {
    throw std::runtime_error(
        "make_jellyfish: the random wiring for seed " +
        std::to_string(options.seed) +
        " is disconnected; pick another seed or more ports per switch");
  }
  return graph;
}

// ---------------------------------------------------------------------------
// Generic base RTT
// ---------------------------------------------------------------------------

sim::TimeNs base_rtt(const FabricGraph& graph) {
  // Find the farthest pair of host-bearing switches (BFS over the switch
  // subgraph from each one) and charge the full store-and-forward round trip
  // along host -> ... -> host: per hop, propagation + data serialization
  // forward and propagation + ACK serialization back, at that hop's rate.
  const auto is_switch = [&graph](int n) {
    return graph.nodes()[static_cast<std::size_t>(n)].kind == GraphNodeKind::kSwitch;
  };
  // first_host[s]: lowest-numbered host hanging off switch s (or -1).
  std::vector<int> first_host(static_cast<std::size_t>(graph.num_nodes()), -1);
  std::vector<int> second_host(static_cast<std::size_t>(graph.num_nodes()), -1);
  for (int n = 0; n < graph.num_nodes(); ++n) {
    if (is_switch(n)) continue;
    const int sw = graph.link_dst(graph.host_uplink(n));
    auto& first = first_host[static_cast<std::size_t>(sw)];
    auto& second = second_host[static_cast<std::size_t>(sw)];
    if (first < 0) {
      first = n;
    } else if (second < 0) {
      second = n;
    }
  }
  const auto round_trip = [&graph](const std::vector<int>& hops) {
    sim::TimeNs rtt = 0;
    for (int link : hops) {
      rtt += graph.link_delay(link) +
             sim::transmission_time(kDataPacketBytes, graph.link_rate_bps(link));
      rtt += graph.link_delay(link) +
             sim::transmission_time(kAckPacketBytes, graph.link_rate_bps(link));
    }
    return rtt;
  };
  sim::TimeNs best = -1;
  int best_dist = -1;
  for (int src_sw = 0; src_sw < graph.num_nodes(); ++src_sw) {
    if (!is_switch(src_sw) || first_host[static_cast<std::size_t>(src_sw)] < 0) {
      continue;
    }
    // BFS over switches, remembering the inbound link for path recovery.
    std::vector<int> dist(static_cast<std::size_t>(graph.num_nodes()), -1);
    std::vector<int> via(static_cast<std::size_t>(graph.num_nodes()), -1);
    std::queue<int> frontier;
    dist[static_cast<std::size_t>(src_sw)] = 0;
    frontier.push(src_sw);
    while (!frontier.empty()) {
      const int at = frontier.front();
      frontier.pop();
      for (int link : graph.outgoing(at)) {
        const int next = graph.link_dst(link);
        if (!is_switch(next) || dist[static_cast<std::size_t>(next)] >= 0) continue;
        dist[static_cast<std::size_t>(next)] = dist[static_cast<std::size_t>(at)] + 1;
        via[static_cast<std::size_t>(next)] = link;
        frontier.push(next);
      }
    }
    for (int dst_sw = 0; dst_sw < graph.num_nodes(); ++dst_sw) {
      if (!is_switch(dst_sw) || dist[static_cast<std::size_t>(dst_sw)] < 0) continue;
      const int src_host = first_host[static_cast<std::size_t>(src_sw)];
      // A same-switch "pair" needs two distinct hosts on that switch.
      const int dst_host = dst_sw == src_sw
                               ? second_host[static_cast<std::size_t>(dst_sw)]
                               : first_host[static_cast<std::size_t>(dst_sw)];
      if (dst_host < 0) continue;
      if (dist[static_cast<std::size_t>(dst_sw)] <= best_dist) continue;
      std::vector<int> hops{graph.host_uplink(src_host)};
      std::vector<int> core;
      for (int at = dst_sw; at != src_sw; at = graph.link_src(via[static_cast<std::size_t>(at)])) {
        core.push_back(via[static_cast<std::size_t>(at)]);
      }
      hops.insert(hops.end(), core.rbegin(), core.rend());
      hops.push_back(FabricGraph::reverse(graph.host_uplink(dst_host)));
      best = round_trip(hops);
      best_dist = dist[static_cast<std::size_t>(dst_sw)];
    }
  }
  if (best < 0) {
    throw std::invalid_argument(
        "base_rtt: the graph has no host pair to measure");
  }
  return best;
}

}  // namespace numfabric::net
