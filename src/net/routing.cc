#include "net/routing.h"

#include <queue>
#include <stdexcept>
#include <unordered_map>

namespace numfabric::net {
namespace {

/// BFS distances (in hops) from every node TO `dst`, following links forward.
std::unordered_map<const Node*, std::uint32_t> distances_to(const Topology& topo,
                                                            const Node* dst) {
  // BFS on the reverse graph: dist(n) = 1 + min over outgoing(n) of
  // dist(link->dst).
  std::unordered_map<const Node*, std::uint32_t> dist;
  std::queue<const Node*> frontier;
  dist[dst] = 0;
  frontier.push(dst);
  // Precompute reverse adjacency from every node's outgoing links.
  std::unordered_map<const Node*, std::vector<const Node*>> preds;
  auto collect = [&](const Node* node) {
    for (const Link* link : topo.outgoing(node)) {
      preds[link->dst()].push_back(node);
    }
  };
  for (const Host* h : topo.hosts()) collect(h);
  for (const Switch* s : topo.switches()) collect(s);

  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop();
    auto it = preds.find(node);
    if (it == preds.end()) continue;
    for (const Node* pred : it->second) {
      if (dist.contains(pred)) continue;
      dist[pred] = dist[node] + 1;
      frontier.push(pred);
    }
  }
  return dist;
}

void enumerate(const Topology& topo,
               const std::unordered_map<const Node*, std::uint32_t>& dist,
               const Node* at, const Node* dst, std::vector<Link*>& stack,
               std::vector<Path>& out, std::size_t max_paths) {
  if (out.size() >= max_paths) return;
  if (at == dst) {
    out.push_back(Path{stack});
    return;
  }
  const auto here = dist.find(at);
  if (here == dist.end()) return;
  for (Link* link : topo.outgoing(at)) {
    const auto next = dist.find(link->dst());
    if (next == dist.end() || next->second + 1 != here->second) continue;
    stack.push_back(link);
    enumerate(topo, dist, link->dst(), dst, stack, out, max_paths);
    stack.pop_back();
  }
}

}  // namespace

std::vector<Path> all_shortest_paths(const Topology& topo, const Node* src,
                                     const Node* dst, std::size_t max_paths) {
  if (src == dst) throw std::invalid_argument("all_shortest_paths: src == dst");
  const auto dist = distances_to(topo, dst);
  std::vector<Path> paths;
  if (!dist.contains(src)) return paths;  // unreachable
  std::vector<Link*> stack;
  enumerate(topo, dist, src, dst, stack, paths, max_paths);
  return paths;
}

Path reverse_path(const Path& path) {
  Path rev;
  rev.links.reserve(path.links.size());
  for (auto it = path.links.rbegin(); it != path.links.rend(); ++it) {
    Link* twin = (*it)->twin();
    if (twin == nullptr) {
      throw std::logic_error("reverse_path: link without a twin: " + (*it)->name());
    }
    rev.links.push_back(twin);
  }
  return rev;
}

const Path& ecmp_pick(const std::vector<Path>& paths, FlowId flow) {
  if (paths.empty()) throw std::invalid_argument("ecmp_pick: no paths");
  // SplitMix64: avalanche the flow id so consecutive ids spread well.
  std::uint64_t h = flow + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return paths[h % paths.size()];
}

}  // namespace numfabric::net
