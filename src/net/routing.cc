#include "net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace numfabric::net {
namespace {

/// BFS distances (in hops) from every node TO `dst`, following links forward.
std::unordered_map<const Node*, std::uint32_t> distances_to(const Topology& topo,
                                                            const Node* dst) {
  // BFS on the reverse graph: dist(n) = 1 + min over outgoing(n) of
  // dist(link->dst).
  std::unordered_map<const Node*, std::uint32_t> dist;
  std::queue<const Node*> frontier;
  dist[dst] = 0;
  frontier.push(dst);
  // Precompute reverse adjacency from every node's outgoing links.
  std::unordered_map<const Node*, std::vector<const Node*>> preds;
  auto collect = [&](const Node* node) {
    for (const Link* link : topo.outgoing(node)) {
      preds[link->dst()].push_back(node);
    }
  };
  for (const Host* h : topo.hosts()) collect(h);
  for (const Switch* s : topo.switches()) collect(s);

  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop();
    auto it = preds.find(node);
    if (it == preds.end()) continue;
    for (const Node* pred : it->second) {
      if (dist.contains(pred)) continue;
      dist[pred] = dist[node] + 1;
      frontier.push(pred);
    }
  }
  return dist;
}

using Dist = std::unordered_map<const Node*, std::uint32_t>;

/// True when `link` lies on some shortest path from its source node `at`.
bool on_shortest_path(const Dist& dist, const Node* at, const Link* link) {
  const auto here = dist.find(at);
  const auto next = dist.find(link->dst());
  return here != dist.end() && next != dist.end() &&
         next->second + 1 == here->second;
}

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  return a > max - b ? max : a + b;
}

/// Shortest-path counts from every reachable node to dst, memoized.
std::uint64_t count_from(const Topology& topo, const Dist& dist, const Node* at,
                         const Node* dst,
                         std::unordered_map<const Node*, std::uint64_t>& memo) {
  if (at == dst) return 1;
  const auto cached = memo.find(at);
  if (cached != memo.end()) return cached->second;
  std::uint64_t count = 0;
  for (const Link* link : topo.outgoing(at)) {
    if (!on_shortest_path(dist, at, link)) continue;
    count = saturating_add(count, count_from(topo, dist, link->dst(), dst, memo));
  }
  memo[at] = count;
  return count;
}

void enumerate(const Topology& topo, const Dist& dist, const Node* at,
               const Node* dst, std::vector<Link*>& stack,
               std::vector<Path>& out) {
  if (at == dst) {
    out.push_back(Path{stack});
    return;
  }
  for (Link* link : topo.outgoing(at)) {
    if (!on_shortest_path(dist, at, link)) continue;
    stack.push_back(link);
    enumerate(topo, dist, link->dst(), dst, stack, out);
    stack.pop_back();
  }
}

/// Unranks path `rank` (0-based, creation order) without enumerating the
/// rest: at each node, eligible links are visited in creation order and the
/// rank indexes into the concatenation of their subtrees' path sets.
Path kth_path(const Topology& topo, const Dist& dist, const Node* src,
              const Node* dst, std::uint64_t rank,
              std::unordered_map<const Node*, std::uint64_t>& memo) {
  Path path;
  const Node* at = src;
  while (at != dst) {
    bool advanced = false;
    for (Link* link : topo.outgoing(at)) {
      if (!on_shortest_path(dist, at, link)) continue;
      const std::uint64_t below = count_from(topo, dist, link->dst(), dst, memo);
      if (rank < below) {
        path.links.push_back(link);
        at = link->dst();
        advanced = true;
        break;
      }
      rank -= below;
    }
    if (!advanced) throw std::logic_error("kth_path: rank out of range");
  }
  return path;
}

void check_endpoints(const Node* src, const Node* dst) {
  if (src == dst) throw std::invalid_argument("all_shortest_paths: src == dst");
}

}  // namespace

std::uint64_t count_shortest_paths(const Topology& topo, const Node* src,
                                   const Node* dst) {
  check_endpoints(src, dst);
  const Dist dist = distances_to(topo, dst);
  if (!dist.contains(src)) return 0;  // unreachable
  std::unordered_map<const Node*, std::uint64_t> memo;
  return count_from(topo, dist, src, dst, memo);
}

std::vector<Path> all_shortest_paths(const Topology& topo, const Node* src,
                                     const Node* dst) {
  check_endpoints(src, dst);
  const Dist dist = distances_to(topo, dst);
  std::vector<Path> paths;
  if (!dist.contains(src)) return paths;  // unreachable
  std::unordered_map<const Node*, std::uint64_t> memo;
  const std::uint64_t total = count_from(topo, dist, src, dst, memo);
  if (total > kMaxEnumeratedPaths) {
    throw std::length_error(
        "all_shortest_paths: " + std::to_string(total) +
        " shortest paths exceed the enumeration limit of " +
        std::to_string(kMaxEnumeratedPaths) +
        "; use sample_shortest_paths() to opt into a capped subset");
  }
  paths.reserve(static_cast<std::size_t>(total));
  std::vector<Link*> stack;
  enumerate(topo, dist, src, dst, stack, paths);
  return paths;
}

ShortestPathSample sample_shortest_paths(const Topology& topo, const Node* src,
                                         const Node* dst,
                                         std::size_t max_paths) {
  if (max_paths == 0) {
    throw std::invalid_argument("sample_shortest_paths: max_paths must be > 0");
  }
  check_endpoints(src, dst);
  ShortestPathSample sample;
  const Dist dist = distances_to(topo, dst);
  if (!dist.contains(src)) return sample;  // unreachable
  std::unordered_map<const Node*, std::uint64_t> memo;
  sample.total_paths = count_from(topo, dist, src, dst, memo);
  if (sample.total_paths <= max_paths) {
    std::vector<Link*> stack;
    sample.paths.reserve(static_cast<std::size_t>(sample.total_paths));
    enumerate(topo, dist, src, dst, stack, sample.paths);
    return sample;
  }
  sample.paths.reserve(max_paths);
  for (std::size_t i = 0; i < max_paths; ++i) {
    // floor(i * total / max_paths) in 128-bit so a saturated total cannot
    // overflow the stride arithmetic.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(sample.total_paths) * i / max_paths);
    sample.paths.push_back(kth_path(topo, dist, src, dst, rank, memo));
  }
  return sample;
}

Path reverse_path(const Path& path) {
  Path rev;
  rev.links.reserve(path.links.size());
  for (auto it = path.links.rbegin(); it != path.links.rend(); ++it) {
    Link* twin = (*it)->twin();
    if (twin == nullptr) {
      throw std::logic_error("reverse_path: link without a twin: " + (*it)->name());
    }
    rev.links.push_back(twin);
  }
  return rev;
}

const Path& ecmp_pick(const std::vector<Path>& paths, FlowId flow) {
  if (paths.empty()) throw std::invalid_argument("ecmp_pick: no paths");
  return paths[ecmp_index(paths.size(), flow)];
}

std::size_t ecmp_index(std::size_t count, FlowId flow) {
  if (count == 0) throw std::invalid_argument("ecmp_index: no paths");
  // SplitMix64: avalanche the flow id so consecutive ids spread well.
  std::uint64_t h = flow + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  // Fixed-point range reduction (Lemire): uses the high bits of the hash and
  // is free of the modulo bias that skews small non-power-of-two path sets.
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(h) * count) >> 64);
}

// ---------------------------------------------------------------------------
// Graph routing
// ---------------------------------------------------------------------------

namespace {

/// BFS hop distances from every node TO `dst` over graph links, optionally
/// skipping banned nodes/links (Yen's filtered graph).  -1 = unreachable.
std::vector<int> graph_distances_to(const FabricGraph& graph, int dst,
                                    const std::vector<char>* banned_node,
                                    const std::vector<char>* banned_link) {
  std::vector<int> dist(static_cast<std::size_t>(graph.num_nodes()), -1);
  std::queue<int> frontier;
  dist[static_cast<std::size_t>(dst)] = 0;
  frontier.push(dst);
  while (!frontier.empty()) {
    const int at = frontier.front();
    frontier.pop();
    // Predecessors of `at` are the sources of its incoming links; incoming
    // link of a cable is the reverse of the outgoing one.
    for (int out : graph.outgoing(at)) {
      const int in = FabricGraph::reverse(out);
      if (banned_link != nullptr && (*banned_link)[static_cast<std::size_t>(in)]) {
        continue;
      }
      const int pred = graph.link_src(in);
      if (banned_node != nullptr && (*banned_node)[static_cast<std::size_t>(pred)]) {
        continue;
      }
      if (dist[static_cast<std::size_t>(pred)] >= 0) continue;
      dist[static_cast<std::size_t>(pred)] = dist[static_cast<std::size_t>(at)] + 1;
      frontier.push(pred);
    }
  }
  return dist;
}

std::uint64_t graph_count_from(const FabricGraph& graph,
                               const std::vector<int>& dist, int at, int dst,
                               std::vector<std::uint64_t>& memo) {
  if (at == dst) return 1;
  if (memo[static_cast<std::size_t>(at)] != std::numeric_limits<std::uint64_t>::max()) {
    return memo[static_cast<std::size_t>(at)];
  }
  std::uint64_t count = 0;
  for (int link : graph.outgoing(at)) {
    const int next = graph.link_dst(link);
    if (dist[static_cast<std::size_t>(next)] < 0 ||
        dist[static_cast<std::size_t>(next)] + 1 != dist[static_cast<std::size_t>(at)]) {
      continue;
    }
    count = saturating_add(count, graph_count_from(graph, dist, next, dst, memo));
  }
  memo[static_cast<std::size_t>(at)] = count;
  return count;
}

void graph_enumerate(const FabricGraph& graph, const std::vector<int>& dist,
                     int at, int dst, std::vector<int>& stack,
                     std::vector<std::vector<int>>& out) {
  if (at == dst) {
    out.push_back(stack);
    return;
  }
  for (int link : graph.outgoing(at)) {
    const int next = graph.link_dst(link);
    if (dist[static_cast<std::size_t>(next)] < 0 ||
        dist[static_cast<std::size_t>(next)] + 1 != dist[static_cast<std::size_t>(at)]) {
      continue;
    }
    stack.push_back(link);
    graph_enumerate(graph, dist, next, dst, stack, out);
    stack.pop_back();
  }
}

/// Lexicographically-smallest (by link id) shortest path src -> dst avoiding
/// banned nodes/links; empty when dst is unreachable.  Yen's spur search.
std::vector<int> lex_shortest_path(const FabricGraph& graph, int src, int dst,
                                   const std::vector<char>& banned_node,
                                   const std::vector<char>& banned_link) {
  const std::vector<int> dist =
      graph_distances_to(graph, dst, &banned_node, &banned_link);
  if (dist[static_cast<std::size_t>(src)] < 0) return {};
  std::vector<int> path;
  int at = src;
  while (at != dst) {
    int chosen = -1;
    for (int link : graph.outgoing(at)) {
      if (banned_link[static_cast<std::size_t>(link)]) continue;
      const int next = graph.link_dst(link);
      if (banned_node[static_cast<std::size_t>(next)]) continue;
      if (dist[static_cast<std::size_t>(next)] < 0 ||
          dist[static_cast<std::size_t>(next)] + 1 != dist[static_cast<std::size_t>(at)]) {
        continue;
      }
      if (chosen < 0 || link < chosen) chosen = link;
    }
    if (chosen < 0) return {};  // src reachable but greedy walk fenced off
    path.push_back(chosen);
    at = graph.link_dst(chosen);
  }
  return path;
}

void check_graph_endpoints(const FabricGraph& graph, int src, int dst,
                           const char* what) {
  if (src < 0 || src >= graph.num_nodes() || dst < 0 || dst >= graph.num_nodes()) {
    throw std::invalid_argument(std::string(what) + ": unknown node");
  }
  if (src == dst) {
    throw std::invalid_argument(std::string(what) + ": src == dst");
  }
}

}  // namespace

std::vector<std::vector<int>> all_shortest_paths(const FabricGraph& graph,
                                                 int src, int dst) {
  check_graph_endpoints(graph, src, dst, "all_shortest_paths");
  const std::vector<int> dist = graph_distances_to(graph, dst, nullptr, nullptr);
  std::vector<std::vector<int>> paths;
  if (dist[static_cast<std::size_t>(src)] < 0) return paths;  // unreachable
  std::vector<std::uint64_t> memo(static_cast<std::size_t>(graph.num_nodes()),
                                  std::numeric_limits<std::uint64_t>::max());
  const std::uint64_t total = graph_count_from(graph, dist, src, dst, memo);
  if (total > kMaxEnumeratedPaths) {
    throw std::length_error(
        "all_shortest_paths: " + std::to_string(total) +
        " shortest paths exceed the enumeration limit of " +
        std::to_string(kMaxEnumeratedPaths) +
        "; use sample_shortest_paths() to opt into a capped subset");
  }
  paths.reserve(static_cast<std::size_t>(total));
  std::vector<int> stack;
  graph_enumerate(graph, dist, src, dst, stack, paths);
  return paths;
}

std::vector<std::vector<int>> k_shortest_paths(const FabricGraph& graph,
                                               int src, int dst, std::size_t k) {
  check_graph_endpoints(graph, src, dst, "k_shortest_paths");
  if (k == 0) throw std::invalid_argument("k_shortest_paths: k must be > 0");
  if (k > kMaxEnumeratedPaths) {
    throw std::length_error(
        "k_shortest_paths: k = " + std::to_string(k) +
        " exceeds the enumeration limit of " +
        std::to_string(kMaxEnumeratedPaths) +
        "; request a smaller path budget explicitly");
  }
  const std::vector<char> no_node(static_cast<std::size_t>(graph.num_nodes()), 0);
  const std::vector<char> no_link(static_cast<std::size_t>(graph.num_links()), 0);
  std::vector<int> first = lex_shortest_path(graph, src, dst, no_node, no_link);
  if (first.empty()) return {};
  std::vector<std::vector<int>> result;
  result.push_back(std::move(first));
  const auto shorter = [](const std::vector<int>& a, const std::vector<int>& b) {
    return a.size() != b.size() ? a.size() < b.size() : a < b;
  };
  std::set<std::vector<int>, decltype(shorter)> candidates(shorter);
  while (result.size() < k) {
    // Yen: spur off every prefix of the most recently accepted path.
    const std::vector<int> prev = result.back();
    std::vector<char> banned_node(static_cast<std::size_t>(graph.num_nodes()), 0);
    int spur = src;
    for (std::size_t j = 0; j < prev.size(); ++j) {
      std::vector<char> banned_link(static_cast<std::size_t>(graph.num_links()), 0);
      // Paths sharing the root prefix must leave the spur node differently.
      for (const std::vector<int>& p : result) {
        if (p.size() > j && std::equal(p.begin(), p.begin() + static_cast<std::ptrdiff_t>(j),
                                       prev.begin())) {
          banned_link[static_cast<std::size_t>(p[j])] = 1;
        }
      }
      const std::vector<int> detour =
          lex_shortest_path(graph, spur, dst, banned_node, banned_link);
      if (!detour.empty()) {
        std::vector<int> candidate(prev.begin(),
                                   prev.begin() + static_cast<std::ptrdiff_t>(j));
        candidate.insert(candidate.end(), detour.begin(), detour.end());
        candidates.insert(std::move(candidate));
      }
      banned_node[static_cast<std::size_t>(spur)] = 1;  // root node, for later spurs
      spur = graph.link_dst(prev[j]);
    }
    if (candidates.empty()) break;  // graph exhausted: fewer than k paths exist
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

}  // namespace numfabric::net
