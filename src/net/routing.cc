#include "net/routing.h"

#include <limits>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>

namespace numfabric::net {
namespace {

/// BFS distances (in hops) from every node TO `dst`, following links forward.
std::unordered_map<const Node*, std::uint32_t> distances_to(const Topology& topo,
                                                            const Node* dst) {
  // BFS on the reverse graph: dist(n) = 1 + min over outgoing(n) of
  // dist(link->dst).
  std::unordered_map<const Node*, std::uint32_t> dist;
  std::queue<const Node*> frontier;
  dist[dst] = 0;
  frontier.push(dst);
  // Precompute reverse adjacency from every node's outgoing links.
  std::unordered_map<const Node*, std::vector<const Node*>> preds;
  auto collect = [&](const Node* node) {
    for (const Link* link : topo.outgoing(node)) {
      preds[link->dst()].push_back(node);
    }
  };
  for (const Host* h : topo.hosts()) collect(h);
  for (const Switch* s : topo.switches()) collect(s);

  while (!frontier.empty()) {
    const Node* node = frontier.front();
    frontier.pop();
    auto it = preds.find(node);
    if (it == preds.end()) continue;
    for (const Node* pred : it->second) {
      if (dist.contains(pred)) continue;
      dist[pred] = dist[node] + 1;
      frontier.push(pred);
    }
  }
  return dist;
}

using Dist = std::unordered_map<const Node*, std::uint32_t>;

/// True when `link` lies on some shortest path from its source node `at`.
bool on_shortest_path(const Dist& dist, const Node* at, const Link* link) {
  const auto here = dist.find(at);
  const auto next = dist.find(link->dst());
  return here != dist.end() && next != dist.end() &&
         next->second + 1 == here->second;
}

std::uint64_t saturating_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
  return a > max - b ? max : a + b;
}

/// Shortest-path counts from every reachable node to dst, memoized.
std::uint64_t count_from(const Topology& topo, const Dist& dist, const Node* at,
                         const Node* dst,
                         std::unordered_map<const Node*, std::uint64_t>& memo) {
  if (at == dst) return 1;
  const auto cached = memo.find(at);
  if (cached != memo.end()) return cached->second;
  std::uint64_t count = 0;
  for (const Link* link : topo.outgoing(at)) {
    if (!on_shortest_path(dist, at, link)) continue;
    count = saturating_add(count, count_from(topo, dist, link->dst(), dst, memo));
  }
  memo[at] = count;
  return count;
}

void enumerate(const Topology& topo, const Dist& dist, const Node* at,
               const Node* dst, std::vector<Link*>& stack,
               std::vector<Path>& out) {
  if (at == dst) {
    out.push_back(Path{stack});
    return;
  }
  for (Link* link : topo.outgoing(at)) {
    if (!on_shortest_path(dist, at, link)) continue;
    stack.push_back(link);
    enumerate(topo, dist, link->dst(), dst, stack, out);
    stack.pop_back();
  }
}

/// Unranks path `rank` (0-based, creation order) without enumerating the
/// rest: at each node, eligible links are visited in creation order and the
/// rank indexes into the concatenation of their subtrees' path sets.
Path kth_path(const Topology& topo, const Dist& dist, const Node* src,
              const Node* dst, std::uint64_t rank,
              std::unordered_map<const Node*, std::uint64_t>& memo) {
  Path path;
  const Node* at = src;
  while (at != dst) {
    bool advanced = false;
    for (Link* link : topo.outgoing(at)) {
      if (!on_shortest_path(dist, at, link)) continue;
      const std::uint64_t below = count_from(topo, dist, link->dst(), dst, memo);
      if (rank < below) {
        path.links.push_back(link);
        at = link->dst();
        advanced = true;
        break;
      }
      rank -= below;
    }
    if (!advanced) throw std::logic_error("kth_path: rank out of range");
  }
  return path;
}

void check_endpoints(const Node* src, const Node* dst) {
  if (src == dst) throw std::invalid_argument("all_shortest_paths: src == dst");
}

}  // namespace

std::uint64_t count_shortest_paths(const Topology& topo, const Node* src,
                                   const Node* dst) {
  check_endpoints(src, dst);
  const Dist dist = distances_to(topo, dst);
  if (!dist.contains(src)) return 0;  // unreachable
  std::unordered_map<const Node*, std::uint64_t> memo;
  return count_from(topo, dist, src, dst, memo);
}

std::vector<Path> all_shortest_paths(const Topology& topo, const Node* src,
                                     const Node* dst) {
  check_endpoints(src, dst);
  const Dist dist = distances_to(topo, dst);
  std::vector<Path> paths;
  if (!dist.contains(src)) return paths;  // unreachable
  std::unordered_map<const Node*, std::uint64_t> memo;
  const std::uint64_t total = count_from(topo, dist, src, dst, memo);
  if (total > kMaxEnumeratedPaths) {
    throw std::length_error(
        "all_shortest_paths: " + std::to_string(total) +
        " shortest paths exceed the enumeration limit of " +
        std::to_string(kMaxEnumeratedPaths) +
        "; use sample_shortest_paths() to opt into a capped subset");
  }
  paths.reserve(static_cast<std::size_t>(total));
  std::vector<Link*> stack;
  enumerate(topo, dist, src, dst, stack, paths);
  return paths;
}

ShortestPathSample sample_shortest_paths(const Topology& topo, const Node* src,
                                         const Node* dst,
                                         std::size_t max_paths) {
  if (max_paths == 0) {
    throw std::invalid_argument("sample_shortest_paths: max_paths must be > 0");
  }
  check_endpoints(src, dst);
  ShortestPathSample sample;
  const Dist dist = distances_to(topo, dst);
  if (!dist.contains(src)) return sample;  // unreachable
  std::unordered_map<const Node*, std::uint64_t> memo;
  sample.total_paths = count_from(topo, dist, src, dst, memo);
  if (sample.total_paths <= max_paths) {
    std::vector<Link*> stack;
    sample.paths.reserve(static_cast<std::size_t>(sample.total_paths));
    enumerate(topo, dist, src, dst, stack, sample.paths);
    return sample;
  }
  sample.paths.reserve(max_paths);
  for (std::size_t i = 0; i < max_paths; ++i) {
    // floor(i * total / max_paths) in 128-bit so a saturated total cannot
    // overflow the stride arithmetic.
    const std::uint64_t rank = static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(sample.total_paths) * i / max_paths);
    sample.paths.push_back(kth_path(topo, dist, src, dst, rank, memo));
  }
  return sample;
}

Path reverse_path(const Path& path) {
  Path rev;
  rev.links.reserve(path.links.size());
  for (auto it = path.links.rbegin(); it != path.links.rend(); ++it) {
    Link* twin = (*it)->twin();
    if (twin == nullptr) {
      throw std::logic_error("reverse_path: link without a twin: " + (*it)->name());
    }
    rev.links.push_back(twin);
  }
  return rev;
}

const Path& ecmp_pick(const std::vector<Path>& paths, FlowId flow) {
  if (paths.empty()) throw std::invalid_argument("ecmp_pick: no paths");
  // SplitMix64: avalanche the flow id so consecutive ids spread well.
  std::uint64_t h = flow + 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  // Fixed-point range reduction (Lemire): uses the high bits of the hash and
  // is free of the modulo bias that skews small non-power-of-two path sets.
  return paths[static_cast<std::size_t>(
      (static_cast<unsigned __int128>(h) * paths.size()) >> 64)];
}

}  // namespace numfabric::net
