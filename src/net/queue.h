// Abstract per-port packet queue.
//
// A Link owns exactly one Queue.  Scheme-specific scheduling (WFQ for
// NUMFabric, priority for pFabric, FIFO+ECN for DCTCP/DGD/RCP*) is chosen by
// instantiating the right subclass; the Link drains whatever the queue's
// `dequeue` yields next.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.h"
#include "sim/substrate_stats.h"

namespace numfabric::net {

class Queue {
 public:
  /// `capacity_bytes` bounds the queue's total backlog; enqueue drops when
  /// it would be exceeded (which packet is dropped is up to the subclass).
  explicit Queue(std::size_t capacity_bytes) : capacity_bytes_(capacity_bytes) {}
  virtual ~Queue() = default;

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  /// Admits the packet or drops (returns false).
  virtual bool enqueue(Packet&& p) = 0;

  /// Next packet to serialize, or nullopt if empty.
  virtual std::optional<Packet> dequeue() = 0;

  bool empty() const { return packets_ == 0; }
  std::size_t bytes() const { return bytes_; }
  std::size_t packets() const { return packets_; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t drops() const { return drops_; }

 protected:
  bool would_overflow(const Packet& p) const {
    return bytes_ + p.size > capacity_bytes_;
  }
  void account_push(const Packet& p) {
    bytes_ += p.size;
    ++packets_;
  }
  void account_pop(const Packet& p) {
    bytes_ -= p.size;
    --packets_;
  }
  void account_drop() {
    ++drops_;
    ++sim::substrate_stats().packets_dropped;
  }

 private:
  std::size_t capacity_bytes_;
  std::size_t bytes_ = 0;
  std::size_t packets_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace numfabric::net
