// Dense open-addressing map from FlowId to small per-flow scheduler state.
//
// The WFQ virtual-finish tags and the discrete-WFQ band assignments were
// `std::unordered_map`s: every insert allocated a node, every lookup hashed
// into a bucket chain, and the periodic idle-flow GC churned node frees.
// This table stores {key, value} inline in one power-of-two slab with linear
// probing (Fibonacci hashing spreads sequential flow ids), so lookups are one
// or two cache lines and steady state performs zero allocations — growth
// rehashes are counted in SubstrateStats::allocs_flow_table.
//
// Keys are stored biased by +1 so 0 marks an empty cell without a separate
// flag byte: with an 8-byte Value a cell is exactly 16 bytes, four per cache
// line.  Deletion uses backward-shift (no tombstones), so load stays honest
// under the flow churn the schedulers see.  Value must be cheap to move; the
// table is not a general container (no iterators — retain_if covers the GC
// sweep).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/substrate_stats.h"

namespace numfabric::net {

template <typename Value>
class DenseFlowTable {
 public:
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Pointer to the value for `key`, or nullptr when absent.  Stays valid
  /// only until the next mutating call.
  Value* find(FlowId key) {
    if (cells_.empty()) return nullptr;
    const std::uint64_t stored = key + 1;
    for (std::size_t i = home(key);; i = next(i)) {
      Cell& cell = cells_[i];
      if (cell.key_plus_1 == stored) return &cell.value;
      if (cell.key_plus_1 == 0) return nullptr;
    }
  }

  /// Value for `key`, default-constructed and inserted when absent.
  Value& operator[](FlowId key) {
    if (cells_.empty() || (count_ + 1) * 4 > cells_.size() * 3) grow();
    const std::uint64_t stored = key + 1;
    for (std::size_t i = home(key);; i = next(i)) {
      Cell& cell = cells_[i];
      if (cell.key_plus_1 == stored) return cell.value;
      if (cell.key_plus_1 == 0) {
        cell.key_plus_1 = stored;
        cell.value = Value{};
        ++count_;
        return cell.value;
      }
    }
  }

  /// Removes `key` if present (backward-shift deletion, no tombstones).
  void erase(FlowId key) {
    if (cells_.empty()) return;
    const std::uint64_t stored = key + 1;
    std::size_t i = home(key);
    for (;; i = next(i)) {
      if (cells_[i].key_plus_1 == 0) return;
      if (cells_[i].key_plus_1 == stored) break;
    }
    backward_shift(i);
    --count_;
  }

  /// Keeps entries where `keep(key, value)` is true; drops the rest.  Used
  /// by the idle-flow GC.  Rebuilds in-place via a reused scratch buffer, so
  /// after the first sweep it allocates nothing.
  template <typename Keep>
  void retain_if(Keep keep) {
    scratch_.clear();
    for (Cell& cell : cells_) {
      if (cell.key_plus_1 != 0 && keep(cell.key_plus_1 - 1, cell.value)) {
        if (scratch_.size() == scratch_.capacity()) {
          ++sim::substrate_stats().allocs_flow_table;
        }
        scratch_.push_back({cell.key_plus_1 - 1, std::move(cell.value)});
      }
      cell.key_plus_1 = 0;
    }
    count_ = 0;
    for (auto& [key, value] : scratch_) {
      (*this)[key] = std::move(value);
    }
  }

 private:
  struct Cell {
    std::uint64_t key_plus_1 = 0;  // 0 == empty
    Value value{};
  };

  std::size_t home(FlowId key) const {
    // Fibonacci (multiplicative) hashing onto the power-of-two table.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (cells_.size() - 1); }

  void grow() {
    ++sim::substrate_stats().allocs_flow_table;
    const std::size_t new_size = cells_.empty() ? 16 : cells_.size() * 2;
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(new_size, Cell{});
    shift_ = 64;
    for (std::size_t s = new_size; s > 1; s >>= 1) --shift_;
    count_ = 0;
    for (Cell& cell : old) {
      if (cell.key_plus_1 != 0) {
        (*this)[cell.key_plus_1 - 1] = std::move(cell.value);
      }
    }
  }

  void backward_shift(std::size_t hole) {
    for (std::size_t i = next(hole);; i = next(i)) {
      if (cells_[i].key_plus_1 == 0) break;
      // An entry may fill the hole only if its home position does not lie
      // in (hole, i] — otherwise the probe chain to it would break.
      const std::size_t h = home(cells_[i].key_plus_1 - 1);
      const bool movable =
          hole <= i ? (h <= hole || h > i) : (h <= hole && h > i);
      if (movable) {
        cells_[hole] = std::move(cells_[i]);
        cells_[i].key_plus_1 = 0;
        hole = i;
      }
    }
    cells_[hole].key_plus_1 = 0;
  }

  std::vector<Cell> cells_;
  std::vector<std::pair<FlowId, Value>> scratch_;
  std::size_t count_ = 0;
  int shift_ = 64;
};

}  // namespace numfabric::net
