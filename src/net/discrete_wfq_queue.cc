#include "net/discrete_wfq_queue.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace numfabric::net {
namespace {
// DRR quantum granted to the *highest-weight* band per visit; lower bands
// receive proportionally less (accumulating deficit across visits).  The
// quantum must be normalized this way: weights are rate-scaled (Mbps) and
// granting kQuantum * weight bytes directly would serve megabyte bursts per
// visit, turning the scheduler into a slow round-robin of giant turns.
constexpr double kMaxBandQuantumBytes = 1500.0;
}  // namespace

DiscreteWfqQueue::DiscreteWfqQueue(std::size_t capacity_bytes, int num_bands,
                                   double min_weight, double max_weight)
    : Queue(capacity_bytes), min_weight_(min_weight) {
  if (num_bands < 1) throw std::invalid_argument("DiscreteWfqQueue: num_bands < 1");
  if (!(0 < min_weight && min_weight < max_weight)) {
    throw std::invalid_argument("DiscreteWfqQueue: need 0 < min_weight < max_weight");
  }
  const double ratio =
      num_bands == 1 ? 2.0
                     : std::pow(max_weight / min_weight, 1.0 / (num_bands - 1));
  log_ratio_ = std::log(ratio);
  bands_.resize(static_cast<std::size_t>(num_bands));
  for (int b = 0; b < num_bands; ++b) {
    bands_[static_cast<std::size_t>(b)].weight =
        min_weight * std::exp(log_ratio_ * b);
  }
}

int DiscreteWfqQueue::band_for_weight(double weight) const {
  if (weight <= min_weight_) return 0;
  const int band =
      static_cast<int>(std::lround(std::log(weight / min_weight_) / log_ratio_));
  return std::clamp(band, 0, num_bands() - 1);
}

bool DiscreteWfqQueue::enqueue(Packet&& p) {
  if (would_overflow(p)) {
    account_drop();
    return false;
  }
  // Control packets (virtual_packet_len == 0) ride in the highest band, as
  // they do implicitly in exact STFQ.
  int band;
  if (p.virtual_packet_len <= 0.0) {
    band = num_bands() - 1;
  } else {
    FlowState& state = flow_state_[p.flow];
    if (state.queued_packets == 0) {
      state.band = band_for_weight(p.size / p.virtual_packet_len);
    }
    band = state.band;  // sticky while the flow has a backlog here
    ++state.queued_packets;
  }
  account_push(p);
  bands_[static_cast<std::size_t>(band)].fifo.push_back(std::move(p));
  return true;
}

std::optional<Packet> DiscreteWfqQueue::dequeue() {
  if (empty()) return std::nullopt;
  // Deficit round robin: on arriving at a band, grant its quantum once;
  // serve packets while the deficit covers them; then move to the next band
  // (carrying any leftover deficit).  Bounded: repeated visits accumulate
  // deficit, so every non-empty band eventually transmits.
  for (;;) {
    Band& band = bands_[next_band_];
    if (band.fifo.empty()) {
      band.deficit = 0.0;
      advance_band();
      continue;
    }
    if (!quantum_granted_) {
      band.deficit +=
          kMaxBandQuantumBytes * band.weight / bands_.back().weight;
      quantum_granted_ = true;
    }
    if (band.deficit >= band.fifo.front().size) {
      Packet p = std::move(band.fifo.front());
      band.fifo.pop_front();
      band.deficit -= p.size;
      account_pop(p);
      if (p.virtual_packet_len > 0.0) {
        FlowState* state = flow_state_.find(p.flow);
        if (state != nullptr && --state->queued_packets <= 0) {
          flow_state_.erase(p.flow);
        }
      }
      if (band.fifo.empty() || band.deficit < band.fifo.front().size) {
        advance_band();
      }
      return p;
    }
    advance_band();
  }
}

void DiscreteWfqQueue::advance_band() {
  next_band_ = (next_band_ + 1) % bands_.size();
  quantum_granted_ = false;
}

}  // namespace numfabric::net
