#include "net/packet.h"

// Packet is a passive value type; this translation unit exists to anchor the
// module in the build and to host any future out-of-line helpers.

namespace numfabric::net {}  // namespace numfabric::net
