#include "net/node.h"

#include <stdexcept>
#include <utility>

#include "net/link.h"

namespace numfabric::net {

void Switch::receive(Packet&& packet) {
  if (packet.path == nullptr) {
    throw std::logic_error("Switch::receive: packet without a path");
  }
  const std::uint32_t next_hop = packet.hop + 1;
  if (next_hop >= packet.path->links.size()) {
    throw std::logic_error("Switch::receive: path ends at a switch (" + name() + ")");
  }
  packet.hop = next_hop;
  Link* out = packet.path->links[next_hop];
  out->send(std::move(packet));
}

void Host::receive(Packet&& packet) {
  auto it = handlers_.find(packet.flow);
  if (it == handlers_.end()) {
    ++stray_packets_;
    return;
  }
  it->second(std::move(packet));
}

void Host::register_flow(FlowId flow, PacketHandler handler) {
  if (!handler) throw std::invalid_argument("Host::register_flow: null handler");
  if (!handlers_.emplace(flow, std::move(handler)).second) {
    throw std::logic_error("Host::register_flow: duplicate flow id on " + name());
  }
}

void Host::unregister_flow(FlowId flow) { handlers_.erase(flow); }

}  // namespace numfabric::net
