#include "net/pfabric_queue.h"

#include <utility>

namespace numfabric::net {

bool PFabricQueue::enqueue(Packet&& p) {
  while (would_overflow(p)) {
    // Evict the least urgent packet; if that is the incoming packet itself,
    // drop it.  Control packets (ACKs) are never evicted — they are tiny and
    // losing them costs retransmission timeouts.
    auto worst = packets_.end();
    for (auto it = packets_.begin(); it != packets_.end(); ++it) {
      if (!it->packet.is_data()) continue;
      if (worst == packets_.end() || it->packet.priority > worst->packet.priority) {
        worst = it;
      }
    }
    if (worst == packets_.end() || (p.is_data() && worst->packet.priority <= p.priority)) {
      account_drop();
      return false;
    }
    account_pop(worst->packet);
    account_drop();
    packets_.erase(worst);
  }
  account_push(p);
  packets_.push_back(Entry{arrival_seq_++, std::move(p)});
  return true;
}

std::optional<Packet> PFabricQueue::dequeue() {
  if (packets_.empty()) return std::nullopt;
  // Find the most urgent packet ...
  auto best = packets_.begin();
  for (auto it = packets_.begin(); it != packets_.end(); ++it) {
    if (it->packet.priority < best->packet.priority) best = it;
  }
  // ... then serve the earliest packet of that flow to preserve ordering.
  auto serve = packets_.end();
  for (auto it = packets_.begin(); it != packets_.end(); ++it) {
    if (it->packet.flow != best->packet.flow) continue;
    if (serve == packets_.end() || it->seq < serve->seq) serve = it;
  }
  Packet p = std::move(serve->packet);
  packets_.erase(serve);
  account_pop(p);
  return p;
}

}  // namespace numfabric::net
