#include "net/pfabric_queue.h"

#include <utility>

#include "sim/substrate_stats.h"

namespace numfabric::net {

bool PFabricQueue::enqueue(Packet&& p) {
  while (would_overflow(p)) {
    // Evict the least urgent packet; if that is the incoming packet itself,
    // drop it.  Control packets (ACKs) are never evicted — they are tiny and
    // losing them costs retransmission timeouts.
    std::size_t worst = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].data) continue;
      if (worst == entries_.size() ||
          entries_[i].priority > entries_[worst].priority) {
        worst = i;
      }
    }
    if (worst == entries_.size() ||
        (p.is_data() && entries_[worst].priority <= p.priority)) {
      account_drop();
      return false;
    }
    account_pop(pool_[entries_[worst].slot]);
    account_drop();
    pool_.release(entries_[worst].slot);
    entries_.erase(entries_.begin() +
                   static_cast<std::ptrdiff_t>(worst));
  }
  account_push(p);
  if (entries_.size() == entries_.capacity()) {
    ++sim::substrate_stats().allocs_queue;
  }
  const Entry entry{p.priority, p.flow, arrival_seq_++, 0, p.is_data()};
  const std::uint32_t slot = pool_.acquire(std::move(p));
  entries_.push_back(entry);
  entries_.back().slot = slot;
  return true;
}

std::optional<Packet> PFabricQueue::dequeue() {
  if (entries_.empty()) return std::nullopt;
  // Find the most urgent packet ...
  std::size_t best = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].priority < entries_[best].priority) best = i;
  }
  // ... then serve the earliest packet of that flow to preserve ordering.
  std::size_t serve = entries_.size();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].flow != entries_[best].flow) continue;
    if (serve == entries_.size() || entries_[i].seq < entries_[serve].seq) {
      serve = i;
    }
  }
  const std::uint32_t slot = entries_[serve].slot;
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(serve));
  account_pop(pool_[slot]);
  // Move out of the pool slot before releasing it — release() reuses the
  // packet's first bytes for the free-list link.
  std::optional<Packet> out(std::move(pool_[slot]));
  pool_.release(slot);
  return out;
}

}  // namespace numfabric::net
