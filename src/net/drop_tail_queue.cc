#include "net/drop_tail_queue.h"

#include <utility>

namespace numfabric::net {

bool DropTailQueue::enqueue(Packet&& p) {
  if (would_overflow(p)) {
    account_drop();
    return false;
  }
  if (ecn_threshold_bytes_ > 0 && p.ecn_capable && bytes() >= ecn_threshold_bytes_) {
    p.ecn_marked = true;
  }
  account_push(p);
  fifo_.push_back(std::move(p));
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (fifo_.empty()) return std::nullopt;
  account_pop(fifo_.front());
  std::optional<Packet> p(std::move(fifo_.front()));
  fifo_.pop_front();
  return p;
}

}  // namespace numfabric::net
