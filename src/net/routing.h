// Path enumeration and ECMP selection.
//
// Flows are source-routed: at flow start a path is picked among all
// equal-cost shortest paths (by hop count), either by hash (per-flow ECMP) or
// uniformly at random (how the MPTCP experiment of Fig. 8 maps sub-flows to
// paths).  See DESIGN.md §5 for why this is equivalent to per-hop ECMP in the
// paper's setting.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"

namespace numfabric::net {

/// All shortest paths (fewest links) from src to dst, up to `max_paths`.
/// Deterministic order (by link creation order) so path selection is
/// reproducible.
std::vector<Path> all_shortest_paths(const Topology& topo, const Node* src,
                                     const Node* dst, std::size_t max_paths = 64);

/// Builds the reverse of `path` out of twin links (dst back to src).
Path reverse_path(const Path& path);

/// Deterministic ECMP pick: hash the flow id over the path set.
const Path& ecmp_pick(const std::vector<Path>& paths, FlowId flow);

}  // namespace numfabric::net
