// Path enumeration and ECMP selection.
//
// Flows are source-routed: at flow start a path is picked among all
// equal-cost shortest paths (by hop count), either by hash (per-flow ECMP) or
// uniformly at random (how the MPTCP experiment of Fig. 8 maps sub-flows to
// paths).  See DESIGN.md §5 for why this is equivalent to per-hop ECMP in the
// paper's setting.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "net/topology.h"

namespace numfabric::net {

/// Largest shortest-path set all_shortest_paths() will enumerate.  Beyond
/// this a fabric is pathological for source routing and the caller must opt
/// into sampling explicitly (sample_shortest_paths) instead of silently
/// losing path diversity.
inline constexpr std::size_t kMaxEnumeratedPaths = 4096;

/// All shortest paths (fewest links) from src to dst, in deterministic order
/// (by link creation order) so path selection is reproducible.  The COMPLETE
/// set is returned — there is no silent cap.  Throws std::length_error when
/// the set exceeds kMaxEnumeratedPaths; callers that can live with a subset
/// opt in via sample_shortest_paths().
std::vector<Path> all_shortest_paths(const Topology& topo, const Node* src,
                                     const Node* dst);

/// Number of distinct shortest paths from src to dst (counted by dynamic
/// programming, not enumeration — cheap even when the set is huge).
/// Saturates at std::uint64_t max.
std::uint64_t count_shortest_paths(const Topology& topo, const Node* src,
                                   const Node* dst);

/// Result of the capped enumeration: the chosen subset plus the size of the
/// full set, so callers always see when (and how much) was dropped.
struct ShortestPathSample {
  std::vector<Path> paths;
  /// Size of the complete shortest-path set (counted, not enumerated).
  std::uint64_t total_paths = 0;

  bool capped() const { return total_paths > paths.size(); }
};

/// At most `max_paths` shortest paths.  When the full set fits this is
/// exactly all_shortest_paths(); when it does not, the subset is picked at
/// an even deterministic stride over the full creation-ordered set (path
/// ranks floor(i * total / max_paths)) rather than a creation-order prefix,
/// so wide fabrics keep their spine diversity instead of biasing toward
/// early-created links.  Selected paths are unranked directly — the full set
/// is never materialized.
ShortestPathSample sample_shortest_paths(const Topology& topo, const Node* src,
                                         const Node* dst,
                                         std::size_t max_paths);

/// Builds the reverse of `path` out of twin links (dst back to src).
Path reverse_path(const Path& path);

/// Deterministic ECMP pick: hash the flow id over the path set.  SplitMix64
/// mixing plus fixed-point (multiply-shift) range reduction, so sequential
/// flow ids spread evenly and no path set size suffers modulo bias.
const Path& ecmp_pick(const std::vector<Path>& paths, FlowId flow);

/// The index ecmp_pick() would choose among `count` alternatives — exposed so
/// link-id path sets (graph routing, flow fidelity) select the same path for
/// a flow as the object-path overload.  Throws on count == 0.
std::size_t ecmp_index(std::size_t count, FlowId flow);

// ---------------------------------------------------------------------------
// Graph routing: path sets as directed-link-id sequences over a FabricGraph.
// A graph link id is also the dense Topology::links() index after
// materialize(), so these paths serve both fidelities without translation.
// ---------------------------------------------------------------------------

/// All shortest paths from graph node `src` to `dst`, in the same
/// deterministic (cable-insertion) order as the Topology overload; the same
/// no-silent-caps contract applies (std::length_error past
/// kMaxEnumeratedPaths).
std::vector<std::vector<int>> all_shortest_paths(const FabricGraph& graph,
                                                 int src, int dst);

/// Yen-style k shortest loop-free paths by hop count, for fabrics without
/// equal-cost path classes (jellyfish).  Deterministic: the first path is the
/// lexicographically smallest (by link id) shortest path and candidates are
/// ordered by (length, link sequence).  Returns fewer than k when the graph
/// has no more loop-free paths.  The no-silent-caps contract applies to the
/// *request*: asking for k > kMaxEnumeratedPaths throws std::length_error
/// instead of quietly clamping.  Throws std::invalid_argument on src == dst
/// or k == 0.
std::vector<std::vector<int>> k_shortest_paths(const FabricGraph& graph,
                                               int src, int dst, std::size_t k);

}  // namespace numfabric::net
