#include "net/link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "net/node.h"
#include "net/shard_plan.h"
#include "sim/substrate_stats.h"

namespace numfabric::net {

Link::Link(sim::Simulator& sim, std::string name, double rate_bps,
           sim::TimeNs delay, std::unique_ptr<Queue> queue, Node* dst)
    : sim_(&sim),
      name_(std::move(name)),
      rate_bps_(rate_bps),
      delay_(delay),
      queue_(std::move(queue)),
      dst_(dst) {
  if (rate_bps_ <= 0) throw std::invalid_argument("Link: rate must be > 0");
  if (!queue_) throw std::invalid_argument("Link: queue must not be null");
  if (dst_ == nullptr) throw std::invalid_argument("Link: dst must not be null");
}

void Link::set_rate_bps(double rate_bps) {
  if (rate_bps <= 0) throw std::invalid_argument("Link: rate must be > 0");
  rate_bps_ = rate_bps;
}

void Link::send(Packet&& packet) {
  // Inline control-plane enqueue hook: an index-addressed store into the
  // ControlPlane's SoA arrays (the batched replacement for the virtual
  // LinkAgent::on_enqueue).
  if (control_mode_ == ControlStamp::kXwiPrice && packet.is_data() &&
      std::isfinite(packet.normalized_residual)) {
    double& min_res = control_->min_residual[control_slot_];
    min_res = std::min(min_res, packet.normalized_residual);
    control_->saw_residual[control_slot_] = 1;
  }
  if (agent_) agent_->on_enqueue(packet);
  if (!queue_->enqueue(std::move(packet))) return;  // dropped; stats in Queue
  try_start_tx();
}

void Link::try_start_tx() {
  if (busy_) return;
  auto next = queue_->dequeue();
  if (!next) return;
  busy_ = true;
  // Inline control-plane dequeue hook: count serviced bytes and stamp the
  // per-link value (price or feedback) into the data packet's header.
  if (control_mode_ != ControlStamp::kNone) {
    control_->bytes_serviced[control_slot_] += next->size;
    if (next->is_data()) {
      if (control_mode_ == ControlStamp::kXwiPrice) {
        next->path_price += control_->stamp[control_slot_];
        next->path_len += 1;
      } else {
        next->path_feedback += control_->stamp[control_slot_];
      }
    }
  }
  if (agent_) agent_->on_dequeue(*next);
  bytes_sent_ += next->size;
  auto& stats = sim::substrate_stats();
  ++stats.packets_forwarded;
  stats.bytes_forwarded += next->size;
  const sim::TimeNs tx = sim::transmission_time(next->size, rate_bps_);
  // Serialization finishes at +tx: free the transmitter and continue.
  sim_->schedule_in(tx, [this] {
    busy_ = false;
    try_start_tx();
  });
  // The packet reaches the peer a propagation delay after serialization.
  if (cross_router_ != nullptr) {
    // The peer lives on another shard: the delivery becomes a timestamped
    // message carrying the order key this push would have had serially.
    cross_router_->post(cross_src_shard_, cross_dst_shard_,
                        sim_->now() + tx + delay_, sim_->consume_push_key(),
                        dst_, std::move(*next));
  } else {
    // Local delivery: the packet waits in the in-flight ring rather than in
    // a heap-allocated closure.
    inflight_.push_back(std::move(*next));
    sim_->schedule_in(tx + delay_, [this] { deliver_front(); });
  }
}

void Link::deliver_front() {
  Packet p = std::move(inflight_.front());
  inflight_.pop_front();
  dst_->receive(std::move(p));
}

}  // namespace numfabric::net
