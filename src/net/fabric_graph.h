// FabricGraph: the data-first topology model every layer consumes.
//
// A fabric is described once as plain data — node kinds (host/switch) with a
// tier label, bidirectional cables with {rate, delay} — and each engine
// derives its own view from it:
//  * the packet engine materializes Node/Link/Queue objects
//    (Topology::materialize), byte-identical to the historical hand-rolled
//    builders;
//  * the flow-fluid engine takes the capacity vector + a path table
//    (flowsim::VirtualFabric::from_graph);
//  * the shard planner derives its partition and conservative lookahead from
//    tiers and cut-cable delays (net::build_shard_plan).
//
// Directed-link numbering: cable c contributes link 2c (a->b) and 2c+1
// (b->a); reverse(l) == l ^ 1.  Because materialize() creates links in cable
// order, a graph link id is *also* the dense index of the corresponding
// net::Link in Topology::links() — path sets computed on the graph are valid
// for both fidelities without translation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/time.h"

namespace numfabric::net {

enum class GraphNodeKind : std::uint8_t { kHost, kSwitch };

/// Tier labels: hosts are tier 0; in a Clos fabric leaves/ToRs are tier 1 and
/// spines tier 2.  Non-Clos fabrics (jellyfish) put every switch in tier 1 —
/// the shard planner uses tiers to decide whether a leaf/spine cut exists.
struct GraphNode {
  GraphNodeKind kind = GraphNodeKind::kSwitch;
  std::string name;
  int tier = 1;
};

/// A full-duplex cable: both directions share rate and propagation delay.
struct GraphCable {
  int a = -1;
  int b = -1;
  double rate_bps = 0;
  sim::TimeNs delay = 0;
};

class FabricGraph {
 public:
  int add_host(std::string name);
  int add_switch(std::string name, int tier = 1);
  /// Adds a cable between distinct existing nodes; returns the cable index.
  /// Directed links 2c and 2c+1 come into existence with it.
  int add_cable(int a, int b, double rate_bps, sim::TimeNs delay);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_cables() const { return static_cast<int>(cables_.size()); }
  int num_links() const { return 2 * num_cables(); }
  int num_hosts() const { return num_hosts_; }
  int num_switches() const { return num_nodes() - num_hosts_; }

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphCable>& cables() const { return cables_; }

  // Directed-link accessors (link id in [0, num_links())).
  int link_src(int link) const {
    const GraphCable& c = cables_[static_cast<std::size_t>(link >> 1)];
    return (link & 1) == 0 ? c.a : c.b;
  }
  int link_dst(int link) const {
    const GraphCable& c = cables_[static_cast<std::size_t>(link >> 1)];
    return (link & 1) == 0 ? c.b : c.a;
  }
  double link_rate_bps(int link) const {
    return cables_[static_cast<std::size_t>(link >> 1)].rate_bps;
  }
  sim::TimeNs link_delay(int link) const {
    return cables_[static_cast<std::size_t>(link >> 1)].delay;
  }
  static int reverse(int link) { return link ^ 1; }

  /// Outgoing directed links of `node`, in cable-insertion order — the same
  /// order Topology::outgoing() reports after materialize(), so path
  /// enumeration on the graph matches enumeration on the object topology.
  std::span<const int> outgoing(int node) const;

  /// The single host->switch uplink of a host.  Throws std::logic_error if
  /// the node is not a host with exactly one cable.
  int host_uplink(int host) const;

 private:
  void build_adjacency() const;

  std::vector<GraphNode> nodes_;
  std::vector<GraphCable> cables_;
  int num_hosts_ = 0;
  // Lazily rebuilt CSR adjacency: node n's outgoing links occupy
  // adj_links_[adj_offsets_[n] .. adj_offsets_[n + 1]).
  mutable std::vector<int> adj_offsets_;
  mutable std::vector<int> adj_links_;
  mutable bool adjacency_dirty_ = true;
};

// ---------------------------------------------------------------------------
// Graph builders
// ---------------------------------------------------------------------------

/// Parameterized leaf-spine fabric.  Host and core tiers are independent
/// (counts, rates, propagation delays), so the same builder covers the
/// paper's non-blocking 4:1-core fabric, all-10G symmetric fabrics (Fig. 8)
/// and deliberately oversubscribed cores (the contended-fabric scenario
/// family).
struct LeafSpineOptions {
  int hosts_per_leaf = 16;
  int num_leaves = 8;
  int num_spines = 4;
  double host_rate_bps = 10e9;
  double spine_rate_bps = 40e9;
  // 2 us per hop * 8 hops on a cross-leaf round trip = the paper's 16 us RTT.
  sim::TimeNs link_delay = sim::micros(2);
  /// Leaf-spine propagation delay; < 0 means "same as link_delay".  Longer
  /// core runs (asymmetric fabrics) set this explicitly.
  sim::TimeNs core_link_delay = -1;

  sim::TimeNs effective_core_delay() const {
    return core_link_delay < 0 ? link_delay : core_link_delay;
  }

  /// Core oversubscription ratio: per-leaf host demand over per-leaf core
  /// capacity.  1.0 = non-blocking (the paper's evaluation fabric); 4.0 = a
  /// 4:1 contended core.
  double oversubscription() const {
    return (hosts_per_leaf * host_rate_bps) / (num_spines * spine_rate_bps);
  }

  /// Copy with the spine rate re-derived so oversubscription() == ratio,
  /// keeping host rate and switch counts fixed.
  LeafSpineOptions with_oversubscription(double ratio) const;
};

/// Leaf-spine as data: leaves (tier 1) then spines (tier 2) then hosts in
/// leaf-major order, edge cables before core cables — exactly the creation
/// order build_leaf_spine has always used, so materialize() reproduces the
/// historical fabric byte-for-byte.  Throws std::invalid_argument on
/// non-positive counts or rates.
FabricGraph make_leaf_spine(const LeafSpineOptions& options);

/// Base (zero-load) RTT between two hosts under different leaves of a
/// leaf-spine, including serialization of one data packet + one ACK per
/// store-and-forward hop, each at that hop's own rate.
sim::TimeNs leaf_spine_cross_rtt(const LeafSpineOptions& options);

/// Jellyfish (Singla et al.): a random r-regular graph over the switches,
/// deterministic for a given seed, with hosts attached round-robin.  Every
/// switch is tier 1 — there is no leaf/spine cut, so the fabric runs on the
/// serial engine only (the shard planner explains why when asked).
struct JellyfishOptions {
  int switches = 16;
  /// Network-facing ports per switch == degree r of the random regular graph.
  int ports = 4;
  int hosts = 32;
  std::uint64_t seed = 1;
  double host_rate_bps = 10e9;
  double switch_rate_bps = 40e9;
  sim::TimeNs link_delay = sim::micros(2);
};

/// Builds the jellyfish graph: switches "sw0..", hosts "h0.." attached to
/// switch i % switches, then the random regular wiring (incremental
/// construction with edge-swap repair, SplitMix64-driven — identical output
/// for identical options on every platform).  Throws std::invalid_argument
/// on infeasible parameters and std::runtime_error if the wiring comes out
/// disconnected (pick another seed or more ports).
FabricGraph make_jellyfish(const JellyfishOptions& options);

/// Base (zero-load) RTT of the *longest* shortest host-to-host route in an
/// arbitrary graph: per store-and-forward hop, propagation + one data packet
/// forward and propagation + one ACK back, each at that hop's own rate.
/// Equals LeafSpine::cross_leaf_rtt on a multi-leaf leaf-spine; used as the
/// latency charge / BDP basis for fabrics with no "cross-leaf" notion.
sim::TimeNs base_rtt(const FabricGraph& graph);

}  // namespace numfabric::net
