#include "net/queue.h"

namespace numfabric::net {}  // namespace numfabric::net
