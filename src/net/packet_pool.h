// Free-list pool of Packet slots, shared by the scheduling queues.
//
// Queues that sort small POD entries (WFQ's packed keys, pFabric's scan
// entries) park the packets themselves here and refer to them by slot
// index.  Free slots form an intrusive list threaded through their own
// bytes — Packet is trivially copyable, so a released slot's storage is the
// pool's to scribble on until reuse — which makes acquire/release pure
// index arithmetic with zero side allocations.  Growth (the only
// allocation) is counted in SubstrateStats::allocs_packet_pool.
//
// Slot indices are kSlotBits wide so they can be packed into sort keys
// alongside sequence numbers.  acquire() throws std::length_error rather
// than silently overflowing the packed keys if a single port ever holds
// 2^24 packets (a >24 GB backlog of MTU frames — far beyond any sane
// configuration, so failing loudly is the right behavior).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/substrate_stats.h"

namespace numfabric::net {

class PacketPool {
 public:
  /// Width of a slot index; callers may pack indices into wider sort keys.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kEnd = 0xffffffffu;  // empty free list

  /// Stores `p` and returns its slot.  Throws std::length_error if the
  /// pool would exceed 2^kSlotBits live slots.
  std::uint32_t acquire(Packet&& p) {
    if (free_head_ != kEnd) {
      const std::uint32_t slot = free_head_;
      free_head_ = next_free(slot);
      slots_[slot] = std::move(p);
      return slot;
    }
    if (slots_.size() >= (1u << kSlotBits)) {
      throw std::length_error("PacketPool: more than 2^24 packets queued");
    }
    if (slots_.size() == slots_.capacity()) {
      ++sim::substrate_stats().allocs_packet_pool;
    }
    slots_.push_back(std::move(p));
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Returns `slot` to the free list.  The packet's storage is reused for
  /// the list link, so move the packet out *before* releasing.
  void release(std::uint32_t slot) {
    static_assert(std::is_trivially_copyable_v<Packet>,
                  "the intrusive free list reuses Packet storage for links");
    std::memcpy(static_cast<void*>(&slots_[slot]), &free_head_,
                sizeof(free_head_));
    free_head_ = slot;
  }

  Packet& operator[](std::uint32_t slot) { return slots_[slot]; }
  const Packet& operator[](std::uint32_t slot) const { return slots_[slot]; }

 private:
  std::uint32_t next_free(std::uint32_t slot) const {
    std::uint32_t next;
    std::memcpy(&next, &slots_[slot], sizeof(next));
    return next;
  }

  std::vector<Packet> slots_;
  std::uint32_t free_head_ = kEnd;
};

}  // namespace numfabric::net
