// Ablation: approximate WFQ with a small set of FIFO queues ("bands").
//
// §8 of the paper suggests "practical approximations of WFQ such as a small
// set of queues with different weights" as a simpler switch design.  This
// queue quantizes each packet's implied weight (L / virtual_packet_len) onto
// a logarithmic grid of N bands and serves the bands with byte-based deficit
// round robin, each band's quantum proportional to its representative
// weight.  Flows mapped to the same band share it FIFO.
//
// bench/ablation_discrete_wfq compares this against exact STFQ.
#pragma once

#include <cstdint>
#include <vector>

#include "net/flow_table.h"
#include "net/queue.h"
#include "util/ring_buffer.h"

namespace numfabric::net {

class DiscreteWfqQueue : public Queue {
 public:
  /// Bands cover weights [min_weight, max_weight] on a geometric grid.
  DiscreteWfqQueue(std::size_t capacity_bytes, int num_bands, double min_weight,
                   double max_weight);

  bool enqueue(Packet&& p) override;
  std::optional<Packet> dequeue() override;

  int num_bands() const { return static_cast<int>(bands_.size()); }

  /// Band a given weight maps to (exposed for tests).
  int band_for_weight(double weight) const;

 private:
  struct Band {
    util::RingBuffer<Packet> fifo;
    double weight = 1.0;   // representative weight of the band
    double deficit = 0.0;  // DRR deficit counter, in bytes
  };

  void advance_band();

  struct FlowState {
    int band = 0;
    int queued_packets = 0;
  };

  std::vector<Band> bands_;
  double min_weight_;
  double log_ratio_;  // log of grid spacing
  std::size_t next_band_ = 0;
  bool quantum_granted_ = false;  // quantum already granted this visit
  // A flow is pinned to one band while it has packets queued; re-banding a
  // flow with a backlog would let DRR serve its packets out of order, which
  // the go-back-N transports punish with full timeouts.
  DenseFlowTable<FlowState> flow_state_;
};

}  // namespace numfabric::net
