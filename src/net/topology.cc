#include "net/topology.h"

#include <stdexcept>
#include <utility>

#include "net/drop_tail_queue.h"

namespace numfabric::net {

QueueFactory drop_tail_factory(std::size_t capacity_bytes) {
  return [capacity_bytes] { return std::make_unique<DropTailQueue>(capacity_bytes); };
}

Host* Topology::add_host(std::string name) {
  auto host = std::make_unique<Host>(next_node_id_++, std::move(name));
  Host* raw = host.get();
  nodes_.push_back(std::move(host));
  hosts_.push_back(raw);
  adjacency_[raw];  // ensure an (empty) adjacency entry exists
  return raw;
}

Switch* Topology::add_switch(std::string name) {
  auto sw = std::make_unique<Switch>(next_node_id_++, std::move(name));
  Switch* raw = sw.get();
  nodes_.push_back(std::move(sw));
  switches_.push_back(raw);
  adjacency_[raw];
  return raw;
}

std::pair<Link*, Link*> Topology::connect(Node* a, Node* b, double rate_bps,
                                          sim::TimeNs delay,
                                          const QueueFactory& make_queue) {
  if (a == nullptr || b == nullptr) {
    throw std::invalid_argument("Topology::connect: null node");
  }
  auto forward = std::make_unique<Link>(sim_, a->name() + "->" + b->name(),
                                        rate_bps, delay, make_queue(), b);
  auto backward = std::make_unique<Link>(sim_, b->name() + "->" + a->name(),
                                         rate_bps, delay, make_queue(), a);
  forward->set_twin(backward.get());
  backward->set_twin(forward.get());
  Link* f = forward.get();
  Link* r = backward.get();
  links_.push_back(std::move(forward));
  links_.push_back(std::move(backward));
  adjacency_[a].push_back(f);
  adjacency_[b].push_back(r);
  return {f, r};
}

const std::vector<Link*>& Topology::outgoing(const Node* node) const {
  auto it = adjacency_.find(node);
  if (it == adjacency_.end()) {
    throw std::invalid_argument("Topology::outgoing: unknown node");
  }
  return it->second;
}

MaterializedFabric Topology::materialize(const FabricGraph& graph,
                                         const QueueFactory& make_queue,
                                         const QueueFactory& make_core_queue) {
  const QueueFactory& core_queue = make_core_queue ? make_core_queue : make_queue;
  MaterializedFabric mat;
  mat.nodes.reserve(static_cast<std::size_t>(graph.num_nodes()));
  for (const GraphNode& node : graph.nodes()) {
    if (node.kind == GraphNodeKind::kHost) {
      Host* host = add_host(node.name);
      mat.nodes.push_back(host);
      mat.hosts.push_back(host);
    } else {
      Switch* sw = add_switch(node.name);
      mat.nodes.push_back(sw);
      mat.switches.push_back(sw);
    }
  }
  mat.links.reserve(static_cast<std::size_t>(graph.num_links()));
  for (const GraphCable& cable : graph.cables()) {
    const bool edge =
        graph.nodes()[static_cast<std::size_t>(cable.a)].kind == GraphNodeKind::kHost ||
        graph.nodes()[static_cast<std::size_t>(cable.b)].kind == GraphNodeKind::kHost;
    auto [fwd, back] = connect(mat.nodes[static_cast<std::size_t>(cable.a)],
                               mat.nodes[static_cast<std::size_t>(cable.b)],
                               cable.rate_bps, cable.delay,
                               edge ? make_queue : core_queue);
    mat.links.push_back(fwd);
    mat.links.push_back(back);
  }
  return mat;
}

LeafSpine build_leaf_spine(Topology& topo, const LeafSpineOptions& options,
                           const QueueFactory& make_queue,
                           const QueueFactory& make_core_queue) {
  LeafSpine result;
  result.graph = make_leaf_spine(options);  // validates the options
  result.mat = topo.materialize(result.graph, make_queue, make_core_queue);
  result.hosts = result.mat.hosts;
  result.leaves.assign(
      result.mat.switches.begin(),
      result.mat.switches.begin() + options.num_leaves);
  result.spines.assign(
      result.mat.switches.begin() + options.num_leaves,
      result.mat.switches.end());
  for (int link = 0; link < result.graph.num_links(); ++link) {
    const GraphNodeKind src_kind =
        result.graph.nodes()[static_cast<std::size_t>(result.graph.link_src(link))].kind;
    const GraphNodeKind dst_kind =
        result.graph.nodes()[static_cast<std::size_t>(result.graph.link_dst(link))].kind;
    if (src_kind == GraphNodeKind::kSwitch && dst_kind == GraphNodeKind::kSwitch) {
      result.core_links.push_back(result.mat.links[static_cast<std::size_t>(link)]);
    }
  }
  result.cross_leaf_rtt = leaf_spine_cross_rtt(options);
  return result;
}

Dumbbell build_dumbbell(Topology& topo, int n, double edge_bps,
                        double bottleneck_bps, sim::TimeNs delay,
                        const QueueFactory& make_queue) {
  Dumbbell result;
  result.left = topo.add_switch("left");
  result.right = topo.add_switch("right");
  auto [fwd, back] = topo.connect(result.left, result.right, bottleneck_bps,
                                  delay, make_queue);
  (void)back;
  result.bottleneck = fwd;
  for (int i = 0; i < n; ++i) {
    Host* s = topo.add_host("s" + std::to_string(i));
    Host* r = topo.add_host("r" + std::to_string(i));
    topo.connect(s, result.left, edge_bps, delay, make_queue);
    topo.connect(result.right, r, edge_bps, delay, make_queue);
    result.senders.push_back(s);
    result.receivers.push_back(r);
  }
  return result;
}

ParkingLot build_parking_lot(Topology& topo, int n, double rate_bps,
                             sim::TimeNs delay, const QueueFactory& make_queue) {
  if (n < 1) throw std::invalid_argument("build_parking_lot: n must be >= 1");
  ParkingLot result;
  for (int i = 0; i <= n; ++i) {
    result.switches.push_back(topo.add_switch("sw" + std::to_string(i)));
    Host* h = topo.add_host("h" + std::to_string(i));
    result.hosts.push_back(h);
    // Host links are 10x the backbone so only backbone links bottleneck.
    topo.connect(h, result.switches.back(), rate_bps * 10, delay, make_queue);
  }
  for (int i = 0; i < n; ++i) {
    auto [fwd, back] = topo.connect(result.switches[static_cast<std::size_t>(i)],
                                    result.switches[static_cast<std::size_t>(i + 1)],
                                    rate_bps, delay, make_queue);
    (void)back;
    result.backbone.push_back(fwd);
  }
  return result;
}

Fig10Topology build_fig10(Topology& topo, double middle_rate_bps,
                          sim::TimeNs delay, const QueueFactory& make_queue,
                          double edge_rate_bps) {
  Fig10Topology result;
  result.in = topo.add_switch("in");
  result.out = topo.add_switch("out");
  result.src1 = topo.add_host("src1");
  result.src2 = topo.add_host("src2");
  result.dst1 = topo.add_host("dst1");
  result.dst2 = topo.add_host("dst2");
  topo.connect(result.src1, result.in, edge_rate_bps, delay, make_queue);
  topo.connect(result.src2, result.in, edge_rate_bps, delay, make_queue);
  topo.connect(result.out, result.dst1, edge_rate_bps, delay, make_queue);
  topo.connect(result.out, result.dst2, edge_rate_bps, delay, make_queue);
  result.top = topo.connect(result.in, result.out, 5e9, delay, make_queue).first;
  result.middle =
      topo.connect(result.in, result.out, middle_rate_bps, delay, make_queue).first;
  result.bottom = topo.connect(result.in, result.out, 3e9, delay, make_queue).first;
  return result;
}

}  // namespace numfabric::net
