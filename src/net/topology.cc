#include "net/topology.h"

#include <stdexcept>
#include <utility>

#include "net/drop_tail_queue.h"

namespace numfabric::net {

QueueFactory drop_tail_factory(std::size_t capacity_bytes) {
  return [capacity_bytes] { return std::make_unique<DropTailQueue>(capacity_bytes); };
}

Host* Topology::add_host(std::string name) {
  auto host = std::make_unique<Host>(next_node_id_++, std::move(name));
  Host* raw = host.get();
  nodes_.push_back(std::move(host));
  hosts_.push_back(raw);
  adjacency_[raw];  // ensure an (empty) adjacency entry exists
  return raw;
}

Switch* Topology::add_switch(std::string name) {
  auto sw = std::make_unique<Switch>(next_node_id_++, std::move(name));
  Switch* raw = sw.get();
  nodes_.push_back(std::move(sw));
  switches_.push_back(raw);
  adjacency_[raw];
  return raw;
}

std::pair<Link*, Link*> Topology::connect(Node* a, Node* b, double rate_bps,
                                          sim::TimeNs delay,
                                          const QueueFactory& make_queue) {
  if (a == nullptr || b == nullptr) {
    throw std::invalid_argument("Topology::connect: null node");
  }
  auto forward = std::make_unique<Link>(sim_, a->name() + "->" + b->name(),
                                        rate_bps, delay, make_queue(), b);
  auto backward = std::make_unique<Link>(sim_, b->name() + "->" + a->name(),
                                         rate_bps, delay, make_queue(), a);
  forward->set_twin(backward.get());
  backward->set_twin(forward.get());
  Link* f = forward.get();
  Link* r = backward.get();
  links_.push_back(std::move(forward));
  links_.push_back(std::move(backward));
  adjacency_[a].push_back(f);
  adjacency_[b].push_back(r);
  return {f, r};
}

const std::vector<Link*>& Topology::outgoing(const Node* node) const {
  auto it = adjacency_.find(node);
  if (it == adjacency_.end()) {
    throw std::invalid_argument("Topology::outgoing: unknown node");
  }
  return it->second;
}

LeafSpineOptions LeafSpineOptions::with_oversubscription(double ratio) const {
  if (!(ratio > 0)) {
    throw std::invalid_argument(
        "with_oversubscription: ratio must be positive");
  }
  LeafSpineOptions derived = *this;
  derived.spine_rate_bps =
      (hosts_per_leaf * host_rate_bps) / (num_spines * ratio);
  return derived;
}

LeafSpine build_leaf_spine(Topology& topo, const LeafSpineOptions& options,
                           const QueueFactory& make_queue,
                           const QueueFactory& make_core_queue) {
  if (options.hosts_per_leaf < 1 || options.num_leaves < 1 ||
      options.num_spines < 1) {
    throw std::invalid_argument(
        "build_leaf_spine: hosts_per_leaf, num_leaves and num_spines must "
        "all be >= 1");
  }
  if (!(options.host_rate_bps > 0) || !(options.spine_rate_bps > 0)) {
    throw std::invalid_argument(
        "build_leaf_spine: link rates must be positive");
  }
  const QueueFactory& core_queue = make_core_queue ? make_core_queue : make_queue;
  const sim::TimeNs core_delay = options.effective_core_delay();
  LeafSpine result;
  for (int l = 0; l < options.num_leaves; ++l) {
    result.leaves.push_back(topo.add_switch("leaf" + std::to_string(l)));
  }
  for (int s = 0; s < options.num_spines; ++s) {
    result.spines.push_back(topo.add_switch("spine" + std::to_string(s)));
  }
  for (int l = 0; l < options.num_leaves; ++l) {
    for (int h = 0; h < options.hosts_per_leaf; ++h) {
      Host* host = topo.add_host("h" + std::to_string(l * options.hosts_per_leaf + h));
      result.hosts.push_back(host);
      topo.connect(host, result.leaves[static_cast<std::size_t>(l)],
                   options.host_rate_bps, options.link_delay, make_queue);
    }
  }
  for (Switch* leaf : result.leaves) {
    for (Switch* spine : result.spines) {
      auto [up, down] = topo.connect(leaf, spine, options.spine_rate_bps,
                                     core_delay, core_queue);
      result.core_links.push_back(up);
      result.core_links.push_back(down);
    }
  }
  // A cross-leaf data packet crosses 4 links each way: two edge hops at the
  // host rate and two core hops at the spine rate.  Each store-and-forward
  // hop pays its own serialization, so asymmetric tiers (40 G core over a
  // 10 G edge) reproduce the paper's base RTT exactly instead of
  // over-charging the core hops at the slower edge rate.
  const auto hop = [](sim::TimeNs delay, std::uint32_t bytes, double rate_bps) {
    return delay + sim::transmission_time(bytes, rate_bps);
  };
  const sim::TimeNs edge_one_way =
      hop(options.link_delay, kDataPacketBytes, options.host_rate_bps) +
      hop(options.link_delay, kAckPacketBytes, options.host_rate_bps);
  const sim::TimeNs core_one_way =
      hop(core_delay, kDataPacketBytes, options.spine_rate_bps) +
      hop(core_delay, kAckPacketBytes, options.spine_rate_bps);
  result.cross_leaf_rtt = 2 * (edge_one_way + core_one_way);
  return result;
}

Dumbbell build_dumbbell(Topology& topo, int n, double edge_bps,
                        double bottleneck_bps, sim::TimeNs delay,
                        const QueueFactory& make_queue) {
  Dumbbell result;
  result.left = topo.add_switch("left");
  result.right = topo.add_switch("right");
  auto [fwd, back] = topo.connect(result.left, result.right, bottleneck_bps,
                                  delay, make_queue);
  (void)back;
  result.bottleneck = fwd;
  for (int i = 0; i < n; ++i) {
    Host* s = topo.add_host("s" + std::to_string(i));
    Host* r = topo.add_host("r" + std::to_string(i));
    topo.connect(s, result.left, edge_bps, delay, make_queue);
    topo.connect(result.right, r, edge_bps, delay, make_queue);
    result.senders.push_back(s);
    result.receivers.push_back(r);
  }
  return result;
}

ParkingLot build_parking_lot(Topology& topo, int n, double rate_bps,
                             sim::TimeNs delay, const QueueFactory& make_queue) {
  if (n < 1) throw std::invalid_argument("build_parking_lot: n must be >= 1");
  ParkingLot result;
  for (int i = 0; i <= n; ++i) {
    result.switches.push_back(topo.add_switch("sw" + std::to_string(i)));
    Host* h = topo.add_host("h" + std::to_string(i));
    result.hosts.push_back(h);
    // Host links are 10x the backbone so only backbone links bottleneck.
    topo.connect(h, result.switches.back(), rate_bps * 10, delay, make_queue);
  }
  for (int i = 0; i < n; ++i) {
    auto [fwd, back] = topo.connect(result.switches[static_cast<std::size_t>(i)],
                                    result.switches[static_cast<std::size_t>(i + 1)],
                                    rate_bps, delay, make_queue);
    (void)back;
    result.backbone.push_back(fwd);
  }
  return result;
}

Fig10Topology build_fig10(Topology& topo, double middle_rate_bps,
                          sim::TimeNs delay, const QueueFactory& make_queue,
                          double edge_rate_bps) {
  Fig10Topology result;
  result.in = topo.add_switch("in");
  result.out = topo.add_switch("out");
  result.src1 = topo.add_host("src1");
  result.src2 = topo.add_host("src2");
  result.dst1 = topo.add_host("dst1");
  result.dst2 = topo.add_host("dst2");
  topo.connect(result.src1, result.in, edge_rate_bps, delay, make_queue);
  topo.connect(result.src2, result.in, edge_rate_bps, delay, make_queue);
  topo.connect(result.out, result.dst1, edge_rate_bps, delay, make_queue);
  topo.connect(result.out, result.dst2, edge_rate_bps, delay, make_queue);
  result.top = topo.connect(result.in, result.out, 5e9, delay, make_queue).first;
  result.middle =
      topo.connect(result.in, result.out, middle_rate_bps, delay, make_queue).first;
  result.bottom = topo.connect(result.in, result.out, 3e9, delay, make_queue).first;
  return result;
}

}  // namespace numfabric::net
