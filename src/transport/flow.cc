#include "transport/flow.h"

#include <stdexcept>
#include <utility>

#include "transport/receiver.h"
#include "transport/sender_base.h"

namespace numfabric::transport {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNumFabric: return "NUMFabric";
    case Scheme::kDgd: return "DGD";
    case Scheme::kRcpStar: return "RCP*";
    case Scheme::kDctcp: return "DCTCP";
    case Scheme::kPFabric: return "pFabric";
  }
  return "?";
}

Flow::Flow(FlowSpec spec) : spec_(std::move(spec)) {}

Flow::~Flow() = default;

void Flow::attach(std::unique_ptr<SenderBase> sender,
                  std::unique_ptr<Receiver> receiver) {
  if (sender_ || receiver_) throw std::logic_error("Flow::attach: already attached");
  if (!sender || !receiver) throw std::invalid_argument("Flow::attach: null endpoint");
  sender_ = std::move(sender);
  receiver_ = std::move(receiver);
}

}  // namespace numfabric::transport
