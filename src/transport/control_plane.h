// Batched control plane: one synchronized price tick over dense SoA state.
//
// NUMFabric's xWI layer (Fig. 3) — and the DGD / RCP* comparison schemes —
// are defined as *synchronized* per-interval updates of per-link state: the
// paper assumes PTP-grade clock sync and has every switch recompute at the
// same instants (§5, Table 2: every 30 us).  The natural object-per-link
// encoding (one LinkAgent with its own timer each) costs N heap events, N
// closure dispatches and 2 virtual calls per forwarded packet; on a 144-host
// leaf-spine that control churn rivals the allocation-free data path.
//
// ControlPlane is the batched replacement.  It owns ALL per-link agent state
// for the active scheme in structure-of-arrays form — prices, residual
// observations, serviced bytes, RCP* fair shares, the per-packet stamps —
// and drives the fabric from ONE sim::PeriodicTick: every interval a single
// event sweeps links in slot order.  The forwarding hot path reads/writes
// the arrays through an index baked into each Link (net::LinkControlArrays;
// no virtual dispatch), and the per-packet RCP* stamp R^-alpha is computed
// once per tick instead of one std::pow per packet.
//
// Determinism contract: slots are assigned in topology link order (the order
// Fabric::attach_agents used to construct agents), the sweep visits slots
// 0..N-1 in that order, and the tick fires on the same grid timestamps with
// the same same-timestamp FIFO position as the legacy agents' events.  Those
// events always formed a contiguous run in link order (each agent re-armed
// immediately after its update, so their sequence numbers stayed contiguous
// by induction), which is why collapsing them into one event preserves
// packet-level behavior bit-for-bit — the parity test locks this.
//
// Lifetime: the Fabric owns the ControlPlane; the Topology owns the Links.
// Links write into the arrays only while forwarding, so the usual
// declaration order (Simulator, Fabric, Topology) keeps every access valid.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/link.h"
#include "net/topology.h"
#include "sim/periodic_tick.h"
#include "sim/simulator.h"
#include "transport/dgd/dgd_sender.h"
#include "transport/flow.h"
#include "transport/numfabric/config.h"
#include "transport/rcp/rcp_sender.h"
#include "util/worker_pool.h"

namespace numfabric::transport {

class ControlPlane {
 public:
  struct Params {
    Scheme scheme = Scheme::kNumFabric;
    NumFabricConfig numfabric;
    DgdConfig dgd;
    RcpConfig rcp;
    /// >1 splits each sweep into contiguous slot chunks on a worker pool.
    /// Per-link updates touch only their own slot's state, so any thread
    /// count produces the same bits as the serial slot-order sweep.
    int threads = 1;
  };

  /// Builds the control plane for the scheme and takes over every link of
  /// `topo`: assigns slot ids in link order, wires the inline hot-path hooks
  /// into the SoA arrays, and arms the single periodic tick.  Returns
  /// nullptr for schemes with no per-link control state (DCTCP, pFabric).
  /// Call once, after the topology is fully built.
  static std::unique_ptr<ControlPlane> attach(sim::Simulator& sim,
                                              const Params& params,
                                              net::Topology& topo);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  Scheme scheme() const { return params_.scheme; }
  std::size_t link_count() const { return links_.size(); }

  /// Update interval of the active scheme.
  sim::TimeNs interval() const { return tick_.interval(); }

  /// Synchronized sweeps performed so far.
  std::uint64_t ticks() const { return tick_.ticks(); }

  /// Per-link updates performed across all sweeps (== ticks * link_count).
  std::uint64_t links_swept() const { return links_swept_; }

  /// Current per-link prices in slot order — xWI prices (kNumFabric) or DGD
  /// prices (kDgd).  Index with net::Link::control_slot().  The span stays
  /// valid (and its values live) for the ControlPlane's lifetime; reading it
  /// replaces N virtual agent->price() calls with one contiguous scan.
  std::span<const double> snapshot_prices() const { return price_; }

  /// Current RCP* advertised fair shares in slot order, bps (kRcpStar).
  std::span<const double> snapshot_fair_shares_bps() const {
    return fair_share_bps_;
  }

  double price(std::size_t slot) const { return price_[slot]; }
  double fair_share_bps(std::size_t slot) const {
    return fair_share_bps_[slot];
  }

 private:
  ControlPlane(sim::Simulator& sim, const Params& params);

  void attach_links(net::Topology& topo);
  void sweep();
  void sweep_range(std::size_t begin, std::size_t end);
  void sweep_xwi(std::size_t begin, std::size_t end);
  void sweep_dgd(std::size_t begin, std::size_t end);
  void sweep_rcp(std::size_t begin, std::size_t end);

  sim::Simulator& sim_;
  Params params_;
  double interval_seconds_ = 0;

  // Per-link agent state in SoA form, indexed by slot == topology link
  // order.  Sized once at attach; never moves afterwards (links hold raw
  // pointers into the arrays via arrays_).
  std::vector<net::Link*> links_;
  std::vector<double> stamp_;                // what the data path stamps
  std::vector<double> min_residual_;         // xWI: min residual observation
  std::vector<std::uint8_t> saw_residual_;   // xWI: observation present
  std::vector<std::uint64_t> bytes_serviced_;
  std::vector<double> price_;                // xWI / DGD price
  std::vector<double> fair_share_bps_;       // RCP* advertised rate

  net::LinkControlArrays arrays_;
  sim::PeriodicTick tick_;
  std::uint64_t links_swept_ = 0;
  std::unique_ptr<util::WorkerPool> pool_;  // non-null iff params_.threads > 1
};

}  // namespace numfabric::transport
