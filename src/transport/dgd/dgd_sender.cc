#include "transport/dgd/dgd_sender.h"

#include <algorithm>
#include <stdexcept>

#include "num/utility.h"

namespace numfabric::transport {

DgdSender::DgdSender(sim::Simulator& sim, const FlowSpec& spec,
                     SenderCallbacks callbacks, const DgdConfig& config)
    : PacedSender(sim, spec, std::move(callbacks), config.packet_bytes, config.rto,
                  config.initial_rate_bps, config.inflight_cap_bdp,
                  config.base_rtt) {
  if (spec.utility == nullptr) {
    throw std::invalid_argument("DgdSender: flow needs a utility function");
  }
}

double DgdSender::rate_from_ack(const net::Packet& ack) {
  // Eq. 3: marginal utility equals the aggregate path price.
  const double price = std::max(ack.echo_path_feedback, num::kMinPrice);
  return num::to_bps(spec().utility->marginal_inverse(price));
}

}  // namespace numfabric::transport
