// DGD (Dual Gradient Descent) rate control — the paper's §3 baseline,
// implemented as in §6 ("an idealized rate control protocol").
//
// Sources set their rate from the summed path price via Eq. 3:
//   x_i = U_i'^{-1}( sum_l p_l )
// and transmit at exactly that rate, with unacked bytes capped at 2 BDP.
#pragma once

#include "transport/paced_sender.h"

namespace numfabric::transport {

struct DgdConfig {
  /// Synchronized price update period (Table 2: 16 us).
  sim::TimeNs price_update_interval = sim::micros(16);
  /// Utilization gain a (Table 2: 4e-9 per Mbps).
  double a = 4e-9;
  /// Queue gain b (Table 2: 1.2e-10 per byte).
  double b = 1.2e-10;
  /// Starting per-link price.
  double initial_price = 1e-4;
  /// Cap on unacknowledged bytes, in BDPs (§6: 2x).
  double inflight_cap_bdp = 2.0;
  sim::TimeNs base_rtt = sim::micros(16);
  std::uint32_t packet_bytes = 1500;
  /// Rate used before the first feedback arrives.
  double initial_rate_bps = 1e9;
  sim::TimeNs rto = sim::millis(2);
};

class DgdSender : public PacedSender {
 public:
  DgdSender(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
            const DgdConfig& config);

 protected:
  double rate_from_ack(const net::Packet& ack) override;
};

}  // namespace numfabric::transport
