#include "transport/dgd/dgd_link_agent.h"

#include <algorithm>

#include "num/utility.h"

namespace numfabric::transport {

DgdLinkAgent::DgdLinkAgent(sim::Simulator& sim, net::Link& link,
                           const DgdConfig& config)
    : sim_(sim), link_(link), config_(config), price_(config.initial_price) {
  schedule_next_update();
}

void DgdLinkAgent::schedule_next_update() {
  const sim::TimeNs interval = config_.price_update_interval;
  const sim::TimeNs next = (sim_.now() / interval + 1) * interval;
  sim_.schedule_at(next, [this] {
    on_update();
    schedule_next_update();
  });
}

void DgdLinkAgent::on_dequeue(net::Packet& packet) {
  bytes_serviced_ += packet.size;
  if (packet.is_data()) packet.path_feedback += price_;
}

void DgdLinkAgent::on_update() {
  const double interval_seconds = sim::to_seconds(config_.price_update_interval);
  const double y_mbps = num::to_rate_units(
      static_cast<double>(bytes_serviced_) * 8.0 / interval_seconds);
  const double c_mbps = num::to_rate_units(link_.rate_bps());
  const double q_bytes = static_cast<double>(link_.queue().bytes());
  price_ = std::max(
      price_ + config_.a * (y_mbps - c_mbps) + config_.b * q_bytes, 0.0);
  bytes_serviced_ = 0;
}

}  // namespace numfabric::transport
