// DGD per-link price update — Eq. 14 of the paper:
//
//   p <- [ p + a (y - C) + b q ]_+
//
// with y the measured link throughput over the last interval, C the link
// capacity (both in Mbps, matching Table 2's units for a), and q the
// instantaneous queue backlog in bytes.  The price accumulates into data
// packets' path_feedback on dequeue, mirroring how pathPrice works for xWI.
//
// Reference implementation for tests/parity runs only; production fabrics
// run this update batched in transport::ControlPlane.
#pragma once

#include <cstdint>

#include "net/link.h"
#include "sim/simulator.h"
#include "transport/dgd/dgd_sender.h"

namespace numfabric::transport {

class DgdLinkAgent : public net::LinkAgent {
 public:
  DgdLinkAgent(sim::Simulator& sim, net::Link& link, const DgdConfig& config);

  void on_dequeue(net::Packet& packet) override;

  double price() const { return price_; }

 private:
  void on_update();
  void schedule_next_update();

  sim::Simulator& sim_;
  net::Link& link_;
  DgdConfig config_;
  double price_;
  std::uint64_t bytes_serviced_ = 0;
};

}  // namespace numfabric::transport
