#include "transport/rcp/rcp_link_agent.h"

#include <algorithm>
#include <cmath>

#include "num/utility.h"

namespace numfabric::transport {
namespace {
// R is kept within [kMinShareFraction * C, kMaxShareFactor * C].  The upper
// bound intentionally exceeds the capacity by a wide margin: RCP*'s rate
// composition x = (sum_l R_l^-alpha)^(-1/alpha) (Eq. 16) needs links to
// advertise MORE than C at equilibrium — e.g. a lone flow over two equal
// links only reaches C when each advertises ~2C.  Underutilized links keep
// raising R until their own throughput meets capacity.
constexpr double kMinShareFraction = 1e-4;
constexpr double kMaxShareFactor = 1e3;
// Per-update multiplicative change bound.  With Table 2's gains (a = 3.6)
// a large rate-capacity mismatch makes the raw factor (1 + gain) negative,
// which would flip R's sign; real RCP implementations bound the step.  The
// clamp only engages during large transients and does not move equilibria.
constexpr double kMaxGain = 0.3;
}  // namespace

RcpLinkAgent::RcpLinkAgent(sim::Simulator& sim, net::Link& link,
                           const RcpConfig& config)
    : sim_(sim), link_(link), config_(config), fair_share_bps_(link.rate_bps()) {
  schedule_next_update();
}

void RcpLinkAgent::schedule_next_update() {
  const sim::TimeNs interval = config_.rate_update_interval;
  const sim::TimeNs next = (sim_.now() / interval + 1) * interval;
  sim_.schedule_at(next, [this] {
    on_update();
    schedule_next_update();
  });
}

void RcpLinkAgent::on_dequeue(net::Packet& packet) {
  bytes_serviced_ += packet.size;
  if (packet.is_data()) {
    packet.path_feedback +=
        std::pow(num::to_rate_units(fair_share_bps_), -config_.alpha);
  }
}

void RcpLinkAgent::on_update() {
  const double t = sim::to_seconds(config_.rate_update_interval);
  const double capacity = link_.rate_bps();
  const double y = static_cast<double>(bytes_serviced_) * 8.0 / t;
  const double q_bits = static_cast<double>(link_.queue().bytes()) * 8.0;
  // d is "the running average of the RTT of the flows" (Eq. 15).  Flows'
  // RTTs include queueing delay, which is RCP's natural damping: as the
  // backlog grows, T/d shrinks.  Approximate it as base RTT + local
  // queueing delay.
  const double d = sim::to_seconds(config_.avg_rtt) + q_bits / capacity;
  const double gain = std::clamp(
      (t / d) * (config_.a * (capacity - y) - config_.b * q_bits / d) / capacity,
      -kMaxGain, kMaxGain);
  fair_share_bps_ = std::clamp(fair_share_bps_ * (1.0 + gain),
                               kMinShareFraction * capacity,
                               kMaxShareFactor * capacity);
  bytes_serviced_ = 0;
}

}  // namespace numfabric::transport
