// RCP* per-link fair-share update — Eq. 15 of the paper:
//
//   R <- R * ( 1 + (T/d) * ( a (C - y) - b q/d ) / C )
//
// with T the update interval, d the average RTT, y the measured throughput,
// q the queue backlog.  On dequeue, each data packet accumulates R^-alpha
// into path_feedback (the RCP* analogue of the price field).
//
// Reference implementation for tests/parity runs only; production fabrics
// run this update batched in transport::ControlPlane (which also hoists the
// per-packet std::pow to once per tick).
#pragma once

#include <cstdint>

#include "net/link.h"
#include "sim/simulator.h"
#include "transport/rcp/rcp_sender.h"

namespace numfabric::transport {

class RcpLinkAgent : public net::LinkAgent {
 public:
  RcpLinkAgent(sim::Simulator& sim, net::Link& link, const RcpConfig& config);

  void on_dequeue(net::Packet& packet) override;

  /// Advertised fair-share rate, bps.
  double fair_share_bps() const { return fair_share_bps_; }

 private:
  void on_update();
  void schedule_next_update();

  sim::Simulator& sim_;
  net::Link& link_;
  RcpConfig config_;
  double fair_share_bps_;
  std::uint64_t bytes_serviced_ = 0;
};

}  // namespace numfabric::transport
