#include "transport/rcp/rcp_sender.h"

#include <algorithm>
#include <cmath>

#include "num/utility.h"

namespace numfabric::transport {

RcpSender::RcpSender(sim::Simulator& sim, const FlowSpec& spec,
                     SenderCallbacks callbacks, const RcpConfig& config)
    : PacedSender(sim, spec, std::move(callbacks), config.packet_bytes, config.rto,
                  config.initial_rate_bps, config.inflight_cap_bdp,
                  config.base_rtt),
      alpha_(config.alpha) {}

double RcpSender::rate_from_ack(const net::Packet& ack) {
  // Eq. 16.  path_feedback = sum over links of R_l^-alpha (in Mbps units).
  const double feedback = std::max(ack.echo_path_feedback, 1e-300);
  const double rate_units = std::pow(feedback, -1.0 / alpha_);
  return num::to_bps(rate_units);
}

}  // namespace numfabric::transport
