// RCP* — RCP generalized to alpha-fairness (§6, Eq. 15-16).
//
// Each link advertises a fair-share rate R_l; a packet accumulates
// R_l^-alpha at every link it crosses, and the source sends at
//
//   x = ( sum_l R_l^-alpha )^(-1/alpha)
//
// (= min_l R_l as alpha -> inf, standard max-min RCP; harmonic-style
// combination for finite alpha).
#pragma once

#include "transport/paced_sender.h"

namespace numfabric::transport {

struct RcpConfig {
  /// Fair-share update period (Table 2: 16 us).
  sim::TimeNs rate_update_interval = sim::micros(16);
  /// Utilization gain a.  Table 2 quotes 3.6, swept on the authors' ns-3
  /// setup; with our substrate's feedback timing that value limit-cycles
  /// (R overshoots, floods queues, crashes), so we default to the
  /// classically stable RCP gains [Dukkipati et al.] — see EXPERIMENTS.md.
  double a = 0.4;
  /// Queue gain b (Table 2: 1.8; stable classic value used here).
  double b = 0.226;
  /// Fairness parameter alpha of the alpha-fair objective.
  double alpha = 1.0;
  /// Average RTT d used in Eq. 15; the paper's fabric RTT.
  sim::TimeNs avg_rtt = sim::micros(16);
  double inflight_cap_bdp = 2.0;
  sim::TimeNs base_rtt = sim::micros(16);
  std::uint32_t packet_bytes = 1500;
  double initial_rate_bps = 1e9;
  sim::TimeNs rto = sim::millis(2);
};

class RcpSender : public PacedSender {
 public:
  RcpSender(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
            const RcpConfig& config);

 protected:
  double rate_from_ack(const net::Packet& ack) override;

 private:
  double alpha_;
};

}  // namespace numfabric::transport
