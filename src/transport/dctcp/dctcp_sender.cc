#include "transport/dctcp/dctcp_sender.h"

#include <algorithm>

namespace numfabric::transport {

DctcpSender::DctcpSender(sim::Simulator& sim, const FlowSpec& spec,
                         SenderCallbacks callbacks, const DctcpConfig& config)
    : SenderBase(sim, spec, std::move(callbacks), config.packet_bytes, config.rto),
      config_(config),
      cwnd_(static_cast<double>(config.initial_window_packets) *
            config.packet_bytes) {}

void DctcpSender::start() {
  window_end_seq_ = 0;
  try_send();
}

void DctcpSender::decorate_data(net::Packet& packet) {
  packet.ecn_capable = true;
}

void DctcpSender::on_ack(const net::Packet& ack, std::uint64_t newly_acked) {
  total_bytes_ += newly_acked;
  if (ack.echo_ecn) marked_bytes_ += newly_acked;

  // Once per window: refresh alpha and react to marks (DCTCP cuts at most
  // once per RTT).
  if (ack.ack_seq >= window_end_seq_) {
    const double fraction =
        total_bytes_ > 0
            ? static_cast<double>(marked_bytes_) / static_cast<double>(total_bytes_)
            : 0.0;
    alpha_ = (1.0 - config_.g) * alpha_ + config_.g * fraction;
    if (marked_bytes_ > 0) {
      slow_start_ = false;
      cwnd_ *= (1.0 - alpha_ / 2.0);
    }
    marked_bytes_ = 0;
    total_bytes_ = 0;
    window_end_seq_ = next_seq();
  }

  // Growth: slow start doubles per RTT; congestion avoidance adds one
  // packet per RTT (standard byte-counted forms).
  if (slow_start_) {
    cwnd_ += static_cast<double>(newly_acked);
  } else {
    cwnd_ += static_cast<double>(packet_bytes()) *
             static_cast<double>(newly_acked) / std::max(cwnd_, 1.0);
  }
  cwnd_ = std::max(cwnd_, static_cast<double>(packet_bytes()));
  try_send();
}

void DctcpSender::on_timeout() {
  // Timeout: re-enter slow start from one packet (rare with 1 MB buffers).
  slow_start_ = true;
  cwnd_ = packet_bytes();
  try_send();
}

void DctcpSender::try_send() {
  while (data_remaining() &&
         static_cast<double>(inflight() + next_packet_bytes()) <= cwnd_) {
    if (send_data() == 0) break;
  }
}

}  // namespace numfabric::transport
