// DCTCP [1] — the deployed-congestion-control comparison of Fig. 4(b).
//
// Switches mark ECN-capable packets when the instantaneous queue exceeds K;
// the receiver echoes marks; the sender maintains the EWMA marked fraction
// alpha (gain g) and once per window scales cwnd by (1 - alpha/2) if any
// mark was seen, otherwise grows additively (slow start doubles until the
// first mark).  The paper's point with Fig. 4(b) is that DCTCP rates are
// stable only at millisecond scales and never "converge" at the 100 us
// scales the other schemes are judged on.
#pragma once

#include "transport/sender_base.h"

namespace numfabric::transport {

struct DctcpConfig {
  /// ECN marking threshold at the switch (bytes).  65 full packets — the
  /// standard DCTCP guidance for 10 Gbps.
  std::size_t ecn_threshold_bytes = 65 * 1500;
  /// EWMA gain for the marked fraction.
  double g = 1.0 / 16.0;
  std::uint32_t packet_bytes = 1500;
  std::uint32_t initial_window_packets = 10;
  sim::TimeNs rto = sim::millis(2);
};

class DctcpSender : public SenderBase {
 public:
  DctcpSender(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
              const DctcpConfig& config);

  void start() override;

  double cwnd_bytes() const { return cwnd_; }
  double ecn_alpha() const { return alpha_; }

 protected:
  void on_ack(const net::Packet& ack, std::uint64_t newly_acked) override;
  void decorate_data(net::Packet& packet) override;
  void on_timeout() override;

 private:
  void try_send();

  DctcpConfig config_;
  double cwnd_;
  double alpha_ = 0.0;       // EWMA fraction of marked bytes
  bool slow_start_ = true;
  std::uint64_t window_end_seq_ = 0;  // current observation window boundary
  std::uint64_t marked_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace numfabric::transport
