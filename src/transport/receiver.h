// The generic receiver, shared by all schemes (§5, "The NUMFabric Receiver").
//
// On every data packet it (1) measures the inter-packet arrival gap — the
// packet-pair signal Swift's rate estimator feeds on; (2) advances the
// cumulative in-order byte count; and (3) reflects the gap plus whatever
// feedback the network wrote into the packet (pathPrice/pathLen for xWI,
// the price / R^-alpha accumulator for DGD and RCP*, the CE mark for DCTCP)
// back to the sender in an ACK on the reverse path.
//
// It also runs the destination-side EWMA rate meter used by the convergence
// experiments (80 us time constant, §6.1).
#pragma once

#include <cstdint>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "stats/rate_meter.h"
#include "transport/flow.h"

namespace numfabric::transport {

class Receiver {
 public:
  Receiver(sim::Simulator& sim, const FlowSpec& spec, sim::TimeNs rate_meter_tau);

  Receiver(const Receiver&) = delete;
  Receiver& operator=(const Receiver&) = delete;

  /// Host dispatch entry point: processes a data packet and emits an ACK.
  void handle_packet(net::Packet&& packet);

  /// EWMA-filtered delivery rate in bits/second.
  double rate_bps() const { return meter_.rate_bps(); }

  std::uint64_t in_order_bytes() const { return expected_seq_; }
  std::uint64_t total_bytes() const { return meter_.total_bytes(); }

 private:
  void send_ack(const net::Packet& data, sim::TimeNs gap);

  sim::Simulator& sim_;
  const FlowSpec& spec_;
  stats::RateMeter meter_;
  std::uint64_t expected_seq_ = 0;
  sim::TimeNs last_data_arrival_ = -1;
};

}  // namespace numfabric::transport
