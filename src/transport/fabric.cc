#include "transport/fabric.h"

#include <stdexcept>
#include <utility>

#include "net/discrete_wfq_queue.h"
#include "net/drop_tail_queue.h"
#include "net/pfabric_queue.h"
#include "net/routing.h"
#include "net/wfq_queue.h"
#include "transport/dgd/dgd_link_agent.h"
#include "transport/numfabric/swift_sender.h"
#include "transport/numfabric/xwi_link_agent.h"
#include "transport/rcp/rcp_link_agent.h"
#include "transport/receiver.h"
#include "transport/sender_base.h"

namespace numfabric::transport {

Fabric::Fabric(sim::Simulator& sim, FabricOptions options)
    : sim_(sim), options_(std::move(options)) {}

net::QueueFactory Fabric::queue_factory(std::size_t capacity_bytes) const {
  const std::size_t capacity =
      capacity_bytes > 0 ? capacity_bytes : options_.queue_capacity_bytes;
  switch (options_.scheme) {
    case Scheme::kNumFabric: {
      if (options_.discrete_wfq_bands > 0) {
        const int bands = options_.discrete_wfq_bands;
        const double min_weight = options_.numfabric.min_weight;
        const double max_weight = options_.numfabric.max_weight;
        return [capacity, bands, min_weight, max_weight] {
          return std::make_unique<net::DiscreteWfqQueue>(capacity, bands,
                                                         min_weight, max_weight);
        };
      }
      return [capacity] { return std::make_unique<net::WfqQueue>(capacity); };
    }
    case Scheme::kDgd:
    case Scheme::kRcpStar:
      return [capacity] { return std::make_unique<net::DropTailQueue>(capacity); };
    case Scheme::kDctcp: {
      const std::size_t threshold = options_.dctcp.ecn_threshold_bytes;
      return [capacity, threshold] {
        return std::make_unique<net::DropTailQueue>(capacity, threshold);
      };
    }
    case Scheme::kPFabric: {
      const std::size_t pfabric_capacity = options_.pfabric.queue_capacity_bytes;
      return [pfabric_capacity] {
        return std::make_unique<net::PFabricQueue>(pfabric_capacity);
      };
    }
  }
  throw std::logic_error("Fabric::queue_factory: unknown scheme");
}

void Fabric::attach_agents(net::Topology& topo) {
  if (!options_.legacy_link_agents) {
    control_plane_ = ControlPlane::attach(
        sim_,
        ControlPlane::Params{options_.scheme, options_.numfabric, options_.dgd,
                             options_.rcp, options_.control_threads},
        topo);
    return;
  }
  // Legacy object-per-link wiring, kept for the parity tests: each agent is
  // the executable reference spec the batched sweep is compared against.
  for (const auto& link : topo.links()) {
    switch (options_.scheme) {
      case Scheme::kNumFabric: {
        const auto& c = options_.numfabric;
        link->set_agent(std::make_unique<XwiLinkAgent>(
            sim_, *link,
            XwiLinkAgent::Params{c.price_update_interval, c.eta, c.beta,
                                 c.initial_price}));
        break;
      }
      case Scheme::kDgd:
        link->set_agent(std::make_unique<DgdLinkAgent>(sim_, *link, options_.dgd));
        break;
      case Scheme::kRcpStar:
        link->set_agent(std::make_unique<RcpLinkAgent>(sim_, *link, options_.rcp));
        break;
      case Scheme::kDctcp:
      case Scheme::kPFabric:
        break;  // all state lives in the queues / hosts
    }
  }
}

std::unique_ptr<SenderBase> Fabric::make_sender(sim::Simulator& sim,
                                                const FlowSpec& spec,
                                                SenderCallbacks callbacks) {
  switch (options_.scheme) {
    case Scheme::kNumFabric:
      return std::make_unique<SwiftSender>(sim, spec, std::move(callbacks),
                                           options_.numfabric, &groups_);
    case Scheme::kDgd:
      return std::make_unique<DgdSender>(sim, spec, std::move(callbacks),
                                         options_.dgd);
    case Scheme::kRcpStar:
      return std::make_unique<RcpSender>(sim, spec, std::move(callbacks),
                                         options_.rcp);
    case Scheme::kDctcp:
      return std::make_unique<DctcpSender>(sim, spec, std::move(callbacks),
                                           options_.dctcp);
    case Scheme::kPFabric:
      return std::make_unique<PFabricSender>(sim, spec, std::move(callbacks),
                                             options_.pfabric);
  }
  throw std::logic_error("Fabric::make_sender: unknown scheme");
}

void Fabric::set_sharding(const net::ShardPlan* plan,
                          sim::ShardedSimulator* engine) {
  if (options_.legacy_link_agents) {
    throw std::logic_error(
        "Fabric::set_sharding: legacy_link_agents is not shardable");
  }
  shard_plan_ = plan;
  engine_ = engine;
  engine->add_barrier_hook([this] {
    std::lock_guard<std::mutex> lock(pending_unregister_mu_);
    for (const auto& [host, id] : pending_unregister_) {
      host->unregister_flow(id);
    }
    pending_unregister_.clear();
  });
}

sim::Simulator& Fabric::endpoint_sim(const net::Host* host) {
  if (engine_ == nullptr) return sim_;
  return engine_->shard(shard_plan_->shard_of(host));
}

Flow* Fabric::add_flow(FlowSpec spec) {
  if (spec.src == nullptr || spec.dst == nullptr) {
    throw std::invalid_argument("Fabric::add_flow: null endpoint host");
  }
  if (spec.path.links.empty()) {
    throw std::invalid_argument("Fabric::add_flow: flow has no path");
  }
  if (spec.reverse.links.empty()) spec.reverse = net::reverse_path(spec.path);
  if (spec.id == 0) spec.id = next_flow_id_++;
  if (by_id_.contains(spec.id)) {
    throw std::invalid_argument("Fabric::add_flow: duplicate flow id");
  }

  flows_.push_back(std::make_unique<Flow>(std::move(spec)));
  Flow* flow = flows_.back().get();
  by_id_[flow->spec().id] = flow;

  const sim::TimeNs start_at = flow->spec().start_time;
  if (start_at < sim_.now()) {
    throw std::invalid_argument("Fabric::add_flow: start time in the past");
  }
  if (start_at == sim_.now()) {
    start_flow(*flow);
  } else {
    sim_.schedule_at(start_at, [this, flow] { start_flow(*flow); });
  }
  return flow;
}

void Fabric::start_flow(Flow& flow) {
  const FlowSpec& spec = flow.spec();
  const bool cross_shard =
      engine_ != nullptr &&
      shard_plan_->shard_of(spec.src) != shard_plan_->shard_of(spec.dst);
  SenderCallbacks callbacks;
  callbacks.on_complete = [this, &flow, cross_shard](net::FlowId id,
                                                     sim::TimeNs at) {
    flow.mark_completed(at);
    // Late duplicate ACKs become countable strays rather than dangling
    // handler calls.  Completion fires on the source shard; a cross-shard
    // destination is unregistered at the next barrier instead of touching
    // another shard's host table mid-window.
    flow.spec().src->unregister_flow(id);
    if (cross_shard) {
      std::lock_guard<std::mutex> lock(pending_unregister_mu_);
      pending_unregister_.emplace_back(flow.spec().dst, id);
    } else {
      flow.spec().dst->unregister_flow(id);
    }
    if (on_complete_) on_complete_(flow);
  };

  auto receiver = std::make_unique<Receiver>(endpoint_sim(spec.dst), spec,
                                             options_.receiver_rate_tau);
  auto sender = make_sender(endpoint_sim(spec.src), spec, std::move(callbacks));

  spec.dst->register_flow(spec.id, [receiver_ptr = receiver.get()](net::Packet&& p) {
    receiver_ptr->handle_packet(std::move(p));
  });
  spec.src->register_flow(spec.id, [sender_ptr = sender.get()](net::Packet&& p) {
    sender_ptr->handle_packet(std::move(p));
  });

  flow.attach(std::move(sender), std::move(receiver));
  flow.mark_started();
  flow.sender().start();
}

void Fabric::stop_flow(Flow& flow) {
  if (!flow.attached()) return;
  flow.sender().stop();
}

}  // namespace numfabric::transport
