#include "transport/sender_base.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace numfabric::transport {

SenderBase::SenderBase(sim::Simulator& sim, const FlowSpec& spec,
                       SenderCallbacks callbacks, std::uint32_t packet_bytes,
                       sim::TimeNs rto)
    : sim_(sim),
      spec_(spec),
      callbacks_(std::move(callbacks)),
      packet_bytes_(packet_bytes),
      rto_(rto) {
  if (spec_.path.links.empty()) {
    throw std::invalid_argument("SenderBase: flow has no path");
  }
  if (packet_bytes_ == 0) throw std::invalid_argument("SenderBase: packet size 0");
}

SenderBase::~SenderBase() {
  if (rto_event_ != sim::kNoEvent) sim_.cancel(rto_event_);
}

void SenderBase::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (rto_event_ != sim::kNoEvent) {
    sim_.cancel(rto_event_);
    rto_event_ = sim::kNoEvent;
  }
  on_stop();
}

bool SenderBase::data_remaining() const {
  if (stopped_ || complete_) return false;
  return spec_.size_bytes == 0 || next_seq_ < spec_.size_bytes;
}

std::uint32_t SenderBase::next_packet_bytes() const {
  if (spec_.size_bytes == 0) return packet_bytes_;
  const std::uint64_t remaining = spec_.size_bytes - next_seq_;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(packet_bytes_, remaining));
}

std::uint32_t SenderBase::send_data() {
  if (!data_remaining()) return 0;
  const std::uint32_t bytes = next_packet_bytes();
  net::Packet packet;
  packet.flow = spec_.id;
  packet.type = net::PacketType::kData;
  packet.seq = next_seq_;
  packet.size = bytes;
  packet.path = &spec_.path;
  packet.hop = 0;
  packet.sent_time = sim_.now();
  decorate_data(packet);
  next_seq_ += bytes;
  bytes_sent_ += bytes;
  arm_rto();
  spec_.path.links.front()->send(std::move(packet));
  return bytes;
}

void SenderBase::handle_packet(net::Packet&& packet) {
  if (packet.type != net::PacketType::kAck) return;  // senders only eat ACKs
  const std::uint64_t prev = cum_ack_;
  cum_ack_ = std::max(cum_ack_, packet.ack_seq);
  const std::uint64_t newly_acked = cum_ack_ - prev;

  if (newly_acked > 0 && inflight() > 0) {
    arm_rto();  // progress: push the retransmission timer out
  } else if (inflight() == 0 && rto_event_ != sim::kNoEvent) {
    sim_.cancel(rto_event_);
    rto_event_ = sim::kNoEvent;
  }

  if (!complete_ && spec_.size_bytes > 0 && cum_ack_ >= spec_.size_bytes) {
    complete_ = true;
    if (rto_event_ != sim::kNoEvent) {
      sim_.cancel(rto_event_);
      rto_event_ = sim::kNoEvent;
    }
    if (callbacks_.on_complete) callbacks_.on_complete(spec_.id, sim_.now());
    return;
  }
  if (!stopped_ && !complete_) on_ack(packet, newly_acked);
}

void SenderBase::arm_rto() {
  if (rto_ <= 0) return;
  if (rto_event_ != sim::kNoEvent) sim_.cancel(rto_event_);
  rto_event_ = sim_.schedule_in(rto_, [this] { fire_rto(); });
}

void SenderBase::fire_rto() {
  rto_event_ = sim::kNoEvent;
  if (stopped_ || complete_) return;
  // Go-back-N: rewind to the last cumulatively acknowledged byte.
  next_seq_ = cum_ack_;
  arm_rto();
  on_timeout();
}

}  // namespace numfabric::transport
