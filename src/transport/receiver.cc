#include "transport/receiver.h"

#include <stdexcept>
#include <utility>

namespace numfabric::transport {

Receiver::Receiver(sim::Simulator& sim, const FlowSpec& spec,
                   sim::TimeNs rate_meter_tau)
    : sim_(sim), spec_(spec), meter_(rate_meter_tau) {
  if (spec_.reverse.links.empty()) {
    throw std::invalid_argument("Receiver: flow has no reverse path");
  }
}

void Receiver::handle_packet(net::Packet&& packet) {
  if (packet.type != net::PacketType::kData) return;
  const sim::TimeNs now = sim_.now();
  meter_.on_bytes(packet.size, now);

  // Inter-packet gap: 0 on the first packet; the sender ignores 0 gaps
  // (the paper's "ignore the first ACK" rule).
  const sim::TimeNs gap = last_data_arrival_ < 0 ? 0 : now - last_data_arrival_;
  last_data_arrival_ = now;

  // In-order delivery tracking (go-back-N: out-of-order data is dropped and
  // re-sent after the sender's timeout; duplicates are ignored).
  if (packet.seq == expected_seq_) {
    expected_seq_ += packet.size;
  }
  send_ack(packet, gap);
}

void Receiver::send_ack(const net::Packet& data, sim::TimeNs gap) {
  net::Packet ack;
  ack.flow = spec_.id;
  ack.type = net::PacketType::kAck;
  ack.size = net::kAckPacketBytes;
  ack.path = &spec_.reverse;
  ack.hop = 0;
  // Control packets carry no virtual length (WFQ serves them for free) and
  // top priority (pFabric never evicts them).
  ack.virtual_packet_len = 0.0;
  ack.priority = 0.0;
  ack.ack_seq = expected_seq_;
  ack.acked_bytes = data.size;
  ack.echo_inter_packet_time = gap;
  ack.echo_path_price = data.path_price;
  ack.echo_path_len = data.path_len;
  ack.echo_path_feedback = data.path_feedback;
  ack.echo_ecn = data.ecn_marked;
  ack.sent_time = data.sent_time;  // lets the sender estimate the RTT
  spec_.reverse.links.front()->send(std::move(ack));
}

}  // namespace numfabric::transport
