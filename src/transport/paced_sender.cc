#include "transport/paced_sender.h"

#include <algorithm>
#include <stdexcept>

namespace numfabric::transport {
namespace {
// Pacing floor: even with absurd feedback the sender trickles (and thus
// keeps receiving feedback to recover from), rather than stalling.
constexpr double kMinRateBps = 1e6;
}  // namespace

PacedSender::PacedSender(sim::Simulator& sim, const FlowSpec& spec,
                         SenderCallbacks callbacks, std::uint32_t packet_bytes,
                         sim::TimeNs rto, double initial_rate_bps,
                         double inflight_cap_bdp, sim::TimeNs base_rtt)
    : SenderBase(sim, spec, std::move(callbacks), packet_bytes, rto),
      rate_bps_(std::max(initial_rate_bps, kMinRateBps)) {
  const double nic_rate = spec.path.links.front()->rate_bps();
  inflight_cap_bytes_ =
      inflight_cap_bdp * nic_rate * sim::to_seconds(base_rtt) / 8.0;
  inflight_cap_bytes_ = std::max(inflight_cap_bytes_, 2.0 * packet_bytes);
}

PacedSender::~PacedSender() {
  if (pacing_event_ != sim::kNoEvent) sim().cancel(pacing_event_);
}

void PacedSender::start() { pace(); }

void PacedSender::pace() {
  pacing_ = false;
  pacing_event_ = sim::kNoEvent;
  if (stopped() || complete() || !data_remaining()) return;
  if (static_cast<double>(inflight() + next_packet_bytes()) > inflight_cap_bytes_) {
    return;  // cap reached; an ACK will restart pacing
  }
  const std::uint32_t sent = send_data();
  if (sent == 0) return;
  schedule_next_packet();
}

void PacedSender::schedule_next_packet() {
  if (pacing_) return;
  pacing_ = true;
  const sim::TimeNs gap =
      sim::transmission_time(packet_bytes(), std::max(rate_bps_, kMinRateBps));
  pacing_event_ = sim().schedule_in(gap, [this] { pace(); });
}

void PacedSender::on_ack(const net::Packet& ack, std::uint64_t newly_acked) {
  (void)newly_acked;
  rate_bps_ = std::max(rate_from_ack(ack), kMinRateBps);
  if (!pacing_) pace();  // resume if the inflight cap had paused us
}

void PacedSender::on_timeout() {
  if (!pacing_) pace();
}

void PacedSender::on_stop() {
  if (pacing_event_ != sim::kNoEvent) {
    sim().cancel(pacing_event_);
    pacing_event_ = sim::kNoEvent;
    pacing_ = false;
  }
}

}  // namespace numfabric::transport
