// Shared machinery for the explicit-rate baselines (DGD, RCP*).
//
// Both schemes compute a sending rate from feedback summed along the path
// and "transmit at exactly this rate on a packet-by-packet basis" (§6).
// Following the paper's enhanced implementation, unacknowledged bytes are
// capped at 2x the bandwidth-delay product so unconverged rates cannot build
// deep queues (which would slow convergence further).
#pragma once

#include "transport/sender_base.h"

namespace numfabric::transport {

class PacedSender : public SenderBase {
 public:
  PacedSender(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
              std::uint32_t packet_bytes, sim::TimeNs rto, double initial_rate_bps,
              double inflight_cap_bdp, sim::TimeNs base_rtt);
  ~PacedSender() override;

  void start() override;

  double rate_bps() const { return rate_bps_; }

 protected:
  /// Scheme control law: new rate (bps) from the feedback echoed in an ACK.
  virtual double rate_from_ack(const net::Packet& ack) = 0;

  void on_ack(const net::Packet& ack, std::uint64_t newly_acked) override;
  void on_timeout() override;
  void on_stop() override;

 private:
  void pace();
  void schedule_next_packet();

  double rate_bps_;
  double inflight_cap_bytes_;
  sim::EventId pacing_event_ = sim::kNoEvent;
  bool pacing_ = false;  // a pacing event is pending
};

}  // namespace numfabric::transport
