// Registry of multipath aggregates (resource pooling, §6.3).
//
// Sub-flows of one logical flow share a group id.  Each Swift sub-flow
// computes the aggregate's total weight from its own path price (Eq. 7
// applied to the aggregate utility) and then takes the fraction of that
// weight proportional to its share of the aggregate throughput — the
// paper's heuristic for splitting the flow-level weight across sub-flows.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace numfabric::transport {

class SwiftSender;

class GroupRegistry {
 public:
  void add(std::uint64_t group, SwiftSender* member);
  void remove(std::uint64_t group, SwiftSender* member);

  /// Sum of the members' estimated rates (bps); 0 if none initialized yet.
  double total_rate_bps(std::uint64_t group) const;

  std::size_t member_count(std::uint64_t group) const;

 private:
  std::unordered_map<std::uint64_t, std::vector<SwiftSender*>> groups_;
};

}  // namespace numfabric::transport
