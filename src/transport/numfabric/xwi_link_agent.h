// Per-link xWI price computation — a faithful implementation of Fig. 3.
//
//   enqueue(DATA p):  minRes = min(p.normalizedResidual, minRes)
//   dequeue(p):       bytesServiced += p.length
//                     DATA p: p.pathPrice += price; p.pathLen += 1
//   every T:          u = bytesServiced / (T * C)
//                     newPrice = max(price + minRes - eta*(1-u)*price, 0)
//                     price = beta*price + (1-beta)*newPrice
//
// Updates are synchronized across all links (the paper assumes PTP-grade
// clock sync, §5): every agent fires at integer multiples of the interval.
// When an interval saw no data packet, minRes has no observation and only
// the under-utilization term acts — driving idle links' prices to zero, as
// Eq. 10 requires.
//
// This object-per-link encoding (own timer event, virtual hooks) is the
// executable reference spec: production fabrics run the same update batched
// over all links by transport::ControlPlane, and the parity tests assert
// the two produce bit-identical prices.  Only tests (and the legacy
// FabricOptions::legacy_link_agents mode) construct it.
#pragma once

#include <cstdint>

#include "net/link.h"
#include "sim/simulator.h"

namespace numfabric::transport {

class XwiLinkAgent : public net::LinkAgent {
 public:
  struct Params {
    sim::TimeNs update_interval;
    double eta;
    double beta;
    double initial_price;
  };

  XwiLinkAgent(sim::Simulator& sim, net::Link& link, const Params& params);

  void on_enqueue(const net::Packet& packet) override;
  void on_dequeue(net::Packet& packet) override;

  double price() const { return price_; }
  std::uint64_t updates() const { return updates_; }

 private:
  void on_update();
  void schedule_next_update();

  sim::Simulator& sim_;
  net::Link& link_;
  Params params_;
  double price_;
  double min_residual_;           // min over DATA packets since last update
  bool saw_residual_ = false;
  std::uint64_t bytes_serviced_ = 0;
  std::uint64_t updates_ = 0;
};

}  // namespace numfabric::transport
