#include "transport/numfabric/swift_sender.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace numfabric::transport {

SwiftSender::SwiftSender(sim::Simulator& sim, const FlowSpec& spec,
                         SenderCallbacks callbacks, const NumFabricConfig& config,
                         GroupRegistry* groups)
    : SenderBase(sim, spec, std::move(callbacks), config.packet_bytes, config.rto),
      config_(config),
      groups_(groups),
      window_bytes_(static_cast<double>(config.initial_window_bytes)),
      weight_(config.initial_weight) {
  if (spec.utility == nullptr) {
    throw std::invalid_argument("SwiftSender: flow needs a utility function");
  }
  if (config_.resource_pooling && spec.group != 0) {
    if (groups_ == nullptr) {
      throw std::invalid_argument("SwiftSender: pooling enabled but no registry");
    }
    groups_->add(spec.group, this);
  }
  if (config_.initial_window_bytes > 0) {
    // Fig. 7 mode (footnote 7): an initial window of one BDP means the flow
    // assumes line rate until told otherwise — start the estimator there
    // rather than waiting ~ewma_time to ramp, which would penalize every
    // short flow by a constant factor.
    rate_bps_ = static_cast<double>(config_.initial_window_bytes) * 8.0 /
                sim::to_seconds(config_.base_rtt);
    rate_initialized_ = true;
  }
}

SwiftSender::~SwiftSender() {
  if (config_.resource_pooling && spec().group != 0 && groups_ != nullptr) {
    groups_->remove(spec().group, this);
  }
}

void SwiftSender::start() {
  if (config_.initial_window_bytes > 0) {
    // Fig. 7 mode: window-limited from the first RTT (IW = BDP).
    try_send();
    return;
  }
  // The §4.1 start-up: a small burst so the bottleneck queues it and the
  // receiver's inter-packet gaps reflect the true available bandwidth.
  for (int i = 0; i < config_.initial_burst_packets && data_remaining(); ++i) {
    send_data();
  }
}

double SwiftSender::aggregate_rate_units() const {
  double rate_bps = estimated_rate_bps();
  if (config_.resource_pooling && spec().group != 0) {
    rate_bps = groups_->total_rate_bps(spec().group);
  }
  return num::to_rate_units(rate_bps);
}

void SwiftSender::update_weight() {
  // Eq. 7: the weight is U'^{-1} of the path price.  For a multipath
  // aggregate this yields the *total* weight of the logical flow as seen
  // from this sub-flow's path; the sub-flow takes its throughput share of it
  // (§6.3's heuristic).
  const double price = std::max(path_price_, num::kMinPrice);
  double w = spec().utility->marginal_inverse(price);
  if (config_.resource_pooling && spec().group != 0) {
    const double total_bps = groups_->total_rate_bps(spec().group);
    const std::size_t members = groups_->member_count(spec().group);
    double share = members > 0 ? 1.0 / static_cast<double>(members) : 1.0;
    if (total_bps > 0 && estimated_rate_bps() > 0) {
      share = estimated_rate_bps() / total_bps;
    }
    w *= share;
  }
  weight_ = std::clamp(w, config_.min_weight, config_.max_weight);
}

void SwiftSender::on_ack(const net::Packet& ack, std::uint64_t newly_acked) {
  (void)newly_acked;
  // Packet-pair sample; gap == 0 marks the first ACK, which carries no
  // inter-arrival information yet.
  if (ack.echo_inter_packet_time > 0) {
    const double sample_bps = static_cast<double>(ack.acked_bytes) * 8.0 /
                              sim::to_seconds(ack.echo_inter_packet_time);
    if (on_rate_sample) on_rate_sample(sample_bps, ack.echo_inter_packet_time);
    if (!rate_initialized_) {
      rate_bps_ = sample_bps;
      rate_initialized_ = true;
    } else {
      // Gap-weighted blending (a time-constant EWMA): each sample counts in
      // proportion to the interval it spans, so the filter output is the
      // unbiased delivered rate.  Unbiasedness matters: a count-weighted
      // mean of bytes/gap systematically overestimates under WFQ's bursty
      // interleaving, which shifts the xWI fixed point for steep utilities.
      // The window policy below guarantees the flow stays backlogged at its
      // bottleneck, so the delivered rate *is* the WFQ entitlement.
      const double alpha =
          1.0 - std::exp(-static_cast<double>(ack.echo_inter_packet_time) /
                         static_cast<double>(config_.ewma_time));
      rate_bps_ += alpha * (sample_bps - rate_bps_);
    }
  }
  if (rate_initialized_) {
    // W = R_hat * (d0 + dt), with the dt-slack floored at two packets.  The
    // slack is what keeps a small standing backlog at the bottleneck; if it
    // falls below a packet (R_hat * dt < MTU at low rates), packet pairs
    // never queue together, the receiver only observes the flow's own
    // window-limited spacing, and R_hat pins itself at a self-fulfilling
    // low estimate — the granular version of the paper's "dt too small"
    // failure mode (Fig. 6a).
    const double bdp = rate_bps_ * sim::to_seconds(config_.base_rtt) / 8.0;
    const double slack =
        std::max(rate_bps_ * sim::to_seconds(config_.dt_slack) / 8.0,
                 2.0 * packet_bytes());
    window_bytes_ = bdp + slack;
  }
  path_price_ = ack.echo_path_price;
  path_len_ = ack.echo_path_len;
  update_weight();
  try_send();
}

void SwiftSender::decorate_data(net::Packet& packet) {
  packet.virtual_packet_len = static_cast<double>(packet.size) / weight_;
  if (rate_initialized_) {
    const double x = std::max(aggregate_rate_units(), num::kMinRate);
    const double marginal = spec().utility->marginal(x);
    const std::uint32_t hops =
        path_len_ > 0 ? path_len_
                      : static_cast<std::uint32_t>(spec().path.links.size());
    double residual = (marginal - path_price_) / hops;
    // Stability guard: bound the per-update residual so the path price can
    // at most ~double per price interval.  Steep utilities (bandwidth
    // functions with alpha ~ 5) make U'(R_hat) explode when the measured
    // rate transiently dips; an unbounded residual then drives a flow's
    // *private* links into a price spiral that starves the flow for good
    // (weight -> 0 -> rate -> 0 -> marginal -> inf).  The clamp leaves
    // equilibria untouched: at the fixed point residuals are ~0.
    const double bound =
        config_.max_residual_step * std::max(path_price_, 0.1) / hops;
    packet.normalized_residual = std::clamp(residual, -bound, bound);
  } else {
    // No rate estimate yet: contribute no residual observation (switches
    // skip non-finite values, Fig. 3's min is untouched).
    packet.normalized_residual = std::numeric_limits<double>::infinity();
  }
}

void SwiftSender::try_send() {
  if (!rate_initialized_ && config_.initial_window_bytes == 0) {
    // Burst phase: stay silent until the first packet-pair sample ("the
    // sender ignores the first ACK and sends nothing", §4.1).
    return;
  }
  // Send while *current* inflight is below the window: the last packet may
  // overshoot W by a fraction of a packet.  Rounding the window up (instead
  // of down) keeps the intended standing backlog at the bottleneck even
  // when W is only a couple of packets; rounding down would leave the flow
  // ACK-clocked with no backlog, and its rate estimate would pin below its
  // WFQ entitlement.
  const double window = std::max(window_bytes_, 2.0 * packet_bytes());
  while (data_remaining() && static_cast<double>(inflight()) < window) {
    if (send_data() == 0) break;
  }
}

}  // namespace numfabric::transport
