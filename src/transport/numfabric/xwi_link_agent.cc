#include "transport/numfabric/xwi_link_agent.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace numfabric::transport {

XwiLinkAgent::XwiLinkAgent(sim::Simulator& sim, net::Link& link,
                           const Params& params)
    : sim_(sim),
      link_(link),
      params_(params),
      price_(params.initial_price),
      min_residual_(std::numeric_limits<double>::infinity()) {
  if (params_.update_interval <= 0) {
    throw std::invalid_argument("XwiLinkAgent: update interval must be > 0");
  }
  schedule_next_update();
}

void XwiLinkAgent::schedule_next_update() {
  // Synchronized updates: fire on the global grid of interval multiples.
  const sim::TimeNs now = sim_.now();
  const sim::TimeNs next = (now / params_.update_interval + 1) * params_.update_interval;
  sim_.schedule_at(next, [this] {
    on_update();
    schedule_next_update();
  });
}

void XwiLinkAgent::on_enqueue(const net::Packet& packet) {
  if (!packet.is_data()) return;
  if (!std::isfinite(packet.normalized_residual)) return;  // no estimate yet
  min_residual_ = std::min(min_residual_, packet.normalized_residual);
  saw_residual_ = true;
}

void XwiLinkAgent::on_dequeue(net::Packet& packet) {
  bytes_serviced_ += packet.size;
  if (!packet.is_data()) return;
  packet.path_price += price_;
  packet.path_len += 1;
}

void XwiLinkAgent::on_update() {
  ++updates_;
  const double interval_seconds = sim::to_seconds(params_.update_interval);
  // A link with a standing backlog is fully utilized by definition; byte
  // counting alone undercounts by up to a packet per interval (boundary
  // slicing), and that fractional shortfall would let the eta term cancel
  // legitimately positive residuals and park the price below the optimum.
  const double utilization =
      link_.queue().empty()
          ? std::min(static_cast<double>(bytes_serviced_) * 8.0 /
                         (interval_seconds * link_.rate_bps()),
                     1.0)
          : 1.0;
  const double min_res = saw_residual_ ? min_residual_ : 0.0;
  const double new_price = std::max(
      price_ + min_res - params_.eta * (1.0 - utilization) * price_, 0.0);
  price_ = params_.beta * price_ + (1.0 - params_.beta) * new_price;
  bytes_serviced_ = 0;
  min_residual_ = std::numeric_limits<double>::infinity();
  saw_residual_ = false;
}

}  // namespace numfabric::transport
