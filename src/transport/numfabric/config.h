// NUMFabric parameters.  Defaults are Table 2 of the paper.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace numfabric::transport {

struct NumFabricConfig {
  // --- Swift (rate control / weighted max-min layer, §4.1) ---------------
  /// EWMA time constant for the packet-pair rate estimate (Table 2: 20 us).
  sim::TimeNs ewma_time = sim::micros(20);
  /// Delay slack d_t in W = R_hat * (d0 + dt) (Table 2: 6 us == ~5 packets
  /// of queueing at 10 Gbps).
  sim::TimeNs dt_slack = sim::micros(6);
  /// Baseline fabric RTT d0 (the paper's network: 16 us).
  sim::TimeNs base_rtt = sim::micros(16);
  /// Initial burst establishing packet-pair samples (§4.1: 3 packets).
  int initial_burst_packets = 3;
  /// If > 0, start with this window instead of the 3-packet burst (Fig. 7
  /// sets it to one BDP, mimicking pFabric's initial window).
  std::uint64_t initial_window_bytes = 0;

  // --- xWI (price computation layer, §4.2) --------------------------------
  /// Synchronized price update period (Table 2: 30 us ~ 2 RTTs).
  sim::TimeNs price_update_interval = sim::micros(30);
  /// Under-utilization gain eta in Eq. 10 (Table 2: 5).
  double eta = 5.0;
  /// Price averaging beta in Eq. 11 (Table 2: 0.5).
  double beta = 0.5;
  /// Starting price per link (the paper leaves this free; any positive value
  /// converges, this one is within an order of magnitude of typical optima
  /// for Mbps-denominated utilities).
  double initial_price = 0.01;
  /// Weight used before the first price echo arrives.  Weights live in rate
  /// units (Mbps), so this must be commensurate with real allocations: a
  /// too-small initial weight gives the flow's first packets enormous
  /// virtual lengths and WFQ parks them for milliseconds — the flow then
  /// never collects the packet-pair sample it needs to bootstrap.  1 Gbps
  /// is within ~10x of any plausible fair share in a 10-40G fabric.
  double initial_weight = 1000.0;

  // --- numeric guards ------------------------------------------------------
  /// Weight clamp (weights are in Mbps rate units; see num/utility.h).  The
  /// paper notes extreme alphas make Eq. 7 noise-sensitive (§6.2); clamping
  /// keeps transients finite without affecting equilibria.
  double min_weight = 1e-3;
  double max_weight = 1e7;
  /// Bound on the per-update residual, as a multiple of the current path
  /// price (the path price can grow by at most this factor per price
  /// interval).  Prevents price spirals under steep utilities; see
  /// SwiftSender::decorate_data.
  double max_residual_step = 1.0;

  std::uint32_t packet_bytes = 1500;
  /// Safety retransmission timeout; with 1 MB buffers drops are rare, so
  /// this is a last-resort recovery, not part of the control law.
  sim::TimeNs rto = sim::millis(2);

  /// Treat flows with the same FlowSpec::group as one multipath aggregate:
  /// weights derive from the aggregate utility at the aggregate rate
  /// (§6.3, resource pooling).
  bool resource_pooling = false;

  /// Returns a copy slowed down by `factor` (price interval and ewma time
  /// scaled), the paper's recipe for small/large alpha (§6.2, Fig. 6c).
  NumFabricConfig slowed_down(double factor) const {
    NumFabricConfig copy = *this;
    copy.price_update_interval =
        static_cast<sim::TimeNs>(static_cast<double>(price_update_interval) * factor);
    copy.ewma_time = static_cast<sim::TimeNs>(static_cast<double>(ewma_time) * factor);
    return copy;
  }
};

}  // namespace numfabric::transport
