#include "transport/numfabric/group_registry.h"

#include <algorithm>

#include "transport/numfabric/swift_sender.h"

namespace numfabric::transport {

void GroupRegistry::add(std::uint64_t group, SwiftSender* member) {
  groups_[group].push_back(member);
}

void GroupRegistry::remove(std::uint64_t group, SwiftSender* member) {
  auto it = groups_.find(group);
  if (it == groups_.end()) return;
  auto& members = it->second;
  members.erase(std::remove(members.begin(), members.end(), member), members.end());
  if (members.empty()) groups_.erase(it);
}

double GroupRegistry::total_rate_bps(std::uint64_t group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) return 0.0;
  double total = 0.0;
  for (const SwiftSender* member : it->second) {
    total += member->estimated_rate_bps();
  }
  return total;
}

std::size_t GroupRegistry::member_count(std::uint64_t group) const {
  auto it = groups_.find(group);
  return it == groups_.end() ? 0 : it->second.size();
}

}  // namespace numfabric::transport
