// The Swift sender (§4.1) extended with xWI's weight computation (§4.2, §5).
//
// Rate estimation: the receiver echoes per-packet inter-arrival gaps; each
// ACK yields a packet-pair rate sample bytesAcked/interPacketTime, smoothed
// by an EWMA (time constant `ewma_time`) into R_hat.  The window is then
// W = R_hat * (d0 + dt): just above the bandwidth-delay product, keeping a
// handful of packets queued at the bottleneck (WFQ needs >= 1 to enforce the
// weight) while bounding the backlog for fast convergence.
//
// Weight computation: w = U'^{-1}(pathPrice) (Eq. 7); outgoing packets carry
// virtualPacketLen = L / w for the WFQ switches, and normalizedResidual =
// (U'(R_hat) - pathPrice) / pathLen for the xWI price update (Fig. 3).
// Until R_hat initializes, the residual is +inf, which switches ignore.
//
// Start-up follows the paper: a small burst (3 packets) queues at the
// bottleneck so the receiver observes true-service gaps; the first ACK has
// no gap and is ignored for estimation.
#pragma once

#include <functional>

#include "transport/numfabric/config.h"
#include "transport/numfabric/group_registry.h"
#include "transport/sender_base.h"

namespace numfabric::transport {

class SwiftSender : public SenderBase {
 public:
  /// `groups` may be null when resource pooling is off.
  SwiftSender(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
              const NumFabricConfig& config, GroupRegistry* groups);
  ~SwiftSender() override;

  void start() override;

  /// Swift's available-bandwidth estimate R_hat (bps); 0 until initialized.
  double estimated_rate_bps() const { return rate_initialized_ ? rate_bps_ : 0.0; }

  double weight() const { return weight_; }
  double window_bytes() const { return window_bytes_; }
  double path_price() const { return path_price_; }

  /// Observability hook: invoked with every raw packet-pair sample before it
  /// enters the EWMA (sample in bps, the receiver-measured gap).
  std::function<void(double, sim::TimeNs)> on_rate_sample;

 protected:
  void on_ack(const net::Packet& ack, std::uint64_t newly_acked) override;
  void decorate_data(net::Packet& packet) override;
  void on_timeout() override { try_send(); }

 private:
  void try_send();
  void update_weight();
  double aggregate_rate_units() const;  // own (or group) rate, in Mbps

  NumFabricConfig config_;
  GroupRegistry* groups_;
  // R_hat: EWMA over packet-pair samples with a *per-sample* blending factor
  // alpha = 1 - exp(-nominal_sample_gap / ewma_time), where the nominal gap
  // is one packet time at the current estimate.  Weighting samples (rather
  // than time) is essential: a time-weighted filter of bytes/gap reduces to
  // the flow's own throughput, so a window-limited flow would never observe
  // the WFQ service rate it is entitled to.  Per-sample weighting lets the
  // back-to-back "pair" samples (which reflect the bottleneck's service
  // spacing for this flow, §4.1) dominate the estimate.
  double rate_bps_ = 0.0;
  bool rate_initialized_ = false;
  double window_bytes_;
  double weight_;  // initialized from config.initial_weight
  double path_price_ = 0.0;
  std::uint32_t path_len_ = 0;  // learned from ACK echoes
};

}  // namespace numfabric::transport
