#include "transport/control_plane.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "num/utility.h"

namespace numfabric::transport {
namespace {

// RCP* clamps, identical to the legacy RcpLinkAgent (see rcp_link_agent.cc
// for the rationale: R must be able to exceed C for Eq. 16's composition,
// and the per-update gain is bounded to keep large transients stable).
constexpr double kRcpMinShareFraction = 1e-4;
constexpr double kRcpMaxShareFactor = 1e3;
constexpr double kRcpMaxGain = 0.3;

sim::TimeNs interval_for(const ControlPlane::Params& params) {
  switch (params.scheme) {
    case Scheme::kNumFabric:
      return params.numfabric.price_update_interval;
    case Scheme::kDgd:
      return params.dgd.price_update_interval;
    case Scheme::kRcpStar:
      return params.rcp.rate_update_interval;
    case Scheme::kDctcp:
    case Scheme::kPFabric:
      return 0;
  }
  throw std::logic_error("ControlPlane: unknown scheme");
}

}  // namespace

std::unique_ptr<ControlPlane> ControlPlane::attach(sim::Simulator& sim,
                                                   const Params& params,
                                                   net::Topology& topo) {
  if (params.scheme == Scheme::kDctcp || params.scheme == Scheme::kPFabric) {
    return nullptr;  // all state lives in the queues / hosts
  }
  // Not make_unique: the constructor is private.
  std::unique_ptr<ControlPlane> plane(new ControlPlane(sim, params));
  plane->attach_links(topo);
  return plane;
}

ControlPlane::ControlPlane(sim::Simulator& sim, const Params& params)
    : sim_(sim), params_(params) {
  const sim::TimeNs interval = interval_for(params_);
  if (interval <= 0) {
    throw std::invalid_argument("ControlPlane: update interval must be > 0");
  }
  interval_seconds_ = sim::to_seconds(interval);
}

void ControlPlane::attach_links(net::Topology& topo) {
  const std::size_t n = topo.links().size();
  links_.reserve(n);
  for (const auto& link : topo.links()) links_.push_back(link.get());

  stamp_.assign(n, 0.0);
  min_residual_.assign(n, std::numeric_limits<double>::infinity());
  saw_residual_.assign(n, 0);
  bytes_serviced_.assign(n, 0);

  net::ControlStamp mode = net::ControlStamp::kNone;
  switch (params_.scheme) {
    case Scheme::kNumFabric:
      mode = net::ControlStamp::kXwiPrice;
      price_.assign(n, params_.numfabric.initial_price);
      stamp_ = price_;
      break;
    case Scheme::kDgd:
      mode = net::ControlStamp::kFeedback;
      price_.assign(n, params_.dgd.initial_price);
      stamp_ = price_;
      break;
    case Scheme::kRcpStar: {
      mode = net::ControlStamp::kFeedback;
      fair_share_bps_.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        // Same start as the legacy agent: advertise the link's own capacity.
        fair_share_bps_[i] = links_[i]->rate_bps();
        stamp_[i] = std::pow(num::to_rate_units(fair_share_bps_[i]),
                             -params_.rcp.alpha);
      }
      break;
    }
    case Scheme::kDctcp:
    case Scheme::kPFabric:
      throw std::logic_error("ControlPlane: scheme has no link state");
  }

  // The arrays are at their final addresses now; hand them to the links.
  arrays_.stamp = stamp_.data();
  arrays_.min_residual = min_residual_.data();
  arrays_.saw_residual = saw_residual_.data();
  arrays_.bytes_serviced = bytes_serviced_.data();
  for (std::size_t i = 0; i < n; ++i) {
    links_[i]->attach_control(mode, &arrays_, static_cast<std::uint32_t>(i));
  }

  if (params_.threads > 1 && n > 1) {
    pool_ = std::make_unique<util::WorkerPool>(params_.threads);
  }

  tick_.arm(sim_, interval_for(params_), [this] { sweep(); });
}

void ControlPlane::sweep() {
  const std::size_t n = links_.size();
  if (pool_ == nullptr) {
    sweep_range(0, n);
  } else {
    // Each slot's update reads and writes only that slot's state, so a
    // chunked parallel sweep is bit-identical to the serial slot-order one.
    const auto chunks =
        std::min(static_cast<std::size_t>(pool_->jobs()), n);
    pool_->parallel_for(static_cast<int>(chunks), [&](int chunk) {
      const auto c = static_cast<std::size_t>(chunk);
      sweep_range(n * c / chunks, n * (c + 1) / chunks);
    });
  }
  links_swept_ += n;
  auto& stats = sim::substrate_stats();
  ++stats.control_ticks;
  stats.links_swept += n;
}

void ControlPlane::sweep_range(std::size_t begin, std::size_t end) {
  switch (params_.scheme) {
    case Scheme::kNumFabric:
      sweep_xwi(begin, end);
      break;
    case Scheme::kDgd:
      sweep_dgd(begin, end);
      break;
    case Scheme::kRcpStar:
      sweep_rcp(begin, end);
      break;
    case Scheme::kDctcp:
    case Scheme::kPFabric:
      break;
  }
}

// Fig. 3's per-interval price update, link-for-link identical to
// XwiLinkAgent::on_update: a backlogged link counts as fully utilized (byte
// counting alone undercounts by up to a packet per interval), a quiet
// interval contributes min_res = 0 so only the under-utilization term acts,
// and the new price is beta-averaged with the old.
void ControlPlane::sweep_xwi(std::size_t begin, std::size_t end) {
  const double eta = params_.numfabric.eta;
  const double beta = params_.numfabric.beta;
  for (std::size_t i = begin; i < end; ++i) {
    const net::Link* link = links_[i];
    const double utilization =
        link->queue().empty()
            ? std::min(static_cast<double>(bytes_serviced_[i]) * 8.0 /
                           (interval_seconds_ * link->rate_bps()),
                       1.0)
            : 1.0;
    const double min_res = saw_residual_[i] ? min_residual_[i] : 0.0;
    const double price = price_[i];
    const double new_price = std::max(
        price + min_res - eta * (1.0 - utilization) * price, 0.0);
    price_[i] = beta * price + (1.0 - beta) * new_price;
    stamp_[i] = price_[i];
    bytes_serviced_[i] = 0;
    min_residual_[i] = std::numeric_limits<double>::infinity();
    saw_residual_[i] = 0;
  }
}

// Eq. 14, identical to DgdLinkAgent::on_update.
void ControlPlane::sweep_dgd(std::size_t begin, std::size_t end) {
  const double a = params_.dgd.a;
  const double b = params_.dgd.b;
  for (std::size_t i = begin; i < end; ++i) {
    const net::Link* link = links_[i];
    const double y_mbps = num::to_rate_units(
        static_cast<double>(bytes_serviced_[i]) * 8.0 / interval_seconds_);
    const double c_mbps = num::to_rate_units(link->rate_bps());
    const double q_bytes = static_cast<double>(link->queue().bytes());
    price_[i] =
        std::max(price_[i] + a * (y_mbps - c_mbps) + b * q_bytes, 0.0);
    stamp_[i] = price_[i];
    bytes_serviced_[i] = 0;
  }
}

// Eq. 15, identical to RcpLinkAgent::on_update — plus the batching dividend:
// the per-packet stamp R^-alpha is one std::pow per link per tick here,
// where the legacy agent paid it on every data dequeue.
void ControlPlane::sweep_rcp(std::size_t begin, std::size_t end) {
  const double t = interval_seconds_;
  const double alpha = params_.rcp.alpha;
  for (std::size_t i = begin; i < end; ++i) {
    const net::Link* link = links_[i];
    const double capacity = link->rate_bps();
    const double y = static_cast<double>(bytes_serviced_[i]) * 8.0 / t;
    const double q_bits = static_cast<double>(link->queue().bytes()) * 8.0;
    const double d = sim::to_seconds(params_.rcp.avg_rtt) + q_bits / capacity;
    const double gain = std::clamp(
        (t / d) * (params_.rcp.a * (capacity - y) -
                   params_.rcp.b * q_bits / d) / capacity,
        -kRcpMaxGain, kRcpMaxGain);
    fair_share_bps_[i] = std::clamp(fair_share_bps_[i] * (1.0 + gain),
                                    kRcpMinShareFraction * capacity,
                                    kRcpMaxShareFactor * capacity);
    stamp_[i] = std::pow(num::to_rate_units(fair_share_bps_[i]), -alpha);
    bytes_serviced_[i] = 0;
  }
}

}  // namespace numfabric::transport
