// Common sender machinery: sequencing, cumulative ACK processing, completion
// detection, and go-back-N retransmission on timeout.
//
// Scheme-specific senders override on_ack (their control law) and
// decorate_data (their header fields).  Loss is rare for the window/price
// based schemes (the paper sizes buffers at 1 MB precisely to avoid drops)
// but pFabric drops by design, so the base keeps a simple GBN recovery that
// every scheme inherits.
#pragma once

#include <cstdint>
#include <functional>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/flow.h"

namespace numfabric::transport {

struct SenderCallbacks {
  /// Invoked once when the last byte is cumulatively acknowledged.
  std::function<void(net::FlowId, sim::TimeNs)> on_complete;
};

class SenderBase {
 public:
  SenderBase(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
             std::uint32_t packet_bytes, sim::TimeNs rto);
  virtual ~SenderBase();

  SenderBase(const SenderBase&) = delete;
  SenderBase& operator=(const SenderBase&) = delete;

  /// Begins transmission (called by the Fabric at the flow's start time).
  virtual void start() = 0;

  /// Permanently ceases sending new data (used by the semi-dynamic scenario
  /// to stop long-running flows).  In-flight packets still drain.
  void stop();

  /// Host dispatch entry point: processes an ACK.
  void handle_packet(net::Packet&& packet);

  bool complete() const { return complete_; }
  bool stopped() const { return stopped_; }
  std::uint64_t cum_ack() const { return cum_ack_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const FlowSpec& spec() const { return spec_; }

 protected:
  /// Scheme control law; `newly_acked` is the cumulative-ACK advance.
  virtual void on_ack(const net::Packet& ack, std::uint64_t newly_acked) = 0;

  /// Fills scheme-specific header fields of an outgoing data packet.
  virtual void decorate_data(net::Packet& packet) { (void)packet; }

  /// Called after a timeout rewound next_seq to cum_ack (go-back-N); the
  /// scheme should resume transmission.
  virtual void on_timeout() {}

  /// Called when stop() is invoked, so schemes can cancel pacing timers.
  virtual void on_stop() {}

  /// Sends one data packet at next_seq (size = min(packet size, remaining)).
  /// Returns bytes sent; 0 when no data remains or the sender is stopped.
  std::uint32_t send_data();

  bool data_remaining() const;
  std::uint32_t next_packet_bytes() const;
  std::uint64_t inflight() const { return next_seq_ - cum_ack_; }
  std::uint64_t next_seq() const { return next_seq_; }
  std::uint32_t packet_bytes() const { return packet_bytes_; }
  sim::Simulator& sim() { return sim_; }

 private:
  void arm_rto();
  void fire_rto();

  sim::Simulator& sim_;
  const FlowSpec& spec_;
  SenderCallbacks callbacks_;
  std::uint32_t packet_bytes_;
  sim::TimeNs rto_;

  std::uint64_t next_seq_ = 0;
  std::uint64_t cum_ack_ = 0;
  std::uint64_t bytes_sent_ = 0;
  bool stopped_ = false;
  bool complete_ = false;
  sim::EventId rto_event_ = sim::kNoEvent;
};

}  // namespace numfabric::transport
