#include "transport/pfabric/pfabric_sender.h"

#include <algorithm>

namespace numfabric::transport {

PFabricSender::PFabricSender(sim::Simulator& sim, const FlowSpec& spec,
                             SenderCallbacks callbacks, const PFabricConfig& config)
    : SenderBase(sim, spec, std::move(callbacks), config.packet_bytes, config.rto) {
  const double nic_rate = spec.path.links.front()->rate_bps();
  window_bytes_ = std::max(
      config.window_bdp * nic_rate * sim::to_seconds(config.base_rtt) / 8.0,
      static_cast<double>(config.packet_bytes));
}

void PFabricSender::start() { try_send(); }

void PFabricSender::decorate_data(net::Packet& packet) {
  // Priority = remaining flow size (SRPT); long-running flows get the
  // lowest urgency.  Smaller value = served earlier, dropped last.
  packet.priority = spec().size_bytes > 0
                        ? static_cast<double>(spec().size_bytes - cum_ack())
                        : 1e18;
}

void PFabricSender::on_ack(const net::Packet& ack, std::uint64_t newly_acked) {
  (void)ack;
  (void)newly_acked;
  try_send();
}

void PFabricSender::try_send() {
  while (data_remaining() &&
         static_cast<double>(inflight() + next_packet_bytes()) <= window_bytes_) {
    if (send_data() == 0) break;
  }
}

}  // namespace numfabric::transport
