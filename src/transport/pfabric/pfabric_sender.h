// pFabric [3] host behavior — the FCT-minimization comparison of Fig. 7.
//
// pFabric moves all scheduling into the switches (priority = remaining flow
// size, served smallest-first, dropped largest-first) and keeps host rate
// control minimal: flows start at line rate with a window of one BDP and
// recover losses with a small timeout.  Our reproduction keeps exactly that
// mechanism set; see DESIGN.md §1 for the fidelity notes.
#pragma once

#include "transport/sender_base.h"

namespace numfabric::transport {

struct PFabricConfig {
  /// Fixed congestion window in BDPs of the first-hop link.
  double window_bdp = 1.0;
  sim::TimeNs base_rtt = sim::micros(16);
  /// Small timeout (~3 RTTs in the pFabric paper) for loss recovery.
  sim::TimeNs rto = sim::micros(48);
  std::uint32_t packet_bytes = 1500;
  /// Per-port buffering; pFabric uses shallow buffers (~2 BDP).
  std::size_t queue_capacity_bytes = 40'000;
};

class PFabricSender : public SenderBase {
 public:
  PFabricSender(sim::Simulator& sim, const FlowSpec& spec, SenderCallbacks callbacks,
                const PFabricConfig& config);

  void start() override;

 protected:
  void on_ack(const net::Packet& ack, std::uint64_t newly_acked) override;
  void decorate_data(net::Packet& packet) override;
  void on_timeout() override { try_send(); }

 private:
  void try_send();

  double window_bytes_;
};

}  // namespace numfabric::transport
