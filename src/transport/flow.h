// Flow abstractions shared by every transport scheme.
//
// A Flow is one unidirectional byte stream between two hosts over a fixed
// source route (for multipath objectives, each sub-flow is its own Flow tied
// to the others by a group id).  The Fabric (fabric.h) instantiates the
// scheme-specific sender and the generic receiver for each flow.
#pragma once

#include <cstdint>
#include <memory>

#include "net/node.h"
#include "net/packet.h"
#include "num/utility.h"
#include "sim/time.h"

namespace numfabric::transport {

/// The bandwidth-allocation schemes evaluated in the paper (§6).
enum class Scheme {
  kNumFabric,  // Swift (WFQ + window control) + xWI
  kDgd,        // Dual Gradient Descent rate control [40] (Eq. 3, 14)
  kRcpStar,    // RCP* alpha-fair explicit rate control [30] (Eq. 15, 16)
  kDctcp,      // DCTCP (Fig. 4b comparison)
  kPFabric,    // pFabric priority scheduling/dropping (Fig. 7 comparison)
};

const char* scheme_name(Scheme scheme);

struct FlowSpec {
  net::FlowId id = 0;  // 0 = let the Fabric assign one
  net::Host* src = nullptr;
  net::Host* dst = nullptr;
  /// Bytes to transfer; 0 means long-running (lives until stopped).
  std::uint64_t size_bytes = 0;
  sim::TimeNs start_time = 0;
  /// Utility function (required for NUMFabric and DGD; unused by others).
  /// Non-owning: the experiment owns utility objects.
  const num::UtilityFunction* utility = nullptr;
  net::Path path;     // forward route (data direction)
  net::Path reverse;  // ACK route; normally net::reverse_path(path)
  /// >0 groups sub-flows into one multipath aggregate (resource pooling).
  std::uint64_t group = 0;
};

class SenderBase;
class Receiver;

/// Runtime state of one flow: spec + endpoints + lifecycle timestamps.
class Flow {
 public:
  explicit Flow(FlowSpec spec);
  ~Flow();

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  const FlowSpec& spec() const { return spec_; }

  SenderBase& sender() { return *sender_; }
  const SenderBase& sender() const { return *sender_; }
  Receiver& receiver() { return *receiver_; }
  const Receiver& receiver() const { return *receiver_; }
  bool attached() const { return sender_ != nullptr; }

  bool started() const { return started_; }
  bool completed() const { return finish_time_ >= 0; }
  sim::TimeNs finish_time() const { return finish_time_; }
  sim::TimeNs fct() const { return finish_time_ - spec_.start_time; }

  // --- wiring used by Fabric ---------------------------------------------
  void attach(std::unique_ptr<SenderBase> sender, std::unique_ptr<Receiver> receiver);
  void mark_started() { started_ = true; }
  void mark_completed(sim::TimeNs at) { finish_time_ = at; }

 private:
  FlowSpec spec_;
  std::unique_ptr<SenderBase> sender_;
  std::unique_ptr<Receiver> receiver_;
  bool started_ = false;
  sim::TimeNs finish_time_ = -1;
};

}  // namespace numfabric::transport
