// Fabric: per-scheme wiring of queues, link agents and flow endpoints.
//
// Usage:
//   sim::Simulator sim;
//   transport::Fabric fabric(sim, {.scheme = Scheme::kNumFabric});
//   net::Topology topo(sim);
//   auto ls = net::build_leaf_spine(topo, {}, fabric.queue_factory());
//   fabric.attach_agents(topo);            // per-link xWI/DGD/RCP state
//   fabric.add_flow(spec);                 // schedules start_time
//   sim.run_until(sim::millis(50));
//
// The Fabric owns every Flow (and through it the scheme-specific sender and
// the generic receiver) and handles host handler registration, flow ids,
// completion bookkeeping and multipath group membership.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/shard_plan.h"
#include "net/topology.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "transport/control_plane.h"
#include "transport/dctcp/dctcp_sender.h"
#include "transport/dgd/dgd_sender.h"
#include "transport/flow.h"
#include "transport/numfabric/config.h"
#include "transport/numfabric/group_registry.h"
#include "transport/pfabric/pfabric_sender.h"
#include "transport/rcp/rcp_sender.h"

namespace numfabric::transport {

struct FabricOptions {
  Scheme scheme = Scheme::kNumFabric;
  NumFabricConfig numfabric;
  DgdConfig dgd;
  RcpConfig rcp;
  DctcpConfig dctcp;
  PFabricConfig pfabric;
  /// Per-port buffering (§6: 1 MB to keep drops out of the comparison).
  /// pFabric ignores this and uses its own shallow queues.
  std::size_t queue_capacity_bytes = 1'000'000;
  /// Destination-side rate filter time constant (§6.1: 80 us).
  sim::TimeNs receiver_rate_tau = sim::micros(80);
  /// NUMFabric only: > 0 replaces exact STFQ with the §8 multi-queue
  /// approximation using this many weight bands (ablation).
  int discrete_wfq_bands = 0;
  /// >1 runs the batched control plane's per-link sweep on this many worker
  /// threads (chunked by slot; bit-identical for any value).
  int control_threads = 1;
  /// Test-only escape hatch: attach the legacy per-link agent objects (one
  /// timer event per link per interval, virtual hooks) instead of the
  /// batched ControlPlane.  The parity test runs both wirings over the same
  /// workload and asserts identical packet-level behavior.
  bool legacy_link_agents = false;
};

class Fabric {
 public:
  Fabric(sim::Simulator& sim, FabricOptions options);

  /// Queue factory matching the scheme (WFQ for NUMFabric, FIFO+ECN for
  /// DCTCP, priority for pFabric, plain FIFO otherwise).  Pass to the
  /// topology builders.
  net::QueueFactory queue_factory() const { return queue_factory(0); }

  /// Same, with an explicit per-port buffer override in bytes (0 = the
  /// configured queue_capacity_bytes) — lets topologies size edge and core
  /// tiers differently.  pFabric keeps its own shallow queues regardless.
  net::QueueFactory queue_factory(std::size_t capacity_bytes) const;

  /// Attaches the scheme's per-link control state: builds the batched
  /// ControlPlane over every link (or, with legacy_link_agents, the old
  /// object-per-link agents).  Call once, after the topology is fully built
  /// and before flows start.
  void attach_agents(net::Topology& topo);

  /// The batched control plane, once attach_agents has run.  nullptr for
  /// schemes without per-link control state (DCTCP, pFabric) and in
  /// legacy_link_agents mode.
  const ControlPlane* control_plane() const { return control_plane_.get(); }

  /// Capability query: does this fabric publish per-link xWI prices through
  /// the batched ControlPlane's snapshot span?  True only for the NUMFabric
  /// scheme with the batched wiring (not legacy_link_agents).  Price
  /// instrumentation must key off this instead of probing link agents —
  /// a NUMFabric run whose prices are unreachable should fail loudly, not
  /// silently skip samples.
  bool exposes_price_snapshot() const {
    return control_plane_ != nullptr &&
           control_plane_->scheme() == Scheme::kNumFabric;
  }

  /// Registers a flow; endpoints are created and started at spec.start_time.
  /// If spec.id is 0 an id is assigned.  Returns a stable pointer.
  Flow* add_flow(FlowSpec spec);

  /// Stops a long-running flow (it stops sending; in-flight traffic drains).
  void stop_flow(Flow& flow);

  const std::vector<std::unique_ptr<Flow>>& flows() const { return flows_; }

  /// Invoked when any flow completes (after the Flow is marked completed).
  void set_on_complete(std::function<void(Flow&)> callback) {
    on_complete_ = std::move(callback);
  }

  GroupRegistry& groups() { return groups_; }
  const FabricOptions& options() const { return options_; }
  sim::Simulator& sim() { return sim_; }

  /// Sharded mode: flow endpoints are constructed on their host's shard
  /// simulator (per `plan`) instead of the global one, and the cross-shard
  /// half of completion bookkeeping is deferred to `engine`'s next barrier.
  /// Call once, after attach_agents and before any flow starts.  `plan` and
  /// `engine` must outlive the fabric.  Throws std::logic_error in
  /// legacy_link_agents mode (per-link timer agents are not shardable).
  void set_sharding(const net::ShardPlan* plan, sim::ShardedSimulator* engine);

 private:
  void start_flow(Flow& flow);
  sim::Simulator& endpoint_sim(const net::Host* host);
  std::unique_ptr<SenderBase> make_sender(sim::Simulator& sim,
                                          const FlowSpec& spec,
                                          SenderCallbacks callbacks);

  sim::Simulator& sim_;
  FabricOptions options_;
  std::unique_ptr<ControlPlane> control_plane_;
  std::vector<std::unique_ptr<Flow>> flows_;
  std::unordered_map<net::FlowId, Flow*> by_id_;
  GroupRegistry groups_;
  std::function<void(Flow&)> on_complete_;
  net::FlowId next_flow_id_ = 1;
  // Sharded-mode wiring (null in serial runs).
  const net::ShardPlan* shard_plan_ = nullptr;
  sim::ShardedSimulator* engine_ = nullptr;
  // Completion runs on the source host's shard; unregistering the flow on
  // the destination host would mutate another shard's state, so it is
  // queued here and drained by a barrier hook on the coordinator.
  std::mutex pending_unregister_mu_;
  std::vector<std::pair<net::Host*, net::FlowId>> pending_unregister_;
};

}  // namespace numfabric::transport
