#include "stats/rate_meter.h"

namespace numfabric::stats {

void RateMeter::on_bytes(std::uint64_t bytes, sim::TimeNs now) {
  total_bytes_ += bytes;
  if (last_arrival_ < 0) {
    last_arrival_ = now;  // first packet: no gap yet
    return;
  }
  const sim::TimeNs gap = now - last_arrival_;
  last_arrival_ = now;
  if (gap <= 0) return;  // same-instant arrival (burst); fold into next gap
  const double sample_bps = static_cast<double>(bytes) * 8.0 / sim::to_seconds(gap);
  filter_.update(sample_bps, now);
}

}  // namespace numfabric::stats
