// Destination-side rate measurement (§6.1).
//
// On each packet arrival the instantaneous rate sample bytes*8/gap is folded
// into an EWMA.  The paper measures flow rates at the destination with an
// 80 us time constant to filter the noise of bursty packet scheduling.
#pragma once

#include <cstdint>

#include "sim/time.h"
#include "stats/ewma.h"

namespace numfabric::stats {

class RateMeter {
 public:
  explicit RateMeter(sim::TimeNs time_constant) : filter_(time_constant) {}

  /// Records `bytes` arriving at `now`.
  void on_bytes(std::uint64_t bytes, sim::TimeNs now);

  /// Filtered rate in bits/second (0 until two packets have arrived).
  double rate_bps() const { return filter_.initialized() ? filter_.value() : 0.0; }

  std::uint64_t total_bytes() const { return total_bytes_; }

 private:
  Ewma filter_;
  sim::TimeNs last_arrival_ = -1;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace numfabric::stats
