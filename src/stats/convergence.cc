#include "stats/convergence.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace numfabric::stats {

ConvergenceDetector::ConvergenceDetector(
    std::vector<double> targets_bps,
    std::function<std::vector<double>()> rates_bps, ConvergenceOptions options)
    : targets_(std::move(targets_bps)),
      rates_(std::move(rates_bps)),
      options_(options) {
  if (targets_.empty()) {
    throw std::invalid_argument("ConvergenceDetector: no flows to track");
  }
  if (!rates_) throw std::invalid_argument("ConvergenceDetector: null rate source");
}

bool ConvergenceDetector::close_enough() const {
  const std::vector<double> rates = rates_();
  if (rates.size() != targets_.size()) {
    throw std::logic_error("ConvergenceDetector: rate vector size changed");
  }
  std::size_t close = 0;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double target = targets_[i];
    if (target <= 0) {
      ++close;  // a flow entitled to ~nothing is vacuously converged
      continue;
    }
    if (std::abs(rates[i] - target) <= options_.margin * target) ++close;
  }
  return static_cast<double>(close) >=
         options_.fraction * static_cast<double>(targets_.size());
}

bool ConvergenceDetector::sample(sim::TimeNs now) {
  if (finished_) return true;
  if (first_sample_ < 0) first_sample_ = now;

  if (close_enough()) {
    if (!in_band_since_) in_band_since_ = now;
    if (now - *in_band_since_ >= options_.hold) {
      finished_ = true;
      converged_ = true;
      converged_at_ = *in_band_since_;
      return true;
    }
  } else {
    in_band_since_.reset();
  }
  if (now - first_sample_ >= options_.timeout) {
    finished_ = true;
    converged_ = false;
    return true;
  }
  return false;
}

sim::TimeNs ConvergenceDetector::convergence_time(sim::TimeNs event_time) const {
  if (!converged_) throw std::logic_error("ConvergenceDetector: not converged");
  const sim::TimeNs raw = converged_at_ - event_time;
  return std::max<sim::TimeNs>(raw - options_.filter_rise_time, 0);
}

}  // namespace numfabric::stats
