#include "stats/ewma.h"

#include <cmath>
#include <stdexcept>

namespace numfabric::stats {

Ewma::Ewma(sim::TimeNs time_constant) : tau_(time_constant) {
  if (time_constant <= 0) throw std::invalid_argument("Ewma: tau must be > 0");
}

void Ewma::update(double sample, sim::TimeNs now) {
  if (!initialized_) {
    value_ = sample;
    initialized_ = true;
    last_update_ = now;
    return;
  }
  const double dt = static_cast<double>(now - last_update_);
  const double alpha = 1.0 - std::exp(-dt / static_cast<double>(tau_));
  value_ += alpha * (sample - value_);
  last_update_ = now;
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
  last_update_ = 0;
}

sim::TimeNs Ewma::rise_time(sim::TimeNs time_constant, double fraction) {
  if (!(0.0 < fraction && fraction < 1.0)) {
    throw std::invalid_argument("Ewma::rise_time: fraction must be in (0,1)");
  }
  return static_cast<sim::TimeNs>(
      static_cast<double>(time_constant) * std::log(1.0 / (1.0 - fraction)));
}

}  // namespace numfabric::stats
