#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace numfabric::stats {
namespace {

double percentile_sorted(const std::vector<double>& sorted, double p) {
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double t = rank - static_cast<double>(lo);
  return sorted[lo] + t * (sorted[hi] - sorted[lo]);
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty input");
  if (!(0.0 <= p && p <= 100.0)) throw std::invalid_argument("percentile: bad p");
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, p);
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("mean: empty input");
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

BoxPlot box_plot(const std::vector<double>& samples) {
  if (samples.empty()) throw std::invalid_argument("box_plot: empty input");
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  BoxPlot box;
  box.p25 = percentile_sorted(sorted, 25);
  box.p50 = percentile_sorted(sorted, 50);
  box.p75 = percentile_sorted(sorted, 75);
  const double iqr = box.p75 - box.p25;
  // Whiskers: furthest data points within 1.5 IQR of the box.
  box.whisker_low = box.p25;
  box.whisker_high = box.p75;
  for (double s : sorted) {
    if (s >= box.p25 - 1.5 * iqr) {
      box.whisker_low = s;
      break;
    }
  }
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if (*it <= box.p75 + 1.5 * iqr) {
      box.whisker_high = *it;
      break;
    }
  }
  return box;
}

std::vector<std::pair<double, double>> cdf(std::vector<double> samples, int points) {
  if (samples.empty()) throw std::invalid_argument("cdf: empty input");
  if (points < 2) throw std::invalid_argument("cdf: need at least 2 points");
  std::sort(samples.begin(), samples.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int k = 0; k < points; ++k) {
    const double frac = static_cast<double>(k) / (points - 1);
    out.emplace_back(percentile_sorted(samples, frac * 100.0), frac);
  }
  return out;
}

}  // namespace numfabric::stats
