// Flow completion time bookkeeping for the dynamic workloads (Fig. 5, 7).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace numfabric::stats {

struct FctRecord {
  std::uint64_t flow_id = 0;
  std::uint64_t size_bytes = 0;
  sim::TimeNs start = 0;
  sim::TimeNs finish = -1;  // -1 until completed

  bool completed() const { return finish >= 0; }
  sim::TimeNs fct() const { return finish - start; }
  /// Average achieved rate: size / completion time, in bits/second.
  double rate_bps() const {
    return static_cast<double>(size_bytes) * 8.0 / sim::to_seconds(fct());
  }
};

class FctTracker {
 public:
  /// Returns the index of the new record.
  std::size_t on_start(std::uint64_t flow_id, std::uint64_t size_bytes,
                       sim::TimeNs now);
  void on_finish(std::size_t index, sim::TimeNs now);

  const std::vector<FctRecord>& records() const { return records_; }
  std::size_t completed_count() const { return completed_; }

 private:
  std::vector<FctRecord> records_;
  std::size_t completed_ = 0;
};

}  // namespace numfabric::stats
