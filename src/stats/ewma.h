// Time-constant EWMA filter.
//
// Samples arrive at irregular times, so the blending factor is derived from
// the inter-sample gap: alpha = 1 - exp(-dt / tau).  After `tau` of samples
// the filter has absorbed ~63% of a step; the paper leans on this in two
// places: Swift's rate estimator (ewmaTime = 20 us, §6.2) and the
// convergence-measurement filter (80 us, whose ~185 us rise to 90% is
// subtracted from measured convergence times, §6.1).
#pragma once

#include "sim/time.h"

namespace numfabric::stats {

class Ewma {
 public:
  explicit Ewma(sim::TimeNs time_constant);

  /// Folds in a sample observed at `now`.  The first sample initializes the
  /// filter directly.
  void update(double sample, sim::TimeNs now);

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  sim::TimeNs last_update() const { return last_update_; }

  void reset();

  /// Time for the filter's step response to reach `fraction` (e.g. 0.9):
  /// tau * ln(1 / (1 - fraction)).  The paper subtracts rise_time(0.9) from
  /// measured convergence times.
  static sim::TimeNs rise_time(sim::TimeNs time_constant, double fraction);

 private:
  sim::TimeNs tau_;
  double value_ = 0.0;
  bool initialized_ = false;
  sim::TimeNs last_update_ = 0;
};

}  // namespace numfabric::stats
