#include "stats/fct_tracker.h"

#include <stdexcept>

namespace numfabric::stats {

std::size_t FctTracker::on_start(std::uint64_t flow_id, std::uint64_t size_bytes,
                                 sim::TimeNs now) {
  records_.push_back(FctRecord{flow_id, size_bytes, now, -1});
  return records_.size() - 1;
}

void FctTracker::on_finish(std::size_t index, sim::TimeNs now) {
  if (index >= records_.size()) throw std::out_of_range("FctTracker: bad index");
  FctRecord& record = records_[index];
  if (record.completed()) throw std::logic_error("FctTracker: double finish");
  record.finish = now;
  ++completed_;
}

}  // namespace numfabric::stats
