// Convergence-time measurement (§6.1, semi-dynamic scenario).
//
// After a network event, an event "converges" at the first time T such that
// at least `fraction` (95%) of the tracked flows have measured rates within
// `margin` (10%) of their target (oracle) rates continuously for `hold`
// (5 ms).  The reported convergence time additionally subtracts the rate
// filter's rise time (~185 us for the 80 us EWMA), exactly as the paper
// does.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "sim/time.h"

namespace numfabric::stats {

struct ConvergenceOptions {
  double fraction = 0.95;         // share of flows that must be close
  double margin = 0.10;           // relative rate error tolerance
  sim::TimeNs hold = sim::millis(5);
  sim::TimeNs sample_interval = sim::micros(5);
  sim::TimeNs filter_rise_time = 0;  // subtracted from the result
  sim::TimeNs timeout = sim::millis(50);
};

class ConvergenceDetector {
 public:
  /// `rates_bps()` returns the current measured rate of every tracked flow;
  /// `targets_bps` are the oracle rates (same order, same length).
  ConvergenceDetector(std::vector<double> targets_bps,
                      std::function<std::vector<double>()> rates_bps,
                      ConvergenceOptions options = {});

  /// Feeds one sample round at time `now`.  Returns true once the verdict is
  /// final (converged or timed out).
  bool sample(sim::TimeNs now);

  bool finished() const { return finished_; }
  bool converged() const { return converged_; }

  /// Convergence time relative to `event_time`, filter rise time already
  /// subtracted (clamped at 0).  Only valid when converged().
  sim::TimeNs convergence_time(sim::TimeNs event_time) const;

 private:
  bool close_enough() const;

  std::vector<double> targets_;
  std::function<std::vector<double>()> rates_;
  ConvergenceOptions options_;
  std::optional<sim::TimeNs> in_band_since_;
  sim::TimeNs first_sample_ = -1;
  sim::TimeNs converged_at_ = 0;
  bool finished_ = false;
  bool converged_ = false;
};

}  // namespace numfabric::stats
