// Percentiles, box-plot summaries (Fig. 5's boxes/whiskers) and CDF export.
#pragma once

#include <vector>

namespace numfabric::stats {

/// Linear-interpolated percentile, p in [0, 100].  Throws on empty input.
double percentile(std::vector<double> samples, double p);

double mean(const std::vector<double>& samples);

/// Tukey box-plot summary: quartiles plus whiskers at 1.5 IQR clamped to the
/// data range — matching Fig. 5's caption ("whiskers extend to show 1.5
/// times the box length").
struct BoxPlot {
  double p25 = 0, p50 = 0, p75 = 0;
  double whisker_low = 0, whisker_high = 0;
};

BoxPlot box_plot(const std::vector<double>& samples);

/// (value, cumulative fraction) pairs at `points` evenly spaced quantiles,
/// ready for plotting a CDF like Fig. 4(a).
std::vector<std::pair<double, double>> cdf(std::vector<double> samples,
                                           int points = 100);

}  // namespace numfabric::stats
