// Table 2 ("Default parameter settings in simulations") as data, printable
// by bench/table2_parameters and reusable by tests that pin the defaults.
#pragma once

#include <string>
#include <vector>

#include "transport/fabric.h"

namespace numfabric::exp {

struct ParameterRow {
  std::string scheme;
  std::string name;
  std::string value;
};

/// The reproduction's default parameters, rendered from the live config
/// structs (so the table can never drift from the code).
std::vector<ParameterRow> table2_rows();

/// Formats the rows as an aligned text table.
std::string table2_text();

}  // namespace numfabric::exp
