// Contended-fabric experiments: the oversubscribed-core scenario family.
//
// Two experiments share the oversubscription machinery:
//  * oversub-fabric: long-running permutation background traffic plus an
//    all-to-all shuffle wave launched once the background has settled.  With
//    oversubscription > 1 the core is the bottleneck by construction, so the
//    interesting outputs are core-link utilization over the measurement
//    window, the time xWI prices take to re-stabilize after the wave hits,
//    and the wave's completion times.
//  * background-burst: long-running background flows on a fraction of the
//    hosts plus periodic synchronized incast bursts.  The interesting output
//    is interference: burst FCTs against the background throughput
//    sacrificed while each burst drains.
//
// Both run any transport scheme; price convergence is only defined for
// NUMFabric (xWI link agents) and reports NaN elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/sharded_simulator.h"
#include "transport/fabric.h"

namespace numfabric::exp {

/// xWI price-stability detection on the core tier: converged at the start of
/// the first window of `hold` during which every core link's price moves
/// less than `margin` (relative) between consecutive samples.
struct PriceConvergenceOptions {
  sim::TimeNs sample_interval = sim::micros(20);
  double margin = 0.05;
  sim::TimeNs hold = sim::micros(200);
};

struct OversubFabricOptions {
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  net::LeafSpineOptions topology;
  transport::FabricOptions fabric;
  /// Core (leaf-spine) per-port buffer in bytes; 0 = same as the edge tier.
  std::size_t core_buffer_bytes = 0;
  /// Utility: alpha-fair (NUMFabric / DGD only; others ignore it).
  double alpha = 1.0;
  /// Bytes every host pair transfers in the shuffle wave.
  std::uint64_t shuffle_flow_bytes = 50'000;
  /// Background settles during [0, warmup); the wave starts at warmup.
  sim::TimeNs warmup = sim::millis(2);
  /// Core utilization / background goodput window: [warmup, warmup+measure].
  sim::TimeNs measure = sim::millis(4);
  /// Hard stop for wave stragglers.  Must be >= warmup + measure.
  sim::TimeNs horizon = sim::millis(200);
  PriceConvergenceOptions price;
  std::uint64_t seed = 1;
  /// Parallel engine shards (1 = serial; 0 = one per leaf, capped at
  /// cores).  Output is bit-identical for every value.
  int shards = 1;
};

struct CoreLinkStats {
  std::string name;
  /// Bytes serialized in the measurement window over rate * window.
  double utilization = 0;
  /// xWI price at window end (0 for non-NUMFabric schemes).
  double price = 0;
};

struct OversubFabricResult {
  double oversubscription = 0;

  int background_flows = 0;
  double background_goodput_bps = 0;  // over the measurement window
  double background_jain = 0;

  int shuffle_flows = 0;
  int shuffle_completed = 0;
  int shuffle_incomplete = 0;
  std::vector<double> shuffle_fct_us;  // completed wave flows

  std::vector<CoreLinkStats> core_links;  // creation order
  double core_util_mean = 0;
  double core_util_min = 0;
  double core_util_max = 0;

  /// Microseconds from the wave's launch until every core link's xWI price
  /// re-stabilized.  Sampling runs until the experiment ends (wave drained
  /// and measurement window closed, or the horizon); NaN when the scheme has
  /// no xWI agents or prices never held still by then.
  double price_convergence_us = 0;

  std::uint64_t sim_events = 0;
  std::uint64_t queue_drops = 0;
  /// Per-shard engine counters; empty when the run was serial.
  std::vector<sim::ShardPerf> shard_perf;
};

OversubFabricResult run_oversub_fabric(const OversubFabricOptions& options);

struct BackgroundBurstOptions {
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  net::LeafSpineOptions topology;
  transport::FabricOptions fabric;
  std::size_t core_buffer_bytes = 0;
  double alpha = 1.0;
  /// Fraction of the random permutation kept as long-running background
  /// flows (0 = idle fabric, 1 = every host loaded).
  double background_load = 0.5;
  /// Concurrent senders per synchronized burst.
  int burst_fanin = 8;
  std::uint64_t burst_bytes = 20'000;
  /// Bursts fire at warmup, warmup + interval, ... (num_bursts total).
  sim::TimeNs burst_interval = sim::millis(1);
  int num_bursts = 4;
  /// Background settles during [0, warmup).  Must be >= burst_interval / 2
  /// so the first burst has a quiet window to compare against.
  sim::TimeNs warmup = sim::millis(2);
  sim::TimeNs horizon = sim::millis(500);
  std::uint64_t seed = 1;
  /// Parallel engine shards (1 = serial; 0 = one per leaf, capped at cores).
  int shards = 1;
};

struct BurstStats {
  int index = 0;
  double start_ms = 0;
  int completed = 0;
  int incomplete = 0;
  double fct_p50_us = 0;
  double fct_max_us = 0;
  /// Background goodput in the half-interval right after the burst fires...
  double background_during_bps = 0;
  /// ...vs the half-interval right before it (the interference baseline).
  double background_quiet_bps = 0;
};

struct BackgroundBurstResult {
  double oversubscription = 0;
  int background_flows = 0;
  /// Over [warmup, warmup + num_bursts * interval].
  double background_goodput_bps = 0;
  std::vector<BurstStats> bursts;
  int burst_flows = 0;
  int burst_completed = 0;
  int burst_incomplete = 0;
  std::vector<double> burst_fct_us;  // all completed burst flows
  std::uint64_t sim_events = 0;
  std::uint64_t queue_drops = 0;
  /// Per-shard engine counters; empty when the run was serial.
  std::vector<sim::ShardPerf> shard_perf;
};

BackgroundBurstResult run_background_burst(const BackgroundBurstOptions& options);

}  // namespace numfabric::exp
