// Trace replay: feed an external workload trace (arrival time / size / src /
// dst per flow, see workload/trace.h) through the packet simulator on a
// leaf-spine fabric and report per-flow completion times.  The bridge that
// makes arbitrary measured workloads runnable — and, via the sweep engine,
// sweepable — against every transport.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "transport/fabric.h"
#include "workload/trace.h"

namespace numfabric::exp {

struct TraceReplayOptions {
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  net::LeafSpineOptions topology;
  transport::FabricOptions fabric;

  /// Host indices in the trace must be < hosts_per_leaf * num_leaves;
  /// run_trace_replay throws std::invalid_argument otherwise.
  std::vector<workload::TraceFlow> trace;

  double alpha = 1.0;
  /// Hard stop; flows not finished by then count as incomplete.
  sim::TimeNs horizon = sim::seconds(20);
};

struct TraceReplayResult {
  struct PerFlow {
    int src = 0;
    int dst = 0;
    std::uint64_t size_bytes = 0;
    double arrival_seconds = 0;
    bool completed = false;
    double fct_seconds = 0;  // valid when completed
  };
  std::vector<PerFlow> flows;  // trace order
  int completed = 0;
  int incomplete = 0;
  std::uint64_t sim_events = 0;
};

TraceReplayResult run_trace_replay(const TraceReplayOptions& options);

}  // namespace numfabric::exp
