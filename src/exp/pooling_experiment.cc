#include "exp/pooling_experiment.h"

#include <algorithm>
#include <memory>

#include "exp/common.h"
#include "net/routing.h"
#include "num/utility.h"
#include "transport/receiver.h"
#include "workload/scenarios.h"

namespace numfabric::exp {
namespace {

PoolingResult::Row run_one(int subflows, const PoolingOptions& options) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = transport::Scheme::kNumFabric;
  fabric_options.numfabric.resource_pooling = options.resource_pooling;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::LeafSpine leaf_spine =
      net::build_leaf_spine(topo, options.topology, fabric.queue_factory());
  fabric.attach_agents(topo);

  sim::Rng rng(options.seed);
  const auto pairs = workload::permutation_pairs(leaf_spine.hosts, rng);
  const num::AlphaFairUtility utility(1.0);  // proportional fairness

  // Per logical flow: k sub-flows on independently drawn random paths
  // ("each sub-flow hashed onto a path at random").
  std::vector<std::vector<const transport::Flow*>> flows_by_pair(pairs.size());
  for (std::size_t pair_index = 0; pair_index < pairs.size(); ++pair_index) {
    const auto paths = net::all_shortest_paths(topo, pairs[pair_index].src,
                                               pairs[pair_index].dst);
    for (int s = 0; s < subflows; ++s) {
      transport::FlowSpec spec;
      spec.src = pairs[pair_index].src;
      spec.dst = pairs[pair_index].dst;
      spec.size_bytes = 0;  // long-running
      spec.start_time = 0;
      spec.utility = &utility;
      spec.path = paths[rng.index(paths.size())];
      spec.group = options.resource_pooling ? pair_index + 1 : 0;
      flows_by_pair[pair_index].push_back(fabric.add_flow(std::move(spec)));
    }
  }

  // Measure goodput between warmup and warmup+measure.
  std::vector<std::uint64_t> start_bytes(pairs.size(), 0);
  sim.schedule_at(options.warmup, [&] {
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      for (const transport::Flow* flow : flows_by_pair[p]) {
        start_bytes[p] += flow->receiver().total_bytes();
      }
    }
  });
  sim.run_until(options.warmup + options.measure);

  PoolingResult::Row row;
  row.subflows = subflows;
  const double optimal_bps =
      options.topology.host_rate_bps * static_cast<double>(pairs.size());
  double total_bps = 0;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    std::uint64_t end_bytes = 0;
    for (const transport::Flow* flow : flows_by_pair[p]) {
      end_bytes += flow->receiver().total_bytes();
    }
    const double rate =
        window_rate_bps(start_bytes[p], end_bytes, options.measure);
    row.per_flow_fraction.push_back(rate / options.topology.host_rate_bps);
    total_bps += rate;
  }
  row.total_throughput_fraction = total_bps / optimal_bps;
  std::sort(row.per_flow_fraction.begin(), row.per_flow_fraction.end());
  return row;
}

}  // namespace

PoolingResult run_pooling_experiment(const PoolingOptions& options) {
  PoolingResult result;
  for (int subflows : options.subflow_counts) {
    result.rows.push_back(run_one(subflows, options));
  }
  return result;
}

}  // namespace numfabric::exp
