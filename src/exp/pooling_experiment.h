// Resource pooling (multipath) experiment — Fig. 8.
//
// Permutation traffic on an all-10G leaf-spine (paper: 128 hosts, 8 leaves,
// 16 spines).  Each source-destination pair splits into k sub-flows hashed
// onto random paths.  With the pooling utility (proportional fairness over
// the *aggregate* rate, Table 1 row 4) throughput approaches the full
// bisection as k grows and the per-flow allocation is nearly uniform; with
// per-sub-flow utilities ("no resource pooling") collisions leave capacity
// stranded and the allocation is skewed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "transport/fabric.h"

namespace numfabric::exp {

struct PoolingOptions {
  net::LeafSpineOptions topology;  // set all links to the same speed
  transport::FabricOptions fabric;
  std::vector<int> subflow_counts = {1, 2, 3, 4, 5, 6, 7, 8};
  bool resource_pooling = true;
  sim::TimeNs warmup = sim::millis(8);
  sim::TimeNs measure = sim::millis(12);
  std::uint64_t seed = 1;
};

struct PoolingResult {
  struct Row {
    int subflows = 0;
    /// Aggregate goodput as a fraction of the optimum (#pairs * NIC rate).
    double total_throughput_fraction = 0;
    /// Per logical flow (src-dst pair) goodput fraction of the NIC rate,
    /// sorted ascending (Fig. 8b's rank plot).
    std::vector<double> per_flow_fraction;
  };
  std::vector<Row> rows;
};

PoolingResult run_pooling_experiment(const PoolingOptions& options);

}  // namespace numfabric::exp
