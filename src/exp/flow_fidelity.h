// Flow-fidelity (fidelity=flow) experiment runners.
//
// Each runner here is the flow-fluid twin of a packet-level experiment: it
// draws the *same* workload (same seed, same RNG call order, same ECMP path
// picks) on the *same* topology, but advances it with flowsim::FlowSimEngine
// instead of the packet substrate — one warm NUM re-solve per epoch instead
// of millions of packet events.  Results come back in the packet runner's
// result struct so the scenario layer emits identical tables either way.
//
// Comparability: the fluid model has no propagation delay, so every
// completion time is charged one base cross-leaf RTT (exactly the
// `oracle_latency` adjustment run_dynamic_workload applies to its ideal
// rates).  Ideal rates are always taken from the *exact* fluid system: when
// resolve_interval_seconds == 0 the engine is that system, otherwise
// num::fluid_fct_oracle is run alongside the grid-mode engine.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "exp/dynamic_workload.h"
#include "exp/trace_replay.h"
#include "exp/traffic_experiment.h"
#include "flowsim/flow_sim_engine.h"
#include "flowsim/virtual_fabric.h"
#include "workload/size_distribution.h"

namespace numfabric::exp {

/// run_dynamic_workload at flow fidelity.  `resolve_interval_seconds` == 0
/// replays the exact fluid system (normalized FCT == 1 by construction);
/// > 0 uses the epoch grid.  options.scheme is ignored — flow fidelity
/// models NUM-optimal rates; callers gate schemes (see scenario layer).
/// `incremental` enables the solver's worklist re-solve path
/// (NumSolverOptions::incremental): same tolerance, not bit-identical to a
/// full solve — scenario layers that golden-hash output pass false.
DynamicWorkloadResult run_dynamic_workload_flow(
    const DynamicWorkloadOptions& options, double resolve_interval_seconds,
    bool incremental = true);

/// run_traffic_experiment at flow fidelity.  Rate mode (flow_size_bytes ==
/// 0) is a single NUM solve — the steady-state allocation without the
/// warmup/measure window; FCT mode runs the engine with every flow arriving
/// at t = 0.
TrafficResult run_traffic_experiment_flow(const TrafficOptions& options,
                                          double resolve_interval_seconds,
                                          int solver_threads,
                                          bool incremental = true);

/// run_trace_replay at flow fidelity.
TraceReplayResult run_trace_replay_flow(const TraceReplayOptions& options,
                                        double resolve_interval_seconds,
                                        int solver_threads,
                                        bool incremental = true);

// ---------------------------------------------------------------------------
// mega-fct: the 10^5-10^6 concurrent-flow regime.  No net::Topology at all —
// a VirtualLeafSpine is pure index arithmetic, so the only per-flow state is
// the engine's (path indices + remaining bytes).
// ---------------------------------------------------------------------------

struct MegaFctOptions {
  flowsim::VirtualLeafSpine fabric{.hosts_per_leaf = 32,
                                   .leaves = 32,
                                   .spines = 8,
                                   .host_rate = 10e3,          // 10G in Mbps
                                   .leaf_spine_rate = 40e3};   // 40G in Mbps
  /// When set, the batch runs on flowsim::VirtualFabric::from_graph over a
  /// jellyfish graph (k_paths shortest routes per switch pair) instead of
  /// the index-arithmetic VirtualLeafSpine above.
  std::optional<net::JellyfishOptions> jellyfish;
  int k_paths = 8;
  /// Concurrent flows, all arriving at t = 0.
  int concurrent = 100000;
  const workload::SizeDistribution* sizes = &workload::websearch_distribution();
  double alpha = 1.0;  // proportional fairness; hits the solver's fast path
  /// Must be > 0: exact mode would pay one solve per departure — 10^5 warm
  /// solves — which defeats the purpose at this scale.
  double resolve_interval_seconds = 1e-3;
  /// Looser than the 1e-8 the cross-validated runners use: grid-mode FCTs are
  /// already quantized to resolve_interval_seconds, so price precision far
  /// below that grid buys sweeps, not accuracy.
  double solver_tolerance = 1e-5;
  double horizon_seconds = 30.0;
  int solver_threads = 1;
  /// Incremental (worklist) re-solves: ON by default at this scale — per-tick
  /// cost tracks churn, not the 10^5-10^6 compiled flows.  FCTs stay within
  /// the solver-tolerance band of a full-solve run (property-tested) but are
  /// not bit-identical to one.
  bool incremental = true;
  std::uint64_t seed = 1;
};

struct MegaFctResult {
  int hosts = 0;  // fabric shape actually run (jellyfish or leaf-spine)
  int links = 0;
  flowsim::FlowSimResult sim;            // FCTs, epoch/resolve counters
  std::vector<std::uint64_t> size_bytes;  // per flow, engine order
};

MegaFctResult run_mega_fct(const MegaFctOptions& options);

}  // namespace numfabric::exp
