#include "exp/config.h"

#include <iomanip>
#include <sstream>

namespace numfabric::exp {
namespace {

std::string us(sim::TimeNs t) {
  std::ostringstream out;
  out << sim::to_micros(t) << " us";
  return out.str();
}

std::string num_str(double v) {
  std::ostringstream out;
  out << v;
  return out.str();
}

}  // namespace

std::vector<ParameterRow> table2_rows() {
  const transport::DgdConfig dgd;
  const transport::RcpConfig rcp;
  const transport::NumFabricConfig numfabric;

  return {
      {"DGD [Eq. 14]", "priceUpdateInterval", us(dgd.price_update_interval)},
      {"DGD [Eq. 14]", "a", num_str(dgd.a) + " Mbps^-1"},
      {"DGD [Eq. 14]", "b", num_str(dgd.b) + " B^-1"},
      {"RCP* [Eq. 15]", "rateUpdateInterval", us(rcp.rate_update_interval)},
      {"RCP* [Eq. 15]", "a", num_str(rcp.a)},
      {"RCP* [Eq. 15]", "b", num_str(rcp.b)},
      {"NUMFabric [Sec. 5]", "ewmaTime", us(numfabric.ewma_time)},
      {"NUMFabric [Sec. 5]", "dt", us(numfabric.dt_slack)},
      {"NUMFabric [Sec. 5]", "priceUpdateInterval",
       us(numfabric.price_update_interval)},
      {"NUMFabric [Sec. 5]", "eta [Eq. 10]", num_str(numfabric.eta)},
      {"NUMFabric [Sec. 5]", "beta [Eq. 11]", num_str(numfabric.beta)},
  };
}

std::string table2_text() {
  std::ostringstream out;
  out << std::left << std::setw(22) << "Scheme" << std::setw(24) << "Parameter"
      << "Value\n";
  out << std::string(60, '-') << "\n";
  for (const ParameterRow& row : table2_rows()) {
    out << std::left << std::setw(22) << row.scheme << std::setw(24) << row.name
        << row.value << "\n";
  }
  return out.str();
}

}  // namespace numfabric::exp
