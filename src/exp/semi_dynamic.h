// The semi-dynamic convergence scenario (§6.1, Fig. 4 and Fig. 6).
//
// A fixed population of random host-pair "paths"; each network event starts
// or stops a batch of long-running flows.  After every event the NUM oracle
// recomputes target rates and a ConvergenceDetector watches the
// destination-measured rates until 95% of flows sit within 10% of target for
// 5 ms.  The measured convergence time (minus the rate filter's rise time)
// is one sample of Fig. 4(a)'s CDF.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "sim/sharded_simulator.h"
#include "stats/convergence.h"
#include "transport/fabric.h"

namespace numfabric::exp {

struct SemiDynamicOptions {
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  net::LeafSpineOptions topology;
  transport::FabricOptions fabric;  // .scheme is overwritten from `scheme`

  int num_paths = 1000;
  int initial_active = 400;
  int flows_per_event = 100;
  int num_events = 100;
  int min_active = 300;
  int max_active = 500;

  /// Utility: alpha-fair (1.0 = the paper's proportional fairness).
  double alpha = 1.0;

  /// Oracle execution: >1 runs the NUM solver's wave-parallel path on this
  /// many threads (bit-identical results for any value).
  int solver_threads = 1;

  /// Parallel engine shards (1 = serial; 0 = one per leaf, capped at
  /// cores).  Output is bit-identical for every value.
  int shards = 1;

  stats::ConvergenceOptions convergence;  // filter_rise_time is auto-filled
  /// Pause between an event's verdict and the next event.
  sim::TimeNs event_gap = sim::micros(100);

  std::uint64_t seed = 1;

  // --- Fig. 4(b,c) trace mode ---------------------------------------------
  /// Record the measured rate of one long-lived flow.
  bool record_trace = false;
  sim::TimeNs trace_sample_interval = sim::micros(10);
  /// >0: fire events on a fixed schedule instead of gating on convergence
  /// (needed for DCTCP, which never converges at these time scales).
  sim::TimeNs fixed_event_interval = 0;
  /// Use the plain max-min allocation as the "expected rate" (DCTCP does not
  /// optimize the NUM objective; the paper notes its expected rates differ).
  bool use_maxmin_targets = false;
};

struct SemiDynamicResult {
  /// One entry per measured event that converged (microseconds).
  std::vector<double> convergence_times_us;
  int events_measured = 0;
  int events_converged = 0;

  /// Trace of the tracked flow: (time ms, rate bps).
  std::vector<std::pair<double, double>> trace;
  /// Oracle rate of the tracked flow after each event: (time ms, rate bps).
  std::vector<std::pair<double, double>> expected_steps;

  std::uint64_t sim_events = 0;
  std::uint64_t total_queue_drops = 0;
  /// Per-shard engine counters; empty when the run was serial.
  std::vector<sim::ShardPerf> shard_perf;
};

SemiDynamicResult run_semi_dynamic(const SemiDynamicOptions& options);

}  // namespace numfabric::exp
