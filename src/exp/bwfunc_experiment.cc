#include "exp/bwfunc_experiment.h"

#include <memory>

#include "exp/common.h"
#include "net/routing.h"
#include "net/topology.h"
#include "num/bandwidth_function.h"
#include "num/bwe_waterfill.h"
#include "transport/receiver.h"

namespace numfabric::exp {
namespace {

double gbps(double bps) { return bps / 1e9; }

BwFuncSweepResult::Row run_sweep_point(double capacity_gbps,
                                       const BwFuncSweepOptions& options) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = transport::Scheme::kNumFabric;
  fabric_options.numfabric = fabric_options.numfabric.slowed_down(options.slowdown);
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  // Two senders, one shared bottleneck of the swept capacity.
  const net::Dumbbell dumbbell =
      net::build_dumbbell(topo, 2, /*edge_bps=*/100e9, capacity_gbps * 1e9,
                          options.link_delay, fabric.queue_factory());
  fabric.attach_agents(topo);

  const num::BandwidthFunction b1 = num::fig2_flow1();
  const num::BandwidthFunction b2 = num::fig2_flow2();
  const num::BandwidthFunctionUtility u1(b1, options.alpha);
  const num::BandwidthFunctionUtility u2(b2, options.alpha);

  std::vector<const transport::Flow*> flows;
  for (int i = 0; i < 2; ++i) {
    transport::FlowSpec spec;
    spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
    spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
    spec.size_bytes = 0;
    spec.start_time = 0;
    spec.utility = i == 0 ? static_cast<const num::UtilityFunction*>(&u1)
                          : static_cast<const num::UtilityFunction*>(&u2);
    const auto paths = net::all_shortest_paths(topo, spec.src, spec.dst);
    spec.path = paths.front();
    flows.push_back(fabric.add_flow(std::move(spec)));
  }

  std::uint64_t start1 = 0, start2 = 0;
  sim.schedule_at(options.warmup, [&] {
    start1 = flows[0]->receiver().total_bytes();
    start2 = flows[1]->receiver().total_bytes();
  });
  sim.run_until(options.warmup + options.measure);

  BwFuncSweepResult::Row row;
  row.capacity_gbps = capacity_gbps;
  row.flow1_gbps = gbps(window_rate_bps(
      start1, flows[0]->receiver().total_bytes(), options.measure));
  row.flow2_gbps = gbps(window_rate_bps(
      start2, flows[1]->receiver().total_bytes(), options.measure));

  // Expected allocation: BwE water-filling on the single bottleneck.
  num::BweProblem bwe;
  bwe.functions = {&b1, &b2};
  bwe.flow_links = {{0}, {0}};
  bwe.capacities = {capacity_gbps * 1000.0};  // Mbps
  const num::BweResult expected = num::bwe_waterfill(bwe);
  row.expected1_gbps = expected.rates[0] / 1000.0;
  row.expected2_gbps = expected.rates[1] / 1000.0;
  return row;
}

}  // namespace

BwFuncSweepResult run_bwfunc_sweep(const BwFuncSweepOptions& options) {
  BwFuncSweepResult result;
  for (double capacity : options.capacities_gbps) {
    result.rows.push_back(run_sweep_point(capacity, options));
  }
  return result;
}

BwFuncPoolingResult run_bwfunc_pooling(const BwFuncPoolingOptions& options) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = transport::Scheme::kNumFabric;
  fabric_options.numfabric.resource_pooling = true;
  fabric_options.numfabric = fabric_options.numfabric.slowed_down(options.slowdown);
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  net::Fig10Topology fig10 =
      net::build_fig10(topo, options.middle_before_gbps * 1e9,
                       options.link_delay, fabric.queue_factory());
  fabric.attach_agents(topo);

  const num::BandwidthFunction b1 = num::fig2_flow1();
  const num::BandwidthFunction b2 = num::fig2_flow2();
  const num::BandwidthFunctionUtility u1(b1, options.alpha);
  const num::BandwidthFunctionUtility u2(b2, options.alpha);

  // Flow 1: sub-flows over {top, middle}; flow 2: over {bottom, middle}.
  // Sub-flow paths are built explicitly (source routing).
  auto egress_to = [&](net::Host* dst) -> net::Link* {
    for (net::Link* link : topo.outgoing(fig10.out)) {
      if (link->dst() == dst) return link;
    }
    throw std::logic_error("fig10: no egress link to destination");
  };
  auto make_subflow = [&](net::Host* src, net::Host* dst, net::Link* core,
                          const num::UtilityFunction* utility,
                          std::uint64_t group) {
    transport::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.size_bytes = 0;
    spec.start_time = 0;
    spec.utility = utility;
    spec.group = group;
    spec.path.links = {topo.outgoing(src).front(), core, egress_to(dst)};
    return fabric.add_flow(std::move(spec));
  };

  std::vector<const transport::Flow*> flow1 = {
      make_subflow(fig10.src1, fig10.dst1, fig10.top, &u1, 1),
      make_subflow(fig10.src1, fig10.dst1, fig10.middle, &u1, 1)};
  std::vector<const transport::Flow*> flow2 = {
      make_subflow(fig10.src2, fig10.dst2, fig10.bottom, &u2, 2),
      make_subflow(fig10.src2, fig10.dst2, fig10.middle, &u2, 2)};

  BwFuncPoolingResult result;
  auto aggregate_rate = [](const std::vector<const transport::Flow*>& subflows) {
    double total = 0;
    for (const transport::Flow* flow : subflows) {
      total += flow->receiver().rate_bps();
    }
    return total;
  };

  // Periodic sampling of the aggregate rates.  The closure lives on this
  // stack frame (which outlives the run) and reschedules itself by
  // reference; a shared_ptr self-capture here would cycle and leak.
  std::function<void()> sampler = [&] {
    result.series.emplace_back(sim::to_millis(sim.now()), aggregate_rate(flow1),
                               aggregate_rate(flow2));
    if (sim.now() + options.sample_interval <= options.end_time) {
      sim.schedule_in(options.sample_interval, sampler);
    }
  };
  sim.schedule_in(options.sample_interval, sampler);

  // Capacity step on the middle link (both directions).
  sim.schedule_at(options.switch_time, [&] {
    fig10.middle->set_rate_bps(options.middle_after_gbps * 1e9);
    fig10.middle->twin()->set_rate_bps(options.middle_after_gbps * 1e9);
  });

  // Steady-state windows: the tail 40% of each phase, measured by byte
  // counters.
  const sim::TimeNs before_start =
      options.switch_time - options.switch_time * 2 / 5;
  const sim::TimeNs after_phase = options.end_time - options.switch_time;
  const sim::TimeNs after_start = options.switch_time + after_phase * 3 / 5;

  std::uint64_t f1_before = 0, f2_before = 0, f1_after = 0, f2_after = 0;
  auto total_bytes = [](const std::vector<const transport::Flow*>& subflows) {
    std::uint64_t total = 0;
    for (const transport::Flow* flow : subflows) {
      total += flow->receiver().total_bytes();
    }
    return total;
  };
  sim.schedule_at(before_start, [&] {
    f1_before = total_bytes(flow1);
    f2_before = total_bytes(flow2);
  });
  sim.run_until(options.switch_time);
  result.flow1_before_gbps = gbps(window_rate_bps(
      f1_before, total_bytes(flow1), options.switch_time - before_start));
  result.flow2_before_gbps = gbps(window_rate_bps(
      f2_before, total_bytes(flow2), options.switch_time - before_start));

  sim.schedule_at(after_start, [&] {
    f1_after = total_bytes(flow1);
    f2_after = total_bytes(flow2);
  });
  sim.run_until(options.end_time);
  result.flow1_after_gbps = gbps(window_rate_bps(
      f1_after, total_bytes(flow1), options.end_time - after_start));
  result.flow2_after_gbps = gbps(window_rate_bps(
      f2_after, total_bytes(flow2), options.end_time - after_start));
  return result;
}

}  // namespace numfabric::exp
