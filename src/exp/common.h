// Shared experiment plumbing: link indexing for oracle problems, throughput
// measurement windows, and the quick/full scale switch.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/shard_plan.h"
#include "net/topology.h"
#include "num/num_solver.h"
#include "sim/sharded_simulator.h"
#include "sim/simulator.h"
#include "transport/fabric.h"
#include "transport/flow.h"

namespace numfabric::exp {

/// Sharded-engine wiring owned by one experiment run: the leaf shard plan
/// and the cross-shard delivery router.  Empty (no router) when the engine
/// is serial.  Declare it in the experiment's scope — the fabric keeps a
/// pointer to the plan.
struct ShardSetup {
  net::ShardPlan plan;
  std::unique_ptr<net::ShardRouter> router;
};

/// When `engine` is sharded: builds the leaf-major shard plan, sets the
/// engine's lookahead to the core-link delay, rebinds every link onto its
/// shard, and switches the fabric to sharded endpoint placement.  Serial
/// engines are left untouched.  Call after attach_agents and before any
/// flow is added.
void apply_sharding(ShardSetup& setup, sim::ShardedSimulator& engine,
                    net::Topology& topo, transport::Fabric& fabric,
                    const net::LeafSpine& leaf_spine,
                    const net::LeafSpineOptions& topology);

/// One evaluation fabric — leaf-spine or jellyfish — as every experiment
/// runner consumes it: the FabricGraph plus, after materialize_fabric(), the
/// object view.  Paths are computed on the graph (link ids double as dense
/// LinkIndexer indices), so the packet and flow engines select identical
/// routes.
struct BuiltFabric {
  net::FabricGraph graph;
  net::MaterializedFabric mat;
  /// Leaf-spine: the classic cross-leaf RTT formula; jellyfish:
  /// net::base_rtt(graph) (longest shortest host-pair route).
  sim::TimeNs base_rtt = 0;
  double host_rate_bps = 0;
  bool jellyfish = false;
  int k_paths = 8;
  /// Tier-1 switch count — the shard-count clamp basis (= num_leaves on a
  /// leaf-spine).
  int tier1_switches = 0;
  /// Host object -> graph node id (filled by materialize_fabric).
  std::unordered_map<const net::Host*, int> host_node;
  /// Memoized per-ordered-pair jellyfish path sets (Yen is deterministic, so
  /// caching cannot change results).
  std::map<std::pair<int, int>, std::vector<std::vector<int>>> path_cache;
};

/// Builds the graph + metadata for either fabric kind.  No Topology needed
/// yet — callers size the shard engine off the plan before materializing.
BuiltFabric plan_fabric(const net::LeafSpineOptions& leaf_spine,
                        const std::optional<net::JellyfishOptions>& jellyfish,
                        int k_paths);

/// Materializes the planned graph into `topo` and fills the object-side
/// fields (mat, host_node).
void materialize_fabric(BuiltFabric& fabric, net::Topology& topo,
                        const net::QueueFactory& edge_queue,
                        const net::QueueFactory& core_queue = nullptr);

/// Path set (graph link ids) for one host pair: the COMPLETE shortest-path
/// set on leaf-spine (classic ECMP, no-silent-caps contract) or the
/// fabric's k-shortest table entry on jellyfish.  Deterministic order; pick
/// with net::ecmp_index.
const std::vector<std::vector<int>>& pair_paths(BuiltFabric& fabric,
                                                int src_node, int dst_node);

/// A link-id path as the packet engine's object path.
net::Path to_packet_path(const BuiltFabric& fabric,
                         const std::vector<int>& links);

/// Per-link capacities of a graph in NUM rate units, in graph link order —
/// equal to LinkIndexer::capacities() for the materialized topology.
std::vector<double> graph_capacities(const net::FabricGraph& graph);

/// Graph-view sharding: same contract as the LeafSpine overload, but the
/// plan is derived from graph structure.  Throws std::invalid_argument with
/// the shard-partition obstacle when the engine is sharded and the graph
/// has no leaf/spine cut (jellyfish).
void apply_sharding(ShardSetup& setup, sim::ShardedSimulator& engine,
                    net::Topology& topo, transport::Fabric& fabric,
                    const BuiltFabric& built);

/// Maps every link of a topology to a dense index and exposes capacities in
/// NUM rate units — the glue between the packet world and the fluid oracles.
class LinkIndexer {
 public:
  explicit LinkIndexer(const net::Topology& topo);

  int index(const net::Link* link) const;
  std::vector<int> path_indices(const net::Path& path) const;

  /// Per-link capacity in rate units (Mbps), same order as the indices.
  const std::vector<double>& capacities() const { return capacities_; }

 private:
  std::unordered_map<const net::Link*, int> index_;
  std::vector<double> capacities_;
};

/// Builds the NUM problem for a set of active flows (shared utility objects
/// live in the caller).
num::NumProblem make_num_problem(const LinkIndexer& indexer,
                                 const std::vector<const transport::Flow*>& flows);

/// Average goodput of a flow (receiver bytes delta / window), in bps.
/// Snapshot `start` with flow.receiver().total_bytes() at window start.
double window_rate_bps(std::uint64_t start_bytes, std::uint64_t end_bytes,
                       sim::TimeNs window);

/// Jain's fairness index over per-flow rates: (sum x)^2 / (n * sum x^2).
/// 0 for an empty or all-zero input.
double jain_index(const std::vector<double>& rates);

/// Experiment scale.  Benches default to a laptop-quick configuration and
/// switch to the paper's full scale when NUMFABRIC_FULL=1 is set.
struct Scale {
  bool full = false;
  const char* label = "quick";

  // Leaf-spine size (paper: 16 x 8 leaves, 4 spines).
  int hosts_per_leaf = 8;
  int leaves = 4;
  int spines = 2;

  // Semi-dynamic scenario (paper: 1000 paths, 100x flows per event,
  // 100 events, 300-500 active).
  int num_paths = 240;
  int initial_active = 100;
  int flows_per_event = 25;
  int num_events = 8;
  int min_active = 75;
  int max_active = 125;
  /// Per-event convergence verdict timeout (paper-scale runs use 50 ms;
  /// quick runs cut losses earlier).
  sim::TimeNs convergence_timeout = sim::millis(20);

  // Dynamic workloads.
  int dynamic_flow_count = 1200;

  // Resource pooling (paper: 8 leaves, 16 spines, 64 pairs).
  int pooling_leaves = 4;
  int pooling_spines = 8;
  int pooling_hosts_per_leaf = 8;

  // Steady-state measurement window for throughput experiments.
  sim::TimeNs warmup = sim::millis(8);
  sim::TimeNs measure = sim::millis(12);
};

/// Reads NUMFABRIC_FULL from the environment.
Scale scale_from_env();

Scale quick_scale();
Scale full_scale();

}  // namespace numfabric::exp
