#include "exp/contention_experiment.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <span>
#include <stdexcept>

#include "exp/common.h"
#include "net/routing.h"
#include "num/utility.h"
#include "sim/random.h"
#include "stats/summary.h"
#include "transport/control_plane.h"
#include "transport/receiver.h"
#include "workload/scenarios.h"

namespace numfabric::exp {
namespace {

net::LeafSpine build_fabric(net::Topology& topo, transport::Fabric& fabric,
                            const net::LeafSpineOptions& topology,
                            std::size_t core_buffer_bytes) {
  // queue_factory(0) falls back to the scheme's edge capacity, so an unset
  // core buffer just mirrors the edge tier.
  return net::build_leaf_spine(topo, topology, fabric.queue_factory(),
                               fabric.queue_factory(core_buffer_bytes));
}

/// Watches the core tier's xWI prices for stability: converged at the start
/// of the first `hold`-long run of samples where no price moves more than
/// `margin` relative to the larger of its old and new values.
///
/// Prices come from the batched ControlPlane's contiguous snapshot span,
/// indexed by the core links' slot ids — one array scan per sample instead
/// of N virtual agent->price() calls.  Gated by the explicit
/// Fabric::exposes_price_snapshot() capability: a NUMFabric wiring that
/// cannot publish prices (legacy_link_agents) throws instead of silently
/// recording no samples, and non-NUM schemes simply disable tracking (their
/// convergence metric reports NaN).
struct PriceTracker {
  std::span<const double> prices;        // ControlPlane snapshot, by slot
  std::vector<std::uint32_t> slots;      // core links' slot ids
  std::vector<double> last;
  PriceConvergenceOptions options;
  sim::TimeNs stable_since = -1;
  sim::TimeNs converged_at = -1;

  PriceTracker(const transport::Fabric& fabric,
               const std::vector<net::Link*>& core_links,
               const PriceConvergenceOptions& opts)
      : options(opts) {
    if (fabric.exposes_price_snapshot()) {
      prices = fabric.control_plane()->snapshot_prices();
      slots.reserve(core_links.size());
      for (const net::Link* link : core_links) {
        slots.push_back(link->control_slot());
      }
    } else if (fabric.options().scheme == transport::Scheme::kNumFabric) {
      throw std::invalid_argument(
          "price-convergence tracking needs the batched ControlPlane's price "
          "snapshot, which legacy_link_agents mode does not expose; disable "
          "legacy_link_agents for this experiment");
    }
    last.resize(size(), 0.0);
  }

  std::size_t size() const { return slots.size(); }
  double price(std::size_t i) const { return prices[slots[i]]; }

  bool enabled() const { return size() > 0; }
  bool done() const { return converged_at >= 0; }

  void baseline() {
    for (std::size_t i = 0; i < size(); ++i) last[i] = price(i);
  }

  void sample(sim::TimeNs now) {
    // Stability is judged against the price vector's own scale (its max
    // entry): a decaying near-zero price on an idle link must not mask the
    // bottleneck prices having settled, and absolute thresholds would be
    // meaningless across utility functions.
    double scale = 1e-12;
    for (std::size_t i = 0; i < size(); ++i) {
      scale = std::max({scale, price(i), last[i]});
    }
    bool stable = true;
    for (std::size_t i = 0; i < size(); ++i) {
      const double p = price(i);
      if (std::abs(p - last[i]) > options.margin * scale) stable = false;
      last[i] = p;
    }
    if (!stable) {
      stable_since = -1;
      return;
    }
    if (stable_since < 0) stable_since = now - options.sample_interval;
    if (now - stable_since >= options.hold) converged_at = stable_since;
  }
};

std::uint64_t total_queue_drops(const net::Topology& topo) {
  std::uint64_t drops = 0;
  for (const auto& link : topo.links()) drops += link->queue().drops();
  return drops;
}

}  // namespace

OversubFabricResult run_oversub_fabric(const OversubFabricOptions& options) {
  if (options.horizon < options.warmup + options.measure) {
    throw std::invalid_argument(
        "run_oversub_fabric: horizon must cover warmup + measure");
  }
  sim::ShardedSimulator engine(
      net::resolve_shard_count(options.shards, options.topology.num_leaves));
  sim::Simulator& sim = engine.global();
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = options.scheme;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::LeafSpine leaf_spine =
      build_fabric(topo, fabric, options.topology, options.core_buffer_bytes);
  fabric.attach_agents(topo);
  ShardSetup sharding;
  apply_sharding(sharding, engine, topo, fabric, leaf_spine, options.topology);

  sim::Rng rng(options.seed);
  const auto background_pairs = workload::permutation_pairs(leaf_spine.hosts, rng);
  const auto shuffle_pairs = workload::all_to_all_pairs(leaf_spine.hosts);

  const num::AlphaFairUtility utility(options.alpha);
  // Background flows are long-running and never complete, so this counts
  // finished wave flows only.  Completions fire on the source host's shard
  // worker, so the counter the coordinator polls is atomic.
  std::atomic<int> wave_done{0};
  fabric.set_on_complete([&wave_done](transport::Flow&) {
    wave_done.fetch_add(1, std::memory_order_relaxed);
  });

  net::FlowId flow_index = 1;
  const auto launch = [&](const workload::HostPair& pair,
                          std::uint64_t size_bytes, sim::TimeNs start) {
    transport::FlowSpec spec;
    spec.src = pair.src;
    spec.dst = pair.dst;
    spec.size_bytes = size_bytes;
    spec.start_time = start;
    spec.utility = &utility;
    const auto paths = net::all_shortest_paths(topo, pair.src, pair.dst);
    spec.path = net::ecmp_pick(paths, flow_index++);
    return fabric.add_flow(std::move(spec));
  };

  std::vector<const transport::Flow*> background;
  background.reserve(background_pairs.size());
  for (const auto& pair : background_pairs) {
    background.push_back(launch(pair, 0, 0));
  }
  std::vector<const transport::Flow*> wave;
  wave.reserve(shuffle_pairs.size());
  for (const auto& pair : shuffle_pairs) {
    wave.push_back(launch(pair, options.shuffle_flow_bytes, options.warmup));
  }

  // Snapshots bounding the measurement window [warmup, warmup + measure].
  std::vector<std::uint64_t> background_start(background.size(), 0);
  std::vector<std::uint64_t> background_end(background.size(), 0);
  std::vector<std::uint64_t> core_start(leaf_spine.core_links.size(), 0);
  std::vector<std::uint64_t> core_end(leaf_spine.core_links.size(), 0);
  PriceTracker tracker(fabric, leaf_spine.core_links,
                       options.price);
  sim.schedule_at(options.warmup, [&] {
    for (std::size_t i = 0; i < background.size(); ++i) {
      background_start[i] = background[i]->receiver().total_bytes();
    }
    for (std::size_t i = 0; i < leaf_spine.core_links.size(); ++i) {
      core_start[i] = leaf_spine.core_links[i]->bytes_sent();
    }
    tracker.baseline();
  });
  const sim::TimeNs measure_end = options.warmup + options.measure;
  sim.schedule_at(measure_end, [&] {
    for (std::size_t i = 0; i < background.size(); ++i) {
      background_end[i] = background[i]->receiver().total_bytes();
    }
    for (std::size_t i = 0; i < leaf_spine.core_links.size(); ++i) {
      core_end[i] = leaf_spine.core_links[i]->bytes_sent();
    }
  });

  // Price sampling: from the wave's launch until stable or the horizon (the
  // run loop below exits once the wave drains and the measurement window
  // closes, so in practice sampling stops with the experiment).
  std::function<void()> price_tick;
  price_tick = [&] {
    tracker.sample(sim.now());
    if (!tracker.done() &&
        sim.now() + tracker.options.sample_interval <= options.horizon) {
      sim.schedule_at(sim.now() + tracker.options.sample_interval,
                      [&] { price_tick(); });
    }
  };
  if (tracker.enabled()) {
    sim.schedule_at(options.warmup + tracker.options.sample_interval,
                    [&] { price_tick(); });
  }

  const int wave_total = static_cast<int>(wave.size());
  while ((wave_done.load(std::memory_order_relaxed) < wave_total ||
          engine.now() < measure_end) &&
         engine.now() < options.horizon && engine.pending()) {
    engine.run_until(std::min(engine.now() + sim::millis(1), options.horizon));
  }

  OversubFabricResult result;
  result.oversubscription = options.topology.oversubscription();
  result.background_flows = static_cast<int>(background.size());
  std::vector<double> background_rates;
  background_rates.reserve(background.size());
  for (std::size_t i = 0; i < background.size(); ++i) {
    const double rate = window_rate_bps(background_start[i], background_end[i],
                                        options.measure);
    background_rates.push_back(rate);
    result.background_goodput_bps += rate;
  }
  result.background_jain = jain_index(background_rates);

  result.shuffle_flows = wave_total;
  for (const transport::Flow* flow : wave) {
    if (!flow->completed()) {
      ++result.shuffle_incomplete;
      continue;
    }
    ++result.shuffle_completed;
    result.shuffle_fct_us.push_back(sim::to_micros(flow->fct()));
  }

  const double window_seconds = sim::to_seconds(options.measure);
  result.core_util_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < leaf_spine.core_links.size(); ++i) {
    const net::Link* link = leaf_spine.core_links[i];
    CoreLinkStats row;
    row.name = link->name();
    row.utilization = static_cast<double>(core_end[i] - core_start[i]) * 8.0 /
                      (link->rate_bps() * window_seconds);
    if (i < tracker.last.size()) row.price = tracker.last[i];
    result.core_util_mean += row.utilization;
    result.core_util_min = std::min(result.core_util_min, row.utilization);
    result.core_util_max = std::max(result.core_util_max, row.utilization);
    result.core_links.push_back(std::move(row));
  }
  if (!result.core_links.empty()) {
    result.core_util_mean /= static_cast<double>(result.core_links.size());
  } else {
    result.core_util_min = 0;
  }

  result.price_convergence_us =
      tracker.done() ? sim::to_micros(tracker.converged_at - options.warmup)
                     : std::numeric_limits<double>::quiet_NaN();
  result.sim_events = engine.events_executed();
  result.shard_perf = engine.shard_perf();
  result.queue_drops = total_queue_drops(topo);
  return result;
}

BackgroundBurstResult run_background_burst(const BackgroundBurstOptions& options) {
  if (options.num_bursts < 1) {
    throw std::invalid_argument("run_background_burst: num_bursts must be >= 1");
  }
  if (options.burst_interval / 2 <= 0) {
    throw std::invalid_argument(
        "run_background_burst: burst_interval must be at least 2 ns (the "
        "interference windows are half an interval wide)");
  }
  if (options.warmup < options.burst_interval / 2) {
    throw std::invalid_argument(
        "run_background_burst: warmup must be >= burst_interval / 2 (the "
        "first burst needs a quiet window before it)");
  }
  const sim::TimeNs background_end_time =
      options.warmup + options.num_bursts * options.burst_interval;
  if (options.horizon < background_end_time) {
    throw std::invalid_argument(
        "run_background_burst: horizon must cover warmup + num_bursts * "
        "burst_interval");
  }
  if (!(options.background_load >= 0 && options.background_load <= 1)) {
    throw std::invalid_argument(
        "run_background_burst: background_load must be in [0, 1]");
  }

  sim::ShardedSimulator engine(
      net::resolve_shard_count(options.shards, options.topology.num_leaves));
  sim::Simulator& sim = engine.global();
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = options.scheme;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::LeafSpine leaf_spine =
      build_fabric(topo, fabric, options.topology, options.core_buffer_bytes);
  fabric.attach_agents(topo);
  ShardSetup sharding;
  apply_sharding(sharding, engine, topo, fabric, leaf_spine, options.topology);

  sim::Rng rng(options.seed);
  auto background_pairs = workload::permutation_pairs(leaf_spine.hosts, rng);
  const std::size_t keep = static_cast<std::size_t>(std::llround(
      options.background_load * static_cast<double>(background_pairs.size())));
  background_pairs.resize(std::min(keep, background_pairs.size()));

  const num::AlphaFairUtility utility(options.alpha);
  // Burst completions fire on shard workers; the coordinator polls the count.
  std::atomic<int> burst_done{0};
  fabric.set_on_complete([&burst_done](transport::Flow&) {
    burst_done.fetch_add(1, std::memory_order_relaxed);
  });

  net::FlowId flow_index = 1;
  const auto launch = [&](const workload::HostPair& pair,
                          std::uint64_t size_bytes, sim::TimeNs start) {
    transport::FlowSpec spec;
    spec.src = pair.src;
    spec.dst = pair.dst;
    spec.size_bytes = size_bytes;
    spec.start_time = start;
    spec.utility = &utility;
    const auto paths = net::all_shortest_paths(topo, pair.src, pair.dst);
    spec.path = net::ecmp_pick(paths, flow_index++);
    return fabric.add_flow(std::move(spec));
  };

  std::vector<const transport::Flow*> background;
  background.reserve(background_pairs.size());
  for (const auto& pair : background_pairs) {
    background.push_back(launch(pair, 0, 0));
  }

  std::vector<std::vector<const transport::Flow*>> bursts;
  bursts.reserve(static_cast<std::size_t>(options.num_bursts));
  for (int k = 0; k < options.num_bursts; ++k) {
    const sim::TimeNs start = options.warmup + k * options.burst_interval;
    const auto pairs =
        workload::incast_pairs(leaf_spine.hosts, options.burst_fanin, rng);
    std::vector<const transport::Flow*> flows;
    flows.reserve(pairs.size());
    for (const auto& pair : pairs) {
      flows.push_back(launch(pair, options.burst_bytes, start));
    }
    bursts.push_back(std::move(flows));
  }

  // Background byte totals sampled at the interference window boundaries:
  // quiet [t_k - interval/2, t_k), during [t_k, t_k + interval/2), plus the
  // whole-run window [warmup, background_end_time].
  const auto background_total = [&background] {
    std::uint64_t total = 0;
    for (const transport::Flow* flow : background) {
      total += flow->receiver().total_bytes();
    }
    return total;
  };
  const std::size_t burst_count = bursts.size();
  std::vector<std::uint64_t> quiet_start(burst_count, 0);
  std::vector<std::uint64_t> at_burst(burst_count, 0);
  std::vector<std::uint64_t> during_end(burst_count, 0);
  std::uint64_t run_start = 0, run_end = 0;
  const sim::TimeNs half = options.burst_interval / 2;
  sim.schedule_at(options.warmup, [&] { run_start = background_total(); });
  sim.schedule_at(background_end_time, [&] { run_end = background_total(); });
  for (std::size_t k = 0; k < burst_count; ++k) {
    const sim::TimeNs start =
        options.warmup + static_cast<sim::TimeNs>(k) * options.burst_interval;
    sim.schedule_at(start - half, [&quiet_start, &background_total, k] {
      quiet_start[k] = background_total();
    });
    sim.schedule_at(start, [&at_burst, &background_total, k] {
      at_burst[k] = background_total();
    });
    sim.schedule_at(start + half, [&during_end, &background_total, k] {
      during_end[k] = background_total();
    });
  }

  int burst_total = 0;
  for (const auto& flows : bursts) burst_total += static_cast<int>(flows.size());
  while ((burst_done.load(std::memory_order_relaxed) < burst_total ||
          engine.now() < background_end_time) &&
         engine.now() < options.horizon && engine.pending()) {
    engine.run_until(std::min(engine.now() + sim::millis(1), options.horizon));
  }

  BackgroundBurstResult result;
  result.oversubscription = options.topology.oversubscription();
  result.background_flows = static_cast<int>(background.size());
  result.background_goodput_bps = window_rate_bps(
      run_start, run_end, background_end_time - options.warmup);
  result.burst_flows = burst_total;

  for (std::size_t k = 0; k < burst_count; ++k) {
    BurstStats row;
    row.index = static_cast<int>(k);
    row.start_ms = sim::to_millis(
        options.warmup + static_cast<sim::TimeNs>(k) * options.burst_interval);
    std::vector<double> fcts;
    for (const transport::Flow* flow : bursts[k]) {
      if (!flow->completed()) {
        ++row.incomplete;
        continue;
      }
      ++row.completed;
      fcts.push_back(sim::to_micros(flow->fct()));
      result.burst_fct_us.push_back(fcts.back());
    }
    if (!fcts.empty()) {
      std::sort(fcts.begin(), fcts.end());
      row.fct_p50_us = stats::percentile(fcts, 50);
      row.fct_max_us = fcts.back();
    }
    row.background_quiet_bps = window_rate_bps(quiet_start[k], at_burst[k], half);
    row.background_during_bps =
        window_rate_bps(at_burst[k], during_end[k], half);
    result.burst_completed += row.completed;
    result.burst_incomplete += row.incomplete;
    result.bursts.push_back(std::move(row));
  }

  result.sim_events = engine.events_executed();
  result.shard_perf = engine.shard_perf();
  result.queue_drops = total_queue_drops(topo);
  return result;
}

}  // namespace numfabric::exp
