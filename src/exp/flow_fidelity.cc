#include "exp/flow_fidelity.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "exp/common.h"
#include "net/routing.h"
#include "num/fluid_fct_oracle.h"
#include "num/utility.h"
#include "sim/random.h"
#include "workload/scenarios.h"

namespace numfabric::exp {
namespace {

flowsim::FlowSimOptions engine_options(double resolve_interval_seconds,
                                       double horizon_seconds,
                                       int solver_threads, bool incremental,
                                       double tolerance = 1e-8) {
  flowsim::FlowSimOptions fs;
  fs.resolve_interval_seconds = resolve_interval_seconds;
  fs.horizon_seconds = horizon_seconds;
  // Default matches the packet experiments' fluid oracle; mega-fct loosens it.
  fs.solver.tolerance = tolerance;
  fs.solver.policy = num::ExecutionPolicy::parallel(solver_threads);
  fs.solver.incremental = incremental;
  return fs;
}

/// Exact-system FCTs for the ideal-rate denominator.  When the engine ran
/// exact its own FCTs *are* the exact system; a grid run pays one extra
/// oracle pass (cheap at the scales that cross-validate against packets).
std::vector<double> exact_fcts(const flowsim::FlowSimResult& run,
                               double resolve_interval_seconds,
                               const std::vector<num::FluidFlow>& fluid_flows,
                               const std::vector<double>& capacities,
                               int solver_threads) {
  if (resolve_interval_seconds <= 0) return run.fct_seconds;
  num::NumSolverOptions solver_options;
  solver_options.tolerance = 1e-8;
  solver_options.policy = num::ExecutionPolicy::parallel(solver_threads);
  return num::fluid_fct_oracle(fluid_flows, capacities, solver_options)
      .fct_seconds;
}

}  // namespace

DynamicWorkloadResult run_dynamic_workload_flow(
    const DynamicWorkloadOptions& options, double resolve_interval_seconds,
    bool incremental) {
  sim::Simulator sim;
  net::Topology topo(sim);
  BuiltFabric built =
      plan_fabric(options.topology, options.jellyfish, options.k_paths);
  materialize_fabric(built, topo, net::drop_tail_factory());
  const std::vector<double> capacities = graph_capacities(built.graph);

  // Identical draw sequence to run_dynamic_workload: same seed, same
  // poisson_flows call, same per-flow ECMP pick — flow i is the same flow on
  // the same path at either fidelity.
  sim::Rng rng(options.seed);
  const auto arrivals =
      workload::poisson_flows(built.mat.hosts, built.host_rate_bps,
                              options.load, *options.sizes, options.flow_count,
                              rng);

  const num::AlphaFairUtility utility(options.alpha);
  std::vector<flowsim::FlowSimFlow> engine_flows;
  engine_flows.reserve(arrivals.size());
  std::vector<num::FluidFlow> fluid_flows;
  fluid_flows.reserve(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& arrival = arrivals[i];
    const auto& paths =
        pair_paths(built, built.host_node.at(arrival.pair.src),
                   built.host_node.at(arrival.pair.dst));

    flowsim::FlowSimFlow flow;
    flow.arrival_seconds = sim::to_seconds(arrival.arrival);
    flow.size_bytes = static_cast<double>(arrival.size_bytes);
    flow.links = paths[net::ecmp_index(paths.size(),
                                       static_cast<net::FlowId>(i + 1))];
    flow.utility = &utility;

    num::FluidFlow fluid;
    fluid.arrival_seconds = flow.arrival_seconds;
    fluid.size_bytes = flow.size_bytes;
    fluid.links = flow.links;
    fluid.utility = &utility;
    fluid_flows.push_back(std::move(fluid));
    engine_flows.push_back(std::move(flow));
  }

  const flowsim::FlowSimResult run = flowsim::run_flow_sim(
      std::move(engine_flows), capacities,
      engine_options(resolve_interval_seconds, sim::to_seconds(options.horizon),
                     options.solver_threads, incremental));
  const std::vector<double> ideal =
      exact_fcts(run, resolve_interval_seconds, fluid_flows, capacities,
                 options.solver_threads);

  DynamicWorkloadResult result;
  result.bdp_bytes =
      built.host_rate_bps * sim::to_seconds(built.base_rtt) / 8.0;
  result.sim_events = 0;
  // Same base-RTT charge as the packet runner applies to its oracle rates —
  // here both the measured and the ideal side are fluid, so both get it.
  const double latency = sim::to_seconds(built.base_rtt);
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    if (run.fct_seconds[i] < 0) {
      ++result.incomplete;
      continue;
    }
    DynamicWorkloadResult::PerFlow row;
    row.size_bytes = arrivals[i].size_bytes;
    row.fct_seconds = run.fct_seconds[i] + latency;
    row.rate_bps = static_cast<double>(row.size_bytes) * 8.0 / row.fct_seconds;
    row.ideal_rate_bps =
        static_cast<double>(row.size_bytes) * 8.0 / (ideal[i] + latency);
    result.flows.push_back(row);
  }
  return result;
}

TrafficResult run_traffic_experiment_flow(const TrafficOptions& options,
                                          double resolve_interval_seconds,
                                          int solver_threads,
                                          bool incremental) {
  sim::Simulator sim;
  net::Topology topo(sim);
  BuiltFabric built =
      plan_fabric(options.topology, options.jellyfish, options.k_paths);
  materialize_fabric(built, topo, net::drop_tail_factory());
  const std::vector<double> capacities = graph_capacities(built.graph);
  const std::vector<net::Host*>& hosts = built.mat.hosts;

  sim::Rng rng(options.seed);
  std::vector<workload::HostPair> pairs;
  switch (options.pattern) {
    case TrafficPattern::kIncast:
      pairs = workload::incast_pairs(hosts, options.incast_fanin, rng);
      break;
    case TrafficPattern::kPermutation:
      pairs = workload::permutation_pairs(hosts, rng);
      break;
    case TrafficPattern::kAllToAll:
      pairs = workload::all_to_all_pairs(hosts);
      break;
  }

  const bool rate_mode = options.flow_size_bytes == 0;
  const num::AlphaFairUtility utility(options.alpha);
  std::vector<std::vector<int>> flow_links;
  flow_links.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& paths = pair_paths(built, built.host_node.at(pairs[i].src),
                                   built.host_node.at(pairs[i].dst));
    flow_links.push_back(
        paths[net::ecmp_index(paths.size(), static_cast<net::FlowId>(i + 1))]);
  }

  TrafficResult result;
  result.flow_count = static_cast<int>(pairs.size());

  if (rate_mode) {
    // Long-running flows never depart: the steady state is one NUM solve.
    num::NumProblem problem;
    problem.capacities = capacities;
    problem.utilities.assign(pairs.size(), &utility);
    problem.flow_links = std::move(flow_links);
    num::CsrProblem csr = num::CsrProblem::compile(problem);
    num::NumWorkspace workspace;
    num::NumSolverOptions solver_options;
    solver_options.tolerance = 1e-8;
    solver_options.policy = num::ExecutionPolicy::parallel(solver_threads);
    num::solve(csr, workspace, solver_options);
    for (const double rate : workspace.rates()) {
      const double rate_bps = rate * num::kRateUnitBps;
      result.flow_rates_bps.push_back(rate_bps);
      result.total_goodput_bps += rate_bps;
    }
    result.jain_index = jain_index(result.flow_rates_bps);
  } else {
    std::vector<flowsim::FlowSimFlow> engine_flows;
    engine_flows.reserve(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      flowsim::FlowSimFlow flow;
      flow.arrival_seconds = 0.0;
      flow.size_bytes = static_cast<double>(options.flow_size_bytes);
      flow.links = std::move(flow_links[i]);
      flow.utility = &utility;
      engine_flows.push_back(std::move(flow));
    }
    const flowsim::FlowSimResult run = flowsim::run_flow_sim(
        std::move(engine_flows), capacities,
        engine_options(resolve_interval_seconds,
                       sim::to_seconds(options.horizon), solver_threads,
                       incremental));
    const double latency_us = sim::to_seconds(built.base_rtt) * 1e6;
    for (const double fct : run.fct_seconds) {
      if (fct < 0) {
        ++result.incomplete;
        continue;
      }
      ++result.completed;
      result.fct_us.push_back(fct * 1e6 + latency_us);
    }
  }

  const double nic = built.host_rate_bps;
  switch (options.pattern) {
    case TrafficPattern::kIncast:
      result.optimal_bps = nic;
      break;
    case TrafficPattern::kPermutation:
      result.optimal_bps = nic * static_cast<double>(pairs.size());
      break;
    case TrafficPattern::kAllToAll:
      result.optimal_bps = nic * static_cast<double>(hosts.size());
      break;
  }
  return result;
}

TraceReplayResult run_trace_replay_flow(const TraceReplayOptions& options,
                                        double resolve_interval_seconds,
                                        int solver_threads,
                                        bool incremental) {
  sim::Simulator sim;
  net::Topology topo(sim);
  BuiltFabric built = plan_fabric(options.topology, std::nullopt, 8);
  materialize_fabric(built, topo, net::drop_tail_factory());
  const std::vector<double> capacities = graph_capacities(built.graph);

  const int host_count = static_cast<int>(built.mat.hosts.size());
  for (std::size_t i = 0; i < options.trace.size(); ++i) {
    const workload::TraceFlow& flow = options.trace[i];
    if (flow.src >= host_count || flow.dst >= host_count) {
      throw std::invalid_argument(
          "trace flow " + std::to_string(i) + ": host " +
          std::to_string(std::max(flow.src, flow.dst)) +
          " is outside the topology (" + std::to_string(host_count) +
          " hosts)");
    }
  }

  const num::AlphaFairUtility utility(options.alpha);
  std::vector<flowsim::FlowSimFlow> engine_flows;
  engine_flows.reserve(options.trace.size());
  for (std::size_t i = 0; i < options.trace.size(); ++i) {
    const workload::TraceFlow& entry = options.trace[i];
    net::Host* src = built.mat.hosts[static_cast<std::size_t>(entry.src)];
    net::Host* dst = built.mat.hosts[static_cast<std::size_t>(entry.dst)];
    const auto& paths =
        pair_paths(built, built.host_node.at(src), built.host_node.at(dst));

    flowsim::FlowSimFlow flow;
    // Round through TimeNs exactly like the packet runner's start_time so
    // both fidelities place the flow at the same instant.
    flow.arrival_seconds = sim::to_seconds(static_cast<sim::TimeNs>(
        entry.arrival_seconds * sim::kSecond + 0.5));
    flow.size_bytes = static_cast<double>(entry.size_bytes);
    flow.links =
        paths[net::ecmp_index(paths.size(), static_cast<net::FlowId>(i + 1))];
    flow.utility = &utility;
    engine_flows.push_back(std::move(flow));
  }

  const flowsim::FlowSimResult run = flowsim::run_flow_sim(
      std::move(engine_flows), capacities,
      engine_options(resolve_interval_seconds, sim::to_seconds(options.horizon),
                     solver_threads, incremental));

  TraceReplayResult result;
  result.sim_events = 0;
  const double latency = sim::to_seconds(built.base_rtt);
  for (std::size_t i = 0; i < options.trace.size(); ++i) {
    TraceReplayResult::PerFlow row;
    row.src = options.trace[i].src;
    row.dst = options.trace[i].dst;
    row.size_bytes = options.trace[i].size_bytes;
    row.arrival_seconds = options.trace[i].arrival_seconds;
    row.completed = run.fct_seconds[i] >= 0;
    if (row.completed) {
      row.fct_seconds = run.fct_seconds[i] + latency;
      ++result.completed;
    } else {
      ++result.incomplete;
    }
    result.flows.push_back(row);
  }
  return result;
}

MegaFctResult run_mega_fct(const MegaFctOptions& options) {
  if (options.resolve_interval_seconds <= 0) {
    throw std::invalid_argument(
        "mega-fct: resolve interval must be > 0 (exact mode is one solve per "
        "departure — unusable at this scale)");
  }
  sim::Rng rng(options.seed);

  // Route + capacity providers.  The leaf-spine fast path stays pure index
  // arithmetic; a jellyfish fabric materializes its k-shortest-path table
  // once and then serves the same interface.
  std::optional<flowsim::VirtualFabric> graph_fabric;
  if (options.jellyfish) {
    graph_fabric = flowsim::VirtualFabric::from_graph(
        net::make_jellyfish(*options.jellyfish), options.k_paths);
  }
  const int hosts =
      graph_fabric ? graph_fabric->hosts() : options.fabric.hosts();
  const std::vector<workload::IndexFlow> batch = workload::batch_index_flows(
      hosts, options.concurrent, *options.sizes, rng);

  const num::AlphaFairUtility utility(options.alpha);
  std::vector<flowsim::FlowSimFlow> engine_flows;
  engine_flows.reserve(batch.size());
  MegaFctResult result;
  result.hosts = hosts;
  result.links =
      graph_fabric ? graph_fabric->links() : options.fabric.links();
  result.size_bytes.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    flowsim::FlowSimFlow flow;
    flow.arrival_seconds = 0.0;
    flow.size_bytes = static_cast<double>(batch[i].size_bytes);
    flow.links = graph_fabric
                     ? graph_fabric->path(batch[i].src, batch[i].dst,
                                          static_cast<std::uint64_t>(i + 1))
                     : options.fabric.path(batch[i].src, batch[i].dst,
                                           static_cast<std::uint64_t>(i + 1));
    flow.utility = &utility;
    engine_flows.push_back(std::move(flow));
    result.size_bytes.push_back(batch[i].size_bytes);
  }

  result.sim = flowsim::run_flow_sim(
      std::move(engine_flows),
      graph_fabric ? graph_fabric->capacities() : options.fabric.capacities(),
      engine_options(options.resolve_interval_seconds, options.horizon_seconds,
                     options.solver_threads, options.incremental,
                     options.solver_tolerance));
  return result;
}

}  // namespace numfabric::exp
