// Bandwidth-function experiments — Fig. 9 and Fig. 10.
//
// Fig. 9: the two Fig. 2 flows share one bottleneck whose capacity sweeps
// 5..35 Gbps; NUMFabric runs the derived utility (Table 1 last row, alpha=5)
// and the measured split is compared with the BwE water-filling allocation.
//
// Fig. 10: bandwidth functions composed with resource pooling on the
// three-link topology; the middle link steps from 5 to 17 Gbps mid-run and
// the aggregate allocations should move (10, 3) -> (15, 10) Gbps.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "transport/fabric.h"

namespace numfabric::exp {

struct BwFuncSweepOptions {
  transport::FabricOptions fabric;
  std::vector<double> capacities_gbps = {5, 10, 15, 20, 25, 30, 35};
  double alpha = 5.0;  // §6.3: alpha ~ 5 approximates the BwE allocation well
  /// §6.2's recipe for extreme alphas: slow the control loops so the rate
  /// estimator smooths over enough samples (alpha = 5 is steep; noise in
  /// R_hat otherwise biases the min-residual and stalls prices early).
  double slowdown = 4.0;
  sim::TimeNs warmup = sim::millis(10);
  sim::TimeNs measure = sim::millis(10);
  sim::TimeNs link_delay = sim::micros(2);
};

struct BwFuncSweepResult {
  struct Row {
    double capacity_gbps = 0;
    double flow1_gbps = 0;  // measured
    double flow2_gbps = 0;
    double expected1_gbps = 0;  // BwE water-filling
    double expected2_gbps = 0;
  };
  std::vector<Row> rows;
};

BwFuncSweepResult run_bwfunc_sweep(const BwFuncSweepOptions& options);

struct BwFuncPoolingOptions {
  transport::FabricOptions fabric;
  double alpha = 5.0;
  /// See BwFuncSweepOptions::slowdown.
  double slowdown = 4.0;
  double middle_before_gbps = 5.0;
  double middle_after_gbps = 17.0;
  sim::TimeNs switch_time = sim::millis(10);
  sim::TimeNs end_time = sim::millis(20);
  sim::TimeNs sample_interval = sim::micros(100);
  sim::TimeNs link_delay = sim::micros(2);
};

struct BwFuncPoolingResult {
  /// (time ms, flow1 aggregate bps, flow2 aggregate bps).
  std::vector<std::tuple<double, double, double>> series;
  /// Steady-state measurements over the tail of each phase.
  double flow1_before_gbps = 0, flow2_before_gbps = 0;
  double flow1_after_gbps = 0, flow2_after_gbps = 0;
  /// Paper-stated expectations: (10, 3) then (15, 10) Gbps.
  double expected1_before_gbps = 10, expected2_before_gbps = 3;
  double expected1_after_gbps = 15, expected2_after_gbps = 10;
};

BwFuncPoolingResult run_bwfunc_pooling(const BwFuncPoolingOptions& options);

}  // namespace numfabric::exp
