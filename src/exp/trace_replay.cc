#include "exp/trace_replay.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/routing.h"
#include "num/utility.h"
#include "sim/simulator.h"

namespace numfabric::exp {

TraceReplayResult run_trace_replay(const TraceReplayOptions& options) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = options.scheme;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::LeafSpine leaf_spine =
      net::build_leaf_spine(topo, options.topology, fabric.queue_factory());
  fabric.attach_agents(topo);

  const int host_count = static_cast<int>(leaf_spine.hosts.size());
  for (std::size_t i = 0; i < options.trace.size(); ++i) {
    const workload::TraceFlow& flow = options.trace[i];
    if (flow.src >= host_count || flow.dst >= host_count) {
      throw std::invalid_argument(
          "trace flow " + std::to_string(i) + ": host " +
          std::to_string(std::max(flow.src, flow.dst)) +
          " is outside the topology (" + std::to_string(host_count) +
          " hosts)");
    }
  }

  const num::AlphaFairUtility utility(options.alpha);
  std::vector<const transport::Flow*> flows;
  flows.reserve(options.trace.size());
  int completed = 0;
  fabric.set_on_complete([&completed](transport::Flow&) { ++completed; });

  for (std::size_t i = 0; i < options.trace.size(); ++i) {
    const workload::TraceFlow& entry = options.trace[i];
    transport::FlowSpec spec;
    spec.src = leaf_spine.hosts[static_cast<std::size_t>(entry.src)];
    spec.dst = leaf_spine.hosts[static_cast<std::size_t>(entry.dst)];
    spec.size_bytes = entry.size_bytes;
    spec.start_time =
        static_cast<sim::TimeNs>(entry.arrival_seconds * sim::kSecond + 0.5);
    spec.utility = &utility;
    const auto paths = net::all_shortest_paths(topo, spec.src, spec.dst);
    spec.path = net::ecmp_pick(paths, static_cast<net::FlowId>(i + 1));
    flows.push_back(fabric.add_flow(std::move(spec)));
  }

  while (completed < static_cast<int>(options.trace.size()) &&
         sim.now() < options.horizon && sim.pending()) {
    sim.run_until(std::min(sim.now() + sim::millis(5), options.horizon));
  }

  TraceReplayResult result;
  result.sim_events = sim.events_executed();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    TraceReplayResult::PerFlow row;
    row.src = options.trace[i].src;
    row.dst = options.trace[i].dst;
    row.size_bytes = options.trace[i].size_bytes;
    row.arrival_seconds = options.trace[i].arrival_seconds;
    row.completed = flows[i]->completed();
    if (row.completed) {
      row.fct_seconds = sim::to_seconds(flows[i]->fct());
      ++result.completed;
    } else {
      ++result.incomplete;
    }
    result.flows.push_back(row);
  }
  return result;
}

}  // namespace numfabric::exp
