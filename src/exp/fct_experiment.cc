#include "exp/fct_experiment.h"

#include <algorithm>
#include <memory>

#include "net/routing.h"
#include "num/utility.h"
#include "stats/summary.h"
#include "workload/scenarios.h"

namespace numfabric::exp {
namespace {

struct SchemeOutcome {
  double mean_norm_fct = 0;
  int completed = 0;
  int incomplete = 0;
};

/// Best possible FCT for `size` on an idle path: serialization at the NIC
/// plus the base round trip (the normalizer in Fig. 7).
double ideal_fct_seconds(std::uint64_t size_bytes, double nic_bps,
                         sim::TimeNs base_rtt) {
  return static_cast<double>(size_bytes) * 8.0 / nic_bps +
         sim::to_seconds(base_rtt);
}

SchemeOutcome run_one(transport::Scheme scheme,
                      const FctExperimentOptions& options, double load) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = scheme;
  if (scheme == transport::Scheme::kNumFabric) {
    // Footnote 7 + §6.2: slow the control loops 2x for epsilon ~ 0.125 and
    // start with an initial window of one BDP like pFabric.
    fabric_options.numfabric =
        fabric_options.numfabric.slowed_down(options.slowdown);
    const double bdp_bytes =
        options.topology.host_rate_bps *
        sim::to_seconds(fabric_options.numfabric.base_rtt) / 8.0;
    fabric_options.numfabric.initial_window_bytes =
        static_cast<std::uint64_t>(bdp_bytes);
    // A flow that has not yet heard a price should act as if the price were
    // ~0; under the steep FCT utility U'^{-1}(0+) saturates at the weight
    // cap.  Starting mice at maximum weight is the NUM analogue of pFabric
    // treating a fresh flow (small remaining size) as top priority — mice
    // finish within their first RTTs, before any price feedback could
    // prioritize them.
    fabric_options.numfabric.initial_weight =
        fabric_options.numfabric.max_weight;
  }
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  const net::LeafSpine leaf_spine =
      net::build_leaf_spine(topo, options.topology, fabric.queue_factory());
  fabric.attach_agents(topo);

  // Same seed for both schemes => identical arrivals, sizes and pairs.
  sim::Rng rng(options.seed);
  const auto arrivals = workload::poisson_flows(
      leaf_spine.hosts, options.topology.host_rate_bps, load,
      workload::websearch_distribution(), options.flow_count, rng);

  std::vector<std::unique_ptr<num::AlphaFairUtility>> utilities;
  utilities.reserve(arrivals.size());
  std::vector<const transport::Flow*> flows;
  flows.reserve(arrivals.size());
  int completed = 0;
  fabric.set_on_complete([&completed](transport::Flow&) { ++completed; });

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& arrival = arrivals[i];
    transport::FlowSpec spec;
    spec.src = arrival.pair.src;
    spec.dst = arrival.pair.dst;
    spec.size_bytes = arrival.size_bytes;
    spec.start_time = arrival.arrival;
    utilities.push_back(num::make_fct_utility(
        static_cast<double>(arrival.size_bytes), options.epsilon));
    spec.utility = utilities.back().get();
    const auto paths =
        net::all_shortest_paths(topo, arrival.pair.src, arrival.pair.dst);
    spec.path = net::ecmp_pick(paths, static_cast<net::FlowId>(i + 1));
    flows.push_back(fabric.add_flow(std::move(spec)));
  }

  while (completed < static_cast<int>(arrivals.size()) &&
         sim.now() < options.horizon && sim.pending()) {
    sim.run_until(std::min(sim.now() + sim::millis(5), options.horizon));
  }

  SchemeOutcome outcome;
  std::vector<double> normalized;
  for (const transport::Flow* flow : flows) {
    if (!flow->completed()) {
      ++outcome.incomplete;
      continue;
    }
    const double ideal = ideal_fct_seconds(flow->spec().size_bytes,
                                           options.topology.host_rate_bps,
                                           leaf_spine.cross_leaf_rtt);
    normalized.push_back(sim::to_seconds(flow->fct()) / ideal);
  }
  outcome.completed = static_cast<int>(normalized.size());
  outcome.mean_norm_fct = normalized.empty() ? 0.0 : stats::mean(normalized);
  return outcome;
}

}  // namespace

FctExperimentResult run_fct_experiment(const FctExperimentOptions& options) {
  FctExperimentResult result;
  for (double load : options.loads) {
    FctExperimentResult::Row row;
    row.load = load;
    const SchemeOutcome numfabric =
        run_one(transport::Scheme::kNumFabric, options, load);
    const SchemeOutcome pfabric =
        run_one(transport::Scheme::kPFabric, options, load);
    row.numfabric_mean_norm_fct = numfabric.mean_norm_fct;
    row.pfabric_mean_norm_fct = pfabric.mean_norm_fct;
    row.numfabric_completed = numfabric.completed;
    row.pfabric_completed = pfabric.completed;
    row.numfabric_incomplete = numfabric.incomplete;
    row.pfabric_incomplete = pfabric.incomplete;
    result.rows.push_back(row);
  }
  return result;
}

}  // namespace numfabric::exp
