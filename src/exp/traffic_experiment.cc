#include "exp/traffic_experiment.h"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "exp/common.h"
#include "net/routing.h"
#include "num/utility.h"
#include "sim/random.h"
#include "transport/receiver.h"
#include "workload/scenarios.h"

namespace numfabric::exp {

const char* traffic_pattern_name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kIncast: return "incast";
    case TrafficPattern::kPermutation: return "permutation";
    case TrafficPattern::kAllToAll: return "all-to-all";
  }
  return "?";
}

TrafficPattern parse_traffic_pattern(const std::string& name) {
  if (name == "incast") return TrafficPattern::kIncast;
  if (name == "permutation") return TrafficPattern::kPermutation;
  if (name == "all-to-all" || name == "shuffle") return TrafficPattern::kAllToAll;
  throw std::invalid_argument("unknown traffic pattern '" + name +
                              "' (expected incast, permutation or all-to-all)");
}

TrafficResult run_traffic_experiment(const TrafficOptions& options) {
  BuiltFabric built = plan_fabric(options.topology, options.jellyfish,
                                  options.k_paths);
  if (options.shards != 1) {
    const std::string obstacle = net::shard_partition_obstacle(built.graph);
    if (!obstacle.empty()) {
      throw std::invalid_argument("--shards=" + std::to_string(options.shards) +
                                  " is not available on this fabric: " + obstacle);
    }
  }
  sim::ShardedSimulator engine(
      net::resolve_shard_count(options.shards, built.tier1_switches));
  sim::Simulator& sim = engine.global();
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = options.scheme;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  // queue_factory(0) falls back to the scheme's edge capacity, so an unset
  // core buffer just mirrors the edge tier.
  materialize_fabric(built, topo, fabric.queue_factory(),
                     fabric.queue_factory(options.core_buffer_bytes));
  fabric.attach_agents(topo);

  ShardSetup sharding;
  apply_sharding(sharding, engine, topo, fabric, built);

  const std::vector<net::Host*>& hosts = built.mat.hosts;
  sim::Rng rng(options.seed);
  std::vector<workload::HostPair> pairs;
  switch (options.pattern) {
    case TrafficPattern::kIncast:
      pairs = workload::incast_pairs(hosts, options.incast_fanin, rng);
      break;
    case TrafficPattern::kPermutation:
      pairs = workload::permutation_pairs(hosts, rng);
      break;
    case TrafficPattern::kAllToAll:
      pairs = workload::all_to_all_pairs(hosts);
      break;
  }

  const bool rate_mode = options.flow_size_bytes == 0;
  const num::AlphaFairUtility utility(options.alpha);
  // Completions fire on the source host's shard worker; the count is the
  // only completion state the coordinator polls mid-run.
  std::atomic<int> completed{0};
  fabric.set_on_complete([&completed](transport::Flow&) {
    completed.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<const transport::Flow*> flows;
  flows.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    transport::FlowSpec spec;
    spec.src = pairs[i].src;
    spec.dst = pairs[i].dst;
    spec.size_bytes = options.flow_size_bytes;
    spec.start_time = 0;
    spec.utility = &utility;
    const auto& paths = pair_paths(built, built.host_node.at(pairs[i].src),
                                   built.host_node.at(pairs[i].dst));
    spec.path = to_packet_path(
        built, paths[net::ecmp_index(paths.size(),
                                     static_cast<net::FlowId>(i + 1))]);
    flows.push_back(fabric.add_flow(std::move(spec)));
  }

  TrafficResult result;
  result.flow_count = static_cast<int>(flows.size());

  if (rate_mode) {
    std::vector<std::uint64_t> start_bytes(flows.size(), 0);
    sim.schedule_at(options.warmup, [&] {
      for (std::size_t i = 0; i < flows.size(); ++i) {
        start_bytes[i] = flows[i]->receiver().total_bytes();
      }
    });
    engine.run_until(options.warmup + options.measure);

    for (std::size_t i = 0; i < flows.size(); ++i) {
      const double rate = window_rate_bps(
          start_bytes[i], flows[i]->receiver().total_bytes(), options.measure);
      result.flow_rates_bps.push_back(rate);
      result.total_goodput_bps += rate;
    }
    result.jain_index = jain_index(result.flow_rates_bps);
  } else {
    while (completed.load(std::memory_order_relaxed) <
               static_cast<int>(flows.size()) &&
           engine.now() < options.horizon && engine.pending()) {
      engine.run_until(std::min(engine.now() + sim::millis(5), options.horizon));
    }
    for (const transport::Flow* flow : flows) {
      if (!flow->completed()) {
        ++result.incomplete;
        continue;
      }
      ++result.completed;
      result.fct_us.push_back(sim::to_micros(flow->fct()));
    }
  }

  const double nic = built.host_rate_bps;
  switch (options.pattern) {
    case TrafficPattern::kIncast:
      result.optimal_bps = nic;
      break;
    case TrafficPattern::kPermutation:
      result.optimal_bps = nic * static_cast<double>(pairs.size());
      break;
    case TrafficPattern::kAllToAll:
      result.optimal_bps = nic * static_cast<double>(hosts.size());
      break;
  }

  result.sim_events = engine.events_executed();
  result.shard_perf = engine.shard_perf();
  for (const auto& link : topo.links()) {
    result.queue_drops += link->queue().drops();
  }
  return result;
}

}  // namespace numfabric::exp
