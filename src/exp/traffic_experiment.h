// Generic traffic-pattern experiment: one leaf-spine fabric, one traffic
// matrix (incast fan-in, permutation, or all-to-all shuffle), any transport
// scheme.
//
// Two modes share the harness:
//  * rate mode (flow_size_bytes == 0): long-running flows, goodput measured
//    over [warmup, warmup + measure] — throughput fraction of the pattern's
//    optimum plus Jain's fairness index;
//  * FCT mode (flow_size_bytes > 0): all flows start at t = 0 (a
//    synchronized burst / shuffle wave) and run to completion or `horizon` —
//    per-flow completion times.
//
// These are the workload families the paper's evaluation implies but the
// seed lacked; they slot every scheme into identical conditions, which is
// exactly what the scenario registry sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/topology.h"
#include "sim/sharded_simulator.h"
#include "transport/fabric.h"

namespace numfabric::exp {

enum class TrafficPattern {
  kIncast,       // fanin senders -> one receiver
  kPermutation,  // random perfect matching (half the hosts send)
  kAllToAll,     // every ordered host pair
};

const char* traffic_pattern_name(TrafficPattern pattern);
/// Parses "incast" / "permutation" / "all-to-all" (alias "shuffle").
/// Throws std::invalid_argument on anything else.
TrafficPattern parse_traffic_pattern(const std::string& name);

struct TrafficOptions {
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  net::LeafSpineOptions topology;
  /// When set, the run uses a jellyfish random-regular fabric instead of the
  /// leaf-spine in `topology`; routes come from the k-shortest-path table
  /// (k_paths per switch pair).  Jellyfish has no leaf/spine cut, so
  /// shards != 1 is rejected with the shard planner's explanation.
  std::optional<net::JellyfishOptions> jellyfish;
  int k_paths = 8;
  transport::FabricOptions fabric;

  TrafficPattern pattern = TrafficPattern::kPermutation;
  /// Core (leaf-spine) per-port buffer override in bytes; 0 = the scheme's
  /// edge buffer.  Oversubscribed cores often want deeper buffers than the
  /// edge tier.
  std::size_t core_buffer_bytes = 0;
  /// Incast only: number of concurrent senders.
  int incast_fanin = 16;
  /// 0 = rate mode (long-running flows); > 0 = FCT mode (bytes per flow).
  std::uint64_t flow_size_bytes = 0;
  /// Utility: alpha-fair (NUMFabric / DGD only; others ignore it).
  double alpha = 1.0;

  sim::TimeNs warmup = sim::millis(8);    // rate mode
  sim::TimeNs measure = sim::millis(12);  // rate mode
  sim::TimeNs horizon = sim::seconds(5);  // FCT mode hard stop
  std::uint64_t seed = 1;

  /// Parallel engine shards (1 = serial; 0 = one per leaf, capped at
  /// cores).  Output is bit-identical for every value.
  int shards = 1;
};

struct TrafficResult {
  int flow_count = 0;

  // Rate mode.
  std::vector<double> flow_rates_bps;  // per flow, unsorted
  double total_goodput_bps = 0;
  /// Pattern-specific optimum: receiver NIC (incast), pairs * NIC
  /// (permutation), hosts * NIC (all-to-all, ingress-bound).
  double optimal_bps = 0;
  double jain_index = 0;  // fairness over flow_rates_bps

  // FCT mode.
  std::vector<double> fct_us;  // completed flows
  int completed = 0;
  int incomplete = 0;

  std::uint64_t sim_events = 0;
  std::uint64_t queue_drops = 0;
  /// Per-shard engine counters; empty when the run was serial.
  std::vector<sim::ShardPerf> shard_perf;
};

TrafficResult run_traffic_experiment(const TrafficOptions& options);

}  // namespace numfabric::exp
