// FCT minimization: NUMFabric (FCT-min utility) vs pFabric — Fig. 7.
//
// Web-search workload swept over loads.  NUMFabric runs the Table 1 row-3
// utility (weight 1/size, exponent epsilon = 0.125) with the paper's two
// accommodations: the system slowed down 2x (small alpha is noise-sensitive,
// §6.2) and an initial window of one BDP (mimicking pFabric, footnote 7).
// FCTs are normalized by the best possible FCT for the flow's size on an
// idle path.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "transport/fabric.h"
#include "workload/size_distribution.h"

namespace numfabric::exp {

struct FctExperimentOptions {
  net::LeafSpineOptions topology;
  transport::FabricOptions fabric;
  std::vector<double> loads = {0.2, 0.4, 0.6, 0.8};
  int flow_count = 2000;
  double epsilon = 0.125;
  double slowdown = 2.0;
  std::uint64_t seed = 1;
  sim::TimeNs horizon = sim::seconds(30);
};

struct FctExperimentResult {
  struct Row {
    double load = 0;
    double numfabric_mean_norm_fct = 0;
    double pfabric_mean_norm_fct = 0;
    int numfabric_completed = 0;
    int pfabric_completed = 0;
    int numfabric_incomplete = 0;
    int pfabric_incomplete = 0;
  };
  std::vector<Row> rows;
};

FctExperimentResult run_fct_experiment(const FctExperimentOptions& options);

}  // namespace numfabric::exp
