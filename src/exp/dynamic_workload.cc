#include "exp/dynamic_workload.h"

#include <memory>
#include <stdexcept>

#include "exp/common.h"
#include "net/routing.h"
#include "num/fluid_fct_oracle.h"
#include "num/utility.h"
#include "workload/scenarios.h"

namespace numfabric::exp {

const char* const kBdpBinLabels[5] = {"(0-5)", "(5-10)", "(10-100)", "(100-1K)",
                                      "(1K-10K)"};

int bdp_bin(double size_bytes, double bdp_bytes) {
  const double bdps = size_bytes / bdp_bytes;
  if (bdps <= 5) return 0;
  if (bdps <= 10) return 1;
  if (bdps <= 100) return 2;
  if (bdps <= 1000) return 3;
  if (bdps <= 10000) return 4;
  return -1;
}

DynamicWorkloadResult run_dynamic_workload(const DynamicWorkloadOptions& options) {
  sim::Simulator sim;
  transport::FabricOptions fabric_options = options.fabric;
  fabric_options.scheme = options.scheme;
  transport::Fabric fabric(sim, fabric_options);
  net::Topology topo(sim);
  BuiltFabric built =
      plan_fabric(options.topology, options.jellyfish, options.k_paths);
  materialize_fabric(built, topo, fabric.queue_factory());
  fabric.attach_agents(topo);
  const LinkIndexer indexer(topo);

  sim::Rng rng(options.seed);
  const auto arrivals =
      workload::poisson_flows(built.mat.hosts, built.host_rate_bps,
                              options.load, *options.sizes, options.flow_count, rng);

  const num::AlphaFairUtility utility(options.alpha);

  // Launch the packet-level flows and, in parallel, assemble the fluid
  // oracle's input (same arrivals, same paths).
  std::vector<num::FluidFlow> fluid_flows;
  fluid_flows.reserve(arrivals.size());
  std::vector<const transport::Flow*> flows;
  flows.reserve(arrivals.size());
  int completed = 0;
  fabric.set_on_complete([&completed](transport::Flow&) { ++completed; });

  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    const auto& arrival = arrivals[i];
    transport::FlowSpec spec;
    spec.src = arrival.pair.src;
    spec.dst = arrival.pair.dst;
    spec.size_bytes = arrival.size_bytes;
    spec.start_time = arrival.arrival;
    spec.utility = &utility;
    const auto& paths = pair_paths(built, built.host_node.at(arrival.pair.src),
                                   built.host_node.at(arrival.pair.dst));
    const auto& picked =
        paths[net::ecmp_index(paths.size(), static_cast<net::FlowId>(i + 1))];
    spec.path = to_packet_path(built, picked);

    num::FluidFlow fluid;
    fluid.arrival_seconds = sim::to_seconds(arrival.arrival);
    fluid.size_bytes = static_cast<double>(arrival.size_bytes);
    fluid.links = picked;  // graph link ids == LinkIndexer indices
    fluid.utility = &utility;
    fluid_flows.push_back(std::move(fluid));

    flows.push_back(fabric.add_flow(std::move(spec)));
  }

  // Run until everything finishes (or the horizon hits).
  while (completed < static_cast<int>(arrivals.size()) &&
         sim.now() < options.horizon && sim.pending()) {
    sim.run_until(std::min(sim.now() + sim::millis(5), options.horizon));
  }

  // Fluid oracle: ideal FCT per flow.
  num::NumSolverOptions solver_options;
  solver_options.tolerance = 1e-8;
  solver_options.policy = num::ExecutionPolicy::parallel(options.solver_threads);
  const num::FluidFctResult oracle =
      num::fluid_fct_oracle(fluid_flows, indexer.capacities(), solver_options);

  DynamicWorkloadResult result;
  result.bdp_bytes =
      built.host_rate_bps * sim::to_seconds(built.base_rtt) / 8.0;
  result.sim_events = sim.events_executed();
  // The fluid oracle has no propagation delay; every real flow pays at
  // least one fabric traversal.  Charging the oracle the base RTT keeps the
  // "ideal rate" meaningful for flows of a few packets (otherwise the
  // smallest bin shows every scheme at deviation ~ -1 regardless of merit).
  const double oracle_latency = sim::to_seconds(built.base_rtt);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!flows[i]->completed()) {
      ++result.incomplete;
      continue;
    }
    DynamicWorkloadResult::PerFlow row;
    row.size_bytes = flows[i]->spec().size_bytes;
    row.fct_seconds = sim::to_seconds(flows[i]->fct());
    row.rate_bps = static_cast<double>(row.size_bytes) * 8.0 / row.fct_seconds;
    row.ideal_rate_bps = static_cast<double>(row.size_bytes) * 8.0 /
                         (oracle.fct_seconds[i] + oracle_latency);
    result.flows.push_back(row);
  }
  return result;
}

}  // namespace numfabric::exp
