#include "exp/semi_dynamic.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <stdexcept>

#include "exp/common.h"
#include "net/routing.h"
#include "num/num_solver.h"
#include "num/utility.h"
#include "num/waterfill.h"
#include "stats/ewma.h"
#include "transport/receiver.h"
#include "transport/sender_base.h"
#include "workload/scenarios.h"

namespace numfabric::exp {
namespace {

using transport::Flow;

/// One random host pair with a fixed ECMP-chosen route; flows started on the
/// slot are long-running until a stop event hits them.
struct PathSlot {
  workload::HostPair pair;
  net::Path path;
  Flow* flow = nullptr;  // active flow, if any
};

class Driver {
 public:
  explicit Driver(const SemiDynamicOptions& options)
      : options_(options),
        engine_(net::resolve_shard_count(options.shards,
                                         options.topology.num_leaves)),
        fabric_(sim_, patched_fabric_options(options)),
        topo_(sim_),
        rng_(options.seed),
        utility_(options.alpha) {}

  SemiDynamicResult run();

 private:
  static transport::FabricOptions patched_fabric_options(
      const SemiDynamicOptions& options) {
    transport::FabricOptions fabric = options.fabric;
    fabric.scheme = options.scheme;
    return fabric;
  }

  void build_network();
  void start_slot(std::size_t slot_index);
  void stop_slot(std::size_t slot_index);
  std::vector<const Flow*> active_flows() const;
  std::vector<double> oracle_targets_bps();
  void begin_measurement(bool record);
  void apply_event();
  void schedule_trace_sampler();

  SemiDynamicOptions options_;
  // The engine owns the worker threads and every shard queue; it is declared
  // (and thus destroyed) around everything that schedules into it.  All
  // Driver events run on the global stream — only packet forwarding shards.
  sim::ShardedSimulator engine_;
  ShardSetup sharding_;
  sim::Simulator& sim_ = engine_.global();
  transport::Fabric fabric_;
  net::Topology topo_;
  sim::Rng rng_;
  num::AlphaFairUtility utility_;

  net::LeafSpine leaf_spine_;
  std::unique_ptr<LinkIndexer> indexer_;
  std::vector<PathSlot> slots_;
  std::vector<std::size_t> active_;    // slot indices
  std::vector<std::size_t> inactive_;  // slot indices
  std::size_t tracked_slot_ = 0;       // never stopped; traced in Fig. 4(b,c)

  std::unique_ptr<stats::ConvergenceDetector> detector_;
  std::vector<double> warm_prices_;  // oracle warm start between events
  num::NumWorkspace solver_workspace_;
  int events_fired_ = 0;
  SemiDynamicResult result_;
  /// Self-rescheduling sampler closures.  Owned here (not by shared_ptr
  /// self-capture, which forms a reference cycle and leaks): the Driver
  /// outlives the simulation, so closures can reschedule through a plain
  /// pointer into this list.
  std::vector<std::unique_ptr<std::function<void()>>> samplers_;
};

void Driver::build_network() {
  leaf_spine_ = net::build_leaf_spine(topo_, options_.topology,
                                      fabric_.queue_factory());
  fabric_.attach_agents(topo_);
  apply_sharding(sharding_, engine_, topo_, fabric_, leaf_spine_,
                 options_.topology);
  indexer_ = std::make_unique<LinkIndexer>(topo_);

  const auto pairs =
      workload::random_pairs(leaf_spine_.hosts, options_.num_paths, rng_);
  slots_.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    PathSlot slot;
    slot.pair = pairs[i];
    const auto paths = net::all_shortest_paths(topo_, pairs[i].src, pairs[i].dst);
    if (paths.empty()) throw std::logic_error("semi-dynamic: no path");
    slot.path = net::ecmp_pick(paths, static_cast<net::FlowId>(i));
    slots_.push_back(std::move(slot));
  }

  // Initial active set: the first `initial_active` slots of a random
  // permutation; slot 0 of that permutation is the traced flow and is kept
  // running for the whole experiment.
  const auto order = rng_.permutation(slots_.size());
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k < static_cast<std::size_t>(options_.initial_active)) {
      start_slot(order[k]);
    } else {
      inactive_.push_back(order[k]);
    }
  }
  tracked_slot_ = order.front();
}

void Driver::start_slot(std::size_t slot_index) {
  PathSlot& slot = slots_[slot_index];
  transport::FlowSpec spec;
  spec.src = slot.pair.src;
  spec.dst = slot.pair.dst;
  spec.size_bytes = 0;  // long-running
  spec.start_time = sim_.now();
  spec.utility = &utility_;
  spec.path = slot.path;
  slot.flow = fabric_.add_flow(std::move(spec));
  active_.push_back(slot_index);
}

void Driver::stop_slot(std::size_t slot_index) {
  PathSlot& slot = slots_[slot_index];
  if (slot.flow == nullptr) throw std::logic_error("stop_slot: slot not active");
  fabric_.stop_flow(*slot.flow);
  slot.flow = nullptr;
  active_.erase(std::find(active_.begin(), active_.end(), slot_index));
  inactive_.push_back(slot_index);
}

std::vector<const Flow*> Driver::active_flows() const {
  std::vector<const Flow*> flows;
  flows.reserve(active_.size());
  for (std::size_t slot_index : active_) flows.push_back(slots_[slot_index].flow);
  return flows;
}

std::vector<double> Driver::oracle_targets_bps() {
  const auto flows = active_flows();
  std::vector<double> targets(flows.size());
  if (options_.use_maxmin_targets) {
    // Expected allocation for DCTCP-style fairness: plain (weight-1) max-min.
    num::WaterfillProblem problem;
    problem.capacities = indexer_->capacities();
    problem.weights.assign(flows.size(), 1.0);
    for (const Flow* flow : flows) {
      problem.flow_links.push_back(indexer_->path_indices(flow->spec().path));
    }
    const auto allocation = num::weighted_max_min(problem);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      targets[i] = num::to_bps(allocation.rates[i]);
    }
    return targets;
  }
  // The active set changes every event, so the problem is recompiled in
  // active order (the legacy summation order — keeps the convergence golden
  // hash stable); the workspace and the explicit warm prices persist across
  // events, making each re-solve warm and allocation-free.
  const num::NumProblem problem = make_num_problem(*indexer_, flows);
  const num::CsrProblem csr = num::CsrProblem::compile(problem);
  num::NumSolverOptions solver_options;
  solver_options.tolerance = 1e-10;
  solver_options.initial_prices = warm_prices_;  // empty on the first event
  solver_options.policy = num::ExecutionPolicy::parallel(options_.solver_threads);
  num::solve(csr, solver_workspace_, solver_options);
  warm_prices_.assign(solver_workspace_.prices().begin(),
                      solver_workspace_.prices().end());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    targets[i] = num::to_bps(solver_workspace_.rates()[i]);
  }
  return targets;
}

void Driver::begin_measurement(bool record) {
  const std::vector<double> targets = oracle_targets_bps();

  // Record the tracked flow's expected rate step (Fig. 4b/c red line).
  const auto flows = active_flows();
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i] == slots_[tracked_slot_].flow) {
      result_.expected_steps.emplace_back(sim::to_millis(sim_.now()), targets[i]);
      break;
    }
  }

  if (options_.fixed_event_interval > 0) {
    // Trace mode without convergence gating (DCTCP): fire the next event on
    // a fixed timer.
    sim_.schedule_in(options_.fixed_event_interval, [this] { apply_event(); });
    return;
  }

  stats::ConvergenceOptions conv = options_.convergence;
  conv.filter_rise_time =
      stats::Ewma::rise_time(options_.fabric.receiver_rate_tau, 0.9);
  auto flows_copy = flows;
  detector_ = std::make_unique<stats::ConvergenceDetector>(
      targets,
      [flows_copy] {
        std::vector<double> rates;
        rates.reserve(flows_copy.size());
        for (const Flow* flow : flows_copy) {
          rates.push_back(flow->attached() ? flow->receiver().rate_bps() : 0.0);
        }
        return rates;
      },
      conv);

  const sim::TimeNs event_time = sim_.now();
  auto* sampler =
      samplers_.emplace_back(std::make_unique<std::function<void()>>()).get();
  *sampler = [this, sampler, event_time, record] {
    if (!detector_->sample(sim_.now())) {
      sim_.schedule_in(options_.convergence.sample_interval, *sampler);
      return;
    }
    if (record) {
      ++result_.events_measured;
      if (detector_->converged()) {
        ++result_.events_converged;
        result_.convergence_times_us.push_back(
            sim::to_micros(detector_->convergence_time(event_time)));
      }
    }
    sim_.schedule_in(options_.event_gap, [this] { apply_event(); });
  };
  sim_.schedule_in(options_.convergence.sample_interval, *sampler);
}

void Driver::apply_event() {
  if (events_fired_ >= options_.num_events) {
    sim_.stop();
    return;
  }
  ++events_fired_;

  const int batch = options_.flows_per_event;
  const int active_count = static_cast<int>(active_.size());
  bool do_start;
  if (active_count + batch > options_.max_active) {
    do_start = false;
  } else if (active_count - batch < options_.min_active) {
    do_start = true;
  } else {
    do_start = rng_.uniform() < 0.5;
  }

  if (do_start) {
    for (int k = 0; k < batch && !inactive_.empty(); ++k) {
      const std::size_t pick = rng_.index(inactive_.size());
      const std::size_t slot_index = inactive_[pick];
      inactive_[pick] = inactive_.back();
      inactive_.pop_back();
      start_slot(slot_index);
    }
  } else {
    for (int k = 0; k < batch; ++k) {
      // Stop a random active slot, never the traced one.
      std::size_t pick = rng_.index(active_.size());
      if (active_[pick] == tracked_slot_) pick = (pick + 1) % active_.size();
      stop_slot(active_[pick]);
    }
  }
  begin_measurement(/*record=*/true);
}

void Driver::schedule_trace_sampler() {
  auto* sampler =
      samplers_.emplace_back(std::make_unique<std::function<void()>>()).get();
  *sampler = [this, sampler] {
    const Flow* flow = slots_[tracked_slot_].flow;
    const double rate = (flow != nullptr && flow->attached())
                            ? flow->receiver().rate_bps()
                            : 0.0;
    result_.trace.emplace_back(sim::to_millis(sim_.now()), rate);
    sim_.schedule_in(options_.trace_sample_interval, *sampler);
  };
  sim_.schedule_in(options_.trace_sample_interval, *sampler);
}

SemiDynamicResult Driver::run() {
  build_network();
  if (options_.record_trace) schedule_trace_sampler();
  // Let the initial flow population settle, unrecorded, then run events.
  begin_measurement(/*record=*/false);
  engine_.run();

  result_.sim_events = engine_.events_executed();
  result_.shard_perf = engine_.shard_perf();
  for (const auto& link : topo_.links()) {
    result_.total_queue_drops += link->queue().drops();
  }
  return result_;
}

}  // namespace

SemiDynamicResult run_semi_dynamic(const SemiDynamicOptions& options) {
  Driver driver(options);
  return driver.run();
}

}  // namespace numfabric::exp
