// Dynamic (Poisson) workload experiment — Fig. 5.
//
// Flows arrive as a Poisson process with sizes from a measured-workload CDF
// and are scored against the fluid Oracle that assigns every flow its
// optimal NUM rate instantaneously: normalized deviation
// (rate_X - idealRate) / idealRate per BDP-relative size bin.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "transport/fabric.h"
#include "workload/size_distribution.h"

namespace numfabric::exp {

struct DynamicWorkloadOptions {
  transport::Scheme scheme = transport::Scheme::kNumFabric;
  net::LeafSpineOptions topology;
  /// When set the workload runs on a jellyfish fabric (k-shortest routes)
  /// instead of the leaf-spine in `topology`.
  std::optional<net::JellyfishOptions> jellyfish;
  int k_paths = 8;
  transport::FabricOptions fabric;

  const workload::SizeDistribution* sizes = &workload::websearch_distribution();
  /// Offered load as a fraction of aggregate host NIC capacity.  The paper
  /// does not state Fig. 5's load; we use 0.6 (see EXPERIMENTS.md).
  double load = 0.6;
  int flow_count = 2000;
  double alpha = 1.0;  // proportional fairness
  /// Threads for the fluid oracle's NUM re-solves (bit-identical for any
  /// value; >1 uses the wave-parallel execution policy).
  int solver_threads = 1;
  std::uint64_t seed = 1;
  /// Hard stop; flows not finished by then are reported as incomplete.
  sim::TimeNs horizon = sim::seconds(20);
};

struct DynamicWorkloadResult {
  struct PerFlow {
    std::uint64_t size_bytes = 0;
    double fct_seconds = 0;
    double rate_bps = 0;        // size / measured FCT
    double ideal_rate_bps = 0;  // size / oracle FCT
  };
  std::vector<PerFlow> flows;  // completed flows only
  int incomplete = 0;
  double bdp_bytes = 0;  // for size binning
  std::uint64_t sim_events = 0;
};

DynamicWorkloadResult run_dynamic_workload(const DynamicWorkloadOptions& options);

/// Fig. 5's bins, in BDP multiples: (0-5], (5-10], (10-100], (100-1K],
/// (1K-10K].  Returns the bin index for a flow size, or -1 if beyond.
int bdp_bin(double size_bytes, double bdp_bytes);
extern const char* const kBdpBinLabels[5];

}  // namespace numfabric::exp
