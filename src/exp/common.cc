#include "exp/common.h"

#include <cstdlib>
#include <stdexcept>

#include "num/utility.h"

namespace numfabric::exp {

void apply_sharding(ShardSetup& setup, sim::ShardedSimulator& engine,
                    net::Topology& topo, transport::Fabric& fabric,
                    const net::LeafSpine& leaf_spine,
                    const net::LeafSpineOptions& topology) {
  if (!engine.sharded()) return;
  setup.plan =
      net::build_leaf_shard_plan(leaf_spine, topology, engine.num_shards());
  engine.set_lookahead(setup.plan.lookahead);
  setup.router = std::make_unique<net::ShardRouter>(engine);
  net::apply_shard_plan(topo, setup.plan, engine, *setup.router);
  fabric.set_sharding(&setup.plan, &engine);
}

LinkIndexer::LinkIndexer(const net::Topology& topo) {
  int next = 0;
  for (const auto& link : topo.links()) {
    index_[link.get()] = next++;
    capacities_.push_back(num::to_rate_units(link->rate_bps()));
  }
}

int LinkIndexer::index(const net::Link* link) const {
  auto it = index_.find(link);
  if (it == index_.end()) throw std::invalid_argument("LinkIndexer: unknown link");
  return it->second;
}

std::vector<int> LinkIndexer::path_indices(const net::Path& path) const {
  std::vector<int> out;
  out.reserve(path.links.size());
  for (const net::Link* link : path.links) out.push_back(index(link));
  return out;
}

num::NumProblem make_num_problem(
    const LinkIndexer& indexer, const std::vector<const transport::Flow*>& flows) {
  num::NumProblem problem;
  problem.capacities = indexer.capacities();
  problem.utilities.reserve(flows.size());
  problem.flow_links.reserve(flows.size());
  for (const transport::Flow* flow : flows) {
    if (flow->spec().utility == nullptr) {
      throw std::invalid_argument("make_num_problem: flow without utility");
    }
    problem.utilities.push_back(flow->spec().utility);
    problem.flow_links.push_back(indexer.path_indices(flow->spec().path));
  }
  return problem;
}

double window_rate_bps(std::uint64_t start_bytes, std::uint64_t end_bytes,
                       sim::TimeNs window) {
  if (window <= 0) throw std::invalid_argument("window_rate_bps: empty window");
  return static_cast<double>(end_bytes - start_bytes) * 8.0 / sim::to_seconds(window);
}

double jain_index(const std::vector<double>& rates) {
  double sum = 0, sum_sq = 0;
  for (const double rate : rates) {
    sum += rate;
    sum_sq += rate * rate;
  }
  return sum_sq > 0 ? (sum * sum) / (static_cast<double>(rates.size()) * sum_sq)
                    : 0.0;
}

Scale quick_scale() { return Scale{}; }

Scale full_scale() {
  Scale scale;
  scale.full = true;
  scale.label = "full";
  scale.hosts_per_leaf = 16;
  scale.leaves = 8;
  scale.spines = 4;
  scale.num_paths = 1000;
  scale.initial_active = 400;
  scale.flows_per_event = 100;
  scale.num_events = 100;
  scale.min_active = 300;
  scale.max_active = 500;
  scale.convergence_timeout = sim::millis(50);
  scale.dynamic_flow_count = 10'000;
  scale.pooling_leaves = 8;
  scale.pooling_spines = 16;
  scale.pooling_hosts_per_leaf = 16;
  scale.warmup = sim::millis(10);
  scale.measure = sim::millis(20);
  return scale;
}

Scale scale_from_env() {
  const char* env = std::getenv("NUMFABRIC_FULL");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') return full_scale();
  return quick_scale();
}

}  // namespace numfabric::exp
