#include "exp/common.h"

#include <cstdlib>
#include <stdexcept>

#include "net/routing.h"
#include "num/utility.h"

namespace numfabric::exp {

namespace {

void install_shard_plan(ShardSetup& setup, sim::ShardedSimulator& engine,
                        net::Topology& topo, transport::Fabric& fabric) {
  engine.set_lookahead(setup.plan.lookahead);
  setup.router = std::make_unique<net::ShardRouter>(engine);
  net::apply_shard_plan(topo, setup.plan, engine, *setup.router);
  fabric.set_sharding(&setup.plan, &engine);
}

}  // namespace

void apply_sharding(ShardSetup& setup, sim::ShardedSimulator& engine,
                    net::Topology& topo, transport::Fabric& fabric,
                    const net::LeafSpine& leaf_spine,
                    const net::LeafSpineOptions& topology) {
  if (!engine.sharded()) return;
  setup.plan =
      net::build_leaf_shard_plan(leaf_spine, topology, engine.num_shards());
  install_shard_plan(setup, engine, topo, fabric);
}

void apply_sharding(ShardSetup& setup, sim::ShardedSimulator& engine,
                    net::Topology& topo, transport::Fabric& fabric,
                    const BuiltFabric& built) {
  if (!engine.sharded()) return;
  setup.plan =
      net::build_shard_plan(built.graph, built.mat, engine.num_shards());
  install_shard_plan(setup, engine, topo, fabric);
}

BuiltFabric plan_fabric(const net::LeafSpineOptions& leaf_spine,
                        const std::optional<net::JellyfishOptions>& jellyfish,
                        int k_paths) {
  BuiltFabric fabric;
  fabric.k_paths = k_paths;
  if (jellyfish.has_value()) {
    fabric.jellyfish = true;
    fabric.graph = net::make_jellyfish(*jellyfish);
    fabric.base_rtt = net::base_rtt(fabric.graph);
    fabric.host_rate_bps = jellyfish->host_rate_bps;
    fabric.tier1_switches = jellyfish->switches;
  } else {
    fabric.graph = net::make_leaf_spine(leaf_spine);
    fabric.base_rtt = net::leaf_spine_cross_rtt(leaf_spine);
    fabric.host_rate_bps = leaf_spine.host_rate_bps;
    fabric.tier1_switches = leaf_spine.num_leaves;
  }
  return fabric;
}

void materialize_fabric(BuiltFabric& fabric, net::Topology& topo,
                        const net::QueueFactory& edge_queue,
                        const net::QueueFactory& core_queue) {
  fabric.mat = topo.materialize(fabric.graph, edge_queue, core_queue);
  fabric.host_node.reserve(fabric.mat.hosts.size());
  int host_index = 0;
  for (int n = 0; n < fabric.graph.num_nodes(); ++n) {
    if (fabric.graph.nodes()[static_cast<std::size_t>(n)].kind ==
        net::GraphNodeKind::kHost) {
      fabric.host_node[fabric.mat.hosts[static_cast<std::size_t>(host_index++)]] = n;
    }
  }
}

const std::vector<std::vector<int>>& pair_paths(BuiltFabric& fabric,
                                                int src_node, int dst_node) {
  auto [it, fresh] = fabric.path_cache.try_emplace({src_node, dst_node});
  if (fresh) {
    it->second = fabric.jellyfish
                     ? net::k_shortest_paths(
                           fabric.graph, src_node, dst_node,
                           static_cast<std::size_t>(fabric.k_paths))
                     : net::all_shortest_paths(fabric.graph, src_node, dst_node);
    if (it->second.empty()) {
      throw std::runtime_error(
          "pair_paths: no route between graph nodes " +
          std::to_string(src_node) + " and " + std::to_string(dst_node));
    }
  }
  return it->second;
}

net::Path to_packet_path(const BuiltFabric& fabric,
                         const std::vector<int>& links) {
  net::Path path;
  path.links.reserve(links.size());
  for (const int link : links) {
    path.links.push_back(fabric.mat.links[static_cast<std::size_t>(link)]);
  }
  return path;
}

std::vector<double> graph_capacities(const net::FabricGraph& graph) {
  std::vector<double> caps;
  caps.reserve(static_cast<std::size_t>(graph.num_links()));
  for (int link = 0; link < graph.num_links(); ++link) {
    caps.push_back(num::to_rate_units(graph.link_rate_bps(link)));
  }
  return caps;
}

LinkIndexer::LinkIndexer(const net::Topology& topo) {
  int next = 0;
  for (const auto& link : topo.links()) {
    index_[link.get()] = next++;
    capacities_.push_back(num::to_rate_units(link->rate_bps()));
  }
}

int LinkIndexer::index(const net::Link* link) const {
  auto it = index_.find(link);
  if (it == index_.end()) throw std::invalid_argument("LinkIndexer: unknown link");
  return it->second;
}

std::vector<int> LinkIndexer::path_indices(const net::Path& path) const {
  std::vector<int> out;
  out.reserve(path.links.size());
  for (const net::Link* link : path.links) out.push_back(index(link));
  return out;
}

num::NumProblem make_num_problem(
    const LinkIndexer& indexer, const std::vector<const transport::Flow*>& flows) {
  num::NumProblem problem;
  problem.capacities = indexer.capacities();
  problem.utilities.reserve(flows.size());
  problem.flow_links.reserve(flows.size());
  for (const transport::Flow* flow : flows) {
    if (flow->spec().utility == nullptr) {
      throw std::invalid_argument("make_num_problem: flow without utility");
    }
    problem.utilities.push_back(flow->spec().utility);
    problem.flow_links.push_back(indexer.path_indices(flow->spec().path));
  }
  return problem;
}

double window_rate_bps(std::uint64_t start_bytes, std::uint64_t end_bytes,
                       sim::TimeNs window) {
  if (window <= 0) throw std::invalid_argument("window_rate_bps: empty window");
  return static_cast<double>(end_bytes - start_bytes) * 8.0 / sim::to_seconds(window);
}

double jain_index(const std::vector<double>& rates) {
  double sum = 0, sum_sq = 0;
  for (const double rate : rates) {
    sum += rate;
    sum_sq += rate * rate;
  }
  return sum_sq > 0 ? (sum * sum) / (static_cast<double>(rates.size()) * sum_sq)
                    : 0.0;
}

Scale quick_scale() { return Scale{}; }

Scale full_scale() {
  Scale scale;
  scale.full = true;
  scale.label = "full";
  scale.hosts_per_leaf = 16;
  scale.leaves = 8;
  scale.spines = 4;
  scale.num_paths = 1000;
  scale.initial_active = 400;
  scale.flows_per_event = 100;
  scale.num_events = 100;
  scale.min_active = 300;
  scale.max_active = 500;
  scale.convergence_timeout = sim::millis(50);
  scale.dynamic_flow_count = 10'000;
  scale.pooling_leaves = 8;
  scale.pooling_spines = 16;
  scale.pooling_hosts_per_leaf = 16;
  scale.warmup = sim::millis(10);
  scale.measure = sim::millis(20);
  return scale;
}

Scale scale_from_env() {
  const char* env = std::getenv("NUMFABRIC_FULL");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') return full_scale();
  return quick_scale();
}

}  // namespace numfabric::exp
