// A growable FIFO ring over a flat power-of-two array.
//
// std::deque allocates and frees fixed-size blocks as a steady FIFO stream
// walks through memory, so even a bounded-depth queue keeps the allocator on
// the hot path.  This ring reuses one contiguous slab: after it has grown to
// the workload's high-water mark, push/pop cycles are pure index arithmetic.
// Growth (the only allocation) is counted in
// SubstrateStats::allocs_packet_pool, which is how the zero-allocation
// steady-state guarantee is measured.
//
// T must be default-constructible and movable (Packet and friends are).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/substrate_stats.h"

namespace numfabric::util {

template <typename T>
class RingBuffer {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return slots_.size(); }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }

  void push_back(T&& value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --count_;
  }

 private:
  void grow() {
    ++sim::substrate_stats().allocs_packet_pool;
    const std::size_t new_capacity = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> bigger(new_capacity);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
    mask_ = new_capacity - 1;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace numfabric::util
