// Generic d-ary min-heap sift primitives over a std::vector.
//
// A 4-ary layout halves tree depth versus the std:: binary-heap algorithms
// and keeps each node's children in one cache line, which is what the event
// queue and WFQ scheduler spend their time traversing.  The `on_move`
// callback fires for every element that lands in a new position (including
// the sifted element's final slot) so callers that index into the heap —
// the event queue's cancellable entries — can maintain back-pointers; plain
// heaps pass a no-op.
//
// `before(a, b)` must be a strict weak ordering; the element at `pos` is the
// only one allowed to violate the heap property on entry.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace numfabric::util {

inline constexpr std::size_t kHeapArity = 4;

template <typename T, typename Before, typename OnMove>
void dary_sift_up(std::vector<T>& heap, std::size_t pos, Before before,
                  OnMove on_move) {
  T moving = std::move(heap[pos]);
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / kHeapArity;
    if (!before(moving, heap[parent])) break;
    heap[pos] = std::move(heap[parent]);
    on_move(heap[pos], pos);
    pos = parent;
  }
  heap[pos] = std::move(moving);
  on_move(heap[pos], pos);
}

// Removes heap[0] (bottom-up pop): the hole is promoted to a leaf by moving
// the best child up at each level — no compare against a sifting element —
// then the last element drops into the hole and sifts up, which for a
// just-removed leaf almost always terminates immediately.  Fewer comparisons
// than the classic move-last-to-root-and-sift-down on pop-heavy workloads.
template <typename T, typename Before, typename OnMove>
void dary_pop_root(std::vector<T>& heap, Before before, OnMove on_move) {
  const std::size_t size = heap.size() - 1;  // logical size after the pop
  if (size == 0) {
    heap.pop_back();
    return;
  }
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first_child = hole * kHeapArity + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kHeapArity, size);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap[c], heap[best])) best = c;
    }
    heap[hole] = std::move(heap[best]);
    on_move(heap[hole], hole);
    hole = best;
  }
  if (hole != size) {
    heap[hole] = std::move(heap[size]);
    on_move(heap[hole], hole);
  }
  heap.pop_back();
  if (hole != heap.size()) {
    dary_sift_up(heap, hole, before, on_move);
  }
}

template <typename T, typename Before, typename OnMove>
void dary_sift_down(std::vector<T>& heap, std::size_t pos, Before before,
                    OnMove on_move) {
  const std::size_t size = heap.size();
  T moving = std::move(heap[pos]);
  for (;;) {
    const std::size_t first_child = pos * kHeapArity + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t last_child =
        std::min(first_child + kHeapArity, size);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap[c], heap[best])) best = c;
    }
    if (!before(heap[best], moving)) break;
    heap[pos] = std::move(heap[best]);
    on_move(heap[pos], pos);
    pos = best;
  }
  heap[pos] = std::move(moving);
  on_move(heap[pos], pos);
}

// Heapifies the whole vector in O(n) (Floyd): sift_down from the last parent
// to the root.  Used to repair a heap after a batch of raw appends — cheaper
// than per-append sift_up when the batch is a sizable fraction of the heap.
template <typename T, typename Before, typename OnMove>
void dary_make_heap(std::vector<T>& heap, Before before, OnMove on_move) {
  if (heap.size() < 2) return;
  for (std::size_t i = (heap.size() - 2) / kHeapArity + 1; i-- > 0;) {
    dary_sift_down(heap, i, before, on_move);
  }
}

}  // namespace numfabric::util
