// A fixed-size thread pool with one operation: run fn(0..count-1) across the
// workers and block until every call returns.  Built for the sweep engine
// (tasks are coarse — one simulator run each) and reused by the NUM solver's
// parallel execution policy and the control plane's parallel link sweep
// (tasks are pre-chunked so the single claim cursor stays cheap).
//
// Tasks must not throw: each sweep run catches its own exceptions and folds
// them into its status row.  A throw escaping fn terminates the process
// (std::terminate via the worker thread), which is the loud failure we want
// for engine bugs as opposed to scenario errors.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace numfabric::util {

class WorkerPool {
 public:
  /// jobs < 1 is clamped to 1; jobs == 0 via resolve_jobs means "auto".
  explicit WorkerPool(int jobs);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(i) for every i in [0, count), spread over the pool; returns
  /// once all calls completed.  Serial (no worker threads touched) when the
  /// pool was built with jobs == 1.  Not reentrant.
  void parallel_for(int count, const std::function<void(int)>& fn);

  int jobs() const { return jobs_; }

  /// Maps the --jobs flag to a worker count: 0 -> hardware concurrency
  /// (min 1), otherwise the value itself (min 1).
  static int resolve_jobs(int requested);

 private:
  void worker_loop();

  int jobs_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // Current batch: fn_ valid while remaining_ > 0; next_ is the claim cursor.
  const std::function<void(int)>* fn_ = nullptr;
  int count_ = 0;
  int next_ = 0;
  int remaining_ = 0;
  bool stopping_ = false;
};

}  // namespace numfabric::util
