#include "util/parse.h"

#include <exception>

namespace numfabric::util {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::optional<double> parse_double(const std::string& token) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<std::int64_t> parse_int(const std::string& token) {
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(token, &consumed);
    if (consumed != token.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace numfabric::util
