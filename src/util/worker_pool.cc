#include "util/worker_pool.h"

#include <algorithm>
#include <cstdint>

namespace numfabric::util {

WorkerPool::WorkerPool(int jobs) : jobs_(std::max(1, jobs)) {
  // jobs_ == 1 runs everything on the calling thread; no workers needed.
  for (int i = 1; i < jobs_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int WorkerPool::resolve_jobs(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkerPool::parallel_for(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    next_ = 0;
    remaining_ = count;
  }
  work_ready_.notify_all();

  // The calling thread is a worker too: claim tasks until none are left.
  for (;;) {
    int task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_ >= count_) break;
      task = next_++;
    }
    fn(task);
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) work_done_.notify_all();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::worker_loop() {
  for (;;) {
    int task;
    const std::function<void(int)>* fn;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // next_ < count_ means unclaimed work exists; a drained batch leaves
      // next_ == count_, so workers sleep until the next parallel_for resets
      // the cursor.
      work_ready_.wait(lock, [&] { return stopping_ || next_ < count_; });
      if (stopping_) return;
      task = next_++;
      fn = fn_;
    }
    (*fn)(task);
    std::lock_guard<std::mutex> lock(mutex_);
    if (--remaining_ == 0) work_done_.notify_all();
  }
}

}  // namespace numfabric::util

