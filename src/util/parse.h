// Shared string-parsing helpers: whitespace trimming and strict numeric
// parsing (the whole token must be consumed — "4x" and "1O" are rejected,
// not truncated).  Callers attach their own context to the error, so these
// return std::nullopt instead of throwing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace numfabric::util {

/// Strips leading/trailing spaces, tabs, CR and LF.
std::string trim(const std::string& s);

/// std::stod over the full token; nullopt on empty, trailing junk or
/// out-of-range input.
std::optional<double> parse_double(const std::string& token);

/// std::stoll over the full token; same strictness.
std::optional<std::int64_t> parse_int(const std::string& token);

}  // namespace numfabric::util
