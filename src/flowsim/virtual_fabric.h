// Arithmetic leaf-spine fabric for the flow-fluid engine.
//
// The packet substrate builds a real net::Topology — switch objects, queues,
// per-port state — which is exactly the memory the 10^5-10^6 flow regime
// cannot afford.  A VirtualLeafSpine is the same leaf-spine expressed as pure
// index arithmetic: a link is an integer, a path is at most four integers and
// the whole fabric is one capacity vector for CsrProblem::compile.  Layout:
//
//   [0, H)              host h -> leaf(h) uplink        (host_rate)
//   [H, 2H)             leaf(h) -> host h downlink      (host_rate)
//   [2H, 2H + L*S)      leaf l -> spine s  (l*S + s)    (leaf_spine_rate)
//   [2H + L*S, 2H+2LS)  spine s -> leaf l  (l*S + s)    (leaf_spine_rate)
//
// with H = hosts, L = leaves, S = spines and leaf(h) = h / hosts_per_leaf.
// Cross-leaf paths pick their spine by hashing a caller-supplied tiebreak
// (the flow id), the virtual analogue of per-flow ECMP — deterministic and
// seed-free.
#pragma once

#include <cstdint>
#include <vector>

namespace numfabric::flowsim {

struct VirtualLeafSpine {
  int hosts_per_leaf = 1;
  int leaves = 1;
  int spines = 1;
  double host_rate = 0.0;        // rate units (Mbps)
  double leaf_spine_rate = 0.0;  // rate units (Mbps)

  int hosts() const { return hosts_per_leaf * leaves; }
  int links() const { return 2 * hosts() + 2 * leaves * spines; }
  int leaf_of(int host) const { return host / hosts_per_leaf; }

  /// Per-link capacities in layout order (CsrProblem input).
  std::vector<double> capacities() const;

  /// Link indices from `src` to `dst` (distinct hosts).  Same-leaf pairs use
  /// {uplink, downlink}; cross-leaf pairs add the leaf->spine->leaf hop with
  /// the spine chosen by hashing `tiebreak`.
  std::vector<int> path(int src, int dst, std::uint64_t tiebreak) const;
};

}  // namespace numfabric::flowsim
