// Arithmetic leaf-spine fabric for the flow-fluid engine.
//
// The packet substrate builds a real net::Topology — switch objects, queues,
// per-port state — which is exactly the memory the 10^5-10^6 flow regime
// cannot afford.  A VirtualLeafSpine is the same leaf-spine expressed as pure
// index arithmetic: a link is an integer, a path is at most four integers and
// the whole fabric is one capacity vector for CsrProblem::compile.  Layout:
//
//   [0, H)              host h -> leaf(h) uplink        (host_rate)
//   [H, 2H)             leaf(h) -> host h downlink      (host_rate)
//   [2H, 2H + L*S)      leaf l -> spine s  (l*S + s)    (leaf_spine_rate)
//   [2H + L*S, 2H+2LS)  spine s -> leaf l  (l*S + s)    (leaf_spine_rate)
//
// with H = hosts, L = leaves, S = spines and leaf(h) = h / hosts_per_leaf.
// Cross-leaf paths pick their spine by hashing a caller-supplied tiebreak
// (the flow id), the virtual analogue of per-flow ECMP — deterministic and
// seed-free.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric_graph.h"

namespace numfabric::flowsim {

struct VirtualLeafSpine {
  int hosts_per_leaf = 1;
  int leaves = 1;
  int spines = 1;
  double host_rate = 0.0;        // rate units (Mbps)
  double leaf_spine_rate = 0.0;  // rate units (Mbps)

  int hosts() const { return hosts_per_leaf * leaves; }
  int links() const { return 2 * hosts() + 2 * leaves * spines; }
  int leaf_of(int host) const { return host / hosts_per_leaf; }

  /// Per-link capacities in layout order (CsrProblem input).
  std::vector<double> capacities() const;

  /// Link indices from `src` to `dst` (distinct hosts).  Same-leaf pairs use
  /// {uplink, downlink}; cross-leaf pairs add the leaf->spine->leaf hop with
  /// the spine chosen by hashing `tiebreak`.
  std::vector<int> path(int src, int dst, std::uint64_t tiebreak) const;
};

/// The general form: any FabricGraph reduced to a capacity vector plus a
/// precomputed per-switch-pair path table, so mega-fct-scale runs work on
/// arbitrary fabrics (jellyfish) with the same integer-only interface as
/// VirtualLeafSpine.  Paths are k-shortest (Yen) between host-bearing
/// switches, stitched to per-host up/down links on demand; the per-flow pick
/// uses net::ecmp_index, the same choice the packet engine makes.
class VirtualFabric {
 public:
  /// Builds the capacity vector (num::to_rate_units of each graph link) and
  /// the k-path table for every ordered pair of host-bearing switches.
  /// Throws std::invalid_argument when the graph has < 2 hosts and
  /// std::runtime_error when some host pair has no route.
  static VirtualFabric from_graph(const net::FabricGraph& graph, int k_paths);

  int hosts() const { return static_cast<int>(host_uplink_.size()); }
  int links() const { return static_cast<int>(capacities_.size()); }

  /// Per-link capacities in graph link order (CsrProblem input) — identical
  /// to the packet engine's LinkIndexer order for the same graph.
  const std::vector<double>& capacities() const { return capacities_; }

  /// Link indices from host `src` to host `dst` (distinct), choosing among
  /// the pair's k paths by hashing `tiebreak`.
  std::vector<int> path(int src, int dst, std::uint64_t tiebreak) const;

 private:
  std::vector<double> capacities_;
  std::vector<int> host_uplink_;        // host h -> its uplink graph link
  std::vector<int> host_switch_index_;  // host h -> dense index of its switch
  int num_switches_ = 0;
  /// Switch-level paths for ordered pair (a, b): table_[a * num_switches_ + b]
  /// holds up to k link-id sequences (empty for a == b — same-switch pairs
  /// need no core hops).
  std::vector<std::vector<std::vector<int>>> table_;
};

}  // namespace numfabric::flowsim
