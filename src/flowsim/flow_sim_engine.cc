#include "flowsim/flow_sim_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "sim/substrate_stats.h"

namespace numfabric::flowsim {
namespace {

constexpr double kDoneBits = 1e-6;  // remaining <= this counts as finished

// Compile the full flow set once; arrivals and departures are set_active
// row patches, re-solves share one warm workspace.
num::CsrProblem compile_flows(const std::vector<FlowSimFlow>& flows,
                              std::vector<double> capacities) {
  for (const FlowSimFlow& f : flows) {
    if (f.size_bytes <= 0) {
      throw std::invalid_argument("FlowSimEngine: size <= 0");
    }
    if (f.utility == nullptr) {
      throw std::invalid_argument("FlowSimEngine: null utility");
    }
    if (f.links.empty()) {
      throw std::invalid_argument("FlowSimEngine: empty path");
    }
  }
  num::NumProblem problem;
  problem.capacities = std::move(capacities);
  problem.utilities.reserve(flows.size());
  problem.flow_links.reserve(flows.size());
  for (const FlowSimFlow& f : flows) {
    problem.utilities.push_back(f.utility);
    problem.flow_links.push_back(f.links);
  }
  return num::CsrProblem::compile(problem);
}

}  // namespace

FlowSimEngine::FlowSimEngine(std::vector<FlowSimFlow> flows,
                             std::vector<double> capacities,
                             FlowSimOptions options)
    : flows_(std::move(flows)),
      options_(std::move(options)),
      csr_(compile_flows(flows_, std::move(capacities))) {
  if (options_.resolve_interval_seconds < 0) {
    throw std::invalid_argument("FlowSimEngine: resolve interval < 0");
  }

  order_.resize(flows_.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  // Stable: simultaneous arrivals admit in increasing flow id, so their
  // set_active calls append to the compacted active rows instead of
  // shifting them.  (Admission order within an epoch cannot affect results:
  // the row patch commutes and every per-flow pass writes disjoint slots.)
  std::stable_sort(
      order_.begin(), order_.end(), [this](std::size_t a, std::size_t b) {
        return flows_[a].arrival_seconds < flows_[b].arrival_seconds;
      });
  remaining_bits_.assign(flows_.size(), 0.0);
  reset();
}

void FlowSimEngine::reset() {
  csr_.deactivate_all();
  workspace_.reset();
  solver_options_ = options_.solver;
  active_.clear();
  std::fill(remaining_bits_.begin(), remaining_bits_.end(), 0.0);
  next_arrival_ = 0;
  now_ = 0.0;
  finished_ = flows_.empty();
  result_ = FlowSimResult{};
  result_.fct_seconds.assign(flows_.size(), -1.0);
  result_.ideal_rate.assign(flows_.size(), 0.0);
  if (finished_) result_.end_seconds = 0.0;
}

void FlowSimEngine::admit_due_arrivals() {
  if (active_.empty() && next_arrival_ < order_.size()) {
    now_ = std::max(now_, flows_[order_[next_arrival_]].arrival_seconds);
  }
  while (next_arrival_ < order_.size() &&
         flows_[order_[next_arrival_]].arrival_seconds <= now_ + 1e-15) {
    const std::size_t id = order_[next_arrival_++];
    active_.push_back(id);
    remaining_bits_[id] = flows_[id].size_bytes * 8.0;
    csr_.set_active(id, true);
  }
  result_.peak_active = std::max(result_.peak_active, active_.size());
}

void FlowSimEngine::resolve() {
  // The first solve honours the caller's initial_prices (cold at 1.0 when
  // empty); afterwards the workspace's converged prices warm-start every
  // re-solve — the active set moves while the dual barely does.
  const num::SolveStats stats = num::solve(csr_, workspace_, solver_options_);
  solver_options_.initial_prices.clear();
  ++result_.resolves;
  result_.solver_sweeps += stats.sweeps;
  result_.solver_relaxations += stats.relaxations;
}

void FlowSimEngine::retire(std::size_t id, double at_seconds) {
  const double fct = at_seconds - flows_[id].arrival_seconds;
  result_.fct_seconds[id] = fct;
  result_.ideal_rate[id] = flows_[id].size_bytes * 8.0 /
                           std::max(fct, 1e-12) / num::kRateUnitBps;
  ++result_.completed;
  csr_.set_active(id, false);
}

void FlowSimEngine::finish() {
  finished_ = true;
  result_.incomplete += static_cast<int>(active_.size());
  result_.incomplete += static_cast<int>(order_.size() - next_arrival_);
  active_.clear();
  result_.end_seconds = now_;
}

// Exact mode: the event-driven fluid system of num::fluid_fct_oracle —
// identical arithmetic, so completion times match it bit-for-bit.
bool FlowSimEngine::step_exact() {
  admit_due_arrivals();
  resolve();
  const std::span<const double> rates = workspace_.rates();

  // Advance to the next event: first completion, next arrival or horizon.
  double dt = std::numeric_limits<double>::infinity();
  if (next_arrival_ < order_.size()) {
    dt = flows_[order_[next_arrival_]].arrival_seconds - now_;
  }
  for (const std::size_t id : active_) {
    const double rate_bps = rates[id] * num::kRateUnitBps;
    if (rate_bps <= 0) continue;
    dt = std::min(dt, remaining_bits_[id] / rate_bps);
  }
  if (!std::isfinite(dt) && !std::isfinite(options_.horizon_seconds)) {
    throw std::logic_error("FlowSimEngine: stalled (all rates zero)");
  }
  dt = std::min(dt, options_.horizon_seconds - now_);
  dt = std::max(dt, 0.0);
  now_ += dt;
  for (const std::size_t id : active_) {
    remaining_bits_[id] -= rates[id] * num::kRateUnitBps * dt;
  }

  for (std::size_t k = 0; k < active_.size();) {
    const std::size_t id = active_[k];
    if (remaining_bits_[id] <= kDoneBits) {
      retire(id, now_);
      active_[k] = active_.back();
      active_.pop_back();
    } else {
      ++k;
    }
  }

  if (now_ >= options_.horizon_seconds ||
      (active_.empty() && next_arrival_ >= order_.size())) {
    finish();
  }
  return !finished_;
}

// Grid mode: rates are frozen for one resolve interval.  Departures inside
// the window follow analytically from remaining / rate (each counts as an
// epoch but costs no solve); arrivals wait for the next grid point.
bool FlowSimEngine::step_grid() {
  admit_due_arrivals();
  resolve();
  const std::span<const double> rates = workspace_.rates();

  const double window_end = std::min(now_ + options_.resolve_interval_seconds,
                                     options_.horizon_seconds);
  double max_rate = 0.0;
  for (std::size_t k = 0; k < active_.size();) {
    const std::size_t id = active_[k];
    const double rate_bps = rates[id] * num::kRateUnitBps;
    max_rate = std::max(max_rate, rate_bps);
    const double drain = rate_bps * (window_end - now_);
    if (remaining_bits_[id] <= drain + kDoneBits) {
      const double done_at =
          rate_bps > 0
              ? std::min(now_ + remaining_bits_[id] / rate_bps, window_end)
              : window_end;
      retire(id, done_at);
      ++result_.epochs;  // the departure epoch, handled without a solve
      active_[k] = active_.back();
      active_.pop_back();
    } else {
      remaining_bits_[id] -= drain;
      ++k;
    }
  }
  if (!active_.empty() && max_rate <= 0 && next_arrival_ >= order_.size() &&
      !std::isfinite(options_.horizon_seconds)) {
    throw std::logic_error("FlowSimEngine: stalled (all rates zero)");
  }
  now_ = window_end;

  if (now_ >= options_.horizon_seconds ||
      (active_.empty() && next_arrival_ >= order_.size())) {
    finish();
  }
  return !finished_;
}

bool FlowSimEngine::step() {
  if (finished_) return false;
  if (now_ >= options_.horizon_seconds) {
    finish();
    return false;
  }
  ++result_.epochs;
  return options_.resolve_interval_seconds > 0 ? step_grid() : step_exact();
}

FlowSimResult FlowSimEngine::run() {
  while (step()) {
  }
  sim::SubstrateStats& stats = sim::substrate_stats();
  stats.flowsim_epochs += static_cast<std::uint64_t>(result_.epochs);
  stats.flowsim_resolves += static_cast<std::uint64_t>(result_.resolves);
  return result_;
}

FlowSimResult run_flow_sim(std::vector<FlowSimFlow> flows,
                           std::vector<double> capacities,
                           const FlowSimOptions& options) {
  FlowSimEngine engine(std::move(flows), std::move(capacities), options);
  return engine.run();
}

}  // namespace numfabric::flowsim
