#include "flowsim/virtual_fabric.h"

#include <stdexcept>

namespace numfabric::flowsim {
namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash for the per-flow spine
// pick.  Any fixed mixer works — it only has to spread consecutive flow ids
// across spines deterministically.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<double> VirtualLeafSpine::capacities() const {
  if (hosts_per_leaf < 1 || leaves < 1 || spines < 1) {
    throw std::invalid_argument("VirtualLeafSpine: non-positive dimension");
  }
  if (host_rate <= 0 || leaf_spine_rate <= 0) {
    throw std::invalid_argument("VirtualLeafSpine: non-positive rate");
  }
  std::vector<double> caps(static_cast<std::size_t>(links()));
  const int h = hosts();
  for (int i = 0; i < 2 * h; ++i) caps[static_cast<std::size_t>(i)] = host_rate;
  for (int i = 2 * h; i < links(); ++i) {
    caps[static_cast<std::size_t>(i)] = leaf_spine_rate;
  }
  return caps;
}

std::vector<int> VirtualLeafSpine::path(int src, int dst,
                                        std::uint64_t tiebreak) const {
  if (src == dst || src < 0 || dst < 0 || src >= hosts() || dst >= hosts()) {
    throw std::invalid_argument("VirtualLeafSpine: bad host pair");
  }
  const int h = hosts();
  const int up = src;
  const int down = h + dst;
  const int src_leaf = leaf_of(src);
  const int dst_leaf = leaf_of(dst);
  if (src_leaf == dst_leaf) return {up, down};
  const int spine = static_cast<int>(
      mix64(tiebreak) % static_cast<std::uint64_t>(spines));
  const int leaf_up = 2 * h + src_leaf * spines + spine;
  const int spine_down = 2 * h + leaves * spines + dst_leaf * spines + spine;
  return {up, leaf_up, spine_down, down};
}

}  // namespace numfabric::flowsim
