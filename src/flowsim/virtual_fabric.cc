#include "flowsim/virtual_fabric.h"

#include <stdexcept>
#include <string>

#include "net/routing.h"
#include "num/utility.h"

namespace numfabric::flowsim {
namespace {

// SplitMix64 finalizer: a cheap, well-mixed hash for the per-flow spine
// pick.  Any fixed mixer works — it only has to spread consecutive flow ids
// across spines deterministically.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

std::vector<double> VirtualLeafSpine::capacities() const {
  if (hosts_per_leaf < 1 || leaves < 1 || spines < 1) {
    throw std::invalid_argument("VirtualLeafSpine: non-positive dimension");
  }
  if (host_rate <= 0 || leaf_spine_rate <= 0) {
    throw std::invalid_argument("VirtualLeafSpine: non-positive rate");
  }
  std::vector<double> caps(static_cast<std::size_t>(links()));
  const int h = hosts();
  for (int i = 0; i < 2 * h; ++i) caps[static_cast<std::size_t>(i)] = host_rate;
  for (int i = 2 * h; i < links(); ++i) {
    caps[static_cast<std::size_t>(i)] = leaf_spine_rate;
  }
  return caps;
}

std::vector<int> VirtualLeafSpine::path(int src, int dst,
                                        std::uint64_t tiebreak) const {
  if (src == dst || src < 0 || dst < 0 || src >= hosts() || dst >= hosts()) {
    throw std::invalid_argument("VirtualLeafSpine: bad host pair");
  }
  const int h = hosts();
  const int up = src;
  const int down = h + dst;
  const int src_leaf = leaf_of(src);
  const int dst_leaf = leaf_of(dst);
  if (src_leaf == dst_leaf) return {up, down};
  const int spine = static_cast<int>(
      mix64(tiebreak) % static_cast<std::uint64_t>(spines));
  const int leaf_up = 2 * h + src_leaf * spines + spine;
  const int spine_down = 2 * h + leaves * spines + dst_leaf * spines + spine;
  return {up, leaf_up, spine_down, down};
}

VirtualFabric VirtualFabric::from_graph(const net::FabricGraph& graph,
                                        int k_paths) {
  if (k_paths < 1) {
    throw std::invalid_argument("VirtualFabric: k_paths must be >= 1");
  }
  if (graph.num_hosts() < 2) {
    throw std::invalid_argument("VirtualFabric: need at least 2 hosts");
  }
  VirtualFabric fabric;
  fabric.capacities_.reserve(static_cast<std::size_t>(graph.num_links()));
  for (int link = 0; link < graph.num_links(); ++link) {
    fabric.capacities_.push_back(num::to_rate_units(graph.link_rate_bps(link)));
  }
  // Dense numbering of the switches that actually bear hosts; the path table
  // only covers those (a spine never terminates a flow).
  std::vector<int> switch_index(static_cast<std::size_t>(graph.num_nodes()), -1);
  std::vector<int> switch_node;
  for (int n = 0; n < graph.num_nodes(); ++n) {
    if (graph.nodes()[static_cast<std::size_t>(n)].kind != net::GraphNodeKind::kHost) {
      continue;
    }
    const int uplink = graph.host_uplink(n);
    const int sw = graph.link_dst(uplink);
    if (switch_index[static_cast<std::size_t>(sw)] < 0) {
      switch_index[static_cast<std::size_t>(sw)] =
          static_cast<int>(switch_node.size());
      switch_node.push_back(sw);
    }
    fabric.host_uplink_.push_back(uplink);
    fabric.host_switch_index_.push_back(switch_index[static_cast<std::size_t>(sw)]);
  }
  fabric.num_switches_ = static_cast<int>(switch_node.size());
  fabric.table_.resize(static_cast<std::size_t>(fabric.num_switches_) *
                       static_cast<std::size_t>(fabric.num_switches_));
  for (int a = 0; a < fabric.num_switches_; ++a) {
    for (int b = 0; b < fabric.num_switches_; ++b) {
      if (a == b) continue;
      auto paths = net::k_shortest_paths(graph, switch_node[static_cast<std::size_t>(a)],
                                         switch_node[static_cast<std::size_t>(b)],
                                         static_cast<std::size_t>(k_paths));
      if (paths.empty()) {
        throw std::runtime_error(
            "VirtualFabric: no route between switches '" +
            graph.nodes()[static_cast<std::size_t>(switch_node[static_cast<std::size_t>(a)])].name +
            "' and '" +
            graph.nodes()[static_cast<std::size_t>(switch_node[static_cast<std::size_t>(b)])].name +
            "'");
      }
      fabric.table_[static_cast<std::size_t>(a) *
                        static_cast<std::size_t>(fabric.num_switches_) +
                    static_cast<std::size_t>(b)] = std::move(paths);
    }
  }
  return fabric;
}

std::vector<int> VirtualFabric::path(int src, int dst,
                                     std::uint64_t tiebreak) const {
  if (src == dst || src < 0 || dst < 0 || src >= hosts() || dst >= hosts()) {
    throw std::invalid_argument("VirtualFabric: bad host pair");
  }
  const int up = host_uplink_[static_cast<std::size_t>(src)];
  const int down =
      net::FabricGraph::reverse(host_uplink_[static_cast<std::size_t>(dst)]);
  const int a = host_switch_index_[static_cast<std::size_t>(src)];
  const int b = host_switch_index_[static_cast<std::size_t>(dst)];
  if (a == b) return {up, down};
  const auto& choices =
      table_[static_cast<std::size_t>(a) * static_cast<std::size_t>(num_switches_) +
             static_cast<std::size_t>(b)];
  const auto& core = choices[net::ecmp_index(choices.size(), tiebreak)];
  std::vector<int> result;
  result.reserve(core.size() + 2);
  result.push_back(up);
  result.insert(result.end(), core.begin(), core.end());
  result.push_back(down);
  return result;
}

}  // namespace numfabric::flowsim
