// Flow-fluid simulation engine: `fidelity=flow` for 10^5-10^6 concurrent
// flows.
//
// A packet-level simulator advances one packet at a time; this engine
// advances flows between *epochs* — flow arrival, flow departure, periodic
// re-solve — and assigns every active flow its NUM-optimal rate.  At each
// epoch it patches the compiled CsrProblem via set_active, warm re-solves
// with a caller-owned NumWorkspace (honoring the execution policy's thread
// count; results are bit-identical for every value), then analytically
// integrates each active flow's remaining bytes at its oracle rate to find
// the next departure.  The only per-epoch cost is one warm solve plus an
// O(active flows) integration, so concurrency — not event count — bounds the
// per-epoch work.
//
// Two resolve disciplines (FlowSimOptions::resolve_interval_seconds):
//  * 0 (exact): re-solve at every arrival and departure.  This is the
//    event-driven fluid system of num::fluid_fct_oracle and reproduces its
//    completion times bit-for-bit (locked by a test).  Cost: one warm solve
//    per flow event — fine up to ~10^4 flows.
//  * T > 0 (epoch grid): re-solve on a fixed grid of period T.  Between grid
//    points rates are frozen, so each flow's departure time is just
//    remaining / rate — departures are processed analytically without a
//    solve, and arrivals are admitted at the next grid point.  Cost: one warm
//    solve per grid tick regardless of flow count — the 10^5-10^6 regime.
//
// Fidelity limits (see src/flowsim/README.md): no queueing delay or
// packetization, rates are instantaneous optima (convergence is assumed
// free), and in grid mode rates lag the active set by up to T (frozen-rate
// departures under-allocate, grid-point admission delays arrivals), so
// grid-mode FCTs upper-bound exact-mode FCTs.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "num/num_solver.h"
#include "num/utility.h"

namespace numfabric::flowsim {

struct FlowSimFlow {
  double arrival_seconds = 0.0;
  double size_bytes = 0.0;
  std::vector<int> links;                    // path (link indices)
  const num::UtilityFunction* utility = nullptr;  // non-owning
};

struct FlowSimOptions {
  /// 0 = exact event-driven mode; > 0 = epoch-grid period in seconds.
  double resolve_interval_seconds = 0.0;
  /// Flows still active at the horizon are reported incomplete.
  double horizon_seconds = std::numeric_limits<double>::infinity();
  /// Warm re-solve configuration; .policy carries --solver-threads.
  num::NumSolverOptions solver;
};

struct FlowSimResult {
  /// Completion time (seconds since arrival) per flow, input order;
  /// negative for flows that did not finish before the horizon.
  std::vector<double> fct_seconds;
  /// size / fct in rate units (Mbps); 0 for incomplete flows.
  std::vector<double> ideal_rate;
  int completed = 0;
  int incomplete = 0;
  /// Epochs advanced: arrival admissions + departures + grid re-solve ticks.
  std::int64_t epochs = 0;
  /// NUM re-solves performed (== epochs in exact mode, << epochs in grid
  /// mode).
  std::int64_t resolves = 0;
  /// Total Gauss-Seidel sweeps across all re-solves.
  std::int64_t solver_sweeps = 0;
  /// Total incremental worklist relaxations (0 unless
  /// FlowSimOptions::solver.incremental).
  std::int64_t solver_relaxations = 0;
  /// Largest concurrently-active flow count observed.
  std::size_t peak_active = 0;
  /// Simulated time when the run ended.
  double end_seconds = 0.0;
};

/// Compiles the flow set once, then steps epochs until every flow finished
/// or the horizon passed.  step() exists so benchmarks can meter the
/// per-epoch cost; run() is the normal entry point.  Deterministic: the same
/// inputs produce byte-identical results for any thread count.
class FlowSimEngine {
 public:
  /// Validates flows (positive size, non-empty path, non-null utility —
  /// throws std::invalid_argument like the fluid oracle) and compiles the
  /// CSR problem.  `capacities` are in rate units (Mbps).
  FlowSimEngine(std::vector<FlowSimFlow> flows, std::vector<double> capacities,
                FlowSimOptions options = {});

  /// Advances one epoch (admit due arrivals / re-solve / integrate to the
  /// next event).  Returns false once the run is finished.
  bool step();

  /// Steps to completion and returns the result (also increments the
  /// flowsim_* substrate counters by this run's epoch/resolve totals).
  FlowSimResult run();

  /// Back to t = 0 with every flow pending.  The compiled problem and the
  /// workspace buffers are kept, so a re-run is allocation-light.
  void reset();

  bool finished() const { return finished_; }
  double now_seconds() const { return now_; }
  std::size_t active_count() const { return active_.size(); }
  const FlowSimResult& result() const { return result_; }

 private:
  void admit_due_arrivals();
  void resolve();
  void retire(std::size_t id, double at_seconds);
  bool step_exact();
  bool step_grid();
  void finish();

  std::vector<FlowSimFlow> flows_;
  FlowSimOptions options_;
  num::CsrProblem csr_;
  num::NumWorkspace workspace_;
  num::NumSolverOptions solver_options_;

  std::vector<std::size_t> order_;  // flow ids by arrival time
  std::vector<std::size_t> active_;
  std::vector<double> remaining_bits_;
  std::size_t next_arrival_ = 0;
  double now_ = 0.0;
  bool finished_ = false;
  FlowSimResult result_;
};

/// Convenience wrapper mirroring num::fluid_fct_oracle's shape.
FlowSimResult run_flow_sim(std::vector<FlowSimFlow> flows,
                           std::vector<double> capacities,
                           const FlowSimOptions& options = {});

}  // namespace numfabric::flowsim
