// Multi-link bandwidth-function allocation (BwE [35] §2).
//
// Given flows with bandwidth functions B_i(f) and fixed single paths, the
// allocation raises every flow's fair share f together; when a link
// saturates, the flows crossing it freeze at the current share and the rest
// keep rising (a max-min over fair shares).  Each flow ends with its own
// fair share f_i and allocation B_i(f_i).
//
// This is the ground truth for Fig. 9 (one link, capacity swept) and for the
// bandwidth-function tests.  The multipath variant used in Fig. 10 has its
// expected allocations stated in the paper itself; see exp/bwfunc_experiment.
#pragma once

#include <vector>

#include "num/bandwidth_function.h"

namespace numfabric::num {

struct BweProblem {
  /// Non-owning; caller keeps the functions alive.
  std::vector<const BandwidthFunction*> functions;
  std::vector<std::vector<int>> flow_links;
  std::vector<double> capacities;
};

struct BweResult {
  std::vector<double> rates;        // B_i(f_i)
  std::vector<double> fair_shares;  // f_i
};

/// `max_fair_share` bounds the search; flows still unconstrained there are
/// frozen at that share (their functions are effectively capped).
BweResult bwe_waterfill(const BweProblem& problem, double max_fair_share = 1e6);

}  // namespace numfabric::num
