// Event-driven fluid simulation: the paper's "ideal Oracle" for dynamic
// workloads (§6.1).
//
// Flows arrive with a size; at every arrival or completion the oracle
// recomputes the optimal NUM allocation for the currently active set
// (instantaneous convergence) and advances remaining sizes fluidly until the
// next event.  The resulting completion times define idealRate = size / FCT,
// the denominator of Fig. 5's normalized rate deviation, and the ideal FCTs
// for Fig. 7.
#pragma once

#include <cstdint>
#include <vector>

#include "num/num_solver.h"
#include "num/utility.h"

namespace numfabric::num {

struct FluidFlow {
  double arrival_seconds = 0.0;
  double size_bytes = 0.0;
  std::vector<int> links;                       // path (link indices)
  const UtilityFunction* utility = nullptr;     // non-owning
};

struct FluidFctResult {
  /// Completion time (seconds since arrival) per flow, same order as input.
  std::vector<double> fct_seconds;
  /// size / fct, in rate units (Mbps).
  std::vector<double> ideal_rate;
  /// Number of allocation recomputations performed (perf reporting).
  int solves = 0;
  /// Total Gauss-Seidel sweeps across all solves.  Successive events share
  /// their link prices (the active set changes by a flow or two while the
  /// dual barely moves), so every re-solve warm-starts from the previous
  /// solution; this counter is what that saves.
  std::int64_t sweeps = 0;
};

/// Simulates the fluid system.  `capacities` are in rate units (Mbps).
/// Complexity: O(events * solver); intended for oracle use, not scale.
FluidFctResult fluid_fct_oracle(const std::vector<FluidFlow>& flows,
                                const std::vector<double>& capacities,
                                const NumSolverOptions& solver_options = {});

}  // namespace numfabric::num
