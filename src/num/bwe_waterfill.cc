#include "num/bwe_waterfill.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "num/csr_problem.h"

namespace numfabric::num {
namespace {

/// Total demand of the active flows on link l at common fair share f.
double active_demand(const BweProblem& problem, const std::vector<int>& flows,
                     const std::vector<bool>& active, double f) {
  double demand = 0.0;
  for (int i : flows) {
    if (active[static_cast<std::size_t>(i)]) {
      demand += problem.functions[static_cast<std::size_t>(i)]->bandwidth(f);
    }
  }
  return demand;
}

}  // namespace

BweResult bwe_waterfill(const BweProblem& problem, double max_fair_share) {
  const std::size_t num_flows = problem.functions.size();
  const std::size_t num_links = problem.capacities.size();
  if (problem.flow_links.size() != num_flows) {
    throw std::invalid_argument("bwe_waterfill: functions/flow_links mismatch");
  }
  for (const auto* fn : problem.functions) {
    if (fn == nullptr) throw std::invalid_argument("bwe_waterfill: null function");
  }

  for (std::size_t i = 0; i < num_flows; ++i) {
    if (problem.flow_links[i].empty()) {
      throw std::invalid_argument("bwe_waterfill: empty path");
    }
    for (int l : problem.flow_links[i]) {
      if (l < 0 || static_cast<std::size_t>(l) >= num_links) {
        throw std::invalid_argument("bwe_waterfill: bad link index");
      }
    }
  }
  const std::vector<std::vector<int>> on_link =
      flows_on_link(problem.flow_links, num_links);

  BweResult result;
  result.rates.assign(num_flows, 0.0);
  result.fair_shares.assign(num_flows, 0.0);
  std::vector<bool> active(num_flows, true);
  std::vector<double> frozen(num_links, 0.0);  // capacity used by frozen flows
  std::size_t remaining = num_flows;
  double level = 0.0;

  while (remaining > 0) {
    // For each link, the fair share at which it would saturate, given the
    // currently active flows: smallest f with demand(f) >= c - frozen.
    double next_level = max_fair_share;
    for (std::size_t l = 0; l < num_links; ++l) {
      bool has_active = false;
      for (int i : on_link[l]) {
        has_active = has_active || active[static_cast<std::size_t>(i)];
      }
      if (!has_active) continue;
      const double headroom = problem.capacities[l] - frozen[l];
      if (active_demand(problem, on_link[l], active, max_fair_share) <
          headroom) {
        continue;  // this link never saturates within the search bound
      }
      double lo = level;
      double hi = max_fair_share;
      for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (active_demand(problem, on_link[l], active, mid) < headroom) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      next_level = std::min(next_level, hi);
    }
    level = next_level;

    // Freeze flows on saturated links (or all flows at the search bound).
    bool froze_any = false;
    for (std::size_t l = 0; l < num_links; ++l) {
      const double headroom = problem.capacities[l] - frozen[l];
      const double demand = active_demand(problem, on_link[l], active, level);
      const bool saturated =
          demand >= headroom * (1.0 - 1e-9) || level >= max_fair_share;
      if (!saturated) continue;
      for (int fi : on_link[l]) {
        const auto i = static_cast<std::size_t>(fi);
        if (!active[i]) continue;
        active[i] = false;
        froze_any = true;
        --remaining;
        result.fair_shares[i] = level;
        result.rates[i] = problem.functions[i]->bandwidth(level);
        for (int k : problem.flow_links[i]) {
          frozen[static_cast<std::size_t>(k)] += result.rates[i];
        }
      }
    }
    if (level >= max_fair_share) {
      // Remaining flows are unconstrained: satisfied at the bound.
      for (std::size_t i = 0; i < num_flows; ++i) {
        if (!active[i]) continue;
        active[i] = false;
        --remaining;
        result.fair_shares[i] = max_fair_share;
        result.rates[i] = problem.functions[i]->bandwidth(max_fair_share);
      }
      break;
    }
    if (!froze_any) {
      throw std::logic_error("bwe_waterfill: no progress (numeric issue)");
    }
  }
  return result;
}

}  // namespace numfabric::num
