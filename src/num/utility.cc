#include "num/utility.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace numfabric::num {

AlphaFairUtility::AlphaFairUtility(double alpha, double weight)
    : alpha_(alpha), weight_(weight) {
  if (alpha < 0) throw std::invalid_argument("AlphaFairUtility: alpha must be >= 0");
  if (weight <= 0) throw std::invalid_argument("AlphaFairUtility: weight must be > 0");
}

double AlphaFairUtility::utility(double x) const {
  x = std::max(x, kMinRate);
  if (alpha_ == 1.0) return weight_ * std::log(x);
  return weight_ * std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
}

double AlphaFairUtility::marginal(double x) const {
  x = std::max(x, kMinRate);
  return weight_ * std::pow(x, -alpha_);
}

double AlphaFairUtility::marginal_inverse(double price) const {
  price = std::max(price, kMinPrice);
  if (alpha_ == 0.0) {
    // Linear utility: marginal is constant; the inverse is degenerate.
    throw std::logic_error(
        "AlphaFairUtility: marginal_inverse undefined for alpha == 0; "
        "use a small positive alpha (see Table 1 footnote)");
  }
  const double rate = std::pow(price / weight_, -1.0 / alpha_);
  if (!std::isfinite(rate)) return kMaxRate;
  return std::min(rate, kMaxRate);
}

std::unique_ptr<AlphaFairUtility> make_fct_utility(double size_bytes,
                                                   double epsilon) {
  if (size_bytes <= 0) throw std::invalid_argument("make_fct_utility: size <= 0");
  // Weight 1/size; size expressed in MB keeps weights O(1e-2..1e2) across
  // the web-search range (10 KB .. 30 MB).
  const double size_mb = size_bytes / 1e6;
  return std::make_unique<AlphaFairUtility>(epsilon, 1.0 / std::max(size_mb, 1e-6));
}

}  // namespace numfabric::num
