#include "num/fluid_fct_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace numfabric::num {

FluidFctResult fluid_fct_oracle(const std::vector<FluidFlow>& flows,
                                const std::vector<double>& capacities,
                                const NumSolverOptions& solver_options) {
  for (const FluidFlow& f : flows) {
    if (f.size_bytes <= 0) throw std::invalid_argument("fluid_fct_oracle: size <= 0");
    if (f.utility == nullptr) throw std::invalid_argument("fluid_fct_oracle: null utility");
    if (f.links.empty()) throw std::invalid_argument("fluid_fct_oracle: empty path");
  }

  // Process arrivals in time order but report results in input order.
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return flows[a].arrival_seconds < flows[b].arrival_seconds;
  });

  FluidFctResult result;
  result.fct_seconds.assign(flows.size(), 0.0);
  result.ideal_rate.assign(flows.size(), 0.0);

  std::vector<std::size_t> active;          // indices into `flows`
  std::vector<double> remaining_bits(flows.size(), 0.0);
  std::size_t next_arrival = 0;
  double now = 0.0;
  NumSolverOptions warm = solver_options;

  while (next_arrival < order.size() || !active.empty()) {
    // Admit all flows arriving now.
    if (active.empty() && next_arrival < order.size()) {
      now = std::max(now, flows[order[next_arrival]].arrival_seconds);
    }
    while (next_arrival < order.size() &&
           flows[order[next_arrival]].arrival_seconds <= now + 1e-15) {
      const std::size_t id = order[next_arrival++];
      active.push_back(id);
      remaining_bits[id] = flows[id].size_bytes * 8.0;
    }

    // Optimal allocation for the active set.
    NumProblem problem;
    problem.capacities = capacities;
    problem.utilities.reserve(active.size());
    problem.flow_links.reserve(active.size());
    for (std::size_t id : active) {
      problem.utilities.push_back(flows[id].utility);
      problem.flow_links.push_back(flows[id].links);
    }
    const NumSolution solution = solve_num(problem, warm);
    ++result.solves;
    result.sweeps += solution.sweeps;
    // Prices are per-link, not per-flow: the next event's active set differs
    // by a flow or two while the dual stays close, so the converged prices
    // are the right warm start for the next solve (empty only before the
    // first event, or if the caller supplied no initial_prices).
    warm.initial_prices = solution.prices;

    // Advance to the next event: first completion or next arrival.
    double dt = std::numeric_limits<double>::infinity();
    if (next_arrival < order.size()) {
      dt = flows[order[next_arrival]].arrival_seconds - now;
    }
    for (std::size_t k = 0; k < active.size(); ++k) {
      const double rate_bps = solution.rates[k] * kRateUnitBps;
      if (rate_bps <= 0) continue;
      dt = std::min(dt, remaining_bits[active[k]] / rate_bps);
    }
    if (!std::isfinite(dt)) {
      throw std::logic_error("fluid_fct_oracle: stalled (all rates zero)");
    }
    dt = std::max(dt, 0.0);
    now += dt;
    for (std::size_t k = 0; k < active.size(); ++k) {
      remaining_bits[active[k]] -= solution.rates[k] * kRateUnitBps * dt;
    }

    // Retire completed flows.
    for (std::size_t k = 0; k < active.size();) {
      const std::size_t id = active[k];
      if (remaining_bits[id] <= 1e-6) {
        const double fct = now - flows[id].arrival_seconds;
        result.fct_seconds[id] = fct;
        result.ideal_rate[id] =
            flows[id].size_bytes * 8.0 / std::max(fct, 1e-12) / kRateUnitBps;
        active[k] = active.back();
        active.pop_back();
      } else {
        ++k;
      }
    }
  }
  return result;
}

}  // namespace numfabric::num
