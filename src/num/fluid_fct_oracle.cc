#include "num/fluid_fct_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace numfabric::num {

FluidFctResult fluid_fct_oracle(const std::vector<FluidFlow>& flows,
                                const std::vector<double>& capacities,
                                const NumSolverOptions& solver_options) {
  for (const FluidFlow& f : flows) {
    if (f.size_bytes <= 0) throw std::invalid_argument("fluid_fct_oracle: size <= 0");
    if (f.utility == nullptr) throw std::invalid_argument("fluid_fct_oracle: null utility");
    if (f.links.empty()) throw std::invalid_argument("fluid_fct_oracle: empty path");
  }

  // Process arrivals in time order but report results in input order.
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return flows[a].arrival_seconds < flows[b].arrival_seconds;
  });

  FluidFctResult result;
  result.fct_seconds.assign(flows.size(), 0.0);
  result.ideal_rate.assign(flows.size(), 0.0);

  // Compile the full flow set once; every arrival / departure is a
  // CsrProblem::set_active row patch against the same compiled incidence, and
  // every re-solve reuses one workspace (warm-started, allocation-free).
  NumProblem problem;
  problem.capacities = capacities;
  problem.utilities.reserve(flows.size());
  problem.flow_links.reserve(flows.size());
  for (const FluidFlow& f : flows) {
    problem.utilities.push_back(f.utility);
    problem.flow_links.push_back(f.links);
  }
  CsrProblem csr = CsrProblem::compile(problem);
  for (std::size_t i = 0; i < flows.size(); ++i) csr.set_active(i, false);
  NumWorkspace workspace;

  std::vector<std::size_t> active;          // indices into `flows`
  std::vector<double> remaining_bits(flows.size(), 0.0);
  std::size_t next_arrival = 0;
  double now = 0.0;
  NumSolverOptions warm = solver_options;

  while (next_arrival < order.size() || !active.empty()) {
    // Admit all flows arriving now.
    if (active.empty() && next_arrival < order.size()) {
      now = std::max(now, flows[order[next_arrival]].arrival_seconds);
    }
    while (next_arrival < order.size() &&
           flows[order[next_arrival]].arrival_seconds <= now + 1e-15) {
      const std::size_t id = order[next_arrival++];
      active.push_back(id);
      remaining_bits[id] = flows[id].size_bytes * 8.0;
      csr.set_active(id, true);
    }

    // Optimal allocation for the active set.  The first solve honours the
    // caller's initial_prices (cold at 1.0 when empty); after it the
    // workspace's own converged prices warm-start every re-solve — the next
    // event's active set differs by a flow or two while the dual stays close.
    const SolveStats stats = solve(csr, workspace, warm);
    warm.initial_prices.clear();
    ++result.solves;
    result.sweeps += stats.sweeps;
    const std::span<const double> rates = workspace.rates();

    // Advance to the next event: first completion or next arrival.
    double dt = std::numeric_limits<double>::infinity();
    if (next_arrival < order.size()) {
      dt = flows[order[next_arrival]].arrival_seconds - now;
    }
    for (const std::size_t id : active) {
      const double rate_bps = rates[id] * kRateUnitBps;
      if (rate_bps <= 0) continue;
      dt = std::min(dt, remaining_bits[id] / rate_bps);
    }
    if (!std::isfinite(dt)) {
      throw std::logic_error("fluid_fct_oracle: stalled (all rates zero)");
    }
    dt = std::max(dt, 0.0);
    now += dt;
    for (const std::size_t id : active) {
      remaining_bits[id] -= rates[id] * kRateUnitBps * dt;
    }

    // Retire completed flows.
    for (std::size_t k = 0; k < active.size();) {
      const std::size_t id = active[k];
      if (remaining_bits[id] <= 1e-6) {
        const double fct = now - flows[id].arrival_seconds;
        result.fct_seconds[id] = fct;
        result.ideal_rate[id] =
            flows[id].size_bytes * 8.0 / std::max(fct, 1e-12) / kRateUnitBps;
        csr.set_active(id, false);
        active[k] = active.back();
        active.pop_back();
      } else {
        ++k;
      }
    }
  }
  return result;
}

}  // namespace numfabric::num
