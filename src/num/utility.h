// Utility functions for the NUM framework (Table 1 of the paper).
//
// A utility function U(x) encodes a flow's benefit at rate x.  The transports
// and solvers only ever need three operations: U(x) (reporting), U'(x)
// (residual computation, Eq. 9) and U'^{-1}(p) (weight/rate computation,
// Eq. 3/7).
//
// Rate unit convention: throughout the num/ module rates are expressed in
// Mbps (`kRateUnitBps` bps per unit).  Mbps is what the paper's Table 2
// constants assume (DGD's a is stated in Mbps^-1), and it keeps powers
// x^-alpha well inside double range even for alpha ~ 5 (bandwidth function
// utilities).
#pragma once

#include <memory>

namespace numfabric::num {

/// Bits per second per NUM rate unit (rates in this module are Mbps).
inline constexpr double kRateUnitBps = 1e6;

/// Converts between wire rates (bps) and NUM rate units.
constexpr double to_rate_units(double bps) { return bps / kRateUnitBps; }
constexpr double to_bps(double rate_units) { return rate_units * kRateUnitBps; }

/// Floors preventing 0^-alpha / division blowups at start-up transients.
/// kMinPrice only guards against literal zero/negative prices; legitimate
/// marginals can be astronomically small at large alpha (x^-8 at 10 Gbps is
/// ~1e-37), so the floor must sit near the bottom of double range.
inline constexpr double kMinRate = 1e-9;
inline constexpr double kMinPrice = 1e-300;
/// Inverse-marginal results are capped here (1e12 Mbps = 1 Pbps): harmless
/// for any real allocation, prevents overflow to inf at vanishing prices.
inline constexpr double kMaxRate = 1e12;

class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// U(x); x in rate units.  Used only for reporting/objective values.
  virtual double utility(double x) const = 0;

  /// Marginal utility U'(x).
  virtual double marginal(double x) const = 0;

  /// Inverse marginal U'^{-1}(p): the rate at which the marginal utility
  /// equals price p.  Monotonically non-increasing in p.
  virtual double marginal_inverse(double price) const = 0;
};

/// Weighted alpha-fair utilities (Table 1, rows 1-3):
///
///   U(x) = w * x^(1-alpha) / (1-alpha)      (alpha != 1)
///   U(x) = w * log(x)                       (alpha == 1)
///
/// alpha = 0 maximizes throughput, alpha = 1 is proportional fairness,
/// alpha -> inf approaches max-min.  Row 3 (minimize FCT) is the special
/// case alpha = epsilon (~0.125), w = 1/flow_size: see `make_fct_utility`.
class AlphaFairUtility : public UtilityFunction {
 public:
  explicit AlphaFairUtility(double alpha, double weight = 1.0);

  double utility(double x) const override;
  double marginal(double x) const override;
  double marginal_inverse(double price) const override;

  double alpha() const { return alpha_; }
  double weight() const { return weight_; }

 private:
  double alpha_;
  double weight_;
};

/// The paper's FCT-minimizing utility (Table 1 row 3 with the footnote-2
/// epsilon fix): U(x) = (1/size) * x^(1-eps) / (1-eps).  `size_bytes` is the
/// flow's size; the weight uses size in MB so weights stay O(1) across the
/// web-search size range.
std::unique_ptr<AlphaFairUtility> make_fct_utility(double size_bytes,
                                                   double epsilon = 0.125);

}  // namespace numfabric::num
