#include "num/waterfill.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace numfabric::num {

WaterfillResult weighted_max_min(const WaterfillProblem& problem) {
  const std::size_t num_flows = problem.weights.size();
  const std::size_t num_links = problem.capacities.size();
  if (problem.flow_links.size() != num_flows) {
    throw std::invalid_argument("weighted_max_min: weights/flow_links size mismatch");
  }
  for (double w : problem.weights) {
    if (w <= 0) throw std::invalid_argument("weighted_max_min: weight <= 0");
  }
  for (double c : problem.capacities) {
    if (c <= 0) throw std::invalid_argument("weighted_max_min: capacity <= 0");
  }
  for (const auto& links : problem.flow_links) {
    if (links.empty()) throw std::invalid_argument("weighted_max_min: empty path");
    for (int l : links) {
      if (l < 0 || static_cast<std::size_t>(l) >= num_links) {
        throw std::invalid_argument("weighted_max_min: bad link index");
      }
    }
  }

  WaterfillResult result;
  result.rates.assign(num_flows, 0.0);
  result.fill_level.assign(num_flows, 0.0);
  result.bottleneck.assign(num_links, false);

  std::vector<bool> active(num_flows, true);
  // Integer counts decide which links still matter; the float weight sums
  // accumulate rounding residue as flows freeze, and must not be trusted for
  // the "does this link have active flows?" question.
  std::vector<int> active_count(num_links, 0);
  std::vector<double> active_weight(num_links, 0.0);  // sum of weights of active flows
  std::vector<double> frozen_bytes(num_links, 0.0);   // allocation of frozen flows
  for (std::size_t i = 0; i < num_flows; ++i) {
    for (int l : problem.flow_links[i]) {
      active_weight[static_cast<std::size_t>(l)] += problem.weights[i];
      ++active_count[static_cast<std::size_t>(l)];
    }
  }

  std::size_t remaining = num_flows;
  double level = 0.0;  // current water level t
  while (remaining > 0) {
    // The next link to saturate bounds the common level t:
    //   frozen_l + t * active_weight_l = c_l.
    double next_level = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0) continue;
      const double t = (problem.capacities[l] - frozen_bytes[l]) / active_weight[l];
      next_level = std::min(next_level, std::max(t, level));
    }
    if (!std::isfinite(next_level)) {
      throw std::logic_error("weighted_max_min: active flow crosses no capacitated link");
    }
    level = next_level;

    // Freeze every active flow crossing a link that is now saturated.
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active_count[l] == 0) continue;
      const double slack =
          problem.capacities[l] - frozen_bytes[l] - level * active_weight[l];
      if (slack <= 1e-9 * problem.capacities[l]) result.bottleneck[l] = true;
    }
    bool froze_any = false;
    for (std::size_t i = 0; i < num_flows; ++i) {
      if (!active[i]) continue;
      bool bottlenecked = false;
      for (int l : problem.flow_links[i]) {
        if (result.bottleneck[static_cast<std::size_t>(l)]) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      active[i] = false;
      froze_any = true;
      --remaining;
      const double rate = problem.weights[i] * level;
      result.rates[i] = rate;
      result.fill_level[i] = level;
      for (int l : problem.flow_links[i]) {
        active_weight[static_cast<std::size_t>(l)] -= problem.weights[i];
        --active_count[static_cast<std::size_t>(l)];
        frozen_bytes[static_cast<std::size_t>(l)] += rate;
      }
    }
    if (!froze_any) {
      throw std::logic_error("weighted_max_min: no progress (numeric issue)");
    }
  }
  return result;
}

}  // namespace numfabric::num
