// Bandwidth functions (BwE [35]) and their induced utility functions (§2).
//
// A bandwidth function B(f) maps the dimensionless "fair share" f to the
// bandwidth a flow should receive.  Allocation on a link picks the largest f
// with sum_i B_i(f) <= C (water-filling).  The paper derives the utility
//
//   U(x) = integral_0^x F(tau)^-alpha dtau,   F = B^{-1}
//
// whose NUM solution approximates that allocation for large alpha (~5).
//
// Representation: piecewise-linear, starting at (0, 0), with non-decreasing
// bandwidth.  Flat segments are permitted when *constructing* (Fig. 2's
// flow 2 is flat at zero until f = 2); `strictified` adds a small slope so
// the inverse exists, as the paper's "technical convenience" assumption
// requires.  Beyond the last breakpoint the function continues with the
// final segment's slope (Fig. 2's "and so on"); use `capped` to end with an
// almost-flat tail instead.
#pragma once

#include <memory>
#include <vector>

#include "num/utility.h"

namespace numfabric::num {

class BandwidthFunction {
 public:
  struct Point {
    double fair_share;  // f
    double bandwidth;   // B(f), in rate units (Mbps)
  };

  /// Breakpoints must start at f = 0, have strictly increasing fair shares
  /// and non-decreasing bandwidths.  B(0) must be 0.
  explicit BandwidthFunction(std::vector<Point> points);

  /// B(f).  Beyond the last breakpoint the final slope continues.
  double bandwidth(double fair_share) const;

  /// F(x) = B^{-1}(x): the fair share at which the flow is allocated x.
  /// On flat segments (not strictly increasing) returns the leftmost f.
  double fair_share(double bandwidth) const;

  /// A copy with all zero-slope segments (and a zero-slope tail) replaced by
  /// slope `min_slope`, making the function strictly increasing.
  BandwidthFunction strictified(double min_slope = 1e-2) const;

  /// A copy whose continuation beyond the last breakpoint has slope
  /// `tail_slope` (near-flat: the flow is "satisfied" past that point).
  BandwidthFunction capped(double tail_slope = 1e-2) const;

  const std::vector<Point>& points() const { return points_; }
  double max_defined_fair_share() const { return points_.back().fair_share; }
  double max_defined_bandwidth() const { return points_.back().bandwidth; }

 private:
  std::vector<Point> points_;
  double tail_slope_;  // slope beyond the last breakpoint
};

/// U(x) = integral_0^x F(tau)^-alpha dtau (Table 1, last row).  alpha ~ 5
/// makes the NUM allocation approximate the water-filled one (§6.3).
class BandwidthFunctionUtility : public UtilityFunction {
 public:
  BandwidthFunctionUtility(BandwidthFunction function, double alpha);

  double utility(double x) const override;        // numeric integral
  double marginal(double x) const override;       // F(x)^-alpha
  double marginal_inverse(double price) const override;  // B(price^-1/alpha)

  const BandwidthFunction& function() const { return function_; }
  double alpha() const { return alpha_; }

 private:
  BandwidthFunction function_;
  double alpha_;
};

/// The two bandwidth functions of Fig. 2.  Flow 1: strict priority for the
/// first 10 Gbps (f in [0,2]), then slope 10 to 15 Gbps at f = 2.5,
/// continuing.  Flow 2: nothing until f = 2, then twice flow 1's slope up to
/// 10 Gbps at f = 2.5, then capped.
BandwidthFunction fig2_flow1();
BandwidthFunction fig2_flow2();

}  // namespace numfabric::num
