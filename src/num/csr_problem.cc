#include "num/csr_problem.h"

#include <algorithm>
#include <stdexcept>

namespace numfabric::num {
namespace {

void validate(const NumProblem& problem) {
  const std::size_t num_flows = problem.utilities.size();
  if (problem.flow_links.size() != num_flows) {
    throw std::invalid_argument("solve_num: utilities/flow_links size mismatch");
  }
  for (const auto* u : problem.utilities) {
    if (u == nullptr) throw std::invalid_argument("solve_num: null utility");
  }
  for (double c : problem.capacities) {
    if (c <= 0) throw std::invalid_argument("solve_num: capacity <= 0");
  }
  for (const auto& links : problem.flow_links) {
    if (links.empty()) throw std::invalid_argument("solve_num: empty path");
    for (int l : links) {
      if (l < 0 || static_cast<std::size_t>(l) >= problem.capacities.size()) {
        throw std::invalid_argument("solve_num: bad link index");
      }
    }
  }
}

}  // namespace

std::vector<std::vector<int>> flows_on_link(
    const std::vector<std::vector<int>>& flow_links, std::size_t num_links) {
  std::vector<std::vector<int>> on_link(num_links);
  for (std::size_t i = 0; i < flow_links.size(); ++i) {
    for (int l : flow_links[i]) {
      on_link[static_cast<std::size_t>(l)].push_back(static_cast<int>(i));
    }
  }
  return on_link;
}

CsrProblem CsrProblem::compile(const NumProblem& problem) {
  validate(problem);
  const std::size_t num_flows = problem.utilities.size();
  const std::size_t num_links = problem.capacities.size();

  CsrProblem csr;
  csr.capacities_ = problem.capacities;

  // Flow -> link CSR, preserving path order (path_price sums round the same
  // way the legacy per-flow loops did).
  csr.flow_offsets_.resize(num_flows + 1);
  csr.flow_offsets_[0] = 0;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < num_flows; ++i) {
    nnz += problem.flow_links[i].size();
    csr.flow_offsets_[i + 1] = static_cast<std::int32_t>(nnz);
  }
  csr.flow_links_.reserve(nnz);
  for (const auto& links : problem.flow_links) {
    for (int l : links) csr.flow_links_.push_back(l);
  }

  // Link -> flow CSR in increasing flow order: counting sort over the same
  // flow-major walk the legacy flows_on_link construction used.
  csr.link_offsets_.assign(num_links + 1, 0);
  for (int l : csr.flow_links_) ++csr.link_offsets_[static_cast<std::size_t>(l) + 1];
  for (std::size_t l = 0; l < num_links; ++l) {
    csr.link_offsets_[l + 1] += csr.link_offsets_[l];
  }
  csr.link_flows_.resize(nnz);
  std::vector<std::int32_t> cursor(csr.link_offsets_.begin(),
                                   csr.link_offsets_.end() - 1);
  for (std::size_t i = 0; i < num_flows; ++i) {
    for (int l : problem.flow_links[i]) {
      csr.link_flows_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(l)]++)] = static_cast<std::int32_t>(i);
    }
  }

  // Dense utility parameters.  Positive-alpha AlphaFairUtility flows get the
  // closed form; everything else (including alpha == 0, whose
  // marginal_inverse must keep throwing) goes through the virtual fallback.
  csr.weight_.assign(num_flows, 1.0);
  csr.neg_inv_alpha_.assign(num_flows, 0.0);
  csr.generic_.assign(num_flows, nullptr);
  csr.kind_.assign(num_flows, kGeneric);
  for (std::size_t i = 0; i < num_flows; ++i) {
    const auto* alpha_fair =
        dynamic_cast<const AlphaFairUtility*>(problem.utilities[i]);
    if (alpha_fair != nullptr && alpha_fair->alpha() > 0.0) {
      csr.weight_[i] = alpha_fair->weight();
      csr.neg_inv_alpha_[i] = -1.0 / alpha_fair->alpha();
      csr.kind_[i] = csr.neg_inv_alpha_[i] == -1.0 ? kReciprocal : kPow;
    } else {
      csr.generic_[i] = problem.utilities[i];
    }
  }

  csr.active_.assign(num_flows, 1);
  csr.active_count_ = num_flows;
  csr.build_waves();
  return csr;
}

// Greedy layering of the link conflict graph (conflict = sharing a flow):
// color(l) = 1 + max color of any conflicting earlier link.  This is the
// minimal schedule in which every conflict edge crosses wave boundaries in
// id order — the property that makes wave execution bit-identical to the
// natural-order serial sweep for any thread count.
void CsrProblem::build_waves() {
  const std::size_t num_links = capacities_.size();
  std::vector<std::int32_t> color(num_links, 0);
  std::int32_t max_color = 0;
  for (std::size_t l = 0; l < num_links; ++l) {
    std::int32_t c = 0;
    for (std::int32_t i : link_flows(l)) {
      for (std::int32_t k : flow_links(static_cast<std::size_t>(i))) {
        if (static_cast<std::size_t>(k) < l) {
          c = std::max(c, color[static_cast<std::size_t>(k)] + 1);
        }
      }
    }
    color[l] = c;
    max_color = std::max(max_color, c);
  }

  const std::size_t num_waves = num_links == 0 ? 0 : static_cast<std::size_t>(max_color) + 1;
  wave_offsets_.assign(num_waves + 1, 0);
  for (std::size_t l = 0; l < num_links; ++l) {
    ++wave_offsets_[static_cast<std::size_t>(color[l]) + 1];
  }
  for (std::size_t w = 0; w < num_waves; ++w) {
    wave_offsets_[w + 1] += wave_offsets_[w];
  }
  wave_links_.resize(num_links);
  std::vector<std::int32_t> cursor(wave_offsets_.begin(),
                                   wave_offsets_.end() - 1);
  for (std::size_t l = 0; l < num_links; ++l) {
    wave_links_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(color[l])]++)] =
        static_cast<std::int32_t>(l);
  }
}

void CsrProblem::set_active(std::size_t flow, bool active) {
  if (flow >= active_.size()) {
    throw std::invalid_argument("CsrProblem::set_active: bad flow index");
  }
  if ((active_[flow] != 0) == active) return;
  active_[flow] = active ? 1 : 0;
  if (active) {
    ++active_count_;
  } else {
    --active_count_;
  }
}

}  // namespace numfabric::num
