#include "num/csr_problem.h"

#include <algorithm>
#include <stdexcept>

namespace numfabric::num {
namespace {

void validate(const NumProblem& problem) {
  const std::size_t num_flows = problem.utilities.size();
  if (problem.flow_links.size() != num_flows) {
    throw std::invalid_argument("solve_num: utilities/flow_links size mismatch");
  }
  for (const auto* u : problem.utilities) {
    if (u == nullptr) throw std::invalid_argument("solve_num: null utility");
  }
  for (double c : problem.capacities) {
    if (c <= 0) throw std::invalid_argument("solve_num: capacity <= 0");
  }
  for (const auto& links : problem.flow_links) {
    if (links.empty()) throw std::invalid_argument("solve_num: empty path");
    for (int l : links) {
      if (l < 0 || static_cast<std::size_t>(l) >= problem.capacities.size()) {
        throw std::invalid_argument("solve_num: bad link index");
      }
    }
  }
}

}  // namespace

std::vector<std::vector<int>> flows_on_link(
    const std::vector<std::vector<int>>& flow_links, std::size_t num_links) {
  std::vector<std::vector<int>> on_link(num_links);
  for (std::size_t i = 0; i < flow_links.size(); ++i) {
    for (int l : flow_links[i]) {
      on_link[static_cast<std::size_t>(l)].push_back(static_cast<int>(i));
    }
  }
  return on_link;
}

CsrProblem CsrProblem::compile(const NumProblem& problem) {
  validate(problem);
  const std::size_t num_flows = problem.utilities.size();
  const std::size_t num_links = problem.capacities.size();

  CsrProblem csr;
  csr.capacities_ = problem.capacities;

  // Flow -> link CSR, preserving path order (path_price sums round the same
  // way the legacy per-flow loops did).
  csr.flow_offsets_.resize(num_flows + 1);
  csr.flow_offsets_[0] = 0;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < num_flows; ++i) {
    nnz += problem.flow_links[i].size();
    csr.flow_offsets_[i + 1] = static_cast<std::int32_t>(nnz);
  }
  csr.flow_links_.reserve(nnz);
  for (const auto& links : problem.flow_links) {
    for (int l : links) csr.flow_links_.push_back(l);
  }

  // Link -> flow CSR in increasing flow order: counting sort over the same
  // flow-major walk the legacy flows_on_link construction used.
  csr.link_offsets_.assign(num_links + 1, 0);
  for (int l : csr.flow_links_) ++csr.link_offsets_[static_cast<std::size_t>(l) + 1];
  for (std::size_t l = 0; l < num_links; ++l) {
    csr.link_offsets_[l + 1] += csr.link_offsets_[l];
  }
  csr.link_flows_.resize(nnz);
  std::vector<std::int32_t> cursor(csr.link_offsets_.begin(),
                                   csr.link_offsets_.end() - 1);
  for (std::size_t i = 0; i < num_flows; ++i) {
    for (int l : problem.flow_links[i]) {
      csr.link_flows_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(l)]++)] = static_cast<std::int32_t>(i);
    }
  }

  // Dense utility parameters.  Positive-alpha AlphaFairUtility flows get the
  // closed form; everything else (including alpha == 0, whose
  // marginal_inverse must keep throwing) goes through the virtual fallback.
  csr.weight_.assign(num_flows, 1.0);
  csr.neg_inv_alpha_.assign(num_flows, 0.0);
  csr.generic_.assign(num_flows, nullptr);
  csr.utilities_ = problem.utilities;
  csr.kind_.assign(num_flows, kGeneric);
  for (std::size_t i = 0; i < num_flows; ++i) {
    const auto* alpha_fair =
        dynamic_cast<const AlphaFairUtility*>(problem.utilities[i]);
    if (alpha_fair != nullptr && alpha_fair->alpha() > 0.0) {
      csr.weight_[i] = alpha_fair->weight();
      csr.neg_inv_alpha_[i] = -1.0 / alpha_fair->alpha();
      csr.kind_[i] = csr.neg_inv_alpha_[i] == -1.0 ? kReciprocal : kPow;
    } else {
      csr.generic_[i] = problem.utilities[i];
    }
  }

  // All flows start active: the compacted rows are the full rows (already in
  // increasing flow id from the counting sort) and the active list is the
  // identity.
  csr.active_.assign(num_flows, 1);
  csr.link_active_ = csr.link_flows_;
  csr.link_active_count_.resize(num_links);
  for (std::size_t l = 0; l < num_links; ++l) {
    csr.link_active_count_[l] =
        csr.link_offsets_[l + 1] - csr.link_offsets_[l];
  }
  csr.active_list_.resize(num_flows);
  csr.active_pos_.resize(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    csr.active_list_[i] = static_cast<std::int32_t>(i);
    csr.active_pos_[i] = static_cast<std::int32_t>(i);
  }

  csr.link_dirty_.assign(num_links, 0);
  csr.flow_touched_.assign(num_flows, 0);
  csr.all_dirty_ = true;  // nothing solved yet: the first solve must be full

  csr.build_waves();
  return csr;
}

// Greedy layering of the link conflict graph (conflict = sharing a flow):
// color(l) = 1 + max color of any conflicting earlier link.  This is the
// minimal schedule in which every conflict edge crosses wave boundaries in
// id order — the property that makes wave execution bit-identical to the
// natural-order serial sweep for any thread count.
void CsrProblem::build_waves() {
  const std::size_t num_links = capacities_.size();
  std::vector<std::int32_t> color(num_links, 0);
  std::int32_t max_color = 0;
  for (std::size_t l = 0; l < num_links; ++l) {
    std::int32_t c = 0;
    for (std::int32_t i : link_flows(l)) {
      for (std::int32_t k : flow_links(static_cast<std::size_t>(i))) {
        if (static_cast<std::size_t>(k) < l) {
          c = std::max(c, color[static_cast<std::size_t>(k)] + 1);
        }
      }
    }
    color[l] = c;
    max_color = std::max(max_color, c);
  }

  const std::size_t num_waves = num_links == 0 ? 0 : static_cast<std::size_t>(max_color) + 1;
  wave_offsets_.assign(num_waves + 1, 0);
  for (std::size_t l = 0; l < num_links; ++l) {
    ++wave_offsets_[static_cast<std::size_t>(color[l]) + 1];
  }
  for (std::size_t w = 0; w < num_waves; ++w) {
    wave_offsets_[w + 1] += wave_offsets_[w];
  }
  wave_links_.resize(num_links);
  std::vector<std::int32_t> cursor(wave_offsets_.begin(),
                                   wave_offsets_.end() - 1);
  for (std::size_t l = 0; l < num_links; ++l) {
    wave_links_[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(color[l])]++)] =
        static_cast<std::int32_t>(l);
  }
}

void CsrProblem::mark_flow_touched(std::size_t flow) const {
  if (flow_touched_[flow] == 0) {
    flow_touched_[flow] = 1;
    touched_flows_.push_back(static_cast<std::int32_t>(flow));
  }
}

void CsrProblem::mark_link_dirty(std::int32_t link) const {
  const auto l = static_cast<std::size_t>(link);
  if (link_dirty_[l] == 0) {
    link_dirty_[l] = 1;
    dirty_links_.push_back(link);
  }
}

void CsrProblem::set_active(std::size_t flow, bool active) {
  if (flow >= active_.size()) {
    throw std::invalid_argument("CsrProblem::set_active: bad flow index");
  }
  if ((active_[flow] != 0) == active) return;
  active_[flow] = active ? 1 : 0;
  const auto id = static_cast<std::int32_t>(flow);

  // Patch each compacted row on the flow's path, keeping it sorted by flow
  // id (the legacy summation order).  Arrivals admitted in increasing flow
  // id append in O(1); a general toggle shifts the row's active tail.
  for (const std::int32_t link : flow_links(flow)) {
    const auto l = static_cast<std::size_t>(link);
    std::int32_t* row = link_active_.data() + link_offsets_[l];
    std::int32_t& count = link_active_count_[l];
    std::int32_t* pos = std::lower_bound(row, row + count, id);
    if (active) {
      std::copy_backward(pos, row + count, row + count + 1);
      *pos = id;
      ++count;
    } else {
      std::copy(pos + 1, row + count, pos);
      --count;
    }
    mark_link_dirty(link);
  }

  if (active) {
    active_pos_[flow] = static_cast<std::int32_t>(active_list_.size());
    active_list_.push_back(id);
  } else {
    const auto at = static_cast<std::size_t>(active_pos_[flow]);
    const std::int32_t moved = active_list_.back();
    active_list_[at] = moved;
    active_pos_[static_cast<std::size_t>(moved)] = static_cast<std::int32_t>(at);
    active_list_.pop_back();
    active_pos_[flow] = -1;
  }
  mark_flow_touched(flow);
}

void CsrProblem::deactivate_all() {
  std::fill(active_.begin(), active_.end(), std::uint8_t{0});
  std::fill(link_active_count_.begin(), link_active_count_.end(),
            std::int32_t{0});
  std::fill(active_pos_.begin(), active_pos_.end(), std::int32_t{-1});
  active_list_.clear();
  all_dirty_ = true;
}

void CsrProblem::mark_solved() const {
  for (const std::int32_t l : dirty_links_) {
    link_dirty_[static_cast<std::size_t>(l)] = 0;
  }
  dirty_links_.clear();
  for (const std::int32_t i : touched_flows_) {
    flow_touched_[static_cast<std::size_t>(i)] = 0;
  }
  touched_flows_.clear();
  all_dirty_ = false;
  ++epoch_;
}

}  // namespace numfabric::num
