#include "num/bandwidth_function.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace numfabric::num {

BandwidthFunction::BandwidthFunction(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("BandwidthFunction: need at least 2 points");
  }
  if (points_.front().fair_share != 0.0 || points_.front().bandwidth != 0.0) {
    throw std::invalid_argument("BandwidthFunction: must start at (0, 0)");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].fair_share <= points_[i - 1].fair_share) {
      throw std::invalid_argument("BandwidthFunction: fair shares must increase");
    }
    if (points_[i].bandwidth < points_[i - 1].bandwidth) {
      throw std::invalid_argument("BandwidthFunction: bandwidth must not decrease");
    }
  }
  const Point& a = points_[points_.size() - 2];
  const Point& b = points_.back();
  tail_slope_ = (b.bandwidth - a.bandwidth) / (b.fair_share - a.fair_share);
}

double BandwidthFunction::bandwidth(double fair_share) const {
  if (fair_share <= 0.0) return 0.0;
  if (fair_share >= points_.back().fair_share) {
    return points_.back().bandwidth +
           tail_slope_ * (fair_share - points_.back().fair_share);
  }
  // Binary search for the segment containing fair_share.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), fair_share,
      [](double f, const Point& p) { return f < p.fair_share; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (fair_share - lo.fair_share) / (hi.fair_share - lo.fair_share);
  return lo.bandwidth + t * (hi.bandwidth - lo.bandwidth);
}

double BandwidthFunction::fair_share(double bw) const {
  if (bw <= 0.0) return 0.0;
  if (bw >= points_.back().bandwidth) {
    if (tail_slope_ <= 0.0) return points_.back().fair_share;
    return points_.back().fair_share +
           (bw - points_.back().bandwidth) / tail_slope_;
  }
  auto it = std::upper_bound(points_.begin(), points_.end(), bw,
                             [](double b, const Point& p) { return b < p.bandwidth; });
  // `it` is the first point with bandwidth > bw; the segment [it-1, it]
  // contains bw.  On flat segments upper_bound already lands us past all
  // points with bandwidth == bw, giving the leftmost fair share of the rise.
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  if (hi.bandwidth == lo.bandwidth) return lo.fair_share;
  const double t = (bw - lo.bandwidth) / (hi.bandwidth - lo.bandwidth);
  return lo.fair_share + t * (hi.fair_share - lo.fair_share);
}

BandwidthFunction BandwidthFunction::strictified(double min_slope) const {
  if (min_slope <= 0) throw std::invalid_argument("strictified: min_slope <= 0");
  std::vector<Point> fixed = points_;
  for (std::size_t i = 1; i < fixed.size(); ++i) {
    const double df = fixed[i].fair_share - fixed[i - 1].fair_share;
    const double min_rise = min_slope * df;
    if (fixed[i].bandwidth < fixed[i - 1].bandwidth + min_rise) {
      fixed[i].bandwidth = fixed[i - 1].bandwidth + min_rise;
    }
  }
  BandwidthFunction result(std::move(fixed));
  result.tail_slope_ = std::max(tail_slope_, min_slope);
  return result;
}

BandwidthFunction BandwidthFunction::capped(double tail_slope) const {
  if (tail_slope < 0) throw std::invalid_argument("capped: tail_slope < 0");
  BandwidthFunction result(points_);
  result.tail_slope_ = tail_slope;
  return result;
}

BandwidthFunctionUtility::BandwidthFunctionUtility(BandwidthFunction function,
                                                   double alpha)
    : function_(std::move(function)), alpha_(alpha) {
  if (alpha <= 0) throw std::invalid_argument("BandwidthFunctionUtility: alpha <= 0");
}

double BandwidthFunctionUtility::marginal(double x) const {
  const double f = std::max(function_.fair_share(std::max(x, kMinRate)),
                            1e-6);  // F(0+) on the initial rise
  return std::pow(f, -alpha_);
}

double BandwidthFunctionUtility::marginal_inverse(double price) const {
  price = std::max(price, kMinPrice);
  // U'(x) = F(x)^-alpha = p  =>  x = B(p^{-1/alpha}).
  const double rate = function_.bandwidth(std::pow(price, -1.0 / alpha_));
  if (!std::isfinite(rate)) return kMaxRate;
  return std::clamp(rate, kMinRate, kMaxRate);
}

double BandwidthFunctionUtility::utility(double x) const {
  // Trapezoidal integration of F(tau)^-alpha; only used for reporting.
  const int steps = 512;
  const double h = std::max(x, kMinRate) / steps;
  double sum = 0.0;
  for (int i = 0; i < steps; ++i) {
    const double a = marginal(i * h);
    const double b = marginal((i + 1) * h);
    sum += 0.5 * (a + b) * h;
  }
  return sum;
}

BandwidthFunction fig2_flow1() {
  // Strict priority up to 10 Gbps as f goes 0 -> 2, then slope 10 Gbps per
  // fair-share unit up to (2.5, 15 Gbps); the tail continues at that slope
  // ("and so on").  Bandwidths in rate units (Mbps).
  return BandwidthFunction({{0.0, 0.0}, {2.0, 10'000.0}, {2.5, 15'000.0}});
}

BandwidthFunction fig2_flow2() {
  // Nothing until f = 2, then slope 20 Gbps/unit (twice flow 1's) up to
  // (2.5, 10 Gbps), capped there.  Strictify the flat head so the inverse
  // exists, and give the cap a near-flat tail.
  return BandwidthFunction({{0.0, 0.0}, {2.0, 0.0}, {2.5, 10'000.0}})
      .strictified(1.0)
      .capped(1.0);
}

}  // namespace numfabric::num
