// Fluid-level xWI iteration (§4.2, Eqs. 7-11).
//
// This runs the exact xWI dynamical system with an idealized Swift layer
// (the weighted max-min water-filler) substituted for the packet-level
// transport:
//
//   w_i   = U_i'^{-1}( sum_l p_l )                    (Eq. 7)
//   x     = weighted-max-min(w)                       (Eq. 8, Swift)
//   res_l = min_i (U_i'(x_i) - path_price_i) / |L_i|  (Eq. 9)
//   p~_l  = [ p_l + res_l - eta (1 - u_l) p_l ]_+     (Eq. 10)
//   p_l  <- beta p_l + (1 - beta) p~_l                (Eq. 11)
//
// Two uses: (1) it validates the algorithm's fixed point against the NUM
// oracle independent of packet-level noise (the paper proves the fixed point
// is the NUM optimum); (2) it is a fast standalone NUM solver in its own
// right, converging in tens of iterations.
#pragma once

#include <vector>

#include "num/num_solver.h"
#include "num/utility.h"

namespace numfabric::num {

struct XwiFluidOptions {
  double eta = 5.0;    // under-utilization gain (Table 2)
  double beta = 0.5;   // price averaging (Table 2)
  double initial_price = 1.0;
  int max_iterations = 10'000;
  /// Stop when the max price change (relative to the price scale) falls
  /// below this.  Note: the xWI iteration reaches the optimum geometrically
  /// but then hovers in a tiny limit cycle (~1e-8 relative) as Eq. 9's min
  /// switches between flows — consistent with the paper's §8 note that
  /// asymptotic convergence is not proven.  The default sits above that
  /// cycle.
  double tolerance = 1e-7;
};

struct XwiFluidResult {
  std::vector<double> rates;
  std::vector<double> weights;
  std::vector<double> prices;
  int iterations = 0;
  bool converged = false;
  /// Per-iteration max relative rate error vs the NUM optimum, if a
  /// reference solution was supplied (for convergence-speed plots).
  std::vector<double> error_trace;
};

/// Runs the xWI iteration on `problem`.  If `reference_rates` is non-empty,
/// records the per-iteration deviation trace against it.
XwiFluidResult xwi_fluid_solve(const NumProblem& problem,
                               const XwiFluidOptions& options = {},
                               const std::vector<double>& reference_rates = {});

}  // namespace numfabric::num
