// Ground-truth NUM solver (the paper's "Oracle").
//
// Solves  max sum_i U_i(x_i)  s.t.  R x <= c,  x >= 0  for smooth, strictly
// concave, increasing utilities, by Gauss-Seidel sweeps on the dual: each
// link in turn sets its price p_l >= 0 so that its capacity constraint holds
// with complementary slackness, given the other links' prices:
//
//   sum_{i on l} U_i'^{-1}( sum_{k in path(i)} p_k ) = c_l   (or p_l = 0).
//
// The per-link subproblem is monotone in p_l, so a bisection solves it
// exactly; sweeping to a fixed point yields KKT-satisfying prices/rates
// (Eqs. 5-6).  This is far more robust than running DGD to convergence and
// needs no step size — ideal for an oracle.
//
// API: compile the problem once (num::CsrProblem::compile), then call
// solve() with a caller-owned NumWorkspace.  Re-solves against the same
// workspace are warm-started and allocation-free; flow arrival/departure is
// a CsrProblem::set_active row patch.  NumSolverOptions::policy selects
// serial (the reference spec) or parallel wave execution — bit-identical for
// every thread count.  See src/num/README.md.
#pragma once

#include <vector>

#include "num/csr_problem.h"
#include "num/utility.h"

namespace numfabric::num {

struct NumSolverOptions {
  int max_sweeps = 2000;
  /// Relative feasibility / slackness tolerance.
  double tolerance = 1e-9;
  /// Warm-start prices.  Non-empty overrides the workspace's warm state;
  /// empty defers to the workspace (warm after a previous solve, else cold
  /// at 1.0 everywhere).
  std::vector<double> initial_prices;
  /// serial (default) or parallel(n); results are identical either way.
  ExecutionPolicy policy;
  /// Incremental re-solve: seed a worklist from the links dirtied by
  /// set_active since the last solve, patch path_price only for toggled
  /// flows, relax links off the worklist (re-enqueueing neighbors that share
  /// an active flow when a price moves >= tolerance), then run full
  /// verification sweeps to convergence.  Converges to the same tolerance as
  /// a full solve but is NOT bit-identical to it (stored path_price carries
  /// prior-solve rounding) — keep it off wherever golden hashes apply.  It
  /// IS deterministic and thread-count invariant: the worklist phase is
  /// serial, the verification sweeps use the wave schedule.  Falls back to a
  /// full solve when the workspace is cold, initial_prices are set, the
  /// workspace last solved a different problem/epoch, or the problem is
  /// all-dirty (fresh compile / deactivate_all).
  bool incremental = false;
};

struct SolveStats {
  int sweeps = 0;
  bool converged = false;
  /// max_l (sum_{i on l} x_i - c_l) / c_l over links.
  double max_violation = 0.0;
  /// Worklist pops performed by the incremental path (0 for full solves).
  std::int64_t relaxations = 0;
};

/// Runs Gauss-Seidel dual sweeps on the compiled problem.  Results land in
/// the workspace: prices() per link, rates() per flow (0 for inactive
/// flows).  Allocation-free when the workspace has solved this shape before
/// (counted by the allocs_solver_workspace substrate stat).
SolveStats solve(const CsrProblem& problem, NumWorkspace& workspace,
                 const NumSolverOptions& options = {});

// ---------------------------------------------------------------------------
// Deprecated compatibility wrapper: compiles + solves in one call, paying a
// compile and a workspace allocation per invocation.  Call sites that solve
// once don't care; anything that re-solves (oracles, experiment loops)
// should hold a CsrProblem + NumWorkspace instead.
// ---------------------------------------------------------------------------

struct NumSolution {
  std::vector<double> rates;
  std::vector<double> prices;
  int sweeps = 0;
  bool converged = false;
  /// max_l |sum_{i on l} x_i - c_l| / c_l over saturated links.
  double max_violation = 0.0;
};

/// DEPRECATED: compile once via CsrProblem::compile and call solve() with a
/// reusable NumWorkspace.  The repo has no internal callers left; this is a
/// compatibility shim for external code only (parity-tested against the new
/// API in csr_solver_test.cc).  New code must not use it.
NumSolution solve_num(const NumProblem& problem,
                      const NumSolverOptions& options = {});

/// KKT residual check used by tests: returns the maximum over flows of
/// |U'(x_i) - sum prices| / U'(x_i) plus the maximum complementary slackness
/// violation.  Near zero iff (rates, prices) solve the NUM problem.
/// Link loads accumulate flow-major into a per-link vector — O(nnz) instead
/// of the former O(links x flows x path) rescan — in increasing flow id per
/// link, i.e. bitwise the legacy summation order.
double kkt_residual(const NumProblem& problem, const std::vector<double>& rates,
                    const std::vector<double>& prices);

/// CSR overload: the same residual over the compiled problem's *active*
/// flows and compacted rows in O(active nnz) — usable at mega scale
/// (inactive flows have rate 0 and contribute nothing).
double kkt_residual(const CsrProblem& problem, std::span<const double> rates,
                    std::span<const double> prices);

}  // namespace numfabric::num
