// Ground-truth NUM solver (the paper's "Oracle").
//
// Solves  max sum_i U_i(x_i)  s.t.  R x <= c,  x >= 0  for smooth, strictly
// concave, increasing utilities, by Gauss-Seidel sweeps on the dual: each
// link in turn sets its price p_l >= 0 so that its capacity constraint holds
// with complementary slackness, given the other links' prices:
//
//   sum_{i on l} U_i'^{-1}( sum_{k in path(i)} p_k ) = c_l   (or p_l = 0).
//
// The per-link subproblem is monotone in p_l, so a bisection solves it
// exactly; sweeping to a fixed point yields KKT-satisfying prices/rates
// (Eqs. 5-6).  This is far more robust than running DGD to convergence and
// needs no step size — ideal for an oracle.
#pragma once

#include <vector>

#include "num/utility.h"

namespace numfabric::num {

struct NumProblem {
  /// Non-owning views of per-flow utilities (caller keeps them alive).
  std::vector<const UtilityFunction*> utilities;
  /// Per-flow list of link indices (non-empty).
  std::vector<std::vector<int>> flow_links;
  /// Per-link capacity in rate units (Mbps).
  std::vector<double> capacities;
};

struct NumSolverOptions {
  int max_sweeps = 2000;
  /// Relative feasibility / slackness tolerance.
  double tolerance = 1e-9;
  /// Warm-start prices (empty = start at 1.0 everywhere).
  std::vector<double> initial_prices;
};

struct NumSolution {
  std::vector<double> rates;
  std::vector<double> prices;
  int sweeps = 0;
  bool converged = false;
  /// max_l |sum_{i on l} x_i - c_l| / c_l over saturated links.
  double max_violation = 0.0;
};

NumSolution solve_num(const NumProblem& problem,
                      const NumSolverOptions& options = {});

/// KKT residual check used by tests: returns the maximum over flows of
/// |U'(x_i) - sum prices| / U'(x_i) plus the maximum complementary slackness
/// violation.  Near zero iff (rates, prices) solve the NUM problem.
double kkt_residual(const NumProblem& problem, const std::vector<double>& rates,
                    const std::vector<double>& prices);

}  // namespace numfabric::num
