// Compiled NUM problem: CSR incidence + dense utility parameters + a wave
// schedule for deterministic parallel Gauss-Seidel.
//
// Lifecycle (see src/num/README.md for the full story):
//
//   num::NumProblem problem = ...;                  // authoring form
//   num::CsrProblem csr = num::CsrProblem::compile(problem);
//   num::NumWorkspace workspace;                    // caller-owned, reusable
//   num::solve(csr, workspace, options);            // cold solve
//   ...
//   csr.set_active(flow, false);                    // CSR row patch
//   num::solve(csr, workspace, options);            // warm, zero-alloc
//
// compile() unpacks the pointer-heavy NumProblem into flat arrays:
//  * flow->link and link->flow incidence in CSR form (offsets + flat index
//    arrays) — the link->flow lists are in increasing flow order, which is
//    byte-for-byte the summation order the legacy solve_num used, so load
//    accumulation rounds identically;
//  * per-flow AlphaFairUtility parameters as dense SoA (weight, -1/alpha),
//    so the solver's inner loop runs closed-form arithmetic with no virtual
//    dispatch.  Flows whose utility is not a positive-alpha AlphaFairUtility
//    keep a generic UtilityFunction* fallback with the exact legacy
//    semantics (including the alpha == 0 throw);
//  * a wave schedule: links colored greedily in id order with
//    color(l) = 1 + max{color(k) : k < l, k shares a flow with l}.  Within a
//    wave no two links share a flow, every conflicting earlier link sits in
//    a strictly earlier wave and every conflicting later link in a strictly
//    later wave — so executing waves in order, links within a wave in any
//    order or in parallel, is bit-identical to the natural-order serial
//    sweep (non-conflicting per-link updates touch disjoint state).
//
// set_active() toggles a flow without recompiling: it is exactly the
// subproblem over the active rows.  Two structures keep that patch O(path ×
// row-active) instead of forcing the solver back to O(history):
//  * per-link *compacted active rows*: alongside each full link->flow row,
//    the prefix [link_offsets_[l], link_offsets_[l] + link_active_count_[l])
//    of link_active_ lists only the link's active flows, maintained sorted
//    by flow id — the legacy summation order — so iterating the compacted
//    row yields the identical values in the identical order as scanning the
//    full row and skipping inactives.  Every load sum therefore rounds
//    bit-identically while costing O(active-on-link), not O(ever-compiled);
//  * a global active-flow list (unsorted, swap-remove) for the solver's
//    per-flow passes (path_price init, rate extraction) — those loops write
//    disjoint per-flow slots, so iteration order cannot affect any bit.
//
// set_active() additionally records a *dirty set* for the incremental
// re-solve path (NumSolverOptions::incremental): the links whose active rows
// changed and the flows that were toggled since the last solve against this
// problem.  The solver consumes the sets via dirty_links()/touched_flows()
// and acknowledges them with mark_solved(); see src/num/README.md for the
// contract.  The wave schedule is computed over the full flow set and stays
// valid for every active subset.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "num/utility.h"
#include "util/worker_pool.h"

namespace numfabric::num {

struct NumProblem {
  /// Non-owning views of per-flow utilities (caller keeps them alive).
  std::vector<const UtilityFunction*> utilities;
  /// Per-flow list of link indices (non-empty).
  std::vector<std::vector<int>> flow_links;
  /// Per-link capacity in rate units (Mbps).
  std::vector<double> capacities;
};

/// How a solve runs.  serial() is the reference spec (natural link order);
/// parallel(n) executes the wave schedule on n threads and is bit-identical
/// to serial() for every n (see the wave-schedule argument above).
struct ExecutionPolicy {
  int threads = 1;

  static ExecutionPolicy serial() { return {1}; }
  static ExecutionPolicy parallel(int threads) {
    return {threads < 1 ? 1 : threads};
  }
};

class CsrProblem {
 public:
  /// Validates and compiles `problem` (throws std::invalid_argument exactly
  /// where the legacy solve_num did).  All flows start active.  The utility
  /// objects are borrowed; keep them alive for the CsrProblem's lifetime.
  static CsrProblem compile(const NumProblem& problem);

  std::size_t num_flows() const { return weight_.size(); }
  std::size_t num_links() const { return capacities_.size(); }
  std::size_t num_waves() const { return wave_offsets_.size() - 1; }

  /// The CSR row patch: include/exclude one flow from subsequent solves.
  /// Maintains the compacted active rows (sorted insert/remove on each link
  /// of the flow's path) and records the flow + its links in the dirty set.
  void set_active(std::size_t flow, bool active);
  bool active(std::size_t flow) const { return active_[flow] != 0; }
  std::size_t active_count() const { return active_list_.size(); }

  /// Deactivates every flow in O(flows + links) — the bulk form of
  /// set_active(i, false) for engine resets, where per-flow removal from the
  /// compacted rows would cost O(row²).  Leaves the dirty set in the
  /// "everything changed" state (all_dirty), forcing the next solve full.
  void deactivate_all();

  const std::vector<double>& capacities() const { return capacities_; }

  // --- flat views for the solver ------------------------------------------
  std::span<const std::int32_t> flow_links(std::size_t flow) const {
    return {flow_links_.data() + flow_offsets_[flow],
            flow_links_.data() + flow_offsets_[flow + 1]};
  }
  std::span<const std::int32_t> link_flows(std::size_t link) const {
    return {link_flows_.data() + link_offsets_[link],
            link_flows_.data() + link_offsets_[link + 1]};
  }
  /// The compacted row: the link's *active* flows, sorted by flow id — the
  /// same values in the same order as link_flows(link) filtered by active().
  std::span<const std::int32_t> link_active_flows(std::size_t link) const {
    return {link_active_.data() + link_offsets_[link],
            link_active_.data() + link_offsets_[link] +
                link_active_count_[link]};
  }
  /// All active flows, unsorted (swap-remove order).  Safe wherever the
  /// consumer writes disjoint per-flow slots; use link_active_flows for any
  /// order-sensitive summation.
  std::span<const std::int32_t> active_flows() const { return active_list_; }
  std::span<const std::int32_t> wave_links(std::size_t wave) const {
    return {wave_links_.data() + wave_offsets_[wave],
            wave_links_.data() + wave_offsets_[wave + 1]};
  }

  // --- dirty set (incremental re-solve contract) --------------------------
  // set_active accumulates changes; num::solve consumes them and calls
  // mark_solved() to start the next accumulation window.  The sets are
  // observer state, not part of the problem's mathematical value, hence
  // mutable/const.  `epoch()` counts mark_solved calls so a workspace can
  // prove the accumulated sets describe changes since *its* last solve (a
  // second workspace interleaving solves bumps the epoch and falls back to
  // a full solve).
  bool all_dirty() const { return all_dirty_; }
  std::span<const std::int32_t> dirty_links() const { return dirty_links_; }
  std::span<const std::int32_t> touched_flows() const {
    return touched_flows_;
  }
  std::uint64_t epoch() const { return epoch_; }
  void mark_solved() const;

  /// U'^{-1}(price) for one flow — bitwise the utility's marginal_inverse,
  /// devirtualized for alpha-fair flows (reciprocal for alpha == 1, one
  /// std::pow otherwise).
  double marginal_inverse(std::size_t flow, double price) const {
    switch (kind_[flow]) {
      case kReciprocal: {
        // pow(x, -1.0) is 1/x bitwise (asserted by a unit test), so the
        // alpha == 1 inner loop is one divide instead of a pow.
        const double rate =
            1.0 / (std::max(price, kMinPrice) / weight_[flow]);
        if (!std::isfinite(rate)) return kMaxRate;
        return std::min(rate, kMaxRate);
      }
      case kPow: {
        const double rate = std::pow(std::max(price, kMinPrice) / weight_[flow],
                                     neg_inv_alpha_[flow]);
        if (!std::isfinite(rate)) return kMaxRate;
        return std::min(rate, kMaxRate);
      }
      default:
        return generic_[flow]->marginal_inverse(price);
    }
  }

  /// U'(rate) for one flow (the compiled twin of marginal_inverse, used by
  /// the CSR kkt_residual overload).
  double marginal(std::size_t flow, double rate) const {
    return utilities_[flow]->marginal(rate);
  }

 private:
  enum Kind : std::uint8_t { kReciprocal, kPow, kGeneric };

  CsrProblem() = default;

  void build_waves();
  void mark_flow_touched(std::size_t flow) const;
  void mark_link_dirty(std::int32_t link) const;

  std::vector<std::int32_t> flow_offsets_;  // num_flows + 1
  std::vector<std::int32_t> flow_links_;    // flat, path order
  std::vector<std::int32_t> link_offsets_;  // num_links + 1
  std::vector<std::int32_t> link_flows_;    // flat, increasing flow id
  std::vector<std::int32_t> wave_offsets_;  // num_waves + 1
  std::vector<std::int32_t> wave_links_;    // flat, increasing link id per wave

  // Compacted active rows: same offsets as link_flows_, first
  // link_active_count_[l] entries of each row are the link's active flows in
  // increasing flow id.
  std::vector<std::int32_t> link_active_;
  std::vector<std::int32_t> link_active_count_;  // num_links

  std::vector<double> capacities_;
  std::vector<double> weight_;         // alpha-fair weight (1.0 for generic)
  std::vector<double> neg_inv_alpha_;  // -1/alpha (0.0 for generic)
  std::vector<const UtilityFunction*> generic_;  // non-null iff kind kGeneric
  std::vector<const UtilityFunction*> utilities_;  // all, for marginal()
  std::vector<std::uint8_t> kind_;

  std::vector<std::uint8_t> active_;
  std::vector<std::int32_t> active_list_;  // active flows, swap-remove order
  std::vector<std::int32_t> active_pos_;   // flow -> index in active_list_

  // Dirty-set accumulation (see mark_solved).
  mutable std::vector<std::uint8_t> link_dirty_;
  mutable std::vector<std::int32_t> dirty_links_;
  mutable std::vector<std::uint8_t> flow_touched_;
  mutable std::vector<std::int32_t> touched_flows_;
  mutable bool all_dirty_ = true;
  mutable std::uint64_t epoch_ = 0;
};

/// Caller-owned solver state: prices, per-flow path prices, scratch, rates,
/// and the lazily created worker pool for parallel policies.  Reusing one
/// workspace across solves of the same (or same-shaped) problem makes every
/// re-solve allocation-free (tracked by the allocs_solver_workspace
/// substrate counter) and warm-starts it from the previous solve's prices.
class NumWorkspace {
 public:
  NumWorkspace() = default;

  /// Per-link prices after the last solve (link index order).
  std::span<const double> prices() const { return prices_; }
  /// Per-flow rates after the last solve; inactive flows report 0.
  std::span<const double> rates() const { return rates_; }

  /// Forgets the warm-start state: the next solve starts cold (prices 1.0)
  /// unless the options carry explicit initial_prices.  Buffers keep their
  /// capacity, so the next solve stays allocation-free.
  void reset() {
    warm_ = false;
    bound_problem_ = nullptr;
  }

 private:
  friend struct SolverAccess;

  std::vector<double> prices_;
  std::vector<double> path_price_;
  std::vector<double> base_;    // path price minus the updating link's price
  std::vector<double> change_;  // per-link |new - old| for the wave path
  std::vector<double> rates_;
  bool warm_ = false;

  // Incremental re-solve state: the problem/epoch the stored path_price and
  // rates correspond to (see CsrProblem::epoch), a fixed-capacity FIFO ring
  // of links to relax and its membership bitmap.
  const CsrProblem* bound_problem_ = nullptr;
  std::uint64_t bound_epoch_ = 0;
  std::vector<std::int32_t> worklist_;   // ring buffer, capacity num_links
  std::vector<std::uint8_t> in_queue_;   // per-link membership

  std::unique_ptr<util::WorkerPool> pool_;
};

/// Shared incidence helper: flows_on_link lists in increasing flow order —
/// the summation order every solver in num/ uses.  bwe_waterfill and
/// xwi_fluid build their transposed incidence through this so all of num/
/// rounds identically.
std::vector<std::vector<int>> flows_on_link(
    const std::vector<std::vector<int>>& flow_links, std::size_t num_links);

}  // namespace numfabric::num
