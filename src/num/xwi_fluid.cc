#include "num/xwi_fluid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "num/waterfill.h"

namespace numfabric::num {

XwiFluidResult xwi_fluid_solve(const NumProblem& problem,
                               const XwiFluidOptions& options,
                               const std::vector<double>& reference_rates) {
  const std::size_t num_flows = problem.utilities.size();
  const std::size_t num_links = problem.capacities.size();
  if (!reference_rates.empty() && reference_rates.size() != num_flows) {
    throw std::invalid_argument("xwi_fluid_solve: reference size mismatch");
  }

  const std::vector<std::vector<int>> on_link =
      flows_on_link(problem.flow_links, num_links);

  std::vector<double> prices(num_links, options.initial_price);
  XwiFluidResult result;

  WaterfillProblem swift;
  swift.flow_links = problem.flow_links;
  swift.capacities = problem.capacities;
  swift.weights.assign(num_flows, 1.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Eq. 7: weights from path prices.
    std::vector<double> path_price(num_flows, 0.0);
    for (std::size_t i = 0; i < num_flows; ++i) {
      for (int l : problem.flow_links[i]) {
        path_price[i] += prices[static_cast<std::size_t>(l)];
      }
      swift.weights[i] =
          std::max(problem.utilities[i]->marginal_inverse(path_price[i]), kMinRate);
    }

    // Eq. 8: Swift's weighted max-min allocation.
    const WaterfillResult allocation = weighted_max_min(swift);

    if (!reference_rates.empty()) {
      double err = 0.0;
      for (std::size_t i = 0; i < num_flows; ++i) {
        err = std::max(err, std::abs(allocation.rates[i] - reference_rates[i]) /
                                std::max(reference_rates[i], kMinRate));
      }
      result.error_trace.push_back(err);
    }

    // Eq. 9-11: price updates.  Convergence is judged by the change
    // relative to the overall price scale: under-utilized links' prices
    // decay geometrically toward zero and would never settle in a per-link
    // relative metric.
    double price_scale = 0.0;
    for (double p : prices) price_scale = std::max(price_scale, p);
    price_scale = std::max(price_scale, kMinPrice);
    double max_change = 0.0;
    std::vector<double> new_prices(num_links);
    for (std::size_t l = 0; l < num_links; ++l) {
      double min_residual = std::numeric_limits<double>::infinity();
      double load = 0.0;
      for (int fi : on_link[l]) {
        const auto i = static_cast<std::size_t>(fi);
        const double residual =
            (problem.utilities[i]->marginal(allocation.rates[i]) - path_price[i]) /
            static_cast<double>(problem.flow_links[i].size());
        min_residual = std::min(min_residual, residual);
        load += allocation.rates[i];
      }
      if (!std::isfinite(min_residual)) min_residual = 0.0;  // idle link
      const double utilization =
          std::min(load / problem.capacities[l], 1.0);
      const double p_res = prices[l] + min_residual;
      const double p_new =
          std::max(p_res - options.eta * (1.0 - utilization) * prices[l], 0.0);
      new_prices[l] = options.beta * prices[l] + (1.0 - options.beta) * p_new;
      max_change =
          std::max(max_change, std::abs(new_prices[l] - prices[l]) / price_scale);
    }
    prices = std::move(new_prices);
    result.iterations = iter + 1;
    if (max_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Final allocation at the settled prices.
  std::vector<double> path_price(num_flows, 0.0);
  for (std::size_t i = 0; i < num_flows; ++i) {
    for (int l : problem.flow_links[i]) {
      path_price[i] += prices[static_cast<std::size_t>(l)];
    }
    swift.weights[i] =
        std::max(problem.utilities[i]->marginal_inverse(path_price[i]), kMinRate);
  }
  result.rates = weighted_max_min(swift).rates;
  result.weights = swift.weights;
  result.prices = std::move(prices);
  return result;
}

}  // namespace numfabric::num
