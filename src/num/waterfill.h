// Weighted max-min fair allocation by progressive filling.
//
// This is the exact fluid model of what Swift (WFQ + rate control) achieves
// in the network (§4.1): every flow i gets x_i = w_i * t_i where t_i is the
// water level of its bottleneck link, levels rising until every flow crosses
// a saturated link.  Used as the inner allocation step of the fluid xWI
// iteration and as a ground-truth oracle in tests.
#pragma once

#include <vector>

namespace numfabric::num {

struct WaterfillProblem {
  /// Per-flow positive weights.
  std::vector<double> weights;
  /// Per-flow list of link indices the flow traverses (non-empty).
  std::vector<std::vector<int>> flow_links;
  /// Per-link capacity, in rate units.
  std::vector<double> capacities;
};

struct WaterfillResult {
  std::vector<double> rates;       // per flow
  std::vector<double> fill_level;  // per flow: its bottleneck water level t_i
  std::vector<bool> bottleneck;    // per link: saturated during filling
};

/// Computes the weighted max-min allocation.  Throws std::invalid_argument on
/// malformed input (empty paths, non-positive weights/capacities).
WaterfillResult weighted_max_min(const WaterfillProblem& problem);

}  // namespace numfabric::num
