#include "num/num_solver.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace numfabric::num {
namespace {

void validate(const NumProblem& problem) {
  const std::size_t num_flows = problem.utilities.size();
  if (problem.flow_links.size() != num_flows) {
    throw std::invalid_argument("solve_num: utilities/flow_links size mismatch");
  }
  for (const auto* u : problem.utilities) {
    if (u == nullptr) throw std::invalid_argument("solve_num: null utility");
  }
  for (double c : problem.capacities) {
    if (c <= 0) throw std::invalid_argument("solve_num: capacity <= 0");
  }
  for (const auto& links : problem.flow_links) {
    if (links.empty()) throw std::invalid_argument("solve_num: empty path");
    for (int l : links) {
      if (l < 0 || static_cast<std::size_t>(l) >= problem.capacities.size()) {
        throw std::invalid_argument("solve_num: bad link index");
      }
    }
  }
}

}  // namespace

NumSolution solve_num(const NumProblem& problem, const NumSolverOptions& options) {
  validate(problem);
  const std::size_t num_flows = problem.utilities.size();
  const std::size_t num_links = problem.capacities.size();

  // flows_on_link[l]: which flows cross link l.
  std::vector<std::vector<int>> flows_on_link(num_links);
  for (std::size_t i = 0; i < num_flows; ++i) {
    for (int l : problem.flow_links[i]) {
      flows_on_link[static_cast<std::size_t>(l)].push_back(static_cast<int>(i));
    }
  }

  std::vector<double> prices = options.initial_prices;
  const bool warm = !prices.empty();
  if (!warm) {
    prices.assign(num_links, 1.0);
  } else if (prices.size() != num_links) {
    throw std::invalid_argument("solve_num: initial_prices size mismatch");
  }
  // Warm-started solves (re-solves across semi-dynamic epochs / fluid-oracle
  // events) stop each per-link bisection once the bracket is two orders of
  // magnitude below the sweep tolerance — the sweep loop cannot distinguish
  // prices closer than that, so the remaining ~60 fixed-depth halvings are
  // pure waste.  Cold solves keep the legacy fixed-depth bisection so their
  // results stay bit-identical.
  const double price_resolution = warm ? options.tolerance * 1e-2 : 0.0;

  // path_price[i] = sum of prices along flow i's path, kept incrementally.
  std::vector<double> path_price(num_flows, 0.0);
  for (std::size_t i = 0; i < num_flows; ++i) {
    for (int l : problem.flow_links[i]) {
      path_price[i] += prices[static_cast<std::size_t>(l)];
    }
  }

  auto link_load = [&](std::size_t l, double candidate_price,
                       const std::vector<double>& base) {
    double load = 0.0;
    for (int i : flows_on_link[l]) {
      load += problem.utilities[static_cast<std::size_t>(i)]->marginal_inverse(
          base[static_cast<std::size_t>(i)] + candidate_price);
    }
    return load;
  };

  NumSolution solution;
  std::vector<double> base(num_flows);  // path price minus this link's price
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double max_price_change = 0.0;
    for (std::size_t l = 0; l < num_links; ++l) {
      if (flows_on_link[l].empty()) {
        prices[l] = 0.0;
        continue;
      }
      for (int i : flows_on_link[l]) {
        base[static_cast<std::size_t>(i)] =
            path_price[static_cast<std::size_t>(i)] - prices[l];
      }
      const double capacity = problem.capacities[l];
      double new_price;
      if (link_load(l, 0.0, base) <= capacity) {
        new_price = 0.0;  // under-loaded even for free: complementary slackness
      } else {
        // Bracket: load decreases in price; double until under capacity.
        double lo = 0.0;
        double hi = std::max(prices[l], 1e-6);
        while (link_load(l, hi, base) > capacity) {
          lo = hi;
          hi *= 2.0;
          if (hi > 1e30) throw std::logic_error("solve_num: price diverged");
        }
        for (int iter = 0; iter < 100; ++iter) {
          if (price_resolution > 0.0 && hi - lo <= price_resolution) break;
          const double mid = 0.5 * (lo + hi);
          if (link_load(l, mid, base) > capacity) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        new_price = 0.5 * (lo + hi);
      }
      max_price_change = std::max(max_price_change, std::abs(new_price - prices[l]));
      for (int i : flows_on_link[l]) {
        path_price[static_cast<std::size_t>(i)] =
            base[static_cast<std::size_t>(i)] + new_price;
      }
      prices[l] = new_price;
    }
    solution.sweeps = sweep + 1;
    if (max_price_change < options.tolerance) {
      solution.converged = true;
      break;
    }
  }

  solution.prices = prices;
  solution.rates.resize(num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    solution.rates[i] = problem.utilities[i]->marginal_inverse(path_price[i]);
  }
  // Feasibility check on saturated links.
  for (std::size_t l = 0; l < num_links; ++l) {
    double load = 0.0;
    for (int i : flows_on_link[l]) load += solution.rates[static_cast<std::size_t>(i)];
    const double violation = (load - problem.capacities[l]) / problem.capacities[l];
    solution.max_violation = std::max(solution.max_violation, violation);
  }
  return solution;
}

double kkt_residual(const NumProblem& problem, const std::vector<double>& rates,
                    const std::vector<double>& prices) {
  double residual = 0.0;
  for (std::size_t i = 0; i < problem.utilities.size(); ++i) {
    double path_price = 0.0;
    for (int l : problem.flow_links[i]) path_price += prices[static_cast<std::size_t>(l)];
    const double marginal = problem.utilities[i]->marginal(rates[i]);
    residual = std::max(residual, std::abs(marginal - path_price) /
                                      std::max(marginal, kMinPrice));
  }
  for (std::size_t l = 0; l < problem.capacities.size(); ++l) {
    double load = 0.0;
    for (std::size_t i = 0; i < problem.flow_links.size(); ++i) {
      for (int k : problem.flow_links[i]) {
        if (static_cast<std::size_t>(k) == l) load += rates[i];
      }
    }
    const double slack = problem.capacities[l] - load;
    // Complementary slackness: p_l * slack ~ 0 (normalized).
    residual = std::max(residual, prices[l] * std::max(slack, 0.0) /
                                      problem.capacities[l]);
    // Feasibility.
    residual = std::max(residual, -slack / problem.capacities[l]);
  }
  return residual;
}

}  // namespace numfabric::num
