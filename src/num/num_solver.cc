#include "num/num_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "sim/substrate_stats.h"

namespace numfabric::num {

// Private accessor so the solver can use the workspace's buffers without the
// header exposing mutable internals to every includer.
struct SolverAccess {
  static std::vector<double>& prices(NumWorkspace& ws) { return ws.prices_; }
  static std::vector<double>& path_price(NumWorkspace& ws) {
    return ws.path_price_;
  }
  static std::vector<double>& base(NumWorkspace& ws) { return ws.base_; }
  static std::vector<double>& change(NumWorkspace& ws) { return ws.change_; }
  static std::vector<double>& rates(NumWorkspace& ws) { return ws.rates_; }
  static bool& warm(NumWorkspace& ws) { return ws.warm_; }
  static std::unique_ptr<util::WorkerPool>& pool(NumWorkspace& ws) {
    return ws.pool_;
  }
};

namespace {

/// resize() that counts actual heap growth into the substrate stats — the
/// zero-allocation-per-re-solve guarantee is measured, not assumed.
void sized(std::vector<double>& v, std::size_t n) {
  if (v.capacity() < n) ++sim::substrate_stats().allocs_solver_workspace;
  v.resize(n);
}

/// The per-link Gauss-Seidel update.  Reads/writes prices[l], base and
/// path_price of the link's active flows only — state disjoint from every
/// other link in the same wave — and returns |new_price - old_price|.
///
/// Arithmetic is line-for-line the legacy solve_num bisection; the three
/// differences are bit-exact accelerations:
///  * load sums early-exit once the partial sum exceeds capacity (terms are
///    non-negative and correctly rounded addition is monotone, so the
///    verdict of the > capacity predicate — the only thing the bisection
///    ever reads — is unchanged);
///  * marginal_inverse is devirtualized through CsrProblem (same arithmetic
///    sequence, see csr_problem.h);
///  * the fixed-depth bisection breaks once an iteration leaves the bracket
///    bitwise unchanged — every remaining iteration would recompute the same
///    midpoint and take the same branch, so the final 0.5 * (lo + hi) is
///    untouched.
double update_link(const CsrProblem& problem, std::size_t l,
                   std::vector<double>& prices,
                   std::vector<double>& path_price, std::vector<double>& base,
                   double price_resolution) {
  const auto flows = problem.link_flows(l);

  // Does the load at `candidate` exceed capacity?  (The bisection only ever
  // needs this predicate, never the load value itself.)
  const auto overloaded = [&](double candidate) {
    const double capacity = problem.capacities()[l];
    double load = 0.0;
    for (const std::int32_t i : flows) {
      const auto fi = static_cast<std::size_t>(i);
      if (!problem.active(fi)) continue;
      load += problem.marginal_inverse(fi, base[fi] + candidate);
      if (load > capacity) return true;
    }
    return false;
  };

  bool any_active = false;
  for (const std::int32_t i : flows) {
    const auto fi = static_cast<std::size_t>(i);
    if (!problem.active(fi)) continue;
    any_active = true;
    base[fi] = path_price[fi] - prices[l];
  }
  if (!any_active) {
    prices[l] = 0.0;  // same as the legacy empty-link skip: no change recorded
    return 0.0;
  }

  double new_price;
  if (!overloaded(0.0)) {
    new_price = 0.0;  // under-loaded even for free: complementary slackness
  } else {
    // Bracket: load decreases in price; double until under capacity.
    double lo = 0.0;
    double hi = std::max(prices[l], 1e-6);
    while (overloaded(hi)) {
      lo = hi;
      hi *= 2.0;
      if (hi > 1e30) throw std::logic_error("solve_num: price diverged");
    }
    for (int iter = 0; iter < 100; ++iter) {
      if (price_resolution > 0.0 && hi - lo <= price_resolution) break;
      const double mid = 0.5 * (lo + hi);
      const double prev_lo = lo;
      const double prev_hi = hi;
      if (overloaded(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
      if (lo == prev_lo && hi == prev_hi) break;  // bracket bitwise frozen
    }
    new_price = 0.5 * (lo + hi);
  }

  const double change = std::abs(new_price - prices[l]);
  for (const std::int32_t i : flows) {
    const auto fi = static_cast<std::size_t>(i);
    if (!problem.active(fi)) continue;
    path_price[fi] = base[fi] + new_price;
  }
  prices[l] = new_price;
  return change;
}

}  // namespace

SolveStats solve(const CsrProblem& problem, NumWorkspace& workspace,
                 const NumSolverOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t num_flows = problem.num_flows();
  const std::size_t num_links = problem.num_links();

  std::vector<double>& prices = SolverAccess::prices(workspace);
  std::vector<double>& path_price = SolverAccess::path_price(workspace);
  std::vector<double>& base = SolverAccess::base(workspace);
  std::vector<double>& change = SolverAccess::change(workspace);
  std::vector<double>& rates = SolverAccess::rates(workspace);

  bool warm;
  if (!options.initial_prices.empty()) {
    if (options.initial_prices.size() != num_links) {
      throw std::invalid_argument("solve_num: initial_prices size mismatch");
    }
    sized(prices, num_links);
    std::copy(options.initial_prices.begin(), options.initial_prices.end(),
              prices.begin());
    warm = true;
  } else if (SolverAccess::warm(workspace) && prices.size() == num_links) {
    warm = true;  // previous solve's prices carry over
  } else {
    sized(prices, num_links);
    std::fill(prices.begin(), prices.end(), 1.0);
    warm = false;
  }
  // Warm-started solves (re-solves across semi-dynamic epochs / fluid-oracle
  // events) stop each per-link bisection once the bracket is two orders of
  // magnitude below the sweep tolerance — the sweep loop cannot distinguish
  // prices closer than that, so the remaining fixed-depth halvings are pure
  // waste.  Cold solves keep the full-depth bisection so their results stay
  // bit-identical to the legacy solver.
  const double price_resolution = warm ? options.tolerance * 1e-2 : 0.0;

  sized(path_price, num_flows);
  sized(base, num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    if (!problem.active(i)) continue;
    double sum = 0.0;
    for (const std::int32_t l : problem.flow_links(i)) {
      sum += prices[static_cast<std::size_t>(l)];
    }
    path_price[i] = sum;
  }

  const int threads = std::max(options.policy.threads, 1);
  util::WorkerPool* pool = nullptr;
  if (threads > 1) {
    auto& owned = SolverAccess::pool(workspace);
    if (owned == nullptr || owned->jobs() != threads) {
      owned = std::make_unique<util::WorkerPool>(threads);
    }
    pool = owned.get();
    sized(change, num_links);
  }

  SolveStats stats;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    double max_price_change = 0.0;
    if (pool == nullptr) {
      // Reference spec: natural link order.
      for (std::size_t l = 0; l < num_links; ++l) {
        max_price_change = std::max(
            max_price_change,
            update_link(problem, l, prices, path_price, base,
                        price_resolution));
      }
    } else {
      // Wave execution: per the schedule's construction every link's inputs
      // are exactly what the natural-order sweep would have shown it, so
      // this computes the same bits for any thread/chunk count.
      for (std::size_t w = 0; w < problem.num_waves(); ++w) {
        const auto wave = problem.wave_links(w);
        const int chunks = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(threads),
                                  wave.size()));
        pool->parallel_for(chunks, [&](int chunk) {
          const std::size_t begin = wave.size() * static_cast<std::size_t>(chunk) /
                                    static_cast<std::size_t>(chunks);
          const std::size_t end =
              wave.size() * (static_cast<std::size_t>(chunk) + 1) /
              static_cast<std::size_t>(chunks);
          for (std::size_t k = begin; k < end; ++k) {
            const auto l = static_cast<std::size_t>(wave[k]);
            change[l] = update_link(problem, l, prices, path_price, base,
                                    price_resolution);
          }
        });
      }
      // max is exact and order-independent, so reducing after the sweep
      // matches the serial running max bit-for-bit.
      for (std::size_t l = 0; l < num_links; ++l) {
        max_price_change = std::max(max_price_change, change[l]);
      }
    }
    stats.sweeps = sweep + 1;
    if (max_price_change < options.tolerance) {
      stats.converged = true;
      break;
    }
  }

  sized(rates, num_flows);
  for (std::size_t i = 0; i < num_flows; ++i) {
    rates[i] = problem.active(i) ? problem.marginal_inverse(i, path_price[i])
                                 : 0.0;
  }
  for (std::size_t l = 0; l < num_links; ++l) {
    double load = 0.0;
    for (const std::int32_t i : problem.link_flows(l)) {
      const auto fi = static_cast<std::size_t>(i);
      if (problem.active(fi)) load += rates[fi];
    }
    const double violation =
        (load - problem.capacities()[l]) / problem.capacities()[l];
    stats.max_violation = std::max(stats.max_violation, violation);
  }

  SolverAccess::warm(workspace) = true;

  auto& counters = sim::substrate_stats();
  ++counters.solver_solves;
  counters.solver_sweeps += static_cast<std::uint64_t>(stats.sweeps);
  counters.solver_wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return stats;
}

NumSolution solve_num(const NumProblem& problem,
                      const NumSolverOptions& options) {
  const CsrProblem csr = CsrProblem::compile(problem);
  NumWorkspace workspace;
  const SolveStats stats = solve(csr, workspace, options);
  NumSolution solution;
  solution.rates.assign(workspace.rates().begin(), workspace.rates().end());
  solution.prices.assign(workspace.prices().begin(), workspace.prices().end());
  solution.sweeps = stats.sweeps;
  solution.converged = stats.converged;
  solution.max_violation = stats.max_violation;
  return solution;
}

double kkt_residual(const NumProblem& problem, const std::vector<double>& rates,
                    const std::vector<double>& prices) {
  double residual = 0.0;
  for (std::size_t i = 0; i < problem.utilities.size(); ++i) {
    double path_price = 0.0;
    for (int l : problem.flow_links[i]) path_price += prices[static_cast<std::size_t>(l)];
    const double marginal = problem.utilities[i]->marginal(rates[i]);
    residual = std::max(residual, std::abs(marginal - path_price) /
                                      std::max(marginal, kMinPrice));
  }
  for (std::size_t l = 0; l < problem.capacities.size(); ++l) {
    double load = 0.0;
    for (std::size_t i = 0; i < problem.flow_links.size(); ++i) {
      for (int k : problem.flow_links[i]) {
        if (static_cast<std::size_t>(k) == l) load += rates[i];
      }
    }
    const double slack = problem.capacities[l] - load;
    // Complementary slackness: p_l * slack ~ 0 (normalized).
    residual = std::max(residual, prices[l] * std::max(slack, 0.0) /
                                      problem.capacities[l]);
    // Feasibility.
    residual = std::max(residual, -slack / problem.capacities[l]);
  }
  return residual;
}

}  // namespace numfabric::num
