#include "num/num_solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "sim/substrate_stats.h"

namespace numfabric::num {

// Private accessor so the solver can use the workspace's buffers without the
// header exposing mutable internals to every includer.
struct SolverAccess {
  static std::vector<double>& prices(NumWorkspace& ws) { return ws.prices_; }
  static std::vector<double>& path_price(NumWorkspace& ws) {
    return ws.path_price_;
  }
  static std::vector<double>& base(NumWorkspace& ws) { return ws.base_; }
  static std::vector<double>& change(NumWorkspace& ws) { return ws.change_; }
  static std::vector<double>& rates(NumWorkspace& ws) { return ws.rates_; }
  static bool& warm(NumWorkspace& ws) { return ws.warm_; }
  static const CsrProblem*& bound_problem(NumWorkspace& ws) {
    return ws.bound_problem_;
  }
  static std::uint64_t& bound_epoch(NumWorkspace& ws) {
    return ws.bound_epoch_;
  }
  static std::vector<std::int32_t>& worklist(NumWorkspace& ws) {
    return ws.worklist_;
  }
  static std::vector<std::uint8_t>& in_queue(NumWorkspace& ws) {
    return ws.in_queue_;
  }
  static std::unique_ptr<util::WorkerPool>& pool(NumWorkspace& ws) {
    return ws.pool_;
  }
};

namespace {

/// resize() that counts actual heap growth into the substrate stats — the
/// zero-allocation-per-re-solve guarantee is measured, not assumed.
void sized(std::vector<double>& v, std::size_t n) {
  if (v.capacity() < n) ++sim::substrate_stats().allocs_solver_workspace;
  v.resize(n);
}

/// The per-link Gauss-Seidel update.  Reads/writes prices[l], base and
/// path_price of the link's active flows only — state disjoint from every
/// other link in the same wave — and returns |new_price - old_price|.
///
/// Iteration runs over the compacted active row (link_active_flows): the
/// same flow ids, in the same increasing order, as scanning the full
/// compiled row and skipping inactives — so every partial sum rounds
/// bit-identically while the cost is O(active-on-link), not O(history).
///
/// Arithmetic is line-for-line the legacy solve_num bisection; the three
/// differences are bit-exact accelerations:
///  * load sums early-exit once the partial sum exceeds capacity (terms are
///    non-negative and correctly rounded addition is monotone, so the
///    verdict of the > capacity predicate — the only thing the bisection
///    ever reads — is unchanged);
///  * marginal_inverse is devirtualized through CsrProblem (same arithmetic
///    sequence, see csr_problem.h);
///  * the fixed-depth bisection breaks once an iteration leaves the bracket
///    bitwise unchanged — every remaining iteration would recompute the same
///    midpoint and take the same branch, so the final 0.5 * (lo + hi) is
///    untouched.
double update_link(const CsrProblem& problem, std::size_t l,
                   std::vector<double>& prices,
                   std::vector<double>& path_price, std::vector<double>& base,
                   double price_resolution) {
  const auto flows = problem.link_active_flows(l);
  if (flows.empty()) {
    prices[l] = 0.0;  // same as the legacy empty-link skip: no change recorded
    return 0.0;
  }

  // Does the load at `candidate` exceed capacity?  (The bisection only ever
  // needs this predicate, never the load value itself.)
  const auto overloaded = [&](double candidate) {
    const double capacity = problem.capacities()[l];
    double load = 0.0;
    for (const std::int32_t i : flows) {
      const auto fi = static_cast<std::size_t>(i);
      load += problem.marginal_inverse(fi, base[fi] + candidate);
      if (load > capacity) return true;
    }
    return false;
  };

  for (const std::int32_t i : flows) {
    const auto fi = static_cast<std::size_t>(i);
    base[fi] = path_price[fi] - prices[l];
  }

  double new_price;
  if (!overloaded(0.0)) {
    new_price = 0.0;  // under-loaded even for free: complementary slackness
  } else {
    // Bracket: load decreases in price; double until under capacity.
    double lo = 0.0;
    double hi = std::max(prices[l], 1e-6);
    while (overloaded(hi)) {
      lo = hi;
      hi *= 2.0;
      if (hi > 1e30) throw std::logic_error("solve_num: price diverged");
    }
    for (int iter = 0; iter < 100; ++iter) {
      if (price_resolution > 0.0 && hi - lo <= price_resolution) break;
      const double mid = 0.5 * (lo + hi);
      const double prev_lo = lo;
      const double prev_hi = hi;
      if (overloaded(mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
      if (lo == prev_lo && hi == prev_hi) break;  // bracket bitwise frozen
    }
    new_price = 0.5 * (lo + hi);
  }

  const double change = std::abs(new_price - prices[l]);
  for (const std::int32_t i : flows) {
    const auto fi = static_cast<std::size_t>(i);
    path_price[fi] = base[fi] + new_price;
  }
  prices[l] = new_price;
  return change;
}

}  // namespace

SolveStats solve(const CsrProblem& problem, NumWorkspace& workspace,
                 const NumSolverOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t num_flows = problem.num_flows();
  const std::size_t num_links = problem.num_links();

  std::vector<double>& prices = SolverAccess::prices(workspace);
  std::vector<double>& path_price = SolverAccess::path_price(workspace);
  std::vector<double>& base = SolverAccess::base(workspace);
  std::vector<double>& change = SolverAccess::change(workspace);
  std::vector<double>& rates = SolverAccess::rates(workspace);

  bool warm;
  if (!options.initial_prices.empty()) {
    if (options.initial_prices.size() != num_links) {
      throw std::invalid_argument("solve_num: initial_prices size mismatch");
    }
    sized(prices, num_links);
    std::copy(options.initial_prices.begin(), options.initial_prices.end(),
              prices.begin());
    warm = true;
  } else if (SolverAccess::warm(workspace) && prices.size() == num_links) {
    warm = true;  // previous solve's prices carry over
  } else {
    sized(prices, num_links);
    std::fill(prices.begin(), prices.end(), 1.0);
    warm = false;
  }
  // Warm-started solves (re-solves across semi-dynamic epochs / fluid-oracle
  // events) stop each per-link bisection once the bracket is two orders of
  // magnitude below the sweep tolerance — the sweep loop cannot distinguish
  // prices closer than that, so the remaining fixed-depth halvings are pure
  // waste.  Cold solves keep the full-depth bisection so their results stay
  // bit-identical to the legacy solver.
  const double price_resolution = warm ? options.tolerance * 1e-2 : 0.0;

  // Incremental re-solve is sound only when the workspace's stored
  // path_price/rates describe this exact problem as of the last mark_solved
  // epoch — i.e. the dirty sets are precisely what changed since the state
  // we are patching.  Anything else (cold start, explicit prices, another
  // workspace interleaved, fresh compile, deactivate_all) falls back to the
  // full solve, which re-derives everything.
  const bool incremental =
      options.incremental && options.initial_prices.empty() && warm &&
      !problem.all_dirty() &&
      SolverAccess::bound_problem(workspace) == &problem &&
      SolverAccess::bound_epoch(workspace) == problem.epoch() &&
      path_price.size() == num_flows && rates.size() == num_flows;

  sized(path_price, num_flows);
  sized(base, num_flows);
  if (incremental) {
    // Patch only the toggled flows: a newly (re)activated flow needs a fresh
    // path-price sum (its stored slot is stale); a deactivated flow just
    // stops reporting rate.  Untouched actives keep their stored path_price,
    // which the relaxations below correct exactly as a sweep would.
    for (const std::int32_t f : problem.touched_flows()) {
      const auto fi = static_cast<std::size_t>(f);
      if (problem.active(fi)) {
        double sum = 0.0;
        for (const std::int32_t l : problem.flow_links(fi)) {
          sum += prices[static_cast<std::size_t>(l)];
        }
        path_price[fi] = sum;
      } else {
        rates[fi] = 0.0;
      }
    }
  } else {
    // Per-flow init over the active list; each slot is written once, so the
    // unsorted order cannot affect any bit.
    for (const std::int32_t f : problem.active_flows()) {
      const auto fi = static_cast<std::size_t>(f);
      double sum = 0.0;
      for (const std::int32_t l : problem.flow_links(fi)) {
        sum += prices[static_cast<std::size_t>(l)];
      }
      path_price[fi] = sum;
    }
  }

  const int threads = std::max(options.policy.threads, 1);
  util::WorkerPool* pool = nullptr;
  if (threads > 1) {
    auto& owned = SolverAccess::pool(workspace);
    if (owned == nullptr || owned->jobs() != threads) {
      owned = std::make_unique<util::WorkerPool>(threads);
    }
    pool = owned.get();
    sized(change, num_links);
  }

  // One full sweep over every link; returns the max price change.  Serial
  // natural order and wave-parallel execution compute the same bits (see
  // csr_problem.h).
  const auto full_sweep = [&]() {
    double max_price_change = 0.0;
    if (pool == nullptr) {
      // Reference spec: natural link order.
      for (std::size_t l = 0; l < num_links; ++l) {
        max_price_change = std::max(
            max_price_change,
            update_link(problem, l, prices, path_price, base,
                        price_resolution));
      }
    } else {
      // Wave execution: per the schedule's construction every link's inputs
      // are exactly what the natural-order sweep would have shown it, so
      // this computes the same bits for any thread/chunk count.
      for (std::size_t w = 0; w < problem.num_waves(); ++w) {
        const auto wave = problem.wave_links(w);
        const int chunks = static_cast<int>(
            std::min<std::size_t>(static_cast<std::size_t>(threads),
                                  wave.size()));
        pool->parallel_for(chunks, [&](int chunk) {
          const std::size_t begin = wave.size() * static_cast<std::size_t>(chunk) /
                                    static_cast<std::size_t>(chunks);
          const std::size_t end =
              wave.size() * (static_cast<std::size_t>(chunk) + 1) /
              static_cast<std::size_t>(chunks);
          for (std::size_t k = begin; k < end; ++k) {
            const auto l = static_cast<std::size_t>(wave[k]);
            change[l] = update_link(problem, l, prices, path_price, base,
                                    price_resolution);
          }
        });
      }
      // max is exact and order-independent, so reducing after the sweep
      // matches the serial running max bit-for-bit.
      for (std::size_t l = 0; l < num_links; ++l) {
        max_price_change = std::max(max_price_change, change[l]);
      }
    }
    return max_price_change;
  };

  SolveStats stats;
  if (incremental) {
    // Worklist relaxation, seeded from the dirty links in increasing id.
    // Serial by construction — the order links come off the queue is a
    // function of the dirty set alone, so results are identical for every
    // --solver-threads value.
    std::vector<std::int32_t>& ring = SolverAccess::worklist(workspace);
    std::vector<std::uint8_t>& in_queue = SolverAccess::in_queue(workspace);
    if (ring.size() < num_links) ring.resize(num_links);
    if (in_queue.size() < num_links) in_queue.assign(num_links, 0);
    // The membership bitmap caps the queue at num_links entries, so a ring
    // of that capacity never overflows.
    std::size_t head = 0, queued = 0;
    const auto push = [&](std::int32_t l) {
      if (in_queue[static_cast<std::size_t>(l)] != 0) return;
      in_queue[static_cast<std::size_t>(l)] = 1;
      ring[(head + queued) % num_links] = l;
      ++queued;
    };
    {
      // dirty_links() is in first-dirtied order; seed ascending so the
      // relaxation order is independent of the set_active call order.
      std::vector<std::int32_t> seed(problem.dirty_links().begin(),
                                     problem.dirty_links().end());
      std::sort(seed.begin(), seed.end());
      for (const std::int32_t l : seed) push(l);
    }
    const std::int64_t relaxation_cap =
        static_cast<std::int64_t>(options.max_sweeps) *
        static_cast<std::int64_t>(num_links == 0 ? 1 : num_links);
    while (queued > 0 && stats.relaxations < relaxation_cap) {
      const std::int32_t l = ring[head % num_links];
      head = (head + 1) % num_links;
      --queued;
      in_queue[static_cast<std::size_t>(l)] = 0;
      const double delta =
          update_link(problem, static_cast<std::size_t>(l), prices,
                      path_price, base, price_resolution);
      ++stats.relaxations;
      if (delta >= options.tolerance) {
        // The move perturbed the path price of every active flow through l;
        // their other links may now violate complementary slackness.
        for (const std::int32_t f :
             problem.link_active_flows(static_cast<std::size_t>(l))) {
          for (const std::int32_t k :
               problem.flow_links(static_cast<std::size_t>(f))) {
            if (k != l) push(k);
          }
        }
      }
    }
    // Verification: full sweeps until quiescent.  Normally the first sweep
    // confirms convergence; if the worklist missed coupling (or hit the
    // cap), these sweeps are the correctness backstop.
    for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
      const double max_price_change = full_sweep();
      stats.sweeps = sweep + 1;
      if (max_price_change < options.tolerance) {
        stats.converged = true;
        break;
      }
    }
  } else {
    for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
      const double max_price_change = full_sweep();
      stats.sweeps = sweep + 1;
      if (max_price_change < options.tolerance) {
        stats.converged = true;
        break;
      }
    }
  }

  sized(rates, num_flows);
  if (incremental) {
    // Touched-inactive flows were zeroed above; untouched inactives are 0
    // from the solve this state was patched from.  Only actives move.
    for (const std::int32_t f : problem.active_flows()) {
      const auto fi = static_cast<std::size_t>(f);
      rates[fi] = problem.marginal_inverse(fi, path_price[fi]);
    }
  } else {
    std::fill(rates.begin(), rates.end(), 0.0);
    for (const std::int32_t f : problem.active_flows()) {
      const auto fi = static_cast<std::size_t>(f);
      rates[fi] = problem.marginal_inverse(fi, path_price[fi]);
    }
  }
  for (std::size_t l = 0; l < num_links; ++l) {
    double load = 0.0;
    for (const std::int32_t i : problem.link_active_flows(l)) {
      load += rates[static_cast<std::size_t>(i)];
    }
    const double violation =
        (load - problem.capacities()[l]) / problem.capacities()[l];
    stats.max_violation = std::max(stats.max_violation, violation);
  }

  SolverAccess::warm(workspace) = true;
  problem.mark_solved();
  SolverAccess::bound_problem(workspace) = &problem;
  SolverAccess::bound_epoch(workspace) = problem.epoch();

  auto& counters = sim::substrate_stats();
  ++counters.solver_solves;
  counters.solver_sweeps += static_cast<std::uint64_t>(stats.sweeps);
  counters.solver_relaxations += static_cast<std::uint64_t>(stats.relaxations);
  counters.solver_wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  return stats;
}

NumSolution solve_num(const NumProblem& problem,
                      const NumSolverOptions& options) {
  const CsrProblem csr = CsrProblem::compile(problem);
  NumWorkspace workspace;
  const SolveStats stats = solve(csr, workspace, options);
  NumSolution solution;
  solution.rates.assign(workspace.rates().begin(), workspace.rates().end());
  solution.prices.assign(workspace.prices().begin(), workspace.prices().end());
  solution.sweeps = stats.sweeps;
  solution.converged = stats.converged;
  solution.max_violation = stats.max_violation;
  return solution;
}

double kkt_residual(const NumProblem& problem, const std::vector<double>& rates,
                    const std::vector<double>& prices) {
  double residual = 0.0;
  for (std::size_t i = 0; i < problem.utilities.size(); ++i) {
    double path_price = 0.0;
    for (int l : problem.flow_links[i]) path_price += prices[static_cast<std::size_t>(l)];
    const double marginal = problem.utilities[i]->marginal(rates[i]);
    residual = std::max(residual, std::abs(marginal - path_price) /
                                      std::max(marginal, kMinPrice));
  }
  // Link loads, flow-major in one O(nnz) pass.  Each link's row is listed in
  // increasing flow id, and this walk adds flow i's rate to its links in
  // exactly that order, so every per-link sum rounds bit-identically to the
  // former per-link rescan of all flows.
  std::vector<double> load(problem.capacities.size(), 0.0);
  for (std::size_t i = 0; i < problem.flow_links.size(); ++i) {
    for (int k : problem.flow_links[i]) {
      load[static_cast<std::size_t>(k)] += rates[i];
    }
  }
  for (std::size_t l = 0; l < problem.capacities.size(); ++l) {
    const double slack = problem.capacities[l] - load[l];
    // Complementary slackness: p_l * slack ~ 0 (normalized).
    residual = std::max(residual, prices[l] * std::max(slack, 0.0) /
                                      problem.capacities[l]);
    // Feasibility.
    residual = std::max(residual, -slack / problem.capacities[l]);
  }
  return residual;
}

double kkt_residual(const CsrProblem& problem, std::span<const double> rates,
                    std::span<const double> prices) {
  double residual = 0.0;
  for (const std::int32_t f : problem.active_flows()) {
    const auto i = static_cast<std::size_t>(f);
    double path_price = 0.0;
    for (const std::int32_t l : problem.flow_links(i)) {
      path_price += prices[static_cast<std::size_t>(l)];
    }
    const double marginal = problem.marginal(i, rates[i]);
    residual = std::max(residual, std::abs(marginal - path_price) /
                                      std::max(marginal, kMinPrice));
  }
  for (std::size_t l = 0; l < problem.num_links(); ++l) {
    double load = 0.0;
    for (const std::int32_t i : problem.link_active_flows(l)) {
      load += rates[static_cast<std::size_t>(i)];
    }
    const double slack = problem.capacities()[l] - load;
    residual = std::max(residual, prices[l] * std::max(slack, 0.0) /
                                      problem.capacities()[l]);
    residual = std::max(residual, -slack / problem.capacities()[l]);
  }
  return residual;
}

}  // namespace numfabric::num
