// Tests for the external-trace workload path: CSV parsing with line-numbered
// rejection of malformed rows, and the trace-replay experiment end to end.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "exp/trace_replay.h"
#include "workload/trace.h"

namespace numfabric {
namespace {

using workload::TraceFlow;

std::vector<TraceFlow> parse(const std::string& text) {
  std::istringstream in(text);
  return workload::parse_trace_csv(in, "test.csv");
}

std::string parse_error(const std::string& text) {
  try {
    parse(text);
  } catch (const std::invalid_argument& error) {
    return error.what();
  }
  return "";
}

TEST(TraceCsvTest, ParsesRowsHeaderAndComments) {
  const auto flows = parse(
      "# a comment\n"
      "arrival_s,size_bytes,src,dst\n"
      "0.001,20000,0,3\n"
      "\n"
      "0.002,500,2,1   # inline comment\n");
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_DOUBLE_EQ(flows[0].arrival_seconds, 0.001);
  EXPECT_EQ(flows[0].size_bytes, 20000u);
  EXPECT_EQ(flows[0].src, 0);
  EXPECT_EQ(flows[0].dst, 3);
  EXPECT_EQ(flows[1].src, 2);
}

TEST(TraceCsvTest, HeaderlessTracesParseToo) {
  const auto flows = parse("0,1000,0,1\n0.5,2000,1,0\n");
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[1].size_bytes, 2000u);
}

TEST(TraceCsvTest, MalformedRowsFailWithLineNumbers) {
  // Line 3: wrong field count.
  EXPECT_NE(parse_error("header,x,y,z\n0,100,0,1\n0.1,200,3\n")
                .find("test.csv:3"),
            std::string::npos);
  // Line 1: non-numeric size.
  EXPECT_NE(parse_error("0,big,0,1\n").find("test.csv:1"), std::string::npos);
  // Line 2: src == dst.
  EXPECT_NE(parse_error("0,100,0,1\n0,100,2,2\n").find("test.csv:2"),
            std::string::npos);
  EXPECT_NE(parse_error("0,100,2,2\n").find("src == dst"), std::string::npos);
  // Negative arrival, zero size, out-of-range hosts (negative or wider than
  // int — a wrap would silently replay the wrong hosts).
  EXPECT_NE(parse_error("-1,100,0,1\n").find("negative arrival"),
            std::string::npos);
  EXPECT_NE(parse_error("0,0,0,1\n").find("positive"), std::string::npos);
  EXPECT_NE(parse_error("0,100,-2,1\n").find("host-index range"),
            std::string::npos);
  EXPECT_NE(parse_error("0,100,4294967296,1\n").find("host-index range"),
            std::string::npos);
  // A second header-looking row is data, so it fails loudly.
  EXPECT_NE(parse_error("0,100,0,1\narrival_s,size_bytes,src,dst\n")
                .find("test.csv:2"),
            std::string::npos);
}

TEST(TraceCsvTest, MissingFileThrowsRuntimeError) {
  EXPECT_THROW(workload::load_trace_csv("/definitely/not/here.csv"),
               std::runtime_error);
}

TEST(TraceCsvTest, BuiltinExampleTraceIsValid) {
  const auto& trace = workload::example_trace();
  ASSERT_GE(trace.size(), 10u);
  for (const TraceFlow& flow : trace) {
    EXPECT_GE(flow.src, 0);
    EXPECT_LT(flow.src, 4);  // fits the smallest smoke topology (4 hosts)
    EXPECT_LT(flow.dst, 4);
    EXPECT_GT(flow.size_bytes, 0u);
  }
}

TEST(TraceReplayTest, ReplaysBuiltinTraceToCompletion) {
  exp::TraceReplayOptions options;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 1;
  options.trace = workload::example_trace();
  options.horizon = sim::millis(500);
  const exp::TraceReplayResult result = exp::run_trace_replay(options);

  ASSERT_EQ(result.flows.size(), options.trace.size());
  EXPECT_EQ(result.completed + result.incomplete,
            static_cast<int>(options.trace.size()));
  EXPECT_GT(result.completed, 0);
  EXPECT_GT(result.sim_events, 0u);
  for (const auto& flow : result.flows) {
    if (!flow.completed) continue;
    EXPECT_GT(flow.fct_seconds, 0);
    EXPECT_LT(flow.fct_seconds, 0.5);
  }
}

TEST(TraceReplayTest, RejectsOutOfRangeHosts) {
  exp::TraceReplayOptions options;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 1;  // 2 hosts: indices 0 and 1
  options.trace = {{0.0, 1000, 0, 5}};
  EXPECT_THROW(exp::run_trace_replay(options), std::invalid_argument);
}

}  // namespace
}  // namespace numfabric
