// Fluid-level xWI: the dynamical system's fixed point must solve the NUM
// problem (§4.2); convergence should be fast and insensitive to eta.
#include <gtest/gtest.h>

#include <memory>

#include "num/csr_problem.h"
#include "num/num_solver.h"
#include "num/utility.h"
#include "num/xwi_fluid.h"
#include "sim/random.h"

namespace numfabric::num {
namespace {

// Oracle rates via the compiled CSR path (the solve_num(NumProblem) adapter
// is a compatibility shim; its coverage lives in csr_solver_test.cc).
std::vector<double> oracle_rates(const NumProblem& problem) {
  const CsrProblem csr = CsrProblem::compile(problem);
  NumWorkspace workspace;
  solve(csr, workspace, {});
  return {workspace.rates().begin(), workspace.rates().end()};
}

NumProblem random_problem(double alpha, int flows, int links, std::uint64_t seed,
                          std::vector<std::unique_ptr<AlphaFairUtility>>& store) {
  sim::Rng rng(seed);
  NumProblem problem;
  problem.capacities.resize(static_cast<std::size_t>(links));
  for (auto& c : problem.capacities) c = rng.uniform(10.0, 100.0);
  for (int i = 0; i < flows; ++i) {
    store.push_back(
        std::make_unique<AlphaFairUtility>(alpha, rng.uniform(0.5, 2.0)));
    problem.utilities.push_back(store.back().get());
    std::vector<int> path;
    const int hops = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < hops; ++h) {
      const int link = static_cast<int>(rng.index(static_cast<std::size_t>(links)));
      if (std::find(path.begin(), path.end(), link) == path.end()) {
        path.push_back(link);
      }
    }
    problem.flow_links.push_back(path);
  }
  return problem;
}

TEST(XwiFluidTest, SingleLinkFixedPointIsOptimal) {
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {100};
  const auto xwi = xwi_fluid_solve(problem);
  EXPECT_TRUE(xwi.converged);
  EXPECT_NEAR(xwi.rates[0], 50.0, 1e-3);
  EXPECT_NEAR(xwi.rates[1], 50.0, 1e-3);
}

TEST(XwiFluidTest, MatchesNumOracleOnParkingLot) {
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u, &u};
  problem.flow_links = {{0, 1}, {0}, {1}};
  problem.capacities = {9, 9};
  const auto oracle = oracle_rates(problem);
  const auto xwi = xwi_fluid_solve(problem);
  ASSERT_TRUE(xwi.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(xwi.rates[i], oracle[i], 1e-3 * oracle[i]);
  }
}

TEST(XwiFluidTest, ErrorTraceReachesOptimumQuickly) {
  std::vector<std::unique_ptr<AlphaFairUtility>> store;
  const NumProblem problem = random_problem(1.0, 20, 6, 42, store);
  const auto oracle = oracle_rates(problem);
  const auto xwi = xwi_fluid_solve(problem, {}, oracle);
  ASSERT_TRUE(xwi.converged);
  ASSERT_FALSE(xwi.error_trace.empty());
  // Within 100 iterations the max relative rate error is below 1%.
  const std::size_t check = std::min<std::size_t>(100, xwi.error_trace.size() - 1);
  EXPECT_LT(xwi.error_trace[check], 0.01);
  EXPECT_LT(xwi.error_trace.back(), 1e-4);
}

class XwiAlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(XwiAlphaSweep, FixedPointMatchesOracle) {
  std::vector<std::unique_ptr<AlphaFairUtility>> store;
  const NumProblem problem = random_problem(GetParam(), 15, 5, 7, store);
  const auto oracle = oracle_rates(problem);
  const auto xwi = xwi_fluid_solve(problem);
  ASSERT_TRUE(xwi.converged) << "alpha=" << GetParam();
  for (std::size_t i = 0; i < problem.utilities.size(); ++i) {
    EXPECT_NEAR(xwi.rates[i], oracle[i], 5e-3 * oracle[i])
        << "alpha=" << GetParam() << " flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, XwiAlphaSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

class XwiEtaSweep : public ::testing::TestWithParam<double> {};

TEST_P(XwiEtaSweep, LargelyInsensitiveToEta) {
  // §4.2: "xWI is largely insensitive to the value of eta."
  std::vector<std::unique_ptr<AlphaFairUtility>> store;
  const NumProblem problem = random_problem(1.0, 12, 4, 11, store);
  const auto oracle = oracle_rates(problem);
  XwiFluidOptions options;
  options.eta = GetParam();
  const auto xwi = xwi_fluid_solve(problem, options);
  ASSERT_TRUE(xwi.converged) << "eta=" << GetParam();
  for (std::size_t i = 0; i < problem.utilities.size(); ++i) {
    EXPECT_NEAR(xwi.rates[i], oracle[i], 5e-3 * oracle[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(EtaSweep, XwiEtaSweep,
                         ::testing::Values(0.5, 2.0, 5.0, 10.0));

TEST(XwiFluidTest, WeightsEqualRatesAtFixedPoint) {
  // At the fixed point, Eq. 7's weights equal the optimal rates (§4.2).
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u, &u};
  problem.flow_links = {{0}, {0}, {1}};
  problem.capacities = {60, 40};
  const auto xwi = xwi_fluid_solve(problem);
  ASSERT_TRUE(xwi.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(xwi.weights[i], xwi.rates[i], 1e-3 * xwi.rates[i]);
  }
}

}  // namespace
}  // namespace numfabric::num
