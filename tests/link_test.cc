// Link serialization/propagation timing and agent hook tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/drop_tail_queue.h"
#include "net/link.h"
#include "net/node.h"
#include "sim/simulator.h"

namespace numfabric::net {
namespace {

/// Records arrival times of packets delivered to it.
class SinkHost : public Host {
 public:
  SinkHost(sim::Simulator& sim, NodeId id) : Host(id, "sink"), sim_(sim) {}
  void receive(Packet&& packet) override {
    arrivals.push_back({sim_.now(), packet.size});
  }
  struct Arrival {
    sim::TimeNs at;
    std::uint32_t size;
  };
  std::vector<Arrival> arrivals;

 private:
  sim::Simulator& sim_;
};

Packet data_packet(std::uint32_t size) {
  Packet p;
  p.type = PacketType::kData;
  p.size = size;
  return p;
}

TEST(LinkTest, SerializationPlusPropagation) {
  sim::Simulator sim;
  SinkHost sink(sim, 0);
  Link link(sim, "l", 10e9, sim::micros(2),
            std::make_unique<DropTailQueue>(1'000'000), &sink);
  link.send(data_packet(1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  // 1.2 us serialization + 2 us propagation.
  EXPECT_EQ(sink.arrivals[0].at, 3200);
}

TEST(LinkTest, BackToBackPacketsSpacedBySerialization) {
  sim::Simulator sim;
  SinkHost sink(sim, 0);
  Link link(sim, "l", 10e9, sim::micros(2),
            std::make_unique<DropTailQueue>(1'000'000), &sink);
  for (int i = 0; i < 3; ++i) link.send(data_packet(1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[1].at - sink.arrivals[0].at, 1200);
  EXPECT_EQ(sink.arrivals[2].at - sink.arrivals[1].at, 1200);
}

TEST(LinkTest, CountsBytesSent) {
  sim::Simulator sim;
  SinkHost sink(sim, 0);
  Link link(sim, "l", 10e9, 0, std::make_unique<DropTailQueue>(1'000'000), &sink);
  link.send(data_packet(1500));
  link.send(data_packet(500));
  sim.run();
  EXPECT_EQ(link.bytes_sent(), 2000u);
}

TEST(LinkTest, RateChangeAppliesToNextPacket) {
  sim::Simulator sim;
  SinkHost sink(sim, 0);
  Link link(sim, "l", 10e9, 0, std::make_unique<DropTailQueue>(1'000'000), &sink);
  link.send(data_packet(1500));
  link.set_rate_bps(20e9);
  link.send(data_packet(1500));
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(sink.arrivals[0].at, 1200);       // first at the old rate
  EXPECT_EQ(sink.arrivals[1].at, 1200 + 600);  // second at 20 Gbps
}

class CountingAgent : public LinkAgent {
 public:
  void on_enqueue(const Packet&) override { ++enqueues; }
  void on_dequeue(Packet& p) override {
    ++dequeues;
    p.path_len += 1;  // agents may stamp headers
  }
  int enqueues = 0;
  int dequeues = 0;
};

TEST(LinkTest, AgentHooksFireAndMayStampHeaders) {
  sim::Simulator sim;
  SinkHost sink(sim, 0);
  Link link(sim, "l", 10e9, 0, std::make_unique<DropTailQueue>(1'000'000), &sink);
  auto agent = std::make_unique<CountingAgent>();
  CountingAgent* raw = agent.get();
  link.set_agent(std::move(agent));
  link.send(data_packet(100));
  link.send(data_packet(100));
  sim.run();
  EXPECT_EQ(raw->enqueues, 2);
  EXPECT_EQ(raw->dequeues, 2);
}

TEST(LinkTest, RejectsBadConstruction) {
  sim::Simulator sim;
  SinkHost sink(sim, 0);
  EXPECT_THROW(Link(sim, "l", 0.0, 0, std::make_unique<DropTailQueue>(100), &sink),
               std::invalid_argument);
  EXPECT_THROW(Link(sim, "l", 1e9, 0, nullptr, &sink), std::invalid_argument);
  EXPECT_THROW(Link(sim, "l", 1e9, 0, std::make_unique<DropTailQueue>(100), nullptr),
               std::invalid_argument);
}

TEST(HostTest, DispatchesByFlowIdAndCountsStrays) {
  sim::Simulator sim;
  Host host(0, "h");
  int handled = 0;
  host.register_flow(7, [&](Packet&&) { ++handled; });
  Packet p = data_packet(100);
  p.flow = 7;
  host.receive(std::move(p));
  Packet stray = data_packet(100);
  stray.flow = 8;
  host.receive(std::move(stray));
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(host.stray_packets(), 1u);
  EXPECT_THROW(host.register_flow(7, [](Packet&&) {}), std::logic_error);
  host.unregister_flow(7);
  host.register_flow(7, [](Packet&&) {});  // re-registering after removal is fine
}

}  // namespace
}  // namespace numfabric::net
