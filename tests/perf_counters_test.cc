// Substrate perf-counter tests: counters track events/packets, record_perf
// emits the table, and — the headline guarantee of the allocation-free
// substrate — steady-state forwarding performs zero substrate heap
// allocations once containers reach their high-water marks.
#include <gtest/gtest.h>

#include <memory>

#include "app/perf.h"
#include "net/routing.h"
#include "net/topology.h"
#include "num/utility.h"
#include "sim/substrate_stats.h"
#include "transport/fabric.h"
#include "transport/receiver.h"

namespace numfabric {
namespace {

using app::MetricWriter;
using app::PerfSnapshot;

TEST(SubstrateStatsTest, EventCountersTrackQueueActivity) {
  const PerfSnapshot snapshot;
  sim::Simulator sim;
  const sim::EventId id = sim.schedule_in(10, [] {});
  sim.schedule_in(20, [] {});
  sim.cancel(id);
  sim.run();
  const sim::SubstrateStats delta = snapshot.delta();
  EXPECT_EQ(delta.events_scheduled, 2u);
  EXPECT_EQ(delta.events_cancelled, 1u);
  EXPECT_EQ(delta.events_fired, 1u);
}

TEST(SubstrateStatsTest, RecordPerfEmitsTheTable) {
  sim::SubstrateStats delta;
  delta.events_fired = 7;
  delta.packets_forwarded = 3;
  delta.allocs_callable_spill = 1;
  MetricWriter metrics;
  app::record_perf(metrics, delta);
  ASSERT_EQ(metrics.tables().size(), 1u);
  const app::MetricTable& table = *metrics.tables()[0];
  EXPECT_EQ(table.name(), "perf");
  EXPECT_EQ(table.columns(), (std::vector<std::string>{"counter", "value"}));
  bool saw_fired = false, saw_total = false;
  for (const auto& row : table.rows()) {
    if (row[0].text() == "events_fired") {
      saw_fired = true;
      EXPECT_DOUBLE_EQ(row[1].number(), 7);
    }
    if (row[0].text() == "allocs_total") {
      saw_total = true;
      EXPECT_DOUBLE_EQ(row[1].number(), 1);
    }
  }
  EXPECT_TRUE(saw_fired);
  EXPECT_TRUE(saw_total);
}

// The acceptance test for the allocation-free substrate: run a dumbbell with
// long-lived NUMFabric flows past its warmup transient, then assert that a
// long steady-state window forwards hundreds of thousands of packets while
// every substrate allocation counter stays flat.
TEST(SubstrateStatsTest, SteadyStateForwardingIsAllocationFree) {
  sim::Simulator sim;
  transport::FabricOptions options;
  options.scheme = transport::Scheme::kNumFabric;
  transport::Fabric fabric(sim, options);
  net::Topology topo(sim);
  const net::Dumbbell dumbbell =
      net::build_dumbbell(topo, /*pairs=*/4, /*edge_bps=*/40e9,
                          /*bottleneck_bps=*/10e9, sim::micros(2),
                          fabric.queue_factory());
  fabric.attach_agents(topo);

  num::AlphaFairUtility log_utility(1.0);
  for (int i = 0; i < 4; ++i) {
    transport::FlowSpec spec;
    spec.src = dumbbell.senders[static_cast<std::size_t>(i)];
    spec.dst = dumbbell.receivers[static_cast<std::size_t>(i)];
    spec.size_bytes = 0;  // long-running
    spec.utility = &log_utility;
    const auto paths = net::all_shortest_paths(topo, spec.src, spec.dst);
    spec.path = paths.front();
    fabric.add_flow(std::move(spec));
  }

  // Warmup: containers grow to their high-water marks, the WFQ idle-flow GC
  // runs at least once (4096-pop interval) so its scratch space is sized.
  sim.run_until(sim::millis(20));

  const PerfSnapshot snapshot;
  sim.run_until(sim::millis(40));
  const sim::SubstrateStats delta = snapshot.delta();

  // The window did real work...
  EXPECT_GT(delta.packets_forwarded, 50'000u);
  EXPECT_GT(delta.events_fired, 100'000u);
  // ...with zero substrate heap allocations.
  EXPECT_EQ(delta.allocs_callable_spill, 0u);
  EXPECT_EQ(delta.allocs_event_queue, 0u);
  EXPECT_EQ(delta.allocs_packet_pool, 0u);
  EXPECT_EQ(delta.allocs_flow_table, 0u);
  EXPECT_EQ(delta.allocs_queue, 0u);
  EXPECT_EQ(delta.allocs_total(), 0u);
}

}  // namespace
}  // namespace numfabric
