// Gauss-Seidel NUM oracle: closed-form checks and KKT residual sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "num/num_solver.h"
#include "num/utility.h"
#include "sim/random.h"

namespace numfabric::num {
namespace {

// All tests drive the solver through the compiled CSR path; the deprecated
// solve_num(NumProblem) shim keeps its own parity coverage in
// csr_solver_test.cc.
NumSolution solve_oracle(const NumProblem& problem,
                         const NumSolverOptions& options = {}) {
  const CsrProblem csr = CsrProblem::compile(problem);
  NumWorkspace workspace;
  const SolveStats stats = solve(csr, workspace, options);
  NumSolution solution;
  solution.rates.assign(workspace.rates().begin(), workspace.rates().end());
  solution.prices.assign(workspace.prices().begin(), workspace.prices().end());
  solution.sweeps = stats.sweeps;
  solution.converged = stats.converged;
  solution.max_violation = stats.max_violation;
  return solution;
}

TEST(NumSolverTest, SingleLinkEqualLogFlows) {
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u, &u, &u};
  problem.flow_links = {{0}, {0}, {0}, {0}};
  problem.capacities = {100};
  const auto solution = solve_oracle(problem);
  ASSERT_TRUE(solution.converged);
  for (double rate : solution.rates) EXPECT_NEAR(rate, 25.0, 1e-6);
  EXPECT_LT(kkt_residual(problem, solution.rates, solution.prices), 1e-6);
}

TEST(NumSolverTest, WeightedLogFlowsSplitByWeight) {
  AlphaFairUtility u1(1.0, 1.0), u3(1.0, 3.0);
  NumProblem problem;
  problem.utilities = {&u1, &u3};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {100};
  const auto solution = solve_oracle(problem);
  EXPECT_NEAR(solution.rates[0], 25.0, 1e-6);
  EXPECT_NEAR(solution.rates[1], 75.0, 1e-6);
}

TEST(NumSolverTest, ParkingLotProportionalFairness) {
  // Classic result: long flow over n links gets C/(n+1); each one-hop flow
  // gets nC/(n+1).  For n = 2, C = 9: long = 3, shorts = 6.
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u, &u};
  problem.flow_links = {{0, 1}, {0}, {1}};
  problem.capacities = {9, 9};
  const auto solution = solve_oracle(problem);
  EXPECT_NEAR(solution.rates[0], 3.0, 1e-6);
  EXPECT_NEAR(solution.rates[1], 6.0, 1e-6);
  EXPECT_NEAR(solution.rates[2], 6.0, 1e-6);
}

TEST(NumSolverTest, UnderloadedLinkGetsZeroPrice) {
  // One flow, two links, one much bigger: the big link's price must be 0.
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u};
  problem.flow_links = {{0, 1}};
  problem.capacities = {10, 1000};
  const auto solution = solve_oracle(problem);
  EXPECT_NEAR(solution.rates[0], 10.0, 1e-6);
  EXPECT_NEAR(solution.prices[1], 0.0, 1e-9);
  EXPECT_GT(solution.prices[0], 0.0);
}

TEST(NumSolverTest, AlphaInfinityApproachesMaxMin) {
  // alpha = 8 is already close to max-min: parking lot rates ~ (C/2, C/2, C/2).
  AlphaFairUtility u(8.0);
  NumProblem problem;
  problem.utilities = {&u, &u, &u};
  problem.flow_links = {{0, 1}, {0}, {1}};
  problem.capacities = {10, 10};
  const auto solution = solve_oracle(problem);
  EXPECT_NEAR(solution.rates[0], 5.0, 0.3);
  EXPECT_NEAR(solution.rates[1], 5.0, 0.3);
}

TEST(NumSolverTest, WarmStartConverges) {
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u, &u};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {10};
  const auto cold = solve_oracle(problem);
  NumSolverOptions warm_options;
  warm_options.initial_prices = cold.prices;
  const auto warm = solve_oracle(problem, warm_options);
  EXPECT_LE(warm.sweeps, cold.sweeps);
  EXPECT_NEAR(warm.rates[0], cold.rates[0], 1e-9);
}

TEST(NumSolverTest, RejectsMalformedInput) {
  AlphaFairUtility u(1.0);
  NumProblem problem;
  problem.utilities = {&u};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {10};
  EXPECT_THROW(solve_oracle(problem), std::invalid_argument);
  problem.flow_links = {{}};
  EXPECT_THROW(solve_oracle(problem), std::invalid_argument);
  problem.flow_links = {{0}};
  problem.capacities = {-1};
  EXPECT_THROW(solve_oracle(problem), std::invalid_argument);
}

// Random problems across alphas: the solution must satisfy the KKT system
// (Eqs. 5-6) to high precision.
struct SolverCase {
  double alpha;
  int flows;
  int links;
  std::uint64_t seed;
};

class NumSolverRandom : public ::testing::TestWithParam<SolverCase> {};

TEST_P(NumSolverRandom, SatisfiesKkt) {
  const SolverCase param = GetParam();
  sim::Rng rng(param.seed);
  std::vector<std::unique_ptr<AlphaFairUtility>> utilities;
  NumProblem problem;
  problem.capacities.resize(static_cast<std::size_t>(param.links));
  for (auto& c : problem.capacities) c = rng.uniform(10.0, 100.0);
  for (int i = 0; i < param.flows; ++i) {
    utilities.push_back(
        std::make_unique<AlphaFairUtility>(param.alpha, rng.uniform(0.5, 2.0)));
    problem.utilities.push_back(utilities.back().get());
    std::vector<int> links;
    const int hops = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < hops; ++h) {
      const int link = static_cast<int>(rng.index(static_cast<std::size_t>(param.links)));
      if (std::find(links.begin(), links.end(), link) == links.end()) {
        links.push_back(link);
      }
    }
    problem.flow_links.push_back(links);
  }
  const auto solution = solve_oracle(problem);
  EXPECT_TRUE(solution.converged);
  EXPECT_LT(solution.max_violation, 1e-6);
  EXPECT_LT(kkt_residual(problem, solution.rates, solution.prices), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, NumSolverRandom,
    ::testing::Values(SolverCase{0.5, 10, 4, 1}, SolverCase{1.0, 10, 4, 2},
                      SolverCase{2.0, 10, 4, 3}, SolverCase{1.0, 50, 10, 4},
                      SolverCase{4.0, 30, 8, 5}, SolverCase{0.125, 20, 6, 6},
                      SolverCase{1.0, 200, 30, 7}));

}  // namespace
}  // namespace numfabric::num
