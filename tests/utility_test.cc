// Utility function tests, including parameterized inverse-roundtrip sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "num/utility.h"

namespace numfabric::num {
namespace {

TEST(AlphaFairTest, LogUtilityAtAlphaOne) {
  AlphaFairUtility u(1.0);
  EXPECT_DOUBLE_EQ(u.utility(std::exp(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(u.marginal(2.0), 0.5);
  EXPECT_DOUBLE_EQ(u.marginal_inverse(0.5), 2.0);
}

TEST(AlphaFairTest, WeightScalesMarginal) {
  AlphaFairUtility u(1.0, 4.0);
  EXPECT_DOUBLE_EQ(u.marginal(2.0), 2.0);
  EXPECT_DOUBLE_EQ(u.marginal_inverse(2.0), 2.0);
}

TEST(AlphaFairTest, MarginalIsDecreasing) {
  AlphaFairUtility u(2.0);
  double last = u.marginal(0.1);
  for (double x = 0.5; x < 100; x *= 2) {
    EXPECT_LT(u.marginal(x), last);
    last = u.marginal(x);
  }
}

TEST(AlphaFairTest, RejectsBadParameters) {
  EXPECT_THROW(AlphaFairUtility(-0.1), std::invalid_argument);
  EXPECT_THROW(AlphaFairUtility(1.0, 0.0), std::invalid_argument);
  AlphaFairUtility linear(0.0);
  EXPECT_THROW(linear.marginal_inverse(1.0), std::logic_error);
}

// Property sweep: U'^{-1}(U'(x)) == x across the alpha-fair family.
class AlphaFairRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(AlphaFairRoundTrip, InverseRoundTrip) {
  const double alpha = GetParam();
  AlphaFairUtility u(alpha, 2.5);
  for (double x : {0.01, 0.1, 1.0, 10.0, 1e3, 1e4, 4e4}) {
    const double p = u.marginal(x);
    EXPECT_NEAR(u.marginal_inverse(p), x, 1e-6 * x) << "alpha=" << alpha;
  }
}

TEST_P(AlphaFairRoundTrip, UtilityIncreasingConcave) {
  const double alpha = GetParam();
  AlphaFairUtility u(alpha);
  double last_value = u.utility(0.5);
  double last_slope = (u.utility(0.6) - u.utility(0.5)) / 0.1;
  for (double x = 1.0; x < 1e4; x *= 3) {
    const double value = u.utility(x);
    EXPECT_GT(value, last_value);
    const double slope = (u.utility(x * 1.01) - value) / (0.01 * x);
    EXPECT_LE(slope, last_slope * (1 + 1e-9));
    last_value = value;
    last_slope = slope;
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, AlphaFairRoundTrip,
                         ::testing::Values(0.125, 0.5, 1.0, 2.0, 4.0, 8.0));

TEST(FctUtilityTest, WeightInverselyProportionalToSize) {
  // Table 1, row 3: U = (1/s) x^(1-eps)/(1-eps).  Larger flows must have
  // strictly smaller marginal utility at the same rate -> lower allocation.
  const auto small = make_fct_utility(100e3);
  const auto big = make_fct_utility(10e6);
  EXPECT_GT(small->marginal(10.0), big->marginal(10.0));
  EXPECT_NEAR(small->marginal(10.0) / big->marginal(10.0), 100.0, 1e-6);
}

TEST(FctUtilityTest, SmallEpsilonApproximatesLinear) {
  const auto u = make_fct_utility(1e6, 0.125);
  // With eps = 0.125 the marginal decays slowly: a 2x rate change moves the
  // marginal by 2^-0.125 ~ 0.917.
  const double ratio = u->marginal(20.0) / u->marginal(10.0);
  EXPECT_NEAR(ratio, std::pow(2.0, -0.125), 1e-9);
}

TEST(UnitTest, RateConversions) {
  EXPECT_DOUBLE_EQ(to_rate_units(10e9), 10'000.0);  // 10 Gbps = 1e4 Mbps
  EXPECT_DOUBLE_EQ(to_bps(10'000.0), 10e9);
}

}  // namespace
}  // namespace numfabric::num
