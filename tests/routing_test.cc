// Path enumeration (no-silent-cap contract, counting, strided sampling) and
// ECMP selection (deterministic, unbiased spread).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace numfabric::net {
namespace {

/// Host -- swA -- (n parallel cables) -- swB -- host: exactly n shortest
/// paths between the two hosts, middle links in creation order.
struct ParallelFabric {
  Topology* topo;
  Host* src;
  Host* dst;
  std::vector<Link*> cables;  // swA -> swB direction
};

ParallelFabric build_parallel(Topology& topo, int cables) {
  ParallelFabric fabric;
  fabric.topo = &topo;
  fabric.src = topo.add_host("src");
  fabric.dst = topo.add_host("dst");
  Switch* a = topo.add_switch("swA");
  Switch* b = topo.add_switch("swB");
  topo.connect(fabric.src, a, 10e9, sim::micros(1), drop_tail_factory());
  topo.connect(b, fabric.dst, 10e9, sim::micros(1), drop_tail_factory());
  for (int i = 0; i < cables; ++i) {
    fabric.cables.push_back(
        topo.connect(a, b, 40e9, sim::micros(1), drop_tail_factory()).first);
  }
  return fabric;
}

TEST(RoutingTest, EnumeratesWideFabricsWithoutSilentCap) {
  // 100 parallel cables exceed the old silent cap of 64; every path must
  // come back, in creation order.
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 100);
  const auto paths = all_shortest_paths(topo, fabric.src, fabric.dst);
  ASSERT_EQ(paths.size(), 100u);
  EXPECT_EQ(count_shortest_paths(topo, fabric.src, fabric.dst), 100u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_EQ(paths[i].links.size(), 3u);
    EXPECT_EQ(paths[i].links[1], fabric.cables[i]);
  }
}

TEST(RoutingTest, ThrowsPastEnumerationLimitInsteadOfTruncating) {
  // Two stages of 70 parallel cables: 4900 shortest paths > the 4096 limit.
  sim::Simulator sim;
  Topology topo(sim);
  Host* src = topo.add_host("src");
  Host* dst = topo.add_host("dst");
  Switch* a = topo.add_switch("a");
  Switch* b = topo.add_switch("b");
  Switch* c = topo.add_switch("c");
  topo.connect(src, a, 10e9, sim::micros(1), drop_tail_factory());
  topo.connect(c, dst, 10e9, sim::micros(1), drop_tail_factory());
  for (int i = 0; i < 70; ++i) {
    topo.connect(a, b, 10e9, sim::micros(1), drop_tail_factory());
    topo.connect(b, c, 10e9, sim::micros(1), drop_tail_factory());
  }
  EXPECT_EQ(count_shortest_paths(topo, src, dst), 4900u);
  EXPECT_THROW(all_shortest_paths(topo, src, dst), std::length_error);
  // The explicit opt-in still works and reports what was dropped.
  const ShortestPathSample sample = sample_shortest_paths(topo, src, dst, 16);
  EXPECT_EQ(sample.total_paths, 4900u);
  EXPECT_EQ(sample.paths.size(), 16u);
  EXPECT_TRUE(sample.capped());
}

TEST(RoutingTest, SampleSpreadsEvenlyInsteadOfPrefixing) {
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 100);
  const ShortestPathSample sample =
      sample_shortest_paths(topo, fabric.src, fabric.dst, 10);
  EXPECT_EQ(sample.total_paths, 100u);
  ASSERT_EQ(sample.paths.size(), 10u);
  EXPECT_TRUE(sample.capped());
  // Even stride over the creation order: ranks 0, 10, 20, ..., 90 — not the
  // first ten cables.
  for (std::size_t i = 0; i < sample.paths.size(); ++i) {
    EXPECT_EQ(sample.paths[i].links[1], fabric.cables[i * 10]) << i;
  }
}

TEST(RoutingTest, SampleReturnsFullSetWhenItFits) {
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 8);
  const ShortestPathSample sample =
      sample_shortest_paths(topo, fabric.src, fabric.dst, 64);
  EXPECT_EQ(sample.total_paths, 8u);
  EXPECT_EQ(sample.paths.size(), 8u);
  EXPECT_FALSE(sample.capped());
  EXPECT_THROW(sample_shortest_paths(topo, fabric.src, fabric.dst, 0),
               std::invalid_argument);
}

TEST(RoutingTest, CountHandlesUnreachableAndDegenerate) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  EXPECT_EQ(count_shortest_paths(topo, a, b), 0u);
  EXPECT_TRUE(sample_shortest_paths(topo, a, b, 4).paths.empty());
  EXPECT_THROW(count_shortest_paths(topo, a, a), std::invalid_argument);
}

TEST(RoutingTest, EcmpSpreadsSequentialFlowIdsOver16Spines) {
  // The regression this guards: `hash % 16` keeps only the low bits and,
  // for non-power-of-two sets, adds modulo bias.  Sequential flow ids must
  // land near-uniformly across a 16-spine fabric's path set.
  sim::Simulator sim;
  Topology topo(sim);
  const LeafSpine ls = build_leaf_spine(
      topo, {.hosts_per_leaf = 1, .num_leaves = 2, .num_spines = 16},
      drop_tail_factory());
  const auto paths = all_shortest_paths(topo, ls.hosts[0], ls.hosts[1]);
  ASSERT_EQ(paths.size(), 16u);

  constexpr int kFlows = 4096;
  std::map<const Path*, int> counts;
  for (FlowId flow = 1; flow <= kFlows; ++flow) {
    ++counts[&ecmp_pick(paths, flow)];
  }
  ASSERT_EQ(counts.size(), 16u) << "some spine never picked";
  const int expected = kFlows / 16;  // 256
  for (const auto& [path, count] : counts) {
    EXPECT_GT(count, expected * 3 / 4) << "path underloaded";
    EXPECT_LT(count, expected * 5 / 4) << "path overloaded";
  }
}

TEST(RoutingTest, EcmpAvoidsModuloBiasOnOddSetSizes) {
  // 5 paths: a modulo reduction of a 64-bit hash is biased toward the first
  // (2^64 mod 5) residues; multiply-shift must keep every path within a few
  // percent of uniform for sequential ids.
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 5);
  const auto paths = all_shortest_paths(topo, fabric.src, fabric.dst);
  ASSERT_EQ(paths.size(), 5u);
  std::map<const Path*, int> counts;
  constexpr int kFlows = 5000;
  for (FlowId flow = 1; flow <= kFlows; ++flow) {
    ++counts[&ecmp_pick(paths, flow)];
  }
  for (const auto& [path, count] : counts) {
    EXPECT_GT(count, 850);
    EXPECT_LT(count, 1150);
  }
  // Deterministic across calls.
  EXPECT_EQ(&ecmp_pick(paths, 12345), &ecmp_pick(paths, 12345));
}

}  // namespace
}  // namespace numfabric::net
