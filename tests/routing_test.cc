// Path enumeration (no-silent-cap contract, counting, strided sampling) and
// ECMP selection (deterministic, unbiased spread).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace numfabric::net {
namespace {

/// Host -- swA -- (n parallel cables) -- swB -- host: exactly n shortest
/// paths between the two hosts, middle links in creation order.
struct ParallelFabric {
  Topology* topo;
  Host* src;
  Host* dst;
  std::vector<Link*> cables;  // swA -> swB direction
};

ParallelFabric build_parallel(Topology& topo, int cables) {
  ParallelFabric fabric;
  fabric.topo = &topo;
  fabric.src = topo.add_host("src");
  fabric.dst = topo.add_host("dst");
  Switch* a = topo.add_switch("swA");
  Switch* b = topo.add_switch("swB");
  topo.connect(fabric.src, a, 10e9, sim::micros(1), drop_tail_factory());
  topo.connect(b, fabric.dst, 10e9, sim::micros(1), drop_tail_factory());
  for (int i = 0; i < cables; ++i) {
    fabric.cables.push_back(
        topo.connect(a, b, 40e9, sim::micros(1), drop_tail_factory()).first);
  }
  return fabric;
}

TEST(RoutingTest, EnumeratesWideFabricsWithoutSilentCap) {
  // 100 parallel cables exceed the old silent cap of 64; every path must
  // come back, in creation order.
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 100);
  const auto paths = all_shortest_paths(topo, fabric.src, fabric.dst);
  ASSERT_EQ(paths.size(), 100u);
  EXPECT_EQ(count_shortest_paths(topo, fabric.src, fabric.dst), 100u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    ASSERT_EQ(paths[i].links.size(), 3u);
    EXPECT_EQ(paths[i].links[1], fabric.cables[i]);
  }
}

TEST(RoutingTest, ThrowsPastEnumerationLimitInsteadOfTruncating) {
  // Two stages of 70 parallel cables: 4900 shortest paths > the 4096 limit.
  sim::Simulator sim;
  Topology topo(sim);
  Host* src = topo.add_host("src");
  Host* dst = topo.add_host("dst");
  Switch* a = topo.add_switch("a");
  Switch* b = topo.add_switch("b");
  Switch* c = topo.add_switch("c");
  topo.connect(src, a, 10e9, sim::micros(1), drop_tail_factory());
  topo.connect(c, dst, 10e9, sim::micros(1), drop_tail_factory());
  for (int i = 0; i < 70; ++i) {
    topo.connect(a, b, 10e9, sim::micros(1), drop_tail_factory());
    topo.connect(b, c, 10e9, sim::micros(1), drop_tail_factory());
  }
  EXPECT_EQ(count_shortest_paths(topo, src, dst), 4900u);
  EXPECT_THROW(all_shortest_paths(topo, src, dst), std::length_error);
  // The explicit opt-in still works and reports what was dropped.
  const ShortestPathSample sample = sample_shortest_paths(topo, src, dst, 16);
  EXPECT_EQ(sample.total_paths, 4900u);
  EXPECT_EQ(sample.paths.size(), 16u);
  EXPECT_TRUE(sample.capped());
}

TEST(RoutingTest, SampleSpreadsEvenlyInsteadOfPrefixing) {
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 100);
  const ShortestPathSample sample =
      sample_shortest_paths(topo, fabric.src, fabric.dst, 10);
  EXPECT_EQ(sample.total_paths, 100u);
  ASSERT_EQ(sample.paths.size(), 10u);
  EXPECT_TRUE(sample.capped());
  // Even stride over the creation order: ranks 0, 10, 20, ..., 90 — not the
  // first ten cables.
  for (std::size_t i = 0; i < sample.paths.size(); ++i) {
    EXPECT_EQ(sample.paths[i].links[1], fabric.cables[i * 10]) << i;
  }
}

TEST(RoutingTest, SampleReturnsFullSetWhenItFits) {
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 8);
  const ShortestPathSample sample =
      sample_shortest_paths(topo, fabric.src, fabric.dst, 64);
  EXPECT_EQ(sample.total_paths, 8u);
  EXPECT_EQ(sample.paths.size(), 8u);
  EXPECT_FALSE(sample.capped());
  EXPECT_THROW(sample_shortest_paths(topo, fabric.src, fabric.dst, 0),
               std::invalid_argument);
}

TEST(RoutingTest, CountHandlesUnreachableAndDegenerate) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  EXPECT_EQ(count_shortest_paths(topo, a, b), 0u);
  EXPECT_TRUE(sample_shortest_paths(topo, a, b, 4).paths.empty());
  EXPECT_THROW(count_shortest_paths(topo, a, a), std::invalid_argument);
}

TEST(RoutingTest, EcmpSpreadsSequentialFlowIdsOver16Spines) {
  // The regression this guards: `hash % 16` keeps only the low bits and,
  // for non-power-of-two sets, adds modulo bias.  Sequential flow ids must
  // land near-uniformly across a 16-spine fabric's path set.
  sim::Simulator sim;
  Topology topo(sim);
  const LeafSpine ls = build_leaf_spine(
      topo, {.hosts_per_leaf = 1, .num_leaves = 2, .num_spines = 16},
      drop_tail_factory());
  const auto paths = all_shortest_paths(topo, ls.hosts[0], ls.hosts[1]);
  ASSERT_EQ(paths.size(), 16u);

  constexpr int kFlows = 4096;
  std::map<const Path*, int> counts;
  for (FlowId flow = 1; flow <= kFlows; ++flow) {
    ++counts[&ecmp_pick(paths, flow)];
  }
  ASSERT_EQ(counts.size(), 16u) << "some spine never picked";
  const int expected = kFlows / 16;  // 256
  for (const auto& [path, count] : counts) {
    EXPECT_GT(count, expected * 3 / 4) << "path underloaded";
    EXPECT_LT(count, expected * 5 / 4) << "path overloaded";
  }
}

TEST(RoutingTest, EcmpAvoidsModuloBiasOnOddSetSizes) {
  // 5 paths: a modulo reduction of a 64-bit hash is biased toward the first
  // (2^64 mod 5) residues; multiply-shift must keep every path within a few
  // percent of uniform for sequential ids.
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 5);
  const auto paths = all_shortest_paths(topo, fabric.src, fabric.dst);
  ASSERT_EQ(paths.size(), 5u);
  std::map<const Path*, int> counts;
  constexpr int kFlows = 5000;
  for (FlowId flow = 1; flow <= kFlows; ++flow) {
    ++counts[&ecmp_pick(paths, flow)];
  }
  for (const auto& [path, count] : counts) {
    EXPECT_GT(count, 850);
    EXPECT_LT(count, 1150);
  }
  // Deterministic across calls.
  EXPECT_EQ(&ecmp_pick(paths, 12345), &ecmp_pick(paths, 12345));
}

// ---------------------------------------------------------------------------
// Graph routing: link-id path sets over a FabricGraph.
// ---------------------------------------------------------------------------

/// True when `path` is a valid simple src->dst walk on `graph`.
bool valid_simple_path(const FabricGraph& graph, const std::vector<int>& path,
                       int src, int dst) {
  if (path.empty()) return false;
  if (graph.link_src(path.front()) != src) return false;
  if (graph.link_dst(path.back()) != dst) return false;
  std::set<int> visited = {src};
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0 && graph.link_src(path[i]) != graph.link_dst(path[i - 1])) {
      return false;
    }
    if (!visited.insert(graph.link_dst(path[i])).second) return false;
  }
  return true;
}

TEST(GraphRoutingTest, GraphEnumerationMatchesObjectEnumeration) {
  // The same leaf-spine, enumerated on the graph and on the materialized
  // topology: identical path sets, with graph link ids equal to the links'
  // dense Topology::links() indices.
  const LeafSpineOptions options{.hosts_per_leaf = 2,
                                 .num_leaves = 2,
                                 .num_spines = 4};
  const FabricGraph graph = make_leaf_spine(options);
  sim::Simulator sim;
  Topology topo(sim);
  const MaterializedFabric mat = topo.materialize(graph, drop_tail_factory());

  // Host 0 (leaf 0) to the last host (leaf 1): cross-leaf, one path per spine.
  const int src = 0;
  const int dst_host = graph.num_hosts() - 1;
  int seen = -1, src_node = -1, dst_node = -1;
  for (int n = 0; n < graph.num_nodes(); ++n) {
    if (graph.nodes()[static_cast<std::size_t>(n)].kind !=
        GraphNodeKind::kHost) {
      continue;
    }
    ++seen;
    if (seen == src) src_node = n;
    if (seen == dst_host) dst_node = n;
  }
  const auto graph_paths = all_shortest_paths(graph, src_node, dst_node);
  const auto object_paths = all_shortest_paths(
      topo, mat.hosts[static_cast<std::size_t>(src)],
      mat.hosts[static_cast<std::size_t>(dst_host)]);
  ASSERT_EQ(graph_paths.size(), 4u);
  ASSERT_EQ(object_paths.size(), graph_paths.size());
  for (std::size_t p = 0; p < graph_paths.size(); ++p) {
    ASSERT_EQ(object_paths[p].links.size(), graph_paths[p].size());
    for (std::size_t l = 0; l < graph_paths[p].size(); ++l) {
      EXPECT_EQ(object_paths[p].links[l],
                mat.links[static_cast<std::size_t>(graph_paths[p][l])]);
    }
  }
}

TEST(GraphRoutingTest, KShortestCoversEqualCostClassThenLengthens) {
  // On a 4-spine leaf-spine a cross-leaf pair has exactly 4 shortest paths;
  // k = 4 must return that class (same set as all_shortest_paths) and a
  // larger k appends strictly longer loop-free paths.  Three leaves so that
  // longer detours (src leaf -> spine -> third leaf -> spine -> dst leaf)
  // exist at all.
  const FabricGraph graph = make_leaf_spine(
      {.hosts_per_leaf = 2, .num_leaves = 3, .num_spines = 4});
  const int src = 7;  // first host node (3 leaves + 4 spines precede hosts)
  const int dst = graph.num_nodes() - 1;
  ASSERT_EQ(graph.nodes()[static_cast<std::size_t>(src)].kind,
            GraphNodeKind::kHost);

  const auto shortest = all_shortest_paths(graph, src, dst);
  const auto k4 = k_shortest_paths(graph, src, dst, 4);
  EXPECT_EQ(k4, shortest);

  const auto k8 = k_shortest_paths(graph, src, dst, 8);
  ASSERT_EQ(k8.size(), 8u);
  for (std::size_t p = 0; p < k8.size(); ++p) {
    EXPECT_TRUE(valid_simple_path(graph, k8[p], src, dst)) << p;
    if (p > 0) {
      EXPECT_GE(k8[p].size(), k8[p - 1].size()) << p;
    }
  }
  EXPECT_GT(k8.back().size(), k8.front().size());
  // No duplicates.
  std::set<std::vector<int>> unique(k8.begin(), k8.end());
  EXPECT_EQ(unique.size(), k8.size());
}

TEST(GraphRoutingTest, KShortestIsDeterministicOnJellyfish) {
  const FabricGraph graph =
      make_jellyfish({.switches = 10, .ports = 3, .hosts = 10, .seed = 3});
  // First host node follows the 10 switches.
  const int src = 10;
  const int dst = graph.num_nodes() - 1;
  const auto first = k_shortest_paths(graph, src, dst, 8);
  const auto second = k_shortest_paths(graph, src, dst, 8);
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  for (std::size_t p = 0; p < first.size(); ++p) {
    EXPECT_TRUE(valid_simple_path(graph, first[p], src, dst)) << p;
  }
}

TEST(GraphRoutingTest, KShortestReturnsFewerWhenExhausted) {
  // Host - switch - host: exactly one loop-free path regardless of k.
  FabricGraph graph;
  const int a = graph.add_host("a");
  const int sw = graph.add_switch("sw");
  const int b = graph.add_host("b");
  graph.add_cable(a, sw, 10e9, sim::micros(1));
  graph.add_cable(sw, b, 10e9, sim::micros(1));
  const auto paths = k_shortest_paths(graph, a, b, 16);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], (std::vector<int>{0, 2}));
}

TEST(GraphRoutingTest, KShortestContractViolationsThrow) {
  const FabricGraph graph = make_leaf_spine(
      {.hosts_per_leaf = 2, .num_leaves = 2, .num_spines = 2});
  EXPECT_THROW(k_shortest_paths(graph, 4, 4, 2), std::invalid_argument);
  EXPECT_THROW(k_shortest_paths(graph, 4, 5, 0), std::invalid_argument);
  // No silent clamping: a request past the enumeration cap throws instead of
  // quietly returning kMaxEnumeratedPaths results.
  EXPECT_THROW(k_shortest_paths(graph, 4, 5, kMaxEnumeratedPaths + 1),
               std::length_error);
}

TEST(GraphRoutingTest, EcmpIndexMatchesEcmpPick) {
  sim::Simulator sim;
  Topology topo(sim);
  const ParallelFabric fabric = build_parallel(topo, 7);
  const auto paths = all_shortest_paths(topo, fabric.src, fabric.dst);
  for (FlowId flow = 1; flow <= 500; ++flow) {
    EXPECT_EQ(&paths[ecmp_index(paths.size(), flow)], &ecmp_pick(paths, flow))
        << flow;
  }
  EXPECT_THROW(ecmp_index(0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace numfabric::net
