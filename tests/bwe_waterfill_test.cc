// BwE fair-share water-filling tests, anchored on Fig. 2's worked example.
#include <gtest/gtest.h>

#include "num/bwe_waterfill.h"

namespace numfabric::num {
namespace {

TEST(BweWaterfillTest, Fig2At10Gbps) {
  // "If the link speed is 10 Gbps, the blue flow gets all of the link" —
  // fair share 1... the text says f = 1? The allocation: flow1 = 10 Gbps,
  // flow2 = 0 (strict priority region ends at f = 2 where B1 = 10).
  const BandwidthFunction b1 = fig2_flow1();
  const BandwidthFunction b2 = fig2_flow2();
  BweProblem problem;
  problem.functions = {&b1, &b2};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {10'000.0};
  const auto result = bwe_waterfill(problem);
  EXPECT_NEAR(result.rates[0], 10'000.0, 20.0);
  EXPECT_NEAR(result.rates[1], 0.0, 20.0);
}

TEST(BweWaterfillTest, Fig2At25Gbps) {
  // "But with a link speed of 25 Gbps, the blue flow gets 15 Gbps and the
  // red flow gets 10 Gbps, for a fair share of 2.5."
  const BandwidthFunction b1 = fig2_flow1();
  const BandwidthFunction b2 = fig2_flow2();
  BweProblem problem;
  problem.functions = {&b1, &b2};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {25'000.0};
  const auto result = bwe_waterfill(problem);
  EXPECT_NEAR(result.rates[0], 15'000.0, 50.0);
  EXPECT_NEAR(result.rates[1], 10'000.0, 50.0);
  EXPECT_NEAR(result.fair_shares[0], 2.5, 0.01);
}

TEST(BweWaterfillTest, Fig2At15Gbps) {
  // Between the breakpoints: 10 + 30 (f - 2) = 15  =>  f = 13/6,
  // flow1 = 10 + 10/6 Gbps, flow2 = 20/6 Gbps.
  const BandwidthFunction b1 = fig2_flow1();
  const BandwidthFunction b2 = fig2_flow2();
  BweProblem problem;
  problem.functions = {&b1, &b2};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {15'000.0};
  const auto result = bwe_waterfill(problem);
  EXPECT_NEAR(result.rates[0], 10'000.0 + 10'000.0 / 6, 60.0);
  EXPECT_NEAR(result.rates[1], 20'000.0 / 6, 60.0);
}

TEST(BweWaterfillTest, Fig2At35GbpsFlow2Capped) {
  // Beyond 25 Gbps flow 2 is capped at 10 Gbps; flow 1's function continues
  // (slope 10 Gbps/unit), so it absorbs the rest: (25, 10).
  const BandwidthFunction b1 = fig2_flow1();
  const BandwidthFunction b2 = fig2_flow2();
  BweProblem problem;
  problem.functions = {&b1, &b2};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {35'000.0};
  const auto result = bwe_waterfill(problem);
  EXPECT_NEAR(result.rates[0], 25'000.0, 100.0);
  EXPECT_NEAR(result.rates[1], 10'000.0, 100.0);
}

TEST(BweWaterfillTest, MultiLinkDifferentFairShares) {
  // Two identical linear functions, flow 0 on a tight link: it freezes at a
  // lower fair share while flow 1 keeps rising on its own link.
  const BandwidthFunction linear({{0, 0}, {1, 10}});
  BweProblem problem;
  problem.functions = {&linear, &linear};
  problem.flow_links = {{0}, {1}};
  problem.capacities = {5.0, 30.0};
  const auto result = bwe_waterfill(problem, /*max_fair_share=*/3.0);
  EXPECT_NEAR(result.rates[0], 5.0, 1e-6);
  EXPECT_NEAR(result.fair_shares[0], 0.5, 1e-6);
  EXPECT_NEAR(result.rates[1], 30.0, 1e-6);  // its own link saturates at f=3
}

TEST(BweWaterfillTest, UnconstrainedFlowsFreezeAtBound) {
  const BandwidthFunction capped =
      BandwidthFunction({{0, 0}, {1, 10}}).capped(0.0);
  BweProblem problem;
  problem.functions = {&capped};
  problem.flow_links = {{0}};
  problem.capacities = {100.0};
  const auto result = bwe_waterfill(problem, /*max_fair_share=*/50.0);
  EXPECT_NEAR(result.rates[0], 10.0, 1e-6);  // its cap, not the capacity
  EXPECT_NEAR(result.fair_shares[0], 50.0, 1e-6);
}

TEST(BweWaterfillTest, RejectsMalformedInput) {
  const BandwidthFunction linear({{0, 0}, {1, 10}});
  BweProblem problem;
  problem.functions = {&linear};
  problem.flow_links = {};
  EXPECT_THROW(bwe_waterfill(problem), std::invalid_argument);
  problem.flow_links = {{}};
  EXPECT_THROW(bwe_waterfill(problem), std::invalid_argument);
  problem.flow_links = {{2}};
  problem.capacities = {10.0};
  EXPECT_THROW(bwe_waterfill(problem), std::invalid_argument);
}

}  // namespace
}  // namespace numfabric::num
