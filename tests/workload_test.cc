// Workload generator tests: the CDFs must match the paper's quoted shape
// statistics; Poisson arrivals must hit the target load.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "net/topology.h"
#include "workload/scenarios.h"
#include "workload/size_distribution.h"

namespace numfabric::workload {
namespace {

double fraction_below(const SizeDistribution& dist, double size) {
  // Invert numerically via quantiles.
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (dist.quantile(mid) < size) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

TEST(SizeDistributionTest, WebsearchShapeMatchesPaper) {
  const SizeDistribution& dist = websearch_distribution();
  // ~50% of flows below 100 KB.
  EXPECT_NEAR(fraction_below(dist, 100e3), 0.5, 0.08);
  // ~30% above 1 MB...
  EXPECT_NEAR(1.0 - fraction_below(dist, 1e6), 0.30, 0.05);
  // ...carrying ~95% of bytes.
  sim::Rng rng(1);
  double total = 0, big = 0;
  for (int i = 0; i < 200'000; ++i) {
    const double size = static_cast<double>(dist.sample(rng));
    total += size;
    if (size > 1e6) big += size;
  }
  EXPECT_GT(big / total, 0.85);
}

TEST(SizeDistributionTest, EnterpriseShapeMatchesPaper) {
  const SizeDistribution& dist = enterprise_distribution();
  // 95% of flows below 10 KB.
  EXPECT_NEAR(fraction_below(dist, 10e3), 0.95, 0.02);
  // ~70% are 1-2 packets (<= 3 KB).
  EXPECT_NEAR(fraction_below(dist, 3e3), 0.70, 0.05);
}

TEST(SizeDistributionTest, SamplesMatchMean) {
  const SizeDistribution& dist = websearch_distribution();
  sim::Rng rng(2);
  double sum = 0;
  const int n = 300'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(dist.sample(rng));
  EXPECT_NEAR(sum / n / dist.mean_bytes(), 1.0, 0.05);
}

TEST(SizeDistributionTest, QuantileMonotone) {
  const SizeDistribution& dist = enterprise_distribution();
  double last = 0;
  for (double u = 0.01; u < 1.0; u += 0.01) {
    const double q = dist.quantile(u);
    EXPECT_GE(q, last);
    last = q;
  }
}

TEST(SizeDistributionTest, RejectsMalformedPoints) {
  EXPECT_THROW(SizeDistribution("x", {{100, 1.0}}), std::invalid_argument);
  EXPECT_THROW(SizeDistribution("x", {{100, 0.5}, {50, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(SizeDistribution("x", {{100, 0.5}, {200, 0.9}}),
               std::invalid_argument);
}

struct Hosts {
  sim::Simulator sim;
  net::Topology topo{sim};
  std::vector<net::Host*> hosts;
  explicit Hosts(int n) {
    for (int i = 0; i < n; ++i) {
      hosts.push_back(topo.add_host("h" + std::to_string(i)));
    }
  }
};

TEST(ScenariosTest, RandomPairsDistinctEndpoints) {
  Hosts rig(16);
  sim::Rng rng(3);
  const auto pairs = random_pairs(rig.hosts, 500, rng);
  ASSERT_EQ(pairs.size(), 500u);
  for (const HostPair& pair : pairs) EXPECT_NE(pair.src, pair.dst);
}

TEST(ScenariosTest, PermutationPairsCoverAllHostsOnce) {
  Hosts rig(32);
  sim::Rng rng(4);
  const auto pairs = permutation_pairs(rig.hosts, rng);
  ASSERT_EQ(pairs.size(), 16u);
  std::set<net::Host*> used;
  for (const HostPair& pair : pairs) {
    EXPECT_TRUE(used.insert(pair.src).second);
    EXPECT_TRUE(used.insert(pair.dst).second);
  }
  EXPECT_EQ(used.size(), 32u);
}

TEST(ScenariosTest, IncastPairsShareOneReceiver) {
  Hosts rig(16);
  sim::Rng rng(5);
  const auto pairs = incast_pairs(rig.hosts, 8, rng);
  ASSERT_EQ(pairs.size(), 8u);
  std::set<net::Host*> senders;
  for (const HostPair& pair : pairs) {
    EXPECT_EQ(pair.dst, pairs[0].dst);
    EXPECT_NE(pair.src, pair.dst);
    EXPECT_TRUE(senders.insert(pair.src).second);  // senders are distinct
  }
  EXPECT_THROW(incast_pairs(rig.hosts, 16, rng), std::invalid_argument);
  EXPECT_THROW(incast_pairs(rig.hosts, 0, rng), std::invalid_argument);
}

TEST(ScenariosTest, AllToAllCoversEveryOrderedPair) {
  Hosts rig(6);
  const auto pairs = all_to_all_pairs(rig.hosts);
  ASSERT_EQ(pairs.size(), 30u);  // 6 * 5
  std::set<std::pair<net::Host*, net::Host*>> seen;
  for (const HostPair& pair : pairs) {
    EXPECT_NE(pair.src, pair.dst);
    EXPECT_TRUE(seen.insert({pair.src, pair.dst}).second);
  }
}

TEST(SizeDistributionTest, DataminingShapeIsHeavyTailed) {
  const SizeDistribution& dist = datamining_distribution();
  // ~80% of flows below 10 KB, yet the mean sits in the MB range because of
  // the 100 MB+ tail.
  EXPECT_NEAR(fraction_below(dist, 10e3), 0.8, 0.05);
  EXPECT_GT(dist.mean_bytes(), 1e6);
  EXPECT_GT(dist.quantile(0.999), 100e6);
}

TEST(SizeDistributionTest, DataminingFullTailLiftsTheCap) {
  const SizeDistribution& capped = datamining_distribution(false);
  const SizeDistribution& full = datamining_distribution(true);
  // Quick scale stays bounded at 300 MB; full scale extends to VL2's 1 GB.
  EXPECT_NEAR(capped.quantile(1.0), 300e6, 1);
  EXPECT_NEAR(full.quantile(1.0), 1e9, 1);
  // The body is unchanged — only the extreme tail differs.
  EXPECT_NEAR(fraction_below(full, 10e3), fraction_below(capped, 10e3), 0.01);
  EXPECT_GT(full.mean_bytes(), capped.mean_bytes());
}

TEST(ScenariosTest, PoissonLoadMatchesTarget) {
  Hosts rig(16);
  sim::Rng rng(5);
  const double load = 0.5;
  const double nic = 10e9;
  const auto flows =
      poisson_flows(rig.hosts, nic, load, websearch_distribution(), 20'000, rng);
  double bytes = 0;
  for (const auto& flow : flows) bytes += static_cast<double>(flow.size_bytes);
  const double duration = sim::to_seconds(flows.back().arrival);
  const double offered = bytes * 8 / duration;
  EXPECT_NEAR(offered / (nic * 16), load, 0.05);
}

TEST(ScenariosTest, PoissonArrivalsSorted) {
  Hosts rig(4);
  sim::Rng rng(6);
  const auto flows =
      poisson_flows(rig.hosts, 10e9, 0.3, enterprise_distribution(), 1000, rng);
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].arrival, flows[i - 1].arrival);
  }
}

TEST(ScenariosTest, RejectsBadLoad) {
  Hosts rig(4);
  sim::Rng rng(7);
  EXPECT_THROW(
      poisson_flows(rig.hosts, 10e9, 0.0, websearch_distribution(), 10, rng),
      std::invalid_argument);
  EXPECT_THROW(
      poisson_flows(rig.hosts, 10e9, 1.5, websearch_distribution(), 10, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace numfabric::workload
