// Fabric wiring tests: queue factories, agents, flow lifecycle.
#include <gtest/gtest.h>

#include <memory>

#include "net/drop_tail_queue.h"
#include "net/pfabric_queue.h"
#include "net/routing.h"
#include "net/wfq_queue.h"
#include "num/utility.h"
#include "transport/fabric.h"
#include "transport/receiver.h"
#include "transport/sender_base.h"

namespace numfabric::transport {
namespace {

TEST(FabricTest, QueueFactoryMatchesScheme) {
  sim::Simulator sim;
  auto make = [&](Scheme scheme) {
    FabricOptions options;
    options.scheme = scheme;
    Fabric fabric(sim, options);
    return fabric.queue_factory()();
  };
  EXPECT_NE(dynamic_cast<net::WfqQueue*>(make(Scheme::kNumFabric).get()), nullptr);
  EXPECT_NE(dynamic_cast<net::DropTailQueue*>(make(Scheme::kDgd).get()), nullptr);
  EXPECT_NE(dynamic_cast<net::DropTailQueue*>(make(Scheme::kRcpStar).get()), nullptr);
  EXPECT_NE(dynamic_cast<net::DropTailQueue*>(make(Scheme::kDctcp).get()), nullptr);
  EXPECT_NE(dynamic_cast<net::PFabricQueue*>(make(Scheme::kPFabric).get()), nullptr);
}

TEST(FabricTest, AttachesControlPlaneOnlyForPriceSchemes) {
  sim::Simulator sim;
  for (Scheme scheme : {Scheme::kNumFabric, Scheme::kDgd, Scheme::kRcpStar,
                        Scheme::kDctcp, Scheme::kPFabric}) {
    FabricOptions options;
    options.scheme = scheme;
    Fabric fabric(sim, options);
    net::Topology topo(sim);
    net::Host* a = topo.add_host("a");
    net::Host* b = topo.add_host("b");
    topo.connect(a, b, 10e9, sim::micros(1), fabric.queue_factory());
    fabric.attach_agents(topo);
    const bool expects_control = scheme == Scheme::kNumFabric ||
                                 scheme == Scheme::kDgd ||
                                 scheme == Scheme::kRcpStar;
    EXPECT_EQ(fabric.control_plane() != nullptr, expects_control)
        << scheme_name(scheme);
    EXPECT_EQ(topo.links()[0]->has_control_slot(), expects_control)
        << scheme_name(scheme);
    // No per-link agent objects in the batched wiring.
    EXPECT_EQ(topo.links()[0]->agent(), nullptr) << scheme_name(scheme);
    if (expects_control) {
      EXPECT_EQ(fabric.control_plane()->link_count(), topo.links().size());
      EXPECT_EQ(topo.links()[0]->control_slot(), 0u);
      EXPECT_EQ(topo.links()[1]->control_slot(), 1u);
    }
  }
}

TEST(FabricTest, LegacyModeAttachesPerLinkAgents) {
  sim::Simulator sim;
  for (Scheme scheme : {Scheme::kNumFabric, Scheme::kDgd, Scheme::kRcpStar,
                        Scheme::kDctcp, Scheme::kPFabric}) {
    FabricOptions options;
    options.scheme = scheme;
    options.legacy_link_agents = true;
    Fabric fabric(sim, options);
    net::Topology topo(sim);
    net::Host* a = topo.add_host("a");
    net::Host* b = topo.add_host("b");
    topo.connect(a, b, 10e9, sim::micros(1), fabric.queue_factory());
    fabric.attach_agents(topo);
    const bool expects_agent = scheme == Scheme::kNumFabric ||
                               scheme == Scheme::kDgd ||
                               scheme == Scheme::kRcpStar;
    EXPECT_EQ(topo.links()[0]->agent() != nullptr, expects_agent)
        << scheme_name(scheme);
    EXPECT_EQ(fabric.control_plane(), nullptr) << scheme_name(scheme);
  }
}

struct FlowRig {
  sim::Simulator sim;
  FabricOptions options;
  std::unique_ptr<Fabric> fabric;
  std::unique_ptr<net::Topology> topo;
  net::Host* a = nullptr;
  net::Host* b = nullptr;
  num::AlphaFairUtility utility{1.0};

  FlowRig() {
    options.scheme = Scheme::kNumFabric;
    fabric = std::make_unique<Fabric>(sim, options);
    topo = std::make_unique<net::Topology>(sim);
    a = topo->add_host("a");
    b = topo->add_host("b");
    topo->connect(a, b, 10e9, sim::micros(1), fabric->queue_factory());
    fabric->attach_agents(*topo);
  }

  FlowSpec spec(std::uint64_t size = 0, sim::TimeNs start = 0) {
    FlowSpec s;
    s.src = a;
    s.dst = b;
    s.size_bytes = size;
    s.start_time = start;
    s.utility = &utility;
    s.path = net::all_shortest_paths(*topo, a, b).front();
    return s;
  }
};

TEST(FabricTest, AssignsFlowIdsAndReversePath) {
  FlowRig rig;
  Flow* flow1 = rig.fabric->add_flow(rig.spec());
  Flow* flow2 = rig.fabric->add_flow(rig.spec());
  EXPECT_NE(flow1->spec().id, flow2->spec().id);
  ASSERT_EQ(flow1->spec().reverse.links.size(), 1u);
  EXPECT_EQ(flow1->spec().reverse.links[0], flow1->spec().path.links[0]->twin());
}

TEST(FabricTest, RejectsDuplicateIdsAndBadSpecs) {
  FlowRig rig;
  FlowSpec spec = rig.spec();
  spec.id = 42;
  rig.fabric->add_flow(spec);
  FlowSpec duplicate = rig.spec();
  duplicate.id = 42;
  EXPECT_THROW(rig.fabric->add_flow(duplicate), std::invalid_argument);
  FlowSpec no_path = rig.spec();
  no_path.path.links.clear();
  EXPECT_THROW(rig.fabric->add_flow(no_path), std::invalid_argument);
  FlowSpec no_host = rig.spec();
  no_host.dst = nullptr;
  EXPECT_THROW(rig.fabric->add_flow(no_host), std::invalid_argument);
}

TEST(FabricTest, DeferredStartTime) {
  FlowRig rig;
  Flow* flow = rig.fabric->add_flow(rig.spec(0, sim::millis(2)));
  rig.sim.run_until(sim::millis(1));
  EXPECT_FALSE(flow->started());
  rig.sim.run_until(sim::millis(3));
  EXPECT_TRUE(flow->started());
}

TEST(FabricTest, CompletionCallbackAndUnregistration) {
  FlowRig rig;
  int completions = 0;
  rig.fabric->set_on_complete([&](Flow& flow) {
    ++completions;
    EXPECT_TRUE(flow.completed());
  });
  Flow* flow = rig.fabric->add_flow(rig.spec(100'000));
  rig.sim.run_until(sim::millis(10));
  ASSERT_TRUE(flow->completed());
  EXPECT_EQ(completions, 1);
  EXPECT_GT(flow->fct(), 0);
}

TEST(FabricTest, SwiftSenderRequiresUtility) {
  FlowRig rig;
  FlowSpec spec = rig.spec();
  spec.utility = nullptr;
  EXPECT_THROW(rig.fabric->add_flow(spec), std::invalid_argument);
}

TEST(FabricTest, SchemeNames) {
  EXPECT_STREQ(scheme_name(Scheme::kNumFabric), "NUMFabric");
  EXPECT_STREQ(scheme_name(Scheme::kDgd), "DGD");
  EXPECT_STREQ(scheme_name(Scheme::kRcpStar), "RCP*");
  EXPECT_STREQ(scheme_name(Scheme::kDctcp), "DCTCP");
  EXPECT_STREQ(scheme_name(Scheme::kPFabric), "pFabric");
}

}  // namespace
}  // namespace numfabric::transport
