// Weighted max-min water-filling: closed forms plus randomized invariants.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.h"
#include "num/waterfill.h"

namespace numfabric::num {
namespace {

TEST(WaterfillTest, SingleLinkEqualWeights) {
  WaterfillProblem problem;
  problem.weights = {1, 1, 1, 1};
  problem.flow_links = {{0}, {0}, {0}, {0}};
  problem.capacities = {100};
  const auto result = weighted_max_min(problem);
  for (double rate : result.rates) EXPECT_NEAR(rate, 25.0, 1e-9);
  EXPECT_TRUE(result.bottleneck[0]);
}

TEST(WaterfillTest, SingleLinkWeighted) {
  WaterfillProblem problem;
  problem.weights = {1, 3};
  problem.flow_links = {{0}, {0}};
  problem.capacities = {100};
  const auto result = weighted_max_min(problem);
  EXPECT_NEAR(result.rates[0], 25.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 75.0, 1e-9);
}

TEST(WaterfillTest, ClassicParkingLot) {
  // One long flow over both links, one short per link, equal weights:
  // all flows get C/2 (the long flow is bottlenecked everywhere).
  WaterfillProblem problem;
  problem.weights = {1, 1, 1};
  problem.flow_links = {{0, 1}, {0}, {1}};
  problem.capacities = {10, 10};
  const auto result = weighted_max_min(problem);
  EXPECT_NEAR(result.rates[0], 5.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 5.0, 1e-9);
  EXPECT_NEAR(result.rates[2], 5.0, 1e-9);
}

TEST(WaterfillTest, MultiLevelBottlenecks) {
  // Flow 0 on a tight link (cap 2) and a loose link; flow 1 only on the
  // loose link picks up the slack: max-min gives (2, 8).
  WaterfillProblem problem;
  problem.weights = {1, 1};
  problem.flow_links = {{0, 1}, {1}};
  problem.capacities = {2, 10};
  const auto result = weighted_max_min(problem);
  EXPECT_NEAR(result.rates[0], 2.0, 1e-9);
  EXPECT_NEAR(result.rates[1], 8.0, 1e-9);
  EXPECT_NEAR(result.fill_level[1], 8.0, 1e-9);
}

TEST(WaterfillTest, RejectsMalformedInput) {
  WaterfillProblem problem;
  problem.weights = {1};
  problem.flow_links = {{}};
  problem.capacities = {1};
  EXPECT_THROW(weighted_max_min(problem), std::invalid_argument);
  problem.flow_links = {{3}};
  EXPECT_THROW(weighted_max_min(problem), std::invalid_argument);
  problem.flow_links = {{0}};
  problem.weights = {-1};
  EXPECT_THROW(weighted_max_min(problem), std::invalid_argument);
}

// Randomized invariants.  For any instance the allocation must be feasible,
// every flow must cross at least one saturated link (Pareto efficiency), and
// on each saturated link no crossing flow can have a higher normalized rate
// than a flow frozen there earlier (weighted max-min property).
struct RandomCase {
  int flows;
  int links;
  std::uint64_t seed;
};

class WaterfillRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(WaterfillRandom, FeasibleAndMaxMin) {
  const RandomCase param = GetParam();
  sim::Rng rng(param.seed);
  WaterfillProblem problem;
  problem.capacities.resize(static_cast<std::size_t>(param.links));
  for (auto& c : problem.capacities) c = rng.uniform(5.0, 50.0);
  for (int i = 0; i < param.flows; ++i) {
    problem.weights.push_back(rng.uniform(0.5, 4.0));
    std::vector<int> links;
    const int hops = static_cast<int>(rng.uniform_int(1, 3));
    for (int h = 0; h < hops; ++h) {
      const int link = static_cast<int>(rng.index(static_cast<std::size_t>(param.links)));
      if (std::find(links.begin(), links.end(), link) == links.end()) {
        links.push_back(link);
      }
    }
    problem.flow_links.push_back(links);
  }

  const auto result = weighted_max_min(problem);

  // Feasibility.
  std::vector<double> load(problem.capacities.size(), 0.0);
  for (std::size_t i = 0; i < problem.weights.size(); ++i) {
    EXPECT_GT(result.rates[i], 0.0);
    for (int l : problem.flow_links[i]) load[static_cast<std::size_t>(l)] += result.rates[i];
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], problem.capacities[l] * (1 + 1e-9));
  }

  // Every flow crosses a saturated link.
  for (std::size_t i = 0; i < problem.weights.size(); ++i) {
    bool saturated = false;
    for (int l : problem.flow_links[i]) {
      if (load[static_cast<std::size_t>(l)] >=
          problem.capacities[static_cast<std::size_t>(l)] * (1 - 1e-6)) {
        saturated = true;
      }
    }
    EXPECT_TRUE(saturated) << "flow " << i << " has slack on all its links";
  }

  // Weighted max-min: a flow's fill level is the minimum over its links of
  // the levels at which those links froze flows; no flow on a saturated
  // link can exceed the minimum fill level there (else it was favored).
  for (std::size_t i = 0; i < problem.weights.size(); ++i) {
    for (int l : problem.flow_links[i]) {
      if (!result.bottleneck[static_cast<std::size_t>(l)]) continue;
      // Find the smallest fill level among flows on this link.
      double min_level = result.fill_level[i];
      for (std::size_t j = 0; j < problem.weights.size(); ++j) {
        for (int k : problem.flow_links[j]) {
          if (k == l) min_level = std::min(min_level, result.fill_level[j]);
        }
      }
      EXPECT_GE(result.fill_level[i], min_level - 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, WaterfillRandom,
    ::testing::Values(RandomCase{3, 2, 1}, RandomCase{8, 4, 2},
                      RandomCase{20, 6, 3}, RandomCase{50, 10, 4},
                      RandomCase{100, 20, 5}, RandomCase{200, 12, 6}));

}  // namespace
}  // namespace numfabric::num
