// sim::PeriodicTick: grid alignment from arbitrary start times, cancel and
// re-arm semantics, and same-timestamp FIFO interaction with the Simulator's
// event ordering — the contract transport::ControlPlane's determinism rests
// on.
#include <gtest/gtest.h>

#include <vector>

#include "sim/periodic_tick.h"
#include "sim/simulator.h"

namespace numfabric::sim {
namespace {

TEST(PeriodicTickTest, FiresOnTheGridFromTimeZero) {
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  sim.run_until(micros(100));
  EXPECT_EQ(fired, (std::vector<TimeNs>{micros(30), micros(60), micros(90)}));
  EXPECT_EQ(tick.ticks(), 3u);
  EXPECT_TRUE(tick.armed());
}

TEST(PeriodicTickTest, ArmingOffGridAlignsToTheNextMultiple) {
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  // Arm at t = 7 us: the first fire must land on the *global* grid (30 us),
  // not 7 + 30 — the paper's PTP-synchronized updates.
  sim.schedule_at(micros(7), [&] {
    tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  });
  sim.run_until(micros(70));
  EXPECT_EQ(fired, (std::vector<TimeNs>{micros(30), micros(60)}));
}

TEST(PeriodicTickTest, ArmingExactlyOnGridFiresOneIntervalLater) {
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  sim.schedule_at(micros(30), [&] {
    tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  });
  sim.run_until(micros(95));
  // Strictly after now: an arm at t = 30 us first fires at 60 us.
  EXPECT_EQ(fired, (std::vector<TimeNs>{micros(60), micros(90)}));
}

TEST(PeriodicTickTest, CancelStopsFutureFires) {
  Simulator sim;
  PeriodicTick tick;
  int fires = 0;
  tick.arm(sim, micros(10), [&] { ++fires; });
  sim.schedule_at(micros(25), [&] { tick.cancel(); });
  sim.run_until(micros(100));
  EXPECT_EQ(fires, 2);  // 10 us and 20 us only
  EXPECT_FALSE(tick.armed());
}

TEST(PeriodicTickTest, CancelFromInsideTheCallbackSticks) {
  Simulator sim;
  PeriodicTick tick;
  int fires = 0;
  tick.arm(sim, micros(10), [&] {
    if (++fires == 2) tick.cancel();
  });
  sim.run_until(micros(100));
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(tick.armed());
}

TEST(PeriodicTickTest, ReArmRestartsTheGridWithTheNewInterval) {
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  sim.schedule_at(micros(35), [&] {
    tick.arm(sim, micros(50), [&] { fired.push_back(sim.now()); });
  });
  sim.run_until(micros(160));
  // 30 us from the first arm; then the 50 us grid: 50, 100, 150.
  EXPECT_EQ(fired, (std::vector<TimeNs>{micros(30), micros(50), micros(100),
                                        micros(150)}));
  EXPECT_EQ(tick.interval(), micros(50));
}

TEST(PeriodicTickTest, ReArmFromInsideTheCallbackTakesOver) {
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  std::function<void()> on_fire = [&] {
    fired.push_back(sim.now());
    if (fired.size() == 1) tick.arm(sim, micros(40), on_fire);
  };
  tick.arm(sim, micros(30), on_fire);
  sim.run_until(micros(130));
  // 30 us, then the 40 us grid from t = 30: 40, 80, 120.
  EXPECT_EQ(fired, (std::vector<TimeNs>{micros(30), micros(40), micros(80),
                                        micros(120)}));
}

TEST(PeriodicTickTest, KeepsFifoPositionAmongSameTimestampEvents) {
  // Events at the tick's grid time scheduled BEFORE the tick was armed run
  // before it; events scheduled after run after it.  On subsequent grid
  // points the tick's position is set by its reschedule (pushed during the
  // previous fire), exactly like the per-link agent chains it replaces.
  Simulator sim;
  PeriodicTick tick;
  std::vector<int> order;
  sim.schedule_at(micros(30), [&] { order.push_back(1); });
  tick.arm(sim, micros(30), [&] { order.push_back(2); });
  sim.schedule_at(micros(30), [&] { order.push_back(3); });
  // At 60 us: the tick re-armed itself during the 30 us fire, so an event
  // scheduled at run time t = 45 us lands after it.
  sim.schedule_at(micros(45), [&] {
    sim.schedule_at(micros(60), [&] { order.push_back(4); });
  });
  sim.run_until(micros(70));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 2, 4}));
}

TEST(PeriodicTickTest, InCallbackReArmKeepsTheExecutingCallableAlive) {
  // Re-arming replaces the stored callback while the old one is still on
  // the stack; the old callable's owning captures must stay valid for the
  // rest of its invocation (regression: use-after-free under ASan).
  Simulator sim;
  PeriodicTick tick;
  std::vector<int> seen;
  tick.arm(sim, micros(10), [&, payload = std::vector<int>{41}]() mutable {
    tick.arm(sim, micros(20), [&] { seen.push_back(99); });
    payload[0] += 1;  // owning capture touched AFTER the re-arm
    seen.push_back(payload[0]);
  });
  sim.run_until(micros(50));
  EXPECT_EQ(seen, (std::vector<int>{42, 99, 99}));
}

TEST(PeriodicTickTest, GridSurvivesRepeatedRunUntilBoundaries) {
  // run_until sets the clock to `until` between ticks (the sharded engine
  // and every experiment loop pause this way); the grid must not drift no
  // matter where the pauses land — on-grid, off-grid, or mid-interval.
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  sim.run_until(micros(45));   // fires 30, clock parks off-grid at 45
  sim.run_until(micros(60));   // fires 60, clock parks exactly on-grid
  sim.run_until(micros(71));   // no fire, clock parks mid-interval
  sim.run_until(micros(200));  // 90..180 in one leg
  EXPECT_EQ(fired,
            (std::vector<TimeNs>{micros(30), micros(60), micros(90),
                                 micros(120), micros(150), micros(180)}));
  EXPECT_EQ(tick.ticks(), 6u);
  EXPECT_TRUE(tick.armed());
}

TEST(PeriodicTickTest, ReArmAfterOffGridPauseAlignsToTheGlobalGrid) {
  // Cancel, pause with run_until at an off-grid time, then re-arm between
  // runs: the first fire lands on the next *global* multiple of the
  // interval, not pause-time + interval.
  Simulator sim;
  PeriodicTick tick;
  std::vector<TimeNs> fired;
  tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  sim.run_until(micros(40));  // fires 30
  tick.cancel();
  sim.run_until(micros(47));  // clock sits at 47 us, nothing pending
  tick.arm(sim, micros(30), [&] { fired.push_back(sim.now()); });
  sim.run_until(micros(130));
  EXPECT_EQ(fired, (std::vector<TimeNs>{micros(30), micros(60), micros(90),
                                        micros(120)}));
}

TEST(PeriodicTickTest, RejectsNonPositiveInterval) {
  Simulator sim;
  PeriodicTick tick;
  EXPECT_THROW(tick.arm(sim, 0, [] {}), std::invalid_argument);
  EXPECT_THROW(tick.arm(sim, -5, [] {}), std::invalid_argument);
}

TEST(PeriodicTickTest, CancelWhenIdleIsANoOp) {
  Simulator sim;
  PeriodicTick tick;
  tick.cancel();  // never armed
  EXPECT_FALSE(tick.armed());
  EXPECT_EQ(tick.ticks(), 0u);
}

}  // namespace
}  // namespace numfabric::sim
