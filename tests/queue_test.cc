// Queue/scheduler tests: FIFO drop-tail (+ECN), STFQ WFQ, the discrete-WFQ
// ablation and the pFabric priority queue.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/discrete_wfq_queue.h"
#include "net/drop_tail_queue.h"
#include "net/pfabric_queue.h"
#include "net/wfq_queue.h"

namespace numfabric::net {
namespace {

Packet make_data(FlowId flow, std::uint32_t size, double weight = 1.0) {
  Packet p;
  p.flow = flow;
  p.type = PacketType::kData;
  p.size = size;
  p.virtual_packet_len = weight > 0 ? size / weight : 0.0;
  return p;
}

Packet make_ack(FlowId flow) {
  Packet p;
  p.flow = flow;
  p.type = PacketType::kAck;
  p.size = kAckPacketBytes;
  p.virtual_packet_len = 0.0;
  return p;
}

// ---------------------------------------------------------------- DropTail

TEST(DropTailQueueTest, FifoOrder) {
  DropTailQueue queue(10'000);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Packet p = make_data(1, 100);
    p.seq = i;
    ASSERT_TRUE(queue.enqueue(std::move(p)));
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(queue.dequeue()->seq, i);
  }
  EXPECT_FALSE(queue.dequeue().has_value());
}

TEST(DropTailQueueTest, DropsWhenFull) {
  DropTailQueue queue(250);
  EXPECT_TRUE(queue.enqueue(make_data(1, 100)));
  EXPECT_TRUE(queue.enqueue(make_data(1, 100)));
  EXPECT_FALSE(queue.enqueue(make_data(1, 100)));  // 300 > 250
  EXPECT_EQ(queue.drops(), 1u);
  EXPECT_EQ(queue.bytes(), 200u);
}

TEST(DropTailQueueTest, EcnMarksAboveThreshold) {
  DropTailQueue queue(100'000, /*ecn_threshold_bytes=*/200);
  auto ecn_data = [] {
    Packet p = make_data(1, 100);
    p.ecn_capable = true;
    return p;
  };
  ASSERT_TRUE(queue.enqueue(ecn_data()));  // backlog 0 < 200: unmarked
  ASSERT_TRUE(queue.enqueue(ecn_data()));  // backlog 100 < 200: unmarked
  ASSERT_TRUE(queue.enqueue(ecn_data()));  // backlog 200 >= 200: marked
  EXPECT_FALSE(queue.dequeue()->ecn_marked);
  EXPECT_FALSE(queue.dequeue()->ecn_marked);
  EXPECT_TRUE(queue.dequeue()->ecn_marked);
}

TEST(DropTailQueueTest, EcnIgnoresNonCapablePackets) {
  DropTailQueue queue(100'000, 50);
  ASSERT_TRUE(queue.enqueue(make_data(1, 100)));
  ASSERT_TRUE(queue.enqueue(make_data(1, 100)));  // above threshold, not capable
  EXPECT_FALSE(queue.dequeue()->ecn_marked);
  EXPECT_FALSE(queue.dequeue()->ecn_marked);
}

// --------------------------------------------------------------------- WFQ

// Drains `rounds` packets and counts bytes served per flow.
std::map<FlowId, std::uint64_t> drain(Queue& queue, int rounds) {
  std::map<FlowId, std::uint64_t> served;
  for (int i = 0; i < rounds; ++i) {
    auto p = queue.dequeue();
    if (!p) break;
    served[p->flow] += p->size;
  }
  return served;
}

TEST(WfqQueueTest, EqualWeightsShareEqually) {
  WfqQueue queue(1'000'000);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.enqueue(make_data(1, 1000, 1.0)));
    ASSERT_TRUE(queue.enqueue(make_data(2, 1000, 1.0)));
  }
  const auto served = drain(queue, 100);
  EXPECT_NEAR(static_cast<double>(served.at(1)), 50'000, 1000);
  EXPECT_NEAR(static_cast<double>(served.at(2)), 50'000, 1000);
}

TEST(WfqQueueTest, WeightsDictateServiceRatio) {
  WfqQueue queue(10'000'000);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(queue.enqueue(make_data(1, 1000, 1.0)));
    ASSERT_TRUE(queue.enqueue(make_data(2, 1000, 3.0)));
  }
  const auto served = drain(queue, 200);
  const double ratio = static_cast<double>(served.at(2)) /
                       static_cast<double>(served.at(1));
  EXPECT_NEAR(ratio, 3.0, 0.25);
}

TEST(WfqQueueTest, DynamicPerPacketWeights) {
  // The same flow's weight can change packet-by-packet (xWI needs this).
  WfqQueue queue(10'000'000);
  for (int i = 0; i < 300; ++i) {
    // Flow 1's weight rises from 1 to 4 midway; flow 2 stays at 2.
    const double w1 = i < 150 ? 1.0 : 4.0;
    ASSERT_TRUE(queue.enqueue(make_data(1, 1000, w1)));
    ASSERT_TRUE(queue.enqueue(make_data(2, 1000, 2.0)));
  }
  // Drain everything; both flows fully served, no loss of work.
  const auto served = drain(queue, 600);
  EXPECT_EQ(served.at(1), 300'000u);
  EXPECT_EQ(served.at(2), 300'000u);
}

TEST(WfqQueueTest, ControlPacketsRideForFree) {
  WfqQueue queue(1'000'000);
  // A backlog of heavy data, then one ACK: the ACK's start tag is the
  // current virtual time, so it must not wait for the whole backlog.
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(queue.enqueue(make_data(1, 1500, 1.0)));
  ASSERT_TRUE(queue.dequeue().has_value());  // V now > 0
  ASSERT_TRUE(queue.enqueue(make_ack(2)));
  // The ACK (S = V) must come out before flow 1's tail (S grows per packet).
  bool ack_seen = false;
  for (int i = 0; i < 3; ++i) {
    auto p = queue.dequeue();
    ASSERT_TRUE(p.has_value());
    if (p->type == PacketType::kAck) ack_seen = true;
  }
  EXPECT_TRUE(ack_seen);
}

TEST(WfqQueueTest, DropsWhenFull) {
  WfqQueue queue(2'000);
  EXPECT_TRUE(queue.enqueue(make_data(1, 1500, 1.0)));
  EXPECT_FALSE(queue.enqueue(make_data(2, 1500, 1.0)));
  EXPECT_EQ(queue.drops(), 1u);
}

TEST(WfqQueueTest, VirtualTimeMonotone) {
  WfqQueue queue(1'000'000);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(queue.enqueue(make_data(1, 1000, 2.0)));
  double last = -1.0;
  while (auto p = queue.dequeue()) {
    EXPECT_GE(queue.virtual_time(), last);
    last = queue.virtual_time();
  }
}

TEST(WfqQueueTest, GarbageCollectsIdleFlowState) {
  WfqQueue queue(100'000'000);
  // Touch many distinct flows once, then push enough traffic to trigger GC.
  for (FlowId flow = 1; flow <= 1000; ++flow) {
    ASSERT_TRUE(queue.enqueue(make_data(flow, 100, 1.0)));
  }
  for (int i = 0; i < 1000; ++i) queue.dequeue();
  EXPECT_EQ(queue.tracked_flows(), 1000u);  // GC period not reached yet
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(queue.enqueue(make_data(1, 100, 1.0)));
    queue.dequeue();
  }
  EXPECT_LT(queue.tracked_flows(), 10u);
}

// ------------------------------------------------------------ DiscreteWfq

TEST(DiscreteWfqQueueTest, BandMappingMonotone) {
  DiscreteWfqQueue queue(1'000'000, 8, 0.1, 100.0);
  int last = -1;
  for (double w : {0.05, 0.1, 0.5, 2.0, 10.0, 50.0, 100.0, 500.0}) {
    const int band = queue.band_for_weight(w);
    EXPECT_GE(band, last);
    last = band;
  }
  EXPECT_EQ(queue.band_for_weight(0.01), 0);
  EXPECT_EQ(queue.band_for_weight(1e6), queue.num_bands() - 1);
}

TEST(DiscreteWfqQueueTest, ApproximatesWeightedSharing) {
  DiscreteWfqQueue queue(100'000'000, 16, 0.5, 32.0);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(queue.enqueue(make_data(1, 1000, 1.0)));
    ASSERT_TRUE(queue.enqueue(make_data(2, 1000, 4.0)));
  }
  const auto served = drain(queue, 1000);
  const double ratio = static_cast<double>(served.at(2)) /
                       static_cast<double>(served.at(1));
  // Quantized weights: the ratio is approximate, not exact.
  EXPECT_NEAR(ratio, 4.0, 1.2);
}

TEST(DiscreteWfqQueueTest, RejectsBadConfig) {
  EXPECT_THROW(DiscreteWfqQueue(1000, 0, 0.1, 10.0), std::invalid_argument);
  EXPECT_THROW(DiscreteWfqQueue(1000, 4, 10.0, 0.1), std::invalid_argument);
}

// ---------------------------------------------------------------- pFabric

Packet make_priority_data(FlowId flow, std::uint32_t size, double priority,
                          std::uint64_t seq = 0) {
  Packet p = make_data(flow, size);
  p.priority = priority;
  p.seq = seq;
  return p;
}

TEST(PFabricQueueTest, ServesMostUrgentFlowFirst) {
  PFabricQueue queue(100'000);
  ASSERT_TRUE(queue.enqueue(make_priority_data(1, 1000, 5000)));
  ASSERT_TRUE(queue.enqueue(make_priority_data(2, 1000, 100)));
  ASSERT_TRUE(queue.enqueue(make_priority_data(3, 1000, 900)));
  EXPECT_EQ(queue.dequeue()->flow, 2u);
  EXPECT_EQ(queue.dequeue()->flow, 3u);
  EXPECT_EQ(queue.dequeue()->flow, 1u);
}

TEST(PFabricQueueTest, PreservesPerFlowOrder) {
  PFabricQueue queue(100'000);
  // Later packets of a flow have *smaller* remaining size (more urgent);
  // service must still be in arrival order within the flow.
  ASSERT_TRUE(queue.enqueue(make_priority_data(1, 1000, 3000, 0)));
  ASSERT_TRUE(queue.enqueue(make_priority_data(1, 1000, 2000, 1)));
  ASSERT_TRUE(queue.enqueue(make_priority_data(1, 1000, 1000, 2)));
  EXPECT_EQ(queue.dequeue()->seq, 0u);
  EXPECT_EQ(queue.dequeue()->seq, 1u);
  EXPECT_EQ(queue.dequeue()->seq, 2u);
}

TEST(PFabricQueueTest, EvictsLeastUrgentWhenFull) {
  PFabricQueue queue(3'000);
  ASSERT_TRUE(queue.enqueue(make_priority_data(1, 1500, 10'000)));
  ASSERT_TRUE(queue.enqueue(make_priority_data(2, 1500, 20'000)));
  // Full.  A more urgent packet must push out flow 2's.
  ASSERT_TRUE(queue.enqueue(make_priority_data(3, 1500, 500)));
  EXPECT_EQ(queue.drops(), 1u);
  EXPECT_EQ(queue.dequeue()->flow, 3u);
  EXPECT_EQ(queue.dequeue()->flow, 1u);
  EXPECT_FALSE(queue.dequeue().has_value());
}

TEST(PFabricQueueTest, DropsIncomingIfLeastUrgent) {
  PFabricQueue queue(3'000);
  ASSERT_TRUE(queue.enqueue(make_priority_data(1, 1500, 100)));
  ASSERT_TRUE(queue.enqueue(make_priority_data(2, 1500, 200)));
  EXPECT_FALSE(queue.enqueue(make_priority_data(3, 1500, 99'999)));
  EXPECT_EQ(queue.drops(), 1u);
  EXPECT_EQ(queue.packets(), 2u);
}

TEST(PFabricQueueTest, NeverEvictsControlPackets) {
  PFabricQueue queue(1'000);
  Packet ack = make_ack(9);
  ack.priority = 0;
  ASSERT_TRUE(queue.enqueue(std::move(ack)));
  // Data can't displace the ACK even though it would not fit otherwise.
  EXPECT_FALSE(queue.enqueue(make_priority_data(1, 1500, 1)));
  EXPECT_EQ(queue.dequeue()->flow, 9u);
}

}  // namespace
}  // namespace numfabric::net
