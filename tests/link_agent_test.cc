// Unit tests for the per-link protocol agents: xWI (Fig. 3), DGD (Eq. 14)
// and RCP* (Eq. 15) price/rate dynamics, isolated from transports.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "net/drop_tail_queue.h"
#include "net/link.h"
#include "net/node.h"
#include "sim/simulator.h"
#include "transport/dgd/dgd_link_agent.h"
#include "transport/numfabric/xwi_link_agent.h"
#include "transport/rcp/rcp_link_agent.h"

namespace numfabric::transport {
namespace {

class NullHost : public net::Host {
 public:
  explicit NullHost(net::NodeId id) : Host(id, "sink") {}
  void receive(net::Packet&&) override {}
};

struct LinkRig {
  sim::Simulator sim;
  NullHost sink{0};
  std::unique_ptr<net::Link> link;

  explicit LinkRig(double rate_bps = 10e9) {
    link = std::make_unique<net::Link>(
        sim, "l", rate_bps, sim::micros(1),
        std::make_unique<net::DropTailQueue>(1'000'000), &sink);
  }

  net::Packet data(double residual, std::uint32_t size = 1500) {
    net::Packet p;
    p.flow = 1;
    p.type = net::PacketType::kData;
    p.size = size;
    p.normalized_residual = residual;
    return p;
  }
};

TEST(XwiLinkAgentTest, StampsPriceAndPathLenOnDataOnly) {
  LinkRig rig;
  XwiLinkAgent agent(rig.sim, *rig.link,
                     {sim::micros(30), 5.0, 0.5, /*initial_price=*/0.25});
  net::Packet p = rig.data(0.0);
  agent.on_dequeue(p);
  EXPECT_DOUBLE_EQ(p.path_price, 0.25);
  EXPECT_EQ(p.path_len, 1u);

  net::Packet ack;
  ack.type = net::PacketType::kAck;
  ack.size = 40;
  agent.on_dequeue(ack);
  EXPECT_DOUBLE_EQ(ack.path_price, 0.0);
  EXPECT_EQ(ack.path_len, 0u);
}

TEST(XwiLinkAgentTest, IdleLinkPriceDecaysToZero) {
  LinkRig rig;
  XwiLinkAgent agent(rig.sim, *rig.link,
                     {sim::micros(30), 5.0, 0.5, /*initial_price=*/1.0});
  // No traffic at all: u = 0, minRes has no observation -> newPrice =
  // max(p - eta*p, 0) = 0, averaged with beta = 0.5 each update.
  rig.sim.run_until(sim::micros(30 * 10));
  EXPECT_EQ(agent.updates(), 10u);
  EXPECT_NEAR(agent.price(), 1.0 / 1024.0, 1e-9);
}

TEST(XwiLinkAgentTest, PositiveResidualRaisesPrice) {
  LinkRig rig;
  XwiLinkAgent agent(rig.sim, *rig.link,
                     {sim::micros(30), 5.0, 0.5, /*initial_price=*/0.1});
  // Keep the link busy (full utilization) with residual +0.1 observations.
  for (int i = 0; i < 200; ++i) {
    rig.sim.schedule_at(i * sim::micros(1), [&] {
      net::Packet p = rig.data(+0.1);
      agent.on_enqueue(p);
      agent.on_dequeue(p);  // counts bytes: 1500 B/us = 12 Gbps > capacity
    });
  }
  rig.sim.run_until(sim::micros(90));
  // Three updates, each: p <- 0.5 p + 0.5 (p + 0.1)  (u == 1).
  EXPECT_NEAR(agent.price(), 0.1 + 3 * 0.05, 1e-9);
}

TEST(XwiLinkAgentTest, TakesMinimumResidual) {
  LinkRig rig;
  XwiLinkAgent agent(rig.sim, *rig.link,
                     {sim::micros(30), 5.0, 0.5, /*initial_price=*/0.2});
  rig.sim.schedule_at(sim::micros(1), [&] {
    for (double residual : {0.5, -0.3, 0.1}) {
      net::Packet p = rig.data(residual);
      agent.on_enqueue(p);
      agent.on_dequeue(p);
    }
    // Saturate the byte counter so u == 1 (no eta term).
    net::Packet big = rig.data(0.9, 60'000);
    agent.on_dequeue(big);
  });
  rig.sim.run_until(sim::micros(30));
  // p <- 0.5*0.2 + 0.5*max(0.2 + (-0.3), 0) = 0.1.
  EXPECT_NEAR(agent.price(), 0.1, 1e-9);
}

TEST(XwiLinkAgentTest, IgnoresNonFiniteResiduals) {
  LinkRig rig;
  XwiLinkAgent agent(rig.sim, *rig.link,
                     {sim::micros(30), 5.0, 0.5, /*initial_price=*/0.2});
  rig.sim.schedule_at(sim::micros(1), [&] {
    net::Packet p = rig.data(std::numeric_limits<double>::infinity());
    agent.on_enqueue(p);
    net::Packet big = rig.data(0.0, 60'000);
    agent.on_dequeue(big);  // u == 1
  });
  rig.sim.run_until(sim::micros(30));
  // No usable residual observation: minRes treated as 0; u == 1 -> price
  // unchanged.
  EXPECT_NEAR(agent.price(), 0.2, 1e-9);
}

TEST(XwiLinkAgentTest, UpdatesAreOnTheSynchronizedGrid) {
  LinkRig rig;
  // Construct at a non-grid time: the first update must still land on a
  // multiple of the interval (the paper's PTP-synchronized updates).
  std::unique_ptr<XwiLinkAgent> agent;
  rig.sim.schedule_at(sim::micros(7), [&] {
    agent = std::make_unique<XwiLinkAgent>(
        rig.sim, *rig.link, XwiLinkAgent::Params{sim::micros(30), 5.0, 0.5, 0.5});
    rig.sim.schedule_at(sim::micros(29), [&] { EXPECT_EQ(agent->updates(), 0u); });
    rig.sim.schedule_at(sim::micros(31), [&] { EXPECT_EQ(agent->updates(), 1u); });
  });
  rig.sim.run_until(sim::micros(40));
}

TEST(DgdLinkAgentTest, PriceFollowsGradient) {
  LinkRig rig;
  DgdConfig config;
  config.initial_price = 1e-4;
  DgdLinkAgent agent(rig.sim, *rig.link, config);
  // Serve 4000 bytes in a 16 us interval: y = 2 Gbps = 2000 Mbps over a
  // 10 Gbps (10000 Mbps) link; empty queue.
  rig.sim.schedule_at(sim::micros(1), [&] {
    net::Packet p = rig.data(0.0, 4000);
    agent.on_dequeue(p);
    EXPECT_DOUBLE_EQ(p.path_feedback, 1e-4);  // price accumulated
  });
  rig.sim.run_until(sim::micros(16));
  // p <- [1e-4 + a*(2000 - 10000) + b*0]_+ = 1e-4 - 4e-9*8000.
  EXPECT_NEAR(agent.price(), 1e-4 - 4e-9 * 8000, 1e-12);
}

TEST(DgdLinkAgentTest, PriceNeverNegative) {
  LinkRig rig;
  DgdConfig config;
  config.initial_price = 1e-9;
  DgdLinkAgent agent(rig.sim, *rig.link, config);
  rig.sim.run_until(sim::micros(16 * 5));  // idle: gradient strongly negative
  EXPECT_GE(agent.price(), 0.0);
  EXPECT_NEAR(agent.price(), 0.0, 1e-12);
}

TEST(RcpLinkAgentTest, UnderutilizedLinkRaisesAdvertisement) {
  LinkRig rig;
  RcpConfig config;
  RcpLinkAgent agent(rig.sim, *rig.link, config);
  const double initial = agent.fair_share_bps();
  rig.sim.run_until(sim::micros(16 * 10));  // no traffic at all
  EXPECT_GT(agent.fair_share_bps(), initial);
}

TEST(RcpLinkAgentTest, AdvertisementCanExceedCapacity) {
  LinkRig rig(10e9);
  RcpConfig config;
  RcpLinkAgent agent(rig.sim, *rig.link, config);
  rig.sim.run_until(sim::millis(5));  // idle long enough to climb past C
  // Eq. 16's harmonic composition requires R > C at equilibrium for
  // multi-hop paths; the agent must not clamp at link capacity.
  EXPECT_GT(agent.fair_share_bps(), 10e9);
}

TEST(RcpLinkAgentTest, AccumulatesRToTheMinusAlpha) {
  LinkRig rig;
  RcpConfig config;
  config.alpha = 1.0;
  RcpLinkAgent agent(rig.sim, *rig.link, config);
  net::Packet p = rig.data(0.0);
  agent.on_dequeue(p);
  const double r_units = agent.fair_share_bps() / 1e6;
  EXPECT_NEAR(p.path_feedback, 1.0 / r_units, 1e-12);
}

}  // namespace
}  // namespace numfabric::transport
