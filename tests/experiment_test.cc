// Experiment-driver tests on miniature configurations (the benches run the
// real scales; here we verify the drivers' mechanics end to end).
#include <gtest/gtest.h>

#include "exp/bwfunc_experiment.h"
#include "exp/common.h"
#include "exp/config.h"
#include "exp/dynamic_workload.h"
#include "exp/semi_dynamic.h"
#include "exp/traffic_experiment.h"
#include "net/routing.h"

namespace numfabric::exp {
namespace {

TEST(CommonTest, LinkIndexerMapsAllLinks) {
  sim::Simulator sim;
  net::Topology topo(sim);
  const net::LeafSpine ls = net::build_leaf_spine(
      topo, {.hosts_per_leaf = 2, .num_leaves = 2, .num_spines = 2},
      net::drop_tail_factory());
  const LinkIndexer indexer(topo);
  EXPECT_EQ(indexer.capacities().size(), topo.links().size());
  for (const auto& link : topo.links()) {
    const int index = indexer.index(link.get());
    ASSERT_GE(index, 0);
    EXPECT_DOUBLE_EQ(indexer.capacities()[static_cast<std::size_t>(index)],
                     link->rate_bps() / 1e6);
  }
  const auto paths = net::all_shortest_paths(topo, ls.hosts[0], ls.hosts[2]);
  const auto indices = indexer.path_indices(paths[0]);
  EXPECT_EQ(indices.size(), 4u);
}

TEST(CommonTest, ScaleFromEnvDefaultsQuick) {
  const Scale scale = quick_scale();
  EXPECT_FALSE(scale.full);
  const Scale full = full_scale();
  EXPECT_TRUE(full.full);
  EXPECT_EQ(full.num_paths, 1000);
  EXPECT_EQ(full.num_events, 100);
}

TEST(CommonTest, WindowRateComputesGoodput) {
  EXPECT_DOUBLE_EQ(window_rate_bps(0, 1250, sim::micros(1)), 10e9);
  EXPECT_THROW(window_rate_bps(0, 1, 0), std::invalid_argument);
}

TEST(ConfigTest, Table2RowsMatchPaperDefaults) {
  const auto rows = table2_rows();
  ASSERT_EQ(rows.size(), 11u);
  const std::string text = table2_text();
  EXPECT_NE(text.find("ewmaTime"), std::string::npos);
  EXPECT_NE(text.find("20 us"), std::string::npos);   // ewmaTime
  EXPECT_NE(text.find("30 us"), std::string::npos);   // price update interval
  EXPECT_NE(text.find("16 us"), std::string::npos);   // DGD/RCP intervals
  EXPECT_NE(text.find("4e-09"), std::string::npos);   // DGD a
  // RCP* gains: re-tuned to the classically stable values (Table 2's 3.6 /
  // 1.8 limit-cycle on this substrate; see EXPERIMENTS.md).
  EXPECT_NE(text.find("0.4"), std::string::npos);     // RCP a
  EXPECT_NE(text.find("0.226"), std::string::npos);   // RCP b
}

TEST(DynamicWorkloadTest, BdpBinsPartitionSizes) {
  const double bdp = 20'000;
  EXPECT_EQ(bdp_bin(1, bdp), 0);
  EXPECT_EQ(bdp_bin(5 * bdp, bdp), 0);
  EXPECT_EQ(bdp_bin(6 * bdp, bdp), 1);
  EXPECT_EQ(bdp_bin(50 * bdp, bdp), 2);
  EXPECT_EQ(bdp_bin(500 * bdp, bdp), 3);
  EXPECT_EQ(bdp_bin(5000 * bdp, bdp), 4);
  EXPECT_EQ(bdp_bin(20'000 * bdp, bdp), -1);
}

TEST(SemiDynamicTest, MiniScenarioMeasuresEvents) {
  SemiDynamicOptions options;
  options.scheme = transport::Scheme::kNumFabric;
  options.topology.hosts_per_leaf = 4;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 2;
  options.num_paths = 24;
  options.initial_active = 10;
  options.flows_per_event = 4;
  options.num_events = 2;
  options.min_active = 6;
  options.max_active = 14;
  options.convergence.timeout = sim::millis(20);
  options.seed = 3;
  const SemiDynamicResult result = run_semi_dynamic(options);
  EXPECT_EQ(result.events_measured, 2);
  EXPECT_GE(result.events_converged, 1);
  for (double time_us : result.convergence_times_us) {
    EXPECT_GT(time_us, 0);
    EXPECT_LT(time_us, 20'000);
  }
  EXPECT_EQ(result.total_queue_drops, 0u);
}

TEST(SemiDynamicTest, TraceModeRecordsSeries) {
  SemiDynamicOptions options;
  options.scheme = transport::Scheme::kDctcp;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 1;
  options.num_paths = 8;
  options.initial_active = 4;
  options.flows_per_event = 2;
  options.num_events = 2;
  options.min_active = 2;
  options.max_active = 6;
  options.record_trace = true;
  options.fixed_event_interval = sim::millis(2);
  options.use_maxmin_targets = true;
  options.seed = 4;
  const SemiDynamicResult result = run_semi_dynamic(options);
  EXPECT_GT(result.trace.size(), 100u);
  EXPECT_EQ(result.expected_steps.size(), 3u);  // initial + 2 events
  // Some trace samples show real throughput.
  double max_rate = 0;
  for (const auto& [t, rate] : result.trace) max_rate = std::max(max_rate, rate);
  EXPECT_GT(max_rate, 1e9);
}

TEST(TrafficExperimentTest, ParsePatternRoundTrips) {
  for (const TrafficPattern pattern :
       {TrafficPattern::kIncast, TrafficPattern::kPermutation,
        TrafficPattern::kAllToAll}) {
    EXPECT_EQ(parse_traffic_pattern(traffic_pattern_name(pattern)), pattern);
  }
  EXPECT_EQ(parse_traffic_pattern("shuffle"), TrafficPattern::kAllToAll);
  EXPECT_THROW(parse_traffic_pattern("ring"), std::invalid_argument);
}

TEST(TrafficExperimentTest, PermutationRateModeSaturatesNics) {
  TrafficOptions options;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 2;
  options.pattern = TrafficPattern::kPermutation;
  options.warmup = sim::millis(2);
  options.measure = sim::millis(3);
  const TrafficResult result = run_traffic_experiment(options);
  EXPECT_EQ(result.flow_count, 2);
  ASSERT_EQ(result.flow_rates_bps.size(), 2u);
  // Permutation traffic on a non-blocking fabric should approach NIC line
  // rate for every flow, with near-perfect fairness.
  EXPECT_GT(result.total_goodput_bps / result.optimal_bps, 0.9);
  EXPECT_GT(result.jain_index, 0.99);
  EXPECT_EQ(result.queue_drops, 0u);
}

TEST(TrafficExperimentTest, IncastFctModeCompletesBurst) {
  TrafficOptions options;
  options.topology.hosts_per_leaf = 2;
  options.topology.num_leaves = 2;
  options.topology.num_spines = 1;
  options.pattern = TrafficPattern::kIncast;
  options.incast_fanin = 3;
  options.flow_size_bytes = 32'000;
  options.horizon = sim::millis(100);
  const TrafficResult result = run_traffic_experiment(options);
  EXPECT_EQ(result.flow_count, 3);
  EXPECT_EQ(result.completed, 3);
  EXPECT_EQ(result.incomplete, 0);
  ASSERT_EQ(result.fct_us.size(), 3u);
  // The receiver NIC serializes 3 x 32 KB: no flow can finish faster than
  // its own bytes at line rate, and the burst takes at least the aggregate.
  for (const double fct : result.fct_us) {
    EXPECT_GT(fct, 32'000 * 8.0 / 10e9 * 1e6);
    EXPECT_LT(fct, 100'000.0);
  }
}

TEST(BwFuncSweepTest, SinglePointMatchesExpectation) {
  BwFuncSweepOptions options;
  options.capacities_gbps = {25};
  options.warmup = sim::millis(6);
  options.measure = sim::millis(6);
  const BwFuncSweepResult result = run_bwfunc_sweep(options);
  ASSERT_EQ(result.rows.size(), 1u);
  const auto& row = result.rows[0];
  EXPECT_NEAR(row.expected1_gbps, 15.0, 0.1);
  EXPECT_NEAR(row.expected2_gbps, 10.0, 0.1);
  EXPECT_NEAR(row.flow1_gbps, row.expected1_gbps, 2.0);
  EXPECT_NEAR(row.flow2_gbps, row.expected2_gbps, 2.0);
}

}  // namespace
}  // namespace numfabric::exp
