// Golden determinism guard for the simulation substrate.
//
// Runs fig4a (the `convergence` scenario) and one incast point at fixed
// seeds and asserts (a) the merged sweep CSV is byte-identical whether run
// on 1 worker or 4, and (b) both outputs hash to checked-in golden values.
// The hashes cover scenario tables AND the substrate `perf` counters, so any
// change to event ordering, packet forwarding, queue scheduling or counter
// accounting — the things the allocation-free substrate refactor must
// preserve — trips this test.
//
// If a change intentionally alters simulation behavior, rerun the test: the
// failure message prints the new hash to paste into the constants below.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "app/metrics.h"
#include "app/options.h"
#include "app/perf.h"
#include "app/run_plan.h"
#include "app/scenario.h"
#include "app/sweep.h"

namespace numfabric::app {
namespace {

// Checked-in golden hashes (FNV-1a 64 of the normalized CSV).
//
// All three were re-baselined by the flow-fluid engine PR: the perf table
// gained flowsim_epochs / flowsim_resolves rows (zero for these packet-level
// runs).  Every other byte of the normalized CSVs was verified identical to
// the previous baseline — packet physics is untouched; only the counter
// schema grew.
constexpr const char* kConvergenceGolden = "7316ce15d5fe22da";
constexpr const char* kIncastSweepGolden = "23385e309a77ead";
constexpr const char* kOversubSweepGolden = "70bc326b7db6685";
// fidelity=flow websearch sweep (see FlowFidelitySweepIsJobCountInvariant).
constexpr const char* kFlowSweepGolden = "4719adfa9f05a47";

std::string fnv1a_hex(const std::string& text) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  std::ostringstream out;
  out << std::hex << hash;
  return out.str();
}

// Blanks the wall_ms column of sweep_runs rows — the only nondeterministic
// bytes in merged sweep output.
std::string normalize(const MetricWriter& metrics) {
  std::ostringstream raw;
  metrics.write_csv(raw);
  std::istringstream in(raw.str());
  std::ostringstream cleaned;
  std::string line;
  bool in_sweep_runs = false;
  while (std::getline(in, line)) {
    if (line.rfind("# table,", 0) == 0) {
      in_sweep_runs = line == "# table,sweep_runs";
    } else if (in_sweep_runs && line.find("wall_ms") == std::string::npos) {
      line = line.substr(0, line.rfind(',') + 1) + "<wall>";
    }
    cleaned << line << "\n";
  }
  return cleaned.str();
}

TEST(GoldenDeterminismTest, Fig4aConvergenceMatchesGoldenHash) {
  register_builtin_scenarios();
  const Scenario* scenario = ScenarioRegistry::global().find("convergence");
  ASSERT_NE(scenario, nullptr);
  Options options;  // declared defaults, fixed seed
  MetricWriter metrics;
  RunContext ctx{options, transport::Scheme::kNumFabric, metrics, false};
  const PerfSnapshot snapshot;
  scenario->run(ctx);
  record_perf(metrics, snapshot.delta());
  const std::string csv = normalize(metrics);
  EXPECT_EQ(fnv1a_hex(csv), kConvergenceGolden)
      << "fig4a output changed. If intentional, update kConvergenceGolden.\n"
      << "--- normalized CSV (first 2000 chars) ---\n"
      << csv.substr(0, 2000);
}

// The same run with --solver-threads=4 / --control-threads=4: the parallel
// NUM oracle (wave schedule) and the chunked control-plane sweep must hash
// to the SAME golden as the serial reference — thread count changes wall
// time, never bytes.
TEST(GoldenDeterminismTest, Fig4aWithFourSolverThreadsMatchesSameGolden) {
  register_builtin_scenarios();
  const Scenario* scenario = ScenarioRegistry::global().find("convergence");
  ASSERT_NE(scenario, nullptr);
  Options options;
  MetricWriter metrics;
  RunContext ctx{options, transport::Scheme::kNumFabric, metrics, false,
                 /*solver_threads=*/4, /*control_threads=*/4};
  const PerfSnapshot snapshot;
  scenario->run(ctx);
  record_perf(metrics, snapshot.delta());
  const std::string csv = normalize(metrics);
  EXPECT_EQ(fnv1a_hex(csv), kConvergenceGolden)
      << "solver_threads=4 output differs from the serial golden — the "
         "parallel solver or control plane is not bit-identical.\n"
      << "--- normalized CSV (first 2000 chars) ---\n"
      << csv.substr(0, 2000);
}

TEST(GoldenDeterminismTest, IncastSweepIsJobCountInvariantAndMatchesGolden) {
  register_builtin_scenarios();
  const Scenario* scenario = ScenarioRegistry::global().find("incast");
  ASSERT_NE(scenario, nullptr);

  const auto run_with_jobs = [scenario](int jobs) {
    SweepRequest request;
    request.scenario = scenario;
    Options options;
    options.set("hosts_per_leaf", "2");
    options.set("leaves", "2");
    options.set("spines", "1");
    options.set("fanin", "3");
    options.set("flow_kb", "32");
    request.base_options = options;
    request.plan = RunPlan::expand({parse_sweep_spec("seed=1,2")});
    request.jobs = jobs;
    MetricWriter merged;
    const SweepResult result = run_sweep(request, merged);
    EXPECT_EQ(result.failed, 0) << "golden sweep runs must succeed";
    return normalize(merged);
  };

  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel)
      << "merged sweep output depends on the worker count";
  EXPECT_EQ(fnv1a_hex(serial), kIncastSweepGolden)
      << "incast sweep output changed. If intentional, update "
         "kIncastSweepGolden.\n--- normalized CSV (first 2000 chars) ---\n"
      << serial.substr(0, 2000);
}

// One oversubscription sweep point of the contended-fabric family: guards
// the parameterized builder (oversub re-rating, core-link bookkeeping), the
// new experiment's measurement windows and price sampling, and the sweep
// engine's jobs-invariance on the new table shapes.
TEST(GoldenDeterminismTest, OversubSweepIsJobCountInvariantAndMatchesGolden) {
  register_builtin_scenarios();
  const Scenario* scenario = ScenarioRegistry::global().find("oversub-fabric");
  ASSERT_NE(scenario, nullptr);

  const auto run_with_jobs = [scenario](int jobs) {
    SweepRequest request;
    request.scenario = scenario;
    Options options;
    options.set("topology", "2x2x2");
    options.set("shuffle_kb", "20");
    options.set("warmup_ms", "1");
    options.set("measure_ms", "2");
    options.set("horizon_ms", "100");
    request.base_options = options;
    request.plan = RunPlan::expand({parse_sweep_spec("oversub=1,4")});
    request.jobs = jobs;
    MetricWriter merged;
    const SweepResult result = run_sweep(request, merged);
    EXPECT_EQ(result.failed, 0) << "golden sweep runs must succeed";
    return normalize(merged);
  };

  const std::string serial = run_with_jobs(1);
  const std::string parallel = run_with_jobs(4);
  EXPECT_EQ(serial, parallel)
      << "merged sweep output depends on the worker count";
  EXPECT_EQ(fnv1a_hex(serial), kOversubSweepGolden)
      << "oversub-fabric sweep output changed. If intentional, update "
         "kOversubSweepGolden.\n--- normalized CSV (first 2000 chars) ---\n"
      << serial.substr(0, 2000);
}

// A fidelity=flow sweep must be as deterministic as the packet-level ones:
// the merged CSV is byte-identical across sweep worker counts AND solver
// thread counts (the flow engine re-solves through the wave-deterministic
// parallel NUM solver), and hashes to a checked-in golden.
TEST(GoldenDeterminismTest, FlowFidelitySweepIsJobCountInvariant) {
  register_builtin_scenarios();
  const Scenario* scenario = ScenarioRegistry::global().find("websearch-fct");
  ASSERT_NE(scenario, nullptr);

  const auto run_with = [scenario](int jobs, int solver_threads) {
    SweepRequest request;
    request.scenario = scenario;
    Options options;
    options.set("hosts_per_leaf", "2");
    options.set("leaves", "2");
    options.set("spines", "1");
    options.set("flows", "60");
    options.set("horizon_ms", "300");
    options.set("fidelity", "flow");
    options.set("resolve_us", "50");
    // Golden-hashed: tier-1 active-row compaction must be bitwise invisible,
    // which only holds with the incremental (tier-2) path off.
    options.set("incremental", "off");
    request.base_options = options;
    request.plan = RunPlan::expand({parse_sweep_spec("loads=0.3,0.5")});
    request.jobs = jobs;
    request.solver_threads = solver_threads;
    MetricWriter merged;
    const SweepResult result = run_sweep(request, merged);
    EXPECT_EQ(result.failed, 0) << "golden sweep runs must succeed";
    return normalize(merged);
  };

  const std::string serial = run_with(1, 1);
  EXPECT_EQ(serial, run_with(4, 1))
      << "merged flow-fidelity sweep output depends on the worker count";
  EXPECT_EQ(serial, run_with(1, 4))
      << "flow-fidelity output depends on the solver thread count";
  EXPECT_EQ(fnv1a_hex(serial), kFlowSweepGolden)
      << "flow-fidelity sweep output changed. If intentional, update "
         "kFlowSweepGolden.\n--- normalized CSV (first 2000 chars) ---\n"
      << serial.substr(0, 2000);
}

}  // namespace
}  // namespace numfabric::app
