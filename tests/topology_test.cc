// Topology builders and path enumeration.
#include <gtest/gtest.h>

#include "net/routing.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace numfabric::net {
namespace {

TEST(TopologyTest, ConnectCreatesTwinLinks) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  auto [fwd, back] = topo.connect(a, b, 10e9, sim::micros(1), drop_tail_factory());
  EXPECT_EQ(fwd->twin(), back);
  EXPECT_EQ(back->twin(), fwd);
  EXPECT_EQ(fwd->dst(), b);
  EXPECT_EQ(back->dst(), a);
  EXPECT_EQ(topo.outgoing(a).size(), 1u);
  EXPECT_EQ(topo.outgoing(b).size(), 1u);
}

TEST(TopologyTest, LeafSpineShapeAndEcmpPaths) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpineOptions options;
  options.hosts_per_leaf = 4;
  options.num_leaves = 3;
  options.num_spines = 2;
  const LeafSpine ls = build_leaf_spine(topo, options, drop_tail_factory());
  EXPECT_EQ(ls.hosts.size(), 12u);
  EXPECT_EQ(ls.leaves.size(), 3u);
  EXPECT_EQ(ls.spines.size(), 2u);
  // Links: 12 host links + 3*2 leaf-spine cables, both directions.
  EXPECT_EQ(topo.links().size(), 2u * (12 + 6));

  // Cross-leaf: one path per spine.
  const auto cross = all_shortest_paths(topo, ls.hosts[0], ls.hosts[4]);
  EXPECT_EQ(cross.size(), 2u);
  for (const Path& path : cross) EXPECT_EQ(path.links.size(), 4u);

  // Same-leaf: a single 2-hop path through the shared leaf.
  const auto local = all_shortest_paths(topo, ls.hosts[0], ls.hosts[1]);
  ASSERT_EQ(local.size(), 1u);
  EXPECT_EQ(local[0].links.size(), 2u);
}

TEST(TopologyTest, ReversePathUsesTwins) {
  sim::Simulator sim;
  Topology topo(sim);
  const LeafSpine ls = build_leaf_spine(
      topo, {.hosts_per_leaf = 2, .num_leaves = 2, .num_spines = 2},
      drop_tail_factory());
  const auto paths = all_shortest_paths(topo, ls.hosts[0], ls.hosts[2]);
  ASSERT_FALSE(paths.empty());
  const Path reverse = reverse_path(paths[0]);
  ASSERT_EQ(reverse.links.size(), paths[0].links.size());
  for (std::size_t i = 0; i < reverse.links.size(); ++i) {
    EXPECT_EQ(reverse.links[i],
              paths[0].links[paths[0].links.size() - 1 - i]->twin());
  }
}

TEST(TopologyTest, EcmpPickDeterministicAndCovering) {
  sim::Simulator sim;
  Topology topo(sim);
  const LeafSpine ls = build_leaf_spine(
      topo, {.hosts_per_leaf = 2, .num_leaves = 2, .num_spines = 4},
      drop_tail_factory());
  const auto paths = all_shortest_paths(topo, ls.hosts[0], ls.hosts[2]);
  ASSERT_EQ(paths.size(), 4u);
  // Deterministic...
  EXPECT_EQ(&ecmp_pick(paths, 17), &ecmp_pick(paths, 17));
  // ...and spreading across paths.
  std::set<const Path*> chosen;
  for (FlowId flow = 0; flow < 64; ++flow) chosen.insert(&ecmp_pick(paths, flow));
  EXPECT_EQ(chosen.size(), 4u);
}

TEST(TopologyTest, DumbbellSharesOneBottleneck) {
  sim::Simulator sim;
  Topology topo(sim);
  const Dumbbell db =
      build_dumbbell(topo, 3, 40e9, 10e9, sim::micros(1), drop_tail_factory());
  for (int i = 0; i < 3; ++i) {
    const auto paths = all_shortest_paths(topo, db.senders[static_cast<std::size_t>(i)],
                                          db.receivers[static_cast<std::size_t>(i)]);
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].links.size(), 3u);
    EXPECT_EQ(paths[0].links[1], db.bottleneck);
  }
}

TEST(TopologyTest, ParkingLotChain) {
  sim::Simulator sim;
  Topology topo(sim);
  const ParkingLot lot =
      build_parking_lot(topo, 3, 10e9, sim::micros(1), drop_tail_factory());
  ASSERT_EQ(lot.backbone.size(), 3u);
  // Long path (host 0 -> host 3) crosses all backbone links.
  const auto long_paths = all_shortest_paths(topo, lot.hosts[0], lot.hosts[3]);
  ASSERT_EQ(long_paths.size(), 1u);
  EXPECT_EQ(long_paths[0].links.size(), 5u);  // uplink + 3 backbone + downlink
}

TEST(TopologyTest, Fig10ThreeParallelLinks) {
  sim::Simulator sim;
  Topology topo(sim);
  const Fig10Topology fig = build_fig10(topo, 5e9, sim::micros(1),
                                        drop_tail_factory());
  EXPECT_DOUBLE_EQ(fig.top->rate_bps(), 5e9);
  EXPECT_DOUBLE_EQ(fig.middle->rate_bps(), 5e9);
  EXPECT_DOUBLE_EQ(fig.bottom->rate_bps(), 3e9);
  // Three equal-hop paths src1 -> dst1 via top/middle/bottom.
  const auto paths = all_shortest_paths(topo, fig.src1, fig.dst1);
  EXPECT_EQ(paths.size(), 3u);
}

TEST(TopologyTest, UnreachableAndDegenerateQueries) {
  sim::Simulator sim;
  Topology topo(sim);
  Host* a = topo.add_host("a");
  Host* b = topo.add_host("b");
  EXPECT_TRUE(all_shortest_paths(topo, a, b).empty());
  EXPECT_THROW(all_shortest_paths(topo, a, a), std::invalid_argument);
  EXPECT_THROW(ecmp_pick({}, 1), std::invalid_argument);
}

TEST(TopologyTest, CrossLeafRttMatchesPaper) {
  sim::Simulator sim;
  Topology topo(sim);
  // The paper's topology: 2 us/hop gives a 16 us propagation RTT; the
  // builder adds serialization on top.
  const LeafSpine ls = build_leaf_spine(topo, LeafSpineOptions{}, drop_tail_factory());
  EXPECT_GE(ls.cross_leaf_rtt, sim::micros(16));
  EXPECT_LE(ls.cross_leaf_rtt, sim::micros(25));
}

TEST(TopologyTest, CrossLeafRttChargesEachHopAtItsOwnRate) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpineOptions options;  // 10G edge, 40G core, 2 us per hop
  const LeafSpine ls = build_leaf_spine(topo, options, drop_tail_factory());
  // Exact per-hop accounting: 2 edge hops at 10G + 2 core hops at 40G each
  // way, data + ACK.  The old edge-rate-everywhere formula gave 20928 ns.
  const auto hop = [](sim::TimeNs delay, std::uint32_t bytes, double rate) {
    return delay + sim::transmission_time(bytes, rate);
  };
  const sim::TimeNs expected =
      2 * (hop(sim::micros(2), kDataPacketBytes, 10e9) +
           hop(sim::micros(2), kAckPacketBytes, 10e9)) +
      2 * (hop(sim::micros(2), kDataPacketBytes, 40e9) +
           hop(sim::micros(2), kAckPacketBytes, 40e9));
  EXPECT_EQ(ls.cross_leaf_rtt, expected);
  EXPECT_EQ(ls.cross_leaf_rtt, 19080);
}

TEST(TopologyTest, OversubscriptionModel) {
  LeafSpineOptions options;
  options.hosts_per_leaf = 8;
  options.host_rate_bps = 10e9;
  options.num_spines = 2;
  options.spine_rate_bps = 40e9;
  EXPECT_DOUBLE_EQ(options.oversubscription(), 1.0);  // 80G demand, 80G core

  const LeafSpineOptions contended = options.with_oversubscription(4.0);
  EXPECT_DOUBLE_EQ(contended.oversubscription(), 4.0);
  EXPECT_DOUBLE_EQ(contended.spine_rate_bps, 10e9);
  // Host side untouched.
  EXPECT_DOUBLE_EQ(contended.host_rate_bps, 10e9);
  EXPECT_EQ(contended.num_spines, 2);
  EXPECT_THROW(options.with_oversubscription(0), std::invalid_argument);

  // The builder applies the derived rate to every core link, and path
  // diversity is unchanged by the re-rating.
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpineOptions shape = contended;
  shape.num_leaves = 3;
  shape.hosts_per_leaf = 2;
  const LeafSpine ls = build_leaf_spine(topo, shape, drop_tail_factory());
  ASSERT_EQ(ls.core_links.size(), 2u * 3 * 2);
  for (const Link* link : ls.core_links) {
    EXPECT_DOUBLE_EQ(link->rate_bps(), 10e9);
  }
  EXPECT_EQ(all_shortest_paths(topo, ls.hosts[0], ls.hosts[2]).size(), 2u);
}

TEST(TopologyTest, AsymmetricCoreDelayAndPerTierBuffers) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpineOptions options;
  options.hosts_per_leaf = 2;
  options.num_leaves = 2;
  options.num_spines = 2;
  options.core_link_delay = sim::micros(5);
  const LeafSpine ls = build_leaf_spine(topo, options, drop_tail_factory(1000),
                                        drop_tail_factory(9000));
  // Core links get the core factory's deeper buffers and the longer delay;
  // edge links keep the edge factory's.
  for (const Link* link : ls.core_links) {
    EXPECT_EQ(link->queue().capacity_bytes(), 9000u);
    EXPECT_EQ(link->delay(), sim::micros(5));
  }
  int edge_links = 0;
  for (const auto& link : topo.links()) {
    if (link->queue().capacity_bytes() == 1000u) {
      EXPECT_EQ(link->delay(), sim::micros(2));
      ++edge_links;
    }
  }
  EXPECT_EQ(edge_links, 2 * 4);  // one cable per host, both directions

  // RTT picks up the asymmetric core delay exactly.
  const auto hop = [](sim::TimeNs delay, std::uint32_t bytes, double rate) {
    return delay + sim::transmission_time(bytes, rate);
  };
  EXPECT_EQ(ls.cross_leaf_rtt,
            2 * (hop(sim::micros(2), kDataPacketBytes, 10e9) +
                 hop(sim::micros(2), kAckPacketBytes, 10e9)) +
                2 * (hop(sim::micros(5), kDataPacketBytes, 40e9) +
                     hop(sim::micros(5), kAckPacketBytes, 40e9)));
}

TEST(TopologyTest, BuilderRejectsDegenerateShapes) {
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpineOptions zero_spines;
  zero_spines.num_spines = 0;
  EXPECT_THROW(build_leaf_spine(topo, zero_spines, drop_tail_factory()),
               std::invalid_argument);
  LeafSpineOptions bad_rate;
  bad_rate.spine_rate_bps = 0;
  EXPECT_THROW(build_leaf_spine(topo, bad_rate, drop_tail_factory()),
               std::invalid_argument);
}

TEST(TopologyTest, WideOversubscribedFabricKeepsFullPathDiversity) {
  // 6 spines at an 8:1 oversubscription: ECMP must still see all 6 paths
  // (the old silent 64-path cap is gone; counts come from the DP counter).
  sim::Simulator sim;
  Topology topo(sim);
  LeafSpineOptions options;
  options.hosts_per_leaf = 12;
  options.num_leaves = 2;
  options.num_spines = 6;
  const LeafSpineOptions contended = options.with_oversubscription(8.0);
  const LeafSpine ls = build_leaf_spine(topo, contended, drop_tail_factory());
  EXPECT_DOUBLE_EQ(contended.oversubscription(), 8.0);
  const auto paths = all_shortest_paths(topo, ls.hosts[0], ls.hosts[12]);
  EXPECT_EQ(paths.size(), 6u);
  EXPECT_EQ(count_shortest_paths(topo, ls.hosts[0], ls.hosts[12]), 6u);
  // Same-leaf pairs bypass the contended core entirely.
  EXPECT_EQ(all_shortest_paths(topo, ls.hosts[0], ls.hosts[1]).size(), 1u);
}

}  // namespace
}  // namespace numfabric::net
