// Tests for the sweep subsystem: spec parsing (list + range), RunPlan
// cross-product expansion, the worker pool, merged-table layout, and the
// thread-count independence of merged output.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/driver.h"
#include "app/metrics.h"
#include "app/run_plan.h"
#include "app/sweep.h"
#include "app/worker_pool.h"

namespace numfabric::app {
namespace {

// --- sweep spec parsing ----------------------------------------------------

TEST(SweepSpecTest, ParsesCommaList) {
  const SweepSpec spec = parse_sweep_spec("load=0.2, 0.4,0.8");
  EXPECT_EQ(spec.key, "load");
  EXPECT_EQ(spec.values, (std::vector<std::string>{"0.2", "0.4", "0.8"}));
}

TEST(SweepSpecTest, ParsesTextValues) {
  const SweepSpec spec = parse_sweep_spec("workload=websearch,datamining");
  EXPECT_EQ(spec.values,
            (std::vector<std::string>{"websearch", "datamining"}));
}

TEST(SweepSpecTest, ExpandsInclusiveRange) {
  const SweepSpec spec = parse_sweep_spec("load=0.2:0.8:0.2");
  EXPECT_EQ(spec.values,
            (std::vector<std::string>{"0.2", "0.4", "0.6", "0.8"}));
  // Integer ranges print as integers.
  EXPECT_EQ(parse_sweep_spec("n=1:5:2").values,
            (std::vector<std::string>{"1", "3", "5"}));
  // Endpoint not on the grid: stop at the last point <= hi.
  EXPECT_EQ(parse_sweep_spec("n=1:6:2").values,
            (std::vector<std::string>{"1", "3", "5"}));
  // Degenerate single-point range.
  EXPECT_EQ(parse_sweep_spec("n=3:3:1").values,
            (std::vector<std::string>{"3"}));
}

TEST(SweepSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_sweep_spec("noequals"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("=0.2"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("k="), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("k=,,"), std::invalid_argument);
  // lo:hi without a step, zero/negative steps, empty ranges.
  EXPECT_THROW(parse_sweep_spec("k=1:2"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("k=1:2:0"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("k=1:2:-1"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec("k=2:1:1"), std::invalid_argument);
}

TEST(SweepSpecTest, TaggedValuesKeepTheirCommasAndColons) {
  // Only an all-numeric ':' value is a range; a text-bearing one is a list
  // item, and numeric items after it extend it (`jellyfish:S,r,H` sweeps as
  // one token next to plain shapes).
  EXPECT_EQ(parse_sweep_spec("topology=jellyfish:8,3,16").values,
            (std::vector<std::string>{"jellyfish:8,3,16"}));
  EXPECT_EQ(
      parse_sweep_spec("topology=4x2x2, jellyfish:8,3,16, 16x8x4").values,
      (std::vector<std::string>{"4x2x2", "jellyfish:8,3,16", "16x8x4"}));
  EXPECT_EQ(
      parse_sweep_spec("topology=jellyfish:8,3,16,jellyfish:12,4,24").values,
      (std::vector<std::string>{"jellyfish:8,3,16", "jellyfish:12,4,24"}));
  EXPECT_EQ(parse_sweep_spec("k=a:b:c").values,
            (std::vector<std::string>{"a:b:c"}));
}

// --- plan expansion --------------------------------------------------------

TEST(RunPlanTest, ExpandsCrossProductInNestedLoopOrder) {
  const RunPlan plan = RunPlan::expand(
      {parse_sweep_spec("a=1,2"), parse_sweep_spec("b=x,y,z")});
  EXPECT_EQ(plan.keys(), (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(plan.size(), 6u);
  // First spec varies slowest.
  const std::vector<std::pair<std::string, std::string>> expected[] = {
      {{"a", "1"}, {"b", "x"}}, {{"a", "1"}, {"b", "y"}},
      {{"a", "1"}, {"b", "z"}}, {{"a", "2"}, {"b", "x"}},
      {{"a", "2"}, {"b", "y"}}, {{"a", "2"}, {"b", "z"}},
  };
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.runs()[i].index, static_cast<int>(i));
    EXPECT_EQ(plan.runs()[i].assignments, expected[i]) << "run " << i;
  }
}

TEST(RunPlanTest, SingleSpecAndRejectsDuplicates) {
  const RunPlan plan = RunPlan::expand({parse_sweep_spec("load=0.2,0.4")});
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_TRUE(RunPlan::expand({}).empty());
  EXPECT_THROW(
      RunPlan::expand({parse_sweep_spec("k=1"), parse_sweep_spec("k=2")}),
      std::invalid_argument);
}

// --- worker pool -----------------------------------------------------------

TEST(WorkerPoolTest, RunsEveryTaskExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    WorkerPool pool(jobs);
    std::vector<std::atomic<int>> hits(100);
    pool.parallel_for(100, [&](int i) { ++hits[static_cast<std::size_t>(i)]; });
    for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1) << "jobs=" << jobs;
  }
}

TEST(WorkerPoolTest, ReusableAcrossBatchesAndMoreJobsThanTasks) {
  WorkerPool pool(8);
  for (int batch = 0; batch < 3; ++batch) {
    std::atomic<int> sum{0};
    pool.parallel_for(3, [&](int i) { sum += i + 1; });
    EXPECT_EQ(sum.load(), 6);
  }
  pool.parallel_for(0, [](int) { FAIL() << "no tasks expected"; });
}

TEST(WorkerPoolTest, ResolveJobs) {
  EXPECT_EQ(WorkerPool::resolve_jobs(3), 3);
  EXPECT_GE(WorkerPool::resolve_jobs(0), 1);  // auto = hardware concurrency
}

// --- sweep engine ----------------------------------------------------------

// A synthetic scenario: deterministic per-point arithmetic, no simulator, so
// engine behavior is testable in microseconds.
Scenario square_scenario() {
  Scenario scenario;
  scenario.name = "square";
  scenario.description = "emits x, x^2 and a scalar";
  scenario.params = {{"x", "1", "the swept input"},
                     {"k", "10", "a fixed offset"},
                     {"seed", "5", "unused rng seed"}};
  scenario.run = [](RunContext& ctx) {
    const double x = ctx.options.get_double("x", 1);
    const double k = ctx.options.get_double("k", 10);
    MetricTable& table = ctx.metrics.table("points", {"x_plus_k", "x_squared"});
    table.add_row({x + k, x * x});
    ctx.metrics.scalar("seed_used", ctx.options.get_int("seed", 5));
  };
  return scenario;
}

std::string csv_without_wall_times(const MetricWriter& metrics) {
  std::ostringstream out;
  metrics.write_csv(out);
  // Blank out the wall_ms column (last cell of sweep_runs data rows) — the
  // only nondeterministic bytes in merged output.
  std::istringstream in(out.str());
  std::ostringstream cleaned;
  std::string line;
  bool in_sweep_runs = false;
  while (std::getline(in, line)) {
    if (line.rfind("# table,", 0) == 0) {
      in_sweep_runs = line == "# table,sweep_runs";
    } else if (in_sweep_runs && line.find("wall_ms") == std::string::npos) {
      line = line.substr(0, line.rfind(',') + 1) + "<wall>";
    }
    cleaned << line << "\n";
  }
  return cleaned.str();
}

const MetricTable* find_table(const MetricWriter& metrics,
                              const std::string& name) {
  for (const auto& table : metrics.tables()) {
    if (table->name() == name) return table.get();
  }
  return nullptr;
}

SweepRequest square_request(const Scenario& scenario, int jobs) {
  SweepRequest request;
  request.scenario = &scenario;
  request.plan = RunPlan::expand({parse_sweep_spec("x=1:4:1")});
  request.jobs = jobs;
  return request;
}

TEST(SweepTest, MergedTablesPrependSweptKeysInOrder) {
  const Scenario scenario = square_scenario();
  SweepRequest request;
  request.scenario = &scenario;
  request.plan =
      RunPlan::expand({parse_sweep_spec("x=1,2"), parse_sweep_spec("k=0,100")});
  request.jobs = 1;
  MetricWriter merged;
  const SweepResult result = run_sweep(request, merged);
  EXPECT_EQ(result.failed, 0);
  ASSERT_EQ(result.statuses.size(), 4u);
  for (const SweepRunStatus& status : result.statuses) {
    EXPECT_TRUE(status.ok) << status.error;
    EXPECT_GE(status.wall_ms, 0);
  }

  // Table order: sweep_runs first, then first-encounter order (the engine
  // appends each run's substrate `perf` table after the scenario's own).
  ASSERT_EQ(merged.tables().size(), 4u);
  EXPECT_EQ(merged.tables()[0]->name(), "sweep_runs");
  EXPECT_EQ(merged.tables()[0]->columns(),
            (std::vector<std::string>{"run", "x", "k", "status", "wall_ms"}));
  const MetricTable* scalars = merged.tables()[1].get();
  EXPECT_EQ(scalars->name(), "sweep_scalars");
  EXPECT_EQ(scalars->columns(),
            (std::vector<std::string>{"x", "k", "name", "value"}));
  const MetricTable* points = merged.tables()[2].get();
  EXPECT_EQ(points->name(), "points");
  EXPECT_EQ(points->columns(),
            (std::vector<std::string>{"x", "k", "x_plus_k", "x_squared"}));
  const MetricTable* perf = merged.tables()[3].get();
  EXPECT_EQ(perf->name(), "perf");
  EXPECT_EQ(perf->columns(),
            (std::vector<std::string>{"x", "k", "counter", "value"}));

  // Rows in plan order, swept cells numeric.
  ASSERT_EQ(points->rows().size(), 4u);
  EXPECT_DOUBLE_EQ(points->rows()[0][0].number(), 1);  // x=1,k=0
  EXPECT_DOUBLE_EQ(points->rows()[0][2].number(), 1);
  EXPECT_DOUBLE_EQ(points->rows()[1][1].number(), 100);  // x=1,k=100
  EXPECT_DOUBLE_EQ(points->rows()[1][2].number(), 101);
  EXPECT_DOUBLE_EQ(points->rows()[3][3].number(), 4);  // x=2,k=100 -> x^2=4
}

TEST(SweepTest, SweptKeyAlreadyInTableIsNotDuplicated) {
  // Scenario tables often echo the swept parameter as a column (fct_sweep's
  // `load`); the merge must not produce `load,load,...` headers.
  Scenario scenario = square_scenario();
  scenario.run = [](RunContext& ctx) {
    const double x = ctx.options.get_double("x", 1);
    ctx.metrics.table("echo", {"x", "x_squared"}).add_row({x, x * x});
  };
  SweepRequest request;
  request.scenario = &scenario;
  request.plan =
      RunPlan::expand({parse_sweep_spec("x=2,3"), parse_sweep_spec("k=0,1")});
  request.jobs = 1;
  MetricWriter merged;
  run_sweep(request, merged);
  const MetricTable* echo = find_table(merged, "echo");
  ASSERT_NE(echo, nullptr);
  // Only the non-colliding key `k` is prepended.
  EXPECT_EQ(echo->columns(), (std::vector<std::string>{"k", "x", "x_squared"}));
  ASSERT_EQ(echo->rows().size(), 4u);
  EXPECT_DOUBLE_EQ(echo->rows()[0][0].number(), 0);  // k=0
  EXPECT_DOUBLE_EQ(echo->rows()[0][1].number(), 2);  // x from the table itself
  EXPECT_DOUBLE_EQ(echo->rows()[3][2].number(), 9);  // x=3,k=1 -> x^2
}

TEST(SweepTest, MergedOutputIndependentOfThreadCount) {
  const Scenario scenario = square_scenario();
  MetricWriter serial, parallel;
  run_sweep(square_request(scenario, 1), serial);
  run_sweep(square_request(scenario, 4), parallel);
  EXPECT_EQ(csv_without_wall_times(serial), csv_without_wall_times(parallel));
}

TEST(SweepTest, VarySeedDerivesSeedFromPlanIndex) {
  const Scenario scenario = square_scenario();
  SweepRequest request = square_request(scenario, 2);
  request.vary_seed = true;
  MetricWriter merged;
  run_sweep(request, merged);
  const MetricTable* scalars = merged.tables()[1].get();
  ASSERT_EQ(scalars->name(), "sweep_scalars");
  ASSERT_EQ(scalars->rows().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(scalars->rows()[i][1].text(), "seed_used");
    // Declared default 5, plus plan index.
    EXPECT_DOUBLE_EQ(scalars->rows()[i][2].number(),
                     5 + static_cast<double>(i));
  }
}

TEST(SweepTest, PerRunErrorsLandInStatusNotThrow) {
  Scenario scenario = square_scenario();
  scenario.run = [](RunContext& ctx) {
    const double x = ctx.options.get_double("x", 1);
    if (x == 3) throw std::runtime_error("x=3 is cursed");
    ctx.metrics.table("points", {"x"}).add_row({x});
  };
  MetricWriter merged;
  const SweepResult result = run_sweep(square_request(scenario, 2), merged);
  EXPECT_EQ(result.failed, 1);
  EXPECT_FALSE(result.statuses[2].ok);
  EXPECT_EQ(result.statuses[2].error, "x=3 is cursed");
  // The failed run contributes no data rows; the others still merge.
  const MetricTable* points = find_table(merged, "points");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->rows().size(), 3u);
  // Nor does it contribute perf counters (3 successful runs only).
  const MetricTable* perf = find_table(merged, "perf");
  ASSERT_NE(perf, nullptr);
  EXPECT_EQ(perf->rows().size() % 3, 0u);
  EXPECT_GT(perf->rows().size(), 0u);
}

TEST(SweepTest, RejectsMalformedRequests) {
  const Scenario scenario = square_scenario();
  MetricWriter merged;
  SweepRequest no_scenario;
  no_scenario.plan = RunPlan::expand({parse_sweep_spec("x=1")});
  EXPECT_THROW(run_sweep(no_scenario, merged), std::invalid_argument);

  SweepRequest empty_plan;
  empty_plan.scenario = &scenario;
  EXPECT_THROW(run_sweep(empty_plan, merged), std::invalid_argument);

  Scenario seedless = square_scenario();
  seedless.params = {{"x", "1", "the swept input"}};
  SweepRequest request = square_request(seedless, 1);
  request.vary_seed = true;
  EXPECT_THROW(run_sweep(request, merged), std::invalid_argument);

  // vary_seed fighting a swept seed would silently mislabel runs.
  SweepRequest swept_seed;
  swept_seed.scenario = &scenario;
  swept_seed.plan = RunPlan::expand({parse_sweep_spec("seed=5,9")});
  swept_seed.vary_seed = true;
  EXPECT_THROW(run_sweep(swept_seed, merged), std::invalid_argument);
}

// --- driver integration ----------------------------------------------------

TEST(SweepDriverTest, RejectsSweepUsageErrors) {
  // Unknown swept key.
  EXPECT_EQ(run_cli({"--scenario=incast", "--sweep", "bogus=1,2"}), 2);
  // Duplicate sweep key.
  EXPECT_EQ(run_cli({"--scenario=incast", "--sweep", "fanin=2,3", "--sweep",
                     "fanin=4,5"}),
            2);
  // Key both fixed and swept.
  EXPECT_EQ(run_cli({"--scenario=incast", "fanin=2", "--sweep", "fanin=3,4"}),
            2);
  // Malformed spec / missing argument.
  EXPECT_EQ(run_cli({"--scenario=incast", "--sweep", "fanin=1:2"}), 2);
  EXPECT_EQ(run_cli({"--scenario=incast", "--sweep"}), 2);
  // --vary-seed without --sweep, or fighting a swept seed.
  EXPECT_EQ(run_cli({"--scenario=incast", "--vary-seed"}), 2);
  EXPECT_EQ(run_cli({"--scenario=incast", "--vary-seed", "--sweep",
                     "seed=5,9"}),
            2);
  // Bad --jobs (trailing junk is rejected, not truncated).
  EXPECT_EQ(run_cli({"--scenario=incast", "--jobs=lots"}), 2);
  EXPECT_EQ(run_cli({"--scenario=incast", "--jobs=4x"}), 2);
  EXPECT_EQ(run_cli({"--scenario=incast", "--jobs=-2"}), 2);
}

TEST(SweepDriverTest, EndToEndTinySweepWritesMergedCsv) {
  const std::string path =
      ::testing::TempDir() + "/numfabric_sweep_test_out.csv";
  const int rc = run_cli({"--scenario=incast", "--sweep", "fanin=2,3",
                          "--jobs=2", "hosts_per_leaf=2", "leaves=2",
                          "spines=1", "flow_kb=16", "horizon_ms=100",
                          "--output=" + path});
  EXPECT_EQ(rc, 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("# table,sweep_runs"), std::string::npos);
  EXPECT_NE(content.str().find("run,fanin,status,wall_ms"), std::string::npos);
  EXPECT_NE(content.str().find("# table,fct"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace numfabric::app
