// Tests for the src/app scenario subsystem: registry mechanics, option
// parsing round-trips, metric serialization, and a tiny-scale smoke run of
// every registered scenario (so CI exercises each one end to end).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/driver.h"
#include "app/metrics.h"
#include "app/options.h"
#include "app/scenario.h"

namespace numfabric::app {
namespace {

// --- registry mechanics ----------------------------------------------------

Scenario make_scenario(const std::string& name) {
  Scenario scenario;
  scenario.name = name;
  scenario.description = "test scenario";
  scenario.run = [](RunContext&) {};
  return scenario;
}

TEST(ScenarioRegistryTest, RegistersAndFinds) {
  ScenarioRegistry registry;
  registry.add(make_scenario("beta"));
  registry.add(make_scenario("alpha"));
  EXPECT_EQ(registry.size(), 2u);
  ASSERT_NE(registry.find("alpha"), nullptr);
  EXPECT_EQ(registry.find("alpha")->name, "alpha");
  EXPECT_EQ(registry.find("missing"), nullptr);

  // list() is ordered by name.
  const auto all = registry.list();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->name, "alpha");
  EXPECT_EQ(all[1]->name, "beta");
}

TEST(ScenarioRegistryTest, RejectsDuplicatesAndInvalid) {
  ScenarioRegistry registry;
  registry.add(make_scenario("dup"));
  EXPECT_THROW(registry.add(make_scenario("dup")), std::invalid_argument);
  EXPECT_THROW(registry.add(make_scenario("")), std::invalid_argument);
  Scenario no_run = make_scenario("no-run");
  no_run.run = nullptr;
  EXPECT_THROW(registry.add(std::move(no_run)), std::invalid_argument);
}

TEST(ScenarioRegistryTest, FindPointersSurviveLaterRegistrations) {
  ScenarioRegistry registry;
  registry.add(make_scenario("first"));
  const Scenario* first = registry.find("first");
  for (int i = 0; i < 100; ++i) {
    registry.add(make_scenario("filler-" + std::to_string(i)));
  }
  EXPECT_EQ(registry.find("first"), first);
}

TEST(SchemeParseTest, RoundTripsAllSchemes) {
  using transport::Scheme;
  for (const Scheme scheme : {Scheme::kNumFabric, Scheme::kDgd,
                              Scheme::kRcpStar, Scheme::kDctcp,
                              Scheme::kPFabric}) {
    EXPECT_EQ(parse_scheme(scheme_token(scheme)), scheme);
  }
  EXPECT_EQ(parse_scheme("NUMFabric"), Scheme::kNumFabric);
  EXPECT_EQ(parse_scheme("RCP*"), Scheme::kRcpStar);
  EXPECT_THROW(parse_scheme("quic"), std::invalid_argument);
}

// --- option parsing --------------------------------------------------------

TEST(OptionsTest, ParsesTokens) {
  const Options options = Options::from_tokens(
      {"--alpha=2.5", "flows=100", "--verbose", "name=web search"});
  EXPECT_DOUBLE_EQ(options.get_double("alpha", 0), 2.5);
  EXPECT_EQ(options.get_int("flows", 0), 100);
  EXPECT_TRUE(options.get_bool("verbose", false));
  EXPECT_EQ(options.get("name", ""), "web search");
  EXPECT_EQ(options.get("absent", "fallback"), "fallback");
}

TEST(OptionsTest, TypedGettersRejectGarbage) {
  const Options options = Options::from_tokens({"x=abc"});
  EXPECT_THROW(options.get_double("x", 0), std::invalid_argument);
  EXPECT_THROW(options.get_int("x", 0), std::invalid_argument);
  EXPECT_THROW(options.get_bool("x", false), std::invalid_argument);
  EXPECT_THROW(Options::from_tokens({""}), std::invalid_argument);
  EXPECT_THROW(Options::from_tokens({"=v"}), std::invalid_argument);
}

TEST(OptionsTest, ParsesConfigTextWithCommentsAndRoundTrips) {
  const Options options = Options::from_config_text(
      "# experiment sweep\n"
      "load = 0.6   # offered load\n"
      "\n"
      "transports = numfabric, dgd, rcp\n");
  EXPECT_DOUBLE_EQ(options.get_double("load", 0), 0.6);
  const auto list = options.get_list("transports", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], "numfabric");
  EXPECT_EQ(list[2], "rcp");
  EXPECT_THROW(Options::from_config_text("no equals sign"),
               std::invalid_argument);

  // Serialize -> reparse -> identical map.
  const Options reparsed = Options::from_config_text(options.to_config_text());
  EXPECT_EQ(reparsed.values(), options.values());
}

TEST(OptionsTest, NumericListsValidateEveryElement) {
  const Options options =
      Options::from_tokens({"loads=0.2, 0.4,0.8", "subflows=1,2,8"});
  const auto loads = options.get_double_list("loads", {});
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[1], 0.4);
  const auto subflows = options.get_int_list("subflows", {});
  ASSERT_EQ(subflows.size(), 3u);
  EXPECT_EQ(subflows[2], 8);
  EXPECT_EQ(options.get_double_list("absent", {1.5})[0], 1.5);

  // Trailing junk inside any element is rejected, not truncated.
  const Options bad = Options::from_tokens({"loads=0.4x,0.6", "n=2.5"});
  EXPECT_THROW(bad.get_double_list("loads", {}), std::invalid_argument);
  EXPECT_THROW(bad.get_int_list("n", {}), std::invalid_argument);
}

TEST(OptionsTest, MergeLaterWins) {
  Options base = Options::from_tokens({"a=1", "b=2"});
  base.merge(Options::from_tokens({"b=3", "c=4"}));
  EXPECT_EQ(base.get_int("a", 0), 1);
  EXPECT_EQ(base.get_int("b", 0), 3);
  EXPECT_EQ(base.get_int("c", 0), 4);
}

// --- metric emission -------------------------------------------------------

TEST(MetricsTest, CsvAndJsonSerialization) {
  MetricWriter metrics;
  metrics.scalar("scenario", "demo");
  metrics.scalar("events", 42);
  MetricTable& table = metrics.table("rates", {"flow", "rate_mbps"});
  table.add_row({"a", 125.5});
  table.add_row({"b", 250});
  EXPECT_THROW(table.add_row({"only-one-cell"}), std::invalid_argument);
  EXPECT_THROW(metrics.table("rates", {"different"}), std::invalid_argument);
  // Same name + same columns returns the same table.
  EXPECT_EQ(&metrics.table("rates", {"flow", "rate_mbps"}), &table);

  std::ostringstream csv;
  metrics.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "# scalar,scenario,demo\n"
            "# scalar,events,42\n"
            "# table,rates\n"
            "flow,rate_mbps\n"
            "a,125.5\n"
            "b,250\n");

  std::ostringstream json;
  metrics.write_json(json);
  EXPECT_NE(json.str().find("\"scenario\": \"demo\""), std::string::npos);
  EXPECT_NE(json.str().find("\"events\": 42"), std::string::npos);
  EXPECT_NE(json.str().find("[\"b\", 250]"), std::string::npos);
}

// --- built-in catalog ------------------------------------------------------

TEST(BuiltinScenariosTest, RegistersAtLeastEightAndIsIdempotent) {
  register_builtin_scenarios();
  register_builtin_scenarios();  // second call must be a no-op
  ScenarioRegistry& registry = ScenarioRegistry::global();
  EXPECT_GE(registry.size(), 8u);
  // The ported figure experiments and the new traffic families.
  for (const char* name :
       {"convergence", "rate-timeseries", "dynamic-deviation",
        "fct-vs-pfabric", "resource-pooling", "bwfunc-sweep", "bwfunc-pooling",
        "incast", "permutation", "shuffle", "websearch-fct", "datamining-fct",
        "sensitivity", "trace-replay", "oversub-fabric", "background-burst"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

// Tiny-scale parameters so every scenario finishes in CI time.  A scenario
// registered without an entry here fails the smoke test by design.
const std::map<std::string, std::vector<std::string>>& smoke_params() {
  static const std::map<std::string, std::vector<std::string>> params = {
      {"convergence",
       {"hosts_per_leaf=4", "leaves=2", "spines=2", "paths=24",
        "initial_active=10", "flows_per_event=4", "events=1", "min_active=6",
        "max_active=14", "seed=3"}},
      {"rate-timeseries",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "paths=8",
        "initial_active=4", "flows_per_event=2", "events=2", "min_active=2",
        "max_active=6", "event_interval_ms=2", "seed=4"}},
      {"dynamic-deviation",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "flows=40",
        "horizon_ms=300", "seed=11"}},
      {"fct-vs-pfabric",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "loads=0.4", "flows=40",
        "seed=5"}},
      {"resource-pooling",
       {"hosts_per_leaf=2", "leaves=2", "spines=2", "subflows=1,2",
        "warmup_ms=3", "measure_ms=4", "seed=2"}},
      {"bwfunc-sweep", {"capacities_gbps=25", "warmup_ms=6", "measure_ms=6"}},
      {"bwfunc-pooling", {"switch_ms=8", "end_ms=16"}},
      {"incast",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "fanin=3", "flow_kb=32",
        "horizon_ms=100"}},
      {"permutation",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "warmup_ms=2",
        "measure_ms=3"}},
      {"shuffle",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "flow_kb=50",
        "horizon_ms=100"}},
      {"websearch-fct",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "loads=0.3", "flows=40",
        "horizon_ms=300"}},
      {"datamining-fct",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "loads=0.3", "flows=30",
        "horizon_ms=150"}},
      {"sensitivity",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "paths=8",
        "initial_active=4", "flows_per_event=2", "events=1", "min_active=2",
        "max_active=6", "timeout_ms=10", "seed=3"}},
      {"trace-replay",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "horizon_ms=200"}},
      {"oversub-fabric",
       {"topology=2x2x2", "oversub=4", "shuffle_kb=20", "warmup_ms=1",
        "measure_ms=2", "horizon_ms=100"}},
      {"background-burst",
       {"hosts_per_leaf=2", "leaves=2", "spines=1", "background_load=0.5",
        "fanin=2", "burst_kb=10", "burst_interval_ms=1", "bursts=2",
        "warmup_ms=1", "horizon_ms=100"}},
      {"mega-fct",
       {"topology=4x2x2", "concurrent=200", "resolve_us=500", "horizon_s=5",
        "seed=7"}},
  };
  return params;
}

TEST(BuiltinScenariosTest, EveryScenarioSmokeRunsAndEmitsMetrics) {
  register_builtin_scenarios();
  for (const Scenario* scenario : ScenarioRegistry::global().list()) {
    const auto it = smoke_params().find(scenario->name);
    ASSERT_NE(it, smoke_params().end())
        << "scenario '" << scenario->name
        << "' has no tiny-scale smoke parameters; add them to this test";

    const Options options = Options::from_tokens(it->second);
    // Every smoke key must be declared in the scenario's schema.
    for (const auto& [key, value] : options.values()) {
      bool declared = false;
      for (const ParamSpec& param : scenario->params) {
        if (param.key == key) declared = true;
      }
      EXPECT_TRUE(declared) << scenario->name << ": undeclared key " << key;
    }

    MetricWriter metrics;
    RunContext ctx{options, transport::Scheme::kNumFabric, metrics, false};
    ASSERT_NO_THROW(scenario->run(ctx)) << scenario->name;

    bool has_rows = false;
    for (const auto& table : metrics.tables()) {
      if (!table->rows().empty()) has_rows = true;
    }
    EXPECT_TRUE(has_rows) << scenario->name << " emitted no metric rows";

    // Both serializations must succeed on real scenario output.
    std::ostringstream csv, json;
    metrics.write_csv(csv);
    metrics.write_json(json);
    EXPECT_FALSE(csv.str().empty()) << scenario->name;
    EXPECT_FALSE(json.str().empty()) << scenario->name;
  }
}

TEST(DriverTest, RejectsUnknownScenarioAndBadFormat) {
  EXPECT_EQ(run_cli({"--scenario=definitely-not-registered"}), 2);
  EXPECT_EQ(run_cli({"--scenario=incast", "--format=xml"}), 2);
  EXPECT_EQ(run_cli(std::vector<std::string>{}), 2);  // missing --scenario
}

}  // namespace
}  // namespace numfabric::app
